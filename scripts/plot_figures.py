#!/usr/bin/env python3
"""Plot the paper's figure panels from cvr report CSVs.

Usage:
    # 1. produce CSVs with the report module, e.g. from trace_study:
    build/examples/trace_study 5 20 > qoe_cdf.csv
    # or via cvr::report::write_report(...) -> prefix_cdf_<metric>.csv

    # 2. plot:
    python3 scripts/plot_figures.py qoe_cdf.csv --out fig2a.png

Expects columns (algorithm|arm, value, cumulative_probability). Pure
matplotlib; no other dependencies.
"""
import argparse
import csv
import sys
from collections import defaultdict


def read_series(path):
    series = defaultdict(list)
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        key = "algorithm" if "algorithm" in (reader.fieldnames or []) else "arm"
        for row in reader:
            series[row[key]].append(
                (float(row["value"]), float(row["cumulative_probability"]))
            )
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="CDF csv produced by cvr")
    parser.add_argument("--out", default=None, help="output image path")
    parser.add_argument("--xlabel", default="value")
    parser.add_argument("--title", default="")
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    series = read_series(args.csv)
    if not series:
        sys.exit(f"no data rows in {args.csv}")

    fig, ax = plt.subplots(figsize=(5, 3.2), dpi=150)
    for name in sorted(series):
        points = sorted(series[name])
        ax.plot([p[0] for p in points], [p[1] for p in points], label=name)
    ax.set_xlabel(args.xlabel)
    ax.set_ylabel("CDF")
    ax.set_ylim(0, 1)
    if args.title:
        ax.set_title(args.title)
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    fig.tight_layout()
    out = args.out or (args.csv.rsplit(".", 1)[0] + ".png")
    fig.savefig(out)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
