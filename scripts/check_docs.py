#!/usr/bin/env python3
"""Docs honesty checker (CI: the "docs" step).

Two invariants keep the documentation tree from drifting away from the
code:

1. Subsystem coverage — every `src/<subsystem>/` directory must be
   mentioned in docs/architecture.md (the module map is the canonical
   "what lives where" index; a new subsystem that never lands there is
   invisible to readers). This is discovery-based: e.g. src/proptest/
   became part of the contract the moment the directory appeared.
2. Link integrity — every intra-repository markdown link, in every
   tracked *.md file, must resolve to an existing file (anchors are
   stripped; external http(s)/mailto links are ignored).
3. Index coverage — every docs/*.md must be linked from docs/README.md
   (the documentation index), so no document can land unindexed.

Exit status 0 when both hold, 1 otherwise, with one line per violation
so the CI log names the stale subsystem or dangling link directly.

Usage: python3 scripts/check_docs.py [repo_root]
"""

from __future__ import annotations

import os
import re
import sys


# Markdown links: [text](target). Images ![alt](target) share the same
# tail and are checked too. Reference-style links are rare enough here
# that inline links are the contract.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Directories whose markdown is not part of the documentation contract.
_SKIP_DIRS = {".git", "build", "third_party", ".github"}


def repo_markdown_files(root: str) -> list[str]:
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in _SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def subsystems(root: str) -> list[str]:
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return []
    return sorted(
        name
        for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name))
    )


def check_subsystem_coverage(root: str) -> list[str]:
    """Every src/<subsystem>/ must appear in docs/architecture.md."""
    architecture = os.path.join(root, "docs", "architecture.md")
    if not os.path.isfile(architecture):
        return ["docs/architecture.md is missing (subsystem map lives there)"]
    with open(architecture, encoding="utf-8") as f:
        text = f.read()
    errors = []
    for subsystem in subsystems(root):
        # Accept "src/<name>/" or "`<name>/`" style mentions.
        if f"src/{subsystem}" not in text and f"`{subsystem}/`" not in text:
            errors.append(
                f"docs/architecture.md never mentions src/{subsystem}/ "
                f"(add it to the module map)"
            )
    return errors


def check_markdown_links(root: str) -> list[str]:
    """Every intra-repo markdown link must resolve to an existing file."""
    errors = []
    for md_path in repo_markdown_files(root):
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(md_path)
        rel_md = os.path.relpath(md_path, root)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            if target.startswith("/"):
                resolved = os.path.join(root, target.lstrip("/"))
            else:
                resolved = os.path.join(base, target)
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}: dangling link -> {match.group(1)}")
    return errors


def check_docs_index(root: str) -> list[str]:
    """Every docs/*.md must be linked from the docs/README.md index."""
    docs = os.path.join(root, "docs")
    index = os.path.join(docs, "README.md")
    if not os.path.isdir(docs):
        return []
    if not os.path.isfile(index):
        return ["docs/README.md is missing (the documentation index)"]
    with open(index, encoding="utf-8") as f:
        targets = {
            match.group(1).split("#", 1)[0]
            for match in _LINK_RE.finditer(f.read())
        }
    errors = []
    for name in sorted(os.listdir(docs)):
        if not name.endswith(".md") or name == "README.md":
            continue
        if name not in targets:
            errors.append(
                f"docs/README.md never links docs/{name} "
                f"(add it to the index table)"
            )
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = (
        check_subsystem_coverage(root)
        + check_markdown_links(root)
        + check_docs_index(root)
    )
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: FAILED ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
