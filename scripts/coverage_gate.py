#!/usr/bin/env python3
"""Line-coverage gate for src/core/ (CI: the "coverage" job).

Measures line coverage of the allocator core from the .gcda files of a
--coverage build (gcov --json-format; no gcovr needed, so the committed
baseline is reproducible anywhere gcc is), then compares it against the
floor recorded in tests/coverage_baseline.txt:

    python3 scripts/coverage_gate.py build-cov            # gate
    python3 scripts/coverage_gate.py build-cov --update   # refresh floor

A line counts as covered if ANY translation unit executed it (headers
are compiled into many TUs; their counts are OR-ed). The gate fails
when measured coverage drops more than --tolerance (default 0.5 pt,
absorbing gcov-version variance) below the baseline. After genuinely
improving coverage, re-run with --update and commit the new floor.

Exit status: 0 gate passed (or baseline updated), 1 gate failed,
2 usage/measurement error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir: str) -> list[str]:
    out = []
    for dirpath, _dirnames, filenames in os.walk(os.path.abspath(build_dir)):
        for name in filenames:
            if name.endswith(".gcda"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def measure(build_dir: str, repo_root: str, source_filter: str):
    """Return (covered, total) line counts for sources under the filter."""
    gcda = find_gcda(build_dir)
    if not gcda:
        raise RuntimeError(
            f"no .gcda files under {build_dir} — build with --coverage and "
            f"run ctest first"
        )
    prefix = os.path.join(os.path.abspath(repo_root), source_filter, "")
    # line -> covered, OR-ed across every translation unit that compiled
    # the file (inline code in headers shows up many times).
    lines: dict[tuple[str, int], bool] = {}
    # One gcov invocation per object directory keeps the process count
    # down; --stdout avoids scattering *.gcov files around.
    by_dir: dict[str, list[str]] = {}
    for path in gcda:
        by_dir.setdefault(os.path.dirname(path), []).append(path)
    for obj_dir, files in by_dir.items():
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout",
             *[os.path.basename(f) for f in files]],
            capture_output=True, text=True, cwd=obj_dir, check=False,
        )
        for line in proc.stdout.splitlines():
            if not line.startswith("{"):
                continue
            record = json.loads(line)
            cwd = record.get("current_working_directory", obj_dir)
            for entry in record.get("files", []):
                source = entry["file"]
                if not os.path.isabs(source):
                    source = os.path.join(cwd, source)
                source = os.path.realpath(source)
                if not source.startswith(prefix):
                    continue
                for info in entry.get("lines", []):
                    key = (source, info["line_number"])
                    lines[key] = lines.get(key, False) or info["count"] > 0
    covered = sum(1 for hit in lines.values() if hit)
    return covered, len(lines)


def read_baseline(path: str, source_filter: str) -> float:
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            if name == source_filter:
                return float(value)
    raise RuntimeError(f"{path} has no entry for {source_filter}")


def write_baseline(path: str, source_filter: str, percent: float) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(
            "# Line-coverage floor, enforced by scripts/coverage_gate.py\n"
            "# (CI \"coverage\" job). Refresh with:\n"
            "#   python3 scripts/coverage_gate.py <coverage-build-dir> "
            "--update\n"
            "# Format: <source-filter> <percent-at-merge>\n"
            f"{source_filter} {percent:.1f}\n"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", help="coverage-instrumented build dir")
    parser.add_argument("--filter", default="src/core",
                        help="source subtree to measure (default: src/core)")
    parser.add_argument("--baseline", default="tests/coverage_baseline.txt")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed drop in points before failing")
    parser.add_argument("--update", action="store_true",
                        help="write the measured value as the new baseline")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        covered, total = measure(args.build_dir, repo_root, args.filter)
    except RuntimeError as error:
        print(f"coverage_gate: {error}", file=sys.stderr)
        return 2
    if total == 0:
        print(f"coverage_gate: no measurable lines under {args.filter}",
              file=sys.stderr)
        return 2
    percent = 100.0 * covered / total
    print(f"coverage_gate: {args.filter} line coverage "
          f"{percent:.2f}% ({covered}/{total} lines)")

    baseline_path = os.path.join(repo_root, args.baseline)
    if args.update:
        write_baseline(baseline_path, args.filter, percent)
        print(f"coverage_gate: baseline updated -> {args.baseline} "
              f"({percent:.1f})")
        return 0
    try:
        baseline = read_baseline(baseline_path, args.filter)
    except (OSError, RuntimeError, ValueError) as error:
        print(f"coverage_gate: {error}", file=sys.stderr)
        return 2
    floor = baseline - args.tolerance
    if percent < floor:
        print(f"coverage_gate: FAILED — {percent:.2f}% is below the "
              f"committed floor {baseline:.1f}% (tolerance "
              f"{args.tolerance}); add tests or, if the drop is "
              f"deliberate, refresh with --update", file=sys.stderr)
        return 1
    print(f"coverage_gate: OK (floor {baseline:.1f}%, tolerance "
          f"{args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
