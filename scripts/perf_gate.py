#!/usr/bin/env python3
"""Perf-regression gate over cvr-bench-perf-v1 baselines.

Compares a freshly measured perf report (``micro_allocator --perf-out``
or any fig* bench run with ``--telemetry=counters --perf-out``) against
the committed baseline and fails when any arm's throughput or any
phase's median latency regresses by more than the tolerance.

Two comparison modes:

* absolute (default): current slots_per_sec must be at least
  ``(1 - tolerance) * baseline``; current phase p50_us must be at most
  ``(1 + tolerance) * baseline`` (p50, not mean: a single preempted
  iteration skews a 200-sample mean far past any sane tolerance).
  Right for same-machine comparisons (local before/after, the pinned
  CI runner class).

* ``--normalize-by ARM``: every metric is first divided by the named
  reference arm's same metric *within its own file*, and the ratios are
  compared. This cancels machine speed, so a faster or slower CI host
  does not produce false alarms — only a change in the *relative* cost
  of an arm trips the gate. In this mode only the aggregate
  slots_per_sec ratios are gating; per-phase p50 ratios are printed
  as advisory lines, because the quotient of two few-microsecond
  medians compounds timer jitter into false alarms. The reference arm itself is
  only sanity-checked for presence.

* ``--service-prefix PREFIX``: additionally require every counter whose
  name starts with PREFIX to agree *bit-exactly* between baseline and
  current, across all arms including the normalization reference. The
  load-service bench encodes its deterministic service outcomes
  (admission funnel, sustained users, p99 delay) as ``svc_`` counters —
  they are pure functions of the seed, so any drift is a behaviour
  change, not timer noise, and gates at zero tolerance.

Refreshing a baseline after an intentional perf change:

    ./build/bench/micro_allocator --sweep \
        --perf-out=BENCH_micro_allocator.json --machine="$(uname -srm)"

and commit the JSON alongside the change (see docs/performance.md).

Exit status: 0 when every check passes, 1 on any regression or schema
mismatch (the CI perf-gate job keys off this).
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "cvr-bench-perf-v1"


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {report.get('schema')!r} != {SCHEMA!r}"
        )
    if not report.get("arms"):
        raise SystemExit(f"{path}: no arms recorded")
    return report


def arm_index(report: dict) -> dict:
    return {arm["algorithm"]: arm for arm in report["arms"]}


def phase_index(arm: dict) -> dict:
    return {phase["phase"]: phase for phase in arm.get("phases", [])}


class Gate:
    def __init__(self, tolerance: float) -> None:
        self.tolerance = tolerance
        self.failures: list[str] = []
        self.notes: list[str] = []

    def check_throughput(self, label: str, base: float, cur: float) -> None:
        if base <= 0.0:
            return
        ratio = cur / base
        line = f"{label}: slots/sec {base:.1f} -> {cur:.1f} ({ratio:.2f}x)"
        if ratio < 1.0 - self.tolerance:
            self.failures.append(line)
        else:
            self.notes.append(line)

    def check_latency(self, label: str, base: float, cur: float,
                      advisory: bool = False) -> None:
        if base <= 0.0:
            return
        ratio = cur / base
        line = f"{label}: p50_us {base:.3f} -> {cur:.3f} ({ratio:.2f}x)"
        if ratio > 1.0 + self.tolerance and not advisory:
            self.failures.append(line)
        else:
            self.notes.append(line)


def check_service_counters(gate: Gate, name: str, base_arm: dict,
                           cur_arm: dict, prefix: str) -> None:
    """Exact-match comparison of deterministic service counters."""
    base_counters = {
        k: v for k, v in base_arm.get("counters", {}).items()
        if k.startswith(prefix)
    }
    cur_counters = {
        k: v for k, v in cur_arm.get("counters", {}).items()
        if k.startswith(prefix)
    }
    for key in sorted(base_counters.keys() | cur_counters.keys()):
        base_val = base_counters.get(key)
        cur_val = cur_counters.get(key)
        line = f"{name}/{key}: {base_val} -> {cur_val}"
        if base_val is None:
            gate.notes.append(f"{line} (new counter, not gated)")
        elif cur_val is None:
            gate.failures.append(f"{line} (counter vanished)")
        elif base_val != cur_val:
            gate.failures.append(f"{line} (deterministic counter drifted)")
        else:
            gate.notes.append(f"{name}/{key}: {base_val} (exact)")


def compare(baseline: dict, current: dict, tolerance: float,
            normalize_by: str | None,
            service_prefix: str | None = None) -> Gate:
    gate = Gate(tolerance)
    base_arms = arm_index(baseline)
    cur_arms = arm_index(current)

    if service_prefix:
        for name, base_arm in base_arms.items():
            cur_arm = cur_arms.get(name)
            if cur_arm is None:
                continue  # reported below by the throughput loop
            check_service_counters(gate, name, base_arm, cur_arm,
                                   service_prefix)

    base_ref = cur_ref = None
    if normalize_by is not None:
        base_ref = base_arms.get(normalize_by)
        cur_ref = cur_arms.get(normalize_by)
        if base_ref is None or cur_ref is None:
            gate.failures.append(
                f"reference arm {normalize_by!r} missing from "
                f"{'baseline' if base_ref is None else 'current'} report"
            )
            return gate

    for name, base_arm in base_arms.items():
        cur_arm = cur_arms.get(name)
        if cur_arm is None:
            gate.failures.append(f"arm {name!r} missing from current report")
            continue
        if name == normalize_by:
            continue  # the yardstick is not measured against itself

        base_tp = base_arm.get("slots_per_sec", 0.0)
        cur_tp = cur_arm.get("slots_per_sec", 0.0)
        if base_ref is not None:
            base_tp /= base_ref.get("slots_per_sec") or 1.0
            cur_tp /= cur_ref.get("slots_per_sec") or 1.0
        gate.check_throughput(name, base_tp, cur_tp)

        base_phases = phase_index(base_arm)
        cur_phases = phase_index(cur_arm)
        base_ref_phases = phase_index(base_ref) if base_ref else {}
        cur_ref_phases = phase_index(cur_ref) if cur_ref else {}
        for phase, base_phase in base_phases.items():
            cur_phase = cur_phases.get(phase)
            if cur_phase is None:
                gate.failures.append(
                    f"{name}/{phase}: phase missing from current report"
                )
                continue
            base_us = base_phase.get("p50_us", 0.0)
            cur_us = cur_phase.get("p50_us", 0.0)
            if base_ref is not None:
                base_div = base_ref_phases.get(phase, {}).get("p50_us", 0.0)
                cur_div = cur_ref_phases.get(phase, {}).get("p50_us", 0.0)
                if base_div <= 0.0 or cur_div <= 0.0:
                    continue  # phase absent from the yardstick: skip
                base_us /= base_div
                cur_us /= cur_div
            gate.check_latency(f"{name}/{phase}", base_us, cur_us,
                               advisory=base_ref is not None)
    return gate


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly measured perf JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (default: 0.25)",
    )
    parser.add_argument(
        "--normalize-by", metavar="ARM", default=None,
        help="divide every metric by this arm's within-run value first "
             "(cancels absolute machine speed; e.g. --normalize-by firefly)",
    )
    parser.add_argument(
        "--service-prefix", metavar="PREFIX", default=None,
        help="gate counters with this name prefix at exact equality in "
             "every arm, including the normalization reference "
             "(e.g. --service-prefix svc_)",
    )
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    gate = compare(baseline, current, args.tolerance, args.normalize_by,
                   args.service_prefix)

    mode = (
        f"normalized by {args.normalize_by!r}" if args.normalize_by
        else "absolute"
    )
    print(
        f"perf gate: {args.baseline} vs {args.current} "
        f"({mode}, tolerance {args.tolerance:.0%})"
    )
    for note in gate.notes:
        print(f"  ok   {note}")
    for failure in gate.failures:
        print(f"  FAIL {failure}")
    if gate.failures:
        print(f"perf gate: {len(gate.failures)} regression(s)")
        return 1
    print("perf gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
