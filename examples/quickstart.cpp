// Quickstart: build one slot of the allocation problem by hand and run
// Algorithm 1 (the Density/Value-Greedy allocator) on it.
//
//   $ ./quickstart
//
// Three users share a 100 Mbps edge server; each has its own link
// bandwidth, prediction accuracy, and viewing history. The allocator
// picks a quality level (1..6) per user maximising the per-slot QoE
// surrogate h_n under the rate constraints of eqs. (6)-(7).
#include <cstdio>

#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/optimal.h"

int main() {
  using namespace cvr;

  // The paper-calibrated convex rate function: ~36 Mbps at medium level.
  const content::CrfRateFunction rate_function;

  core::SlotProblem problem;
  problem.params = core::QoeParams{/*alpha=*/0.1, /*beta=*/0.5};
  problem.server_bandwidth = 100.0;  // B(t), Mbps

  struct UserSpec {
    const char* name;
    double bandwidth;  // B_n(t)
    double delta;      // prediction-success estimate
    double qbar;       // mean viewed quality so far
  };
  const UserSpec specs[] = {
      {"alice (stable link)", 80.0, 0.95, 4.0},
      {"bob (mid link)", 45.0, 0.90, 3.0},
      {"carol (weak link)", 25.0, 0.75, 1.5},
  };
  for (const auto& spec : specs) {
    problem.users.push_back(core::UserSlotContext::from_rate_function(
        rate_function, spec.bandwidth, spec.delta, spec.qbar, /*slot=*/120.0));
  }

  core::DvGreedyAllocator allocator;
  const core::Allocation allocation = allocator.allocate(problem);

  std::printf("server budget: %.0f Mbps\n\n", problem.server_bandwidth);
  double used = 0.0;
  for (std::size_t n = 0; n < problem.users.size(); ++n) {
    const auto q = allocation.levels[n];
    const double rate = problem.users[n].rate[q - 1];
    used += rate;
    std::printf("%-20s -> level %d (CRF %2d, %5.1f Mbps, est. delay %.2f ms)\n",
                specs[n].name, q, content::crf_for_level(q), rate,
                problem.users[n].delay[q - 1]);
  }
  std::printf("\ntotal rate: %.1f / %.0f Mbps, objective sum h_n = %.3f\n",
              used, problem.server_bandwidth, allocation.objective);

  // Cross-check against the exact per-slot optimum (cheap at N = 3).
  core::BruteForceAllocator exact;
  std::printf("exact optimum objective:              %.3f\n",
              exact.allocate(problem).objective);
  return 0;
}
