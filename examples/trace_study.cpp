// Trace study: compare quality-allocation policies on the Section-IV
// trace-based simulation platform via the one-call ensemble API, dump
// the QoE CDF series as CSV — ready to plot with any tool (see
// scripts/plot_figures.py).
//
//   $ ./trace_study [users] [runs] > qoe_cdf.csv
#include <cstdio>
#include <cstdlib>

#include "src/experiments/ensemble.h"
#include "src/report/report.h"

int main(int argc, char** argv) {
  using namespace cvr;
  const std::size_t users =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 5;
  const std::size_t runs =
      argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
               : 10;
  if (users == 0 || users > 128 || runs == 0 || runs > 1000) {
    std::fprintf(stderr, "usage: %s [users 1..128] [runs 1..1000]\n", argv[0]);
    return 1;
  }

  experiments::EnsembleSpec spec;
  spec.platform = experiments::EnsembleSpec::Platform::kTrace;
  spec.users = users;
  spec.slots = 3960;  // 60 s
  spec.repeats = runs;
  spec.algorithms = {"dv", "firefly", "pavq", "lagrangian"};
  spec.seed = 7;
  const auto arms = experiments::run_ensemble(spec);

  std::fprintf(stderr, "simulated %zu users x %zu runs x %zu slots\n", users,
               runs, spec.slots);
  for (const auto& arm : arms) {
    std::fprintf(stderr, "  %-16s mean QoE %.3f  Jain(quality) %.4f\n",
                 arm.algorithm.c_str(), arm.mean_qoe(),
                 sim::quality_fairness(arm));
  }

  // CSV to stdout: one row per CDF point per algorithm.
  std::printf("algorithm,avg_qoe,cumulative_probability\n");
  for (const auto& arm : arms) {
    for (const auto& [value, p] : arm.qoe_cdf().curve(101)) {
      std::printf("%s,%.6f,%.4f\n", arm.algorithm.c_str(), value, p);
    }
  }
  return 0;
}
