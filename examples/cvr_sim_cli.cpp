// cvr_sim_cli — configurable experiment runner over the public API.
//
//   $ ./cvr_sim_cli --mode trace --users 10 --seconds 60 --algorithm all
//   $ ./cvr_sim_cli --mode system --routers 2 --users 15 --repeats 3
//   $ ./cvr_sim_cli --help
//
// `trace` mode runs the Section-IV simulation platform (perfect
// knowledge); `system` mode runs the Sections V-VI prototype emulation
// (estimates, RTP loss, decode deadlines). Algorithms: dv, density,
// value, firefly, pavq, optimal (trace mode, <= 8 users), or all.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/registry.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/util/csv.h"
#include "src/util/flags.h"
#include "src/util/units.h"

namespace {

using namespace cvr;

std::vector<std::unique_ptr<core::Allocator>> make_allocators(
    const std::string& which, bool trace_mode, std::size_t users) {
  const core::AllocatorContext context =
      trace_mode ? core::AllocatorContext::kTraceSimulation
                 : core::AllocatorContext::kSystem;
  std::vector<std::unique_ptr<core::Allocator>> out;
  if (which != "all") {
    if (auto allocator = core::make_allocator(which, context)) {
      out.push_back(std::move(allocator));
    }
    return out;
  }
  for (const std::string& name : core::allocator_names()) {
    // "all" means the comparison set, not every solver: skip the exact
    // methods unless they are cheap enough to include, and the argmax
    // variants (identical results to "dv").
    if (name == "dp" || name == "dv-heap" || name == "dv-scan") continue;
    if (name == "optimal" && !(trace_mode && users <= 6)) continue;
    out.push_back(core::make_allocator(name, context));
  }
  return out;
}

void print_results(const std::vector<sim::ArmResult>& arms) {
  std::printf("%-20s %10s %10s %12s %10s %8s\n", "algorithm", "QoE",
              "quality", "delay ms", "variance", "fps");
  for (const auto& arm : arms) {
    std::printf("%-20s %10.3f %10.3f %12.3f %10.3f %8.1f\n",
                arm.algorithm.c_str(), arm.mean_qoe(), arm.mean_quality(),
                arm.mean_delay_ms(), arm.mean_variance(), arm.mean_fps());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "trace";
  std::string algorithm = "all";
  std::int64_t users = 5;
  std::int64_t routers = 1;
  std::int64_t repeats = 5;
  double seconds = 30.0;
  double alpha = -1.0;  // -1 = mode default (0.02 trace / 0.1 system)
  double beta = 0.5;
  std::int64_t seed = 2022;
  bool loss_aware = false;
  std::string timeline_path;
  bool help = false;

  FlagParser parser;
  parser.add("mode", &mode, "experiment mode: trace | system");
  parser.add("algorithm", &algorithm,
             "dv | density | value | firefly | pavq | optimal | all");
  parser.add("users", &users, "number of users");
  parser.add("routers", &routers, "system mode: routers (2 = interference)");
  parser.add("repeats", &repeats, "independent runs/repeats to average");
  parser.add("seconds", &seconds, "simulated seconds per run");
  parser.add("alpha", &alpha, "delay weight (-1 = mode default)");
  parser.add("beta", &beta, "variance weight");
  parser.add("seed", &seed, "master random seed");
  parser.add("loss-aware", &loss_aware,
             "system mode: enable the Section-VIII loss-aware extension");
  parser.add("timeline", &timeline_path,
             "system mode: write a per-slot flight-recorder CSV here "
             "(first algorithm, repeat 0)");
  parser.add("help", &help, "print usage");

  if (!parser.parse(argc, argv) || help) {
    for (const auto& error : parser.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::fputs(parser.usage("cvr_sim_cli").c_str(), help ? stdout : stderr);
    return help ? 0 : 1;
  }
  if (users < 1 || users > 128 || repeats < 1 || seconds <= 0.0 ||
      (mode != "trace" && mode != "system") || (routers != 1 && routers != 2)) {
    std::fprintf(stderr, "invalid arguments\n%s",
                 parser.usage("cvr_sim_cli").c_str());
    return 1;
  }

  const auto slots = static_cast<std::size_t>(seconds / kSlotSeconds);
  const bool trace_mode = mode == "trace";
  auto allocators =
      make_allocators(algorithm, trace_mode, static_cast<std::size_t>(users));
  if (allocators.empty()) {
    std::fprintf(stderr, "no algorithm matches '%s'\n", algorithm.c_str());
    return 1;
  }
  std::vector<core::Allocator*> arm_ptrs;
  for (auto& a : allocators) arm_ptrs.push_back(a.get());

  if (trace_mode) {
    trace::TraceRepositoryConfig repo_config;
    repo_config.fcc.duration_s = seconds;
    repo_config.lte.duration_s = seconds;
    const trace::TraceRepository repo(repo_config,
                                      static_cast<std::uint64_t>(seed));
    sim::TraceSimConfig config;
    config.users = static_cast<std::size_t>(users);
    config.slots = slots;
    config.params = core::QoeParams{alpha < 0 ? 0.02 : alpha, beta};
    config.seed = static_cast<std::uint64_t>(seed);
    const sim::TraceSimulation simulation(config, repo);
    std::printf("trace mode: %lld users x %lld runs x %zu slots "
                "(alpha=%.3f beta=%.3f)\n\n",
                static_cast<long long>(users), static_cast<long long>(repeats),
                slots, config.params.alpha, config.params.beta);
    print_results(
        simulation.compare(arm_ptrs, static_cast<std::size_t>(repeats)));
  } else {
    system::SystemSimConfig config =
        routers == 2 ? system::setup_two_routers(static_cast<std::size_t>(users))
                     : system::setup_one_router(static_cast<std::size_t>(users));
    config.slots = slots;
    config.seed = static_cast<std::uint64_t>(seed);
    config.server.params = core::QoeParams{alpha < 0 ? 0.1 : alpha, beta};
    config.server.loss_aware = loss_aware;
    const system::SystemSim simulation(config);
    std::printf("system mode: %lld users, %lld router(s), %lld repeats x %zu "
                "slots (alpha=%.3f beta=%.3f%s)\n\n",
                static_cast<long long>(users), static_cast<long long>(routers),
                static_cast<long long>(repeats), slots,
                config.server.params.alpha, config.server.params.beta,
                loss_aware ? ", loss-aware" : "");
    print_results(
        simulation.compare(arm_ptrs, static_cast<std::size_t>(repeats)));
    if (!timeline_path.empty()) {
      system::Timeline timeline;
      simulation.run(*arm_ptrs.front(), 0, &timeline);
      write_csv_file(timeline_path, timeline.to_csv());
      std::printf("\nwrote %zu timeline records (%s, repeat 0) to %s\n",
                  timeline.size(),
                  std::string(arm_ptrs.front()->name()).c_str(),
                  timeline_path.c_str());
    }
  }
  return 0;
}
