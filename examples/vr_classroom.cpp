// VR classroom: the paper's motivating scenario (Section V) — a teacher
// and a group of students in a shared virtual scene, streamed from an
// edge server over one Wi-Fi router. Runs the full system emulation
// (prediction, tile requests, RTP transport, decode pipeline, estimation
// from measurements) for 15 seconds and prints per-student results.
//
//   $ ./vr_classroom [students]
#include <cstdio>
#include <cstdlib>

#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main(int argc, char** argv) {
  using namespace cvr;
  std::size_t students = 7;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed < 1 || parsed > 64) {
      std::fprintf(stderr, "usage: %s [students 1..64]\n", argv[0]);
      return 1;
    }
    students = static_cast<std::size_t>(parsed);
  }

  // Teacher + students behind one 802.11ac router, as in setup 1;
  // lecture mode streams the teacher's viewpoint to the whole class
  // (the Section-V pipeline example).
  system::SystemSimConfig config = system::setup_one_router(students + 1);
  config.slots = 990;  // 15 s at 66 FPS
  config.lecture_mode = true;
  const system::SystemSim sim(config);

  std::printf("VR classroom (lecture mode): 1 teacher + %zu students,\n"
              "400 Mbps router, TC throttles {40..60} Mbps, alpha=0.1 "
              "beta=0.5, 15 s\n\n",
              students);

  core::DvGreedyAllocator allocator;
  const auto outcomes = sim.run(allocator, /*repeat=*/0);

  std::printf("%-10s %8s %9s %10s %10s %7s %8s\n", "user", "QoE", "quality",
              "level", "delay ms", "FPS", "pred acc");
  for (std::size_t u = 0; u < outcomes.size(); ++u) {
    const auto& o = outcomes[u];
    std::printf("%-10s %8.3f %9.2f %10.2f %10.2f %7.1f %7.0f%%\n",
                u == 0 ? "teacher" : ("student" + std::to_string(u)).c_str(),
                o.avg_qoe, o.avg_quality, o.avg_level, o.avg_delay_ms, o.fps,
                100.0 * o.prediction_accuracy);
  }

  double qoe = 0.0, fps = 0.0;
  for (const auto& o : outcomes) {
    qoe += o.avg_qoe;
    fps += o.fps;
  }
  std::printf("\nclass average: QoE %.3f, %.1f FPS\n",
              qoe / static_cast<double>(outcomes.size()),
              fps / static_cast<double>(outcomes.size()));
  return 0;
}
