// Custom traces: run the simulator on YOUR network traces instead of
// the synthetic FCC/LTE generators. Demonstrates the trace CSV format
// (duration_s,mbps rows), the slot mapper, and single-trace inspection.
//
//   $ ./custom_traces my_trace.csv            # use a real trace file
//   $ ./custom_traces                         # generate + export a sample
#include <cstdio>

#include "src/core/dv_greedy.h"
#include "src/core/qoe.h"
#include "src/content/rate_function.h"
#include "src/net/mm1.h"
#include "src/trace/fcc_generator.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace cvr;

  trace::NetworkTrace net_trace;
  if (argc > 1) {
    try {
      net_trace = trace::load_trace(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], e.what());
      return 1;
    }
    std::printf("loaded %s: %.1f s, mean %.1f Mbps, %zu segments\n", argv[1],
                net_trace.duration_s(), net_trace.mean_mbps(),
                net_trace.segments().size());
  } else {
    net_trace = trace::FccGenerator().generate(/*seed=*/42);
    const std::string path = "sample_trace.csv";
    trace::save_trace(path, net_trace);
    std::printf("no trace given; generated an FCC-style one and saved it to "
                "%s (%.1f s, mean %.1f Mbps)\n",
                path.c_str(), net_trace.duration_s(), net_trace.mean_mbps());
  }
  net_trace.clip(20.0, 100.0);  // the paper's working range

  // Single-user adaptation along the trace: every second, rebuild the
  // slot problem from the current bandwidth and allocate.
  const content::CrfRateFunction rate_function;
  core::DvGreedyAllocator allocator;
  core::UserQoeAccumulator qoe;
  const core::QoeParams params{0.05, 0.5};

  const trace::SlotMapper mapper(net_trace);
  const std::size_t slots =
      static_cast<std::size_t>(net_trace.duration_s() * 66.0);
  std::printf("\n%8s %10s %7s %12s\n", "time s", "B_n Mbps", "level",
              "delay ms");
  for (std::size_t t = 0; t < slots; ++t) {
    const double bandwidth = mapper.bandwidth_for_slot(t);
    core::SlotProblem problem;
    problem.params = params;
    problem.server_bandwidth = bandwidth;  // single user: B(t) = B_n(t)
    problem.users.push_back(core::UserSlotContext::from_rate_function(
        rate_function, bandwidth, /*delta=*/0.92, qoe.mean_viewed_quality(),
        static_cast<double>(t + 1)));
    const auto allocation = allocator.allocate(problem);
    const auto q = allocation.levels[0];
    const double delay = problem.users[0].delay[q - 1];
    qoe.record(q, /*viewed=*/true, delay);
    if (t % (66 * 10) == 0) {  // print every 10 s
      std::printf("%8.1f %10.1f %7d %12.2f\n",
                  static_cast<double>(t) / 66.0, bandwidth, q, delay);
    }
  }

  std::printf("\nhorizon results: mean level %.2f, mean delay %.2f ms, "
              "quality variance %.3f, avg QoE %.3f\n",
              qoe.mean_level(), qoe.mean_delay(), qoe.variance(),
              qoe.average_qoe(params));
  return 0;
}
