// Application profiles: Section II's guidance made concrete.
//
// "a larger value of alpha is chosen for those applications which are
// more sensitive to the delay, like multi-user VR gaming. Similarly, we
// prefer a larger value of beta when our model is applied to those
// applications requiring consistent content streaming like museum
// touring."
//
//   $ ./app_profiles
//
// Runs the same world under three (alpha, beta) profiles and shows how
// the realized quality/delay/variance mix shifts with the weights.
#include <cstdio>

#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"

int main() {
  using namespace cvr;

  struct Profile {
    const char* name;
    core::QoeParams params;
  };
  const Profile profiles[] = {
      {"balanced classroom", {0.02, 0.5}},   // the paper's Section-IV pick
      {"fast-paced gaming", {0.3, 0.1}},     // delay-dominated
      {"museum tour", {0.01, 3.0}},          // consistency-dominated
  };

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 45.0;
  repo_config.lte.duration_s = 45.0;
  const trace::TraceRepository repo(repo_config, 10);

  std::printf("same 6 users, same network — three application profiles\n\n");
  std::printf("%-20s %8s %8s %10s %12s %10s\n", "profile", "alpha", "beta",
              "quality", "delay ms", "variance");
  for (const Profile& profile : profiles) {
    sim::TraceSimConfig config;
    config.users = 6;
    config.slots = 2970;  // 45 s
    config.params = profile.params;
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator allocator;
    const auto arm = simulation.compare({&allocator}, 6)[0];
    std::printf("%-20s %8.2f %8.2f %10.3f %12.3f %10.3f\n", profile.name,
                profile.params.alpha, profile.params.beta, arm.mean_quality(),
                arm.mean_delay_ms(), arm.mean_variance());
  }

  std::printf(
      "\nreading: the gaming profile buys the lowest delay, the museum\n"
      "profile the flattest quality, and each pays in average quality —\n"
      "the per-application tuning Section II prescribes, driven entirely\n"
      "by the two scalar weights\n");
  return 0;
}
