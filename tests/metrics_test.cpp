#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace cvr::sim {
namespace {

UserOutcome outcome(double qoe, double quality, double delay_ms,
                    double variance, double fps = 0.0) {
  UserOutcome o;
  o.avg_qoe = qoe;
  o.avg_quality = quality;
  o.avg_delay_ms = delay_ms;
  o.variance = variance;
  o.fps = fps;
  return o;
}

TEST(ArmResult, MeansOverOutcomes) {
  ArmResult arm;
  arm.algorithm = "x";
  arm.outcomes = {outcome(1.0, 2.0, 3.0, 0.5, 60.0),
                  outcome(3.0, 4.0, 5.0, 1.5, 50.0)};
  EXPECT_DOUBLE_EQ(arm.mean_qoe(), 2.0);
  EXPECT_DOUBLE_EQ(arm.mean_quality(), 3.0);
  EXPECT_DOUBLE_EQ(arm.mean_delay_ms(), 4.0);
  EXPECT_DOUBLE_EQ(arm.mean_variance(), 1.0);
  EXPECT_DOUBLE_EQ(arm.mean_fps(), 55.0);
}

TEST(ArmResult, EmptyMeansAreZero) {
  ArmResult arm;
  EXPECT_DOUBLE_EQ(arm.mean_qoe(), 0.0);
  EXPECT_DOUBLE_EQ(arm.mean_fps(), 0.0);
}

TEST(ArmResult, CdfsBuiltFromRightFields) {
  ArmResult arm;
  arm.outcomes = {outcome(1.0, 6.0, 10.0, 0.1),
                  outcome(2.0, 5.0, 20.0, 0.2),
                  outcome(3.0, 4.0, 30.0, 0.3)};
  EXPECT_DOUBLE_EQ(arm.qoe_cdf().median(), 2.0);
  EXPECT_DOUBLE_EQ(arm.quality_cdf().median(), 5.0);
  EXPECT_DOUBLE_EQ(arm.delay_ms_cdf().median(), 20.0);
  EXPECT_DOUBLE_EQ(arm.variance_cdf().median(), 0.2);
}

TEST(JainsIndex, EqualSharesArePerfectlyFair) {
  EXPECT_DOUBLE_EQ(jains_index({3.0, 3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(jains_index({5.0}), 1.0);
}

TEST(JainsIndex, KnownValues) {
  // One user gets everything among n: index = 1/n.
  EXPECT_DOUBLE_EQ(jains_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  // {1, 3}: (4)^2 / (2 * 10) = 0.8.
  EXPECT_DOUBLE_EQ(jains_index({1.0, 3.0}), 0.8);
}

TEST(JainsIndex, ScaleInvariant) {
  const std::vector<double> xs = {1.0, 2.0, 5.0};
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(7.0 * x);
  EXPECT_NEAR(jains_index(xs), jains_index(scaled), 1e-12);
}

TEST(JainsIndex, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jains_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jains_index({0.0, 0.0}), 1.0);
  EXPECT_THROW(jains_index({1.0, -0.5}), std::invalid_argument);
}

TEST(QualityFairness, UsesAvgQuality) {
  ArmResult arm;
  arm.outcomes = {outcome(0, 2.0, 0, 0), outcome(0, 2.0, 0, 0)};
  EXPECT_DOUBLE_EQ(quality_fairness(arm), 1.0);
  arm.outcomes.push_back(outcome(0, 6.0, 0, 0));
  EXPECT_LT(quality_fairness(arm), 1.0);
}

TEST(MakeOutcome, PullsFromAccumulator) {
  cvr::core::UserQoeAccumulator acc;
  acc.record(4, true, 2.0);
  acc.record(2, true, 4.0);
  const cvr::core::QoeParams params{0.1, 0.5};
  const UserOutcome o = make_outcome(acc, params, 0.9, 59.5);
  EXPECT_DOUBLE_EQ(o.avg_quality, 3.0);
  EXPECT_DOUBLE_EQ(o.avg_delay_ms, 3.0);
  EXPECT_DOUBLE_EQ(o.variance, 1.0);
  EXPECT_DOUBLE_EQ(o.avg_qoe, acc.average_qoe(params));
  EXPECT_DOUBLE_EQ(o.prediction_accuracy, 0.9);
  EXPECT_DOUBLE_EQ(o.fps, 59.5);
}

}  // namespace
}  // namespace cvr::sim
