#include "src/trace/trace_io.h"

#include "src/trace/trace_repository.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace cvr::trace {
namespace {

TEST(TraceIo, FromCsvBasic) {
  const NetworkTrace t = trace_from_csv("x", "2.0,40\n3.0,60\n");
  EXPECT_EQ(t.name(), "x");
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(t.segments()[1].mbps, 60.0);
  EXPECT_DOUBLE_EQ(t.duration_s(), 5.0);
}

TEST(TraceIo, FromCsvWithHeaderAndComments) {
  const NetworkTrace t =
      trace_from_csv("x", "# trace\nduration_s,mbps\n1,30\n");
  ASSERT_EQ(t.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(t.segments()[0].mbps, 30.0);
}

TEST(TraceIo, WrongColumnCountThrows) {
  EXPECT_THROW(trace_from_csv("x", "1,2,3\n"), std::runtime_error);
}

TEST(TraceIo, InvalidSegmentThrows) {
  // Zero duration is rejected by NetworkTrace's own validation.
  EXPECT_THROW(trace_from_csv("x", "0,40\n"), std::invalid_argument);
}

TEST(TraceIo, ToCsvRoundTrip) {
  const NetworkTrace t("orig", {{1.5, 45.0}, {2.0, 55.5}});
  const NetworkTrace back = trace_from_csv("copy", trace_to_csv(t));
  ASSERT_EQ(back.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(back.segments()[0].duration_s, 1.5);
  EXPECT_DOUBLE_EQ(back.segments()[1].mbps, 55.5);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cvr_trace_io_test.csv")
          .string();
  const NetworkTrace t("orig", {{1.0, 20.0}, {2.0, 80.0}});
  save_trace(path, t);
  const NetworkTrace back = load_trace(path);
  ASSERT_EQ(back.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(back.mean_mbps(), t.mean_mbps());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceIo, LoadDirectorySortedAndFiltered) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "cvr_trace_dir_test";
  fs::create_directories(dir);
  save_trace((dir / "b.csv").string(), NetworkTrace("b", {{1.0, 20.0}}));
  save_trace((dir / "a.csv").string(), NetworkTrace("a", {{1.0, 30.0}}));
  {
    std::ofstream junk(dir / "notes.txt");
    junk << "not a trace";
  }
  const auto traces = load_trace_directory(dir.string());
  ASSERT_EQ(traces.size(), 2u);  // .txt ignored
  // Sorted by filename: a.csv first.
  EXPECT_DOUBLE_EQ(traces[0].segments()[0].mbps, 30.0);
  EXPECT_DOUBLE_EQ(traces[1].segments()[0].mbps, 20.0);
  fs::remove_all(dir);
}

TEST(TraceIo, LoadDirectoryEmptyOk) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "cvr_trace_dir_empty";
  fs::create_directories(dir);
  EXPECT_TRUE(load_trace_directory(dir.string()).empty());
  fs::remove_all(dir);
}

TEST(TraceIo, LoadDirectoryMissingThrows) {
  EXPECT_THROW(load_trace_directory("/nonexistent/dir"), std::runtime_error);
}

TEST(TraceIo, ExternalPoolsDriveRepository) {
  std::vector<NetworkTrace> fcc = {NetworkTrace("f0", {{10.0, 50.0}}),
                                   NetworkTrace("f1", {{10.0, 70.0}})};
  std::vector<NetworkTrace> lte = {NetworkTrace("l0", {{10.0, 30.0}})};
  const TraceRepository repo(std::move(fcc), std::move(lte));
  EXPECT_EQ(repo.fcc_count(), 2u);
  EXPECT_EQ(repo.lte_count(), 1u);
  // Even users draw from the external FCC pool, odd from LTE.
  EXPECT_EQ(repo.assign(0, 0).name().rfind("f", 0), 0u);
  EXPECT_EQ(repo.assign(0, 1).name().rfind("l", 0), 0u);
}

TEST(TraceIo, ExternalEmptyPoolRejected) {
  std::vector<NetworkTrace> fcc = {NetworkTrace("f0", {{10.0, 50.0}})};
  EXPECT_THROW(TraceRepository(std::move(fcc), {}), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::trace
