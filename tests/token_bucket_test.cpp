#include "src/net/token_bucket.h"

#include <gtest/gtest.h>

namespace cvr::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(40.0, 2.0);
  EXPECT_DOUBLE_EQ(tb.available_megabits(), 2.0);
}

TEST(TokenBucket, ConsumeGrantsUpToTokens) {
  TokenBucket tb(40.0, 2.0);
  EXPECT_DOUBLE_EQ(tb.consume(1.5), 1.5);
  EXPECT_DOUBLE_EQ(tb.consume(1.0), 0.5);  // only 0.5 left
  EXPECT_DOUBLE_EQ(tb.consume(1.0), 0.0);
}

TEST(TokenBucket, TickAccruesAtRate) {
  TokenBucket tb(40.0, 10.0);
  tb.consume(10.0);
  tb.tick(0.1);  // 40 Mbps * 0.1 s = 4 Mb
  EXPECT_NEAR(tb.available_megabits(), 4.0, 1e-12);
}

TEST(TokenBucket, BurstCapsAccrual) {
  TokenBucket tb(40.0, 1.0);
  tb.tick(100.0);
  EXPECT_DOUBLE_EQ(tb.available_megabits(), 1.0);
}

TEST(TokenBucket, LongRunThroughputMatchesRate) {
  // Shaping property: over many slots the granted volume approaches
  // rate x time, regardless of burst demand.
  TokenBucket tb(45.0, 0.8);
  const double slot = 1.0 / 66.0;
  double granted = 0.0;
  for (int i = 0; i < 6600; ++i) {  // 100 s
    tb.tick(slot);
    granted += tb.consume(10.0);  // demand far above rate
  }
  const double achieved_mbps = granted / 100.0;
  EXPECT_NEAR(achieved_mbps, 45.0, 0.5);
}

TEST(TokenBucket, SetRateChangesShaping) {
  TokenBucket tb(40.0, 1.0);
  tb.consume(1.0);
  tb.set_rate(80.0);
  tb.tick(0.01);
  EXPECT_NEAR(tb.available_megabits(), 0.8, 1e-12);
}

TEST(TokenBucket, RejectsBadArguments) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(10.0, 0.0), std::invalid_argument);
  TokenBucket tb(10.0, 1.0);
  EXPECT_THROW(tb.tick(-1.0), std::invalid_argument);
  EXPECT_THROW(tb.consume(-1.0), std::invalid_argument);
  EXPECT_THROW(tb.set_rate(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::net
