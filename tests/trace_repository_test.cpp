#include "src/trace/trace_repository.h"

#include <gtest/gtest.h>

namespace cvr::trace {
namespace {

TraceRepositoryConfig small_config() {
  TraceRepositoryConfig config;
  config.fcc_pool_size = 10;
  config.lte_pool_size = 4;
  config.fcc.duration_s = 10.0;
  config.lte.duration_s = 10.0;
  return config;
}

TEST(TraceRepository, PoolSizesMatchConfig) {
  const TraceRepository repo(small_config(), 1);
  EXPECT_EQ(repo.fcc_count(), 10u);
  EXPECT_EQ(repo.lte_count(), 4u);
}

TEST(TraceRepository, RejectsEmptyPool) {
  TraceRepositoryConfig config = small_config();
  config.fcc_pool_size = 0;
  EXPECT_THROW(TraceRepository(config, 1), std::invalid_argument);
}

TEST(TraceRepository, HalfFccHalfLte) {
  // Paper: half of the requested traces from FCC, half from Ghent.
  const TraceRepository repo(small_config(), 1);
  const auto traces = repo.assign_all(0, 6);
  for (std::size_t u = 0; u < 6; ++u) {
    const std::string& name = traces[u]->name();
    if (u % 2 == 0) {
      EXPECT_EQ(name.rfind("fcc-", 0), 0u) << name;
    } else {
      EXPECT_EQ(name.rfind("lte-", 0), 0u) << name;
    }
  }
}

TEST(TraceRepository, AssignmentDeterministic) {
  const TraceRepository repo(small_config(), 1);
  EXPECT_EQ(&repo.assign(3, 2), &repo.assign(3, 2));
}

TEST(TraceRepository, DifferentRunsRotateTraces) {
  const TraceRepository repo(small_config(), 1);
  // Across several runs the same user should not always get the same
  // trace (run rotation).
  bool any_diff = false;
  const NetworkTrace* first = &repo.assign(0, 0);
  for (std::size_t run = 1; run < 5; ++run) {
    if (&repo.assign(run, 0) != first) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceRepository, LtePoolReuseIsGraceful) {
  // More odd users than LTE traces: reuse expected, no crash.
  const TraceRepository repo(small_config(), 1);
  const auto traces = repo.assign_all(0, 30);
  EXPECT_EQ(traces.size(), 30u);
  for (const auto* t : traces) EXPECT_FALSE(t->empty());
}

TEST(TraceRepository, SeedChangesPools) {
  const TraceRepository a(small_config(), 1);
  const TraceRepository b(small_config(), 2);
  EXPECT_NE(a.fcc(0).segments().front().mbps,
            b.fcc(0).segments().front().mbps);
}

}  // namespace
}  // namespace cvr::trace
