#include "src/core/registry.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/pavq.h"

namespace cvr::core {
namespace {

TEST(Registry, EveryListedNameConstructs) {
  for (const std::string& name : allocator_names()) {
    const auto allocator = make_allocator(name);
    ASSERT_NE(allocator, nullptr) << name;
    EXPECT_FALSE(allocator->name().empty());
  }
}

TEST(Registry, UnknownNameIsNull) {
  EXPECT_EQ(make_allocator("nope"), nullptr);
  EXPECT_EQ(make_allocator(""), nullptr);
}

TEST(Registry, NamesMatchAllocatorSelfReports) {
  EXPECT_EQ(make_allocator("dv")->name(), "dv-greedy");
  EXPECT_EQ(make_allocator("dv-heap")->name(), "dv-greedy");
  EXPECT_EQ(make_allocator("density")->name(), "density-greedy");
  EXPECT_EQ(make_allocator("value")->name(), "value-greedy");
  EXPECT_EQ(make_allocator("firefly")->name(), "firefly-aqc");
  EXPECT_EQ(make_allocator("pavq")->name(), "pavq-modified");
  EXPECT_EQ(make_allocator("lagrangian")->name(), "lagrangian");
  EXPECT_EQ(make_allocator("optimal")->name(), "optimal-bruteforce");
  EXPECT_EQ(make_allocator("dp")->name(), "optimal-dp");
}

TEST(Registry, ContextSelectsPavqVariant) {
  // Trace-simulation PAVQ bypasses smoothing (perfect knowledge): on a
  // problem whose bandwidth just changed, the two variants must differ
  // after warm-up on different inputs.
  auto sim_pavq = make_allocator("pavq", AllocatorContext::kTraceSimulation);
  auto sys_pavq = make_allocator("pavq", AllocatorContext::kSystem);
  SlotProblem rich = testutil::random_problem(1, 4);
  SlotProblem poor = rich;
  for (auto& user : poor.users) user.user_bandwidth = 21.0;
  // Warm both on the rich problem, then hit them with the poor one: the
  // system variant's smoothed view lags.
  for (int t = 0; t < 50; ++t) {
    sim_pavq->allocate(rich);
    sys_pavq->allocate(rich);
  }
  const auto sim_levels = sim_pavq->allocate(poor).levels;
  const auto sys_levels = sys_pavq->allocate(poor).levels;
  EXPECT_NE(sim_levels, sys_levels);
}

TEST(Registry, AllocatorsAreIndependentInstances) {
  auto a = make_allocator("firefly");
  auto b = make_allocator("firefly");
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace cvr::core
