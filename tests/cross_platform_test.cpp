// Cross-platform consistency: the Section-IV simulator and the
// Sections-V/VI system emulation are two views of the same world. When
// the system's imperfections are dialled down (no fading, no loss, no
// measurement noise, generous estimation), its behaviour must approach
// the idealised simulator's; and on default settings the two platforms
// must agree on the algorithm ranking.
#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace cvr {
namespace {

system::SystemSimConfig idealized(std::size_t users, std::size_t slots) {
  system::SystemSimConfig config = system::setup_one_router(users);
  config.slots = slots;
  config.channel.fading_sigma = 1e-6;           // still, quiet air
  config.bandwidth_measurement_sigma = 1e-6;    // clean measurements
  config.rtp.base_loss = 0.0;
  config.rtp.congestion_loss = 0.0;
  return config;
}

TEST(CrossPlatform, IdealizedSystemApproachesTraceQuality) {
  // In the clean world the system's viewed quality should land in the
  // same band the trace platform reports for comparable provisioning.
  const std::size_t users = 4;
  system::SystemSimConfig clean = idealized(users, 600);
  core::DvGreedyAllocator a;
  double system_quality = 0.0, system_acc = 0.0;
  for (const auto& o : system::SystemSim(clean).run(a, 0)) {
    system_quality += o.avg_quality;
    system_acc += o.prediction_accuracy;
  }
  system_quality /= static_cast<double>(users);
  system_acc /= static_cast<double>(users);

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 10.0;
  repo_config.lte.duration_s = 10.0;
  const trace::TraceRepository repo(repo_config, 3);
  sim::TraceSimConfig trace_config;
  trace_config.users = users;
  trace_config.slots = 600;
  trace_config.server_mbps_per_user = 100.0;  // ample, like the 400/4 router
  core::DvGreedyAllocator b;
  double trace_quality = 0.0;
  const sim::TraceSimulation simulation(trace_config, repo);
  for (const auto& o : simulation.run(b, 0)) trace_quality += o.avg_quality;
  trace_quality /= static_cast<double>(users);

  EXPECT_GT(system_acc, 0.95);  // clean world: prediction dominates
  // Same ballpark (the platforms differ in content granularity and
  // per-user bandwidth processes, so a band, not equality).
  EXPECT_GT(system_quality, 0.6 * trace_quality);
  EXPECT_LT(system_quality, 1.5 * trace_quality);
}

TEST(CrossPlatform, PlatformsAgreeOnAlgorithmRanking) {
  core::DvGreedyAllocator ours_t, ours_s;
  core::FireflyAllocator firefly_t, firefly_s;
  core::PavqAllocator pavq_t = core::PavqAllocator::perfect_knowledge();
  core::PavqAllocator pavq_s;

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 20.0;
  repo_config.lte.duration_s = 20.0;
  const trace::TraceRepository repo(repo_config, 5);
  sim::TraceSimConfig trace_config;
  trace_config.users = 5;
  trace_config.slots = 1000;
  const sim::TraceSimulation trace_sim(trace_config, repo);
  const auto trace_arms =
      trace_sim.compare({&ours_t, &pavq_t, &firefly_t}, 4);

  system::SystemSimConfig system_config = system::setup_one_router(5);
  system_config.slots = 1000;
  const system::SystemSim system_sim(system_config);
  const auto system_arms =
      system_sim.compare({&ours_s, &pavq_s, &firefly_s}, 2);

  // Both platforms: ours >= PAVQ >= Firefly on mean QoE.
  EXPECT_GE(trace_arms[0].mean_qoe(), trace_arms[1].mean_qoe() - 0.05);
  EXPECT_GT(trace_arms[1].mean_qoe(), trace_arms[2].mean_qoe());
  EXPECT_GT(system_arms[0].mean_qoe(), system_arms[1].mean_qoe());
  EXPECT_GT(system_arms[1].mean_qoe(), system_arms[2].mean_qoe());
}

TEST(CrossPlatform, SystemImperfectionsOnlyHurt) {
  // Turning the real world's teeth back on can only lower QoE relative
  // to the idealized configuration.
  core::DvGreedyAllocator a, b;
  double clean_qoe = 0.0, real_qoe = 0.0;
  for (const auto& o : system::SystemSim(idealized(4, 500)).run(a, 0)) {
    clean_qoe += o.avg_qoe;
  }
  system::SystemSimConfig real = system::setup_one_router(4);
  real.slots = 500;
  for (const auto& o : system::SystemSim(real).run(b, 0)) {
    real_qoe += o.avg_qoe;
  }
  EXPECT_GE(clean_qoe, real_qoe - 0.2);
}

}  // namespace
}  // namespace cvr
