#include "src/core/optimal.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::make_user;
using testutil::random_problem;

TEST(BruteForce, SingleUserPicksArgmax) {
  SlotProblem problem;
  problem.params = QoeParams{0.1, 0.5};
  problem.users.push_back(make_crf_user(60.0, 0.9, 3.0, 10.0));
  problem.server_bandwidth = 1000.0;
  BruteForceAllocator brute;
  const Allocation a = brute.allocate(problem);
  double best = -1e18;
  QualityLevel best_q = 1;
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    if (q > 1 && !user_feasible(problem.users[0], q)) break;
    const double v = h_value(problem.users[0], q, problem.params);
    if (v > best) {
      best = v;
      best_q = q;
    }
  }
  EXPECT_EQ(a.levels[0], best_q);
  EXPECT_NEAR(a.objective, best, 1e-12);
}

TEST(BruteForce, RespectsConstraints) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    BruteForceAllocator brute;
    const Allocation a = brute.allocate(problem);
    EXPECT_TRUE(server_feasible(problem, a.levels)) << seed;
    for (std::size_t n = 0; n < 5; ++n) {
      if (a.levels[n] > 1) {
        EXPECT_TRUE(user_feasible(problem.users[n], a.levels[n])) << seed;
      }
    }
  }
}

TEST(BruteForce, NeverBeatenByAnyFeasibleEnumeration) {
  // Cross-check the DFS against a dumb full enumeration on 3 users.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SlotProblem problem = random_problem(seed, 3);
    BruteForceAllocator brute;
    const double dfs_value = brute.allocate(problem).objective;

    double best = -1e18;
    std::vector<QualityLevel> q(3, 1);
    for (q[0] = 1; q[0] <= 6; ++q[0]) {
      for (q[1] = 1; q[1] <= 6; ++q[1]) {
        for (q[2] = 1; q[2] <= 6; ++q[2]) {
          bool ok = server_feasible(problem, q);
          for (int n = 0; n < 3 && ok; ++n) {
            if (q[static_cast<std::size_t>(n)] > 1 &&
                !user_feasible(problem.users[static_cast<std::size_t>(n)],
                               q[static_cast<std::size_t>(n)])) {
              ok = false;
            }
          }
          if (ok) best = std::max(best, evaluate(problem, q));
        }
      }
    }
    EXPECT_NEAR(dfs_value, best, 1e-9) << seed;
  }
}

TEST(BruteForce, TooManyUsersThrows) {
  SlotProblem problem = random_problem(1, 9);
  BruteForceAllocator brute(8);
  EXPECT_THROW(brute.allocate(problem), std::invalid_argument);
}

TEST(BruteForce, EmptyProblem) {
  SlotProblem problem;
  BruteForceAllocator brute;
  EXPECT_TRUE(brute.allocate(problem).levels.empty());
}

TEST(BruteForce, InfeasibleMinimumFallsBackToAllOnes) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 1.0;
  BruteForceAllocator brute;
  EXPECT_EQ(brute.allocate(problem).levels,
            (std::vector<QualityLevel>{1, 1}));
}

TEST(DpAllocator, MatchesBruteForceOnFineGrid) {
  // With granularity far below any rate increment, DP == brute force.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    BruteForceAllocator brute;
    DpAllocator dp(0.01);
    const double exact = brute.allocate(problem).objective;
    const double approx = dp.allocate(problem).objective;
    EXPECT_NEAR(approx, exact, std::abs(exact) * 1e-3 + 1e-6) << seed;
  }
}

TEST(DpAllocator, AlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SlotProblem problem = random_problem(seed, 12);
    DpAllocator dp(0.1);
    const Allocation a = dp.allocate(problem);
    EXPECT_TRUE(server_feasible(problem, a.levels)) << seed;
  }
}

TEST(DpAllocator, ScalesToManyUsers) {
  SlotProblem problem = random_problem(3, 30);
  DpAllocator dp(0.25);
  const Allocation a = dp.allocate(problem);
  EXPECT_EQ(a.levels.size(), 30u);
  EXPECT_TRUE(server_feasible(problem, a.levels));
}

TEST(DpAllocator, CoarseGridStillFeasibleJustWeaker) {
  SlotProblem problem = random_problem(7, 6);
  DpAllocator fine(0.05);
  DpAllocator coarse(2.0);
  const double vf = fine.allocate(problem).objective;
  const double vc = coarse.allocate(problem).objective;
  EXPECT_LE(vc, vf + 1e-9);
  EXPECT_TRUE(server_feasible(problem, coarse.allocate(problem).levels));
}

TEST(DpAllocator, RejectsBadGranularity) {
  EXPECT_THROW(DpAllocator{0.0}, std::invalid_argument);
  EXPECT_THROW(DpAllocator{-1.0}, std::invalid_argument);
}

TEST(DpAllocator, InfeasibleMinimumFallsBackToAllOnes) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 0.5;
  DpAllocator dp(0.1);
  EXPECT_EQ(dp.allocate(problem).levels, (std::vector<QualityLevel>{1}));
}

TEST(FractionalBound, UpperBoundsBruteForce) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    BruteForceAllocator brute;
    const double exact = brute.allocate(problem).objective;
    const double bound = fractional_upper_bound(problem);
    EXPECT_GE(bound, exact - 1e-9) << seed;
  }
}

TEST(FractionalBound, TightWhenBudgetAmple) {
  // With a huge budget there is no fractional item: bound == optimum.
  SlotProblem problem = random_problem(4, 4);
  problem.server_bandwidth = 1e6;
  BruteForceAllocator brute;
  EXPECT_NEAR(fractional_upper_bound(problem),
              brute.allocate(problem).objective, 1e-9);
}

TEST(FractionalBound, EqualsAllOnesValueWhenNoBudget) {
  SlotProblem problem = random_problem(5, 4);
  problem.server_bandwidth = 0.0;
  const std::vector<QualityLevel> ones(4, 1);
  EXPECT_NEAR(fractional_upper_bound(problem), evaluate(problem, ones), 1e-9);
}

TEST(OptimalVsGreedy, OptimalNeverLoses) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    BruteForceAllocator brute;
    DvGreedyAllocator greedy;
    EXPECT_GE(brute.allocate(problem).objective,
              greedy.allocate(problem).objective - 1e-9)
        << seed;
  }
}

}  // namespace
}  // namespace cvr::core
