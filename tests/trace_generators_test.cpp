#include <gtest/gtest.h>

#include "src/trace/fcc_generator.h"
#include "src/trace/lte_generator.h"
#include "src/util/stats.h"

namespace cvr::trace {
namespace {

TEST(FccGenerator, Deterministic) {
  FccGenerator gen;
  const NetworkTrace a = gen.generate(42, 3);
  const NetworkTrace b = gen.generate(42, 3);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].mbps, b.segments()[i].mbps);
    EXPECT_DOUBLE_EQ(a.segments()[i].duration_s, b.segments()[i].duration_s);
  }
}

TEST(FccGenerator, DifferentIndicesDiffer) {
  FccGenerator gen;
  const NetworkTrace a = gen.generate(42, 0);
  const NetworkTrace b = gen.generate(42, 1);
  bool any_diff = a.segments().size() != b.segments().size();
  for (std::size_t i = 0; !any_diff && i < a.segments().size(); ++i) {
    any_diff = a.segments()[i].mbps != b.segments()[i].mbps;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FccGenerator, DurationMatchesConfig) {
  FccGeneratorConfig config;
  config.duration_s = 123.0;
  FccGenerator gen(config);
  EXPECT_NEAR(gen.generate(1).duration_s(), 123.0, 1e-9);
}

TEST(FccGenerator, ThroughputWithinClipRange) {
  FccGenerator gen;  // defaults: 20..100 Mbps (Section IV)
  for (std::uint64_t i = 0; i < 10; ++i) {
    const NetworkTrace t = gen.generate(7, i);
    for (const auto& seg : t.segments()) {
      EXPECT_GE(seg.mbps, 20.0);
      EXPECT_LE(seg.mbps, 100.0);
    }
  }
}

TEST(FccGenerator, DwellTimesAreMultiSecond) {
  FccGenerator gen;
  const NetworkTrace t = gen.generate(9);
  cvr::RunningStat dwell;
  for (const auto& seg : t.segments()) dwell.add(seg.duration_s);
  EXPECT_GE(dwell.min(), 1.0);   // configured floor
  EXPECT_GT(dwell.mean(), 2.0);  // multi-second on average
}

TEST(FccGenerator, RejectsBadConfig) {
  FccGeneratorConfig bad;
  bad.duration_s = -1.0;
  EXPECT_THROW(FccGenerator{bad}, std::invalid_argument);
  FccGeneratorConfig inverted;
  inverted.min_mbps = 50.0;
  inverted.max_mbps = 40.0;
  EXPECT_THROW(FccGenerator{inverted}, std::invalid_argument);
}

TEST(LteGenerator, Deterministic) {
  LteGenerator gen;
  const NetworkTrace a = gen.generate(5, 2);
  const NetworkTrace b = gen.generate(5, 2);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].mbps, b.segments()[i].mbps);
  }
}

TEST(LteGenerator, PerSecondSampling) {
  LteGenerator gen;
  const NetworkTrace t = gen.generate(1);
  ASSERT_FALSE(t.segments().empty());
  for (std::size_t i = 0; i + 1 < t.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(t.segments()[i].duration_s, 1.0);
  }
  EXPECT_NEAR(t.duration_s(), 300.0, 1e-9);
}

TEST(LteGenerator, WithinClipRange) {
  LteGenerator gen;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const NetworkTrace t = gen.generate(11, i);
    for (const auto& seg : t.segments()) {
      EXPECT_GE(seg.mbps, 20.0);
      EXPECT_LE(seg.mbps, 100.0);
    }
  }
}

TEST(LteGenerator, StrongAutocorrelation) {
  // Lag-1 autocorrelation of the per-second series should be clearly
  // positive (AR(1) with rho = 0.85, fades only strengthen it).
  LteGenerator gen;
  const NetworkTrace t = gen.generate(3);
  const auto& segs = t.segments();
  ASSERT_GT(segs.size(), 100u);
  cvr::RunningStat stat;
  for (const auto& seg : segs) stat.add(seg.mbps);
  double cov = 0.0;
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    cov += (segs[i].mbps - stat.mean()) * (segs[i + 1].mbps - stat.mean());
  }
  cov /= static_cast<double>(segs.size() - 1);
  const double rho = cov / stat.population_variance();
  EXPECT_GT(rho, 0.5);
}

TEST(LteGenerator, FadesProduceLowTail) {
  // With fade depth 0.45 the distribution should reach well below the
  // median occasionally.
  LteGeneratorConfig config;
  config.fade_enter_prob = 0.1;  // more fades for a robust test
  LteGenerator gen(config);
  double min_seen = 1e9;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const NetworkTrace t = gen.generate(17, i);
    for (const auto& seg : t.segments()) min_seen = std::min(min_seen, seg.mbps);
  }
  EXPECT_LE(min_seen, 25.0);
}

TEST(LteGenerator, RejectsBadConfig) {
  LteGeneratorConfig bad;
  bad.ar_coefficient = 1.5;
  EXPECT_THROW(LteGenerator{bad}, std::invalid_argument);
}

TEST(Generators, FccIsBurstierPerLevelThanLte) {
  // FCC levels are nearly independent (rho 0.3) while LTE is strongly
  // correlated per second; comparing consecutive-sample absolute jumps,
  // normalised by spread, FCC should jump more.
  FccGenerator fcc;
  LteGenerator lte;
  auto mean_jump = [](const NetworkTrace& t) {
    const auto& segs = t.segments();
    double jump = 0.0;
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      jump += std::abs(segs[i + 1].mbps - segs[i].mbps);
    }
    return jump / static_cast<double>(segs.size() - 1);
  };
  double fcc_jump = 0.0, lte_jump = 0.0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    fcc_jump += mean_jump(fcc.generate(23, i));
    lte_jump += mean_jump(lte.generate(23, i));
  }
  EXPECT_GT(fcc_jump, lte_jump);
}

}  // namespace
}  // namespace cvr::trace
