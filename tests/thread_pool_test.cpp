#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cvr {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(resolve_thread_count(0), 1u);  // 0 = hardware, at least 1
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
}

TEST(ThreadPool, ZeroWorkersThrows) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, ReportsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&executed] { ++executed; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, FuturesKeepSubmissionOrderRegardlessOfExecutionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  // Whatever order the workers ran the tasks in, the i-th future holds
  // the i-th task's result — the property the ensemble's spec-order
  // reduction rests on.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("cell exploded");
  });
  auto good = pool.submit([] { return 41 + 1; });
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "cell exploded");
          throw;
        }
      },
      std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(good.get(), 42);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([&executed, i] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++executed;
        return i;
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(executed.load(), 50);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get(), i);
  }
}

TEST(ThreadPool, ManyProducersOneQueue) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> producers;
  std::vector<std::future<void>> futures[4];
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &total, &futures, p] {
      for (int i = 0; i < 25; ++i) {
        futures[p].push_back(pool.submit([&total] { ++total; }));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  for (auto& per_producer : futures) {
    for (auto& future : per_producer) future.get();
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, NestedSubmitFromWorkerRunsInline) {
  // A worker submitting to its own pool must not enqueue (a pool with
  // one busy worker would deadlock on its own FIFO); the nested task
  // runs inline and its future is ready before submit() returns.
  ThreadPool pool(1);
  std::atomic<int> order{0};
  auto outer = pool.submit([&pool, &order] {
    EXPECT_TRUE(pool.on_worker_thread());
    int inner_at = -1;
    auto inner = pool.submit([&order, &inner_at] { inner_at = ++order; });
    EXPECT_EQ(inner.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    inner.get();
    EXPECT_EQ(inner_at, 1);
    ++order;
  });
  outer.get();
  EXPECT_EQ(order.load(), 2);
}

TEST(ThreadPool, OnWorkerThreadIsPerPool) {
  // Thread identity is per pool: a worker of pool A is not "on" pool B,
  // so A's workers may still fan out to B (the fleet/allocator
  // composition in docs/fleet.md relies on this).
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.on_worker_thread());
  EXPECT_FALSE(b.on_worker_thread());
  auto checked = a.submit([&a, &b] {
    EXPECT_TRUE(a.on_worker_thread());
    EXPECT_FALSE(b.on_worker_thread());
    // Cross-pool submit enqueues normally and completes.
    auto cross = b.submit([&b] { return b.on_worker_thread(); });
    EXPECT_TRUE(cross.get());
  });
  checked.get();
}

TEST(ThreadPool, NestedSubmitExceptionStaysInFuture) {
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { throw std::runtime_error("inner"); });
    EXPECT_THROW(inner.get(), std::runtime_error);
  });
  outer.get();
}

}  // namespace
}  // namespace cvr
