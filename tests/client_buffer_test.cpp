#include "src/content/client_buffer.h"

#include <gtest/gtest.h>

namespace cvr::content {
namespace {

VideoId id(int n) { return pack_video_id({{n, 0}, 0, 1}); }

TEST(ClientTileBuffer, InsertBelowThresholdReleasesNothing) {
  ClientTileBuffer buffer(3);
  EXPECT_TRUE(buffer.insert(id(1)).empty());
  EXPECT_TRUE(buffer.insert(id(2)).empty());
  EXPECT_TRUE(buffer.insert(id(3)).empty());
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(ClientTileBuffer, OverflowReleasesLru) {
  ClientTileBuffer buffer(3);
  buffer.insert(id(1));
  buffer.insert(id(2));
  buffer.insert(id(3));
  const auto released = buffer.insert(id(4));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], id(1));
  EXPECT_FALSE(buffer.contains(id(1)));
  EXPECT_TRUE(buffer.contains(id(4)));
  EXPECT_EQ(buffer.released_total(), 1u);
}

TEST(ClientTileBuffer, ReinsertRefreshesRecency) {
  ClientTileBuffer buffer(3);
  buffer.insert(id(1));
  buffer.insert(id(2));
  buffer.insert(id(3));
  buffer.insert(id(1));  // refresh 1: now 2 is LRU
  const auto released = buffer.insert(id(4));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], id(2));
}

TEST(ClientTileBuffer, TouchRefreshesRecency) {
  ClientTileBuffer buffer(3);
  buffer.insert(id(1));
  buffer.insert(id(2));
  buffer.insert(id(3));
  EXPECT_TRUE(buffer.touch(id(1)));
  const auto released = buffer.insert(id(4));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], id(2));
}

TEST(ClientTileBuffer, TouchMissingReturnsFalse) {
  ClientTileBuffer buffer(3);
  EXPECT_FALSE(buffer.touch(id(9)));
}

TEST(ClientTileBuffer, DuplicateInsertDoesNotGrow) {
  ClientTileBuffer buffer(3);
  buffer.insert(id(1));
  buffer.insert(id(1));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(ClientTileBuffer, ThresholdOneKeepsNewestOnly) {
  ClientTileBuffer buffer(1);
  buffer.insert(id(1));
  const auto released = buffer.insert(id(2));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], id(1));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(ClientTileBuffer, RejectsZeroThreshold) {
  EXPECT_THROW(ClientTileBuffer{0}, std::invalid_argument);
}

TEST(ClientTileBuffer, ManyInsertsStayBounded) {
  ClientTileBuffer buffer(50);
  for (int i = 0; i < 1000; ++i) buffer.insert(id(i));
  EXPECT_EQ(buffer.size(), 50u);
  EXPECT_EQ(buffer.released_total(), 950u);
  // Most recent 50 resident.
  EXPECT_TRUE(buffer.contains(id(999)));
  EXPECT_TRUE(buffer.contains(id(950)));
  EXPECT_FALSE(buffer.contains(id(949)));
}

}  // namespace
}  // namespace cvr::content
