#include "src/content/rate_function.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvr::content {
namespace {

TEST(CrfRateFunction, DefaultCalibration) {
  // DESIGN.md: geometric mean of levels 3 and 4 ~ 36 Mbps (the paper's
  // per-user medium-quality provisioning).
  const CrfRateFunction f;
  const double mid = std::sqrt(f.rate(3) * f.rate(4));
  EXPECT_NEAR(mid, 36.0, 2.0);
}

TEST(CrfRateFunction, ConvexIncreasing) {
  const CrfRateFunction f;
  EXPECT_TRUE(f.is_convex_increasing());
}

TEST(CrfRateFunction, GeometricGrowth) {
  const CrfRateFunction f(10.0, 1.5, 1.0);
  EXPECT_DOUBLE_EQ(f.rate(1), 10.0);
  EXPECT_DOUBLE_EQ(f.rate(2), 15.0);
  EXPECT_NEAR(f.rate(6), 10.0 * std::pow(1.5, 5), 1e-9);
}

TEST(CrfRateFunction, ScaleIsLinear) {
  const CrfRateFunction base(10.0, 1.4, 1.0);
  const CrfRateFunction scaled(10.0, 1.4, 2.5);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    EXPECT_NEAR(scaled.rate(q), 2.5 * base.rate(q), 1e-9);
  }
}

TEST(CrfRateFunction, IncrementMatchesDifference) {
  const CrfRateFunction f;
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    EXPECT_DOUBLE_EQ(f.increment(q), f.rate(q + 1) - f.rate(q));
  }
}

TEST(CrfRateFunction, InvalidLevelThrows) {
  const CrfRateFunction f;
  EXPECT_THROW(f.rate(0), std::out_of_range);
  EXPECT_THROW(f.rate(7), std::out_of_range);
}

TEST(CrfRateFunction, RejectsBadParameters) {
  EXPECT_THROW(CrfRateFunction(-1.0, 1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(CrfRateFunction(10.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CrfRateFunction(10.0, 1.5, 0.0), std::invalid_argument);
}

TEST(TableRateFunction, AcceptsValidTable) {
  const TableRateFunction f({10, 15, 22, 31, 44, 60});
  EXPECT_DOUBLE_EQ(f.rate(1), 10.0);
  EXPECT_DOUBLE_EQ(f.rate(6), 60.0);
  EXPECT_TRUE(f.is_convex_increasing());
}

TEST(TableRateFunction, RejectsWrongSize) {
  EXPECT_THROW(TableRateFunction({1, 2, 3}), std::invalid_argument);
}

TEST(TableRateFunction, RejectsNonIncreasing) {
  EXPECT_THROW(TableRateFunction({10, 15, 14, 31, 44, 60}),
               std::invalid_argument);
}

TEST(TableRateFunction, RejectsNonConvex) {
  // Increments 5, 10, 2: not convex.
  EXPECT_THROW(TableRateFunction({10, 15, 25, 27, 44, 60}),
               std::invalid_argument);
}

TEST(TableRateFunction, RejectsNonPositive) {
  EXPECT_THROW(TableRateFunction({0, 15, 22, 31, 44, 60}),
               std::invalid_argument);
}

TEST(ContentRateModel, Deterministic) {
  const ContentRateModel model({}, 5);
  const auto a = model.for_content(17);
  const auto b = model.for_content(17);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    EXPECT_DOUBLE_EQ(a.rate(q), b.rate(q));
  }
}

TEST(ContentRateModel, ContentsDiffer) {
  const ContentRateModel model({}, 5);
  EXPECT_NE(model.for_content(1).rate(3), model.for_content(2).rate(3));
}

TEST(ContentRateModel, AllContentsConvexIncreasing) {
  // Fig. 1a property holds for every generated content.
  const ContentRateModel model({}, 5);
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_TRUE(model.for_content(c).is_convex_increasing()) << c;
  }
}

TEST(ContentRateModel, ScaleSpreadIsModerate) {
  const ContentRateModel model({}, 5);
  double lo = 1e18, hi = 0.0;
  for (std::uint64_t c = 0; c < 500; ++c) {
    const double r = model.for_content(c).rate(3);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_GT(lo, 5.0);
  EXPECT_LT(hi, 120.0);
}

TEST(ContentRateModel, RejectsBadConfig) {
  ContentRateModel::Config bad;
  bad.growth_jitter = 0.5;  // >= growth - 1
  EXPECT_THROW(ContentRateModel(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::content
