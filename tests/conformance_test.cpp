// Allocator conformance battery, run over EVERY registry entry: the
// contract any policy must satisfy to plug into the simulators. A new
// allocator gets this entire suite for free by registering its name.
#include <gtest/gtest.h>

#include <cmath>

#include "core_test_util.h"
#include "src/core/registry.h"

namespace cvr::core {
namespace {

using testutil::random_problem;

class AllocatorConformance : public ::testing::TestWithParam<std::string> {
 protected:
  // Exact solvers are exponential/pseudo-polynomial: keep N small.
  std::size_t users_for(const std::string& name) const {
    return (name == "optimal") ? 5 : 8;
  }
};

TEST_P(AllocatorConformance, ReturnsValidLevelsForEveryUser) {
  auto allocator = make_allocator(GetParam());
  ASSERT_NE(allocator, nullptr);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SlotProblem problem = random_problem(seed, users_for(GetParam()));
    const Allocation a = allocator->allocate(problem);
    ASSERT_EQ(a.levels.size(), problem.user_count());
    for (QualityLevel q : a.levels) {
      EXPECT_TRUE(content::is_valid_level(q)) << GetParam();
    }
    EXPECT_TRUE(std::isfinite(a.objective)) << GetParam();
  }
}

TEST_P(AllocatorConformance, ObjectiveMatchesEvaluate) {
  auto allocator = make_allocator(GetParam());
  const SlotProblem problem = random_problem(3, users_for(GetParam()));
  const Allocation a = allocator->allocate(problem);
  EXPECT_NEAR(a.objective, evaluate(problem, a.levels), 1e-9) << GetParam();
}

TEST_P(AllocatorConformance, RespectsUserConstraintAboveMinimum) {
  auto allocator = make_allocator(GetParam());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SlotProblem problem = random_problem(seed, users_for(GetParam()));
    const Allocation a = allocator->allocate(problem);
    for (std::size_t n = 0; n < problem.user_count(); ++n) {
      if (a.levels[n] > 1) {
        EXPECT_TRUE(user_feasible(problem.users[n], a.levels[n]))
            << GetParam() << " seed " << seed;
      }
    }
  }
}

TEST_P(AllocatorConformance, FreshInstancesAgree) {
  // Same inputs, fresh state -> same outputs (determinism).
  const SlotProblem problem = random_problem(9, users_for(GetParam()));
  auto a = make_allocator(GetParam());
  auto b = make_allocator(GetParam());
  EXPECT_EQ(a->allocate(problem).levels, b->allocate(problem).levels)
      << GetParam();
}

TEST_P(AllocatorConformance, ResetRestoresInitialBehaviour) {
  const SlotProblem problem = random_problem(11, users_for(GetParam()));
  auto allocator = make_allocator(GetParam());
  const auto first = allocator->allocate(problem).levels;
  for (int i = 0; i < 25; ++i) allocator->allocate(problem);
  allocator->reset();
  EXPECT_EQ(allocator->allocate(problem).levels, first) << GetParam();
}

TEST_P(AllocatorConformance, ConvergesToMandatoryMinimumUnderStarvation) {
  // Budget below even the all-ones minimum: every policy must settle at
  // the mandatory minimum. Stateless policies do so immediately; PAVQ's
  // dual price needs slots to climb, so we give every allocator the
  // same (generous) convergence budget and judge the steady state.
  auto allocator = make_allocator(GetParam());
  SlotProblem problem = random_problem(13, 1);
  problem.server_bandwidth = 1.0;  // below even the minimum
  Allocation a;
  for (int t = 0; t < 20000; ++t) a = allocator->allocate(problem);
  ASSERT_EQ(a.levels.size(), 1u);
  EXPECT_EQ(a.levels[0], 1) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Registry, AllocatorConformance,
                         ::testing::ValuesIn(allocator_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cvr::core
