#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace cvr {
namespace {

TEST(FlagParser, ParsesAllTypes) {
  bool flag_b = false;
  std::int64_t flag_i = 1;
  double flag_d = 0.5;
  std::string flag_s = "x";
  FlagParser parser;
  parser.add("b", &flag_b, "bool");
  parser.add("i", &flag_i, "int");
  parser.add("d", &flag_d, "double");
  parser.add("s", &flag_s, "string");
  const char* argv[] = {"prog", "--b", "--i", "42", "--d=2.5", "--s", "hello"};
  ASSERT_TRUE(parser.parse(7, argv));
  EXPECT_TRUE(flag_b);
  EXPECT_EQ(flag_i, 42);
  EXPECT_DOUBLE_EQ(flag_d, 2.5);
  EXPECT_EQ(flag_s, "hello");
}

TEST(FlagParser, DefaultsPreservedWhenAbsent) {
  std::int64_t flag_i = 7;
  FlagParser parser;
  parser.add("i", &flag_i, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(flag_i, 7);
}

TEST(FlagParser, BoolExplicitValueAndNegation) {
  bool verbose = true;
  FlagParser parser;
  parser.add("verbose", &verbose, "");
  const char* off[] = {"prog", "--no-verbose"};
  ASSERT_TRUE(parser.parse(2, off));
  EXPECT_FALSE(verbose);
  const char* on[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(parser.parse(2, on));
  EXPECT_TRUE(verbose);
  const char* zero[] = {"prog", "--verbose=0"};
  ASSERT_TRUE(parser.parse(2, zero));
  EXPECT_FALSE(verbose);
}

TEST(FlagParser, UnknownFlagIsError) {
  FlagParser parser;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(parser.parse(2, argv));
  ASSERT_EQ(parser.errors().size(), 1u);
  EXPECT_NE(parser.errors()[0].find("unknown flag"), std::string::npos);
}

TEST(FlagParser, BadValuesCollected) {
  std::int64_t flag_i = 0;
  double flag_d = 0.0;
  FlagParser parser;
  parser.add("i", &flag_i, "");
  parser.add("d", &flag_d, "");
  const char* argv[] = {"prog", "--i", "abc", "--d=xyz"};
  EXPECT_FALSE(parser.parse(4, argv));
  EXPECT_EQ(parser.errors().size(), 2u);
}

TEST(FlagParser, MissingValueIsError) {
  std::int64_t flag_i = 0;
  FlagParser parser;
  parser.add("i", &flag_i, "");
  const char* argv[] = {"prog", "--i"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(FlagParser, PositionalsCollected) {
  FlagParser parser;
  const char* argv[] = {"prog", "input.csv", "more"};
  ASSERT_TRUE(parser.parse(3, argv));
  ASSERT_EQ(parser.positionals().size(), 2u);
  EXPECT_EQ(parser.positionals()[0], "input.csv");
}

TEST(FlagParser, DuplicateRegistrationThrows) {
  bool a = false, b = false;
  FlagParser parser;
  parser.add("x", &a, "");
  EXPECT_THROW(parser.add("x", &b, ""), std::invalid_argument);
}

TEST(FlagParser, UsageMentionsFlagsAndDefaults) {
  std::int64_t users = 8;
  FlagParser parser;
  parser.add("users", &users, "number of users");
  const std::string usage = parser.usage("cvr_sim");
  EXPECT_NE(usage.find("--users"), std::string::npos);
  EXPECT_NE(usage.find("number of users"), std::string::npos);
  EXPECT_NE(usage.find("default 8"), std::string::npos);
}

TEST(FlagParser, ReparseClearsState) {
  std::int64_t flag_i = 0;
  FlagParser parser;
  parser.add("i", &flag_i, "");
  const char* bad[] = {"prog", "--i", "zz"};
  EXPECT_FALSE(parser.parse(3, bad));
  const char* good[] = {"prog", "--i", "3"};
  EXPECT_TRUE(parser.parse(3, good));
  EXPECT_TRUE(parser.errors().empty());
  EXPECT_EQ(flag_i, 3);
}

TEST(FlagParser, NegatedNonBoolIsUnknown) {
  std::int64_t flag_i = 0;
  FlagParser parser;
  parser.add("i", &flag_i, "");
  const char* argv[] = {"prog", "--no-i"};
  EXPECT_FALSE(parser.parse(2, argv));
}

}  // namespace
}  // namespace cvr
