#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace cvr {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(old);
}

TEST(Logging, MacrosCompileAndRespectGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  // These must not crash and must not evaluate visibly; mainly a
  // compile/smoke check of the macro plumbing.
  CVR_DEBUG << "debug " << 1;
  CVR_INFO << "info " << 2.5;
  CVR_WARN << "warn " << "x";
  CVR_ERROR << "error";
  set_log_level(old);
}

TEST(Logging, StreamedExpressionNotEvaluatedWhenGated) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return 42;
  };
  CVR_DEBUG << side_effect();
  EXPECT_EQ(evaluations, 0);
  set_log_level(old);
}

TEST(Logging, DefaultLevelIsWarn) {
  // The library promises quiet tests by default; this pins the contract.
  // (Other tests restore the level, so inspect a fresh expectation.)
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace cvr
