#include "src/util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace cvr {
namespace {

TEST(SplitCsvLine, BasicAndTrims) {
  const auto fields = split_csv_line("  a , b,c ,  d  ");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
  EXPECT_EQ(fields[3], "d");
}

TEST(SplitCsvLine, EmptyFieldsPreserved) {
  const auto fields = split_csv_line("1,,3");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(SplitCsvLine, AlternateDelimiter) {
  const auto fields = split_csv_line("1;2;3", ';');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "3");
}

TEST(ParseCsv, NumericNoHeader) {
  const CsvTable t = parse_csv("1,2\n3,4\n");
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][1], 4.0);
}

TEST(ParseCsv, HeaderDetected) {
  const CsvTable t = parse_csv("duration_s,mbps\n1.5,40\n");
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "duration_s");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(t.rows[0][0], 1.5);
}

TEST(ParseCsv, CommentsAndBlanksSkipped) {
  const CsvTable t = parse_csv("# comment\n\n1,2\n\n# another\n3,4\n");
  EXPECT_TRUE(t.header.empty());
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(ParseCsv, MissingTrailingNewlineOk) {
  const CsvTable t = parse_csv("1,2\n3,4");
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(ParseCsv, BadNumericThrows) {
  EXPECT_THROW(parse_csv("1,2\n3,oops\n"), std::runtime_error);
}

TEST(ParseCsv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("1,2\n3\n"), std::runtime_error);
}

TEST(ParseCsv, NegativeAndScientific) {
  const CsvTable t = parse_csv("-1.5,2e3\n");
  EXPECT_DOUBLE_EQ(t.rows[0][0], -1.5);
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2000.0);
}

TEST(ParseCsv, EmptyInputYieldsEmptyTable) {
  const CsvTable t = parse_csv("");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(ToCsv, RoundTrips) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{1.0, 2.5}, {3.0, 4.0}};
  const CsvTable back = parse_csv(to_csv(t));
  ASSERT_EQ(back.header.size(), 2u);
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(back.rows[0][1], 2.5);
}

TEST(CsvFile, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cvr_csv_test.csv").string();
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{1.0, 2.0}, {3.0, 4.0}};
  write_csv_file(path, t);
  const CsvTable back = read_csv_file(path);
  EXPECT_EQ(back.rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace cvr
