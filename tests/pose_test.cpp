#include "src/motion/pose.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvr::motion {
namespace {

TEST(WrapDegrees, CanonicalRange) {
  EXPECT_DOUBLE_EQ(wrap_degrees(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(179.0), 179.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(180.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(-180.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(540.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(wrap_degrees(725.0), 5.0);
}

TEST(AngularDifference, ShortestWay) {
  EXPECT_DOUBLE_EQ(angular_difference(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angular_difference(350.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(angular_difference(90.0, 0.0), 90.0);
  EXPECT_DOUBLE_EQ(angular_difference(0.0, 0.0), 0.0);
}

TEST(AngularDifference, AntipodalIsPlus180) {
  EXPECT_DOUBLE_EQ(angular_difference(180.0, 0.0), 180.0);
  EXPECT_DOUBLE_EQ(angular_difference(0.0, 180.0), 180.0);
}

TEST(AngularDifference, AntiSymmetryAwayFromBoundary) {
  for (double a : {-120.0, -30.0, 5.0, 77.0}) {
    for (double b : {-90.0, 0.0, 33.0, 140.0}) {
      if (std::abs(angular_difference(a, b)) == 180.0) continue;
      EXPECT_DOUBLE_EQ(angular_difference(a, b), -angular_difference(b, a));
    }
  }
}

TEST(Pose, NormalizedWrapsAnglesAndClampsPitch) {
  Pose p;
  p.yaw = 270.0;
  p.pitch = 120.0;
  p.roll = -200.0;
  const Pose n = p.normalized();
  EXPECT_DOUBLE_EQ(n.yaw, -90.0);
  EXPECT_DOUBLE_EQ(n.pitch, 90.0);
  EXPECT_DOUBLE_EQ(n.roll, 160.0);
}

TEST(Pose, PositionDistanceEuclidean) {
  Pose a, b;
  a.x = 1.0;
  a.y = 2.0;
  a.z = 3.0;
  b.x = 4.0;
  b.y = 6.0;
  b.z = 3.0;
  EXPECT_DOUBLE_EQ(a.position_distance(b), 5.0);
  EXPECT_DOUBLE_EQ(b.position_distance(a), 5.0);
  EXPECT_DOUBLE_EQ(a.position_distance(a), 0.0);
}

TEST(Pose, ViewAngleZeroForSameDirection) {
  Pose a, b;
  a.yaw = b.yaw = 33.0;
  a.pitch = b.pitch = -12.0;
  EXPECT_NEAR(a.view_angle_to(b), 0.0, 1e-9);
}

TEST(Pose, ViewAngleYawOnly) {
  Pose a, b;
  a.yaw = 0.0;
  b.yaw = 90.0;
  EXPECT_NEAR(a.view_angle_to(b), 90.0, 1e-9);
}

TEST(Pose, ViewAnglePitchOnly) {
  Pose a, b;
  a.pitch = 0.0;
  b.pitch = 45.0;
  EXPECT_NEAR(a.view_angle_to(b), 45.0, 1e-9);
}

TEST(Pose, ViewAngleOpposite) {
  Pose a, b;
  a.yaw = 0.0;
  b.yaw = 180.0;
  EXPECT_NEAR(a.view_angle_to(b), 180.0, 1e-9);
}

TEST(Pose, ViewAngleIgnoresRoll) {
  Pose a, b;
  a.roll = 0.0;
  b.roll = 90.0;
  EXPECT_NEAR(a.view_angle_to(b), 0.0, 1e-9);
}

TEST(Pose, ViewAngleWrapAware) {
  Pose a, b;
  a.yaw = 170.0;
  b.yaw = -170.0;
  EXPECT_NEAR(a.view_angle_to(b), 20.0, 1e-9);
}

TEST(Pose, ArrayRoundTrip) {
  Pose p{1.0, 2.0, 3.0, 40.0, 50.0, 60.0};
  const Pose q = Pose::from_array(p.as_array());
  EXPECT_DOUBLE_EQ(q.x, 1.0);
  EXPECT_DOUBLE_EQ(q.yaw, 40.0);
  EXPECT_DOUBLE_EQ(q.roll, 60.0);
}

}  // namespace
}  // namespace cvr::motion
