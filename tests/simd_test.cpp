// SIMD backend contract tests: dispatch rules, argmax semantics, and
// the scalar≡AVX2 bit-exactness guarantee of the SoA h-table kernels
// (docs/vectorization.md). The ParallelMerge suite additionally pins
// the within-slot parallel path bit-identical to serial — it is the
// target of the TSan CI leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/htable.h"
#include "src/core/simd.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cvr::core {
namespace {

namespace simd = cvr::core::simd;
using testutil::random_problem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Restores the dispatch default on scope exit.
struct BackendGuard {
  simd::Backend saved = simd::active_backend();
  ~BackendGuard() { simd::set_backend_for_testing(saved); }
};

std::vector<simd::Backend> testable_backends() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  if (simd::avx2_available()) backends.push_back(simd::Backend::kAvx2);
  return backends;
}

/// Reference semantics: index of the first strict maximum, i.e. what
/// the paper-literal forward scan picks (std::max_element keeps the
/// first occurrence by definition).
std::size_t reference_argmax(const std::vector<double>& v) {
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

TEST(SimdDispatch, PaddedRoundsUpToLanes) {
  EXPECT_EQ(simd::padded(0), 0u);
  EXPECT_EQ(simd::padded(1), simd::kLanes);
  EXPECT_EQ(simd::padded(simd::kLanes), simd::kLanes);
  EXPECT_EQ(simd::padded(simd::kLanes + 1), 2 * simd::kLanes);
  EXPECT_EQ(simd::padded(121), 124u);
}

TEST(SimdDispatch, AvailableImpliesCompiled) {
  if (simd::avx2_available()) {
    EXPECT_TRUE(simd::avx2_compiled());
  }
}

TEST(SimdDispatch, BackendNames) {
  EXPECT_STREQ(simd::backend_name(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::backend_name(simd::Backend::kAvx2), "avx2");
}

TEST(SimdDispatch, ForcingBackendsRoundTrips) {
  const BackendGuard guard;
  simd::set_backend_for_testing(simd::Backend::kScalar);
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  if (simd::avx2_available()) {
    simd::set_backend_for_testing(simd::Backend::kAvx2);
    EXPECT_EQ(simd::active_backend(), simd::Backend::kAvx2);
  } else {
    EXPECT_THROW(simd::set_backend_for_testing(simd::Backend::kAvx2),
                 std::invalid_argument);
  }
}

TEST(SimdArgmax, MatchesReferenceAcrossSizesAndTies) {
  // Values drawn from a tiny set force exact ties in almost every
  // array; -inf plays the scan's "deactivated" sentinel. Every size up
  // to a few vectors covers all remainder-lane shapes.
  const double palette[] = {kNegInf, -2.0, -0.0, 0.0, 1.0, 1.0, 3.5};
  cvr::Rng rng(2024);
  for (std::size_t n = 1; n <= 40; ++n) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> scores(n);
      for (double& s : scores) {
        s = palette[static_cast<std::size_t>(rng.uniform_int(0, 6))];
      }
      const std::size_t expected = reference_argmax(scores);
      EXPECT_EQ(simd::detail::argmax_first_scalar(scores.data(), n), expected)
          << "n=" << n << " trial=" << trial;
#if defined(CVR_HAVE_AVX2)
      if (simd::avx2_available()) {
        EXPECT_EQ(simd::detail::argmax_first_avx2(scores.data(), n), expected)
            << "n=" << n << " trial=" << trial;
      }
#endif
    }
  }
}

TEST(SimdArgmax, AllNegInfReturnsZero) {
  const BackendGuard guard;
  for (simd::Backend backend : testable_backends()) {
    simd::set_backend_for_testing(backend);
    const std::vector<double> scores(17, kNegInf);
    EXPECT_EQ(simd::argmax_first(scores.data(), scores.size()), 0u)
        << simd::backend_name(backend);
  }
}

TEST(SimdArgmax, TrackerMatchesFullScanUnderSingleElementUpdates) {
  // Drives FirstMaxTracker exactly like the dv-scan ascent does: bind
  // to an array, then mutate one element at a time (tie-heavy palette,
  // -inf deactivations included) and require every argmax() to match a
  // full argmax_first pass — under both backends.
  const double palette[] = {kNegInf, -2.0, -0.0, 0.0, 1.0, 1.0, 3.5};
  const BackendGuard guard;
  for (simd::Backend backend : testable_backends()) {
    simd::set_backend_for_testing(backend);
    cvr::Rng rng(77);
    for (std::size_t n : {1u, 3u, 7u, 8u, 9u, 24u, 120u, 121u}) {
      std::vector<double> scores(n);
      for (double& s : scores) {
        s = palette[static_cast<std::size_t>(rng.uniform_int(0, 6))];
      }
      simd::FirstMaxTracker tracker;
      tracker.reset(scores.data(), n);
      EXPECT_EQ(tracker.argmax(), reference_argmax(scores))
          << simd::backend_name(backend) << " n=" << n << " (initial)";
      for (int step = 0; step < 300; ++step) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        scores[i] = palette[static_cast<std::size_t>(rng.uniform_int(0, 6))];
        tracker.update(i);
        ASSERT_EQ(tracker.argmax(), reference_argmax(scores))
            << simd::backend_name(backend) << " n=" << n << " step=" << step;
      }
    }
  }
}

TEST(SimdArgmax, TrackerResetRebindsAndRecyclesCapacity) {
  simd::FirstMaxTracker tracker;
  const std::vector<double> a = {1.0, 5.0, 5.0, -1.0};
  tracker.reset(a.data(), a.size());
  EXPECT_EQ(tracker.argmax(), 1u);
  const std::vector<double> b(9, kNegInf);
  tracker.reset(b.data(), b.size());
  EXPECT_EQ(tracker.argmax(), 0u);
  std::vector<double> c = {0.0, 0.0};
  tracker.reset(c.data(), c.size());
  EXPECT_EQ(tracker.argmax(), 0u);
  c[1] = 2.0;
  tracker.update(1);
  EXPECT_EQ(tracker.argmax(), 1u);
}

/// Builds the set under both backends and requires every table entry
/// to match bit for bit.
void expect_tables_bit_identical(const SlotProblem& problem) {
  if (!simd::avx2_available()) GTEST_SKIP() << "no AVX2 on this host/build";
  const BackendGuard guard;
  simd::set_backend_for_testing(simd::Backend::kScalar);
  HTableSet scalar_tables;
  scalar_tables.build(problem);
  simd::set_backend_for_testing(simd::Backend::kAvx2);
  HTableSet avx2_tables;
  avx2_tables.build(problem);
  ASSERT_EQ(scalar_tables.size(), avx2_tables.size());
  for (std::size_t n = 0; n < problem.user_count(); ++n) {
    for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
      EXPECT_EQ(bits(scalar_tables[n].value(q)), bits(avx2_tables[n].value(q)))
          << "user " << n << " level " << q;
      if (q >= kNumQualityLevels) continue;
      EXPECT_EQ(bits(scalar_tables[n].increment(q)),
                bits(avx2_tables[n].increment(q)))
          << "user " << n << " step " << q;
      EXPECT_EQ(bits(scalar_tables[n].density(q)),
                bits(avx2_tables[n].density(q)))
          << "user " << n << " step " << q;
    }
  }
}

TEST(SimdHTable, BitExactAcrossRemainderLaneCounts) {
  // Every residue of N mod kLanes, plus multi-vector sizes.
  for (std::size_t users : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 31u, 121u}) {
    SCOPED_TRACE(users);
    expect_tables_bit_identical(random_problem(1000 + users, users));
  }
}

TEST(SimdHTable, BitExactWithFrameLoss) {
  SlotProblem problem = random_problem(7, 6);
  for (std::size_t n = 0; n < problem.user_count(); n += 2) {
    problem.users[n].frame_loss.assign(kNumQualityLevels, 0.25);
  }
  expect_tables_bit_identical(problem);
}

TEST(SimdHTable, BitExactOnDenormalAndExtremeInputs) {
  SlotProblem problem = random_problem(11, 9);
  // Power-of-two rescales keep the rate ordering exactly; densities
  // land near 2^±1000 and delays go denormal — the kernels must still
  // agree bit for bit (no FTZ/DAZ, no contraction).
  for (std::size_t n = 0; n < problem.user_count(); ++n) {
    auto& user = problem.users[n];
    const double scale = n % 2 == 0 ? 0x1p-1000 : 0x1p+600;
    for (double& r : user.rate) r *= scale;
    user.user_bandwidth *= scale;
    if (n % 3 == 0) {
      for (double& d : user.delay) d *= 0x1p-1060;  // denormal range
    }
  }
  expect_tables_bit_identical(problem);
}

TEST(SimdHTable, RateValidationThrowsUnderEveryBackend) {
  const BackendGuard guard;
  SlotProblem problem = random_problem(3, 4);
  problem.users[2].rate[3] = problem.users[2].rate[2];  // non-increasing
  for (simd::Backend backend : testable_backends()) {
    simd::set_backend_for_testing(backend);
    HTableSet tables;
    EXPECT_THROW(tables.build(problem), std::logic_error)
        << simd::backend_name(backend);
  }
}

TEST(SimdGreedy, AllocationsIdenticalAcrossBackends) {
  if (!simd::avx2_available()) GTEST_SKIP() << "no AVX2 on this host/build";
  const BackendGuard guard;
  using Strategy = DvGreedyAllocator::Strategy;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::size_t users : {1u, 5u, 19u, 64u}) {
      const SlotProblem problem = random_problem(seed, users);
      for (Strategy strategy : {Strategy::kScan, Strategy::kHeap}) {
        simd::set_backend_for_testing(simd::Backend::kScalar);
        DvGreedyAllocator scalar_dv(DvGreedyAllocator::Mode::kCombined,
                                    strategy);
        const Allocation a = scalar_dv.allocate(problem);
        simd::set_backend_for_testing(simd::Backend::kAvx2);
        DvGreedyAllocator avx2_dv(DvGreedyAllocator::Mode::kCombined,
                                  strategy);
        const Allocation b = avx2_dv.allocate(problem);
        EXPECT_EQ(a.levels, b.levels) << "seed " << seed << " N " << users;
        EXPECT_EQ(bits(a.objective), bits(b.objective));
      }
    }
  }
}

// --- Within-slot parallelism: bit-identical to serial, race-free ------
// (This suite is the TSan CI target: names must keep matching the
// "ParallelMerge" filter in .github/workflows/ci.yml.)

TEST(ParallelMerge, HTableBuildMatchesSerialBitExact) {
  cvr::ThreadPool pool(4);
  for (std::size_t users : {1u, 4u, 121u, 1000u}) {
    const SlotProblem problem = random_problem(500 + users, users);
    HTableSet serial_tables;
    serial_tables.build(problem);
    HTableSet parallel_tables;
    parallel_tables.build(problem, &pool, /*parallel_min_users=*/1);
    ASSERT_EQ(serial_tables.size(), parallel_tables.size());
    for (std::size_t n = 0; n < problem.user_count(); ++n) {
      for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
        ASSERT_EQ(bits(serial_tables[n].value(q)),
                  bits(parallel_tables[n].value(q)))
            << "N " << users << " user " << n << " level " << q;
        if (q >= kNumQualityLevels) continue;
        ASSERT_EQ(bits(serial_tables[n].density(q)),
                  bits(parallel_tables[n].density(q)));
      }
    }
  }
}

TEST(ParallelMerge, DvGreedyPoolMatchesSerialBitExact) {
  cvr::ThreadPool pool(4);
  using Strategy = DvGreedyAllocator::Strategy;
  for (Strategy strategy : {Strategy::kScan, Strategy::kHeap}) {
    DvGreedyAllocator serial_dv(DvGreedyAllocator::Mode::kCombined, strategy);
    DvGreedyAllocator parallel_dv(DvGreedyAllocator::Mode::kCombined,
                                  strategy);
    parallel_dv.set_thread_pool(&pool);
    parallel_dv.set_parallel_min_users(1);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const SlotProblem problem = random_problem(seed, 150);
      const Allocation a = serial_dv.allocate(problem);
      const Allocation b = parallel_dv.allocate(problem);
      EXPECT_EQ(a.levels, b.levels) << "seed " << seed;
      EXPECT_EQ(bits(a.objective), bits(b.objective)) << "seed " << seed;
    }
  }
}

TEST(ParallelMerge, RepeatedParallelRunsAreDeterministic) {
  cvr::ThreadPool pool(4);
  DvGreedyAllocator dv;
  dv.set_thread_pool(&pool);
  dv.set_parallel_min_users(1);
  const SlotProblem problem = random_problem(77, 333);
  const Allocation first = dv.allocate(problem);
  for (int run = 0; run < 10; ++run) {
    const Allocation again = dv.allocate(problem);
    ASSERT_EQ(first.levels, again.levels) << "run " << run;
    ASSERT_EQ(bits(first.objective), bits(again.objective)) << "run " << run;
  }
}

TEST(ParallelMerge, GatherExceptionPropagatesFromWorkers) {
  cvr::ThreadPool pool(2);
  SlotProblem problem = random_problem(5, 40);
  problem.users[17].frame_loss = {0.1, 0.1};  // shorter than L: throws
  HTableSet tables;
  EXPECT_THROW(tables.build(problem, &pool, 1), std::out_of_range);
  EXPECT_THROW(tables.build(problem), std::out_of_range);  // serial too
}

}  // namespace
}  // namespace cvr::core
