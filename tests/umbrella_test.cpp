// Compile-and-smoke test of the umbrella header: every public subsystem
// reachable from one include, with one touch per namespace.
#include "src/cvr.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EverySubsystemReachable) {
  cvr::Rng rng(1);
  EXPECT_GE(rng.uniform(), 0.0);

  const cvr::trace::NetworkTrace trace("t", {{1.0, 50.0}});
  EXPECT_DOUBLE_EQ(cvr::trace::summarize_trace(trace).mean_mbps, 50.0);

  cvr::motion::Pose pose;
  EXPECT_DOUBLE_EQ(pose.x, 0.0);

  const cvr::content::CrfRateFunction rate_function;
  EXPECT_TRUE(rate_function.is_convex_increasing());

  EXPECT_GT(cvr::net::mm1_delay(10.0, 20.0), 0.0);

  const cvr::render::RenderFarm farm;
  EXPECT_GT(farm.encode_ms(3), 0.0);

  cvr::proto::PoseUpdate message;
  EXPECT_EQ(cvr::proto::decode_pose_update(cvr::proto::encode(message)),
            message);

  cvr::core::DvGreedyAllocator allocator;
  EXPECT_EQ(allocator.name(), "dv-greedy");

  cvr::sim::UserOutcome outcome;
  EXPECT_DOUBLE_EQ(outcome.avg_qoe, 0.0);

  const cvr::system::SystemSimConfig config = cvr::system::setup_one_router();
  EXPECT_EQ(config.users, 8u);

  EXPECT_FALSE(
      cvr::report::summary_markdown({}).empty());  // header row only
}

}  // namespace
