#include "src/experiments/ensemble.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace cvr::experiments {
namespace {

EnsembleSpec small_trace_spec() {
  EnsembleSpec spec;
  spec.platform = EnsembleSpec::Platform::kTrace;
  spec.users = 3;
  spec.slots = 200;
  spec.repeats = 2;
  spec.algorithms = {"dv", "firefly"};
  return spec;
}

TEST(Ensemble, TracePlatformRuns) {
  const auto arms = run_ensemble(small_trace_spec());
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_EQ(arms[0].algorithm, "dv-greedy");
  EXPECT_EQ(arms[1].algorithm, "firefly-aqc");
  EXPECT_EQ(arms[0].outcomes.size(), 3u * 2u);
}

TEST(Ensemble, SystemPlatformRuns) {
  EnsembleSpec spec = small_trace_spec();
  spec.platform = EnsembleSpec::Platform::kSystem;
  spec.routers = 2;
  const auto arms = run_ensemble(spec);
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_GT(arms[0].mean_fps(), 0.0);  // FPS only exists on this platform
}

TEST(Ensemble, Deterministic) {
  const auto a = run_ensemble(small_trace_spec());
  const auto b = run_ensemble(small_trace_spec());
  EXPECT_DOUBLE_EQ(a[0].mean_qoe(), b[0].mean_qoe());
}

TEST(Ensemble, SeedChangesOutcomes) {
  EnsembleSpec other = small_trace_spec();
  other.seed = 9999;
  EXPECT_NE(run_ensemble(small_trace_spec())[0].mean_qoe(),
            run_ensemble(other)[0].mean_qoe());
}

TEST(Ensemble, CustomWeightsApplied) {
  EnsembleSpec heavy_beta = small_trace_spec();
  heavy_beta.algorithms = {"dv"};
  heavy_beta.slots = 600;
  heavy_beta.beta = 5.0;
  EnsembleSpec no_beta = heavy_beta;
  no_beta.beta = 0.0;
  EXPECT_LT(run_ensemble(heavy_beta)[0].mean_variance(),
            run_ensemble(no_beta)[0].mean_variance());
}

TEST(Ensemble, WritesReports) {
  EnsembleSpec spec = small_trace_spec();
  spec.report_prefix =
      (std::filesystem::temp_directory_path() / "cvr_ensemble_test").string();
  run_ensemble(spec);
  for (const char* suffix :
       {"_outcomes.csv", "_cdf_qoe.csv", "_cdf_quality.csv",
        "_cdf_delay_ms.csv", "_cdf_variance.csv"}) {
    const std::string path = spec.report_prefix + suffix;
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::remove(path.c_str());
  }
}

TEST(Ensemble, RejectsBadSpecs) {
  EnsembleSpec spec = small_trace_spec();
  spec.algorithms = {"nope"};
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.users = 0;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.algorithms.clear();
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.routers = 3;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
}

TEST(Ensemble, WorkloadPackRejectedOnTracePlatform) {
  // wifi and the probing arm are system-emulation features; hevc works
  // on either platform.
  EnsembleSpec spec = small_trace_spec();
  spec.wifi.enabled = true;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.estimator_arm = system::EstimatorArm::kProbing;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.hevc.enabled = true;
  EXPECT_EQ(run_ensemble(spec).size(), 2u);
}

// Guard for the fig2-style trace ensemble: the workload pack with every
// knob off — but its other fields tweaked — is bit-identical to a spec
// that never mentions the pack.
TEST(Ensemble, WorkloadPackDefaultsOffBitIdenticalTrace) {
  const EnsembleSpec plain = small_trace_spec();
  EnsembleSpec tweaked = plain;
  tweaked.wifi.enabled = false;
  tweaked.wifi.contention_overhead = 0.3;
  tweaked.wifi.collision_prob_per_station = 0.2;
  tweaked.hevc.enabled = false;
  tweaked.hevc.gop_length = 8;
  tweaked.hevc.size_sigma = 0.9;
  tweaked.probing.probe_period_slots = 5;
  tweaked.probing.alpha_probe = 0.9;
  const auto a = run_ensemble(plain);
  const auto b = run_ensemble(tweaked);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t arm = 0; arm < a.size(); ++arm) {
    ASSERT_EQ(a[arm].outcomes.size(), b[arm].outcomes.size());
    for (std::size_t i = 0; i < a[arm].outcomes.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[arm].outcomes[i].avg_qoe, b[arm].outcomes[i].avg_qoe);
      EXPECT_DOUBLE_EQ(a[arm].outcomes[i].avg_quality,
                       b[arm].outcomes[i].avg_quality);
      EXPECT_DOUBLE_EQ(a[arm].outcomes[i].avg_delay_ms,
                       b[arm].outcomes[i].avg_delay_ms);
      EXPECT_DOUBLE_EQ(a[arm].outcomes[i].variance,
                       b[arm].outcomes[i].variance);
    }
  }
}

// Same guard for the fig7-style system ensemble (estimator arm included).
TEST(Ensemble, WorkloadPackDefaultsOffBitIdenticalSystem) {
  EnsembleSpec plain = small_trace_spec();
  plain.platform = EnsembleSpec::Platform::kSystem;
  plain.algorithms = {"dv"};
  EnsembleSpec tweaked = plain;
  tweaked.wifi.enabled = false;
  tweaked.wifi.mcs_pool = {1};
  tweaked.wifi.backoff_max_slots = 3;
  tweaked.hevc.enabled = false;
  tweaked.hevc.i_frame_ratio = 6.0;
  tweaked.estimator_arm = system::EstimatorArm::kEma;
  tweaked.probing.probe_fraction = 0.9;
  tweaked.probing.initial_mbps = 5.0;
  const auto a = run_ensemble(plain);
  const auto b = run_ensemble(tweaked);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a[0].outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[0].outcomes[i].avg_qoe, b[0].outcomes[i].avg_qoe);
    EXPECT_DOUBLE_EQ(a[0].outcomes[i].avg_quality,
                     b[0].outcomes[i].avg_quality);
    EXPECT_DOUBLE_EQ(a[0].outcomes[i].avg_delay_ms,
                     b[0].outcomes[i].avg_delay_ms);
    EXPECT_DOUBLE_EQ(a[0].outcomes[i].fps, b[0].outcomes[i].fps);
    EXPECT_DOUBLE_EQ(a[0].outcomes[i].variance, b[0].outcomes[i].variance);
  }
}

TEST(Ensemble, WorkloadPackEnabledRunsOnSystem) {
  EnsembleSpec spec = small_trace_spec();
  spec.platform = EnsembleSpec::Platform::kSystem;
  spec.algorithms = {"dv"};
  spec.wifi.enabled = true;
  spec.hevc.enabled = true;
  spec.estimator_arm = system::EstimatorArm::kProbing;
  const auto arms = run_ensemble(spec);
  ASSERT_EQ(arms.size(), 1u);
  EXPECT_GT(arms[0].mean_fps(), 0.0);
  // And the pack genuinely changes the outcomes.
  EnsembleSpec plain = spec;
  plain.wifi.enabled = false;
  plain.hevc.enabled = false;
  plain.estimator_arm = system::EstimatorArm::kEma;
  EXPECT_NE(run_ensemble(plain)[0].mean_qoe(), arms[0].mean_qoe());
}

TEST(Ensemble, PavqVariantFollowsPlatform) {
  // Smoke: "pavq" resolves on both platforms without manual variants.
  EnsembleSpec spec = small_trace_spec();
  spec.algorithms = {"pavq"};
  EXPECT_EQ(run_ensemble(spec).size(), 1u);
  spec.platform = EnsembleSpec::Platform::kSystem;
  EXPECT_EQ(run_ensemble(spec).size(), 1u);
}

}  // namespace
}  // namespace cvr::experiments
