#include "src/experiments/ensemble.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace cvr::experiments {
namespace {

EnsembleSpec small_trace_spec() {
  EnsembleSpec spec;
  spec.platform = EnsembleSpec::Platform::kTrace;
  spec.users = 3;
  spec.slots = 200;
  spec.repeats = 2;
  spec.algorithms = {"dv", "firefly"};
  return spec;
}

TEST(Ensemble, TracePlatformRuns) {
  const auto arms = run_ensemble(small_trace_spec());
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_EQ(arms[0].algorithm, "dv-greedy");
  EXPECT_EQ(arms[1].algorithm, "firefly-aqc");
  EXPECT_EQ(arms[0].outcomes.size(), 3u * 2u);
}

TEST(Ensemble, SystemPlatformRuns) {
  EnsembleSpec spec = small_trace_spec();
  spec.platform = EnsembleSpec::Platform::kSystem;
  spec.routers = 2;
  const auto arms = run_ensemble(spec);
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_GT(arms[0].mean_fps(), 0.0);  // FPS only exists on this platform
}

TEST(Ensemble, Deterministic) {
  const auto a = run_ensemble(small_trace_spec());
  const auto b = run_ensemble(small_trace_spec());
  EXPECT_DOUBLE_EQ(a[0].mean_qoe(), b[0].mean_qoe());
}

TEST(Ensemble, SeedChangesOutcomes) {
  EnsembleSpec other = small_trace_spec();
  other.seed = 9999;
  EXPECT_NE(run_ensemble(small_trace_spec())[0].mean_qoe(),
            run_ensemble(other)[0].mean_qoe());
}

TEST(Ensemble, CustomWeightsApplied) {
  EnsembleSpec heavy_beta = small_trace_spec();
  heavy_beta.algorithms = {"dv"};
  heavy_beta.slots = 600;
  heavy_beta.beta = 5.0;
  EnsembleSpec no_beta = heavy_beta;
  no_beta.beta = 0.0;
  EXPECT_LT(run_ensemble(heavy_beta)[0].mean_variance(),
            run_ensemble(no_beta)[0].mean_variance());
}

TEST(Ensemble, WritesReports) {
  EnsembleSpec spec = small_trace_spec();
  spec.report_prefix =
      (std::filesystem::temp_directory_path() / "cvr_ensemble_test").string();
  run_ensemble(spec);
  for (const char* suffix :
       {"_outcomes.csv", "_cdf_qoe.csv", "_cdf_quality.csv",
        "_cdf_delay_ms.csv", "_cdf_variance.csv"}) {
    const std::string path = spec.report_prefix + suffix;
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::remove(path.c_str());
  }
}

TEST(Ensemble, RejectsBadSpecs) {
  EnsembleSpec spec = small_trace_spec();
  spec.algorithms = {"nope"};
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.users = 0;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.algorithms.clear();
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
  spec = small_trace_spec();
  spec.routers = 3;
  EXPECT_THROW(run_ensemble(spec), std::invalid_argument);
}

TEST(Ensemble, PavqVariantFollowsPlatform) {
  // Smoke: "pavq" resolves on both platforms without manual variants.
  EnsembleSpec spec = small_trace_spec();
  spec.algorithms = {"pavq"};
  EXPECT_EQ(run_ensemble(spec).size(), 1u);
  spec.platform = EnsembleSpec::Platform::kSystem;
  EXPECT_EQ(run_ensemble(spec).size(), 1u);
}

}  // namespace
}  // namespace cvr::experiments
