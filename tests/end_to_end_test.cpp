// Cross-module integration: the paper's headline orderings at reduced
// scale. These are the qualitative claims EXPERIMENTS.md quantifies with
// the full bench binaries.
#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace cvr {
namespace {

trace::TraceRepositoryConfig repo_config() {
  trace::TraceRepositoryConfig config;
  config.fcc_pool_size = 10;
  config.lte_pool_size = 5;
  config.fcc.duration_s = 40.0;
  config.lte.duration_s = 40.0;
  return config;
}

TEST(EndToEnd, Fig2OrderingAtSmallScale) {
  // 4 users so the offline per-slot optimum is cheap; 6 runs.
  const trace::TraceRepository repo(repo_config(), 1);
  sim::TraceSimConfig config;
  config.users = 4;
  config.slots = 600;
  const sim::TraceSimulation simulation(config, repo);

  core::DvGreedyAllocator ours;
  core::BruteForceAllocator optimal;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq = core::PavqAllocator::perfect_knowledge();
  const auto arms = simulation.compare({&ours, &optimal, &firefly, &pavq}, 6);

  const double qoe_ours = arms[0].mean_qoe();
  const double qoe_opt = arms[1].mean_qoe();
  const double qoe_firefly = arms[2].mean_qoe();
  const double qoe_pavq = arms[3].mean_qoe();

  // Ours ~ per-slot optimal. Note the "optimal" arm is optimal per slot
  // given its own realized history; over a horizon the trajectories are
  // path-dependent, so tiny crossings are possible — we assert closeness,
  // not dominance (Fig. 2a shows them overlapping).
  EXPECT_NEAR(qoe_ours, qoe_opt, 0.05 * std::abs(qoe_opt));
  // Ours beats Firefly clearly; PAVQ is the stronger baseline and sits
  // within a few percent (Fig. 2a).
  EXPECT_GT(qoe_ours, qoe_firefly);
  EXPECT_GT(qoe_ours, qoe_pavq - 0.05 * std::abs(qoe_pavq));
  EXPECT_GT(qoe_pavq, qoe_firefly);
}

TEST(EndToEnd, FireflyTradesVarianceForQuality) {
  // Fig. 2b-2d: Firefly chases quality and pays in delay/variance.
  const trace::TraceRepository repo(repo_config(), 2);
  sim::TraceSimConfig config;
  config.users = 4;
  config.slots = 600;
  const sim::TraceSimulation simulation(config, repo);

  core::DvGreedyAllocator ours;
  core::FireflyAllocator firefly;
  const auto arms = simulation.compare({&ours, &firefly}, 4);
  // Firefly's quality is at least comparable (it chases quality), while
  // its delay and variance are clearly worse — the Fig. 2b-2d trade-off.
  EXPECT_GE(arms[1].mean_quality(), arms[0].mean_quality() - 0.15);
  EXPECT_GT(arms[1].mean_delay_ms(), arms[0].mean_delay_ms());
  EXPECT_GT(arms[1].mean_variance(), arms[0].mean_variance());
}

TEST(EndToEnd, SystemSetupOneOrdering) {
  // Fig. 7a ordering at reduced scale: ours > PAVQ > Firefly.
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 500;
  const system::SystemSim sim(config);
  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &pavq, &firefly}, 3);
  EXPECT_GT(arms[0].mean_qoe(), arms[1].mean_qoe());
  EXPECT_GT(arms[1].mean_qoe(), arms[2].mean_qoe());
}

TEST(EndToEnd, SystemSetupTwoRobustness) {
  // Fig. 8: under two-router interference ours stays clearly ahead of
  // PAVQ and Firefly collapses hardest.
  system::SystemSimConfig config = system::setup_two_routers(6);
  config.slots = 500;
  const system::SystemSim sim(config);
  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &pavq, &firefly}, 3);
  EXPECT_GT(arms[0].mean_qoe(), arms[1].mean_qoe());
  EXPECT_GT(arms[0].mean_qoe(), arms[2].mean_qoe());
  EXPECT_GE(arms[1].mean_qoe(), arms[2].mean_qoe() - 1e-9);
}

TEST(EndToEnd, OursSustainsBestFrameRate) {
  // Fig. 7c: best FPS among the three algorithms.
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 400;
  const system::SystemSim sim(config);
  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &pavq, &firefly}, 2);
  EXPECT_GE(arms[0].mean_fps(), arms[1].mean_fps() - 1e-9);
  EXPECT_GT(arms[0].mean_fps(), arms[2].mean_fps());
}

}  // namespace
}  // namespace cvr
