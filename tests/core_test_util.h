// Shared helpers for the core allocator tests: hand-built and random
// SlotProblem instances.
#pragma once

#include <vector>

#include "src/content/rate_function.h"
#include "src/core/allocator.h"
#include "src/util/rng.h"

namespace cvr::core::testutil {

/// A user context with explicit per-level rate/delay tables.
inline UserSlotContext make_user(std::vector<double> rates,
                                 std::vector<double> delays,
                                 double user_bandwidth, double delta = 1.0,
                                 double qbar = 0.0, double slot = 1.0) {
  UserSlotContext user;
  user.rate = std::move(rates);
  user.delay = std::move(delays);
  user.user_bandwidth = user_bandwidth;
  user.delta = delta;
  user.qbar = qbar;
  user.slot = slot;
  return user;
}

/// A user built from the paper-calibrated CRF rate function and the
/// analytic M/M/1 delay, like the Section-IV simulator does.
inline UserSlotContext make_crf_user(double user_bandwidth, double delta = 1.0,
                                     double qbar = 0.0, double slot = 1.0,
                                     double scale = 1.0) {
  const content::CrfRateFunction f(14.2, 1.45, scale);
  return UserSlotContext::from_rate_function(f, user_bandwidth, delta, qbar,
                                             slot);
}

/// Random feasible-ish problem for property sweeps. Deterministic in
/// `seed`. Mix of deltas, qbars, slots, per-content scales, bandwidths.
inline SlotProblem random_problem(std::uint64_t seed, std::size_t users,
                                  double alpha = 0.02, double beta = 0.5) {
  cvr::Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{alpha, beta};
  double total_min_rate = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const double scale = rng.lognormal(0.0, 0.25);
    const double bandwidth = rng.uniform(20.0, 100.0);
    const double delta = rng.uniform(0.6, 1.0);
    const double qbar = rng.uniform(0.0, 6.0);
    const double slot = rng.uniform(1.0, 500.0);
    problem.users.push_back(make_crf_user(bandwidth, delta, qbar, slot, scale));
    total_min_rate += problem.users.back().rate[0];
  }
  // Server budget between "tight" and "roomy".
  problem.server_bandwidth = total_min_rate * rng.uniform(1.0, 3.5);
  return problem;
}

}  // namespace cvr::core::testutil
