// Shared helpers for the core allocator tests: hand-built and random
// SlotProblem instances.
#pragma once

#include <algorithm>
#include <vector>

#include "src/content/rate_function.h"
#include "src/core/allocator.h"
#include "src/util/rng.h"

namespace cvr::core::testutil {

/// A user context with explicit per-level rate/delay tables (exactly
/// kNumQualityLevels entries each — the tables are fixed-size arrays).
inline UserSlotContext make_user(const std::vector<double>& rates,
                                 const std::vector<double>& delays,
                                 double user_bandwidth, double delta = 1.0,
                                 double qbar = 0.0, double slot = 1.0) {
  UserSlotContext user;
  std::copy(rates.begin(), rates.end(), user.rate.begin());
  std::copy(delays.begin(), delays.end(), user.delay.begin());
  user.user_bandwidth = user_bandwidth;
  user.delta = delta;
  user.qbar = qbar;
  user.slot = slot;
  return user;
}

/// The linear-h workhorse of the allocator unit tests: rate table
/// {10, 15, 22, 31, 44, 60}, zero delays, so h(q) = delta * q whenever
/// alpha = beta = 0.
inline UserSlotContext make_grid_user(double user_bandwidth,
                                      double delta = 1.0) {
  return make_user({10, 15, 22, 31, 44, 60}, {0, 0, 0, 0, 0, 0},
                   user_bandwidth, delta);
}

/// A user built from the paper-calibrated CRF rate function and the
/// analytic M/M/1 delay, like the Section-IV simulator does.
inline UserSlotContext make_crf_user(double user_bandwidth, double delta = 1.0,
                                     double qbar = 0.0, double slot = 1.0,
                                     double scale = 1.0) {
  const content::CrfRateFunction f(14.2, 1.45, scale);
  return UserSlotContext::from_rate_function(f, user_bandwidth, delta, qbar,
                                             slot);
}

// --- The two counterexample families from Section III. ---
//
// The paper's examples use abstract h tables; we encode them with
// two-level "rate functions" padded to six levels whose upper levels
// are priced out by the per-user bandwidth so only levels 1-2 matter.
// delta encodes the h values: h(q) = delta * q. Shared by
// dv_greedy_test.cpp (which checks the failing single-pass allocations)
// and approx_ratio_test.cpp (which checks combined stays >= OPT/2).

/// Case 1 (density-greedy fails): user A's increment has density
/// 1/0.5 = 2, user B's has density 4/2.5 = 1.6, but only user B's
/// increment fits the residual budget (2.5 of 2.7 after minima).
inline SlotProblem paper_case_density_fails() {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_user({0.1, 0.6, 100, 200, 300, 400},
                                    {0, 0, 0, 0, 0, 0}, 1.0, 1.0));
  problem.users.push_back(make_user({0.1, 2.6, 100, 200, 300, 400},
                                    {0, 0, 0, 0, 0, 0}, 3.0, 4.0));
  problem.server_bandwidth = 2.7;  // minima 0.2 + residual 2.5
  return problem;
}

/// Case 2 (value-greedy fails): four users with h-increment 2 at rate
/// 0.5 each, one user with h-increment 3 at rate 2; residual budget 2.
inline SlotProblem paper_case_value_fails() {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 4; ++i) {
    problem.users.push_back(make_user({0.1, 0.6, 100, 200, 300, 400},
                                      {0, 0, 0, 0, 0, 0}, 1.0, 2.0));
  }
  problem.users.push_back(make_user({0.1, 2.1, 100, 200, 300, 400},
                                    {0, 0, 0, 0, 0, 0}, 3.0, 3.0));
  problem.server_bandwidth = 0.5 + 2.0;  // minima 0.5 + residual 2
  return problem;
}

/// Random feasible-ish problem for property sweeps. Deterministic in
/// `seed`. Mix of deltas, qbars, slots, per-content scales, bandwidths.
inline SlotProblem random_problem(std::uint64_t seed, std::size_t users,
                                  double alpha = 0.02, double beta = 0.5) {
  cvr::Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{alpha, beta};
  double total_min_rate = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const double scale = rng.lognormal(0.0, 0.25);
    const double bandwidth = rng.uniform(20.0, 100.0);
    const double delta = rng.uniform(0.6, 1.0);
    const double qbar = rng.uniform(0.0, 6.0);
    const double slot = rng.uniform(1.0, 500.0);
    problem.users.push_back(make_crf_user(bandwidth, delta, qbar, slot, scale));
    total_min_rate += problem.users.back().rate[0];
  }
  // Server budget between "tight" and "roomy".
  problem.server_bandwidth = total_min_rate * rng.uniform(1.0, 3.5);
  return problem;
}

}  // namespace cvr::core::testutil
