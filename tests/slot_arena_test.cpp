// SlotArena reuse semantics and the zero-allocation contract of the
// per-slot hot path (ISSUE 5 acceptance criterion: steady-state sim
// loop performs zero heap allocations per slot in the allocator path).
//
// The counting allocator below replaces the global operator new/delete
// for THIS binary only and counts every heap allocation; the zero-alloc
// tests warm the path up (first slots grow vector capacities), then
// assert the count stays flat across subsequent slots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/htable.h"
#include "src/core/pavq.h"
#include "src/core/slot_arena.h"
#include "tests/core_test_util.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Global replacement set (new/new[]/delete/delete[], throwing +
// nothrow + sized). Only the allocation count matters; delete stays
// count-free so gtest's own teardown noise cannot skew a measurement.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cvr::core {
namespace {

using testutil::make_crf_user;

/// Fills the arena's problem for slot `t` the way a sim loop does:
/// every user context overwritten from a rate function, scalars set.
void fill_slot(SlotArena& arena, std::size_t users, std::size_t t,
               SlotProblem*& out) {
  SlotProblem& problem = arena.acquire(users);
  problem.params = QoeParams{0.02, 0.5};
  problem.server_bandwidth = 30.0 * static_cast<double>(users);
  for (std::size_t u = 0; u < users; ++u) {
    const content::CrfRateFunction f(
        14.2, 1.45, 1.0 + 0.05 * static_cast<double>(u + t));
    problem.users[u] = UserSlotContext::from_rate_function(
        f, 40.0 + 5.0 * static_cast<double>(u), 0.9,
        0.5 * static_cast<double>(t), static_cast<double>(t + 1));
  }
  out = &problem;
}

/// A fresh SlotProblem with the identical fills, for the equivalence
/// oracle.
SlotProblem fresh_slot(std::size_t users, std::size_t t) {
  SlotProblem problem;
  problem.params = QoeParams{0.02, 0.5};
  problem.server_bandwidth = 30.0 * static_cast<double>(users);
  for (std::size_t u = 0; u < users; ++u) {
    const content::CrfRateFunction f(
        14.2, 1.45, 1.0 + 0.05 * static_cast<double>(u + t));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, 40.0 + 5.0 * static_cast<double>(u), 0.9,
        0.5 * static_cast<double>(t), static_cast<double>(t + 1)));
  }
  return problem;
}

TEST(SlotArena, TwoConsecutiveSlotsEqualTwoFreshProblems) {
  SlotArena arena;
  DvGreedyAllocator arena_alloc;
  DvGreedyAllocator fresh_alloc;
  Allocation recycled;
  for (std::size_t t = 0; t < 2; ++t) {
    SlotProblem* problem = nullptr;
    fill_slot(arena, 8, t, problem);
    const SlotProblem fresh = fresh_slot(8, t);
    ASSERT_EQ(problem->user_count(), fresh.user_count());
    for (std::size_t u = 0; u < fresh.user_count(); ++u) {
      EXPECT_EQ(problem->users[u].rate, fresh.users[u].rate);
      EXPECT_EQ(problem->users[u].delay, fresh.users[u].delay);
      EXPECT_EQ(problem->users[u].delta, fresh.users[u].delta);
      EXPECT_EQ(problem->users[u].qbar, fresh.users[u].qbar);
      EXPECT_EQ(problem->users[u].slot, fresh.users[u].slot);
      EXPECT_EQ(problem->users[u].user_bandwidth,
                fresh.users[u].user_bandwidth);
    }
    arena_alloc.allocate_into(*problem, recycled);
    const Allocation direct = fresh_alloc.allocate(fresh);
    EXPECT_EQ(recycled.levels, direct.levels);
    EXPECT_EQ(recycled.objective, direct.objective);
  }
}

TEST(SlotArena, ShrinkThenGrowKeepsEntriesOverwritten) {
  SlotArena arena;
  SlotProblem* problem = nullptr;
  fill_slot(arena, 10, 0, problem);
  const double rate_before = problem->users[7].rate[3];
  fill_slot(arena, 4, 1, problem);   // churn down
  fill_slot(arena, 10, 2, problem);  // back up: entries 4..9 recycled
  EXPECT_EQ(problem->user_count(), 10u);
  const SlotProblem fresh = fresh_slot(10, 2);
  for (std::size_t u = 0; u < 10; ++u) {
    EXPECT_EQ(problem->users[u].rate, fresh.users[u].rate) << "user " << u;
  }
  // Sanity: slot 2 differs from slot 0, so the check above is not vacuous.
  EXPECT_NE(problem->users[7].rate[3], rate_before);
}

/// The acceptance check: once capacities have stabilised, a full
/// build-slot -> allocate cycle performs zero heap allocations, for
/// every hot-path allocator.
template <typename AllocatorT>
void expect_zero_alloc_steady_state(AllocatorT&& allocator) {
  SlotArena arena;
  Allocation allocation;
  SlotProblem* problem = nullptr;
  constexpr std::size_t kUsers = 16;
  // Warm-up: grows users vector, levels, tables, heap scratch.
  for (std::size_t t = 0; t < 3; ++t) {
    fill_slot(arena, kUsers, t, problem);
    allocator.allocate_into(*problem, allocation);
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t t = 3; t < 13; ++t) {
    fill_slot(arena, kUsers, t, problem);
    allocator.allocate_into(*problem, allocation);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << (after - before)
                           << " heap allocations in 10 steady-state slots";
}

TEST(ZeroAllocation, DvGreedyHeapSteadyState) {
  expect_zero_alloc_steady_state(DvGreedyAllocator(
      DvGreedyAllocator::Mode::kCombined, DvGreedyAllocator::Strategy::kHeap));
}

TEST(ZeroAllocation, DvGreedyScanSteadyState) {
  expect_zero_alloc_steady_state(DvGreedyAllocator(
      DvGreedyAllocator::Mode::kCombined, DvGreedyAllocator::Strategy::kScan));
}

TEST(ZeroAllocation, PavqSteadyState) {
  expect_zero_alloc_steady_state(PavqAllocator());
}

TEST(ZeroAllocation, FireflySteadyState) {
  expect_zero_alloc_steady_state(FireflyAllocator());
}

TEST(ZeroAllocation, HTableSetRebuildSteadyState) {
  SlotArena arena;
  SlotProblem* problem = nullptr;
  HTableSet tables;
  for (std::size_t t = 0; t < 2; ++t) {
    fill_slot(arena, 16, t, problem);
    tables.build(*problem);
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t t = 2; t < 12; ++t) {
    fill_slot(arena, 16, t, problem);
    tables.build(*problem);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(ZeroAllocation, HTableSetIncrementalRebuildSteadyState) {
  // The dirty-row path specifically: after warm-up, each slot mutates a
  // single user and rebuilds. The fingerprint compare, dirty bitmap,
  // and partial kernel sweep must all run allocation-free — including
  // the occasional clean rebuild (no user changed at all).
  SlotArena arena;
  SlotProblem* problem = nullptr;
  HTableSet tables;
  constexpr std::size_t kUsers = 16;
  for (std::size_t t = 0; t < 2; ++t) {
    fill_slot(arena, kUsers, t, problem);
    tables.build(*problem);
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t t = 2; t < 12; ++t) {
    const std::size_t u = t % kUsers;
    const content::CrfRateFunction f(
        14.2, 1.45, 1.0 + 0.05 * static_cast<double>(u + 7 * t));
    problem->users[u] = UserSlotContext::from_rate_function(
        f, 40.0 + 5.0 * static_cast<double>(u), 0.9,
        0.5 * static_cast<double>(t), static_cast<double>(t + 1));
    tables.build(*problem);
    tables.build(*problem);  // fully-clean rebuild: nothing dirty
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace cvr::core
