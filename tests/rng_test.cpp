#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace cvr {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(first.contains(b()));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit with overwhelming prob.
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalIsPositiveWithMedianExpMu) {
  Rng rng(15);
  std::vector<double> samples;
  const int n = 50001;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(std::log(50.0), 0.5);
    EXPECT_GT(x, 0.0);
    samples.push_back(x);
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 50.0, 2.0);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(18);
  Rng child = parent.fork();
  // Streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.engine()() == child.engine()()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

}  // namespace
}  // namespace cvr
