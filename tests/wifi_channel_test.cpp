// Golden-vector and guard tests for the Wi-Fi contention channel
// (src/net/wifi_channel.h, docs/workloads.md).
//
// The goldens pin the exact share/backoff/capacity sequences of pinned
// seeds so a refactor cannot silently reshape the distributions; the
// guard tests pin the defaults-off contract — a Router with contention
// disabled is bit-identical to the legacy fading-only model, whatever
// the other contention fields say.

#include "src/net/wifi_channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/net/wireless_channel.h"

namespace cvr::net {
namespace {

WifiContentionConfig enabled_config() {
  WifiContentionConfig config;
  config.enabled = true;
  return config;
}

TEST(WifiAirtime, GoldenSharesDefaultConfig) {
  const WifiContentionConfig config = enabled_config();
  EXPECT_DOUBLE_EQ(1.0, wifi_airtime_shares(config, 1)[0]);
  EXPECT_DOUBLE_EQ(0.46999999999999997, wifi_airtime_shares(config, 2)[0]);
  EXPECT_DOUBLE_EQ(0.29333333333333333, wifi_airtime_shares(config, 3)[0]);
  EXPECT_DOUBLE_EQ(0.20500000000000002, wifi_airtime_shares(config, 4)[0]);
}

TEST(WifiAirtime, SharesSumAtMostOneAndMonotoneDecreasing) {
  const WifiContentionConfig config = enabled_config();
  double previous_share = 2.0;
  for (std::size_t k = 1; k <= 16; ++k) {
    const auto shares = wifi_airtime_shares(config, k);
    ASSERT_EQ(k, shares.size());
    double sum = 0.0;
    for (double s : shares) sum += s;
    EXPECT_LE(sum, 1.0 + 1e-12) << "k=" << k;
    EXPECT_LT(shares[0], previous_share) << "k=" << k;
    previous_share = shares[0];
  }
}

TEST(WifiAirtime, ZeroStationsThrows) {
  EXPECT_THROW(wifi_airtime_shares(enabled_config(), 0),
               std::invalid_argument);
}

TEST(WifiPhy, GoldenRatesAndMonotone) {
  EXPECT_DOUBLE_EQ(260.0, wifi_phy_rate_mbps(5));
  EXPECT_DOUBLE_EQ(325.0, wifi_phy_rate_mbps(7));
  for (int mcs = 1; mcs <= 9; ++mcs) {
    EXPECT_GT(wifi_phy_rate_mbps(mcs), wifi_phy_rate_mbps(mcs - 1));
  }
  EXPECT_THROW(wifi_phy_rate_mbps(-1), std::out_of_range);
  EXPECT_THROW(wifi_phy_rate_mbps(10), std::out_of_range);
}

TEST(WifiMac, GoldenErrorAndEfficiency) {
  const WifiContentionConfig config = enabled_config();
  EXPECT_DOUBLE_EQ(0.089680668750000039, wifi_error_prob(config, 5));
  EXPECT_DOUBLE_EQ(0.16344301879687506, wifi_error_prob(config, 7));
  EXPECT_DOUBLE_EQ(0.86758404535454181, wifi_mac_efficiency(config, 5));
  EXPECT_DOUBLE_EQ(0.76210842790521172, wifi_mac_efficiency(config, 7));
  // Denser constellations lose more goodput to retries.
  for (int mcs = 1; mcs <= 9; ++mcs) {
    EXPECT_LT(wifi_mac_efficiency(config, mcs),
              wifi_mac_efficiency(config, mcs - 1));
    EXPECT_GT(wifi_mac_efficiency(config, mcs), 0.0);
    EXPECT_LE(wifi_mac_efficiency(config, mcs), 1.0);
  }
}

TEST(WifiBackoff, GoldenSequenceSeed2022) {
  const WifiContentionConfig config = enabled_config();
  const std::vector<std::size_t> station0 = {1, 2, 5, 10, 20, 13};
  const std::vector<std::size_t> station1 = {1, 2, 5, 7, 19, 12};
  for (std::size_t attempt = 0; attempt < station0.size(); ++attempt) {
    EXPECT_EQ(station0[attempt],
              wifi_backoff_slots(config, 2022, 0, attempt)) << attempt;
    EXPECT_EQ(station1[attempt],
              wifi_backoff_slots(config, 2022, 1, attempt)) << attempt;
  }
}

TEST(WifiBackoff, DeterministicAndCapped) {
  const WifiContentionConfig config = enabled_config();
  const double cap = static_cast<double>(config.backoff_max_slots) *
                     (1.0 + config.backoff_jitter);
  for (std::uint64_t seed : {1ull, 42ull, 2022ull}) {
    for (std::size_t station = 0; station < 4; ++station) {
      for (std::size_t attempt = 0; attempt < 12; ++attempt) {
        const std::size_t first =
            wifi_backoff_slots(config, seed, station, attempt);
        EXPECT_EQ(first, wifi_backoff_slots(config, seed, station, attempt));
        EXPECT_GE(first, 1u);
        EXPECT_LE(static_cast<double>(first), cap + 0.5);
      }
    }
  }
}

TEST(WifiConfig, ValidateRejectsBadFields) {
  auto broken = [](auto mutate) {
    WifiContentionConfig config;
    config.enabled = true;
    mutate(config);
    return config;
  };
  EXPECT_THROW(validate(broken([](auto& c) { c.mcs_pool.clear(); })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.mcs_pool = {12}; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.contention_overhead = 1.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.error_growth = 0.5; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.backoff_jitter = 1.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.backoff_multiplier = 0.9; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.backoff_penalty = -0.1; })),
               std::invalid_argument);
  EXPECT_NO_THROW(validate(WifiContentionConfig{}));
}

TEST(WifiChannel, GoldenCapacityStreamSeed42) {
  WifiContentionConfig config = enabled_config();
  config.collision_prob_per_station = 0.2;
  config.max_collision_prob = 0.5;
  WifiContentionChannel channel(config, 3, 42);
  // Station MCS from the pool {7, 5}: stations 0 and 2 at MCS 7,
  // station 1 at MCS 5.
  EXPECT_EQ(7, channel.station_mcs(0));
  EXPECT_EQ(5, channel.station_mcs(1));
  EXPECT_EQ(7, channel.station_mcs(2));
  const double aggregates[] = {
      121.24206478873131, 211.47641677963344, 121.24206478873131,
      168.46738370459093, 211.47641677963344, 74.016745872871695,
      168.46738370459093, 121.24206478873131};
  for (int t = 0; t < 8; ++t) {
    channel.step();
    EXPECT_DOUBLE_EQ(aggregates[t], channel.aggregate_capacity_mbps())
        << "slot " << t;
  }
}

TEST(WifiChannel, DeterministicInSeed) {
  WifiContentionConfig config = enabled_config();
  config.collision_prob_per_station = 0.1;
  WifiContentionChannel a(config, 4, 7);
  WifiContentionChannel b(config, 4, 7);
  WifiContentionChannel c(config, 4, 8);
  bool any_difference_from_c = false;
  for (int t = 0; t < 200; ++t) {
    a.step();
    b.step();
    c.step();
    for (std::size_t s = 0; s < 4; ++s) {
      ASSERT_DOUBLE_EQ(a.station_capacity_mbps(s), b.station_capacity_mbps(s));
      if (a.station_capacity_mbps(s) != c.station_capacity_mbps(s)) {
        any_difference_from_c = true;
      }
    }
  }
  EXPECT_TRUE(any_difference_from_c);
}

TEST(WifiChannel, BackoffScalesCapacityByPenalty) {
  WifiContentionConfig config = enabled_config();
  config.collision_prob_per_station = 0.45;
  config.max_collision_prob = 0.9;
  WifiContentionChannel channel(config, 2, 11);
  const double clear0 = wifi_airtime_shares(config, 2)[0] *
                        wifi_phy_rate_mbps(7) * wifi_mac_efficiency(config, 7);
  bool saw_backoff = false;
  for (int t = 0; t < 300; ++t) {
    channel.step();
    if (channel.in_backoff(0)) {
      saw_backoff = true;
      EXPECT_DOUBLE_EQ(clear0 * config.backoff_penalty,
                       channel.station_capacity_mbps(0));
    } else {
      EXPECT_DOUBLE_EQ(clear0, channel.station_capacity_mbps(0));
    }
  }
  EXPECT_TRUE(saw_backoff);
}

TEST(WifiRouter, ContentionCapsPerUserAndAggregate) {
  WirelessChannelConfig config;
  config.fading_sigma = 0.0;  // isolate the contention caps
  config.contention.enabled = true;
  config.contention.collision_prob_per_station = 0.0;
  Router router(400.0, {40.0, 45.0, 50.0}, config, 99);
  const auto shares = wifi_airtime_shares(config.contention, 3);
  for (int t = 0; t < 20; ++t) {
    router.step();
    double bss = 0.0;
    for (std::size_t u = 0; u < 3; ++u) {
      const int mcs = config.contention.mcs_pool[u % 2];
      const double station_cap = shares[u] * wifi_phy_rate_mbps(mcs) *
                                 wifi_mac_efficiency(config.contention, mcs);
      EXPECT_LE(router.per_user_capacity(u),
                std::min(station_cap, u == 0 ? 40.0 : (u == 1 ? 45.0 : 50.0)) +
                    1e-9);
      bss += station_cap;
    }
    EXPECT_LE(router.aggregate_capacity(), std::min(400.0, bss) + 1e-9);
  }
}

// Guard: a disabled contention model is inert no matter how its other
// fields are set — the Router's capacity streams are bit-identical to
// the legacy fading-only model.
TEST(WifiRouter, DisabledContentionBitIdentical) {
  WirelessChannelConfig legacy;
  WirelessChannelConfig tweaked;
  tweaked.contention.enabled = false;
  tweaked.contention.mcs_pool = {1};
  tweaked.contention.contention_overhead = 0.3;
  tweaked.contention.collision_prob_per_station = 0.4;
  tweaked.contention.backoff_max_slots = 3;
  Router a(400.0, {40.0, 55.0}, legacy, 123);
  Router b(400.0, {40.0, 55.0}, tweaked, 123);
  for (int t = 0; t < 300; ++t) {
    a.step();
    b.step();
    EXPECT_DOUBLE_EQ(a.aggregate_capacity(), b.aggregate_capacity());
    EXPECT_DOUBLE_EQ(a.per_user_capacity(0), b.per_user_capacity(0));
    EXPECT_DOUBLE_EQ(a.per_user_capacity(1), b.per_user_capacity(1));
  }
}

TEST(WifiRouter, ContentionChangesTheChannel) {
  WirelessChannelConfig legacy;
  WirelessChannelConfig contended;
  contended.contention.enabled = true;
  Router a(400.0, {40.0, 55.0}, legacy, 123);
  Router b(400.0, {40.0, 55.0}, contended, 123);
  bool any_difference = false;
  for (int t = 0; t < 50 && !any_difference; ++t) {
    a.step();
    b.step();
    any_difference = a.aggregate_capacity() != b.aggregate_capacity() ||
                     a.per_user_capacity(0) != b.per_user_capacity(0);
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace cvr::net
