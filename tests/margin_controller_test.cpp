#include "src/motion/margin_controller.h"

#include <gtest/gtest.h>

#include "src/system/server.h"

namespace cvr::motion {
namespace {

MarginControllerConfig fast_config() {
  MarginControllerConfig config;
  config.patience = 1;   // act immediately (tests control the cadence)
  config.step_deg = 1.0; // whole-degree steps for crisp expectations
  return config;
}

TEST(MarginController, StartsAtInitialClamped) {
  MarginController c(15.0);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 15.0);
  MarginController low(1.0);
  EXPECT_DOUBLE_EQ(low.margin_deg(), 5.0);  // clamped to min
  MarginController high(90.0);
  EXPECT_DOUBLE_EQ(high.margin_deg(), 40.0);  // clamped to max
}

TEST(MarginController, WidensWhenDeltaLow) {
  MarginController c(15.0, fast_config());
  c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 16.0);
  c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 17.0);
}

TEST(MarginController, NarrowsWhenDeltaHigh) {
  MarginController c(15.0, fast_config());
  c.update(0.99);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 14.0);
}

TEST(MarginController, HoldsInsideTargetBand) {
  MarginController c(15.0, fast_config());
  for (int i = 0; i < 100; ++i) c.update(0.93);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 15.0);
}

TEST(MarginController, RespectsBounds) {
  MarginController c(15.0, fast_config());
  for (int i = 0; i < 200; ++i) c.update(0.1);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 40.0);
  for (int i = 0; i < 200; ++i) c.update(1.0);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 5.0);
}

TEST(MarginController, PatienceGatesAdjustment) {
  MarginControllerConfig config;
  config.patience = 5;
  config.step_deg = 1.0;
  MarginController c(15.0, config);
  for (int i = 0; i < 4; ++i) c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 15.0);  // streak not long enough
  c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 16.0);
}

TEST(MarginController, BandVisitResetsStreak) {
  MarginControllerConfig config;
  config.patience = 3;
  config.step_deg = 1.0;
  MarginController c(15.0, config);
  c.update(0.5);
  c.update(0.5);
  c.update(0.93);  // back in band: streak resets
  c.update(0.5);
  c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 15.0);
  c.update(0.5);
  EXPECT_DOUBLE_EQ(c.margin_deg(), 16.0);
}

TEST(MarginController, RejectsBadConfig) {
  MarginControllerConfig bad;
  bad.target_low = 0.97;
  bad.target_high = 0.9;
  EXPECT_THROW(MarginController(15.0, bad), std::invalid_argument);
  MarginControllerConfig bad2;
  bad2.patience = 0;
  EXPECT_THROW(MarginController(15.0, bad2), std::invalid_argument);
}

TEST(ServerAdaptiveMargin, MarginGrowsUnderSustainedMisses) {
  cvr::system::ServerConfig config;
  config.adaptive_margin = true;
  config.margin_controller.patience = 5;
  cvr::system::Server server(config, 1);
  EXPECT_DOUBLE_EQ(server.fov_for(0).margin_deg, config.fov.margin_deg);
  for (int i = 0; i < 400; ++i) server.on_coverage_outcome(0, false);
  EXPECT_GT(server.fov_for(0).margin_deg, config.fov.margin_deg);
}

TEST(ServerAdaptiveMargin, OffByDefault) {
  cvr::system::ServerConfig config;
  cvr::system::Server server(config, 1);
  for (int i = 0; i < 400; ++i) server.on_coverage_outcome(0, false);
  EXPECT_DOUBLE_EQ(server.fov_for(0).margin_deg, config.fov.margin_deg);
}

TEST(ServerAdaptiveMargin, PerUserIndependence) {
  cvr::system::ServerConfig config;
  config.adaptive_margin = true;
  config.margin_controller.patience = 5;
  cvr::system::Server server(config, 2);
  for (int i = 0; i < 400; ++i) {
    server.on_coverage_outcome(0, false);
    server.on_coverage_outcome(1, true);
  }
  EXPECT_GT(server.fov_for(0).margin_deg, server.fov_for(1).margin_deg);
}

}  // namespace
}  // namespace cvr::motion
