// Section VIII extension: loss-aware h_n and allocation behaviour.
#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;

TEST(EffectiveDelta, EqualsDeltaWithoutLossTable) {
  const auto user = make_crf_user(60.0, 0.9, 2.0, 10.0);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    EXPECT_DOUBLE_EQ(user.effective_delta(q), 0.9);
  }
}

TEST(EffectiveDelta, DiscountsByFrameLoss) {
  auto user = make_crf_user(60.0, 0.9, 2.0, 10.0);
  user.frame_loss = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(user.effective_delta(1), 0.9);
  EXPECT_DOUBLE_EQ(user.effective_delta(4), 0.9 * 0.7);
  EXPECT_DOUBLE_EQ(user.effective_delta(6), 0.45);
}

TEST(EffectiveDelta, ShortTableThrows) {
  auto user = make_crf_user(60.0);
  user.frame_loss = {0.1, 0.2};
  EXPECT_THROW(user.effective_delta(3), std::out_of_range);
}

TEST(HValueLossAware, MatchesManualFormula) {
  auto user = make_crf_user(100.0, 0.9, 2.0, 5.0);
  user.frame_loss.assign(6, 0.25);
  const QoeParams params{0.02, 0.5};
  const double success = 0.9 * 0.75;
  const double weight = 4.0 / 5.0;
  const QualityLevel q = 3;
  const double expected =
      success * 3.0 - 0.02 * user.delay[2] -
      0.5 * (success * weight * (3.0 - 2.0) * (3.0 - 2.0) +
             (1.0 - success) * weight * 4.0);
  EXPECT_NEAR(h_value(user, q, params), expected, 1e-12);
}

TEST(HValueLossAware, ZeroLossTableIsNoOp) {
  auto base = make_crf_user(100.0, 0.85, 2.5, 20.0);
  auto with_zeros = base;
  with_zeros.frame_loss.assign(6, 0.0);
  const QoeParams params{0.05, 0.5};
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    EXPECT_DOUBLE_EQ(h_value(base, q, params), h_value(with_zeros, q, params));
  }
}

TEST(LossAwareAllocation, SteepLossCurvePushesLevelsDown) {
  SlotProblem lossless;
  lossless.params = QoeParams{0.0, 0.0};
  lossless.users.push_back(make_crf_user(1000.0, 1.0, 0.0, 1.0));
  lossless.server_bandwidth = 1000.0;

  SlotProblem lossy = lossless;
  // Frame loss rising steeply with level: high levels become worthless.
  lossy.users[0].frame_loss = {0.0, 0.05, 0.15, 0.4, 0.7, 0.9};

  DvGreedyAllocator alloc;
  const auto q_lossless = alloc.allocate(lossless).levels[0];
  const auto q_lossy = alloc.allocate(lossy).levels[0];
  EXPECT_EQ(q_lossless, 6);
  EXPECT_LT(q_lossy, q_lossless);
}

TEST(LossAwareAllocation, SystemSimImprovesUnderInterference) {
  // The Section VIII conjecture: accounting for loss should not hurt —
  // and under heavy interference it should help.
  cvr::system::SystemSimConfig base = cvr::system::setup_two_routers(4);
  base.slots = 600;
  base.rtp.congestion_loss = 0.25;  // punishing congestion loss
  cvr::system::SystemSimConfig aware = base;
  aware.server.loss_aware = true;

  DvGreedyAllocator a, b;
  double base_qoe = 0.0, aware_qoe = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (const auto& o : cvr::system::SystemSim(base).run(a, r)) {
      base_qoe += o.avg_qoe;
    }
    for (const auto& o : cvr::system::SystemSim(aware).run(b, r)) {
      aware_qoe += o.avg_qoe;
    }
  }
  EXPECT_GT(aware_qoe, base_qoe * 0.98);  // never materially worse
}

}  // namespace
}  // namespace cvr::core
