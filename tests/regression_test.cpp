#include "src/util/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace cvr {
namespace {

TEST(SlidingLinearRegressor, RecoversExactLine) {
  SlidingLinearRegressor reg(10);
  for (int i = 0; i < 10; ++i) reg.add(i, 2.0 * i + 1.0);
  EXPECT_NEAR(reg.slope(), 2.0, 1e-9);
  EXPECT_NEAR(reg.intercept(), 1.0, 1e-9);
  EXPECT_NEAR(reg.predict(20.0), 41.0, 1e-9);
}

TEST(SlidingLinearRegressor, EmptyPredictsZero) {
  SlidingLinearRegressor reg(5);
  EXPECT_DOUBLE_EQ(reg.predict(3.0), 0.0);
  EXPECT_FALSE(reg.ready());
}

TEST(SlidingLinearRegressor, SinglePointIsPersistence) {
  SlidingLinearRegressor reg(5);
  reg.add(0.0, 7.0);
  EXPECT_DOUBLE_EQ(reg.predict(100.0), 7.0);
}

TEST(SlidingLinearRegressor, WindowForgetsOldRegime) {
  SlidingLinearRegressor reg(5);
  // Old regime: slope 0 at level 0.
  for (int i = 0; i < 50; ++i) reg.add(i, 0.0);
  // New regime: slope 1; the window only sees the last 5 points.
  for (int i = 50; i < 55; ++i) reg.add(i, static_cast<double>(i));
  EXPECT_NEAR(reg.slope(), 1.0, 1e-9);
  EXPECT_NEAR(reg.predict(60.0), 60.0, 1e-9);
}

TEST(SlidingLinearRegressor, ConstantSignalHasZeroSlope) {
  SlidingLinearRegressor reg(8);
  for (int i = 0; i < 20; ++i) reg.add(i, 5.5);
  EXPECT_NEAR(reg.slope(), 0.0, 1e-9);
  EXPECT_NEAR(reg.predict(1000.0), 5.5, 1e-9);
}

TEST(SlidingLinearRegressor, DegenerateIdenticalXs) {
  SlidingLinearRegressor reg(5);
  reg.add(1.0, 2.0);
  reg.add(1.0, 4.0);
  // Vertical data: slope defined as 0, prediction = mean.
  EXPECT_DOUBLE_EQ(reg.slope(), 0.0);
  EXPECT_NEAR(reg.predict(1.0), 3.0, 1e-9);
}

TEST(SlidingLinearRegressor, NoisyLineRecoveredApproximately) {
  Rng rng(3);
  SlidingLinearRegressor reg(200);
  for (int i = 0; i < 200; ++i) {
    reg.add(i, 3.0 * i - 7.0 + rng.normal(0.0, 0.5));
  }
  EXPECT_NEAR(reg.slope(), 3.0, 0.05);
  EXPECT_NEAR(reg.intercept(), -7.0, 2.0);
}

TEST(SlidingLinearRegressor, ZeroWindowClampedToOne) {
  SlidingLinearRegressor reg(0);
  reg.add(0.0, 1.0);
  reg.add(1.0, 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PolynomialRegressor, RecoversQuadratic) {
  PolynomialRegressor reg(2, 100);
  for (int i = -5; i <= 5; ++i) {
    const double x = i;
    reg.add(x, 2.0 * x * x - 3.0 * x + 1.0);
  }
  EXPECT_TRUE(reg.ready());
  EXPECT_NEAR(reg.predict(10.0), 171.0, 1e-6);
  const auto coeffs = reg.coefficients();
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_NEAR(coeffs[0], 1.0, 1e-6);
  EXPECT_NEAR(coeffs[1], -3.0, 1e-6);
  EXPECT_NEAR(coeffs[2], 2.0, 1e-6);
}

TEST(PolynomialRegressor, UnderdeterminedFallsBackToMean) {
  PolynomialRegressor reg(2, 100);
  reg.add(1.0, 4.0);
  reg.add(2.0, 6.0);
  EXPECT_FALSE(reg.ready());
  EXPECT_NEAR(reg.predict(50.0), 5.0, 1e-9);
}

TEST(PolynomialRegressor, EmptyPredictsZero) {
  PolynomialRegressor reg(2, 10);
  EXPECT_DOUBLE_EQ(reg.predict(1.0), 0.0);
}

TEST(PolynomialRegressor, HistoryBoundForgetsOldData) {
  PolynomialRegressor reg(1, 10);
  for (int i = 0; i < 100; ++i) reg.add(i, 0.0);
  for (int i = 100; i < 110; ++i) reg.add(i, static_cast<double>(i));
  EXPECT_EQ(reg.size(), 10u);
  EXPECT_NEAR(reg.predict(120.0), 120.0, 1e-6);
}

TEST(PolynomialRegressor, DegreeZeroIsMean) {
  PolynomialRegressor reg(0, 100);
  reg.add(0.0, 2.0);
  reg.add(1.0, 4.0);
  reg.add(2.0, 6.0);
  EXPECT_NEAR(reg.predict(123.0), 4.0, 1e-9);
}

TEST(SolveLinearSystem, TwoByTwo) {
  std::vector<double> a = {2.0, 1.0, 1.0, 3.0};
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(solve_linear_system(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularReturnsFalse) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(solve_linear_system(a, b, 2));
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(solve_linear_system(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

// Property: a degree-d regressor interpolates any polynomial of degree
// <= d exactly when given >= d+1 distinct points.
class PolyExactness : public ::testing::TestWithParam<int> {};

TEST_P(PolyExactness, InterpolatesOwnDegree) {
  const int degree = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(degree));
  std::vector<double> coeffs;
  for (int i = 0; i <= degree; ++i) coeffs.push_back(rng.uniform(-2.0, 2.0));
  PolynomialRegressor reg(degree, 64);
  for (int i = 0; i <= degree + 5; ++i) {
    const double x = i * 0.7 - 2.0;
    double y = 0.0, p = 1.0;
    for (double c : coeffs) {
      y += c * p;
      p *= x;
    }
    reg.add(x, y);
  }
  for (double x : {-3.0, 0.0, 4.2}) {
    double y = 0.0, p = 1.0;
    for (double c : coeffs) {
      y += c * p;
      p *= x;
    }
    EXPECT_NEAR(reg.predict(x), y, 1e-5) << "degree " << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyExactness, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace cvr
