#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::make_user;
using testutil::random_problem;

// ---------- Firefly AQC ----------

TEST(Firefly, StartsAtMaxIndividuallyFeasibleWhenRoomy) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(35.0));   // max feasible level 3
  problem.users.push_back(make_crf_user(100.0));  // max feasible level 6
  problem.server_bandwidth = 1000.0;
  FireflyAllocator firefly;
  const Allocation a = firefly.allocate(problem);
  EXPECT_EQ(a.levels[0], 3);  // rate(3)=29.9<=35, rate(4)=43.3>35
  EXPECT_EQ(a.levels[1], 6);
}

TEST(Firefly, DegradesUntilAggregateFits) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 4; ++i) problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 150.0;
  FireflyAllocator firefly;
  const Allocation a = firefly.allocate(problem);
  EXPECT_TRUE(server_feasible(problem, a.levels));
}

TEST(Firefly, LruRotatesDegradationPressure) {
  // Same tight problem twice: the LRU queue must not keep degrading the
  // same user — allocations should differ across consecutive slots.
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 3; ++i) problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 120.0;
  FireflyAllocator firefly;
  const Allocation first = firefly.allocate(problem);
  const Allocation second = firefly.allocate(problem);
  EXPECT_TRUE(server_feasible(problem, first.levels));
  EXPECT_TRUE(server_feasible(problem, second.levels));
  EXPECT_NE(first.levels, second.levels);
}

TEST(Firefly, ResetClearsLruState) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 3; ++i) problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 120.0;
  FireflyAllocator firefly;
  const Allocation first = firefly.allocate(problem);
  firefly.reset();
  const Allocation after_reset = firefly.allocate(problem);
  EXPECT_EQ(first.levels, after_reset.levels);
}

TEST(Firefly, QoeObliviousIgnoresVariancePenalty) {
  // Even with a huge beta the Firefly allocation does not change — it is
  // a heuristic that never evaluates h (the paper's critique).
  SlotProblem lo = random_problem(5, 4, 0.02, 0.0);
  SlotProblem hi = lo;
  hi.params.beta = 100.0;
  FireflyAllocator a, b;
  EXPECT_EQ(a.allocate(lo).levels, b.allocate(hi).levels);
}

TEST(Firefly, AllOnesWhenEverythingTight) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(15.0));
  problem.users.push_back(make_crf_user(15.0));
  problem.server_bandwidth = 20.0;
  FireflyAllocator firefly;
  EXPECT_EQ(firefly.allocate(problem).levels,
            (std::vector<QualityLevel>{1, 1}));
}

TEST(Firefly, UserCountChangeResyncsLru) {
  FireflyAllocator firefly;
  SlotProblem small = random_problem(1, 2);
  firefly.allocate(small);
  SlotProblem big = random_problem(2, 5);
  const Allocation a = firefly.allocate(big);
  EXPECT_EQ(a.levels.size(), 5u);
}

// ---------- Modified PAVQ ----------

TEST(Pavq, PerUserOptimumWhenUnconstrained) {
  // With delta < 1 the PAVQ score still assumes perfect prediction: its
  // choice must equal the argmax of h with delta forced to 1.
  SlotProblem problem;
  problem.params = QoeParams{0.1, 0.5};
  problem.users.push_back(make_crf_user(100.0, 0.6, 2.0, 20.0));
  problem.server_bandwidth = 1000.0;
  PavqAllocator pavq;
  const Allocation a = pavq.allocate(problem);

  UserSlotContext perfect = problem.users[0];
  perfect.delta = 1.0;
  double best = -1e18;
  QualityLevel best_q = 1;
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    if (q > 1 && !user_feasible(perfect, q)) break;
    const double v = h_value(perfect, q, problem.params);
    if (v > best) {
      best = v;
      best_q = q;
    }
  }
  EXPECT_EQ(a.levels[0], best_q);
}

TEST(Pavq, AverageUsageConvergesToBudget) {
  // PAVQ enforces the shared constraint on long-run average via its
  // dual price: after warm-up, mean usage must sit at or below B(t).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SlotProblem problem = random_problem(seed, 8);
    PavqAllocator pavq;
    double warm_used = 0.0;
    int counted = 0;
    for (int t = 0; t < 600; ++t) {
      const Allocation a = pavq.allocate(problem);
      if (t >= 300) {
        warm_used += total_rate(problem, a.levels);
        ++counted;
      }
    }
    EXPECT_LE(warm_used / counted, problem.server_bandwidth * 1.10) << seed;
  }
}

TEST(Pavq, PriceRisesUnderOvercommitmentAndDecaysWhenIdle) {
  SlotProblem tight = random_problem(3, 8);
  tight.server_bandwidth *= 0.4;
  PavqAllocator pavq;
  pavq.allocate(tight);
  EXPECT_GT(pavq.price(), 0.0);
  // Roomy problem: price decays back toward zero.
  SlotProblem roomy = tight;
  roomy.server_bandwidth = 1e6;
  for (int t = 0; t < 10000; ++t) pavq.allocate(roomy);
  EXPECT_DOUBLE_EQ(pavq.price(), 0.0);
}

TEST(Pavq, PriceLagsAbruptCapacityDrop) {
  // The Fig. 8 failure mode in miniature: after the budget suddenly
  // halves, PAVQ keeps violating the new budget for several slots.
  SlotProblem problem = random_problem(4, 8);
  PavqAllocator pavq;
  for (int t = 0; t < 600; ++t) pavq.allocate(problem);
  SlotProblem dropped = problem;
  dropped.server_bandwidth = problem.server_bandwidth * 0.5;
  const Allocation first = pavq.allocate(dropped);
  EXPECT_GT(total_rate(dropped, first.levels), dropped.server_bandwidth);
}

TEST(Pavq, RespectsUserConstraint) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SlotProblem problem = random_problem(seed, 8);
    PavqAllocator pavq;
    const Allocation a = pavq.allocate(problem);
    for (std::size_t n = 0; n < 8; ++n) {
      if (a.levels[n] > 1) {
        EXPECT_TRUE(user_feasible(problem.users[n], a.levels[n])) << seed;
      }
    }
  }
}

TEST(Pavq, VarianceAnchorsAllocationNearRunningMean) {
  // Large beta pins the choice near qbar (the mean-variability
  // trade-off that defines PAVQ).
  SlotProblem problem;
  problem.params = QoeParams{0.0, 50.0};
  problem.users.push_back(make_crf_user(100.0, 1.0, 3.0, 100.0));
  problem.server_bandwidth = 1000.0;
  PavqAllocator pavq;
  EXPECT_EQ(pavq.allocate(problem).levels[0], 3);
}

TEST(Pavq, TightBudgetConvergesToFit) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 4; ++i) problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 100.0;
  PavqAllocator pavq;
  Allocation a;
  for (int t = 0; t < 2000; ++t) a = pavq.allocate(problem);
  EXPECT_LE(total_rate(problem, a.levels), problem.server_bandwidth * 1.25);
  for (QualityLevel q : a.levels) EXPECT_GE(q, 1);
}

TEST(Pavq, BudgetBelowMinimaDrivesAllOnesEventually) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 1.0;
  PavqAllocator pavq;
  Allocation a;
  for (int t = 0; t < 5000; ++t) a = pavq.allocate(problem);
  EXPECT_EQ(a.levels, (std::vector<QualityLevel>{1, 1}));
}

TEST(Pavq, ResetClearsPrice) {
  SlotProblem tight = random_problem(6, 6);
  tight.server_bandwidth *= 0.3;
  PavqAllocator pavq;
  for (int t = 0; t < 100; ++t) pavq.allocate(tight);
  EXPECT_GT(pavq.price(), 0.0);
  pavq.reset();
  EXPECT_DOUBLE_EQ(pavq.price(), 0.0);
}

TEST(Pavq, IgnoresDeltaUnlikeOurAllocator) {
  // Dropping delta from 1.0 to 0.5 changes h but must not change PAVQ's
  // allocation (it was designed before FoV prediction).
  SlotProblem base = random_problem(9, 5, 0.02, 0.5);
  SlotProblem degraded = base;
  for (auto& user : degraded.users) user.delta = 0.5;
  PavqAllocator a, b;
  EXPECT_EQ(a.allocate(base).levels, b.allocate(degraded).levels);
}

TEST(Pavq, ObjectiveFieldMatchesEvaluate) {
  SlotProblem problem = random_problem(3, 6);
  PavqAllocator pavq;
  const Allocation a = pavq.allocate(problem);
  EXPECT_NEAR(a.objective, evaluate(problem, a.levels), 1e-9);
}

}  // namespace
}  // namespace cvr::core
