// Golden-vector and guard tests for the HEVC frame-size process
// (src/content/hevc_process.h, docs/workloads.md).
//
// Pins the structural I/P multipliers, the exact multiplier stream of a
// pinned seed, long-run mean-1 behaviour, and the defaults-off contract:
// a TraceSimulation with hevc disabled is bit-identical to the smooth
// CRF model regardless of the other hevc fields.

#include "src/content/hevc_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"
#include "src/trace/trace_repository.h"

namespace cvr::content {
namespace {

HevcProcessConfig enabled_config() {
  HevcProcessConfig config;
  config.enabled = true;
  return config;
}

TEST(HevcStructural, GoldenDefaultMultipliers) {
  const HevcProcessConfig config = enabled_config();
  // R=4, G=32: I = R*G/(R+G-1), P = G/(R+G-1).
  EXPECT_DOUBLE_EQ(3.657142857142857, hevc_structural_multiplier(config, 0));
  for (std::size_t f = 1; f < config.gop_length; ++f) {
    EXPECT_DOUBLE_EQ(0.91428571428571426,
                     hevc_structural_multiplier(config, f));
  }
}

TEST(HevcStructural, GopMeanExactlyOne) {
  for (std::size_t gop : {1u, 2u, 8u, 32u, 60u}) {
    for (double ratio : {1.0, 2.5, 4.0, 10.0}) {
      HevcProcessConfig config = enabled_config();
      config.gop_length = gop;
      config.i_frame_ratio = ratio;
      double sum = 0.0;
      for (std::size_t f = 0; f < gop; ++f) {
        sum += hevc_structural_multiplier(config, f);
      }
      EXPECT_NEAR(1.0, sum / static_cast<double>(gop), 1e-12)
          << "gop=" << gop << " ratio=" << ratio;
    }
  }
}

TEST(HevcProcess, GoldenStreamSeed7) {
  const double expected[] = {
      3.6704909084936763,  0.6329377061517889,  0.97470033653475785,
      1.0319405738024756,  1.2797090083117777,  1.2417204848101551,
      1.305228333327523,   0.83989456831747455, 0.89781138168131991,
      0.85618495671210493, 0.78434768381147446, 0.70303656731148256};
  HevcFrameProcess process(enabled_config(), 7);
  EXPECT_DOUBLE_EQ(1.0, process.current());
  EXPECT_EQ(0u, process.frames());
  for (std::size_t t = 0; t < 12; ++t) {
    const double m = process.step();
    EXPECT_DOUBLE_EQ(expected[t], m) << "frame " << t;
    EXPECT_DOUBLE_EQ(m, process.current());
  }
  EXPECT_EQ(12u, process.frames());
}

TEST(HevcProcess, ZeroSigmaReducesToStructuralPattern) {
  HevcProcessConfig config = enabled_config();
  config.size_sigma = 0.0;
  HevcFrameProcess process(config, 99);
  for (std::size_t t = 0; t < 3 * config.gop_length; ++t) {
    EXPECT_DOUBLE_EQ(
        hevc_structural_multiplier(config, t % config.gop_length),
        process.step())
        << "frame " << t;
  }
}

TEST(HevcProcess, DeterministicInSeed) {
  const HevcProcessConfig config = enabled_config();
  HevcFrameProcess a(config, 13), b(config, 13), c(config, 14);
  bool differs = false;
  for (int t = 0; t < 256; ++t) {
    const double x = a.step();
    ASSERT_DOUBLE_EQ(x, b.step());
    if (x != c.step()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(HevcProcess, MultiplierAlwaysWithinClampBounds) {
  HevcProcessConfig config = enabled_config();
  config.size_sigma = 1.5;  // heavy jitter to exercise the clamps
  config.min_multiplier = 0.2;
  config.max_multiplier = 3.0;
  HevcFrameProcess process(config, 5);
  for (int t = 0; t < 5000; ++t) {
    const double m = process.step();
    EXPECT_GE(m, config.min_multiplier);
    EXPECT_LE(m, config.max_multiplier);
    EXPECT_TRUE(std::isfinite(m));
  }
}

TEST(HevcProcess, LongRunMeanNearOne) {
  // The structural pattern is exactly mean-1 and the lognormal jitter is
  // mean-1 up to AR(1) warm-up, so a long run must average close to 1.
  HevcFrameProcess process(enabled_config(), 2022);
  const std::size_t frames = 64 * 1024;
  double sum = 0.0;
  for (std::size_t t = 0; t < frames; ++t) sum += process.step();
  EXPECT_NEAR(1.0, sum / static_cast<double>(frames), 0.03);
}

TEST(HevcConfig, ValidateRejectsBadFields) {
  auto broken = [](auto mutate) {
    HevcProcessConfig config;
    config.enabled = true;
    mutate(config);
    return config;
  };
  EXPECT_THROW(validate(broken([](auto& c) { c.gop_length = 0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.i_frame_ratio = 0.5; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.size_sigma = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.burst_rho = 1.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.min_multiplier = 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) {
                 c.min_multiplier = 2.0;
                 c.max_multiplier = 1.0;
               })),
               std::invalid_argument);
  EXPECT_NO_THROW(validate(HevcProcessConfig{}));
}

trace::TraceRepositoryConfig small_repo_config() {
  trace::TraceRepositoryConfig config;
  config.fcc_pool_size = 8;
  config.lte_pool_size = 4;
  config.fcc.duration_s = 30.0;
  config.lte.duration_s = 30.0;
  return config;
}

// Guard: a disabled hevc process is inert no matter how its other
// fields are set — TraceSimulation outcomes are bit-identical to the
// smooth CRF model.
TEST(HevcTraceSim, DisabledProcessBitIdentical) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  sim::TraceSimConfig legacy;
  legacy.users = 3;
  legacy.slots = 300;
  sim::TraceSimConfig tweaked = legacy;
  tweaked.hevc.enabled = false;
  tweaked.hevc.gop_length = 8;
  tweaked.hevc.i_frame_ratio = 6.0;
  tweaked.hevc.size_sigma = 0.9;
  const sim::TraceSimulation a(legacy, repo);
  const sim::TraceSimulation b(tweaked, repo);
  core::DvGreedyAllocator alloc_a, alloc_b;
  const auto x = a.run(alloc_a, 0);
  const auto y = b.run(alloc_b, 0);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
    EXPECT_DOUBLE_EQ(x[u].avg_quality, y[u].avg_quality);
    EXPECT_DOUBLE_EQ(x[u].avg_delay_ms, y[u].avg_delay_ms);
    EXPECT_DOUBLE_EQ(x[u].variance, y[u].variance);
  }
}

TEST(HevcTraceSim, EnabledProcessChangesOutcomesDeterministically) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  sim::TraceSimConfig config;
  config.users = 3;
  config.slots = 300;
  config.hevc.enabled = true;
  const sim::TraceSimulation sim(config, repo);
  core::DvGreedyAllocator a, b;
  const auto x = sim.run(a, 0);
  const auto y = sim.run(b, 0);
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
  }
  sim::TraceSimConfig smooth = config;
  smooth.hevc.enabled = false;
  const sim::TraceSimulation sim_smooth(smooth, repo);
  core::DvGreedyAllocator c;
  const auto z = sim_smooth.run(c, 0);
  bool differs = false;
  for (std::size_t u = 0; u < x.size(); ++u) {
    if (x[u].avg_qoe != z[u].avg_qoe) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cvr::content
