#include "src/net/mm1.h"

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace cvr::net {
namespace {

TEST(Mm1Delay, MatchesEquation13) {
  // d(r) = r / (B - r).
  EXPECT_DOUBLE_EQ(mm1_delay(10.0, 50.0), 0.25);
  EXPECT_DOUBLE_EQ(mm1_delay(25.0, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(mm1_delay(40.0, 50.0), 4.0);
}

TEST(Mm1Delay, ZeroRateIsZeroDelay) {
  EXPECT_DOUBLE_EQ(mm1_delay(0.0, 50.0), 0.0);
}

TEST(Mm1Delay, SaturationReturnsCap) {
  EXPECT_DOUBLE_EQ(mm1_delay(50.0, 50.0), kSaturatedDelay);
  EXPECT_DOUBLE_EQ(mm1_delay(60.0, 50.0), kSaturatedDelay);
  EXPECT_DOUBLE_EQ(mm1_delay(1.0, 0.0), kSaturatedDelay);
}

TEST(Mm1Delay, NearSaturationCapped) {
  EXPECT_LE(mm1_delay(49.9999999, 50.0), kSaturatedDelay);
}

TEST(Mm1Delay, NegativeInputsThrow) {
  EXPECT_THROW(mm1_delay(-1.0, 50.0), std::invalid_argument);
  EXPECT_THROW(mm1_delay(1.0, -50.0), std::invalid_argument);
}

TEST(Mm1Delay, IncreasingInRate) {
  double prev = 0.0;
  for (double r = 1.0; r < 50.0; r += 1.0) {
    const double d = mm1_delay(r, 50.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Mm1Delay, ConvexInRate) {
  // Discrete convexity check of Fig. 1b's property.
  const double bandwidth = 50.0;
  double prev_inc = 0.0;
  for (double r = 1.0; r + 1.0 < bandwidth; r += 1.0) {
    const double inc = mm1_delay(r + 1.0, bandwidth) - mm1_delay(r, bandwidth);
    EXPECT_GE(inc, prev_inc);
    prev_inc = inc;
  }
}

TEST(Mm1Delay, DecreasingInBandwidth) {
  EXPECT_GT(mm1_delay(10.0, 20.0), mm1_delay(10.0, 40.0));
}

TEST(Mm1MeanSojourn, AnalyticFormula) {
  // lambda = 15 Mbps / 12 kb = 1.25 pkt/ms; mu = 2.5 pkt/ms -> W = 0.8 ms.
  EXPECT_NEAR(mm1_mean_sojourn_ms(15.0, 30.0, 12000.0), 0.8, 1e-12);
}

TEST(Mm1MeanSojourn, SaturatedReturnsCap) {
  EXPECT_DOUBLE_EQ(mm1_mean_sojourn_ms(30.0, 30.0), kSaturatedDelay);
}

TEST(Mm1Simulator, MatchesAnalyticMean) {
  const double offered = 10.0, capacity = 15.0;
  const auto result = Mm1Simulator::run(offered, capacity, 200000, 42);
  const double analytic = mm1_mean_sojourn_ms(offered, capacity);
  EXPECT_EQ(result.samples, 200000u);
  EXPECT_NEAR(result.mean_sojourn_ms, analytic, analytic * 0.05);
}

TEST(Mm1Simulator, Deterministic) {
  const auto a = Mm1Simulator::run(10.0, 15.0, 1000, 7);
  const auto b = Mm1Simulator::run(10.0, 15.0, 1000, 7);
  EXPECT_DOUBLE_EQ(a.mean_sojourn_ms, b.mean_sojourn_ms);
}

TEST(Mm1Simulator, HigherLoadHigherDelay) {
  const auto low = Mm1Simulator::run(5.0, 15.0, 50000, 3);
  const auto high = Mm1Simulator::run(13.0, 15.0, 50000, 3);
  EXPECT_GT(high.mean_sojourn_ms, low.mean_sojourn_ms);
}

TEST(Mm1Simulator, TailAboveMean) {
  const auto result = Mm1Simulator::run(10.0, 15.0, 50000, 9);
  EXPECT_GT(result.p95_sojourn_ms, result.mean_sojourn_ms);
  EXPECT_GE(result.max_sojourn_ms, result.p95_sojourn_ms);
}

TEST(Mm1Simulator, ConvexMeanDelayCurve) {
  // The simulated curve over offered load must be convex — this is the
  // property Fig. 1b demonstrates with real RTT measurements.
  const double capacity = 15.0;
  std::vector<double> means;
  for (double offered = 2.0; offered <= 14.0; offered += 2.0) {
    means.push_back(
        Mm1Simulator::run(offered, capacity, 100000, 11).mean_sojourn_ms);
  }
  for (std::size_t i = 2; i < means.size(); ++i) {
    const double inc_prev = means[i - 1] - means[i - 2];
    const double inc = means[i] - means[i - 1];
    EXPECT_GT(inc, inc_prev * 0.8);  // allow sampling noise
  }
}

TEST(Mm1Simulator, RejectsNonPositiveRates) {
  EXPECT_THROW(Mm1Simulator::run(0.0, 15.0, 10, 1), std::invalid_argument);
  EXPECT_THROW(Mm1Simulator::run(10.0, 0.0, 10, 1), std::invalid_argument);
}

TEST(Mm1Simulator, UnstableQueueStillTerminates) {
  const auto result = Mm1Simulator::run(20.0, 15.0, 5000, 5);
  EXPECT_EQ(result.samples, 5000u);
  EXPECT_GT(result.mean_sojourn_ms, mm1_mean_sojourn_ms(14.0, 15.0));
}

}  // namespace
}  // namespace cvr::net
