#include "src/motion/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/motion/motion_generator.h"

namespace cvr::motion {
namespace {

TEST(LinearMotionPredictor, DefaultPoseBeforeObservations) {
  LinearMotionPredictor pred;
  const Pose p = pred.predict(1);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.yaw, 0.0);
  EXPECT_FALSE(pred.ready());
}

TEST(LinearMotionPredictor, SingleObservationIsPersistence) {
  LinearMotionPredictor pred;
  Pose p;
  p.x = 2.0;
  p.yaw = 45.0;
  pred.observe(0, p);
  const Pose out = pred.predict(5);
  EXPECT_DOUBLE_EQ(out.x, 2.0);
  EXPECT_DOUBLE_EQ(out.yaw, 45.0);
}

TEST(LinearMotionPredictor, ExtrapolatesLinearMotion) {
  LinearMotionPredictor pred;
  for (std::size_t t = 0; t < 10; ++t) {
    Pose p;
    p.x = 0.1 * static_cast<double>(t);
    p.y = 1.0 - 0.05 * static_cast<double>(t);
    pred.observe(t, p);
  }
  const Pose out = pred.predict(2);  // t = 11
  EXPECT_NEAR(out.x, 1.1, 1e-9);
  EXPECT_NEAR(out.y, 1.0 - 0.55, 1e-9);
}

TEST(LinearMotionPredictor, ExtrapolatesLinearYaw) {
  LinearMotionPredictor pred;
  for (std::size_t t = 0; t < 10; ++t) {
    Pose p;
    p.yaw = 3.0 * static_cast<double>(t);
    pred.observe(t, p);
  }
  EXPECT_NEAR(pred.predict(1).yaw, 30.0, 1e-9);
}

TEST(LinearMotionPredictor, YawUnwrapsAcrossBoundary) {
  // Steady rotation through +-180: naive regression on wrapped angles
  // would explode; the unwrapped fit must continue smoothly.
  LinearMotionPredictor pred;
  for (std::size_t t = 0; t < 40; ++t) {
    Pose p;
    p.yaw = wrap_degrees(170.0 + 2.0 * static_cast<double>(t));
    pred.observe(t, p);
  }
  // Next value: 170 + 2*40 = 250 -> wraps to -110.
  EXPECT_NEAR(pred.predict(1).yaw, wrap_degrees(250.0), 1e-6);
}

TEST(LinearMotionPredictor, NegativeDirectionWrap) {
  LinearMotionPredictor pred;
  for (std::size_t t = 0; t < 40; ++t) {
    Pose p;
    p.yaw = wrap_degrees(-170.0 - 2.0 * static_cast<double>(t));
    pred.observe(t, p);
  }
  EXPECT_NEAR(pred.predict(1).yaw, wrap_degrees(-170.0 - 80.0), 1e-6);
}

TEST(LinearMotionPredictor, PitchStaysClamped) {
  LinearMotionPredictor pred;
  for (std::size_t t = 0; t < 10; ++t) {
    Pose p;
    p.pitch = 10.0 * static_cast<double>(t);  // would extrapolate past 90
    pred.observe(t, p);
  }
  EXPECT_LE(pred.predict(5).pitch, 90.0);
}

TEST(LinearMotionPredictor, WindowAdaptsToTurn) {
  PredictorConfig config;
  config.window = 5;
  LinearMotionPredictor pred(config);
  // Long history going right, then an abrupt turn going left: with a
  // window of 5 the prediction must follow the new direction.
  std::size_t t = 0;
  for (; t < 50; ++t) {
    Pose p;
    p.x = 0.01 * static_cast<double>(t);
    pred.observe(t, p);
  }
  const double turn_x = 0.01 * 49;
  for (; t < 60; ++t) {
    Pose p;
    p.x = turn_x - 0.02 * static_cast<double>(t - 49);
    pred.observe(t, p);
  }
  const Pose out = pred.predict(1);
  EXPECT_LT(out.x, turn_x - 0.02 * 10);
}

TEST(LinearMotionPredictor, HighAccuracyOnGeneratedMotion) {
  // End-to-end sanity: on realistic synthetic motion, one-slot-ahead
  // prediction error should be small most of the time (the "high
  // accuracy" regime the paper relies on).
  MotionGenerator gen;
  const MotionTrace trace = gen.generate(42, 0, 3000);
  LinearMotionPredictor pred;
  std::size_t good = 0;
  std::size_t evaluated = 0;
  for (std::size_t t = 0; t + 1 < trace.size(); ++t) {
    pred.observe(t, trace[t]);
    if (t < 20) continue;
    const Pose predicted = pred.predict(1);
    const Pose& actual = trace[t + 1];
    ++evaluated;
    const bool pos_ok = predicted.position_distance(actual) < 0.10;
    const bool yaw_ok =
        std::abs(angular_difference(predicted.yaw, actual.yaw)) < 15.0;
    if (pos_ok && yaw_ok) ++good;
  }
  EXPECT_GT(static_cast<double>(good) / static_cast<double>(evaluated), 0.8);
}

TEST(LinearMotionPredictor, ObservationCountTracked) {
  LinearMotionPredictor pred;
  EXPECT_EQ(pred.observations(), 0u);
  pred.observe(0, Pose{});
  pred.observe(1, Pose{});
  EXPECT_EQ(pred.observations(), 2u);
  EXPECT_TRUE(pred.ready());
}

}  // namespace
}  // namespace cvr::motion
