#include "src/system/server.h"

#include <gtest/gtest.h>

namespace cvr::system {
namespace {

ServerConfig small_config() {
  ServerConfig config;
  config.server_bandwidth_mbps = 200.0;
  return config;
}

TEST(Server, RejectsZeroUsers) {
  EXPECT_THROW(Server(small_config(), 0), std::invalid_argument);
}

TEST(Server, PredictsLinearWalk) {
  Server server(small_config(), 1);
  for (std::size_t t = 0; t < 10; ++t) {
    motion::Pose p;
    p.x = 1.0 + 0.01 * static_cast<double>(t);
    p.y = 2.0;
    server.on_pose(0, t, p);
  }
  const motion::Pose predicted = server.predict_pose(0);
  // Two slots ahead of t = 9 -> x = 1.0 + 0.11.
  EXPECT_NEAR(predicted.x, 1.11, 1e-9);
  EXPECT_NEAR(predicted.y, 2.0, 1e-9);
}

TEST(Server, DefaultPoseBeforeAnyUpload) {
  Server server(small_config(), 1);
  const motion::Pose p = server.predict_pose(0);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
}

TEST(Server, BuildProblemUsesEstimates) {
  Server server(small_config(), 2);
  motion::Pose p;
  p.x = 1.0;
  p.y = 1.0;
  server.on_pose(0, 0, p);
  server.on_pose(1, 0, p);
  for (int i = 0; i < 50; ++i) {
    server.on_bandwidth_sample(0, 80.0);
    server.on_bandwidth_sample(1, 30.0);
  }
  const core::SlotProblem problem = server.build_problem(1);
  ASSERT_EQ(problem.users.size(), 2u);
  EXPECT_DOUBLE_EQ(problem.server_bandwidth, 200.0);
  EXPECT_NEAR(problem.users[0].user_bandwidth, 80.0, 1.0);
  EXPECT_NEAR(problem.users[1].user_bandwidth, 30.0, 1.0);
  // Rate tables populated and increasing.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GT(problem.users[0].rate[i], problem.users[0].rate[i - 1]);
    EXPECT_GE(problem.users[0].delay[i], problem.users[0].delay[i - 1]);
  }
}

TEST(Server, DeltaEstimateTracksCoverageFeedback) {
  Server server(small_config(), 1);
  motion::Pose p;
  server.on_pose(0, 0, p);
  for (int i = 0; i < 200; ++i) server.on_coverage_outcome(0, i % 2 == 0);
  const core::SlotProblem problem = server.build_problem(1);
  EXPECT_NEAR(problem.users[0].delta, 0.5, 0.05);
}

TEST(Server, QbarTracksDisplayedQuality) {
  Server server(small_config(), 1);
  motion::Pose p;
  server.on_pose(0, 0, p);
  server.on_displayed_quality(0, 4.0);
  server.on_displayed_quality(0, 0.0);  // miss counts as 0
  const core::SlotProblem problem = server.build_problem(3);
  EXPECT_DOUBLE_EQ(problem.users[0].qbar, 2.0);
}

TEST(Server, FallbackPrefetchAddsNextCellTiles) {
  ServerConfig config = small_config();
  config.fallback_prefetch = true;
  Server server(config, 1);
  // Feed a steady walk in +x so the predictor sees clear motion, and a
  // roomy bandwidth estimate so the headroom gate admits the fallback.
  for (std::size_t t = 0; t < 30; ++t) {
    motion::Pose p;
    p.x = 5.0 + 0.02 * static_cast<double>(t);
    p.y = 4.0;
    server.on_pose(0, t, p);
    server.on_bandwidth_sample(0, 100.0);
  }
  const TileRequest request = server.make_request(0, 4);
  ASSERT_FALSE(request.fallback_set.empty());
  const content::TileKey main_key =
      content::unpack_video_id(request.full_set.front());
  const content::TileKey fb_key =
      content::unpack_video_id(request.fallback_set.front());
  EXPECT_EQ(fb_key.level, 1);                       // lowest level
  EXPECT_EQ(fb_key.cell.gx, main_key.cell.gx + 1);  // one cell ahead in +x
  EXPECT_EQ(fb_key.cell.gy, main_key.cell.gy);
  // Fallback tiles are part of the transmitted set.
  EXPECT_GT(request.tiles.size(), request.full_set.size());
}

TEST(Server, FallbackPrefetchSkipsStationaryUser) {
  ServerConfig config = small_config();
  config.fallback_prefetch = true;
  Server server(config, 1);
  for (std::size_t t = 0; t < 30; ++t) {
    motion::Pose p;
    p.x = 5.0;
    p.y = 4.0;
    server.on_pose(0, t, p);
    server.on_bandwidth_sample(0, 100.0);
  }
  const TileRequest request = server.make_request(0, 3);
  EXPECT_TRUE(request.fallback_set.empty());
}

TEST(Server, FallbackPrefetchGatedWhenNoHeadroom) {
  ServerConfig config = small_config();
  config.fallback_prefetch = true;
  Server server(config, 1);
  for (std::size_t t = 0; t < 30; ++t) {
    motion::Pose p;
    p.x = 5.0 + 0.02 * static_cast<double>(t);
    p.y = 4.0;
    server.on_pose(0, t, p);
    server.on_bandwidth_sample(0, 25.0);  // tight link
  }
  const TileRequest request = server.make_request(0, 4);
  EXPECT_TRUE(request.fallback_set.empty());  // insurance skipped
}

TEST(Server, MakeRequestReturnsPredictedFovTiles) {
  Server server(small_config(), 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  p.yaw = -90.0;
  p.pitch = 40.0;
  server.on_pose(0, 0, p);
  const TileRequest request = server.make_request(0, 4);
  EXPECT_EQ(request.level, 4);
  EXPECT_FALSE(request.full_set.empty());
  EXPECT_EQ(request.tiles.size(), request.full_set.size());  // nothing delivered yet
  EXPECT_GT(request.demand_mbps, 0.0);
  for (content::VideoId vid : request.full_set) {
    EXPECT_EQ(content::unpack_video_id(vid).level, 4);
  }
}

TEST(Server, RepetitionSuppressionShrinksSecondRequest) {
  Server server(small_config(), 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  const TileRequest first = server.make_request(0, 3);
  server.on_delivery_acks(0, first.tiles);
  const TileRequest second = server.make_request(0, 3);
  EXPECT_TRUE(second.tiles.empty());
  EXPECT_DOUBLE_EQ(second.demand_mbps, 0.0);
  EXPECT_EQ(second.full_set.size(), first.full_set.size());
}

TEST(Server, ReleaseAcksReenableTransmission) {
  Server server(small_config(), 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  const TileRequest first = server.make_request(0, 3);
  server.on_delivery_acks(0, first.tiles);
  server.on_release_acks(0, first.tiles);
  const TileRequest third = server.make_request(0, 3);
  EXPECT_EQ(third.tiles.size(), first.tiles.size());
}

TEST(Server, LevelChangeRequiresRetransmission) {
  Server server(small_config(), 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  const TileRequest q3 = server.make_request(0, 3);
  server.on_delivery_acks(0, q3.tiles);
  const TileRequest q4 = server.make_request(0, 4);
  EXPECT_EQ(q4.tiles.size(), q4.full_set.size());
}

TEST(Server, MakeRequestRejectsBadLevel) {
  Server server(small_config(), 1);
  EXPECT_THROW(server.make_request(0, 0), std::out_of_range);
  EXPECT_THROW(server.make_request(0, 7), std::out_of_range);
}

TEST(Server, DelaySamplesTrainPredictor) {
  Server server(small_config(), 1);
  motion::Pose p;
  server.on_pose(0, 0, p);
  // Feed a steep measured curve; the problem's delay table must reflect
  // the learned polynomial rather than the analytic fallback.
  for (int i = 0; i < 50; ++i) {
    const double r = 10.0 + i;
    server.on_delay_sample(0, r, 0.1 * r * r);
  }
  for (int i = 0; i < 50; ++i) server.on_bandwidth_sample(0, 60.0);
  const core::SlotProblem problem = server.build_problem(1);
  // rate(3) ~ 29.9 -> learned delay ~ 0.1 * 29.9^2 ~ 89.
  EXPECT_NEAR(problem.users[0].delay[2],
              0.1 * problem.users[0].rate[2] * problem.users[0].rate[2],
              5.0);
}

TEST(Server, CacheAdvancesWithRequests) {
  Server server(small_config(), 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  server.make_request(0, 3);
  EXPECT_GT(server.cache(0).size(), 0u);
}

TEST(Server, LossAwareProblemCarriesFrameLossTable) {
  ServerConfig config = small_config();
  config.loss_aware = true;
  Server server(config, 1);
  motion::Pose p;
  server.on_pose(0, 0, p);
  for (int i = 0; i < 100; ++i) {
    server.on_bandwidth_sample(0, 50.0);
    server.on_loss_sample(0, i / 100.0, 0.002 + 0.05 * (i / 100.0));
  }
  const core::SlotProblem problem = server.build_problem(1);
  ASSERT_EQ(problem.users[0].frame_loss.size(), 6u);
  // Higher levels induce higher utilisation -> higher frame loss.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GE(problem.users[0].frame_loss[i],
              problem.users[0].frame_loss[i - 1] - 1e-12);
  }
  EXPECT_GT(problem.users[0].frame_loss[5], 0.0);
  EXPECT_LT(problem.users[0].frame_loss[0], 1.0);
}

TEST(Server, PublishedModeHasNoFrameLossTable) {
  Server server(small_config(), 1);
  motion::Pose p;
  server.on_pose(0, 0, p);
  const core::SlotProblem problem = server.build_problem(1);
  EXPECT_TRUE(problem.users[0].frame_loss.empty());
}

TEST(Server, TransmitFractionLearnsRepetitionSavings) {
  // A stationary user: after the first delivery every later request is
  // fully suppressed, so the learned transmit fraction decays toward 0,
  // shrinking the loss-aware packet estimates.
  ServerConfig config = small_config();
  config.loss_aware = true;
  Server server(config, 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  for (int i = 0; i < 100; ++i) server.on_bandwidth_sample(0, 60.0);
  for (int i = 0; i < 60; ++i) {
    const TileRequest request = server.make_request(0, 3);
    server.on_delivery_acks(0, request.tiles);
    server.on_loss_sample(0, 0.5, 0.02);
  }
  const core::SlotProblem problem = server.build_problem(61);
  // With a ~0.05 learned transmit fraction, only a handful of packets
  // are at risk: the level-6 frame-loss estimate collapses far below
  // the full-frame figure (1 - 0.98^143 ~ 0.94 at this loss rate).
  EXPECT_LT(problem.users[0].frame_loss[5], 0.3);
}

TEST(Server, RepetitionSuppressionOffResendsEverything) {
  ServerConfig config = small_config();
  config.repetition_suppression = false;
  Server server(config, 1);
  motion::Pose p;
  p.x = 5.0;
  p.y = 4.0;
  server.on_pose(0, 0, p);
  const TileRequest first = server.make_request(0, 3);
  server.on_delivery_acks(0, first.tiles);
  const TileRequest second = server.make_request(0, 3);
  EXPECT_EQ(second.tiles.size(), second.full_set.size());
  EXPECT_GT(second.demand_mbps, 0.0);
}

TEST(Server, OutOfRangeUserThrows) {
  Server server(small_config(), 2);
  EXPECT_THROW(server.predict_pose(5), std::out_of_range);
  EXPECT_THROW(server.on_bandwidth_sample(5, 10.0), std::out_of_range);
}

}  // namespace
}  // namespace cvr::system
