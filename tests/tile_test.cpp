#include "src/content/tile.h"

#include <gtest/gtest.h>

namespace cvr::content {
namespace {

TEST(GridCell, QuantisesToFiveCentimetres) {
  EXPECT_EQ(cell_for_position(0.0, 0.0), (GridCell{0, 0}));
  EXPECT_EQ(cell_for_position(0.024, 0.026), (GridCell{0, 1}));
  EXPECT_EQ(cell_for_position(1.0, -1.0), (GridCell{20, -20}));
  EXPECT_EQ(cell_for_position(0.076, 0.0).gx, 2);  // rounds to nearest cell
}

TEST(VideoId, RoundTripsAllFields) {
  const TileKey key{{123, -456}, 2, 5};
  const TileKey back = unpack_video_id(pack_video_id(key));
  EXPECT_EQ(back, key);
}

TEST(VideoId, RoundTripsExtremes) {
  for (int tile = 0; tile < kTilesPerFrame; ++tile) {
    for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
      const TileKey key{{-100000, 100000}, tile, q};
      EXPECT_EQ(unpack_video_id(pack_video_id(key)), key);
    }
  }
}

TEST(VideoId, DistinctKeysDistinctIds) {
  const VideoId a = pack_video_id({{1, 2}, 0, 1});
  const VideoId b = pack_video_id({{1, 2}, 1, 1});
  const VideoId c = pack_video_id({{1, 2}, 0, 2});
  const VideoId d = pack_video_id({{2, 2}, 0, 1});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
}

TEST(VideoId, RejectsInvalidLevel) {
  EXPECT_THROW(pack_video_id({{0, 0}, 0, 0}), std::out_of_range);
  EXPECT_THROW(pack_video_id({{0, 0}, 0, 7}), std::out_of_range);
}

TEST(VideoId, RejectsInvalidTileIndex) {
  EXPECT_THROW(pack_video_id({{0, 0}, -1, 1}), std::out_of_range);
  EXPECT_THROW(pack_video_id({{0, 0}, 4, 1}), std::out_of_range);
}

TEST(VideoId, RejectsOutOfRangeCell) {
  EXPECT_THROW(pack_video_id({{1 << 23, 0}, 0, 1}), std::out_of_range);
  EXPECT_THROW(pack_video_id({{0, -(1 << 23) - 1}, 0, 1}), std::out_of_range);
}

TEST(TileKey, ToStringReadable) {
  EXPECT_EQ(to_string(TileKey{{12, -3}, 2, 5}), "(12,-3)#2@q5");
}

}  // namespace
}  // namespace cvr::content
