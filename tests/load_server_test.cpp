#include "src/system/load_server.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/telemetry/telemetry.h"

namespace cvr::system {
namespace {

LoadServiceConfig small_config(double load = 0.5,
                               sim::TrafficShape shape =
                                   sim::TrafficShape::kUniform) {
  LoadServiceConfig config;
  config.traffic.shape = shape;
  config.traffic.load = load;
  config.traffic.mean_session_slots = 120.0;  // fast churn for tests
  config.traffic.seed = 11;
  config.capacity_users = 12;
  config.warmup_slots = 100;
  return config;
}

void expect_reports_equal(const LoadServiceReport& a,
                          const LoadServiceReport& b) {
  EXPECT_EQ(a.horizon_slots, b.horizon_slots);
  EXPECT_EQ(a.drain_slots, b.drain_slots);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.reject_rate, b.reject_rate);
  EXPECT_EQ(a.mean_active_users, b.mean_active_users);
  EXPECT_EQ(a.peak_active_users, b.peak_active_users);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(a.delay_samples, b.delay_samples);
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.p99_delay_ms, b.p99_delay_ms);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.slo_met, b.slo_met);
  EXPECT_EQ(a.sustained_users, b.sustained_users);
  EXPECT_EQ(a.mean_session_qoe, b.mean_session_qoe);
  EXPECT_EQ(a.completed_sessions, b.completed_sessions);
}

// The whole report is a pure function of the config: two fresh servers
// (and two runs of the same server) agree bit-for-bit.
TEST(LoadServer, ReportIsBitReproducible) {
  const LoadServiceConfig config =
      small_config(0.8, sim::TrafficShape::kExponential);
  LoadServer first(config);
  LoadServer second(config);
  const LoadServiceReport a = first.run(1500);
  const LoadServiceReport b = second.run(1500);
  expect_reports_equal(a, b);
  const LoadServiceReport c = first.run(1500);  // rerun re-seeds
  expect_reports_equal(a, c);
}

// Telemetry is measurement metadata only: attaching a collector must
// not change a single bit of the report, and the svc_* counters must
// mirror the report exactly (that is what lets perf_gate.py gate them).
TEST(LoadServer, TelemetryDoesNotPerturbAndCountersMatch) {
  const LoadServiceConfig config =
      small_config(1.2, sim::TrafficShape::kPeaks);
  LoadServer bare(config);
  const LoadServiceReport expected = bare.run(1500);

  telemetry::MetricsRegistry registry;
  telemetry::Collector collector(telemetry::Mode::kCounters, &registry);
  LoadServer observed(config);
  const LoadServiceReport report = observed.run(1500, &collector);
  expect_reports_equal(report, expected);

  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("svc_offered_sessions"), report.offered);
  EXPECT_EQ(snapshot.counter_or("svc_admitted"), report.admitted);
  EXPECT_EQ(snapshot.counter_or("svc_degraded"), report.degraded);
  EXPECT_EQ(snapshot.counter_or("svc_rejected"), report.rejected);
  EXPECT_EQ(snapshot.counter_or("svc_deadline_misses"),
            report.deadline_misses);
  const auto queue = snapshot.histograms.find("svc_queue_depth");
  ASSERT_NE(queue, snapshot.histograms.end());
  EXPECT_EQ(queue->second.count, report.horizon_slots);
}

TEST(LoadServer, LowLoadMeetsTheSloAndDrains) {
  const LoadServiceConfig config = small_config(0.25);
  LoadServer server(config);
  const LoadServiceReport report = server.run(1500);
  EXPECT_GT(report.offered, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.deadline_misses, 0u);
  EXPECT_TRUE(report.slo_met);
  EXPECT_TRUE(report.drained);
  EXPECT_GT(report.sustained_users, 0.0);
  EXPECT_GT(report.completed_sessions, 0u);
}

TEST(LoadServer, AdmissionFunnelAccountsForEveryOfferedSession) {
  for (const double load : {0.4, 1.0, 1.8}) {
    LoadServer server(small_config(load, sim::TrafficShape::kGamma));
    const LoadServiceReport report = server.run(1500);
    EXPECT_EQ(report.offered,
              report.admitted + report.degraded + report.rejected)
        << "at load " << load;
  }
}

TEST(LoadServer, RejectRateMonotoneInOfferedLoad) {
  double previous = -1.0;
  for (const double load : {0.4, 0.8, 1.2, 1.6, 2.4}) {
    LoadServer server(small_config(load));
    const LoadServiceReport report = server.run(2000);
    EXPECT_GE(report.reject_rate, previous) << "at load " << load;
    previous = report.reject_rate;
  }
  EXPECT_GT(previous, 0.0);  // the sweep must actually reach overload
}

TEST(LoadServer, CapacityAndQueueBoundsHold) {
  LoadServiceConfig config = small_config(2.5);
  config.max_queue_depth = 5;
  LoadServer server(config);
  const LoadServiceReport report = server.run(2000);
  EXPECT_LE(report.peak_active_users, config.capacity_users);
  EXPECT_LE(report.peak_queue_depth, config.max_queue_depth);
  EXPECT_GT(report.rejected, 0u);
}

// Squeeze the budget so the degrade band actually binds: B carries
// ~11 mandatory rates, the band starts around 9.
TEST(LoadServer, BandwidthPressureProducesDegradeAdmissions) {
  LoadServiceConfig config = small_config(1.5);
  config.capacity_users = 24;
  config.server_bandwidth_mbps = 180.0;
  LoadServer server(config);
  const LoadServiceReport report = server.run(2500);
  EXPECT_GT(report.degraded, 0u);
  EXPECT_GT(report.rejected, 0u);
}

TEST(LoadServer, ConnectSpeedPacesAdmissionsThroughTheQueue) {
  // A slow accept loop (~0.45 admissions/slot) under a burst-heavy
  // shape must leave visible queueing.
  LoadServiceConfig config = small_config(2.0, sim::TrafficShape::kPeaks);
  config.traffic.connect_speed = 30.0;
  LoadServer server(config);
  const LoadServiceReport report = server.run(2000);
  EXPECT_GT(report.peak_queue_depth, 0u);
}

TEST(LoadServer, ConfigValidation) {
  LoadServiceConfig bad = small_config();
  bad.capacity_users = 0;
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
  bad = small_config();
  bad.server_bandwidth_mbps = 0.0;
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
  bad = small_config();
  bad.user_bandwidth_jitter = 1.0;
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
  bad = small_config();
  bad.delta_min = 0.9;
  bad.delta_max = 0.5;
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
  bad = small_config();
  bad.allocator = "no-such-policy";
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
  bad = small_config();
  bad.traffic.load = -1.0;
  EXPECT_THROW(LoadServer{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr::system
