// Guards the README's quickstart snippets: if this stops compiling or
// behaving, the front-page documentation is lying.
#include <gtest/gtest.h>

#include "src/cvr.h"

namespace {

TEST(ReadmeQuickstart, CoreSnippetWorksVerbatim) {
  // --- begin README snippet ---
  cvr::content::CrfRateFunction f;          // convex CRF rate curve (Fig. 1a)
  cvr::core::SlotProblem problem;
  problem.params = {/*alpha=*/0.1, /*beta=*/0.5};
  problem.server_bandwidth = 100.0;         // B(t), Mbps
  problem.users.push_back(cvr::core::UserSlotContext::from_rate_function(
      f, /*B_n=*/45.0, /*delta=*/0.9, /*qbar=*/3.0, /*slot=*/120.0));

  cvr::core::DvGreedyAllocator allocator;   // Algorithm 1
  auto allocation = allocator.allocate(problem);
  // --- end README snippet ---

  ASSERT_EQ(allocation.levels.size(), 1u);
  EXPECT_GE(allocation.levels[0], 1);
  EXPECT_LE(allocation.levels[0], 6);
  EXPECT_TRUE(std::isfinite(allocation.objective));
}

TEST(ReadmeQuickstart, EnsembleSnippetWorksVerbatim) {
  // --- begin README snippet (report path redirected to tmp) ---
  cvr::experiments::EnsembleSpec spec;
  spec.algorithms = {"dv", "pavq", "firefly", "lagrangian"};
  // (README shows a report_prefix; omitted here to keep the test clean.)
  spec.users = 2;
  spec.slots = 150;
  spec.repeats = 1;
  auto arms = cvr::experiments::run_ensemble(spec);
  // --- end README snippet ---
  ASSERT_EQ(arms.size(), 4u);
  for (const auto& arm : arms) {
    EXPECT_FALSE(arm.outcomes.empty());
  }
}

TEST(ReadmeQuickstart, QuickstartNumbersMatchDocumentedBehaviour) {
  // README claims DV-greedy matches the exact optimum on the quickstart
  // shape problem; pin it.
  cvr::content::CrfRateFunction f;
  cvr::core::SlotProblem problem;
  problem.params = {0.1, 0.5};
  problem.server_bandwidth = 100.0;
  for (double bandwidth : {80.0, 45.0, 25.0}) {
    problem.users.push_back(cvr::core::UserSlotContext::from_rate_function(
        f, bandwidth, 0.9, 3.0, 120.0));
  }
  cvr::core::DvGreedyAllocator greedy;
  cvr::core::BruteForceAllocator exact;
  EXPECT_NEAR(greedy.allocate(problem).objective,
              exact.allocate(problem).objective, 1e-9);
}

}  // namespace
