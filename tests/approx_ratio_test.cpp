// Theorem 1 verification: the Density/Value-Greedy allocation achieves
// at least 1/2 of the optimum of the per-slot problem (5)-(7), across a
// broad sweep of random instances and adversarial-ish shapes.
//
// Caveat on negative objectives: the 1/2 guarantee is stated for the
// knapsack-style setting where the optimum is non-negative (level-1
// values can be negative only through the constant miss-variance term,
// which is identical across allocations). We therefore compare the
// *gain over the all-ones base allocation*, which is the quantity the
// greedy argument in the paper's proof actually bounds.
#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"
#include "src/core/optimal.h"

namespace cvr::core {
namespace {

using testutil::paper_case_density_fails;
using testutil::paper_case_value_fails;
using testutil::random_problem;

double base_value(const SlotProblem& problem) {
  return evaluate(problem,
                  std::vector<QualityLevel>(problem.users.size(), 1));
}

class ApproxRatioSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxRatioSweep, AtLeastHalfOfOptimalGain) {
  SlotProblem problem = random_problem(GetParam(), 5);
  BruteForceAllocator brute;
  DvGreedyAllocator greedy;
  const double base = base_value(problem);
  const double opt_gain = brute.allocate(problem).objective - base;
  const double greedy_gain = greedy.allocate(problem).objective - base;
  ASSERT_GE(opt_gain, -1e-9);
  EXPECT_GE(greedy_gain, 0.5 * opt_gain - 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRatioSweep,
                         ::testing::Range<std::uint64_t>(1, 61));

class ApproxRatioVsDp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxRatioVsDp, HoldsAtLargerScaleAgainstDp) {
  SlotProblem problem = random_problem(1000 + GetParam(), 20);
  DpAllocator dp(0.05);
  DvGreedyAllocator greedy;
  const double base = base_value(problem);
  const double opt_gain = dp.allocate(problem).objective - base;
  const double greedy_gain = greedy.allocate(problem).objective - base;
  EXPECT_GE(greedy_gain, 0.5 * opt_gain - 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRatioVsDp,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ApproxRatio, FractionalBoundCertificate) {
  // V_dv >= (V_p - base)/2 + base certifies the theorem without an exact
  // solver (V_p >= OPT); check it on bigger instances.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SlotProblem problem = random_problem(5000 + seed, 40);
    DvGreedyAllocator greedy;
    const double base = base_value(problem);
    const double bound_gain = fractional_upper_bound(problem) - base;
    const double greedy_gain = greedy.allocate(problem).objective - base;
    EXPECT_GE(greedy_gain, 0.5 * bound_gain - 1e-6) << seed;
  }
}

TEST(ApproxRatio, PaperCounterexamplesStayAboveHalf) {
  // The two Section-III cases are exactly the instances where a single
  // greedy collapses; combined must stay >= OPT/2 (it is optimal here).
  for (SlotProblem problem :
       {paper_case_density_fails(), paper_case_value_fails()}) {
    BruteForceAllocator brute;
    DvGreedyAllocator greedy;
    EXPECT_NEAR(greedy.allocate(problem).objective,
                brute.allocate(problem).objective, 1e-9);
  }
}

TEST(ApproxRatio, WorstObservedRatioReported) {
  // Track the worst gain ratio across a wide sweep; it must never dip
  // below 1/2 and in practice sits far above (the paper observes
  // near-optimal behaviour in simulation).
  double worst = 1.0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SlotProblem problem = random_problem(90000 + seed, 5);
    BruteForceAllocator brute;
    DvGreedyAllocator greedy;
    const double base = base_value(problem);
    const double opt_gain = brute.allocate(problem).objective - base;
    if (opt_gain < 1e-9) continue;
    const double ratio =
        (greedy.allocate(problem).objective - base) / opt_gain;
    worst = std::min(worst, ratio);
  }
  EXPECT_GE(worst, 0.5);
  EXPECT_GE(worst, 0.8);  // empirically near-optimal, as in Fig. 2
}

}  // namespace
}  // namespace cvr::core
