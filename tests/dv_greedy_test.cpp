#include "src/core/dv_greedy.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/util/rng.h"
#include "src/core/optimal.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::paper_case_density_fails;
using testutil::paper_case_value_fails;
using testutil::random_problem;

TEST(DvGreedy, DensityOnlyFailsOnPaperCase1) {
  SlotProblem problem = paper_case_density_fails();
  DvGreedyAllocator density(DvGreedyAllocator::Mode::kDensityOnly);
  const Allocation a = density.allocate(problem);
  // Density greedy raises user A first (density 2 > 1.6), then cannot
  // afford user B's 2.5 increment.
  EXPECT_EQ(a.levels, (std::vector<QualityLevel>{2, 1}));
}

TEST(DvGreedy, ValueRescuesPaperCase1) {
  SlotProblem problem = paper_case_density_fails();
  DvGreedyAllocator value(DvGreedyAllocator::Mode::kValueOnly);
  const Allocation v = value.allocate(problem);
  EXPECT_EQ(v.levels, (std::vector<QualityLevel>{1, 2}));

  DvGreedyAllocator combined;
  const Allocation c = combined.allocate(problem);
  EXPECT_EQ(c.levels, (std::vector<QualityLevel>{1, 2}));
  EXPECT_GT(c.objective, value.allocate(problem).objective - 1e-12);
}

TEST(DvGreedy, ValueOnlyFailsOnPaperCase2) {
  SlotProblem problem = paper_case_value_fails();
  DvGreedyAllocator value(DvGreedyAllocator::Mode::kValueOnly);
  const Allocation v = value.allocate(problem);
  // Value greedy takes the big-value increment (3 at rate 2) and starves
  // the other four (each needs 0.5 but only 0 remains).
  EXPECT_EQ(v.levels, (std::vector<QualityLevel>{1, 1, 1, 1, 2}));
}

TEST(DvGreedy, DensityRescuesPaperCase2) {
  SlotProblem problem = paper_case_value_fails();
  DvGreedyAllocator density(DvGreedyAllocator::Mode::kDensityOnly);
  const Allocation d = density.allocate(problem);
  EXPECT_EQ(d.levels, (std::vector<QualityLevel>{2, 2, 2, 2, 1}));

  DvGreedyAllocator combined;
  const Allocation c = combined.allocate(problem);
  EXPECT_EQ(c.levels, (std::vector<QualityLevel>{2, 2, 2, 2, 1}));
}

TEST(DvGreedy, CombinedPicksBetterOfTwoPasses) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 6);
    DvGreedyAllocator density(DvGreedyAllocator::Mode::kDensityOnly);
    DvGreedyAllocator value(DvGreedyAllocator::Mode::kValueOnly);
    DvGreedyAllocator combined;
    const double vd = density.allocate(problem).objective;
    const double vv = value.allocate(problem).objective;
    const double vc = combined.allocate(problem).objective;
    EXPECT_NEAR(vc, std::max(vd, vv), 1e-9) << "seed " << seed;
  }
}

TEST(DvGreedy, RespectsServerConstraint) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SlotProblem problem = random_problem(seed, 8);
    DvGreedyAllocator alloc;
    const Allocation a = alloc.allocate(problem);
    EXPECT_TRUE(server_feasible(problem, a.levels)) << "seed " << seed;
  }
}

TEST(DvGreedy, RespectsUserConstraintAboveMinimum) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SlotProblem problem = random_problem(seed, 8);
    DvGreedyAllocator alloc;
    const Allocation a = alloc.allocate(problem);
    for (std::size_t n = 0; n < problem.users.size(); ++n) {
      if (a.levels[n] > 1) {
        EXPECT_TRUE(user_feasible(problem.users[n], a.levels[n]))
            << "seed " << seed << " user " << n;
      }
    }
  }
}

TEST(DvGreedy, LevelsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    DvGreedyAllocator alloc;
    const Allocation a = alloc.allocate(problem);
    ASSERT_EQ(a.levels.size(), 5u);
    for (QualityLevel q : a.levels) {
      EXPECT_TRUE(content::is_valid_level(q));
    }
  }
}

TEST(DvGreedy, AmpleBandwidthMaxesWhenBeneficial) {
  // One user, huge bandwidth, no penalties: take level 6.
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(1000.0, 1.0, 0.0, 1.0));
  problem.server_bandwidth = 1000.0;
  DvGreedyAllocator alloc;
  EXPECT_EQ(alloc.allocate(problem).levels,
            (std::vector<QualityLevel>{6}));
}

TEST(DvGreedy, NegativeMarginalStopsEarly) {
  // Strong variance anchor at qbar = 1 with big beta: raising quality
  // hurts, stay at level 1 despite ample bandwidth.
  SlotProblem problem;
  problem.params = QoeParams{0.0, 10.0};
  problem.users.push_back(make_crf_user(1000.0, 1.0, 1.0, 100.0));
  problem.server_bandwidth = 1000.0;
  DvGreedyAllocator alloc;
  EXPECT_EQ(alloc.allocate(problem).levels,
            (std::vector<QualityLevel>{1}));
}

TEST(DvGreedy, TightBudgetKeepsAllOnes) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 2.0 * 14.2;  // exactly the minima
  DvGreedyAllocator alloc;
  EXPECT_EQ(alloc.allocate(problem).levels,
            (std::vector<QualityLevel>{1, 1}));
}

TEST(DvGreedy, EvenInfeasibleMinimumReturnsAllOnes) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 5.0;  // below the minima
  DvGreedyAllocator alloc;
  EXPECT_EQ(alloc.allocate(problem).levels,
            (std::vector<QualityLevel>{1, 1}));
}

TEST(DvGreedy, EmptyProblem) {
  SlotProblem problem;
  problem.server_bandwidth = 100.0;
  DvGreedyAllocator alloc;
  const Allocation a = alloc.allocate(problem);
  EXPECT_TRUE(a.levels.empty());
  EXPECT_DOUBLE_EQ(a.objective, 0.0);
}

TEST(DvGreedy, ObjectiveFieldMatchesEvaluate) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SlotProblem problem = random_problem(seed, 4);
    DvGreedyAllocator alloc;
    const Allocation a = alloc.allocate(problem);
    EXPECT_NEAR(a.objective, evaluate(problem, a.levels), 1e-9);
  }
}

TEST(DvGreedy, NamesDistinguishModes) {
  EXPECT_EQ(DvGreedyAllocator{}.name(), "dv-greedy");
  EXPECT_EQ(DvGreedyAllocator{DvGreedyAllocator::Mode::kDensityOnly}.name(),
            "density-greedy");
  EXPECT_EQ(DvGreedyAllocator{DvGreedyAllocator::Mode::kValueOnly}.name(),
            "value-greedy");
}

TEST(DvGreedy, DeterministicAcrossCalls) {
  SlotProblem problem = random_problem(77, 10);
  DvGreedyAllocator alloc;
  const Allocation a = alloc.allocate(problem);
  const Allocation b = alloc.allocate(problem);
  EXPECT_EQ(a.levels, b.levels);
}

TEST(DvGreedy, NeverBelowItsAllOnesStart) {
  // The ascent starts from the mandatory minimum and only accepts
  // non-negative-marginal moves: the returned objective can never fall
  // below the all-ones value. (Note: the objective is NOT monotone in
  // delta in general — the (1-delta) qbar^2 miss-variance term moves the
  // other way — so this start-dominance is the strongest clean
  // invariant.)
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const SlotProblem problem = random_problem(seed, 6);
    const double base =
        evaluate(problem, std::vector<QualityLevel>(6, 1));
    for (auto strategy : {DvGreedyAllocator::Strategy::kScan,
                          DvGreedyAllocator::Strategy::kHeap}) {
      DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined, strategy);
      EXPECT_GE(alloc.allocate(problem).objective, base - 1e-9) << seed;
    }
  }
}

TEST(DvGreedyHeap, IdenticalToScanOnRandomInstances) {
  // The lazy-heap argmax must reproduce the scan's ascent EXACTLY —
  // same levels, not merely same objective — including tie-breaks.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const SlotProblem problem = random_problem(seed, 1 + seed % 25);
    for (auto mode : {DvGreedyAllocator::Mode::kDensityOnly,
                      DvGreedyAllocator::Mode::kValueOnly,
                      DvGreedyAllocator::Mode::kCombined}) {
      DvGreedyAllocator scan(mode, DvGreedyAllocator::Strategy::kScan);
      DvGreedyAllocator heap(mode, DvGreedyAllocator::Strategy::kHeap);
      EXPECT_EQ(scan.allocate(problem).levels, heap.allocate(problem).levels)
          << "seed " << seed;
    }
  }
}

TEST(DvGreedyHeap, IdenticalOnPaperCounterexamples) {
  for (SlotProblem problem :
       {paper_case_density_fails(), paper_case_value_fails()}) {
    DvGreedyAllocator scan(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kScan);
    DvGreedyAllocator heap(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kHeap);
    EXPECT_EQ(scan.allocate(problem).levels, heap.allocate(problem).levels);
  }
}

TEST(DvGreedyHeap, IdenticalOnNonConcaveLossAwareProblems) {
  // frame_loss tables can break h's concavity; the lazy-heap argument
  // does not rely on it (every active user always has exactly one fresh
  // entry in the heap), so equivalence must survive.
  for (std::uint64_t seed = 200; seed <= 215; ++seed) {
    SlotProblem problem = random_problem(seed, 6);
    cvr::Rng rng(seed);
    for (auto& user : problem.users) {
      user.frame_loss.resize(6);
      for (double& loss : user.frame_loss) loss = rng.uniform(0.0, 0.7);
    }
    DvGreedyAllocator scan(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kScan);
    DvGreedyAllocator heap(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kHeap);
    EXPECT_EQ(scan.allocate(problem).levels, heap.allocate(problem).levels)
        << seed;
  }
}

TEST(DvGreedyHeap, IdenticalUnderTightBudgets) {
  for (std::uint64_t seed = 100; seed <= 120; ++seed) {
    SlotProblem problem = random_problem(seed, 10);
    problem.server_bandwidth *= 0.5;  // lots of mid-ascent rejections
    DvGreedyAllocator scan(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kScan);
    DvGreedyAllocator heap(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kHeap);
    EXPECT_EQ(scan.allocate(problem).levels, heap.allocate(problem).levels)
        << seed;
  }
}

// --- Warm-start ablation ("dv-warm") ---------------------------------
// Theorem 1's ½-gain bound is FORFEITED in this mode (it conditions on
// the all-ones start); the invariants that remain — always feasible,
// cold-identical first call, never worse on a repeated problem, reset()
// restores cold behaviour — are pinned here.

DvGreedyAllocator make_warm() {
  return DvGreedyAllocator(DvGreedyAllocator::Mode::kCombined,
                           DvGreedyAllocator::Strategy::kHeap,
                           /*warm_start=*/true);
}

TEST(DvGreedyWarm, NameAndColdFirstCallMatchDefault) {
  DvGreedyAllocator warm = make_warm();
  EXPECT_EQ(warm.name(), "dv-warm");
  // With no previous slot, the seed is all-ones: bit-identical to the
  // default allocator.
  DvGreedyAllocator cold;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SlotProblem problem = random_problem(seed, 7);
    warm.reset();
    EXPECT_EQ(warm.allocate(problem).levels, cold.allocate(problem).levels)
        << "seed " << seed;
  }
}

TEST(DvGreedyWarm, AlwaysFeasibleAcrossDriftingSlots) {
  // A drifting slot sequence: warm seeds come from a DIFFERENT problem
  // than the one being solved, so the repair path gets exercised.
  DvGreedyAllocator warm = make_warm();
  for (std::uint64_t slot = 1; slot <= 40; ++slot) {
    SlotProblem problem = random_problem(slot, 9);
    problem.server_bandwidth *= 0.6 + 0.1 * static_cast<double>(slot % 8);
    const Allocation a = warm.allocate(problem);
    EXPECT_TRUE(allocation_feasible(problem, a.levels)) << "slot " << slot;
  }
}

TEST(DvGreedyWarm, RepairsAfterBudgetCollapse) {
  // Roomy slot first, then the budget collapses to the all-ones minimum:
  // the previous (high) allocation must be repaired down to feasibility.
  SlotProblem roomy = random_problem(3, 6);
  roomy.server_bandwidth *= 10.0;
  DvGreedyAllocator warm = make_warm();
  warm.allocate(roomy);
  SlotProblem tight = roomy;
  double min_rate = 0.0;
  for (const auto& user : tight.users) min_rate += user.rate[0];
  tight.server_bandwidth = min_rate;
  const Allocation a = warm.allocate(tight);
  EXPECT_TRUE(allocation_feasible(tight, a.levels));
}

TEST(DvGreedyWarm, NotWorseThanColdOnRepeatedProblem) {
  // On an identical repeated problem the warm seed IS the previous
  // (feasible) result, and the ascent only adds non-negative marginals:
  // objective >= cold objective.
  DvGreedyAllocator cold;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const SlotProblem problem = random_problem(seed, 8);
    const double cold_objective = cold.allocate(problem).objective;
    DvGreedyAllocator warm = make_warm();
    warm.allocate(problem);
    const Allocation repeat = warm.allocate(problem);
    EXPECT_GE(repeat.objective, cold_objective - 1e-12) << "seed " << seed;
    EXPECT_TRUE(allocation_feasible(problem, repeat.levels));
  }
}

TEST(DvGreedyWarm, UserCountChangeFallsBackToCold) {
  DvGreedyAllocator warm = make_warm();
  warm.allocate(random_problem(1, 12));
  const SlotProblem smaller = random_problem(2, 5);
  DvGreedyAllocator cold;
  EXPECT_EQ(warm.allocate(smaller).levels, cold.allocate(smaller).levels);
}

TEST(DvGreedyWarm, ResetRestoresColdBehaviour) {
  const SlotProblem problem = random_problem(9, 8);
  DvGreedyAllocator warm = make_warm();
  DvGreedyAllocator cold;
  const Allocation first = warm.allocate(problem);
  EXPECT_EQ(first.levels, cold.allocate(problem).levels);
  warm.allocate(problem);  // builds warm memory
  warm.reset();
  EXPECT_EQ(warm.allocate(problem).levels, first.levels);
}

// Monotonicity sweep: more server bandwidth never lowers the objective.
class BandwidthMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthMonotone, ObjectiveNonDecreasingInBudget) {
  SlotProblem problem = random_problem(GetParam(), 6);
  DvGreedyAllocator alloc;
  double prev = -1e18;
  for (double budget_scale : {0.8, 1.0, 1.3, 1.8, 2.5}) {
    SlotProblem p = problem;
    p.server_bandwidth = problem.server_bandwidth * budget_scale;
    const double v = alloc.allocate(p).objective;
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthMonotone,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace cvr::core
