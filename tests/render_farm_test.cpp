#include "src/render/render_farm.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cvr::render {
namespace {

TEST(RenderFarm, EncodeTimeGrowsWithLevel) {
  RenderFarm farm;
  double prev = 0.0;
  for (content::QualityLevel q = 1; q <= content::kNumQualityLevels; ++q) {
    const double e = farm.encode_ms(q);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(RenderFarm, EncodeRejectsBadLevel) {
  RenderFarm farm;
  EXPECT_THROW(farm.encode_ms(0), std::out_of_range);
  EXPECT_THROW(farm.encode_ms(7), std::out_of_range);
}

TEST(RenderFarm, StreamZeroTilesFree) {
  RenderFarm farm;
  EXPECT_DOUBLE_EQ(farm.stream_ms(0, 3), 0.0);
}

TEST(RenderFarm, SequentialStreamIsSumOfStages) {
  RenderFarmConfig config;
  config.pipelined = false;
  config.render_ms_per_tile = 2.0;
  config.encode_ms_base = 1.0;
  config.encode_ms_per_level = 0.5;
  RenderFarm farm(config);
  // Level 2: encode = 1 + 1 = 2; per tile 4 ms.
  EXPECT_DOUBLE_EQ(farm.stream_ms(3, 2), 12.0);
}

TEST(RenderFarm, PipelinedStreamUsesBottleneckStage) {
  RenderFarmConfig config;
  config.pipelined = true;
  config.render_ms_per_tile = 2.0;
  config.encode_ms_base = 1.0;
  config.encode_ms_per_level = 0.5;
  RenderFarm farm(config);
  // Level 2: encode 2 ms = render 2 ms. n=3: 2 + 2 + 2*(3-1) = 8.
  EXPECT_DOUBLE_EQ(farm.stream_ms(3, 2), 8.0);
}

TEST(RenderFarm, PipeliningNeverSlower) {
  RenderFarmConfig pipelined;
  RenderFarmConfig sequential = pipelined;
  sequential.pipelined = false;
  RenderFarm a(pipelined), b(sequential);
  for (std::size_t tiles = 1; tiles <= 12; ++tiles) {
    for (content::QualityLevel q = 1; q <= 6; ++q) {
      EXPECT_LE(a.stream_ms(tiles, q), b.stream_ms(tiles, q) + 1e-9);
    }
  }
}

TEST(RenderFarm, SingleJobOnOneGpu) {
  RenderFarm farm;
  const auto outcome = farm.schedule({{0, 4, 3}});
  ASSERT_EQ(outcome.user_completion_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.user_completion_ms[0], farm.stream_ms(4, 3));
  EXPECT_DOUBLE_EQ(outcome.makespan_ms, farm.stream_ms(4, 3));
}

TEST(RenderFarm, JobsSpreadAcrossGpus) {
  RenderFarmConfig config;
  config.gpus = 4;
  RenderFarm farm(config);
  // Four identical jobs on four GPUs: makespan = one job's cost.
  std::vector<RenderJob> jobs;
  for (std::size_t u = 0; u < 4; ++u) jobs.push_back({u, 4, 3});
  const auto outcome = farm.schedule(jobs);
  EXPECT_NEAR(outcome.makespan_ms, farm.stream_ms(4, 3), 1e-9);
}

TEST(RenderFarm, MakespanWithinLptBound) {
  // LPT guarantee: makespan <= (4/3 - 1/3m) x optimal, and optimal >=
  // total/m. Check makespan <= 4/3 x (total / gpus) + max job.
  RenderFarmConfig config;
  config.gpus = 3;
  RenderFarm farm(config);
  std::vector<RenderJob> jobs;
  double total = 0.0, max_job = 0.0;
  for (std::size_t u = 0; u < 10; ++u) {
    const std::size_t tiles = 1 + (u * 7) % 5;
    const auto level = static_cast<content::QualityLevel>(1 + (u * 3) % 6);
    jobs.push_back({u, tiles, level});
    const double c = farm.stream_ms(tiles, level);
    total += c;
    max_job = std::max(max_job, c);
  }
  const auto outcome = farm.schedule(jobs);
  EXPECT_LE(outcome.makespan_ms, 4.0 / 3.0 * total / 3.0 + max_job + 1e-9);
  EXPECT_GE(outcome.makespan_ms, total / 3.0 - 1e-9);  // lower bound
}

TEST(RenderFarm, OnTimeFlagsMatchBudget) {
  RenderFarmConfig config;
  config.gpus = 1;
  config.slot_budget_ms = 10.0;
  config.pipelined = false;
  config.render_ms_per_tile = 3.0;
  config.encode_ms_base = 1.0;
  config.encode_ms_per_level = 0.0;
  RenderFarm farm(config);
  // Two jobs of 8 ms each on one GPU: first fits, second misses.
  const auto outcome = farm.schedule({{0, 2, 1}, {1, 2, 1}});
  int on_time = 0;
  for (bool ok : outcome.on_time) on_time += ok ? 1 : 0;
  EXPECT_EQ(on_time, 1);
}

TEST(RenderFarm, MoreGpusNeverReducesMaxTiles) {
  RenderFarmConfig small;
  small.gpus = 1;
  RenderFarmConfig big = small;
  big.gpus = 8;
  RenderFarm a(small), b(big);
  EXPECT_LE(a.max_tiles_per_user(8, 4), b.max_tiles_per_user(8, 4));
}

TEST(RenderFarm, PaperScaleConfirmsOfflineDecision) {
  // Section VIII's premise: the paper's 4-GPU server CANNOT render and
  // encode full 4-tile frames for 8 users inside a slot — which is why
  // the shipped system pre-encodes offline. It can, however, keep up
  // with the repetition-filtered steady state (~2 fresh tiles/user).
  RenderFarm farm;  // 4 GPUs, pipelined
  const std::size_t capacity = farm.max_tiles_per_user(8, 4);
  EXPECT_LT(capacity, 4u);  // full frames infeasible: offline justified
  EXPECT_GE(capacity, 2u);  // steady-state trickle is sustainable
}

TEST(RenderFarm, SequentialModeStrugglesAtScale) {
  RenderFarmConfig config;
  config.pipelined = false;
  RenderFarm farm(config);
  // Without pipelining the same farm supports fewer tiles per user.
  RenderFarm pipelined;
  EXPECT_LT(farm.max_tiles_per_user(15, 6),
            pipelined.max_tiles_per_user(15, 6) + 1);
}

TEST(RenderFarm, RejectsBadConfig) {
  RenderFarmConfig bad;
  bad.gpus = 0;
  EXPECT_THROW(RenderFarm{bad}, std::invalid_argument);
  RenderFarmConfig bad2;
  bad2.slot_budget_ms = 0.0;
  EXPECT_THROW(RenderFarm{bad2}, std::invalid_argument);
}

TEST(RenderFarm, EmptyScheduleIsTrivial) {
  RenderFarm farm;
  const auto outcome = farm.schedule({});
  EXPECT_TRUE(outcome.user_completion_ms.empty());
  EXPECT_DOUBLE_EQ(outcome.makespan_ms, 0.0);
}

}  // namespace
}  // namespace cvr::render
