// Exhaustive small-instance consistency: for every problem on a coarse
// grid (N <= 3 users, levels effectively capped at 4, budgets sitting
// exactly on and epsilon-inside allocation boundaries), enumerate ALL
// allocations directly and check that
//
//   * the test's own enumeration agrees with BruteForceAllocator,
//   * the scan and heap greedy ascents are bit-identical,
//   * every solver's result satisfies allocation_feasible() — the
//     kFeasibilityEpsilon contract shared across the allocator stack,
//   * the combined greedy keeps Theorem 1's half-of-optimal-gain bound.
//
// Unlike the seeded sweeps this leaves nothing to chance: every user
// combination x budget on the grid is visited.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core_test_util.h"
#include "src/content/hevc_process.h"
#include "src/core/dv_greedy.h"
#include "src/core/optimal.h"
#include "src/net/wifi_channel.h"

namespace cvr::core {
namespace {

using testutil::make_user;

// Four user shapes; levels 5-6 are priced out by rate tables (100, 200
// against bandwidth <= 4), so the effective level space is 1..4.
std::vector<UserSlotContext> user_variants() {
  return {
      // All four levels affordable; cap exactly on the level-4 rate.
      make_user({0.5, 1.0, 1.5, 2.0, 100, 200}, {0, 0, 0, 0, 0, 0}, 2.0, 1.0),
      // Cap at level 2, steeper h.
      make_user({0.5, 1.0, 1.5, 2.0, 100, 200}, {0, 0, 0, 0, 0, 0}, 1.0, 2.0),
      // Coarser rates, cap exactly on the level-3 rate.
      make_user({1.0, 2.0, 3.0, 4.0, 100, 200}, {0, 0, 0, 0, 0, 0}, 3.0, 1.0),
      // Cap epsilon-INSIDE the level-3 rate: 1.5 - 1e-10 still admits
      // level 3 under kFeasibilityEpsilon, for every solver alike.
      make_user({0.5, 1.0, 1.5, 2.0, 100, 200}, {0, 0, 0, 0, 0, 0},
                1.5 - 1e-10, 3.0),
  };
}

QualityLevel max_affordable_level(const UserSlotContext& user) {
  QualityLevel best = 1;
  for (QualityLevel q = 2; q <= kNumQualityLevels; ++q) {
    if (user_feasible(user, q)) best = q;
  }
  return best;
}

/// Reference optimum by direct enumeration of every level vector,
/// using the same allocation_feasible() oracle as the solvers.
double enumerate_optimum(const SlotProblem& problem) {
  const std::size_t n = problem.users.size();
  std::vector<QualityLevel> levels(n, 1);
  double best = evaluate(problem, levels);  // all-ones is always allowed
  while (true) {
    std::size_t i = 0;
    while (i < n && levels[i] == kNumQualityLevels) {
      levels[i] = 1;
      ++i;
    }
    if (i == n) break;
    ++levels[i];
    if (allocation_feasible(problem, levels)) {
      best = std::max(best, evaluate(problem, levels));
    }
  }
  return best;
}

/// Budgets that hit allocation boundaries exactly, sit epsilon inside
/// them, and leave headroom.
std::vector<double> budget_grid(const SlotProblem& problem) {
  double min_sum = 0.0, max_sum = 0.0, mid_sum = 0.0;
  for (const auto& user : problem.users) {
    const QualityLevel cap = max_affordable_level(user);
    min_sum += user.rate[0];
    max_sum += user.rate[static_cast<std::size_t>(cap - 1)];
    const QualityLevel mid = std::min<QualityLevel>(2, cap);
    mid_sum += user.rate[static_cast<std::size_t>(mid - 1)];
  }
  return {min_sum,
          mid_sum,                // exactly on a mixed-allocation rate
          max_sum,                // exactly on the everything-maxed rate
          max_sum - 1e-10,        // within kFeasibilityEpsilon
          max_sum - 0.25,         // strictly between grid points
          (min_sum + max_sum) / 2.0,
          min_sum * 0.5};         // even all-ones over budget
}

TEST(ExhaustiveSmall, AllSolversConsistentOnTheFullGrid) {
  const std::vector<UserSlotContext> variants = user_variants();
  const std::size_t v = variants.size();
  std::size_t problems_checked = 0;

  for (std::size_t n_users = 1; n_users <= 3; ++n_users) {
    // Odometer over variant choices for each user.
    std::vector<std::size_t> pick(n_users, 0);
    while (true) {
      SlotProblem problem;
      problem.params = QoeParams{0.0, 0.0};
      for (std::size_t u = 0; u < n_users; ++u) {
        problem.users.push_back(variants[pick[u]]);
      }
      for (double budget : budget_grid(problem)) {
        problem.server_bandwidth = budget;
        ++problems_checked;

        const double reference = enumerate_optimum(problem);
        BruteForceAllocator brute;
        const Allocation exact = brute.allocate(problem);
        EXPECT_NEAR(exact.objective, reference, 1e-12)
            << "brute force disagrees with direct enumeration";
        EXPECT_TRUE(allocation_feasible(problem, exact.levels));

        for (auto mode : {DvGreedyAllocator::Mode::kDensityOnly,
                          DvGreedyAllocator::Mode::kValueOnly,
                          DvGreedyAllocator::Mode::kCombined}) {
          DvGreedyAllocator scan(mode, DvGreedyAllocator::Strategy::kScan);
          DvGreedyAllocator heap(mode, DvGreedyAllocator::Strategy::kHeap);
          const Allocation s = scan.allocate(problem);
          const Allocation h = heap.allocate(problem);
          EXPECT_EQ(s.levels, h.levels) << "scan/heap diverge";
          EXPECT_EQ(s.objective, h.objective);
          EXPECT_TRUE(allocation_feasible(problem, s.levels));
          EXPECT_LE(s.objective, reference + 1e-9);
        }

        // Theorem 1 on the gain over the all-ones base.
        DvGreedyAllocator combined;
        const double base = evaluate(
            problem, std::vector<QualityLevel>(problem.users.size(), 1));
        const double opt_gain = reference - base;
        const double greedy_gain =
            combined.allocate(problem).objective - base;
        EXPECT_GE(opt_gain, -1e-12);
        EXPECT_GE(greedy_gain, 0.5 * opt_gain - 1e-9);

        // The DP (rates rounded up to its grid) must stay feasible and
        // can never beat the true optimum.
        DpAllocator dp(0.25);
        const Allocation dp_result = dp.allocate(problem);
        EXPECT_TRUE(allocation_feasible(problem, dp_result.levels));
        EXPECT_LE(dp_result.objective, reference + 1e-9);
      }

      std::size_t i = 0;
      while (i < n_users && pick[i] == v - 1) {
        pick[i] = 0;
        ++i;
      }
      if (i == n_users) break;
      ++pick[i];
    }
  }
  // 4 + 16 + 64 variant combinations x 7 budgets each.
  EXPECT_EQ(problems_checked, (4u + 16u + 64u) * 7u);
}

// --- Workload-pack contention grid ------------------------------------
//
// Same philosophy as the allocator grid above: visit EVERY cell of a
// coarse parameter grid (stations 1..4 x MCS {5, 7} x GoP {1, 8, 32})
// and compare the library's closed forms against brute-force reference
// implementations written independently here (explicit sums and loops,
// no shared helpers).

/// Brute-force airtime share: uniform split of the post-overhead air.
double brute_force_share(const net::WifiContentionConfig& config,
                         std::size_t stations) {
  const double overhead =
      std::min(config.max_overhead,
               config.contention_overhead *
                   static_cast<double>(stations - 1));
  return (1.0 - overhead) / static_cast<double>(stations);
}

/// Brute-force MAC efficiency: expected transmissions by explicit
/// summation over the retry chain instead of the closed form.
double brute_force_efficiency(const net::WifiContentionConfig& config,
                              int mcs) {
  const double p = std::min(
      0.5, config.base_error_rate * std::pow(config.error_growth, mcs));
  double delivery = 0.0;
  double expected_tx = 0.0;
  for (std::size_t attempt = 0; attempt <= config.max_retries; ++attempt) {
    delivery += std::pow(p, attempt) * (1.0 - p);
    expected_tx += std::pow(p, attempt);
  }
  const double airtime =
      expected_tx * (1.0 + config.retry_airtime_overhead * (expected_tx - 1.0));
  return delivery / airtime;
}

/// Brute-force structural HEVC multiplier straight from the mean-1
/// constraint: solve I = R * P and I + (G-1) * P = G directly.
double brute_force_structural(const content::HevcProcessConfig& config,
                              std::size_t frame_in_gop) {
  const double g = static_cast<double>(config.gop_length);
  const double p = g / (config.i_frame_ratio + g - 1.0);
  return frame_in_gop == 0 ? config.i_frame_ratio * p : p;
}

TEST(ExhaustiveSmall, ContentionGridMatchesBruteForce) {
  std::size_t cells_checked = 0;
  for (std::size_t stations = 1; stations <= 4; ++stations) {
    for (int mcs : {5, 7}) {
      for (std::size_t gop : {1u, 8u, 32u}) {
        net::WifiContentionConfig wifi;
        wifi.enabled = true;
        wifi.mcs_pool = {mcs};  // uniform pool: every station at `mcs`
        wifi.collision_prob_per_station = 0.0;  // isolate the closed forms
        content::HevcProcessConfig hevc;
        hevc.enabled = true;
        hevc.gop_length = gop;
        hevc.size_sigma = 0.0;  // isolate the structural pattern
        ++cells_checked;

        // Airtime shares against the brute-force split.
        const auto shares = net::wifi_airtime_shares(wifi, stations);
        ASSERT_EQ(stations, shares.size());
        for (double s : shares) {
          EXPECT_DOUBLE_EQ(brute_force_share(wifi, stations), s);
        }

        // MAC efficiency closed form against the explicit retry sum.
        EXPECT_NEAR(brute_force_efficiency(wifi, mcs),
                    net::wifi_mac_efficiency(wifi, mcs), 1e-12);

        // A collision-free channel must sit exactly on the clear-air
        // capacities for every station, every slot.
        const double clear = brute_force_share(wifi, stations) *
                             net::wifi_phy_rate_mbps(mcs) *
                             net::wifi_mac_efficiency(wifi, mcs);
        net::WifiContentionChannel channel(wifi, stations, 7);
        for (int t = 0; t < 8; ++t) {
          channel.step();
          double sum = 0.0;
          for (std::size_t s = 0; s < stations; ++s) {
            EXPECT_DOUBLE_EQ(clear, channel.station_capacity_mbps(s));
            sum += channel.station_capacity_mbps(s);
          }
          EXPECT_DOUBLE_EQ(sum, channel.aggregate_capacity_mbps());
        }

        // Jitter-free HEVC must replay the brute-force structural
        // pattern over three full GoPs, and each GoP must sum to G.
        content::HevcFrameProcess process(hevc, 7);
        double gop_sum = 0.0;
        for (std::size_t t = 0; t < 3 * gop; ++t) {
          const double m = process.step();
          EXPECT_DOUBLE_EQ(brute_force_structural(hevc, t % gop), m);
          gop_sum += m;
          if ((t + 1) % gop == 0) {
            EXPECT_NEAR(static_cast<double>(gop), gop_sum, 1e-9);
            gop_sum = 0.0;
          }
        }
      }
    }
  }
  EXPECT_EQ(cells_checked, 4u * 2u * 3u);
}

}  // namespace
}  // namespace cvr::core
