// Failure injection: the system must degrade gracefully — never crash,
// never emit out-of-range metrics — under hostile network conditions,
// degenerate traces, and pathological allocator inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/lagrangian.h"
#include "src/core/pavq.h"
#include "src/faults/fault_schedule.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace cvr {
namespace {

using core::testutil::make_crf_user;

void expect_sane(const sim::UserOutcome& o) {
  EXPECT_TRUE(std::isfinite(o.avg_qoe));
  EXPECT_GE(o.avg_quality, 0.0);
  EXPECT_LE(o.avg_quality, 6.0);
  EXPECT_GE(o.avg_delay_ms, 0.0);
  EXPECT_GE(o.variance, 0.0);
  EXPECT_LE(o.variance, 9.0);
  EXPECT_GE(o.fps, 0.0);
  EXPECT_LE(o.fps, 66.1);
  EXPECT_TRUE(std::isfinite(o.fault_slots));
  EXPECT_GE(o.fault_slots, 0.0);
  EXPECT_TRUE(std::isfinite(o.time_to_recover_slots));
  EXPECT_GE(o.time_to_recover_slots, 0.0);
  EXPECT_TRUE(std::isfinite(o.qoe_dip));
  EXPECT_GE(o.qoe_dip, 0.0);
  EXPECT_TRUE(std::isfinite(o.frames_dropped_in_fault));
  EXPECT_GE(o.frames_dropped_in_fault, 0.0);
}

faults::FaultEvent make_fault(faults::FaultType type, std::size_t target,
                              std::size_t start, std::size_t duration,
                              double severity = 0.0) {
  faults::FaultEvent e;
  e.type = type;
  e.target = target;
  e.start_slot = start;
  e.duration_slots = duration;
  e.severity = severity;
  return e;
}

TEST(FailureInjection, NearTotalInterferenceCollapse) {
  // Interference bursts that kill 95% of capacity and barely ever end.
  system::SystemSimConfig config = system::setup_two_routers(4);
  config.slots = 400;
  config.channel.interference_prob = 0.5;
  config.channel.interference_depth = 0.05;
  config.channel.interference_exit = 0.02;
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LT(o.avg_qoe, 1.0);  // the world is genuinely terrible
  }
}

TEST(FailureInjection, LossStorm) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 400;
  config.rtp.base_loss = 0.3;  // 30% of packets vanish even when idle
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LT(o.avg_quality, 1.0);  // nearly nothing decodes
  }
}

TEST(FailureInjection, CrippledDecoder) {
  system::SystemSimConfig config = system::setup_one_router(3);
  config.slots = 300;
  config.devices.clear();  // use the shared client config below
  config.client.decoder.decoders = 1;
  config.client.decoder.decode_ms_per_tile = 9.0;  // 2 tiles already late
  core::DvGreedyAllocator alloc;
  double fps = 0.0;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) {
    expect_sane(o);
    fps += o.fps;
  }
  fps /= static_cast<double>(outcomes.size());
  EXPECT_LT(fps, 55.0);  // decode stage becomes the bottleneck
}

TEST(FailureInjection, TinyClientBufferThrashes) {
  system::SystemSimConfig config = system::setup_one_router(3);
  config.slots = 300;
  config.devices.clear();
  config.client.buffer_threshold = 2;  // evicts almost everything
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
  }
}

TEST(FailureInjection, StarvedUplinkTraceSim) {
  // Server budget far below even the all-ones minimum.
  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 10.0;
  repo_config.lte.duration_s = 10.0;
  const trace::TraceRepository repo(repo_config, 1);
  sim::TraceSimConfig config;
  config.users = 4;
  config.slots = 300;
  config.server_mbps_per_user = 1.0;
  const sim::TraceSimulation simulation(config, repo);
  core::DvGreedyAllocator alloc;
  for (const auto& o : simulation.run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LE(o.avg_quality, 1.0 + 1e-9);  // pinned at the minimum
  }
}

TEST(FaultInjection, EmptyScheduleLeavesRecoveryAccountingZero) {
  system::SystemSimConfig config = system::setup_one_router(3);
  config.slots = 300;
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
    EXPECT_DOUBLE_EQ(o.fault_slots, 0.0);
    EXPECT_DOUBLE_EQ(o.time_to_recover_slots, 0.0);
    EXPECT_DOUBLE_EQ(o.qoe_dip, 0.0);
    EXPECT_DOUBLE_EQ(o.frames_dropped_in_fault, 0.0);
  }
}

TEST(FaultInjection, FaultsBeyondHorizonAreInert) {
  // A schedule whose every window starts after the horizon must leave
  // the run bit-identical to an empty schedule: the queries are pure.
  system::SystemSimConfig baseline = system::setup_one_router(3);
  baseline.slots = 300;
  system::SystemSimConfig faulted = baseline;
  faulted.faults.add(
      make_fault(faults::FaultType::kUserDisconnect, 0, 1000, 60));
  faulted.faults.add(
      make_fault(faults::FaultType::kRouterOutage, 0, 2000, 60, 0.1));
  faulted.faults.add(make_fault(faults::FaultType::kCacheFlush, 0, 3000, 1));
  core::DvGreedyAllocator a1;
  core::DvGreedyAllocator a2;
  const auto base = system::SystemSim(baseline).run(a1, 0);
  const auto with = system::SystemSim(faulted).run(a2, 0);
  ASSERT_EQ(base.size(), with.size());
  for (std::size_t u = 0; u < base.size(); ++u) {
    EXPECT_DOUBLE_EQ(base[u].avg_qoe, with[u].avg_qoe);
    EXPECT_DOUBLE_EQ(base[u].avg_quality, with[u].avg_quality);
    EXPECT_DOUBLE_EQ(base[u].avg_delay_ms, with[u].avg_delay_ms);
    EXPECT_DOUBLE_EQ(base[u].variance, with[u].variance);
    EXPECT_DOUBLE_EQ(base[u].fps, with[u].fps);
    EXPECT_DOUBLE_EQ(with[u].fault_slots, 0.0);
    EXPECT_DOUBLE_EQ(with[u].time_to_recover_slots, 0.0);
  }
}

TEST(FaultInjection, ChurnedUserReconnectsAndRecovers) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 600;
  config.faults.add(
      make_fault(faults::FaultType::kUserDisconnect, 1, 200, 60));
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) expect_sane(o);
  // The churned user's fault accounting matches the window exactly; the
  // bystanders saw no fault at all.
  EXPECT_DOUBLE_EQ(outcomes[1].fault_slots, 60.0);
  EXPECT_DOUBLE_EQ(outcomes[1].frames_dropped_in_fault, 60.0);
  for (std::size_t u : {0u, 2u, 3u}) {
    EXPECT_DOUBLE_EQ(outcomes[u].fault_slots, 0.0);
  }
  // Reconnect works: recovery is bounded, not censored-to-horizon.
  EXPECT_GT(outcomes[1].time_to_recover_slots, 0.0);
  EXPECT_LE(outcomes[1].time_to_recover_slots, 150.0);
  EXPECT_GT(outcomes[1].qoe_dip, 0.0);  // disconnection genuinely hurt
}

TEST(FaultInjection, PoseBlackoutDegradesOnlyTheSilentUser) {
  // The ISSUE acceptance scenario: a 60-slot mid-run pose blackout for
  // one user. Paired against the fault-free run of the same seed, the
  // silent user must pay more QoE than any bystander, recover within a
  // bounded window, and keep every outcome finite.
  system::SystemSimConfig baseline = system::setup_one_router(6);
  baseline.slots = 600;
  system::SystemSimConfig faulted = baseline;
  faulted.faults.add(
      make_fault(faults::FaultType::kPoseBlackout, 2, 250, 60));
  core::DvGreedyAllocator a1;
  core::DvGreedyAllocator a2;
  const auto base = system::SystemSim(baseline).run(a1, 0);
  const auto with = system::SystemSim(faulted).run(a2, 0);
  ASSERT_EQ(base.size(), with.size());
  for (const auto& o : with) expect_sane(o);

  const double victim_drop = base[2].avg_qoe - with[2].avg_qoe;
  EXPECT_GT(victim_drop, 0.0);  // silence costs the silent user QoE
  for (std::size_t u = 0; u < with.size(); ++u) {
    if (u == 2) continue;
    // Graceful degradation: no bystander loses as much as the victim
    // (safe-mode pinning keeps the victim's stale estimates from
    // starving the healthy users through the shared budget).
    EXPECT_LT(base[u].avg_qoe - with[u].avg_qoe, victim_drop);
  }
  EXPECT_DOUBLE_EQ(with[2].fault_slots, 60.0);
  EXPECT_GT(with[2].time_to_recover_slots, 0.0);
  EXPECT_LE(with[2].time_to_recover_slots, 150.0);
}

TEST(FaultInjection, RouterOutageHitsEveryUserBehindIt) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 600;
  // 90% capacity cliff for 80 slots: everyone shares the pain, nobody
  // crashes, and the run still produces in-range metrics.
  config.faults.add(
      make_fault(faults::FaultType::kRouterOutage, 0, 200, 80, 0.1));
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) {
    expect_sane(o);
    EXPECT_DOUBLE_EQ(o.fault_slots, 80.0);
    EXPECT_LE(o.time_to_recover_slots, 200.0);
  }
}

TEST(FaultInjection, AckStallStarvesFeedbackNotDelivery) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 600;
  config.faults.add(make_fault(faults::FaultType::kAckStall, 0, 150, 120));
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) expect_sane(o);
  EXPECT_DOUBLE_EQ(outcomes[0].fault_slots, 120.0);
  // Tiles still flow during the stall — the user keeps displaying
  // frames, so the stall costs far fewer frames than its window length.
  EXPECT_LT(outcomes[0].frames_dropped_in_fault, 120.0);
}

TEST(FaultInjection, CacheFlushIsASurvivableBlip) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 600;
  config.faults.add(make_fault(faults::FaultType::kCacheFlush, 0, 300, 1));
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) {
    expect_sane(o);
    EXPECT_DOUBLE_EQ(o.fault_slots, 1.0);  // the flush touches everyone
    EXPECT_LE(o.time_to_recover_slots, 100.0);
  }
}

TEST(FaultInjection, GeneratedChaosScheduleSurvivesAllAllocators) {
  faults::FaultScheduleConfig chaos;
  chaos.users = 4;
  chaos.routers = 1;
  chaos.slots = 500;
  chaos.intensity = 2.0;
  chaos.seed = 7;
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 500;
  config.faults = faults::generate_schedule(chaos);
  ASSERT_FALSE(config.faults.empty());
  core::DvGreedyAllocator dv;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  for (core::Allocator* alloc :
       {static_cast<core::Allocator*>(&dv),
        static_cast<core::Allocator*>(&firefly),
        static_cast<core::Allocator*>(&pavq)}) {
    for (const auto& o : system::SystemSim(config).run(*alloc, 0)) {
      expect_sane(o);
    }
  }
}

TEST(FailureInjection, AllocatorsSurvivePathologicalContexts) {
  // delta = 0 (prediction never works), qbar at the ceiling, huge slot
  // index, saturated delay on every level.
  core::SlotProblem problem;
  problem.params = core::QoeParams{0.5, 5.0};
  for (int i = 0; i < 4; ++i) {
    auto user = make_crf_user(15.0, 0.0, 6.0, 1e9);
    for (auto& d : user.delay) d = net::kSaturatedDelay;
    problem.users.push_back(std::move(user));
  }
  problem.server_bandwidth = 30.0;

  core::DvGreedyAllocator dv;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  core::LagrangianAllocator lagrangian;
  core::Allocator* allocators[] = {&dv, &firefly, &pavq, &lagrangian};
  for (core::Allocator* alloc : allocators) {
    const core::Allocation a = alloc->allocate(problem);
    ASSERT_EQ(a.levels.size(), 4u);
    for (core::QualityLevel q : a.levels) {
      EXPECT_TRUE(content::is_valid_level(q));
    }
    EXPECT_TRUE(std::isfinite(a.objective));
  }
}

TEST(FailureInjection, UserCountChangesMidStream) {
  // A student joins / leaves between slots: stateful allocators must
  // resync instead of crashing or mis-indexing.
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  core::DvGreedyAllocator dv;
  for (std::size_t users : {3, 5, 2, 8, 1, 6}) {
    core::SlotProblem problem;
    problem.params = core::QoeParams{0.02, 0.5};
    for (std::size_t n = 0; n < users; ++n) {
      problem.users.push_back(make_crf_user(50.0, 0.9, 2.0, 10.0));
    }
    problem.server_bandwidth = 36.0 * static_cast<double>(users);
    core::Allocator* allocators[] = {&firefly, &pavq, &dv};
    for (core::Allocator* alloc : allocators) {
      EXPECT_EQ(alloc->allocate(problem).levels.size(), users);
    }
  }
}

TEST(FailureInjection, ZeroBandwidthEstimates) {
  // An EMA driven to (near) zero must not divide-by-zero anywhere.
  core::SlotProblem problem;
  problem.params = core::QoeParams{0.1, 0.5};
  problem.users.push_back(make_crf_user(1e-6, 0.9, 2.0, 10.0));
  problem.server_bandwidth = 100.0;
  core::DvGreedyAllocator dv;
  const auto a = dv.allocate(problem);
  EXPECT_EQ(a.levels[0], 1);  // nothing above the minimum is feasible
  EXPECT_TRUE(std::isfinite(a.objective));
}

TEST(FailureInjection, ExtremeWeights) {
  for (double alpha : {0.0, 1e6}) {
    for (double beta : {0.0, 1e6}) {
      core::SlotProblem problem;
      problem.params = core::QoeParams{alpha, beta};
      for (int i = 0; i < 3; ++i) {
        problem.users.push_back(make_crf_user(60.0, 0.9, 3.0, 50.0));
      }
      problem.server_bandwidth = 150.0;
      core::DvGreedyAllocator dv;
      const auto a = dv.allocate(problem);
      EXPECT_TRUE(core::server_feasible(problem, a.levels));
      EXPECT_TRUE(std::isfinite(a.objective));
    }
  }
}

}  // namespace
}  // namespace cvr
