// Failure injection: the system must degrade gracefully — never crash,
// never emit out-of-range metrics — under hostile network conditions,
// degenerate traces, and pathological allocator inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/lagrangian.h"
#include "src/core/pavq.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace cvr {
namespace {

using core::testutil::make_crf_user;

void expect_sane(const sim::UserOutcome& o) {
  EXPECT_TRUE(std::isfinite(o.avg_qoe));
  EXPECT_GE(o.avg_quality, 0.0);
  EXPECT_LE(o.avg_quality, 6.0);
  EXPECT_GE(o.avg_delay_ms, 0.0);
  EXPECT_GE(o.variance, 0.0);
  EXPECT_LE(o.variance, 9.0);
  EXPECT_GE(o.fps, 0.0);
  EXPECT_LE(o.fps, 66.1);
}

TEST(FailureInjection, NearTotalInterferenceCollapse) {
  // Interference bursts that kill 95% of capacity and barely ever end.
  system::SystemSimConfig config = system::setup_two_routers(4);
  config.slots = 400;
  config.channel.interference_prob = 0.5;
  config.channel.interference_depth = 0.05;
  config.channel.interference_exit = 0.02;
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LT(o.avg_qoe, 1.0);  // the world is genuinely terrible
  }
}

TEST(FailureInjection, LossStorm) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 400;
  config.rtp.base_loss = 0.3;  // 30% of packets vanish even when idle
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LT(o.avg_quality, 1.0);  // nearly nothing decodes
  }
}

TEST(FailureInjection, CrippledDecoder) {
  system::SystemSimConfig config = system::setup_one_router(3);
  config.slots = 300;
  config.devices.clear();  // use the shared client config below
  config.client.decoder.decoders = 1;
  config.client.decoder.decode_ms_per_tile = 9.0;  // 2 tiles already late
  core::DvGreedyAllocator alloc;
  double fps = 0.0;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (const auto& o : outcomes) {
    expect_sane(o);
    fps += o.fps;
  }
  fps /= static_cast<double>(outcomes.size());
  EXPECT_LT(fps, 55.0);  // decode stage becomes the bottleneck
}

TEST(FailureInjection, TinyClientBufferThrashes) {
  system::SystemSimConfig config = system::setup_one_router(3);
  config.slots = 300;
  config.devices.clear();
  config.client.buffer_threshold = 2;  // evicts almost everything
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    expect_sane(o);
  }
}

TEST(FailureInjection, StarvedUplinkTraceSim) {
  // Server budget far below even the all-ones minimum.
  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 10.0;
  repo_config.lte.duration_s = 10.0;
  const trace::TraceRepository repo(repo_config, 1);
  sim::TraceSimConfig config;
  config.users = 4;
  config.slots = 300;
  config.server_mbps_per_user = 1.0;
  const sim::TraceSimulation simulation(config, repo);
  core::DvGreedyAllocator alloc;
  for (const auto& o : simulation.run(alloc, 0)) {
    expect_sane(o);
    EXPECT_LE(o.avg_quality, 1.0 + 1e-9);  // pinned at the minimum
  }
}

TEST(FailureInjection, AllocatorsSurvivePathologicalContexts) {
  // delta = 0 (prediction never works), qbar at the ceiling, huge slot
  // index, saturated delay on every level.
  core::SlotProblem problem;
  problem.params = core::QoeParams{0.5, 5.0};
  for (int i = 0; i < 4; ++i) {
    auto user = make_crf_user(15.0, 0.0, 6.0, 1e9);
    for (auto& d : user.delay) d = net::kSaturatedDelay;
    problem.users.push_back(std::move(user));
  }
  problem.server_bandwidth = 30.0;

  core::DvGreedyAllocator dv;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  core::LagrangianAllocator lagrangian;
  core::Allocator* allocators[] = {&dv, &firefly, &pavq, &lagrangian};
  for (core::Allocator* alloc : allocators) {
    const core::Allocation a = alloc->allocate(problem);
    ASSERT_EQ(a.levels.size(), 4u);
    for (core::QualityLevel q : a.levels) {
      EXPECT_TRUE(content::is_valid_level(q));
    }
    EXPECT_TRUE(std::isfinite(a.objective));
  }
}

TEST(FailureInjection, UserCountChangesMidStream) {
  // A student joins / leaves between slots: stateful allocators must
  // resync instead of crashing or mis-indexing.
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  core::DvGreedyAllocator dv;
  for (std::size_t users : {3, 5, 2, 8, 1, 6}) {
    core::SlotProblem problem;
    problem.params = core::QoeParams{0.02, 0.5};
    for (std::size_t n = 0; n < users; ++n) {
      problem.users.push_back(make_crf_user(50.0, 0.9, 2.0, 10.0));
    }
    problem.server_bandwidth = 36.0 * static_cast<double>(users);
    core::Allocator* allocators[] = {&firefly, &pavq, &dv};
    for (core::Allocator* alloc : allocators) {
      EXPECT_EQ(alloc->allocate(problem).levels.size(), users);
    }
  }
}

TEST(FailureInjection, ZeroBandwidthEstimates) {
  // An EMA driven to (near) zero must not divide-by-zero anywhere.
  core::SlotProblem problem;
  problem.params = core::QoeParams{0.1, 0.5};
  problem.users.push_back(make_crf_user(1e-6, 0.9, 2.0, 10.0));
  problem.server_bandwidth = 100.0;
  core::DvGreedyAllocator dv;
  const auto a = dv.allocate(problem);
  EXPECT_EQ(a.levels[0], 1);  // nothing above the minimum is feasible
  EXPECT_TRUE(std::isfinite(a.objective));
}

TEST(FailureInjection, ExtremeWeights) {
  for (double alpha : {0.0, 1e6}) {
    for (double beta : {0.0, 1e6}) {
      core::SlotProblem problem;
      problem.params = core::QoeParams{alpha, beta};
      for (int i = 0; i < 3; ++i) {
        problem.users.push_back(make_crf_user(60.0, 0.9, 3.0, 50.0));
      }
      problem.server_bandwidth = 150.0;
      core::DvGreedyAllocator dv;
      const auto a = dv.allocate(problem);
      EXPECT_TRUE(core::server_feasible(problem, a.levels));
      EXPECT_TRUE(std::isfinite(a.objective));
    }
  }
}

}  // namespace
}  // namespace cvr
