#include "src/net/wireless_channel.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/util/stats.h"

namespace cvr::net {
namespace {

TEST(MaxMinFair, UnderloadedGrantsAll) {
  const auto grant = max_min_fair({10.0, 20.0, 5.0}, 100.0);
  EXPECT_DOUBLE_EQ(grant[0], 10.0);
  EXPECT_DOUBLE_EQ(grant[1], 20.0);
  EXPECT_DOUBLE_EQ(grant[2], 5.0);
}

TEST(MaxMinFair, EqualSplitWhenAllGreedy) {
  const auto grant = max_min_fair({50.0, 50.0, 50.0}, 60.0);
  for (double g : grant) EXPECT_NEAR(g, 20.0, 1e-9);
}

TEST(MaxMinFair, SmallDemandSatisfiedFirst) {
  // Classic max-min: {5, 50, 50} at capacity 60 -> {5, 27.5, 27.5}.
  const auto grant = max_min_fair({5.0, 50.0, 50.0}, 60.0);
  EXPECT_NEAR(grant[0], 5.0, 1e-9);
  EXPECT_NEAR(grant[1], 27.5, 1e-9);
  EXPECT_NEAR(grant[2], 27.5, 1e-9);
}

TEST(MaxMinFair, NeverExceedsDemandOrCapacity) {
  const std::vector<double> demands = {12.0, 0.0, 33.0, 7.0};
  const auto grant = max_min_fair(demands, 30.0);
  double total = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(grant[i], demands[i] + 1e-9);
    total += grant[i];
  }
  EXPECT_LE(total, 30.0 + 1e-9);
}

TEST(MaxMinFair, ZeroCapacityGrantsNothing) {
  const auto grant = max_min_fair({10.0, 10.0}, 0.0);
  EXPECT_DOUBLE_EQ(grant[0], 0.0);
  EXPECT_DOUBLE_EQ(grant[1], 0.0);
}

TEST(MaxMinFair, EmptyDemands) {
  EXPECT_TRUE(max_min_fair({}, 100.0).empty());
}

TEST(FadingProcess, MultiplierBounded) {
  WirelessChannelConfig config;
  FadingProcess fading(config, 1);
  for (int i = 0; i < 10000; ++i) {
    const double m = fading.step();
    EXPECT_GT(m, 0.0);
    EXPECT_LE(m, 1.3);
  }
}

TEST(FadingProcess, CentredNearOne) {
  WirelessChannelConfig config;
  FadingProcess fading(config, 2);
  cvr::RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.add(fading.step());
  EXPECT_NEAR(stat.mean(), 1.0, 0.05);
}

TEST(FadingProcess, Autocorrelated) {
  WirelessChannelConfig config;
  FadingProcess fading(config, 3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(fading.step());
  double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double cov = 0.0, var = 0.0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    cov += (xs[i] - mean) * (xs[i + 1] - mean);
    var += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_GT(cov / var, 0.7);
}

Router make_router(bool interference, std::uint64_t seed = 10) {
  WirelessChannelConfig config;
  config.interference = interference;
  return Router(400.0, {40.0, 50.0, 60.0}, config, seed);
}

TEST(Router, PerUserCapacityNearThrottle) {
  Router router = make_router(false);
  cvr::RunningStat stat0;
  for (int i = 0; i < 5000; ++i) {
    router.step();
    stat0.add(router.per_user_capacity(0));
  }
  EXPECT_NEAR(stat0.mean(), 40.0, 4.0);
  EXPECT_GT(stat0.population_variance(), 0.0);
}

TEST(Router, ServeRespectsPerUserAndAggregate) {
  Router router = make_router(false);
  for (int i = 0; i < 100; ++i) {
    router.step();
    const auto grant = router.serve({100.0, 100.0, 100.0});
    double total = 0.0;
    for (std::size_t u = 0; u < 3; ++u) {
      EXPECT_LE(grant[u], router.per_user_capacity(u) + 1e-9);
      total += grant[u];
    }
    EXPECT_LE(total, router.aggregate_capacity() + 1e-9);
  }
}

TEST(Router, ServeGrantsSmallDemandsFully) {
  Router router = make_router(false);
  router.step();
  const auto grant = router.serve({1.0, 2.0, 3.0});
  EXPECT_NEAR(grant[0], 1.0, 1e-9);
  EXPECT_NEAR(grant[1], 2.0, 1e-9);
  EXPECT_NEAR(grant[2], 3.0, 1e-9);
}

TEST(Router, ServeDemandCountMismatchThrows) {
  Router router = make_router(false);
  EXPECT_THROW(router.serve({1.0}), std::invalid_argument);
}

TEST(Router, InterferenceIncreasesVariance) {
  // Fig. 8's driver: two-router interference mode must produce a more
  // volatile aggregate capacity.
  Router quiet = make_router(false, 21);
  Router noisy = make_router(true, 21);
  cvr::RunningStat q, n;
  for (int i = 0; i < 20000; ++i) {
    quiet.step();
    noisy.step();
    q.add(quiet.aggregate_capacity());
    n.add(noisy.aggregate_capacity());
  }
  EXPECT_GT(n.population_variance(), q.population_variance() * 10.0);
  EXPECT_LT(n.min(), 400.0 * 0.6);  // deep interference dips observed
}

TEST(Router, RejectsBadConstruction) {
  WirelessChannelConfig config;
  EXPECT_THROW(Router(0.0, {40.0}, config, 1), std::invalid_argument);
  EXPECT_THROW(Router(400.0, {}, config, 1), std::invalid_argument);
  EXPECT_THROW(Router(400.0, {0.0}, config, 1), std::invalid_argument);
}

TEST(Router, DeterministicGivenSeed) {
  Router a = make_router(true, 5);
  Router b = make_router(true, 5);
  for (int i = 0; i < 100; ++i) {
    a.step();
    b.step();
    EXPECT_DOUBLE_EQ(a.aggregate_capacity(), b.aggregate_capacity());
    EXPECT_DOUBLE_EQ(a.per_user_capacity(1), b.per_user_capacity(1));
  }
}

}  // namespace
}  // namespace cvr::net
