// Fleet-with-failover guard rails (docs/fleet.md):
//
//   * a K=1 fleet with an empty schedule is bit-identical to
//     system::SystemSim — outcomes and the full per-slot timeline;
//   * a mid-run server crash re-admits (nearly) all orphans to the
//     survivors within a bounded number of slots;
//   * runs are pure functions of (config, repeat) — regenerating and
//     attaching telemetry change nothing;
//   * a planned live migration carries the user's estimator state, so
//     the migrated user's quality sequence matches a never-moved run;
//   * backoff delays and the consistent-hash ring behave as documented.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/core/dv_greedy.h"
#include "src/faults/fault_schedule.h"
#include "src/fleet/assignment.h"
#include "src/fleet/backoff.h"
#include "src/fleet/fleet_sim.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/telemetry/telemetry.h"

namespace cvr {
namespace {

faults::FaultEvent make_fault(faults::FaultType type, std::size_t target,
                              std::size_t start, std::size_t duration) {
  faults::FaultEvent e;
  e.type = type;
  e.target = target;
  e.start_slot = start;
  e.duration_slots = duration;
  return e;
}

void expect_outcomes_identical(const std::vector<sim::UserOutcome>& a,
                               const std::vector<sim::UserOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].avg_qoe, b[i].avg_qoe) << "user " << i;
    EXPECT_EQ(a[i].avg_quality, b[i].avg_quality) << "user " << i;
    EXPECT_EQ(a[i].avg_level, b[i].avg_level) << "user " << i;
    EXPECT_EQ(a[i].avg_delay_ms, b[i].avg_delay_ms) << "user " << i;
    EXPECT_EQ(a[i].variance, b[i].variance) << "user " << i;
    EXPECT_EQ(a[i].prediction_accuracy, b[i].prediction_accuracy)
        << "user " << i;
    EXPECT_EQ(a[i].fps, b[i].fps) << "user " << i;
    EXPECT_EQ(a[i].fault_slots, b[i].fault_slots) << "user " << i;
    EXPECT_EQ(a[i].time_to_recover_slots, b[i].time_to_recover_slots)
        << "user " << i;
    EXPECT_EQ(a[i].qoe_dip, b[i].qoe_dip) << "user " << i;
    EXPECT_EQ(a[i].frames_dropped_in_fault, b[i].frames_dropped_in_fault)
        << "user " << i;
  }
}

void expect_timelines_identical(const system::Timeline& a,
                                const system::Timeline& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto& ra = a.records();
  const auto& rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].slot, rb[i].slot) << "record " << i;
    EXPECT_EQ(ra[i].user, rb[i].user) << "record " << i;
    EXPECT_EQ(ra[i].level, rb[i].level) << "record " << i;
    EXPECT_EQ(ra[i].delta_estimate, rb[i].delta_estimate) << "record " << i;
    EXPECT_EQ(ra[i].bandwidth_estimate_mbps, rb[i].bandwidth_estimate_mbps)
        << "record " << i;
    EXPECT_EQ(ra[i].demand_mbps, rb[i].demand_mbps) << "record " << i;
    EXPECT_EQ(ra[i].granted_mbps, rb[i].granted_mbps) << "record " << i;
    EXPECT_EQ(ra[i].delay_ms, rb[i].delay_ms) << "record " << i;
    EXPECT_EQ(ra[i].packets, rb[i].packets) << "record " << i;
    EXPECT_EQ(ra[i].packets_lost, rb[i].packets_lost) << "record " << i;
    EXPECT_EQ(ra[i].frame_on_time, rb[i].frame_on_time) << "record " << i;
    EXPECT_EQ(ra[i].displayed_quality, rb[i].displayed_quality)
        << "record " << i;
  }
}

// ---------------------------------------------------------------------------
// K = 1: the fleet is the single-server emulation, bit for bit.

TEST(FleetK1, BitIdenticalToSystemSim) {
  system::SystemSimConfig base = system::setup_one_router(4);
  base.slots = 250;

  core::DvGreedyAllocator alloc_a;
  system::Timeline sys_timeline;
  const auto sys_outcomes =
      system::SystemSim(base).run(alloc_a, 0, &sys_timeline);

  fleet::FleetConfig config;
  config.base = base;
  config.servers = 1;
  core::DvGreedyAllocator alloc_b;
  system::Timeline fleet_timeline;
  const fleet::FleetRunResult result =
      fleet::FleetSim(config).run(alloc_b, 0, &fleet_timeline);

  expect_outcomes_identical(sys_outcomes, result.outcomes);
  expect_timelines_identical(sys_timeline, fleet_timeline);
  EXPECT_EQ(result.stats.crashes, 0u);
  EXPECT_EQ(result.stats.migrations, 0u);
  EXPECT_EQ(result.stats.handoff_frames, 0u);
  EXPECT_EQ(result.stats.reabsorbed_fraction, 1.0);
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.home_server, 0.0);
    EXPECT_EQ(o.migrations, 0.0);
  }
}

TEST(FleetK1, BitIdenticalUnderLegacyFaults) {
  // User/router-scoped faults flow through the same pipeline on both
  // sides; the K=1 identity must survive them.
  system::SystemSimConfig base = system::setup_one_router(4);
  base.slots = 250;
  base.faults.add(make_fault(faults::FaultType::kUserDisconnect, 1, 40, 30));
  base.faults.add(make_fault(faults::FaultType::kPoseBlackout, 2, 80, 25));
  base.faults.add(make_fault(faults::FaultType::kCacheFlush, 0, 120, 1));

  core::DvGreedyAllocator alloc_a;
  const auto sys_outcomes = system::SystemSim(base).run(alloc_a, 1);

  fleet::FleetConfig config;
  config.base = base;
  config.servers = 1;
  core::DvGreedyAllocator alloc_b;
  const auto result = fleet::FleetSim(config).run(alloc_b, 1);
  expect_outcomes_identical(sys_outcomes, result.outcomes);
}

// ---------------------------------------------------------------------------
// Crash failover

fleet::FleetConfig crash_config(fleet::AssignmentMode mode) {
  fleet::FleetConfig config;
  config.base = system::setup_two_routers(12);
  config.base.slots = 500;
  config.base.faults.add(
      make_fault(faults::FaultType::kServerCrash, 1, 150, 300));
  config.servers = 4;
  config.assignment = mode;
  return config;
}

TEST(FleetCrash, ReabsorbsOrphansWithinBoundedSlots) {
  const fleet::FleetConfig config = crash_config(
      fleet::AssignmentMode::kShardedHash);
  core::DvGreedyAllocator alloc;
  const auto result = fleet::FleetSim(config).run(alloc, 0);

  EXPECT_EQ(result.stats.crashes, 1u);
  ASSERT_GT(result.stats.affected_users, 0u);
  EXPECT_GE(result.stats.reabsorbed_fraction, 0.99);
  EXPECT_EQ(result.stats.lost_users, 0u);
  EXPECT_GE(result.stats.migrations, result.stats.reabsorbed_users);
  EXPECT_GT(result.stats.handoff_frames, 0u);
  // Default backoff starts at 2 slots with 30% jitter: every orphan
  // should be back long before 50 slots even with a few rejects.
  EXPECT_LE(result.stats.max_reabsorb_slots, 50u);
  EXPECT_GE(result.stats.mean_reabsorb_slots, 1.0);

  ASSERT_EQ(result.stats.per_server.size(), 4u);
  std::size_t served = 0;
  for (const auto& s : result.stats.per_server) {
    served += s.served_user_slots;
    EXPECT_GE(s.mean_budget_mbps, 0.0);
    EXPECT_TRUE(std::isfinite(s.mean_utilization));
  }
  EXPECT_GT(served, 0u);

  // Migrated users carry their re-assignment in the outcome fields.
  double total_migrations = 0.0;
  for (const auto& o : result.outcomes) total_migrations += o.migrations;
  EXPECT_EQ(static_cast<std::size_t>(total_migrations),
            result.stats.migrations);
}

TEST(FleetCrash, DeterministicAcrossRunsAndTelemetry) {
  const fleet::FleetConfig config = crash_config(
      fleet::AssignmentMode::kShardedHash);
  core::DvGreedyAllocator alloc;
  const fleet::FleetSim sim(config);
  const auto first = sim.run(alloc, 3);
  const auto second = sim.run(alloc, 3);
  telemetry::MetricsRegistry registry;
  telemetry::Collector collector(telemetry::Mode::kCounters, &registry);
  const auto third = sim.run(alloc, 3, nullptr, &collector);

  expect_outcomes_identical(first.outcomes, second.outcomes);
  expect_outcomes_identical(first.outcomes, third.outcomes);
  EXPECT_EQ(first.stats.migrations, second.stats.migrations);
  EXPECT_EQ(first.stats.migrations, third.stats.migrations);
  EXPECT_EQ(first.stats.retry_attempts, third.stats.retry_attempts);
  EXPECT_EQ(first.stats.max_reabsorb_slots, third.stats.max_reabsorb_slots);

  // The fleet_ counters mirror the deterministic stats exactly (that is
  // what lets perf_gate.py hold them to exact equality).
  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("fleet_server_crashes"), third.stats.crashes);
  EXPECT_EQ(snapshot.counter_or("fleet_migrations"), third.stats.migrations);
  EXPECT_EQ(snapshot.counter_or("fleet_handoff_frames"),
            third.stats.handoff_frames);
  EXPECT_EQ(snapshot.counter_or("fleet_retry_attempts"),
            third.stats.retry_attempts);
  EXPECT_EQ(snapshot.counter_or("fleet_migration_rejects"),
            third.stats.rejects);
}

TEST(FleetCrash, ServerRecoverTruncatesTheOutage) {
  fleet::FleetConfig config = crash_config(
      fleet::AssignmentMode::kShardedHash);
  config.base.faults.add(
      make_fault(faults::FaultType::kServerRecover, 1, 200, 1));
  core::DvGreedyAllocator alloc;
  const auto result = fleet::FleetSim(config).run(alloc, 0);
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_EQ(result.stats.recoveries, 1u);
  EXPECT_GE(result.stats.reabsorbed_fraction, 0.99);
}

TEST(FleetCrash, MirroredFailoverIsFasterThanSharded) {
  core::DvGreedyAllocator alloc;
  const auto sharded = fleet::FleetSim(crash_config(
      fleet::AssignmentMode::kShardedHash)).run(alloc, 0);
  const auto mirrored = fleet::FleetSim(crash_config(
      fleet::AssignmentMode::kMirrored)).run(alloc, 0);

  EXPECT_GE(mirrored.stats.reabsorbed_fraction,
            sharded.stats.reabsorbed_fraction);
  // The warm standby attempts at the crash slot itself; sharded waits
  // out the backoff, so its recovery time is strictly larger.
  EXPECT_LT(mirrored.stats.mean_reabsorb_slots,
            sharded.stats.mean_reabsorb_slots);
  // Replicating checkpoints costs wire frames.
  EXPECT_GE(mirrored.stats.handoff_frames, sharded.stats.handoff_frames);
}

TEST(FleetCrash, PartitionFreezesMigrationInAndOut) {
  fleet::FleetConfig config;
  config.base = system::setup_one_router(6);
  config.base.slots = 300;
  config.servers = 3;
  // Server 2 is partitioned for the whole run; a planned migration into
  // it must be skipped, not applied.
  config.base.faults.add(
      make_fault(faults::FaultType::kFleetPartition, 2, 0, 300));
  fleet::PlannedMigration pm;
  pm.slot = 100;
  pm.user = 0;
  pm.to_server = 2;
  config.planned_migrations.push_back(pm);

  core::DvGreedyAllocator alloc;
  const auto result = fleet::FleetSim(config).run(alloc, 0);
  EXPECT_EQ(result.stats.migrations, 0u);
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.migrations, 0.0);
    EXPECT_TRUE(std::isfinite(o.avg_qoe));
  }
}

TEST(FleetBudget, PoliciesSplitTheBackhaul) {
  fleet::FleetConfig config;
  config.base = system::setup_one_router(8);
  config.base.slots = 200;
  config.servers = 2;
  config.backhaul_mbps = 400.0;

  core::DvGreedyAllocator alloc;
  config.budget = fleet::BudgetPolicy::kEqual;
  const auto equal = fleet::FleetSim(config).run(alloc, 0);
  ASSERT_EQ(equal.stats.per_server.size(), 2u);
  EXPECT_DOUBLE_EQ(equal.stats.per_server[0].mean_budget_mbps, 200.0);
  EXPECT_DOUBLE_EQ(equal.stats.per_server[1].mean_budget_mbps, 200.0);

  config.budget = fleet::BudgetPolicy::kProportionalUsers;
  const auto proportional = fleet::FleetSim(config).run(alloc, 0);
  const double total =
      proportional.stats.per_server[0].mean_budget_mbps +
      proportional.stats.per_server[1].mean_budget_mbps;
  EXPECT_NEAR(total, 400.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Live migration state carry

TEST(FleetMigration, StateCarryMatchesNeverMovedRun) {
  // One user, persistence predictor, no variance term, no repetition
  // suppression / fallback / loss-aware / adaptive margin: everything
  // the serve path consumes is either user-keyed world state (which a
  // migration never touches) or estimator state the UserHandoff frame
  // carries. The migrated run must then reproduce the never-moved
  // run's per-slot quality decisions exactly.
  fleet::FleetConfig config;
  config.base = system::setup_one_router(1);
  config.base.slots = 300;
  config.base.server.predictor_kind = motion::PredictorKind::kPersistence;
  config.base.server.params = core::QoeParams{0.0, 0.5};
  config.base.server.repetition_suppression = false;
  config.servers = 2;

  core::DvGreedyAllocator alloc;
  system::Timeline stay_timeline;
  const auto stay = fleet::FleetSim(config).run(alloc, 0, &stay_timeline);

  fleet::PlannedMigration pm;
  pm.slot = 150;
  pm.user = 0;
  // Move to whichever server is NOT the hash owner.
  pm.to_server = 1 - fleet::HashRing(2, 64, config.base.seed).owner(0);
  config.planned_migrations.push_back(pm);
  system::Timeline move_timeline;
  const auto moved = fleet::FleetSim(config).run(alloc, 0, &move_timeline);

  EXPECT_EQ(moved.stats.migrations, 1u);
  EXPECT_EQ(moved.outcomes.at(0).migrations, 1.0);
  ASSERT_EQ(stay_timeline.size(), move_timeline.size());
  const auto& rs = stay_timeline.records();
  const auto& rm = move_timeline.records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].level, rm[i].level) << "slot " << rs[i].slot;
    EXPECT_EQ(rs[i].displayed_quality, rm[i].displayed_quality)
        << "slot " << rs[i].slot;
    EXPECT_EQ(rs[i].delta_estimate, rm[i].delta_estimate)
        << "slot " << rs[i].slot;
  }
  expect_outcomes_identical(stay.outcomes, moved.outcomes);
}

// ---------------------------------------------------------------------------
// Backoff policy

TEST(FleetBackoff, DelaysStayWithinTheJitteredEnvelope) {
  fleet::BackoffPolicy policy;
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    double nominal = static_cast<double>(policy.base_delay_slots);
    for (std::size_t k = 0; k < attempt; ++k) nominal *= policy.multiplier;
    nominal = std::min(nominal, static_cast<double>(policy.max_delay_slots));
    for (std::size_t user = 0; user < 16; ++user) {
      const std::size_t delay =
          fleet::retry_delay_slots(policy, 2022, user, attempt);
      EXPECT_GE(delay, 1u);
      EXPECT_GE(static_cast<double>(delay),
                std::floor(nominal * (1.0 - policy.jitter_fraction)));
      EXPECT_LE(static_cast<double>(delay),
                std::ceil(nominal * (1.0 + policy.jitter_fraction)));
    }
  }
}

TEST(FleetBackoff, DeterministicAndDesynchronized) {
  const fleet::BackoffPolicy policy;
  EXPECT_EQ(fleet::retry_delay_slots(policy, 7, 3, 2),
            fleet::retry_delay_slots(policy, 7, 3, 2));
  // Different users at the same attempt must not all share one delay
  // (that would re-synchronize the herd the jitter exists to break up).
  std::set<std::size_t> delays;
  for (std::size_t user = 0; user < 64; ++user) {
    delays.insert(fleet::retry_delay_slots(policy, 7, user, 4));
  }
  EXPECT_GT(delays.size(), 1u);
}

TEST(FleetBackoff, CapAndValidation) {
  fleet::BackoffPolicy policy;
  policy.jitter_fraction = 0.0;
  policy.base_delay_slots = 3;
  policy.multiplier = 10.0;
  policy.max_delay_slots = 40;
  EXPECT_EQ(fleet::retry_delay_slots(policy, 1, 0, 0), 3u);
  EXPECT_EQ(fleet::retry_delay_slots(policy, 1, 0, 1), 30u);
  EXPECT_EQ(fleet::retry_delay_slots(policy, 1, 0, 2), 40u);  // capped
  EXPECT_EQ(fleet::retry_delay_slots(policy, 1, 0, 7), 40u);

  fleet::BackoffPolicy bad = policy;
  bad.multiplier = 0.5;
  EXPECT_THROW(fleet::validate(bad), std::invalid_argument);
  bad = policy;
  bad.jitter_fraction = 1.0;
  EXPECT_THROW(fleet::validate(bad), std::invalid_argument);
  bad = policy;
  bad.max_attempts = 0;
  EXPECT_THROW(fleet::validate(bad), std::invalid_argument);
  bad = policy;
  bad.timeout_slots = 0;
  EXPECT_THROW(fleet::validate(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

TEST(FleetRing, CrashMovesOnlyTheCrashedServersUsers) {
  const fleet::HashRing ring(4, 64, 2022);
  std::vector<bool> all(4, true);
  std::vector<bool> without_two = all;
  without_two[2] = false;
  for (std::size_t user = 0; user < 200; ++user) {
    const std::size_t before = ring.owner(user, all);
    EXPECT_EQ(before, ring.owner(user));  // all-eligible overload agrees
    const std::size_t after = ring.owner(user, without_two);
    if (before != 2) {
      EXPECT_EQ(after, before) << "healthy user " << user << " reshuffled";
    } else {
      EXPECT_NE(after, 2u);
    }
  }
}

TEST(FleetRing, BackupIsDistinctUntilOnlyOneServerRemains) {
  const fleet::HashRing ring(3, 64, 7);
  std::vector<bool> all(3, true);
  for (std::size_t user = 0; user < 100; ++user) {
    EXPECT_NE(ring.backup(user, all), ring.owner(user, all));
  }
  std::vector<bool> only_one(3, false);
  only_one[1] = true;
  EXPECT_EQ(ring.owner(5, only_one), 1u);
  EXPECT_EQ(ring.backup(5, only_one), 1u);  // falls back to the primary
}

TEST(FleetRing, ValidationAndDeterminism) {
  EXPECT_THROW(fleet::HashRing(0, 64, 1), std::invalid_argument);
  EXPECT_THROW(fleet::HashRing(2, 0, 1), std::invalid_argument);
  const fleet::HashRing a(5, 32, 99);
  const fleet::HashRing b(5, 32, 99);
  for (std::size_t user = 0; user < 100; ++user) {
    EXPECT_EQ(a.owner(user), b.owner(user));
  }
  EXPECT_THROW(a.owner(0, std::vector<bool>(4, true)), std::invalid_argument);
  EXPECT_THROW(a.owner(0, std::vector<bool>(5, false)), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Parallel slot execution (docs/fleet.md): FleetConfig::threads is an
// execution detail — outcomes, timeline, stats, and every telemetry
// counter must be bit-identical to the serial reference schedule, fault
// schedules included. These suites run under the TSan CI leg.

fleet::FleetRunResult run_with_threads(const fleet::FleetConfig& base_config,
                                       std::size_t threads,
                                       system::Timeline* timeline,
                                       telemetry::Collector* collector,
                                       bool warm_start = false) {
  fleet::FleetConfig config = base_config;
  config.threads = threads;
  core::DvGreedyAllocator alloc(core::DvGreedyAllocator::Mode::kCombined,
                                core::DvGreedyAllocator::Strategy::kHeap,
                                warm_start);
  return fleet::FleetSim(config).run(alloc, 0, timeline, collector);
}

void expect_parallel_matches_serial(const fleet::FleetConfig& config) {
  system::Timeline serial_tl;
  telemetry::MetricsRegistry serial_reg;
  telemetry::Collector serial_col(telemetry::Mode::kCounters, &serial_reg);
  const auto serial = run_with_threads(config, 1, &serial_tl, &serial_col);

  system::Timeline parallel_tl;
  telemetry::MetricsRegistry parallel_reg;
  telemetry::Collector parallel_col(telemetry::Mode::kCounters,
                                    &parallel_reg);
  const auto parallel =
      run_with_threads(config, 3, &parallel_tl, &parallel_col);

  expect_outcomes_identical(serial.outcomes, parallel.outcomes);
  expect_timelines_identical(serial_tl, parallel_tl);
  EXPECT_EQ(serial.stats.crashes, parallel.stats.crashes);
  EXPECT_EQ(serial.stats.migrations, parallel.stats.migrations);
  EXPECT_EQ(serial.stats.handoff_frames, parallel.stats.handoff_frames);
  EXPECT_EQ(serial.stats.retry_attempts, parallel.stats.retry_attempts);
  EXPECT_EQ(serial.stats.lost_users, parallel.stats.lost_users);
  ASSERT_EQ(serial.stats.per_server.size(), parallel.stats.per_server.size());
  for (std::size_t k = 0; k < serial.stats.per_server.size(); ++k) {
    EXPECT_EQ(serial.stats.per_server[k].served_user_slots,
              parallel.stats.per_server[k].served_user_slots);
    EXPECT_EQ(serial.stats.per_server[k].mean_budget_mbps,
              parallel.stats.per_server[k].mean_budget_mbps);
    EXPECT_EQ(serial.stats.per_server[k].mean_utilization,
              parallel.stats.per_server[k].mean_utilization);
  }
  // Full counter equality, not just the fleet_ prefix: worker-thread
  // shards must merge to exactly the serial totals.
  EXPECT_EQ(serial_reg.snapshot().counters, parallel_reg.snapshot().counters);
}

TEST(ParallelFleet, BitIdenticalToSerialUnderCrash) {
  expect_parallel_matches_serial(
      crash_config(fleet::AssignmentMode::kShardedHash));
}

TEST(ParallelFleet, BitIdenticalToSerialUnderMirroredCrash) {
  expect_parallel_matches_serial(
      crash_config(fleet::AssignmentMode::kMirrored));
}

TEST(ParallelFleet, BitIdenticalToSerialUnderPartition) {
  fleet::FleetConfig config = crash_config(fleet::AssignmentMode::kShardedHash);
  config.base.faults.add(
      make_fault(faults::FaultType::kFleetPartition, 2, 100, 200));
  expect_parallel_matches_serial(config);
}

TEST(ParallelFleet, ThreadsZeroMeansAllHardwareThreads) {
  const fleet::FleetConfig config =
      crash_config(fleet::AssignmentMode::kShardedHash);
  const auto serial = run_with_threads(config, 1, nullptr, nullptr);
  const auto parallel = run_with_threads(config, 0, nullptr, nullptr);
  expect_outcomes_identical(serial.outcomes, parallel.outcomes);
}

TEST(ParallelFleet, StatefulAllocatorFallsBackToSerial) {
  // dv-warm carries state across slots (stateless() == false): the
  // fleet must keep the serial schedule, and a threads > 1 request
  // must change nothing.
  const fleet::FleetConfig config =
      crash_config(fleet::AssignmentMode::kShardedHash);
  const auto serial =
      run_with_threads(config, 1, nullptr, nullptr, /*warm_start=*/true);
  const auto requested_parallel =
      run_with_threads(config, 4, nullptr, nullptr, /*warm_start=*/true);
  expect_outcomes_identical(serial.outcomes, requested_parallel.outcomes);
}

TEST(FleetConfigValidation, RejectsDegenerateConfigs) {
  fleet::FleetConfig config;
  config.base = system::setup_one_router(2);
  config.base.slots = 50;
  config.servers = 0;
  EXPECT_THROW(fleet::FleetSim{config}, std::invalid_argument);
  config.servers = 2;
  config.ring_vnodes = 0;
  EXPECT_THROW(fleet::FleetSim{config}, std::invalid_argument);
  config.ring_vnodes = 64;
  config.backhaul_mbps = -1.0;
  EXPECT_THROW(fleet::FleetSim{config}, std::invalid_argument);
  config.backhaul_mbps = 0.0;
  fleet::PlannedMigration pm;
  pm.user = 99;  // out of range
  config.planned_migrations.push_back(pm);
  EXPECT_THROW(fleet::FleetSim{config}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr
