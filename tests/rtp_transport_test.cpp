#include "src/net/rtp_transport.h"

#include <gtest/gtest.h>

namespace cvr::net {
namespace {

TEST(RtpTransport, LossProbabilityFloorsAndRamps) {
  RtpTransport transport({}, 1);
  const double quiet = transport.loss_probability(0.0);
  const double half = transport.loss_probability(0.5);
  const double full = transport.loss_probability(1.0);
  EXPECT_NEAR(quiet, 0.002, 1e-12);
  EXPECT_GT(half, quiet);
  EXPECT_GT(full, half);
  EXPECT_NEAR(full, 0.002 + 0.08, 1e-12);
}

TEST(RtpTransport, LossProbabilityClampsUtilization) {
  RtpTransport transport({}, 1);
  EXPECT_DOUBLE_EQ(transport.loss_probability(-1.0),
                   transport.loss_probability(0.0));
  EXPECT_DOUBLE_EQ(transport.loss_probability(5.0),
                   transport.loss_probability(1.0));
}

TEST(RtpTransport, PacketizationCeils) {
  RtpConfig config;
  config.packet_bits = 9600.0;
  config.base_loss = 0.0;
  config.congestion_loss = 0.0;
  RtpTransport transport(config, 1);
  // 0.02 Mb = 20000 bits -> ceil(20000/9600) = 3 packets.
  const auto tx = transport.send_tile(0.02, 0.0);
  EXPECT_EQ(tx.packets, 3u);
  EXPECT_TRUE(tx.complete());
}

TEST(RtpTransport, ZeroSizeTileIncomplete) {
  RtpTransport transport({}, 1);
  const auto tx = transport.send_tile(0.0, 0.0);
  EXPECT_EQ(tx.packets, 0u);
  EXPECT_FALSE(tx.complete());  // nothing sent = nothing decodable
}

TEST(RtpTransport, NoLossWhenProbabilityZero) {
  RtpConfig config;
  config.base_loss = 0.0;
  config.congestion_loss = 0.0;
  RtpTransport transport(config, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(transport.send_tile(0.2, 1.0).complete());
  }
}

TEST(RtpTransport, LossRateMatchesProbability) {
  RtpConfig config;
  config.base_loss = 0.05;
  config.congestion_loss = 0.0;
  RtpTransport transport(config, 2);
  for (int i = 0; i < 500; ++i) transport.send_tile(0.5, 0.0);
  const double observed =
      static_cast<double>(transport.packets_lost()) /
      static_cast<double>(transport.packets_sent());
  EXPECT_NEAR(observed, 0.05, 0.01);
}

TEST(RtpTransport, CongestionBreaksFrames) {
  // Near saturation a multi-packet tile should frequently lose packets.
  RtpTransport transport({}, 3);
  int broken = 0;
  for (int i = 0; i < 200; ++i) {
    if (!transport.send_tile(0.2, 1.0).complete()) ++broken;
  }
  EXPECT_GT(broken, 100);  // ~8% per packet over ~21 packets
}

TEST(RtpTransport, QuietLinkMostlyIntact) {
  RtpTransport transport({}, 4);
  int intact = 0;
  for (int i = 0; i < 200; ++i) {
    if (transport.send_tile(0.2, 0.1).complete()) ++intact;
  }
  EXPECT_GT(intact, 170);
}

TEST(RtpTransport, Deterministic) {
  RtpTransport a({}, 5), b({}, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.send_tile(0.3, 0.5).lost_packets,
              b.send_tile(0.3, 0.5).lost_packets);
  }
}

TEST(RtpTransport, RejectsBadConfigAndInput) {
  RtpConfig bad;
  bad.packet_bits = 0.0;
  EXPECT_THROW(RtpTransport(bad, 1), std::invalid_argument);
  RtpConfig bad_loss;
  bad_loss.base_loss = 1.0;
  EXPECT_THROW(RtpTransport(bad_loss, 1), std::invalid_argument);
  RtpTransport transport({}, 1);
  EXPECT_THROW(transport.send_tile(-1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::net
