#include "src/content/server_cache.h"

#include <cstdint>
#include <list>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace cvr::content {
namespace {

/// Naive reference LRU (the pre-optimization std::list + map pairing);
/// the differential test below pins the cell-block cache to it.
class ReferenceLru {
 public:
  explicit ReferenceLru(ServerCacheConfig config) : config_(config) {}

  void advance(const GridCell& center) {
    const std::int32_t r = config_.window_radius_cells;
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      for (std::int32_t dy = -r; dy <= r; ++dy) {
        const GridCell cell{center.gx + dx, center.gy + dy};
        for (int tile = 0; tile < kTilesPerFrame; ++tile) {
          for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
            touch_or_insert(pack_video_id({cell, tile, q}));
          }
        }
      }
    }
  }

  bool lookup(VideoId id) {
    auto it = map_.find(id);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    ++misses_;
    touch_or_insert(id);
    return false;
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  void touch_or_insert(VideoId id) {
    auto it = map_.find(id);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(id);
    map_[id] = lru_.begin();
    if (map_.size() > config_.capacity_tiles) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  ServerCacheConfig config_;
  std::list<VideoId> lru_;
  std::unordered_map<VideoId, std::list<VideoId>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Random walks + random lookups, comparing hits/misses/size and the
/// full per-id hit/miss sequence against the reference after every
/// operation. Small capacities force heavy eviction churn, including
/// capacities below one cell block (the per-id stamp fallback).
void run_differential(std::size_t capacity, std::int32_t radius,
                      std::uint64_t seed, int ops) {
  ServerCacheConfig config;
  config.capacity_tiles = capacity;
  config.window_radius_cells = radius;
  ServerTileCache cache(config);
  ReferenceLru reference(config);
  cvr::Rng rng(seed);
  GridCell center{100, 100};
  for (int op = 0; op < ops; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.4) {
      center.gx += static_cast<std::int32_t>(rng.uniform_int(-1, 1));
      center.gy += static_cast<std::int32_t>(rng.uniform_int(-1, 1));
      cache.advance(center);
      reference.advance(center);
    } else {
      // Lookups around (and sometimes far from) the window: hits,
      // misses, and miss-then-insert transitions.
      const GridCell cell{
          center.gx + static_cast<std::int32_t>(rng.uniform_int(-6, 6)),
          center.gy + static_cast<std::int32_t>(rng.uniform_int(-6, 6))};
      const int tile = static_cast<int>(rng.uniform_int(0, kTilesPerFrame - 1));
      const QualityLevel q =
          static_cast<QualityLevel>(rng.uniform_int(1, kNumQualityLevels));
      const VideoId id = pack_video_id({cell, tile, q});
      ASSERT_EQ(cache.lookup(id), reference.lookup(id))
          << "op " << op << " id " << id;
    }
    ASSERT_EQ(cache.size(), reference.size()) << "op " << op;
    ASSERT_EQ(cache.hits(), reference.hits()) << "op " << op;
    ASSERT_EQ(cache.misses(), reference.misses()) << "op " << op;
  }
}

TEST(ServerTileCache, MatchesReferenceLruUnderChurn) {
  run_differential(/*capacity=*/500, /*radius=*/2, /*seed=*/1, /*ops=*/400);
  run_differential(/*capacity=*/2000, /*radius=*/3, /*seed=*/2, /*ops=*/300);
}

TEST(ServerTileCache, MatchesReferenceLruAtTinyCapacity) {
  // Below one cell block (4 tiles x 6 levels = 24 ids) the cache keeps
  // per-id stamps; eviction can land inside the cell being advanced.
  run_differential(/*capacity=*/7, /*radius=*/1, /*seed=*/3, /*ops=*/300);
  run_differential(/*capacity=*/24, /*radius=*/0, /*seed=*/4, /*ops=*/300);
  run_differential(/*capacity=*/25, /*radius=*/1, /*seed=*/5, /*ops=*/300);
}

TEST(ServerTileCache, AdvancePrefetchesWindow) {
  ServerCacheConfig config;
  config.window_radius_cells = 1;
  config.capacity_tiles = 100000;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  // 3x3 cells x 4 tiles x 6 levels = 216 entries.
  EXPECT_EQ(cache.size(), 9u * 4u * 6u);
  // Everything inside the window is a hit.
  EXPECT_TRUE(cache.lookup(pack_video_id({{9, 9}, 0, 1})));
  EXPECT_TRUE(cache.lookup(pack_video_id({{11, 11}, 3, 6})));
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(ServerTileCache, MissOutsideWindowThenCached) {
  ServerCacheConfig config;
  config.window_radius_cells = 1;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  const VideoId far = pack_video_id({{50, 50}, 0, 1});
  EXPECT_FALSE(cache.lookup(far));  // miss: simulated swap-in
  EXPECT_TRUE(cache.lookup(far));   // now resident
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ServerTileCache, LruEvictionAtCapacity) {
  ServerCacheConfig config;
  config.capacity_tiles = 24;  // exactly one cell's tiles (4 x 6)
  config.window_radius_cells = 0;
  ServerTileCache cache(config);
  cache.advance({0, 0});
  EXPECT_EQ(cache.size(), 24u);
  cache.advance({100, 100});  // displaces the first cell entirely
  EXPECT_EQ(cache.size(), 24u);
  EXPECT_FALSE(cache.lookup(pack_video_id({{0, 0}, 0, 1})));
}

TEST(ServerTileCache, MovementKeepsOverlapResident) {
  ServerCacheConfig config;
  config.window_radius_cells = 2;
  config.capacity_tiles = 1000;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  cache.advance({11, 10});  // one cell step: overlap stays hot
  EXPECT_TRUE(cache.lookup(pack_video_id({{11, 11}, 0, 3})));
  EXPECT_TRUE(cache.lookup(pack_video_id({{9, 10}, 0, 3})));
}

TEST(ServerTileCache, HitRateZeroWhenNoLookups) {
  ServerTileCache cache;
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(ServerTileCache, RejectsZeroCapacity) {
  ServerCacheConfig bad;
  bad.capacity_tiles = 0;
  EXPECT_THROW(ServerTileCache{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr::content
