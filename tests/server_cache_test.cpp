#include "src/content/server_cache.h"

#include <gtest/gtest.h>

namespace cvr::content {
namespace {

TEST(ServerTileCache, AdvancePrefetchesWindow) {
  ServerCacheConfig config;
  config.window_radius_cells = 1;
  config.capacity_tiles = 100000;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  // 3x3 cells x 4 tiles x 6 levels = 216 entries.
  EXPECT_EQ(cache.size(), 9u * 4u * 6u);
  // Everything inside the window is a hit.
  EXPECT_TRUE(cache.lookup(pack_video_id({{9, 9}, 0, 1})));
  EXPECT_TRUE(cache.lookup(pack_video_id({{11, 11}, 3, 6})));
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(ServerTileCache, MissOutsideWindowThenCached) {
  ServerCacheConfig config;
  config.window_radius_cells = 1;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  const VideoId far = pack_video_id({{50, 50}, 0, 1});
  EXPECT_FALSE(cache.lookup(far));  // miss: simulated swap-in
  EXPECT_TRUE(cache.lookup(far));   // now resident
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ServerTileCache, LruEvictionAtCapacity) {
  ServerCacheConfig config;
  config.capacity_tiles = 24;  // exactly one cell's tiles (4 x 6)
  config.window_radius_cells = 0;
  ServerTileCache cache(config);
  cache.advance({0, 0});
  EXPECT_EQ(cache.size(), 24u);
  cache.advance({100, 100});  // displaces the first cell entirely
  EXPECT_EQ(cache.size(), 24u);
  EXPECT_FALSE(cache.lookup(pack_video_id({{0, 0}, 0, 1})));
}

TEST(ServerTileCache, MovementKeepsOverlapResident) {
  ServerCacheConfig config;
  config.window_radius_cells = 2;
  config.capacity_tiles = 1000;
  ServerTileCache cache(config);
  cache.advance({10, 10});
  cache.advance({11, 10});  // one cell step: overlap stays hot
  EXPECT_TRUE(cache.lookup(pack_video_id({{11, 11}, 0, 3})));
  EXPECT_TRUE(cache.lookup(pack_video_id({{9, 10}, 0, 3})));
}

TEST(ServerTileCache, HitRateZeroWhenNoLookups) {
  ServerTileCache cache;
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(ServerTileCache, RejectsZeroCapacity) {
  ServerCacheConfig bad;
  bad.capacity_tiles = 0;
  EXPECT_THROW(ServerTileCache{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr::content
