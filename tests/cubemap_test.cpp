#include "src/content/cubemap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace cvr::content {
namespace {

using cvr::motion::FovSpec;
using cvr::motion::Pose;

TEST(Cubemap, AxisDirectionsHitExpectedFaces) {
  EXPECT_EQ(project_cubemap(0.0, 0.0).face, CubeFace::kFront);
  EXPECT_EQ(project_cubemap(90.0, 0.0).face, CubeFace::kRight);
  EXPECT_EQ(project_cubemap(180.0, 0.0).face, CubeFace::kBack);
  EXPECT_EQ(project_cubemap(-180.0, 0.0).face, CubeFace::kBack);
  EXPECT_EQ(project_cubemap(-90.0, 0.0).face, CubeFace::kLeft);
  EXPECT_EQ(project_cubemap(0.0, 90.0).face, CubeFace::kUp);
  EXPECT_EQ(project_cubemap(0.0, -90.0).face, CubeFace::kDown);
}

TEST(Cubemap, FaceCentersProjectToOrigin) {
  for (double yaw : {0.0, 90.0, 180.0, -90.0}) {
    const CubeCoord c = project_cubemap(yaw, 0.0);
    EXPECT_NEAR(c.u, 0.0, 1e-12) << yaw;
    EXPECT_NEAR(c.v, 0.0, 1e-12) << yaw;
  }
}

TEST(Cubemap, CoordinatesBounded) {
  cvr::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const CubeCoord c = rng.uniform() < 0.5
                            ? project_cubemap(rng.uniform(-180.0, 180.0),
                                              rng.uniform(-90.0, 90.0))
                            : project_cubemap(rng.uniform(-180.0, 180.0),
                                              rng.uniform(-89.0, 89.0));
    EXPECT_GE(c.u, -1.0 - 1e-12);
    EXPECT_LE(c.u, 1.0 + 1e-12);
    EXPECT_GE(c.v, -1.0 - 1e-12);
    EXPECT_LE(c.v, 1.0 + 1e-12);
  }
}

TEST(Cubemap, ProjectUnprojectRoundTrip) {
  cvr::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double yaw = rng.uniform(-180.0, 180.0);
    const double pitch = rng.uniform(-89.0, 89.0);
    const auto back = unproject_cubemap(project_cubemap(yaw, pitch));
    EXPECT_NEAR(back[0], yaw, 1e-9) << yaw << " " << pitch;
    EXPECT_NEAR(back[1], pitch, 1e-9) << yaw << " " << pitch;
  }
}

FovSpec narrow() {
  FovSpec spec;
  spec.horizontal_deg = 40.0;
  spec.vertical_deg = 40.0;
  spec.margin_deg = 5.0;
  return spec;
}

TEST(CubemapFaces, FaceCenterViewNeedsOneFace) {
  Pose view;  // yaw 0, pitch 0: centre of the front face
  const auto faces = faces_for_view(narrow(), view);
  EXPECT_EQ(faces, (std::vector<int>{static_cast<int>(CubeFace::kFront)}));
}

TEST(CubemapFaces, EdgeViewNeedsTwoFaces) {
  Pose view;
  view.yaw = 45.0;  // front/right edge
  const auto faces = faces_for_view(narrow(), view);
  EXPECT_EQ(faces, (std::vector<int>{static_cast<int>(CubeFace::kFront),
                                     static_cast<int>(CubeFace::kRight)}));
}

TEST(CubemapFaces, CornerViewNeedsThreeFaces) {
  Pose view;
  view.yaw = 45.0;
  view.pitch = 45.0;  // front/right/up corner (cube corner at ~35.26 deg)
  const auto faces = faces_for_view(narrow(), view);
  EXPECT_EQ(faces.size(), 3u);
}

TEST(CubemapFaces, AntimeridianHandled) {
  Pose view;
  view.yaw = 179.0;
  const auto faces = faces_for_view(narrow(), view);
  EXPECT_EQ(faces, (std::vector<int>{static_cast<int>(CubeFace::kBack)}));
}

TEST(CubemapFaces, PoleViewSelectsUpFace) {
  Pose view;
  view.pitch = 85.0;
  const auto faces = faces_for_view(narrow(), view);
  EXPECT_TRUE(std::find(faces.begin(), faces.end(),
                        static_cast<int>(CubeFace::kUp)) != faces.end());
}

TEST(CubemapFaces, DeliveredCoversOwnFov) {
  // Self-coverage property across a dense view sweep.
  FovSpec spec;
  spec.margin_deg = 10.0;
  for (int yi = 0; yi < 24; ++yi) {
    for (int pi = 0; pi < 11; ++pi) {
      Pose view;
      view.yaw = -180.0 + 15.0 * yi;
      view.pitch = -75.0 + 15.0 * pi;
      const auto delivered = faces_for_view(spec, view);
      EXPECT_TRUE(faces_cover(delivered, spec, view))
          << view.yaw << " " << view.pitch;
    }
  }
}

TEST(CubemapFaces, MissingFaceFailsCoverage) {
  Pose view;
  view.yaw = 45.0;  // needs front + right
  const FovSpec spec = narrow();
  EXPECT_FALSE(faces_cover({static_cast<int>(CubeFace::kFront)}, spec, view));
  EXPECT_TRUE(faces_cover({static_cast<int>(CubeFace::kFront),
                           static_cast<int>(CubeFace::kRight)},
                          spec, view));
}

TEST(CubemapFaces, WideWindowNeverExceedsSixFaces) {
  FovSpec wide;
  wide.horizontal_deg = 200.0;
  wide.vertical_deg = 160.0;
  wide.margin_deg = 30.0;
  Pose view;
  view.yaw = 10.0;
  view.pitch = 10.0;
  const auto faces = faces_for_view(wide, view);
  EXPECT_LE(faces.size(), 6u);
  EXPECT_GE(faces.size(), 4u);
}

}  // namespace
}  // namespace cvr::content
