#include "src/proto/messages.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::proto {
namespace {

content::VideoId vid(int n, content::QualityLevel q = 3) {
  return content::pack_video_id({{n, n + 1}, n % 4, q});
}

TEST(Messages, PoseUpdateRoundTrip) {
  PoseUpdate message;
  message.user = 7;
  message.slot = 123456789ull;
  message.pose.x = 1.25;
  message.pose.yaw = -123.5;
  message.pose.pitch = 42.0;
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kPoseUpdate);
  EXPECT_EQ(decode_pose_update(wire), message);
}

TEST(Messages, DeliveryAckRoundTrip) {
  DeliveryAck message;
  message.user = 3;
  message.slot = 42;
  message.tiles = {vid(1), vid(2, 6), vid(3, 1)};
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kDeliveryAck);
  EXPECT_EQ(decode_delivery_ack(wire), message);
}

TEST(Messages, ReleaseAckRoundTripEmpty) {
  ReleaseAck message;
  message.user = 1;
  message.slot = 9;
  const Buffer wire = encode(message);
  EXPECT_EQ(decode_release_ack(wire), message);
}

TEST(Messages, TileHeaderRoundTrip) {
  TileHeader message;
  message.video_id = vid(5, 4);
  message.packet_index = 3;
  message.packet_count = 17;
  message.slot = 1000;
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kTileHeader);
  EXPECT_EQ(decode_tile_header(wire), message);
}

TEST(Messages, TileHeaderInvariantEnforced) {
  TileHeader bad;
  bad.video_id = vid(1);
  bad.packet_index = 5;
  bad.packet_count = 5;
  EXPECT_THROW(encode(bad), std::invalid_argument);
}

TEST(Messages, WrongTypeDecodingThrows) {
  PoseUpdate pose;
  const Buffer wire = encode(pose);
  EXPECT_THROW(decode_delivery_ack(wire), std::runtime_error);
  EXPECT_THROW(decode_tile_header(wire), std::runtime_error);
}

TEST(Messages, CorruptedWireDetected) {
  DeliveryAck message;
  message.tiles = {vid(1)};
  Buffer wire = encode(message);
  wire[wire.size() / 2] ^= 0xFF;
  EXPECT_THROW(decode_delivery_ack(wire), std::runtime_error);
}

TEST(Messages, TrailingBytesRejected) {
  PoseUpdate message;
  Buffer wire = encode(message);
  wire.push_back(0);  // junk after the frame
  EXPECT_THROW(decode_pose_update(wire), std::runtime_error);
}

TEST(Messages, InvalidTileIdRejected) {
  // Hand-craft a delivery ACK whose tile id has quality level 0.
  Buffer payload;
  Writer writer(payload);
  writer.u8(static_cast<std::uint8_t>(MessageType::kDeliveryAck));
  writer.u32(1);
  writer.u64(1);
  writer.u32(1);
  writer.u64(0);  // level bits = 0: invalid
  const Buffer wire = frame(payload);
  EXPECT_THROW(decode_delivery_ack(wire), std::runtime_error);
}

TEST(Messages, PeekUnknownTagThrows) {
  Buffer payload;
  Writer writer(payload);
  writer.u8(99);
  const Buffer wire = frame(payload);
  EXPECT_THROW(peek_type(wire), std::runtime_error);
}

TEST(Messages, ConnectRequestRoundTrip) {
  ConnectRequest message;
  message.session = 0xDEADBEEFull;
  message.slot = 77;
  message.qos_ms = 18.5;
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kConnectRequest);
  EXPECT_EQ(decode_connect_request(wire), message);
}

TEST(Messages, ConnectRequestQosValidated) {
  ConnectRequest bad;
  bad.qos_ms = 0.0;
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad.qos_ms = -3.0;
  EXPECT_THROW(encode(bad), std::invalid_argument);

  // Hand-craft a frame smuggling a non-positive budget past the encoder.
  Buffer payload;
  Writer writer(payload);
  writer.u8(static_cast<std::uint8_t>(MessageType::kConnectRequest));
  writer.u64(1);
  writer.u64(1);
  writer.f64(-1.0);
  EXPECT_THROW(decode_connect_request(frame(payload)), std::runtime_error);
}

TEST(Messages, AdmitResponseRoundTrip) {
  AdmitResponse message;
  message.session = 42;
  message.slot = 9001;
  message.decision = WireAdmission::kDegrade;
  message.level_cap = 1;
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kAdmitResponse);
  EXPECT_EQ(decode_admit_response(wire), message);
}

TEST(Messages, AdmitResponseConsistencyEnforced) {
  AdmitResponse reject_with_levels;
  reject_with_levels.decision = WireAdmission::kReject;
  reject_with_levels.level_cap = 3;
  // The encoder only checks ranges; the decoder owns cross-field
  // consistency (a peer could craft any byte pair).
  EXPECT_THROW(decode_admit_response(encode(reject_with_levels)),
               std::runtime_error);

  AdmitResponse admit_without_levels;
  admit_without_levels.decision = WireAdmission::kAdmit;
  admit_without_levels.level_cap = 0;
  EXPECT_THROW(decode_admit_response(encode(admit_without_levels)),
               std::runtime_error);

  AdmitResponse cap_too_high;
  cap_too_high.decision = WireAdmission::kAdmit;
  cap_too_high.level_cap = content::kNumQualityLevels + 1;
  EXPECT_THROW(encode(cap_too_high), std::invalid_argument);
}

TEST(Messages, DisconnectNoticeRoundTrip) {
  DisconnectNotice message;
  message.session = 31337;
  message.slot = 5;
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kDisconnectNotice);
  EXPECT_EQ(decode_disconnect_notice(wire), message);
}

UserHandoff sample_handoff() {
  UserHandoff message;
  message.user = 4;
  message.slot = 321;
  message.delta_hits = 17.0;
  message.delta_count = 40;
  message.base_hits = 20.5;
  message.base_count = 40;
  message.qbar_sum = 123.25;
  message.qbar_slots = 64;
  message.bandwidth_mbps = 47.5;
  message.bandwidth_observations = 300;
  message.pose = {1.0, -2.0, 0.5, 10.0, -5.0, 0.25};
  message.pose_slot = 320;
  message.has_pose = true;
  message.safe_mode = true;
  message.pose_stale = false;
  message.transmit_fraction = 0.625;
  return message;
}

TEST(Messages, UserHandoffRoundTrip) {
  const UserHandoff message = sample_handoff();
  const Buffer wire = encode(message);
  EXPECT_EQ(peek_type(wire), MessageType::kUserHandoff);
  EXPECT_EQ(decode_user_handoff(wire), message);
  // Canonical: re-encoding reproduces the bytes.
  EXPECT_EQ(encode(decode_user_handoff(wire)), wire);
  // The all-defaults frame (a cold user) is valid too.
  const UserHandoff cold;
  EXPECT_EQ(decode_user_handoff(encode(cold)), cold);
}

TEST(Messages, UserHandoffCrossFieldInvariantsEnforcedOnEncode) {
  UserHandoff bad = sample_handoff();
  bad.delta_hits = 41.0;  // exceeds delta_count
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.qbar_slots = 0;  // qbar_sum without slots
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.qbar_sum = 64.0 * 6.0 + 1.0;  // above the level ceiling
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.bandwidth_mbps = -1.0;
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.transmit_fraction = 1.5;
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.pose.yaw = std::numeric_limits<double>::infinity();
  EXPECT_THROW(encode(bad), std::invalid_argument);
  bad = sample_handoff();
  bad.has_pose = false;  // phantom pose state left behind
  EXPECT_THROW(encode(bad), std::invalid_argument);
}

TEST(Messages, UserHandoffHostileBytesRejectedOnDecode) {
  const Buffer wire = encode(sample_handoff());
  // Corrupt one raw byte: the CRC catches it.
  Buffer flipped = wire;
  flipped[10] ^= 0xFF;
  EXPECT_THROW(decode_user_handoff(flipped), std::runtime_error);
  // Wrong tag: a PoseUpdate frame is not a handoff.
  EXPECT_THROW(decode_user_handoff(encode(PoseUpdate{})), std::runtime_error);

  // Unknown flag bits must be rejected even under a *correct* CRC:
  // unframe the payload, set flags bit 3 (the byte sits just before the
  // trailing 8-byte transmit_fraction), and re-frame.
  Reader reader(wire);
  Buffer payload = unframe(reader);
  payload[payload.size() - 9] |= 0x08;
  EXPECT_THROW(decode_user_handoff(frame(payload)), std::runtime_error);

  // Same trick with a field-level violation: a transmit_fraction above
  // 1 under a valid envelope trips the decode-side range check.
  Reader reader2(wire);
  Buffer payload2 = unframe(reader2);
  payload2.resize(payload2.size() - 8);  // drop the trailing f64
  Writer tail(payload2);
  tail.f64(2.0);
  EXPECT_THROW(decode_user_handoff(frame(payload2)), std::runtime_error);
}

TEST(Messages, RandomisedRoundTripSweep) {
  cvr::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    DeliveryAck message;
    message.user = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    message.slot = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    const int count = static_cast<int>(rng.uniform_int(0, 12));
    for (int k = 0; k < count; ++k) {
      message.tiles.push_back(
          vid(static_cast<int>(rng.uniform_int(0, 500)),
              static_cast<content::QualityLevel>(rng.uniform_int(1, 6))));
    }
    EXPECT_EQ(decode_delivery_ack(encode(message)), message);
  }
}

}  // namespace
}  // namespace cvr::proto
