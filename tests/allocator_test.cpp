#include "src/core/allocator.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::make_grid_user;

SlotProblem two_user_problem() {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_grid_user(50.0));
  problem.users.push_back(make_grid_user(25.0));
  problem.server_bandwidth = 40.0;
  return problem;
}

TEST(Evaluate, SumsPerUserH) {
  const SlotProblem problem = two_user_problem();
  // alpha = beta = 0, delta = 1 -> h(q) = q.
  EXPECT_DOUBLE_EQ(evaluate(problem, {3, 5}), 8.0);
  EXPECT_DOUBLE_EQ(evaluate(problem, {1, 1}), 2.0);
}

TEST(Evaluate, SizeMismatchThrows) {
  const SlotProblem problem = two_user_problem();
  EXPECT_THROW(evaluate(problem, {1}), std::invalid_argument);
}

TEST(TotalRate, SumsSelectedRates) {
  const SlotProblem problem = two_user_problem();
  EXPECT_DOUBLE_EQ(total_rate(problem, {1, 1}), 20.0);
  EXPECT_DOUBLE_EQ(total_rate(problem, {2, 3}), 15.0 + 22.0);
}

TEST(ServerFeasible, ChecksConstraint6) {
  const SlotProblem problem = two_user_problem();
  EXPECT_TRUE(server_feasible(problem, {1, 1}));       // 20 <= 40
  EXPECT_TRUE(server_feasible(problem, {2, 3}));       // 37 <= 40
  EXPECT_FALSE(server_feasible(problem, {3, 3}));      // 44 > 40
}

TEST(UserFeasible, ChecksConstraint7) {
  const auto user = make_grid_user(25.0);
  EXPECT_TRUE(user_feasible(user, 1));
  EXPECT_TRUE(user_feasible(user, 3));   // 22 <= 25
  EXPECT_FALSE(user_feasible(user, 4));  // 31 > 25
}

TEST(UserFeasible, BoundaryWithinEpsilon) {
  const auto user = make_grid_user(22.0);
  EXPECT_TRUE(user_feasible(user, 3));  // exactly at the cap
}

TEST(AllocationFeasible, MirrorsAllocatorContract) {
  const SlotProblem problem = two_user_problem();
  EXPECT_TRUE(allocation_feasible(problem, {1, 1}));
  EXPECT_TRUE(allocation_feasible(problem, {2, 3}));   // 37 <= 40, caps ok
  EXPECT_FALSE(allocation_feasible(problem, {3, 3}));  // 44 > 40
  EXPECT_FALSE(allocation_feasible(problem, {2, 4}));  // user 2's cap is 25
  EXPECT_FALSE(allocation_feasible(problem, {1}));     // wrong arity
  EXPECT_FALSE(allocation_feasible(problem, {0, 1}));  // invalid level
}

TEST(AllocationFeasible, AllOnesAlwaysAccepted) {
  // The mandatory minimum is allowed even when it violates the budget —
  // exactly the Allocator base-class contract.
  SlotProblem problem = two_user_problem();
  problem.server_bandwidth = 5.0;  // below the all-ones rate of 20
  EXPECT_TRUE(allocation_feasible(problem, {1, 1}));
  EXPECT_FALSE(allocation_feasible(problem, {1, 2}));
}

TEST(AllocationFeasible, BudgetBoundaryWithinEpsilon) {
  SlotProblem problem = two_user_problem();
  problem.server_bandwidth = 37.0;  // exactly the {2, 3} rate
  EXPECT_TRUE(allocation_feasible(problem, {2, 3}));
  problem.server_bandwidth = 37.0 - 1e-10;  // inside kFeasibilityEpsilon
  EXPECT_TRUE(allocation_feasible(problem, {2, 3}));
  problem.server_bandwidth = 37.0 - 1e-6;  // outside
  EXPECT_FALSE(allocation_feasible(problem, {2, 3}));
}

}  // namespace
}  // namespace cvr::core
