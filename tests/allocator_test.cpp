#include "src/core/allocator.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::make_user;

SlotProblem two_user_problem() {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_user({10, 15, 22, 31, 44, 60},
                                    {0, 0, 0, 0, 0, 0}, 50.0));
  problem.users.push_back(make_user({10, 15, 22, 31, 44, 60},
                                    {0, 0, 0, 0, 0, 0}, 25.0));
  problem.server_bandwidth = 40.0;
  return problem;
}

TEST(Evaluate, SumsPerUserH) {
  const SlotProblem problem = two_user_problem();
  // alpha = beta = 0, delta = 1 -> h(q) = q.
  EXPECT_DOUBLE_EQ(evaluate(problem, {3, 5}), 8.0);
  EXPECT_DOUBLE_EQ(evaluate(problem, {1, 1}), 2.0);
}

TEST(Evaluate, SizeMismatchThrows) {
  const SlotProblem problem = two_user_problem();
  EXPECT_THROW(evaluate(problem, {1}), std::invalid_argument);
}

TEST(TotalRate, SumsSelectedRates) {
  const SlotProblem problem = two_user_problem();
  EXPECT_DOUBLE_EQ(total_rate(problem, {1, 1}), 20.0);
  EXPECT_DOUBLE_EQ(total_rate(problem, {2, 3}), 15.0 + 22.0);
}

TEST(ServerFeasible, ChecksConstraint6) {
  const SlotProblem problem = two_user_problem();
  EXPECT_TRUE(server_feasible(problem, {1, 1}));       // 20 <= 40
  EXPECT_TRUE(server_feasible(problem, {2, 3}));       // 37 <= 40
  EXPECT_FALSE(server_feasible(problem, {3, 3}));      // 44 > 40
}

TEST(UserFeasible, ChecksConstraint7) {
  const auto user = make_user({10, 15, 22, 31, 44, 60}, {0, 0, 0, 0, 0, 0},
                              25.0);
  EXPECT_TRUE(user_feasible(user, 1));
  EXPECT_TRUE(user_feasible(user, 3));   // 22 <= 25
  EXPECT_FALSE(user_feasible(user, 4));  // 31 > 25
}

TEST(UserFeasible, BoundaryWithinEpsilon) {
  const auto user = make_user({10, 15, 22, 31, 44, 60}, {0, 0, 0, 0, 0, 0},
                              22.0);
  EXPECT_TRUE(user_feasible(user, 3));  // exactly at the cap
}

}  // namespace
}  // namespace cvr::core
