#include "src/report/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace cvr::report {
namespace {

sim::UserOutcome outcome(double qoe, double quality) {
  sim::UserOutcome o;
  o.avg_qoe = qoe;
  o.avg_quality = quality;
  o.avg_level = quality + 0.3;
  o.avg_delay_ms = 5.0;
  o.variance = 0.5;
  o.prediction_accuracy = 0.9;
  o.fps = 60.0;
  return o;
}

std::vector<sim::ArmResult> two_arms() {
  sim::ArmResult a, b;
  a.algorithm = "dv-greedy";
  a.outcomes = {outcome(2.0, 3.0), outcome(2.5, 3.5)};
  b.algorithm = "firefly";
  b.outcomes = {outcome(1.0, 3.2)};
  return {a, b};
}

TEST(Report, OutcomesTableShape) {
  const CsvTable table = outcomes_table(two_arms());
  EXPECT_EQ(table.header.size(), 8u);
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 0.0);  // arm index
  EXPECT_DOUBLE_EQ(table.rows[2][0], 1.0);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 2.5);  // qoe
}

TEST(Report, CdfTableMonotone) {
  const CsvTable table = cdf_table(two_arms(), "qoe", 11);
  ASSERT_FALSE(table.rows.empty());
  double prev_p = -1.0;
  for (const auto& row : table.rows) {
    if (row[0] != 0.0) break;  // first arm only
    EXPECT_GE(row[2], prev_p);
    prev_p = row[2];
  }
}

TEST(Report, CdfTableUnknownMetricThrows) {
  EXPECT_THROW(cdf_table(two_arms(), "nope"), std::invalid_argument);
}

TEST(Report, CdfTableAllMetricsWork) {
  for (const char* metric : {"qoe", "quality", "delay_ms", "variance"}) {
    EXPECT_FALSE(cdf_table(two_arms(), metric).rows.empty()) << metric;
  }
}

TEST(Report, SummaryMarkdownContainsArmsAndMeans) {
  const std::string md = summary_markdown(two_arms());
  EXPECT_NE(md.find("dv-greedy"), std::string::npos);
  EXPECT_NE(md.find("firefly"), std::string::npos);
  EXPECT_NE(md.find("2.25"), std::string::npos);  // mean of 2.0 and 2.5
  EXPECT_NE(md.find("| algorithm |"), std::string::npos);
}

TEST(Report, TimingTableEmptyWithoutTimings) {
  EXPECT_TRUE(timing_table(two_arms()).rows.empty());
  // No timings -> no timing column and no timing CSV.
  EXPECT_EQ(summary_markdown(two_arms()).find("wall"), std::string::npos);
}

TEST(Report, TimingSurfacesWhenRecorded) {
  auto arms = two_arms();
  arms[0].run_wall_ms = {10.0, 30.0};
  arms[1].run_wall_ms = {5.0};
  const CsvTable table = timing_table(arms);
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.header.size(), 3u);
  EXPECT_DOUBLE_EQ(table.rows[1][2], 30.0);
  EXPECT_DOUBLE_EQ(table.rows[2][0], 1.0);  // arm index
  EXPECT_DOUBLE_EQ(arms[0].total_wall_ms(), 40.0);
  EXPECT_DOUBLE_EQ(arms[0].mean_wall_ms(), 20.0);
  EXPECT_NE(summary_markdown(arms).find("mean run wall (ms)"),
            std::string::npos);

  const std::string prefix =
      (std::filesystem::temp_directory_path() / "cvr_report_timing_test")
          .string();
  const auto written = write_report(arms, prefix);
  ASSERT_EQ(written.size(), 6u);
  EXPECT_NE(written.back().find("_timing.csv"), std::string::npos);
  for (const auto& path : written) std::remove(path.c_str());
}

TEST(Report, WriteReportCreatesFiles) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "cvr_report_test").string();
  const auto written = write_report(two_arms(), prefix);
  ASSERT_EQ(written.size(), 5u);
  for (const auto& path : written) {
    const CsvTable back = read_csv_file(path);
    EXPECT_FALSE(back.rows.empty()) << path;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace cvr::report
