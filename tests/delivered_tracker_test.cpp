#include "src/content/delivered_tracker.h"

#include <gtest/gtest.h>

namespace cvr::content {
namespace {

VideoId id(int n) { return pack_video_id({{n, 0}, 0, 1}); }

TEST(DeliveredTileTracker, FreshTileNeedsTransmit) {
  DeliveredTileTracker tracker;
  EXPECT_TRUE(tracker.needs_transmit(id(1)));
}

TEST(DeliveredTileTracker, DeliveredTileSkipped) {
  // Section V: "the server records the tiles that have already been
  // delivered and will not transmit the same tiles again".
  DeliveredTileTracker tracker;
  tracker.mark_delivered(id(1));
  EXPECT_FALSE(tracker.needs_transmit(id(1)));
  EXPECT_EQ(tracker.delivered_count(), 1u);
}

TEST(DeliveredTileTracker, ReleaseMakesRetransmittable) {
  // Section V: "the server will retransmit the tiles if they are
  // requested again" after a release ACK.
  DeliveredTileTracker tracker;
  tracker.mark_delivered(id(1));
  tracker.mark_delivered(id(2));
  tracker.mark_released({id(1)});
  EXPECT_TRUE(tracker.needs_transmit(id(1)));
  EXPECT_FALSE(tracker.needs_transmit(id(2)));
}

TEST(DeliveredTileTracker, FilterNeededKeepsOrder) {
  DeliveredTileTracker tracker;
  tracker.mark_delivered(id(2));
  const auto needed = tracker.filter_needed({id(1), id(2), id(3)});
  ASSERT_EQ(needed.size(), 2u);
  EXPECT_EQ(needed[0], id(1));
  EXPECT_EQ(needed[1], id(3));
}

TEST(DeliveredTileTracker, ReleaseUnknownIsNoop) {
  DeliveredTileTracker tracker;
  tracker.mark_released({id(9)});
  EXPECT_EQ(tracker.delivered_count(), 0u);
}

TEST(DeliveredTileTracker, DuplicateDeliveryIdempotent) {
  DeliveredTileTracker tracker;
  tracker.mark_delivered(id(1));
  tracker.mark_delivered(id(1));
  EXPECT_EQ(tracker.delivered_count(), 1u);
}

}  // namespace
}  // namespace cvr::content
