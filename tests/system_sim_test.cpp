#include "src/system/system_sim.h"

#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"

namespace cvr::system {
namespace {

SystemSimConfig tiny(std::size_t users = 3, std::size_t slots = 300) {
  SystemSimConfig config = setup_one_router(users);
  config.slots = slots;
  return config;
}

TEST(SetupHelpers, MatchPaperParameters) {
  const SystemSimConfig one = setup_one_router();
  EXPECT_EQ(one.users, 8u);
  EXPECT_EQ(one.routers, 1u);
  EXPECT_DOUBLE_EQ(one.router_aggregate_mbps, 400.0);
  EXPECT_FALSE(one.channel.interference);
  EXPECT_DOUBLE_EQ(one.server.params.alpha, 0.1);
  EXPECT_DOUBLE_EQ(one.server.params.beta, 0.5);

  const SystemSimConfig two = setup_two_routers();
  EXPECT_EQ(two.users, 15u);
  EXPECT_EQ(two.routers, 2u);
  EXPECT_TRUE(two.channel.interference);
  // 800 Mbps total across the two bridged routers.
  EXPECT_DOUBLE_EQ(two.router_aggregate_mbps * 2, 800.0);
}

TEST(SystemSim, OutcomePerUserWithFps) {
  const SystemSim sim(tiny());
  core::DvGreedyAllocator alloc;
  const auto outcomes = sim.run(alloc, 0);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    EXPECT_GE(o.fps, 0.0);
    EXPECT_LE(o.fps, 66.1);
    EXPECT_GE(o.avg_quality, 0.0);
    EXPECT_LE(o.avg_quality, 6.0);
    EXPECT_GE(o.avg_delay_ms, 0.0);
  }
}

TEST(SystemSim, Deterministic) {
  const SystemSim sim(tiny());
  core::DvGreedyAllocator a, b;
  const auto x = sim.run(a, 1);
  const auto y = sim.run(b, 1);
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
    EXPECT_DOUBLE_EQ(x[u].fps, y[u].fps);
  }
}

TEST(SystemSim, RepeatsDiffer) {
  const SystemSim sim(tiny());
  core::DvGreedyAllocator alloc;
  const auto x = sim.run(alloc, 0);
  const auto y = sim.run(alloc, 1);
  EXPECT_NE(x[0].avg_qoe, y[0].avg_qoe);
}

TEST(SystemSim, OurAllocatorReachesHighFps) {
  // Fig. 7c: the DV-greedy system sustains ~60 FPS.
  SystemSimConfig config = tiny(4, 600);
  const SystemSim sim(config);
  core::DvGreedyAllocator alloc;
  double fps = 0.0;
  for (const auto& o : sim.run(alloc, 0)) fps += o.fps;
  fps /= 4.0;
  EXPECT_GT(fps, 50.0);
}

TEST(SystemSim, CompareRunsArms) {
  const SystemSim sim(tiny(2, 200));
  core::DvGreedyAllocator ours;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &firefly}, 2);
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_EQ(arms[0].outcomes.size(), 4u);
}

TEST(SystemSim, RejectsBadConfig) {
  SystemSimConfig bad = tiny();
  bad.users = 0;
  EXPECT_THROW(SystemSim{bad}, std::invalid_argument);
  SystemSimConfig bad2 = tiny();
  bad2.throttle_pool_mbps.clear();
  EXPECT_THROW(SystemSim{bad2}, std::invalid_argument);
}

TEST(SystemSim, TwoRouterSetupRunsAllUsers) {
  SystemSimConfig config = setup_two_routers(5);
  config.slots = 200;
  const SystemSim sim(config);
  core::DvGreedyAllocator alloc;
  EXPECT_EQ(sim.run(alloc, 0).size(), 5u);
}

TEST(SystemSim, InterferenceHurtsEveryone) {
  // Same seed/users: the two-router interference world must yield a
  // lower mean QoE than the quiet single-router world scaled to the same
  // per-router population.
  SystemSimConfig quiet = tiny(4, 500);
  SystemSimConfig noisy = quiet;
  noisy.channel.interference = true;
  core::DvGreedyAllocator a, b;
  double q = 0.0, n = 0.0;
  for (const auto& o : SystemSim(quiet).run(a, 0)) q += o.avg_qoe;
  for (const auto& o : SystemSim(noisy).run(b, 0)) n += o.avg_qoe;
  EXPECT_LT(n, q);
}

TEST(SystemSim, DvGreedyBeatsFireflyOnQoe) {
  // The headline ordering of Fig. 7a, checked at reduced scale.
  SystemSimConfig config = tiny(4, 500);
  const SystemSim sim(config);
  core::DvGreedyAllocator ours;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &firefly}, 2);
  EXPECT_GT(arms[0].mean_qoe(), arms[1].mean_qoe());
}

}  // namespace
}  // namespace cvr::system
