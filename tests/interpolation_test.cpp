#include <gtest/gtest.h>

#include "src/motion/pose.h"
#include "src/trace/network_trace.h"

namespace cvr {
namespace {

using motion::interpolate;
using motion::interpolate_degrees;
using motion::Pose;

TEST(InterpolateDegrees, Endpoints) {
  EXPECT_DOUBLE_EQ(interpolate_degrees(10.0, 50.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(interpolate_degrees(10.0, 50.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(interpolate_degrees(10.0, 50.0, 0.5), 30.0);
}

TEST(InterpolateDegrees, ShortestArcThroughWrap) {
  // 170 -> -170: shortest path crosses +-180 (20 degrees), not 340.
  EXPECT_DOUBLE_EQ(interpolate_degrees(170.0, -170.0, 0.5), 180.0 * -1.0);
  EXPECT_DOUBLE_EQ(interpolate_degrees(170.0, -170.0, 0.25), 175.0);
  EXPECT_DOUBLE_EQ(interpolate_degrees(170.0, -170.0, 0.75), -175.0);
}

TEST(InterpolateDegrees, ClampsT) {
  EXPECT_DOUBLE_EQ(interpolate_degrees(0.0, 10.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interpolate_degrees(0.0, 10.0, 2.0), 10.0);
}

TEST(InterpolatePose, PositionsLerp) {
  Pose a, b;
  a.x = 1.0;
  b.x = 3.0;
  a.y = -2.0;
  b.y = 2.0;
  const Pose mid = interpolate(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 2.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
}

TEST(InterpolatePose, YawTakesShortestArc) {
  Pose a, b;
  a.yaw = 175.0;
  b.yaw = -175.0;
  const Pose mid = interpolate(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.yaw, -180.0);
}

TEST(InterpolatePose, PitchStaysClamped) {
  Pose a, b;
  a.pitch = 80.0;
  b.pitch = 95.0;  // will be clamped by normalized()
  const Pose out = interpolate(a, b, 1.0);
  EXPECT_LE(out.pitch, 90.0);
}

TEST(InterpolatePose, EndpointsExact) {
  Pose a, b;
  a.x = 1.0;
  a.yaw = -30.0;
  b.x = 5.0;
  b.yaw = 140.0;
  EXPECT_EQ(interpolate(a, b, 0.0), a.normalized());
  EXPECT_EQ(interpolate(a, b, 1.0), b.normalized());
}

// ---------- TraceStats ----------

TEST(TraceStats, HandComputedValues) {
  const trace::NetworkTrace t("t", {{2.0, 40.0}, {2.0, 60.0}});
  const auto stats = trace::summarize_trace(t);
  EXPECT_DOUBLE_EQ(stats.duration_s, 4.0);
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_mbps, 50.0);
  EXPECT_DOUBLE_EQ(stats.std_mbps, 10.0);
  EXPECT_DOUBLE_EQ(stats.min_mbps, 40.0);
  EXPECT_DOUBLE_EQ(stats.max_mbps, 60.0);
  EXPECT_DOUBLE_EQ(stats.p50_mbps, 40.0);  // half the time at 40
  EXPECT_DOUBLE_EQ(stats.mean_dwell_s, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_dwell_s, 2.0);
}

TEST(TraceStats, TimeWeightingMatters) {
  // 9 s at 20 Mbps, 1 s at 120 Mbps: unweighted mean would be 70.
  const trace::NetworkTrace t("t", {{9.0, 20.0}, {1.0, 120.0}});
  const auto stats = trace::summarize_trace(t);
  EXPECT_DOUBLE_EQ(stats.mean_mbps, 30.0);
  EXPECT_DOUBLE_EQ(stats.p50_mbps, 20.0);
}

TEST(TraceStats, ConstantTraceHasZeroStd) {
  const trace::NetworkTrace t("t", {{5.0, 42.0}});
  const auto stats = trace::summarize_trace(t);
  EXPECT_DOUBLE_EQ(stats.std_mbps, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50_mbps, 42.0);
}

TEST(TraceStats, EmptyThrows) {
  trace::NetworkTrace empty;
  EXPECT_THROW(trace::summarize_trace(empty), std::invalid_argument);
}

}  // namespace
}  // namespace cvr
