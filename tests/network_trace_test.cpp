#include "src/trace/network_trace.h"

#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace cvr::trace {
namespace {

NetworkTrace make_simple() {
  return NetworkTrace("t", {{2.0, 40.0}, {3.0, 60.0}, {1.0, 20.0}});
}

TEST(NetworkTrace, DurationAndMean) {
  const NetworkTrace t = make_simple();
  EXPECT_DOUBLE_EQ(t.duration_s(), 6.0);
  // Time-weighted mean: (2*40 + 3*60 + 1*20) / 6.
  EXPECT_NEAR(t.mean_mbps(), 280.0 / 6.0, 1e-12);
}

TEST(NetworkTrace, BandwidthAtSegments) {
  const NetworkTrace t = make_simple();
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0.0), 40.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(1.99), 40.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(2.0), 60.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(4.999), 60.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(5.5), 20.0);
}

TEST(NetworkTrace, BandwidthWrapsAround) {
  const NetworkTrace t = make_simple();
  EXPECT_DOUBLE_EQ(t.bandwidth_at(6.0), 40.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(8.5), 60.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(-1.0), 20.0);  // negative wraps too
}

TEST(NetworkTrace, EmptyTraceThrowsOnQuery) {
  NetworkTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.bandwidth_at(0.0), std::logic_error);
  EXPECT_DOUBLE_EQ(t.mean_mbps(), 0.0);
}

TEST(NetworkTrace, RejectsNonPositiveDuration) {
  EXPECT_THROW(NetworkTrace("bad", {{0.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(NetworkTrace("bad", {{-1.0, 10.0}}), std::invalid_argument);
}

TEST(NetworkTrace, RejectsNegativeThroughput) {
  EXPECT_THROW(NetworkTrace("bad", {{1.0, -5.0}}), std::invalid_argument);
}

TEST(NetworkTrace, RejectsNonFiniteValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(NetworkTrace("bad", {{1.0, inf}}), std::invalid_argument);
  EXPECT_THROW(NetworkTrace("bad", {{1.0, nan}}), std::invalid_argument);
  EXPECT_THROW(NetworkTrace("bad", {{inf, 10.0}}), std::invalid_argument);
  EXPECT_THROW(NetworkTrace("bad", {{nan, 10.0}}), std::invalid_argument);
}

TEST(NetworkTrace, CsvWithInfRejectedEndToEnd) {
  // "inf" parses as a valid double in from_chars; the trace layer is
  // the backstop that keeps it out of the simulators.
  EXPECT_THROW(trace_from_csv("bad", "1.0,inf\n"), std::invalid_argument);
}

TEST(NetworkTrace, ClipBoundsThroughput) {
  NetworkTrace t("t", {{1.0, 5.0}, {1.0, 500.0}, {1.0, 50.0}});
  t.clip(20.0, 100.0);
  EXPECT_DOUBLE_EQ(t.segments()[0].mbps, 20.0);
  EXPECT_DOUBLE_EQ(t.segments()[1].mbps, 100.0);
  EXPECT_DOUBLE_EQ(t.segments()[2].mbps, 50.0);
}

TEST(NetworkTrace, ResampleTruncates) {
  const NetworkTrace t = make_simple();
  const NetworkTrace r = t.resampled_to(3.0);
  EXPECT_NEAR(r.duration_s(), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.bandwidth_at(0.5), 40.0);
  EXPECT_DOUBLE_EQ(r.bandwidth_at(2.5), 60.0);
}

TEST(NetworkTrace, ResampleExtendsByWrapping) {
  const NetworkTrace t = make_simple();
  const NetworkTrace r = t.resampled_to(13.0);
  EXPECT_NEAR(r.duration_s(), 13.0, 1e-9);
  // Second cycle starts at 6 s: same pattern.
  EXPECT_DOUBLE_EQ(r.bandwidth_at(6.5), 40.0);
  EXPECT_DOUBLE_EQ(r.bandwidth_at(12.5), 40.0);  // third cycle begins at 12
}

TEST(SlotMapper, SharesBandwidthAcrossSlots) {
  // Paper: consecutive slots share a segment's bandwidth until its
  // duration is used up.
  const NetworkTrace t("t", {{0.1, 30.0}, {0.1, 70.0}});
  const SlotMapper mapper(t, 0.015);
  // Slot starts: 0.000..0.090 -> 30; 0.105.. -> 70 (slot 7 starts 0.105).
  for (std::size_t s = 0; s <= 6; ++s) {
    EXPECT_DOUBLE_EQ(mapper.bandwidth_for_slot(s), 30.0) << s;
  }
  EXPECT_DOUBLE_EQ(mapper.bandwidth_for_slot(7), 70.0);
}

TEST(SlotMapper, SeriesMatchesPointQueries) {
  const NetworkTrace t = make_simple();
  const SlotMapper mapper(t);
  const auto series = mapper.series(100);
  ASSERT_EQ(series.size(), 100u);
  for (std::size_t s = 0; s < 100; ++s) {
    EXPECT_DOUBLE_EQ(series[s], mapper.bandwidth_for_slot(s));
  }
}

TEST(SlotMapper, RejectsEmptyTraceAndBadSlot) {
  NetworkTrace empty;
  EXPECT_THROW(SlotMapper{empty}, std::invalid_argument);
  const NetworkTrace t = make_simple();
  EXPECT_THROW(SlotMapper(t, 0.0), std::invalid_argument);
}

TEST(SlotMapper, WrapsPastTraceEnd) {
  const NetworkTrace t("t", {{0.03, 25.0}});
  const SlotMapper mapper(t, 0.015);
  EXPECT_DOUBLE_EQ(mapper.bandwidth_for_slot(0), 25.0);
  EXPECT_DOUBLE_EQ(mapper.bandwidth_for_slot(1000), 25.0);
}

}  // namespace
}  // namespace cvr::trace
