#include <gtest/gtest.h>

#include "src/trace/network_trace.h"

namespace cvr::trace {
namespace {

NetworkTrace base() {
  return NetworkTrace("base", {{2.0, 40.0}, {3.0, 60.0}});
}

TEST(Scaled, MultipliesThroughputOnly) {
  const NetworkTrace t = scaled(base(), 2.0);
  EXPECT_DOUBLE_EQ(t.duration_s(), 5.0);
  EXPECT_DOUBLE_EQ(t.segments()[0].mbps, 80.0);
  EXPECT_DOUBLE_EQ(t.segments()[1].mbps, 120.0);
  EXPECT_DOUBLE_EQ(t.mean_mbps(), 2.0 * base().mean_mbps());
}

TEST(Scaled, FractionalFactor) {
  const NetworkTrace t = scaled(base(), 0.5);
  EXPECT_DOUBLE_EQ(t.segments()[0].mbps, 20.0);
}

TEST(Scaled, RejectsNonPositive) {
  EXPECT_THROW(scaled(base(), 0.0), std::invalid_argument);
  EXPECT_THROW(scaled(base(), -1.0), std::invalid_argument);
}

TEST(Concatenated, PlaysInOrder) {
  const NetworkTrace a("a", {{1.0, 10.0}});
  const NetworkTrace b("b", {{1.0, 90.0}});
  const NetworkTrace ab = concatenated(a, b);
  EXPECT_DOUBLE_EQ(ab.duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(ab.bandwidth_at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(ab.bandwidth_at(1.5), 90.0);
}

TEST(Concatenated, RegimeChangeVisibleInStats) {
  const NetworkTrace ab =
      concatenated(NetworkTrace("a", {{10.0, 80.0}}),
                   NetworkTrace("b", {{10.0, 20.0}}));
  const auto stats = summarize_trace(ab);
  EXPECT_DOUBLE_EQ(stats.mean_mbps, 50.0);
  EXPECT_DOUBLE_EQ(stats.std_mbps, 30.0);
}

TEST(WithNoise, Deterministic) {
  const NetworkTrace a = with_noise(base(), 0.2, 7);
  const NetworkTrace b = with_noise(base(), 0.2, 7);
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].mbps, b.segments()[i].mbps);
  }
}

TEST(WithNoise, SeedsDiffer) {
  const NetworkTrace a = with_noise(base(), 0.2, 7);
  const NetworkTrace b = with_noise(base(), 0.2, 8);
  EXPECT_NE(a.segments()[0].mbps, b.segments()[0].mbps);
}

TEST(WithNoise, ZeroSigmaIsIdentity) {
  const NetworkTrace t = with_noise(base(), 0.0, 1);
  EXPECT_DOUBLE_EQ(t.segments()[0].mbps, 40.0);
  EXPECT_DOUBLE_EQ(t.segments()[1].mbps, 60.0);
}

TEST(WithNoise, StaysPositiveAndBoundedInPractice) {
  const NetworkTrace t = with_noise(base(), 0.3, 3);
  for (const auto& seg : t.segments()) {
    EXPECT_GT(seg.mbps, 0.0);
    EXPECT_LT(seg.mbps, 400.0);
  }
}

TEST(WithNoise, RejectsNegativeSigma) {
  EXPECT_THROW(with_noise(base(), -0.1, 1), std::invalid_argument);
}

TEST(Transforms, Compose) {
  const NetworkTrace t =
      with_noise(scaled(concatenated(base(), base()), 1.5), 0.1, 2);
  EXPECT_DOUBLE_EQ(t.duration_s(), 10.0);
  EXPECT_EQ(t.segments().size(), 4u);
}

}  // namespace
}  // namespace cvr::trace
