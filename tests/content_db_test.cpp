#include "src/content/content_db.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace cvr::content {
namespace {

TEST(ContentDb, ContainsSceneBounds) {
  const ContentDb db;
  EXPECT_TRUE(db.contains({0, 0}));
  EXPECT_TRUE(db.contains({199, 159}));
  EXPECT_FALSE(db.contains({200, 0}));
  EXPECT_FALSE(db.contains({0, 160}));
  EXPECT_FALSE(db.contains({-1, 0}));
}

TEST(ContentDb, ContentIdUniquePerCell) {
  const ContentDb db;
  EXPECT_NE(db.content_id({0, 0}), db.content_id({1, 0}));
  EXPECT_NE(db.content_id({0, 0}), db.content_id({0, 1}));
  EXPECT_EQ(db.content_id({5, 7}), db.content_id({5, 7}));
}

TEST(ContentDb, ContentIdThrowsOutsideScene) {
  const ContentDb db;
  EXPECT_THROW(db.content_id({-1, 0}), std::out_of_range);
}

TEST(ContentDb, FrameRateFunctionConvexEverywhere) {
  const ContentDb db;
  for (std::int32_t gx = 0; gx < 200; gx += 37) {
    for (std::int32_t gy = 0; gy < 160; gy += 29) {
      EXPECT_TRUE(db.frame_rate_function({gx, gy}).is_convex_increasing());
    }
  }
}

TEST(ContentDb, TileSizesSumToFrameSize) {
  const ContentDb db;
  const GridCell cell{10, 10};
  const auto f = db.frame_rate_function(cell);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    double tiles_total = 0.0;
    for (int tile = 0; tile < kTilesPerFrame; ++tile) {
      tiles_total += db.tile_size_megabits({cell, tile, q});
    }
    EXPECT_NEAR(tiles_total, cvr::slot_rate_to_megabits(f.rate(q)), 1e-9);
  }
}

TEST(ContentDb, TileWeightsSumToOne) {
  const ContentDb db;
  for (std::int32_t gx = 0; gx < 200; gx += 53) {
    for (std::int32_t gy = 0; gy < 160; gy += 41) {
      double total = 0.0;
      for (int tile = 0; tile < kTilesPerFrame; ++tile) {
        const double w = db.tile_weight({gx, gy}, tile);
        EXPECT_GT(w, 0.05);  // no degenerate tile
        EXPECT_LT(w, 0.60);
        total += w;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(ContentDb, TileWeightsVaryAcrossTilesAndCells) {
  const ContentDb db;
  // Within a frame the four weights are not all equal...
  EXPECT_NE(db.tile_weight({10, 10}, 0), db.tile_weight({10, 10}, 1));
  // ...and the same tile index differs across cells.
  EXPECT_NE(db.tile_weight({10, 10}, 0), db.tile_weight({11, 10}, 0));
}

TEST(ContentDb, TileWeightBadIndexThrows) {
  const ContentDb db;
  EXPECT_THROW(db.tile_weight({0, 0}, -1), std::out_of_range);
  EXPECT_THROW(db.tile_weight({0, 0}, 4), std::out_of_range);
}

TEST(ContentDb, TileSizeIncreasesWithLevel) {
  const ContentDb db;
  const GridCell cell{42, 99};
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    EXPECT_LT(db.tile_size_megabits({cell, 0, q}),
              db.tile_size_megabits({cell, 0, q + 1}));
  }
}

TEST(ContentDb, TileSizeBadIndexThrows) {
  const ContentDb db;
  EXPECT_THROW(db.tile_size_megabits({{0, 0}, 4, 1}), std::out_of_range);
  EXPECT_THROW(db.tile_size_megabits({{999, 0}, 0, 1}), std::out_of_range);
}

TEST(ContentDb, EntryCount) {
  ContentDbConfig config;
  config.grid_width = 10;
  config.grid_height = 5;
  const ContentDb db(config);
  EXPECT_EQ(db.entry_count(),
            10ull * 5ull * kTilesPerFrame * kNumQualityLevels);
}

TEST(ContentDb, StoreFootprintNearPaper) {
  // Section VI: "The content database capacity is about 171 GB."
  const ContentDb db;  // default 10 m x 8 m scene
  const double gb = db.estimated_store_gb();
  EXPECT_GT(gb, 100.0);
  EXPECT_LT(gb, 300.0);
}

TEST(ContentDb, RejectsBadConfig) {
  ContentDbConfig bad;
  bad.grid_width = 0;
  EXPECT_THROW(ContentDb{bad}, std::invalid_argument);
}

TEST(ContentDb, DeterministicAcrossInstances) {
  const ContentDb a;
  const ContentDb b;
  EXPECT_DOUBLE_EQ(a.tile_size_megabits({{7, 9}, 1, 4}),
                   b.tile_size_megabits({{7, 9}, 1, 4}));
}

}  // namespace
}  // namespace cvr::content
