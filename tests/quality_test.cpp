#include "src/content/quality.h"

#include <gtest/gtest.h>

namespace cvr::content {
namespace {

TEST(Quality, LevelValidity) {
  EXPECT_FALSE(is_valid_level(0));
  EXPECT_TRUE(is_valid_level(1));
  EXPECT_TRUE(is_valid_level(6));
  EXPECT_FALSE(is_valid_level(7));
  EXPECT_FALSE(is_valid_level(-1));
}

TEST(Quality, CrfMappingMatchesPaper) {
  // Section VI: CRF {15,19,23,27,31,35} <-> levels {6,5,4,3,2,1}.
  EXPECT_EQ(crf_for_level(1), 35);
  EXPECT_EQ(crf_for_level(2), 31);
  EXPECT_EQ(crf_for_level(3), 27);
  EXPECT_EQ(crf_for_level(4), 23);
  EXPECT_EQ(crf_for_level(5), 19);
  EXPECT_EQ(crf_for_level(6), 15);
}

TEST(Quality, CrfDecreasesWithLevel) {
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    EXPECT_GT(crf_for_level(q), crf_for_level(q + 1));
  }
}

TEST(Quality, LevelForCrfIsInverse) {
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    EXPECT_EQ(level_for_crf(crf_for_level(q)), q);
  }
}

TEST(Quality, UnknownCrfIsZero) {
  EXPECT_EQ(level_for_crf(0), 0);
  EXPECT_EQ(level_for_crf(22), 0);
  EXPECT_EQ(level_for_crf(100), 0);
}

}  // namespace
}  // namespace cvr::content
