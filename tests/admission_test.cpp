#include "src/system/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/content/rate_function.h"
#include "src/core/qoe.h"

namespace cvr::system {
namespace {

core::UserSlotContext candidate(double user_bandwidth = 60.0,
                                double delta = 0.9) {
  const content::CrfRateFunction f;
  return core::UserSlotContext::from_rate_function(f, user_bandwidth, delta,
                                                   0.0, 1.0);
}

int severity(AdmissionDecision decision) {
  return static_cast<int>(decision);
}

TEST(Admission, NamesAndWireConversionsRoundTrip) {
  for (const AdmissionDecision decision :
       {AdmissionDecision::kAdmit, AdmissionDecision::kDegrade,
        AdmissionDecision::kReject}) {
    EXPECT_EQ(from_wire(to_wire(decision)), decision);
  }
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kAdmit), "admit");
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kDegrade),
               "degrade");
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kReject), "reject");
}

TEST(Admission, ConfigValidation) {
  AdmissionPolicyConfig bad;
  bad.headroom_fraction = 0.0;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.headroom_fraction = 1.5;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.degrade_band = 1.0;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.degrade_band = -0.1;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
}

TEST(Admission, IdleServerAdmits) {
  const AdmissionController controller{AdmissionPolicyConfig{}};
  EXPECT_EQ(controller.decide(candidate(), /*mandatory=*/0.0,
                              /*bandwidth=*/400.0, /*active=*/0,
                              /*capacity=*/32, core::QoeParams{}),
            AdmissionDecision::kAdmit);
}

TEST(Admission, FullCapacityRejectsRegardlessOfBandwidth) {
  const AdmissionController controller{AdmissionPolicyConfig{}};
  EXPECT_EQ(controller.decide(candidate(), 0.0, 1e6, /*active=*/32,
                              /*capacity=*/32, core::QoeParams{}),
            AdmissionDecision::kReject);
}

// The three bands in one sweep. usable = 0.9 * 400 = 360; the candidate
// adds f(1) = 14.2; the degrade band starts at (1 - 0.15) * 360 = 306.
TEST(Admission, HeadroomBandsProduceAdmitDegradeReject) {
  const AdmissionController controller{AdmissionPolicyConfig{}};
  const core::UserSlotContext user = candidate();
  const auto decide = [&](double mandatory) {
    return controller.decide(user, mandatory, 400.0, 4, 64,
                             core::QoeParams{});
  };
  EXPECT_EQ(decide(100.0), AdmissionDecision::kAdmit);   // well below band
  EXPECT_EQ(decide(300.0), AdmissionDecision::kDegrade);  // 314.2 > 306
  EXPECT_EQ(decide(350.0), AdmissionDecision::kReject);   // 364.2 > 360
}

TEST(Admission, DegradeDisabledTurnsBandIntoReject) {
  AdmissionPolicyConfig config;
  config.enable_degrade = false;
  const AdmissionController controller{config};
  EXPECT_EQ(controller.decide(candidate(), 300.0, 400.0, 4, 64,
                              core::QoeParams{}),
            AdmissionDecision::kReject);
}

TEST(Admission, LowMarginalValueCandidateIsNeverFullyAdmitted) {
  AdmissionPolicyConfig config;
  config.min_marginal_value = 1e9;  // nothing clears this bar
  const AdmissionController controller{config};
  EXPECT_EQ(controller.decide(candidate(), 0.0, 400.0, 0, 64,
                              core::QoeParams{}),
            AdmissionDecision::kDegrade);
  config.enable_degrade = false;
  const AdmissionController strict{config};
  EXPECT_EQ(strict.decide(candidate(), 0.0, 400.0, 0, 64,
                          core::QoeParams{}),
            AdmissionDecision::kReject);
}

// Raising the committed load never makes the decision *less* severe —
// the monotonicity the service loop's reject-rate tests build on.
TEST(Admission, DecisionSeverityMonotoneInCommittedLoad) {
  const AdmissionController controller{AdmissionPolicyConfig{}};
  const core::UserSlotContext user = candidate();
  int previous = -1;
  for (double mandatory = 0.0; mandatory <= 500.0; mandatory += 2.5) {
    const int current = severity(controller.decide(
        user, mandatory, 400.0, 8, 64, core::QoeParams{}));
    EXPECT_GE(current, previous) << "at mandatory load " << mandatory;
    previous = current;
  }
}

}  // namespace
}  // namespace cvr::system
