#include "src/net/ack_channel.h"

#include <gtest/gtest.h>

#include <string>

namespace cvr::net {
namespace {

TEST(AckChannel, DeliversAfterLatency) {
  AckChannel<int> ch(2);
  ch.send(0, 42);
  EXPECT_TRUE(ch.receive(0).empty());
  EXPECT_TRUE(ch.receive(1).empty());
  const auto got = ch.receive(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(AckChannel, ZeroLatencyIsImmediate) {
  AckChannel<int> ch(0);
  ch.send(5, 1);
  const auto got = ch.receive(5);
  ASSERT_EQ(got.size(), 1u);
}

TEST(AckChannel, PreservesSendOrder) {
  AckChannel<int> ch(1);
  ch.send(0, 1);
  ch.send(0, 2);
  ch.send(1, 3);
  const auto got = ch.receive(10);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 3);
}

TEST(AckChannel, PartialDrain) {
  AckChannel<int> ch(1);
  ch.send(0, 1);
  ch.send(5, 2);
  const auto first = ch.receive(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(ch.in_flight(), 1u);
  const auto second = ch.receive(6);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 2);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(AckChannel, ReceiveIsDestructive) {
  AckChannel<int> ch(0);
  ch.send(0, 9);
  EXPECT_EQ(ch.receive(0).size(), 1u);
  EXPECT_TRUE(ch.receive(0).empty());
}

TEST(AckChannel, ReceiveThrowsOnClockRegression) {
  AckChannel<int> ch(0);
  ch.receive(5);
  EXPECT_THROW(ch.receive(4), std::logic_error);
  // The same slot is fine (non-decreasing, not strictly increasing).
  EXPECT_NO_THROW(ch.receive(5));
}

TEST(AckChannel, DropUntilLosesSendsDuringBlackout) {
  AckChannel<int> ch(0);
  ch.drop_until(10);
  EXPECT_EQ(ch.blackout_until(), 10u);
  ch.send(5, 1);  // lost: the channel is down
  EXPECT_TRUE(ch.receive(9).empty());
  ch.send(10, 2);  // blackout over (exclusive bound)
  const auto got = ch.receive(10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 2);
}

TEST(AckChannel, DropUntilKillsInFlightMessages) {
  AckChannel<int> ch(3);
  ch.send(0, 1);  // would deliver at 3 — inside the blackout, dropped
  ch.send(0, 2);
  EXPECT_EQ(ch.in_flight(), 2u);
  ch.drop_until(5);
  EXPECT_EQ(ch.in_flight(), 0u);
  EXPECT_TRUE(ch.receive(4).empty());
}

TEST(AckChannel, DropUntilSparesMessagesDeliveringAfterBlackout) {
  AckChannel<int> ch(4);
  ch.send(0, 7);  // delivers at 4, exactly when the channel is back up
  ch.drop_until(4);
  EXPECT_EQ(ch.in_flight(), 1u);
  const auto got = ch.receive(4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7);
}

TEST(AckChannel, DropUntilNeverShortensABlackout) {
  AckChannel<int> ch(0);
  ch.drop_until(10);
  ch.drop_until(3);  // no-op: earlier than the standing blackout
  EXPECT_EQ(ch.blackout_until(), 10u);
  ch.send(5, 1);
  EXPECT_TRUE(ch.receive(9).empty());
}

TEST(AckChannel, MoveOnlyFriendlyPayloads) {
  AckChannel<std::string> ch(1);
  ch.send(0, std::string(1000, 'x'));
  const auto got = ch.receive(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].size(), 1000u);
}

}  // namespace
}  // namespace cvr::net
