#include "src/net/ack_channel.h"

#include <gtest/gtest.h>

#include <string>

namespace cvr::net {
namespace {

TEST(AckChannel, DeliversAfterLatency) {
  AckChannel<int> ch(2);
  ch.send(0, 42);
  EXPECT_TRUE(ch.receive(0).empty());
  EXPECT_TRUE(ch.receive(1).empty());
  const auto got = ch.receive(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(AckChannel, ZeroLatencyIsImmediate) {
  AckChannel<int> ch(0);
  ch.send(5, 1);
  const auto got = ch.receive(5);
  ASSERT_EQ(got.size(), 1u);
}

TEST(AckChannel, PreservesSendOrder) {
  AckChannel<int> ch(1);
  ch.send(0, 1);
  ch.send(0, 2);
  ch.send(1, 3);
  const auto got = ch.receive(10);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 3);
}

TEST(AckChannel, PartialDrain) {
  AckChannel<int> ch(1);
  ch.send(0, 1);
  ch.send(5, 2);
  const auto first = ch.receive(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(ch.in_flight(), 1u);
  const auto second = ch.receive(6);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 2);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(AckChannel, ReceiveIsDestructive) {
  AckChannel<int> ch(0);
  ch.send(0, 9);
  EXPECT_EQ(ch.receive(0).size(), 1u);
  EXPECT_TRUE(ch.receive(0).empty());
}

TEST(AckChannel, MoveOnlyFriendlyPayloads) {
  AckChannel<std::string> ch(1);
  ch.send(0, std::string(1000, 'x'));
  const auto got = ch.receive(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].size(), 1000u);
}

}  // namespace
}  // namespace cvr::net
