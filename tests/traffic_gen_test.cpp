#include "src/sim/traffic_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace cvr::sim {
namespace {

TrafficConfig base_config(TrafficShape shape, double load = 0.5,
                          std::uint64_t seed = 7) {
  TrafficConfig config;
  config.shape = shape;
  config.load = load;
  config.seed = seed;
  return config;
}

std::vector<SessionRequest> collect(TrafficGenerator& gen,
                                    std::size_t slots) {
  std::vector<SessionRequest> out;
  for (std::size_t t = 0; t < slots; ++t) gen.arrivals_for_slot(t, out);
  return out;
}

const TrafficShape kAllShapes[] = {
    TrafficShape::kUniform, TrafficShape::kNormal, TrafficShape::kPeaks,
    TrafficShape::kGamma, TrafficShape::kExponential};

TEST(TrafficGen, ParseAndNameRoundTrip) {
  for (const TrafficShape shape : kAllShapes) {
    EXPECT_EQ(parse_shape(shape_name(shape)), shape);
  }
  EXPECT_THROW(parse_shape("bursty"), std::invalid_argument);
}

TEST(TrafficGen, MeanGapFollowsLittlesLaw) {
  const TrafficConfig config = base_config(TrafficShape::kExponential, 0.8);
  TrafficGenerator gen(config, 40);
  // g = mean_session / (load * capacity) = 660 / 32.
  EXPECT_DOUBLE_EQ(gen.mean_gap_slots(), 660.0 / (0.8 * 40.0));
}

// Every shape must deliver the same *mean* arrival rate — `load` is a
// shape-independent knob; shapes only change burstiness.
TEST(TrafficGen, EveryShapePreservesTheOfferedRate) {
  constexpr std::size_t kSlots = 200000;
  constexpr std::size_t kCapacity = 40;
  constexpr double kLoad = 0.5;
  for (const TrafficShape shape : kAllShapes) {
    TrafficGenerator gen(base_config(shape, kLoad), kCapacity);
    const double expected =
        static_cast<double>(kSlots) / gen.mean_gap_slots();
    const auto arrivals = collect(gen, kSlots);
    EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
                0.05 * expected)
        << shape_name(shape);
  }
}

// Burstiness ordering via the Fano factor (variance/mean of window
// counts): uniform and gamma(k=2) gaps are under-dispersed relative to
// Poisson, peaks is over-dispersed — that is the point of the shapes.
TEST(TrafficGen, WindowCountDispersionOrdersShapes) {
  constexpr std::size_t kSlots = 240000;
  // Windows must subdivide the peaks period (400 slots): a window the
  // size of a full period would average every burst away.
  constexpr std::size_t kWindow = 100;
  const auto fano = [&](TrafficShape shape) {
    TrafficGenerator gen(base_config(shape, 0.5), 40);
    std::vector<SessionRequest> arrivals;
    std::vector<double> counts(kSlots / kWindow, 0.0);
    for (std::size_t t = 0; t < kSlots; ++t) {
      arrivals.clear();
      gen.arrivals_for_slot(t, arrivals);
      counts[t / kWindow] += static_cast<double>(arrivals.size());
    }
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size());
    return var / mean;
  };
  const double uniform = fano(TrafficShape::kUniform);
  const double gamma = fano(TrafficShape::kGamma);  // k = 2 default
  const double exponential = fano(TrafficShape::kExponential);
  const double peaks = fano(TrafficShape::kPeaks);
  EXPECT_LT(uniform, exponential);
  EXPECT_LT(gamma, exponential);
  EXPECT_GT(peaks, 1.5 * exponential);
  EXPECT_NEAR(exponential, 1.0, 0.25);  // Poisson reference
}

TEST(TrafficGen, SessionDurationsAreExponentialWithTheConfiguredMean) {
  TrafficConfig config = base_config(TrafficShape::kExponential, 2.0);
  config.mean_session_slots = 300.0;
  TrafficGenerator gen(config, 40);
  const auto arrivals = collect(gen, 60000);
  ASSERT_GT(arrivals.size(), 5000u);
  double mean = 0.0;
  for (const SessionRequest& r : arrivals) {
    EXPECT_GE(r.duration_slots, 1u);
    mean += static_cast<double>(r.duration_slots);
  }
  mean /= static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean, 300.0, 0.05 * 300.0);
}

TEST(TrafficGen, QosBudgetsHonourTheJitterBand) {
  TrafficConfig config = base_config(TrafficShape::kUniform, 1.0);
  config.qos_ms = 20.0;
  config.qos_jitter = 0.25;
  TrafficGenerator jittered(config, 40);
  for (const SessionRequest& r : collect(jittered, 20000)) {
    EXPECT_GE(r.qos_ms, 15.0);
    EXPECT_LT(r.qos_ms, 25.0);
  }
  config.qos_jitter = 0.0;
  TrafficGenerator fixed(config, 40);
  for (const SessionRequest& r : collect(fixed, 5000)) {
    EXPECT_EQ(r.qos_ms, 20.0);
  }
}

TEST(TrafficGen, IdsAreDenseAndIncreasing) {
  TrafficGenerator gen(base_config(TrafficShape::kGamma, 1.0), 20);
  const auto arrivals = collect(gen, 50000);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].id, i);
    if (i > 0) {
      EXPECT_GE(arrivals[i].arrival_slot, arrivals[i - 1].arrival_slot);
    }
  }
}

TEST(TrafficGen, SameSeedReplaysBitIdentically) {
  for (const TrafficShape shape : kAllShapes) {
    TrafficGenerator a(base_config(shape, 0.9, 42), 16);
    TrafficGenerator b(base_config(shape, 0.9, 42), 16);
    EXPECT_EQ(collect(a, 30000), collect(b, 30000)) << shape_name(shape);
  }
}

TEST(TrafficGen, ResetRewindsToTheSameStream) {
  TrafficGenerator gen(base_config(TrafficShape::kPeaks, 1.2, 3), 24);
  const auto first = collect(gen, 20000);
  gen.reset();
  EXPECT_EQ(collect(gen, 20000), first);
}

TEST(TrafficGen, DifferentSeedsDiverge) {
  TrafficGenerator a(base_config(TrafficShape::kExponential, 1.0, 1), 16);
  TrafficGenerator b(base_config(TrafficShape::kExponential, 1.0, 2), 16);
  EXPECT_NE(collect(a, 20000), collect(b, 20000));
}

TEST(TrafficGen, SlotsMustBeConsumedInOrder) {
  TrafficGenerator gen(base_config(TrafficShape::kUniform), 8);
  std::vector<SessionRequest> out;
  gen.arrivals_for_slot(5, out);  // skipping ahead is fine (empty slots)
  EXPECT_THROW(gen.arrivals_for_slot(3, out), std::logic_error);
  gen.reset();
  gen.arrivals_for_slot(0, out);  // replay after reset is fine
}

TEST(TrafficGen, ConfigValidation) {
  const TrafficConfig ok = base_config(TrafficShape::kUniform);
  EXPECT_THROW(TrafficGenerator(ok, 0), std::invalid_argument);

  TrafficConfig bad = ok;
  bad.load = 0.0;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.connect_speed = -1.0;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.mean_session_slots = 0.5;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.qos_ms = 0.0;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.qos_jitter = 1.0;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.shape_param = -0.25;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
  bad = ok;
  bad.peaks_period_slots = 0;
  EXPECT_THROW(TrafficGenerator(bad, 8), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::sim
