#include "src/system/client.h"

#include <gtest/gtest.h>

namespace cvr::system {
namespace {

content::VideoId id(int n, content::QualityLevel q = 3) {
  return content::pack_video_id({{n, 0}, 0, q});
}

SlotDelivery delivery_of(std::vector<content::VideoId> tiles,
                         double delay_ms = 5.0, bool all_complete = true) {
  SlotDelivery d;
  d.tiles = std::move(tiles);
  d.complete.assign(d.tiles.size(), all_complete);
  d.delay_ms = delay_ms;
  return d;
}

TEST(Client, DisplaysWhenEverythingArrivesOnTime) {
  Client client;
  const auto out = client.process_slot(delivery_of({id(1), id(2)}),
                                       {id(1), id(2)});
  EXPECT_TRUE(out.frame_on_time);
  EXPECT_TRUE(out.needed_resident);
  EXPECT_TRUE(out.correct_content);
  EXPECT_EQ(out.delivery_acks.size(), 2u);
  EXPECT_TRUE(out.release_acks.empty());
  EXPECT_EQ(client.frames_displayed(), 1u);
}

TEST(Client, LateDeliveryDropsFrame) {
  ClientConfig config;
  config.display_deadline_ms = 10.0;
  Client client(config);
  const auto out =
      client.process_slot(delivery_of({id(1)}, 11.0), {id(1)});
  EXPECT_FALSE(out.frame_on_time);
  EXPECT_FALSE(out.correct_content);
  EXPECT_TRUE(out.needed_resident);  // tile arrived, just late
  EXPECT_EQ(client.frames_displayed(), 0u);
}

TEST(Client, IncompleteTileNotResident) {
  Client client;
  const auto out = client.process_slot(
      delivery_of({id(1)}, 5.0, /*all_complete=*/false), {id(1)});
  EXPECT_TRUE(out.frame_on_time);  // frame shown, but with stale content
  EXPECT_FALSE(out.needed_resident);
  EXPECT_FALSE(out.correct_content);
  EXPECT_TRUE(out.delivery_acks.empty());  // lost tiles are never ACKed
}

TEST(Client, ResidentTilesFromEarlierSlotsCount) {
  Client client;
  client.process_slot(delivery_of({id(1), id(2)}), {});
  // Nothing delivered now, but the needed tiles are already resident:
  // repetitive-tile suppression relies on exactly this.
  const auto out = client.process_slot(delivery_of({}, 0.0), {id(1), id(2)});
  EXPECT_TRUE(out.correct_content);
}

TEST(Client, MissingNeededTileFails) {
  Client client;
  const auto out = client.process_slot(delivery_of({id(1)}), {id(1), id(9)});
  EXPECT_FALSE(out.needed_resident);
  EXPECT_FALSE(out.correct_content);
  EXPECT_TRUE(out.frame_on_time);
}

TEST(Client, BufferOverflowEmitsReleaseAcks) {
  ClientConfig config;
  config.buffer_threshold = 3;
  Client client(config);
  client.process_slot(delivery_of({id(1), id(2), id(3)}), {});
  const auto out = client.process_slot(delivery_of({id(4), id(5)}), {});
  ASSERT_EQ(out.release_acks.size(), 2u);
  EXPECT_EQ(out.release_acks[0], id(1));
  EXPECT_EQ(out.release_acks[1], id(2));
}

TEST(Client, TouchingNeededTilesProtectsThemFromEviction) {
  ClientConfig config;
  config.buffer_threshold = 3;
  Client client(config);
  client.process_slot(delivery_of({id(1), id(2), id(3)}), {id(1)});
  // id(1) was touched by display; inserting one more evicts id(2).
  const auto out = client.process_slot(delivery_of({id(4)}), {});
  ASSERT_EQ(out.release_acks.size(), 1u);
  EXPECT_EQ(out.release_acks[0], id(2));
}

TEST(Client, DecodeOverloadDropsFrame) {
  ClientConfig config;
  config.decoder.decoders = 1;
  config.decoder.decode_ms_per_tile = 10.0;
  config.decoder.stage_budget_ms = 15.0;
  Client client(config);
  std::vector<content::VideoId> many = {id(1), id(2)};  // 20 ms decode
  const auto out = client.process_slot(delivery_of(many, 1.0), many);
  EXPECT_FALSE(out.frame_on_time);
  EXPECT_DOUBLE_EQ(out.decode_ms, 20.0);
}

TEST(Client, MismatchedDeliveryVectorsThrow) {
  Client client;
  SlotDelivery bad;
  bad.tiles = {id(1)};
  bad.complete = {};
  EXPECT_THROW(client.process_slot(bad, {}), std::invalid_argument);
}

TEST(Client, FrameCountersAccumulate) {
  Client client;
  client.process_slot(delivery_of({id(1)}), {id(1)});
  client.process_slot(delivery_of({id(2)}, 1000.0), {id(2)});
  EXPECT_EQ(client.frames_total(), 2u);
  EXPECT_EQ(client.frames_displayed(), 1u);
}

TEST(Client, EmptyDeliveryEmptyNeedsDisplays) {
  // A user looking at fully-cached content with perfect prediction:
  // nothing to send, frame shows.
  Client client;
  const auto out = client.process_slot(delivery_of({}, 0.0), {});
  EXPECT_TRUE(out.frame_on_time);
  EXPECT_TRUE(out.correct_content);
}

}  // namespace
}  // namespace cvr::system
