#include "src/faults/fault_schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/faults/recovery.h"

namespace cvr::faults {
namespace {

FaultEvent make_event(FaultType type, std::size_t target, std::size_t start,
                      std::size_t duration, double severity = 0.0) {
  FaultEvent e;
  e.type = type;
  e.target = target;
  e.start_slot = start;
  e.duration_slots = duration;
  e.severity = severity;
  return e;
}

TEST(FaultSchedule, EmptyScheduleAnswersHealthyEverywhere) {
  const FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  for (std::size_t slot : {0u, 1u, 500u, 100000u}) {
    EXPECT_FALSE(schedule.user_disconnected(0, slot));
    EXPECT_FALSE(schedule.pose_blackout(3, slot));
    EXPECT_FALSE(schedule.ack_stalled(7, slot));
    EXPECT_DOUBLE_EQ(schedule.router_capacity_multiplier(0, slot), 1.0);
    EXPECT_FALSE(schedule.cache_flush_at(slot));
    EXPECT_FALSE(schedule.any_fault_for_user(0, 0, slot));
  }
  EXPECT_EQ(schedule.horizon(), 0u);
}

TEST(FaultSchedule, WindowBoundsAreHalfOpen) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kUserDisconnect, 2, 10, 5));
  EXPECT_FALSE(schedule.user_disconnected(2, 9));
  EXPECT_TRUE(schedule.user_disconnected(2, 10));
  EXPECT_TRUE(schedule.user_disconnected(2, 14));
  EXPECT_FALSE(schedule.user_disconnected(2, 15));  // reconnect slot
  EXPECT_FALSE(schedule.user_disconnected(1, 12));  // wrong user
  EXPECT_EQ(schedule.horizon(), 15u);
}

TEST(FaultSchedule, QueriesAreTypeSpecific) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kPoseBlackout, 1, 5, 10));
  schedule.add(make_event(FaultType::kAckStall, 1, 5, 10));
  EXPECT_TRUE(schedule.pose_blackout(1, 7));
  EXPECT_TRUE(schedule.ack_stalled(1, 7));
  EXPECT_FALSE(schedule.user_disconnected(1, 7));
}

TEST(FaultSchedule, OverlappingOutagesMultiply) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kRouterOutage, 0, 0, 10, 0.5));
  schedule.add(make_event(FaultType::kRouterOutage, 0, 5, 10, 0.2));
  EXPECT_DOUBLE_EQ(schedule.router_capacity_multiplier(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(schedule.router_capacity_multiplier(0, 7), 0.1);
  EXPECT_DOUBLE_EQ(schedule.router_capacity_multiplier(0, 12), 0.2);
  EXPECT_DOUBLE_EQ(schedule.router_capacity_multiplier(1, 7), 1.0);
}

TEST(FaultSchedule, CacheFlushFiresOnlyAtItsStartSlot) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kCacheFlush, 0, 30, 8));
  EXPECT_FALSE(schedule.cache_flush_at(29));
  EXPECT_TRUE(schedule.cache_flush_at(30));
  EXPECT_FALSE(schedule.cache_flush_at(31));  // instantaneous event
  // ...but the accounting window spans the whole duration for everyone.
  EXPECT_TRUE(schedule.any_fault_for_user(4, 1, 35));
  EXPECT_FALSE(schedule.any_fault_for_user(4, 1, 38));
}

TEST(FaultSchedule, AnyFaultSeesRouterOutagesThroughTheUsersRouter) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kRouterOutage, 1, 10, 5, 0.0));
  EXPECT_TRUE(schedule.any_fault_for_user(3, /*router=*/1, 12));
  EXPECT_FALSE(schedule.any_fault_for_user(3, /*router=*/0, 12));
}

TEST(FaultSchedule, ValidatesEvents) {
  FaultSchedule schedule;
  EXPECT_THROW(schedule.add(make_event(FaultType::kPoseBlackout, 0, 0, 0)),
               std::invalid_argument);  // zero duration
  EXPECT_THROW(
      schedule.add(make_event(FaultType::kRouterOutage, 0, 0, 5, 1.0)),
      std::invalid_argument);  // severity must be < 1 (that's "no outage")
  EXPECT_THROW(
      schedule.add(make_event(FaultType::kRouterOutage, 0, 0, 5, -0.1)),
      std::invalid_argument);
  EXPECT_TRUE(schedule.empty());  // nothing was half-added
}

TEST(GenerateSchedule, SameConfigSameStream) {
  FaultScheduleConfig config;
  config.users = 6;
  config.routers = 2;
  config.seed = 99;
  config.intensity = 2.0;
  const FaultSchedule a = generate_schedule(config);
  const FaultSchedule b = generate_schedule(config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].type, b.events()[i].type);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_EQ(a.events()[i].start_slot, b.events()[i].start_slot);
    EXPECT_EQ(a.events()[i].duration_slots, b.events()[i].duration_slots);
    EXPECT_DOUBLE_EQ(a.events()[i].severity, b.events()[i].severity);
  }
}

TEST(GenerateSchedule, SeedChangesStream) {
  FaultScheduleConfig config;
  config.intensity = 2.0;
  config.seed = 1;
  const FaultSchedule a = generate_schedule(config);
  config.seed = 2;
  const FaultSchedule b = generate_schedule(config);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].start_slot != b.events()[i].start_slot ||
              a.events()[i].target != b.events()[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateSchedule, ZeroIntensityIsEmpty) {
  FaultScheduleConfig config;
  config.intensity = 0.0;
  EXPECT_TRUE(generate_schedule(config).empty());
}

TEST(GenerateSchedule, IntensityScalesEventCount) {
  FaultScheduleConfig low;
  low.slots = 5000;
  low.intensity = 0.5;
  FaultScheduleConfig high = low;
  high.intensity = 4.0;
  EXPECT_GT(generate_schedule(high).size(), generate_schedule(low).size());
}

TEST(GenerateSchedule, EventsRespectTargetAndSlotRanges) {
  FaultScheduleConfig config;
  config.users = 5;
  config.routers = 2;
  config.slots = 600;
  config.intensity = 3.0;
  const FaultSchedule schedule = generate_schedule(config);
  for (const FaultEvent& e : schedule.events()) {
    EXPECT_LT(e.start_slot, config.slots);
    EXPECT_GE(e.duration_slots, 1u);
    switch (e.type) {
      case FaultType::kRouterOutage:
        EXPECT_LT(e.target, config.routers);
        EXPECT_GE(e.severity, 0.0);
        EXPECT_LT(e.severity, 1.0);
        break;
      case FaultType::kCacheFlush:
        break;
      default:
        EXPECT_LT(e.target, config.users);
    }
  }
}

TEST(GenerateSchedule, RejectsBadConfigs) {
  FaultScheduleConfig config;
  config.users = 0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = FaultScheduleConfig{};
  config.intensity = -1.0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = FaultScheduleConfig{};
  config.mean_duration_slots = 0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = FaultScheduleConfig{};
  config.outage_depth = 1.5;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
}

TEST(FaultSchedule, ServerCrashIsScopedToItsServer) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kServerCrash, 1, 100, 50));
  EXPECT_FALSE(schedule.server_crashed(1, 99));
  EXPECT_TRUE(schedule.server_crashed(1, 100));
  EXPECT_TRUE(schedule.server_crashed(1, 149));
  EXPECT_FALSE(schedule.server_crashed(1, 150));  // restart slot
  EXPECT_FALSE(schedule.server_crashed(0, 120));  // wrong server
  // Server events never count as per-user faults: membership is the
  // fleet controller's state, not the schedule's.
  EXPECT_FALSE(schedule.any_fault_for_user(0, 0, 120));
}

TEST(FaultSchedule, ServerRecoverTruncatesTheFirstCoveringCrash) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kServerCrash, 0, 100, 200));
  schedule.add(make_event(FaultType::kServerRecover, 0, 140, 1));
  EXPECT_TRUE(schedule.server_crashed(0, 120));
  EXPECT_TRUE(schedule.server_crashed(0, 139));
  EXPECT_FALSE(schedule.server_crashed(0, 140));  // restarted early
  EXPECT_FALSE(schedule.server_crashed(0, 250));
  // A recover for another server truncates nothing.
  FaultSchedule other;
  other.add(make_event(FaultType::kServerCrash, 0, 100, 200));
  other.add(make_event(FaultType::kServerRecover, 1, 140, 1));
  EXPECT_TRUE(other.server_crashed(0, 150));
  // A recover with no covering crash is inert.
  FaultSchedule inert;
  inert.add(make_event(FaultType::kServerRecover, 0, 40, 1));
  EXPECT_FALSE(inert.server_crashed(0, 40));
}

TEST(FaultSchedule, ServerPartitionIsItsOwnQuery) {
  FaultSchedule schedule;
  schedule.add(make_event(FaultType::kFleetPartition, 2, 10, 20));
  EXPECT_TRUE(schedule.server_partitioned(2, 15));
  EXPECT_FALSE(schedule.server_partitioned(2, 30));
  EXPECT_FALSE(schedule.server_partitioned(1, 15));
  EXPECT_FALSE(schedule.server_crashed(2, 15));  // partition != crash
}

TEST(GenerateSchedule, ZeroServersIsByteIdenticalToLegacyOutput) {
  FaultScheduleConfig legacy;
  legacy.intensity = 2.0;
  ASSERT_EQ(legacy.servers, 0u);  // the default keeps the old stream

  FaultScheduleConfig fleet = legacy;
  fleet.servers = 3;
  const FaultSchedule fleet_schedule = generate_schedule(fleet);
  const FaultSchedule legacy_schedule = generate_schedule(legacy);
  const auto& with_servers = fleet_schedule.events();
  const auto& without = legacy_schedule.events();

  // Fleet draws are appended after every legacy draw: stripping the
  // server-scoped events recovers the legacy stream event-for-event.
  std::vector<FaultEvent> stripped;
  for (const FaultEvent& e : with_servers) {
    if (e.type == FaultType::kServerCrash ||
        e.type == FaultType::kServerRecover ||
        e.type == FaultType::kFleetPartition) {
      EXPECT_LT(e.target, fleet.servers);
      continue;
    }
    stripped.push_back(e);
  }
  ASSERT_EQ(stripped.size(), without.size());
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    EXPECT_EQ(static_cast<int>(stripped[i].type),
              static_cast<int>(without[i].type));
    EXPECT_EQ(stripped[i].target, without[i].target);
    EXPECT_EQ(stripped[i].start_slot, without[i].start_slot);
    EXPECT_EQ(stripped[i].duration_slots, without[i].duration_slots);
    EXPECT_EQ(stripped[i].severity, without[i].severity);
  }
  // And the fleet path does generate server events at this intensity.
  EXPECT_GT(with_servers.size(), without.size());
}

TEST(RecoveryTracker, HealthyRunStaysAllZero) {
  RecoveryTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.record_slot(false, true, 3.0, true);
  tracker.finalize();
  EXPECT_EQ(tracker.fault_slots(), 0u);
  EXPECT_EQ(tracker.episodes(), 0u);
  EXPECT_DOUBLE_EQ(tracker.mean_time_to_recover_slots(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.quality_dip_depth(), 0.0);
  EXPECT_EQ(tracker.frames_dropped_in_fault(), 0u);
}

TEST(RecoveryTracker, MeasuresRecoveryAfterFaultWindow) {
  RecoveryTracker tracker;
  for (int i = 0; i < 10; ++i) tracker.record_slot(false, true, 4.0, true);
  // A 5-slot fault: nothing displayed, frames dropped.
  for (int i = 0; i < 5; ++i) tracker.record_slot(true, false, 0.0, false);
  // Two degraded post-fault slots, then the first correct view.
  tracker.record_slot(false, false, 0.0, true);
  tracker.record_slot(false, false, 0.0, true);
  tracker.record_slot(false, true, 4.0, true);  // recovered (3rd slot after)
  for (int i = 0; i < 10; ++i) tracker.record_slot(false, true, 4.0, true);
  tracker.finalize();
  EXPECT_EQ(tracker.fault_slots(), 5u);
  EXPECT_EQ(tracker.frames_dropped_in_fault(), 5u);
  ASSERT_EQ(tracker.episodes(), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean_time_to_recover_slots(), 3.0);
  EXPECT_DOUBLE_EQ(tracker.max_time_to_recover_slots(), 3.0);
  EXPECT_GT(tracker.quality_dip_depth(), 0.0);
}

TEST(RecoveryTracker, CensorsRecoveryAtHorizon) {
  RecoveryTracker tracker;
  tracker.record_slot(false, true, 4.0, true);
  for (int i = 0; i < 3; ++i) tracker.record_slot(true, false, 0.0, false);
  // The horizon ends with the user still degraded: the open recovery
  // window is counted (censored), not dropped.
  tracker.record_slot(false, false, 0.0, false);
  tracker.record_slot(false, false, 0.0, false);
  tracker.finalize();
  ASSERT_EQ(tracker.episodes(), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean_time_to_recover_slots(), 2.0);
}

}  // namespace
}  // namespace cvr::faults
