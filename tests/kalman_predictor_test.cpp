#include "src/motion/kalman_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/motion/fov.h"
#include "src/motion/motion_generator.h"
#include "src/motion/persistence_predictor.h"
#include "src/util/rng.h"

namespace cvr::motion {
namespace {

TEST(ScalarKalman, FirstMeasurementPrimes) {
  ScalarKalman kf;
  EXPECT_FALSE(kf.primed());
  kf.update(1.0, 5.0);
  EXPECT_TRUE(kf.primed());
  EXPECT_DOUBLE_EQ(kf.position(), 5.0);
  EXPECT_DOUBLE_EQ(kf.velocity(), 0.0);
}

TEST(ScalarKalman, ConvergesOnLinearMotion) {
  ScalarKalman kf;
  for (int t = 0; t < 100; ++t) kf.update(1.0, 2.0 + 0.5 * t);
  EXPECT_NEAR(kf.velocity(), 0.5, 0.01);
  EXPECT_NEAR(kf.predict(4.0), 2.0 + 0.5 * 99 + 2.0, 0.1);
}

TEST(ScalarKalman, ConstantSignalHasZeroVelocity) {
  ScalarKalman kf;
  for (int t = 0; t < 200; ++t) kf.update(1.0, 7.0);
  EXPECT_NEAR(kf.velocity(), 0.0, 1e-6);
  EXPECT_NEAR(kf.predict(100.0), 7.0, 1e-3);
}

TEST(ScalarKalman, FiltersNoiseBetterThanRawMeasurement) {
  cvr::Rng rng(1);
  ScalarKalman kf;
  double err_kf = 0.0, err_raw = 0.0;
  int count = 0;
  double last_measurement = 0.0;
  for (int t = 0; t < 2000; ++t) {
    const double truth = 0.3 * t;
    const double measurement = truth + rng.normal(0.0, 0.5);
    if (t > 50) {
      err_kf += std::abs(kf.predict(1.0) - (truth + 0.3));
      err_raw += std::abs(last_measurement - (truth + 0.3));
      ++count;
    }
    kf.update(1.0, measurement);
    last_measurement = measurement;
  }
  EXPECT_LT(err_kf / count, err_raw / count);
}

TEST(ScalarKalman, AdaptsAfterTurn) {
  ScalarKalman kf;
  for (int t = 0; t < 100; ++t) kf.update(1.0, 0.5 * t);
  // Reverse direction; within a few tens of updates velocity flips.
  double x = 0.5 * 99;
  for (int t = 0; t < 60; ++t) {
    x -= 0.5;
    kf.update(1.0, x);
  }
  EXPECT_LT(kf.velocity(), 0.0);
}

TEST(ScalarKalman, HandlesMeasurementGaps) {
  ScalarKalman kf;
  kf.update(1.0, 0.0);
  kf.update(1.0, 1.0);
  kf.update(5.0, 6.0);  // gap of 5 slots, consistent with v = 1
  EXPECT_NEAR(kf.predict(1.0), 7.0, 0.5);
}

TEST(KalmanMotionPredictor, DefaultBeforeObservations) {
  KalmanMotionPredictor pred;
  const Pose p = pred.predict(1);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_EQ(pred.observations(), 0u);
}

TEST(KalmanMotionPredictor, TracksLinearWalk) {
  KalmanMotionPredictor pred;
  for (std::size_t t = 0; t < 60; ++t) {
    Pose p;
    p.x = 0.02 * static_cast<double>(t);
    p.y = 1.0;
    pred.observe(t, p);
  }
  const Pose out = pred.predict(2);
  EXPECT_NEAR(out.x, 0.02 * 61, 0.01);
  EXPECT_NEAR(out.y, 1.0, 0.01);
}

TEST(KalmanMotionPredictor, YawUnwrapsAcrossBoundary) {
  KalmanMotionPredictor pred;
  for (std::size_t t = 0; t < 80; ++t) {
    Pose p;
    p.yaw = wrap_degrees(170.0 + 2.0 * static_cast<double>(t));
    pred.observe(t, p);
  }
  EXPECT_NEAR(pred.predict(1).yaw, wrap_degrees(170.0 + 2.0 * 80), 1.0);
}

TEST(KalmanMotionPredictor, AnglesStayCanonical) {
  KalmanMotionPredictor pred;
  cvr::Rng rng(3);
  for (std::size_t t = 0; t < 500; ++t) {
    Pose p;
    p.yaw = rng.uniform(-180.0, 180.0);
    p.pitch = rng.uniform(-90.0, 90.0);
    pred.observe(t, p);
    const Pose out = pred.predict(1);
    EXPECT_GE(out.yaw, -180.0);
    EXPECT_LT(out.yaw, 180.0);
    EXPECT_GE(out.pitch, -90.0);
    EXPECT_LE(out.pitch, 90.0);
  }
}

TEST(KalmanMotionPredictor, BeatsPersistenceOnSustainedVelocity) {
  // Constant-velocity segments are where a CV filter must win: a user
  // walking steadily at 2 cm/slot, observed through the 5 cm grid snap.
  KalmanMotionPredictor kalman;
  PersistencePredictor persistence;
  double err_kalman = 0.0, err_persist = 0.0;
  int count = 0;
  for (std::size_t t = 0; t < 400; ++t) {
    Pose snapped;
    const double true_x = 0.02 * static_cast<double>(t);
    snapped.x = std::round(true_x / 0.05) * 0.05;
    kalman.observe(t, snapped);
    persistence.observe(t, snapped);
    if (t < 50) continue;
    const double future_x = 0.02 * static_cast<double>(t + 4);
    err_kalman += std::abs(kalman.predict(4).x - future_x);
    err_persist += std::abs(persistence.predict(4).x - future_x);
    ++count;
  }
  EXPECT_LT(err_kalman / count, err_persist / count);
}

TEST(KalmanMotionPredictor, ComparableToPersistenceOnRealisticMotion) {
  // On the full synthetic ensemble (grid-snapped, slow, saccadic) the
  // short-horizon coverage of both predictors is near-perfect — the
  // regime the paper's pipeline operates in. Pin that both stay > 0.98
  // at the pipeline horizon.
  MotionGenerator gen;
  const MotionTrace trace = gen.generate(77, 0, 3000);
  const FovSpec fov;
  KalmanMotionPredictor kalman;
  PersistencePredictor persistence;
  std::size_t hits_kalman = 0, hits_persist = 0, total = 0;
  for (std::size_t t = 0; t + 2 < trace.size(); ++t) {
    kalman.observe(t, trace[t]);
    persistence.observe(t, trace[t]);
    if (t < 50) continue;
    const Pose& actual = trace[t + 2];
    hits_kalman += covers(fov, kalman.predict(2), actual) ? 1 : 0;
    hits_persist += covers(fov, persistence.predict(2), actual) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(hits_kalman) / total, 0.98);
  EXPECT_GT(static_cast<double>(hits_persist) / total, 0.98);
}

TEST(MotionPredictorInterface, PolymorphicUse) {
  KalmanMotionPredictor kalman;
  PersistencePredictor persistence;
  MotionPredictor* predictors[] = {&kalman, &persistence};
  Pose p;
  p.x = 1.0;
  for (MotionPredictor* pred : predictors) {
    pred->observe(0, p);
    EXPECT_EQ(pred->observations(), 1u);
    EXPECT_DOUBLE_EQ(pred->predict(1).x, 1.0);
  }
}

}  // namespace
}  // namespace cvr::motion
