#include "src/proto/codec.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace cvr::proto {
namespace {

TEST(Codec, PrimitiveRoundTrips) {
  Buffer buffer;
  Writer writer(buffer);
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.f64(-3.14159);
  Reader reader(buffer);
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(reader.f64(), -3.14159);
  EXPECT_TRUE(reader.done());
}

TEST(Codec, LittleEndianLayout) {
  Buffer buffer;
  Writer writer(buffer);
  writer.u32(0x01020304);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0], 0x04);
  EXPECT_EQ(buffer[3], 0x01);
}

TEST(Codec, BytesRoundTrip) {
  Buffer buffer;
  Writer writer(buffer);
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  writer.bytes(data, 5);
  Reader reader(buffer);
  const Buffer out = reader.bytes();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], 5);
  EXPECT_TRUE(reader.done());
}

TEST(Codec, TruncationThrows) {
  Buffer buffer;
  Writer writer(buffer);
  writer.u16(7);
  Reader reader(buffer);
  EXPECT_THROW(reader.u32(), std::out_of_range);
  Reader reader2(buffer);
  reader2.u8();
  reader2.u8();
  EXPECT_THROW(reader2.u8(), std::out_of_range);
}

TEST(Codec, SpecialFloats) {
  Buffer buffer;
  Writer writer(buffer);
  writer.f64(0.0);
  writer.f64(-0.0);
  writer.f64(1e308);
  writer.f64(5e-324);  // denormal
  Reader reader(buffer);
  EXPECT_DOUBLE_EQ(reader.f64(), 0.0);
  EXPECT_DOUBLE_EQ(reader.f64(), -0.0);
  EXPECT_DOUBLE_EQ(reader.f64(), 1e308);
  EXPECT_DOUBLE_EQ(reader.f64(), 5e-324);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (the classic check value).
  const char* data = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(data), 9),
            0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Frame, RoundTrip) {
  Buffer payload = {10, 20, 30};
  const Buffer framed = frame(payload);
  Reader reader(framed);
  EXPECT_EQ(unframe(reader), payload);
  EXPECT_TRUE(reader.done());
}

TEST(Frame, EmptyPayloadOk) {
  const Buffer framed = frame({});
  Reader reader(framed);
  EXPECT_TRUE(unframe(reader).empty());
}

TEST(Frame, CorruptionDetected) {
  Buffer payload = {1, 2, 3, 4};
  Buffer framed = frame(payload);
  framed[5] ^= 0x01;  // flip a payload bit
  Reader reader(framed);
  EXPECT_THROW(unframe(reader), std::runtime_error);
}

TEST(Frame, BadLengthDetected) {
  Buffer framed = frame({1, 2, 3});
  framed[0] = 200;  // claims a longer payload than present
  Reader reader(framed);
  EXPECT_THROW(unframe(reader), std::runtime_error);
}

TEST(Frame, BackToBackFrames) {
  const Buffer a = frame({1});
  const Buffer b = frame({2, 3});
  Buffer stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  Reader reader(stream);
  EXPECT_EQ(unframe(reader).size(), 1u);
  EXPECT_EQ(unframe(reader).size(), 2u);
  EXPECT_TRUE(reader.done());
}

TEST(Frame, FuzzRandomBytesNeverCrash) {
  cvr::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Buffer garbage;
    const int size = static_cast<int>(rng.uniform_int(0, 64));
    for (int b = 0; b < size; ++b) {
      garbage.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    Reader reader(garbage);
    try {
      (void)unframe(reader);
    } catch (const std::exception&) {
      // Throwing is fine; crashing is not.
    }
  }
}

}  // namespace
}  // namespace cvr::proto
