// Determinism must survive parallelism: the (algorithm, repeat) cell
// grid of experiments::run_ensemble produces bit-identical outcomes
// whether the cells run serially (threads = 1, the legacy oracle:
// one allocator per arm, reset between repeats) or on a thread pool
// (threads >= 2, a fresh allocator per cell, spec-order reduction).
// These suites are also the TSan workload CI runs against the pool
// (see CONTRIBUTING.md).
#include "src/experiments/ensemble.h"

#include <gtest/gtest.h>

#include <vector>

namespace cvr::experiments {
namespace {

EnsembleSpec trace_spec() {
  EnsembleSpec spec;
  spec.platform = EnsembleSpec::Platform::kTrace;
  spec.users = 3;
  spec.slots = 150;
  spec.repeats = 3;
  spec.algorithms = {"dv", "firefly", "pavq"};
  return spec;
}

EnsembleSpec system_spec() {
  EnsembleSpec spec = trace_spec();
  spec.platform = EnsembleSpec::Platform::kSystem;
  spec.routers = 2;  // interference on: the noisier platform
  return spec;
}

// Bit-identical on every semantic field; wall-clock timings are
// measurement metadata and deliberately excluded (only their shape is
// checked).
void expect_identical_arms(const std::vector<sim::ArmResult>& serial,
                           const std::vector<sim::ArmResult>& parallel,
                           std::size_t repeats) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t a = 0; a < serial.size(); ++a) {
    SCOPED_TRACE("arm " + serial[a].algorithm);
    EXPECT_EQ(serial[a].algorithm, parallel[a].algorithm);
    EXPECT_EQ(serial[a].run_wall_ms.size(), repeats);
    EXPECT_EQ(parallel[a].run_wall_ms.size(), repeats);
    ASSERT_EQ(serial[a].outcomes.size(), parallel[a].outcomes.size());
    for (std::size_t o = 0; o < serial[a].outcomes.size(); ++o) {
      const sim::UserOutcome& x = serial[a].outcomes[o];
      const sim::UserOutcome& y = parallel[a].outcomes[o];
      EXPECT_EQ(x.avg_qoe, y.avg_qoe) << "outcome " << o;
      EXPECT_EQ(x.avg_quality, y.avg_quality) << "outcome " << o;
      EXPECT_EQ(x.avg_level, y.avg_level) << "outcome " << o;
      EXPECT_EQ(x.avg_delay_ms, y.avg_delay_ms) << "outcome " << o;
      EXPECT_EQ(x.variance, y.variance) << "outcome " << o;
      EXPECT_EQ(x.prediction_accuracy, y.prediction_accuracy)
          << "outcome " << o;
      EXPECT_EQ(x.fps, y.fps) << "outcome " << o;
    }
  }
}

TEST(EnsembleDeterminism, TraceParallelMatchesSerialOracle) {
  EnsembleSpec serial = trace_spec();
  serial.threads = 1;
  EnsembleSpec parallel = trace_spec();
  parallel.threads = 4;
  expect_identical_arms(run_ensemble(serial), run_ensemble(parallel),
                        serial.repeats);
}

TEST(EnsembleDeterminism, SystemParallelMatchesSerialOracle) {
  EnsembleSpec serial = system_spec();
  serial.threads = 1;
  EnsembleSpec parallel = system_spec();
  parallel.threads = 4;
  expect_identical_arms(run_ensemble(serial), run_ensemble(parallel),
                        serial.repeats);
}

TEST(EnsembleDeterminism, HardwareThreadsMatchSerialOracle) {
  EnsembleSpec serial = trace_spec();
  serial.threads = 1;
  EnsembleSpec hardware = trace_spec();
  hardware.threads = 0;  // resolve to hardware_concurrency
  expect_identical_arms(run_ensemble(serial), run_ensemble(hardware),
                        serial.repeats);
}

TEST(EnsembleDeterminism, ParallelRunsAreRepeatable) {
  EnsembleSpec spec = system_spec();
  spec.threads = 3;
  expect_identical_arms(run_ensemble(spec), run_ensemble(spec), spec.repeats);
}

TEST(EnsembleDeterminism, TimingIsRecordedPerRepeat) {
  EnsembleSpec spec = trace_spec();
  spec.threads = 2;
  const auto arms = run_ensemble(spec);
  for (const auto& arm : arms) {
    ASSERT_EQ(arm.run_wall_ms.size(), spec.repeats);
    for (double ms : arm.run_wall_ms) EXPECT_GE(ms, 0.0);
    EXPECT_GT(arm.total_wall_ms(), 0.0);
    EXPECT_NEAR(arm.mean_wall_ms(),
                arm.total_wall_ms() / static_cast<double>(spec.repeats),
                1e-9);
  }
}

TEST(EnsembleDeterminism, NamedFieldValidationMessages) {
  EnsembleSpec spec = trace_spec();
  spec.users = 0;
  try {
    run_ensemble(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("users"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("0"), std::string::npos);
  }
  spec = trace_spec();
  spec.routers = 3;
  try {
    run_ensemble(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("routers"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("3"), std::string::npos);
  }
  spec = trace_spec();
  spec.algorithms = {"dv", "nope"};
  try {
    run_ensemble(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("'nope'"), std::string::npos);
    EXPECT_NE(what.find("algorithms[1]"), std::string::npos);
    EXPECT_NE(what.find("firefly"), std::string::npos);  // known-name list
  }
}

}  // namespace
}  // namespace cvr::experiments
