#include "src/system/timeline.h"

#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

namespace cvr::system {
namespace {

SlotRecord record(std::size_t slot, std::size_t user, double demand,
                  double granted, double estimate, double capacity) {
  SlotRecord r;
  r.slot = slot;
  r.user = user;
  r.demand_mbps = demand;
  r.granted_mbps = granted;
  r.bandwidth_estimate_mbps = estimate;
  r.capacity_mbps = capacity;
  return r;
}

TEST(Timeline, EmptySummaries) {
  Timeline timeline;
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_DOUBLE_EQ(timeline.saturation_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(timeline.mean_bandwidth_error_mbps(), 0.0);
}

TEST(Timeline, SaturationFraction) {
  Timeline timeline;
  timeline.add(record(0, 0, 10.0, 10.0, 40.0, 40.0));  // fully granted
  timeline.add(record(1, 0, 20.0, 15.0, 40.0, 40.0));  // saturated
  timeline.add(record(2, 0, 0.0, 0.0, 40.0, 40.0));    // idle
  timeline.add(record(3, 0, 30.0, 12.0, 40.0, 40.0));  // saturated
  EXPECT_DOUBLE_EQ(timeline.saturation_fraction(), 0.5);
}

TEST(Timeline, BandwidthError) {
  Timeline timeline;
  timeline.add(record(0, 0, 0, 0, 50.0, 40.0));  // +10
  timeline.add(record(1, 0, 0, 0, 30.0, 40.0));  // -10
  EXPECT_DOUBLE_EQ(timeline.mean_bandwidth_error_mbps(), 10.0);
}

TEST(Timeline, ForUserFilters) {
  Timeline timeline;
  timeline.add(record(0, 0, 0, 0, 0, 0));
  timeline.add(record(0, 1, 0, 0, 0, 0));
  timeline.add(record(1, 0, 0, 0, 0, 0));
  const auto user0 = timeline.for_user(0);
  ASSERT_EQ(user0.size(), 2u);
  EXPECT_EQ(user0[1].slot, 1u);
}

TEST(Timeline, CsvShape) {
  Timeline timeline;
  timeline.add(record(3, 1, 5.0, 5.0, 40.0, 42.0));
  const CsvTable table = timeline.to_csv();
  EXPECT_EQ(table.header.size(), 13u);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].size(), 13u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 3.0);
  EXPECT_DOUBLE_EQ(table.rows[0][1], 1.0);
}

TEST(Timeline, SystemSimFillsOneRecordPerSlotUser) {
  SystemSimConfig config = setup_one_router(3);
  config.slots = 200;
  const SystemSim sim(config);
  core::DvGreedyAllocator alloc;
  Timeline timeline;
  sim.run(alloc, 0, &timeline);
  EXPECT_EQ(timeline.size(), 200u * 3u);

  for (const auto& r : timeline.records()) {
    EXPECT_LT(r.slot, 200u);
    EXPECT_LT(r.user, 3u);
    EXPECT_TRUE(content::is_valid_level(r.level));
    EXPECT_GE(r.granted_mbps, 0.0);
    EXPECT_LE(r.granted_mbps, r.demand_mbps + 1e-9);  // grant <= demand
    EXPECT_GE(r.delta_estimate, 0.0);
    EXPECT_LE(r.delta_estimate, 1.0);
    EXPECT_GE(r.packets_lost, 0u);
    EXPECT_LE(r.packets_lost, r.packets);
    EXPECT_GE(r.displayed_quality, 0.0);
    EXPECT_LE(r.displayed_quality, static_cast<double>(r.level));
  }
}

TEST(Timeline, AttachedRunMatchesPlainRun) {
  // Instrumentation must not perturb the simulation.
  SystemSimConfig config = setup_one_router(2);
  config.slots = 150;
  const SystemSim sim(config);
  core::DvGreedyAllocator a, b;
  Timeline timeline;
  const auto with = sim.run(a, 1, &timeline);
  const auto without = sim.run(b, 1);
  for (std::size_t u = 0; u < with.size(); ++u) {
    EXPECT_DOUBLE_EQ(with[u].avg_qoe, without[u].avg_qoe);
  }
}

TEST(Timeline, InterferenceRaisesSaturationAndError) {
  core::DvGreedyAllocator a, b;
  SystemSimConfig quiet = setup_one_router(4);
  quiet.slots = 400;
  Timeline quiet_tl;
  SystemSim(quiet).run(a, 0, &quiet_tl);

  SystemSimConfig noisy = quiet;
  noisy.channel.interference = true;
  Timeline noisy_tl;
  SystemSim(noisy).run(b, 0, &noisy_tl);

  EXPECT_GE(noisy_tl.saturation_fraction(),
            quiet_tl.saturation_fraction());
  EXPECT_GT(noisy_tl.mean_bandwidth_error_mbps(),
            quiet_tl.mean_bandwidth_error_mbps());
}

}  // namespace
}  // namespace cvr::system
