// Long-horizon soak: several simulated minutes through both platforms —
// no drift, no NaN, no metric leaving its physical range, bookkeeping
// exactly consistent at the end. Deliberately the slowest test in the
// suite (a few seconds); everything else stays fast.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/dv_greedy.h"
#include "src/core/pavq.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"

namespace cvr {
namespace {

TEST(Soak, TraceSimulationFiveMinutes) {
  trace::TraceRepositoryConfig repo_config;
  const trace::TraceRepository repo(repo_config, 9);  // full 300 s traces
  sim::TraceSimConfig config;
  config.users = 5;
  config.slots = 19800;  // 300 s at 66 FPS — the paper's full horizon
  const sim::TraceSimulation simulation(config, repo);
  core::DvGreedyAllocator alloc;
  const auto outcomes = simulation.run(alloc, 0);
  ASSERT_EQ(outcomes.size(), 5u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(std::isfinite(o.avg_qoe));
    EXPECT_GT(o.avg_qoe, -5.0);
    EXPECT_LT(o.avg_qoe, 6.0);
    EXPECT_GE(o.avg_quality, 1.0 * o.prediction_accuracy - 1e-9);
    EXPECT_LE(o.avg_quality, 6.0);
    EXPECT_GT(o.prediction_accuracy, 0.7);
  }
}

TEST(Soak, SystemSimulationTwoMinutes) {
  system::SystemSimConfig config = system::setup_two_routers(8);
  config.slots = 7920;  // 120 s
  const system::SystemSim sim(config);
  core::PavqAllocator alloc;  // the stateful price path gets soaked too
  system::Timeline timeline;
  const auto outcomes = sim.run(alloc, 0, &timeline);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(timeline.size(), 7920u * 8u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(std::isfinite(o.avg_qoe));
    EXPECT_GE(o.fps, 30.0);  // never collapses to a slideshow
    EXPECT_LE(o.fps, 66.1);
  }
  // Timeline bookkeeping stays physical across the whole horizon.
  for (const auto& r : timeline.records()) {
    EXPECT_TRUE(std::isfinite(r.delay_ms));
    EXPECT_GE(r.delay_ms, 0.0);
    EXPECT_LE(r.granted_mbps, r.demand_mbps + 1e-9);
    EXPECT_LE(r.packets_lost, r.packets);
  }
}

TEST(Soak, LongHorizonVarianceBookkeepingExact) {
  // After 300 s the Welford-based accumulator must still agree with a
  // naive two-pass variance to machine precision (no drift).
  core::UserQoeAccumulator acc;
  std::vector<double> samples;
  cvr::Rng rng(4);
  for (int t = 0; t < 19800; ++t) {
    const auto q = static_cast<core::QualityLevel>(rng.uniform_int(1, 6));
    const bool viewed = rng.bernoulli(0.93);
    acc.record(q, viewed, rng.uniform(0.0, 10.0));
    samples.push_back(viewed ? static_cast<double>(q) : 0.0);
  }
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(samples.size());
  EXPECT_NEAR(acc.variance(), var, 1e-9);
  EXPECT_NEAR(acc.mean_viewed_quality(), mean, 1e-12);
}

}  // namespace
}  // namespace cvr
