#include "src/motion/accuracy.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace cvr::motion {
namespace {

TEST(AccuracyEstimator, PriorBeforeEvidence) {
  AccuracyEstimator est(0.9, 5.0);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.9);
  EXPECT_EQ(est.observations(), 0u);
}

TEST(AccuracyEstimator, ConvergesToTrueRate) {
  // Section III: delta_bar converges to delta.
  AccuracyEstimator est;
  cvr::Rng rng(1);
  const double true_delta = 0.85;
  for (int i = 0; i < 20000; ++i) est.record(rng.bernoulli(true_delta));
  EXPECT_NEAR(est.estimate(), true_delta, 0.01);
}

TEST(AccuracyEstimator, AllHitsApproachesOne) {
  AccuracyEstimator est(0.5, 2.0);
  for (int i = 0; i < 1000; ++i) est.record(true);
  EXPECT_GT(est.estimate(), 0.99);
  EXPECT_LT(est.estimate(), 1.0);  // prior keeps it strictly below 1
}

TEST(AccuracyEstimator, AllMissesApproachesZero) {
  AccuracyEstimator est(0.5, 2.0);
  for (int i = 0; i < 1000; ++i) est.record(false);
  EXPECT_LT(est.estimate(), 0.01);
  EXPECT_GT(est.estimate(), 0.0);
}

TEST(AccuracyEstimator, PriorSmoothsEarlySamples) {
  AccuracyEstimator est(0.9, 10.0);
  est.record(false);  // one miss should barely move a strong prior
  EXPECT_GT(est.estimate(), 0.8);
}

TEST(AccuracyEstimator, RejectsInvalidPrior) {
  EXPECT_THROW(AccuracyEstimator(1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(AccuracyEstimator(0.5, -1.0), std::invalid_argument);
}

TEST(EmaAccuracyEstimator, TracksRegimeChange) {
  EmaAccuracyEstimator est(0.05, 0.9);
  for (int i = 0; i < 500; ++i) est.record(true);
  EXPECT_GT(est.estimate(), 0.95);
  for (int i = 0; i < 500; ++i) est.record(false);
  EXPECT_LT(est.estimate(), 0.05);
}

TEST(EmaAccuracyEstimator, FasterAlphaAdaptsFaster) {
  EmaAccuracyEstimator slow(0.01, 1.0);
  EmaAccuracyEstimator fast(0.2, 1.0);
  for (int i = 0; i < 20; ++i) {
    slow.record(false);
    fast.record(false);
  }
  EXPECT_LT(fast.estimate(), slow.estimate());
}

TEST(EmaAccuracyEstimator, RejectsBadAlpha) {
  EXPECT_THROW(EmaAccuracyEstimator(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(EmaAccuracyEstimator(1.5, 0.5), std::invalid_argument);
}

TEST(EmaAccuracyEstimator, StaysInUnitInterval) {
  EmaAccuracyEstimator est(0.3, 0.5);
  cvr::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    est.record(rng.bernoulli(0.5));
    EXPECT_GE(est.estimate(), 0.0);
    EXPECT_LE(est.estimate(), 1.0);
  }
}

}  // namespace
}  // namespace cvr::motion
