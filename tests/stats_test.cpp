#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace cvr {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  // Population variance of 1..6 is 35/12.
  EXPECT_NEAR(s.population_variance(), 35.0 / 12.0, 1e-12);
  EXPECT_NEAR(s.sample_variance(), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 21.0);
}

TEST(RunningStat, WelfordIsNumericallyStableForLargeOffsets) {
  RunningStat s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.population_variance(), 1.0, 1e-6);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(5);
  RunningStat all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i < 200 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.population_variance(), all.population_variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Cdf, AtOnKnownSamples) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, QuantileInterpolates) {
  Cdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(Cdf, QuantileClampsP) {
  Cdf cdf({1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 2.0);
}

TEST(Cdf, QuantileThrowsOnEmpty) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
}

TEST(Cdf, AddKeepsOrderInvariant) {
  Cdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  const auto& sorted = cdf.sorted_samples();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
}

TEST(Cdf, MeanMatches) {
  Cdf cdf({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(Cdf, CurveEndpointsAndMonotonicity) {
  Rng rng(6);
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.normal());
  const auto curve = cdf.curve(33);
  ASSERT_EQ(curve.size(), 33u);
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
}

TEST(Cdf, CurveSmallSampleReturnsAll) {
  Cdf cdf({5.0, 1.0});
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].first, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].second, 1.0);
}

TEST(Summary, FiveNumber) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// Property sweep: population variance from RunningStat equals the naive
// two-pass formula for random data.
class WelfordPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WelfordPropertyTest, MatchesTwoPassVariance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  RunningStat s;
  const int n = 100 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0) + rng.uniform(-1.0, 1.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= n;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.population_variance(), var, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace cvr
