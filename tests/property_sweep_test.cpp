// Broad parameterized property sweeps: the allocator-family invariants
// that must hold at EVERY point of the (alpha, beta, N, budget) grid,
// not just the configurations the figure benches exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"
#include "src/core/lagrangian.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/util/rng.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;

// (alpha, beta, users, budget tightness)
using GridPoint = std::tuple<double, double, int, double>;

SlotProblem grid_problem(const GridPoint& point, std::uint64_t seed) {
  const auto [alpha, beta, users, tightness] = point;
  cvr::Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{alpha, beta};
  double total_min = 0.0;
  for (int n = 0; n < users; ++n) {
    problem.users.push_back(make_crf_user(
        rng.uniform(20.0, 100.0), rng.uniform(0.5, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 300.0),
        rng.lognormal(0.0, 0.2)));
    total_min += problem.users.back().rate[0];
  }
  problem.server_bandwidth = total_min * tightness;
  return problem;
}

class AllocatorGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(AllocatorGrid, DvGreedyInvariants) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SlotProblem problem = grid_problem(GetParam(), seed);
    DvGreedyAllocator alloc;
    const Allocation a = alloc.allocate(problem);
    ASSERT_EQ(a.levels.size(), problem.user_count());
    EXPECT_TRUE(std::isfinite(a.objective));
    EXPECT_NEAR(a.objective, evaluate(problem, a.levels), 1e-9);
    // Feasibility (mandatory minimum excepted).
    bool all_ones = true;
    for (QualityLevel q : a.levels) {
      EXPECT_TRUE(content::is_valid_level(q));
      if (q != 1) all_ones = false;
    }
    if (!all_ones) {
      EXPECT_TRUE(server_feasible(problem, a.levels));
    }
  }
}

TEST_P(AllocatorGrid, GreedyNeverBeatsUpperBounds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SlotProblem problem = grid_problem(GetParam(), seed);
    DvGreedyAllocator alloc;
    const double value = alloc.allocate(problem).objective;
    EXPECT_LE(value, fractional_upper_bound(problem) + 1e-6) << seed;
    EXPECT_LE(value, lagrangian_dual_bound(problem) + 1e-6) << seed;
  }
}

TEST_P(AllocatorGrid, LagrangianMatchesGreedyClass) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const SlotProblem problem = grid_problem(GetParam(), seed);
    DvGreedyAllocator dv;
    LagrangianAllocator lagrangian;
    const double vd = dv.allocate(problem).objective;
    const double vl = lagrangian.allocate(problem).objective;
    // Both are near-optimal schemes: they agree within the value of the
    // single largest increment on the instance.
    double max_increment = 0.0;
    for (const auto& user : problem.users) {
      for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
        max_increment = std::max(
            max_increment, std::abs(h_increment(user, q, problem.params)));
      }
    }
    EXPECT_NEAR(vd, vl, max_increment + 1e-6) << seed;
  }
}

TEST_P(AllocatorGrid, DeterministicAcrossInstances) {
  const SlotProblem problem = grid_problem(GetParam(), 42);
  DvGreedyAllocator a, b;
  PavqAllocator pa, pb;
  EXPECT_EQ(a.allocate(problem).levels, b.allocate(problem).levels);
  EXPECT_EQ(pa.allocate(problem).levels, pb.allocate(problem).levels);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllocatorGrid,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.5),   // alpha
                       ::testing::Values(0.0, 0.5, 5.0),    // beta
                       ::testing::Values(1, 4, 12),         // users
                       ::testing::Values(0.8, 1.5, 3.0)));  // tightness

// Exactness sweep: at every grid point with few users, the DV-greedy
// gain stays >= 1/2 of the exact optimum's gain (Theorem 1).
class TheoremGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(TheoremGrid, HalfApproximationHolds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SlotProblem problem = grid_problem(GetParam(), seed);
    DvGreedyAllocator greedy;
    BruteForceAllocator brute;
    const std::vector<QualityLevel> ones(problem.user_count(), 1);
    const double base = evaluate(problem, ones);
    const double opt_gain = brute.allocate(problem).objective - base;
    const double greedy_gain = greedy.allocate(problem).objective - base;
    EXPECT_GE(greedy_gain, 0.5 * opt_gain - 1e-9) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoremGrid,
    ::testing::Combine(::testing::Values(0.02, 0.3),      // alpha
                       ::testing::Values(0.0, 1.0),       // beta
                       ::testing::Values(3, 5),           // users
                       ::testing::Values(1.2, 2.5)));     // tightness

}  // namespace
}  // namespace cvr::core
