#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"

namespace cvr::sim {
namespace {

trace::TraceRepositoryConfig small_repo_config() {
  trace::TraceRepositoryConfig config;
  config.fcc_pool_size = 8;
  config.lte_pool_size = 4;
  config.fcc.duration_s = 30.0;
  config.lte.duration_s = 30.0;
  return config;
}

TraceSimConfig small_sim_config(std::size_t users = 3,
                                std::size_t slots = 300) {
  TraceSimConfig config;
  config.users = users;
  config.slots = slots;
  return config;
}

TEST(TraceSimulation, ProducesOneOutcomePerUser) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(4), repo);
  core::DvGreedyAllocator alloc;
  const auto outcomes = sim.run(alloc, 0);
  EXPECT_EQ(outcomes.size(), 4u);
}

TEST(TraceSimulation, OutcomesWithinPhysicalRanges) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(3, 500), repo);
  core::DvGreedyAllocator alloc;
  for (const auto& o : sim.run(alloc, 0)) {
    EXPECT_GE(o.avg_quality, 0.0);
    EXPECT_LE(o.avg_quality, 6.0);
    EXPECT_GE(o.avg_delay_ms, 0.0);
    EXPECT_GE(o.variance, 0.0);
    EXPECT_LE(o.variance, 9.0);  // samples in [0,6]
    EXPECT_GE(o.prediction_accuracy, 0.0);
    EXPECT_LE(o.prediction_accuracy, 1.0);
  }
}

TEST(TraceSimulation, Deterministic) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(), repo);
  core::DvGreedyAllocator a, b;
  const auto x = sim.run(a, 2);
  const auto y = sim.run(b, 2);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
    EXPECT_DOUBLE_EQ(x[u].avg_delay_ms, y[u].avg_delay_ms);
  }
}

TEST(TraceSimulation, RunsDiffer) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(), repo);
  core::DvGreedyAllocator alloc;
  const auto x = sim.run(alloc, 0);
  const auto y = sim.run(alloc, 1);
  EXPECT_NE(x[0].avg_qoe, y[0].avg_qoe);
}

TEST(TraceSimulation, PredictionAccuracyIsHigh) {
  // The Section-II premise: linear regression predicts motion with high
  // (but imperfect) accuracy.
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(3, 1000), repo);
  core::DvGreedyAllocator alloc;
  for (const auto& o : sim.run(alloc, 0)) {
    EXPECT_GT(o.prediction_accuracy, 0.7);
    EXPECT_LT(o.prediction_accuracy, 1.0);
  }
}

TEST(TraceSimulation, CompareRunsAllArms) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(2, 200), repo);
  core::DvGreedyAllocator ours;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq;
  const auto arms = sim.compare({&ours, &firefly, &pavq}, 3);
  ASSERT_EQ(arms.size(), 3u);
  EXPECT_EQ(arms[0].algorithm, "dv-greedy");
  EXPECT_EQ(arms[1].algorithm, "firefly-aqc");
  EXPECT_EQ(arms[2].algorithm, "pavq-modified");
  for (const auto& arm : arms) {
    EXPECT_EQ(arm.outcomes.size(), 2u * 3u);
  }
}

TEST(TraceSimulation, CompareRejectsNull) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(), repo);
  EXPECT_THROW(sim.compare({nullptr}, 1), std::invalid_argument);
}

TEST(TraceSimulation, RejectsZeroUsersOrSlots) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  EXPECT_THROW(TraceSimulation(small_sim_config(0), repo),
               std::invalid_argument);
  EXPECT_THROW(TraceSimulation(small_sim_config(2, 0), repo),
               std::invalid_argument);
}

TEST(TraceSimulation, HigherBetaLowersRealizedVariance) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  TraceSimConfig lo = small_sim_config(3, 800);
  lo.params.beta = 0.0;
  TraceSimConfig hi = lo;
  hi.params.beta = 5.0;
  const TraceSimulation sim_lo(lo, repo);
  const TraceSimulation sim_hi(hi, repo);
  core::DvGreedyAllocator a, b;
  double var_lo = 0.0, var_hi = 0.0;
  for (const auto& o : sim_lo.run(a, 0)) var_lo += o.variance;
  for (const auto& o : sim_hi.run(b, 0)) var_hi += o.variance;
  EXPECT_LT(var_hi, var_lo);
}

TEST(TraceSimulation, ScenesChangeContentCosts) {
  // Two users on different scenes see different rate functions even
  // with identical motion/network: their outcomes differ; with a single
  // scene and identical everything else, the scene dimension vanishes.
  const trace::TraceRepository repo(small_repo_config(), 1);
  TraceSimConfig two_scene = small_sim_config(2, 400);
  two_scene.scenes = 2;
  TraceSimConfig one_scene = two_scene;
  one_scene.scenes = 1;
  core::DvGreedyAllocator a, b;
  const auto two = TraceSimulation(two_scene, repo).run(a, 0);
  const auto one = TraceSimulation(one_scene, repo).run(b, 0);
  // User 1's scene changes its rate functions, and through the shared
  // budget that perturbs everyone: both users' outcomes shift.
  EXPECT_NE(two[1].avg_qoe, one[1].avg_qoe);

  // With a single user the scene count is irrelevant (user 0 is always
  // on scene 0): identical outcomes.
  TraceSimConfig solo_two = small_sim_config(1, 400);
  solo_two.scenes = 2;
  TraceSimConfig solo_one = solo_two;
  solo_one.scenes = 1;
  core::DvGreedyAllocator c, d;
  const auto s2 = TraceSimulation(solo_two, repo).run(c, 0);
  const auto s1 = TraceSimulation(solo_one, repo).run(d, 0);
  EXPECT_DOUBLE_EQ(s2[0].avg_qoe, s1[0].avg_qoe);
}

TEST(TraceSimulation, SlotLogRecordsEverything) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  const TraceSimulation sim(small_sim_config(3, 250), repo);
  core::DvGreedyAllocator alloc;
  std::vector<TraceSlotRecord> log;
  sim.run(alloc, 0, &log);
  ASSERT_EQ(log.size(), 250u * 3u);
  std::size_t hits = 0;
  for (const auto& r : log) {
    EXPECT_LT(r.slot, 250u);
    EXPECT_LT(r.user, 3u);
    EXPECT_TRUE(content::is_valid_level(r.level));
    EXPECT_GT(r.bandwidth_mbps, 0.0);
    EXPECT_GT(r.rate_mbps, 0.0);
    EXPECT_GE(r.delay_ms, 0.0);
    EXPECT_GE(r.delta_estimate, 0.0);
    EXPECT_LE(r.delta_estimate, 1.0);
    EXPECT_GE(r.qbar, 0.0);
    EXPECT_LE(r.qbar, 6.0);
    hits += r.hit ? 1 : 0;
  }
  EXPECT_GT(hits, log.size() / 2);  // mostly covered

  // Logging must not perturb outcomes.
  core::DvGreedyAllocator fresh;
  const auto with_log_outcomes = sim.run(alloc, 0);
  const auto plain = sim.run(fresh, 0);
  for (std::size_t u = 0; u < plain.size(); ++u) {
    EXPECT_DOUBLE_EQ(with_log_outcomes[u].avg_qoe, plain[u].avg_qoe);
  }
}

TEST(TraceSimulation, ZeroScenesRejected) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  TraceSimConfig config = small_sim_config();
  config.scenes = 0;
  EXPECT_THROW(TraceSimulation(config, repo), std::invalid_argument);
}

TEST(TraceSimulation, HigherAlphaLowersRealizedDelay) {
  const trace::TraceRepository repo(small_repo_config(), 1);
  TraceSimConfig lo = small_sim_config(3, 800);
  lo.params.alpha = 0.0;
  lo.params.beta = 0.0;
  TraceSimConfig hi = lo;
  hi.params.alpha = 0.5;
  const TraceSimulation sim_lo(lo, repo);
  const TraceSimulation sim_hi(hi, repo);
  core::DvGreedyAllocator a, b;
  double d_lo = 0.0, d_hi = 0.0;
  for (const auto& o : sim_lo.run(a, 0)) d_lo += o.avg_delay_ms;
  for (const auto& o : sim_hi.run(b, 0)) d_hi += o.avg_delay_ms;
  EXPECT_LT(d_hi, d_lo);
}

}  // namespace
}  // namespace cvr::sim
