#include "src/motion/motion_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvr::motion {
namespace {

TEST(MotionGenerator, Deterministic) {
  MotionGenerator gen;
  const MotionTrace a = gen.generate(1, 0, 500);
  const MotionTrace b = gen.generate(1, 0, 500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].yaw, b[i].yaw);
  }
}

TEST(MotionGenerator, UsersDiffer) {
  MotionGenerator gen;
  const MotionTrace a = gen.generate(1, 0, 100);
  const MotionTrace b = gen.generate(1, 1, 100);
  EXPECT_NE(a[0].x, b[0].x);
}

TEST(MotionGenerator, RequestedLength) {
  MotionGenerator gen;
  EXPECT_EQ(gen.generate(1, 0, 321).size(), 321u);
  EXPECT_TRUE(gen.generate(1, 0, 0).empty());
}

TEST(MotionGenerator, StaysInsideScene) {
  MotionGeneratorConfig config;
  MotionGenerator gen(config);
  const MotionTrace t = gen.generate(2, 3, 5000);
  for (const Pose& p : t) {
    EXPECT_GE(p.x, -0.026);  // half-cell slack from grid snapping
    EXPECT_LE(p.x, config.scene_width_m + 0.026);
    EXPECT_GE(p.y, -0.026);
    EXPECT_LE(p.y, config.scene_depth_m + 0.026);
    EXPECT_DOUBLE_EQ(p.z, config.eye_height_m);
  }
}

TEST(MotionGenerator, PositionsAreGridSnapped) {
  MotionGenerator gen;
  const MotionTrace t = gen.generate(4, 0, 200);
  for (const Pose& p : t) {
    const double rx = p.x / 0.05;
    EXPECT_NEAR(rx, std::round(rx), 1e-9);
    const double ry = p.y / 0.05;
    EXPECT_NEAR(ry, std::round(ry), 1e-9);
  }
}

TEST(MotionGenerator, SpeedBounded) {
  MotionGeneratorConfig config;
  MotionGenerator gen(config);
  const MotionTrace t = gen.generate(5, 0, 3000);
  const double max_step =
      config.max_speed_mps * config.slot_seconds + 0.1;  // + grid snap slack
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i].position_distance(t[i - 1]), max_step) << "slot " << i;
  }
}

TEST(MotionGenerator, AnglesCanonical) {
  MotionGenerator gen;
  const MotionTrace t = gen.generate(6, 0, 2000);
  for (const Pose& p : t) {
    EXPECT_GE(p.yaw, -180.0);
    EXPECT_LT(p.yaw, 180.0);
    EXPECT_GE(p.pitch, -90.0);
    EXPECT_LE(p.pitch, 90.0);
  }
}

TEST(MotionGenerator, PitchRespectsConfiguredLimit) {
  MotionGeneratorConfig config;
  config.pitch_limit_deg = 30.0;
  MotionGenerator gen(config);
  const MotionTrace t = gen.generate(7, 0, 3000);
  for (const Pose& p : t) {
    EXPECT_LE(std::abs(p.pitch), 30.0 + 1e-9);
  }
}

TEST(MotionGenerator, UserActuallyMoves) {
  MotionGenerator gen;
  const MotionTrace t = gen.generate(8, 0, 5000);
  double total = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    total += t[i].position_distance(t[i - 1]);
  }
  EXPECT_GT(total, 1.0);  // walks at least a metre over ~75 s
}

TEST(MotionGenerator, HeadTurns) {
  MotionGenerator gen;
  const MotionTrace t = gen.generate(9, 0, 5000);
  double max_yaw_excursion = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    max_yaw_excursion = std::max(
        max_yaw_excursion, std::abs(angular_difference(t[i].yaw, t[0].yaw)));
  }
  EXPECT_GT(max_yaw_excursion, 30.0);
}

TEST(MotionGenerator, MostMotionIsSmooth) {
  // Prediction needs smoothness: the vast majority of per-slot yaw steps
  // should be small even though saccades exist.
  MotionGeneratorConfig config;
  MotionGenerator gen(config);
  const MotionTrace t = gen.generate(10, 0, 5000);
  std::size_t small_steps = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (std::abs(angular_difference(t[i].yaw, t[i - 1].yaw)) < 6.0) {
      ++small_steps;
    }
  }
  EXPECT_GT(static_cast<double>(small_steps) / static_cast<double>(t.size()),
            0.9);
}

TEST(MotionGenerator, RejectsBadConfig) {
  MotionGeneratorConfig bad;
  bad.scene_width_m = 0.0;
  EXPECT_THROW(MotionGenerator{bad}, std::invalid_argument);
  MotionGeneratorConfig bad2;
  bad2.slot_seconds = -1.0;
  EXPECT_THROW(MotionGenerator{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr::motion
