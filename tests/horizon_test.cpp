#include "src/core/horizon.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/optimal.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;

HorizonProblem make_problem(std::size_t horizon, std::size_t users,
                            double bandwidth = 100.0,
                            double server_budget = 200.0,
                            QoeParams params = QoeParams{0.02, 0.5}) {
  HorizonProblem problem;
  problem.params = params;
  for (std::size_t t = 0; t < horizon; ++t) {
    SlotProblem slot;
    slot.params = params;
    slot.server_bandwidth = server_budget;
    for (std::size_t n = 0; n < users; ++n) {
      slot.users.push_back(make_crf_user(bandwidth, 1.0, 0.0, 1.0));
    }
    problem.slots.push_back(std::move(slot));
  }
  return problem;
}

TEST(HorizonQoe, MatchesHandComputation) {
  // One user, two slots, levels {2, 4}, alpha = 0, beta = 1:
  // mean = 3, variance = 1, QoE = T * (mean - beta * var) = 2 * 2.
  HorizonProblem problem = make_problem(2, 1, 1000.0, 1000.0, {0.0, 1.0});
  const double qoe = horizon_qoe(problem, {{2}, {4}});
  EXPECT_NEAR(qoe, 2.0 * (3.0 - 1.0), 1e-12);
}

TEST(HorizonQoe, ShapeMismatchThrows) {
  HorizonProblem problem = make_problem(2, 1);
  EXPECT_THROW(horizon_qoe(problem, {{2}}), std::invalid_argument);
  EXPECT_THROW(horizon_qoe(problem, {{2, 3}, {1, 1}}), std::invalid_argument);
}

TEST(HorizonOptimal, ConstantIsBestWithoutConstraints) {
  // beta > 0, ample bandwidth, alpha = 0: the optimum is flat at the top
  // level (any variance only hurts).
  HorizonProblem problem = make_problem(3, 1, 1000.0, 1000.0, {0.0, 0.5});
  std::vector<std::vector<QualityLevel>> best;
  const double value = horizon_optimal(problem, &best);
  for (const auto& slot_levels : best) {
    EXPECT_EQ(slot_levels[0], 6);
  }
  EXPECT_NEAR(value, 3.0 * 6.0, 1e-12);
}

TEST(HorizonOptimal, RespectsPerSlotConstraints) {
  // Slot 2 has a tight server budget: the optimum cannot exceed the
  // feasible level there.
  HorizonProblem problem = make_problem(3, 1, 1000.0, 1000.0, {0.0, 0.0});
  problem.slots[1].server_bandwidth = 25.0;  // only levels 1-2 fit
  std::vector<std::vector<QualityLevel>> best;
  horizon_optimal(problem, &best);
  EXPECT_LE(best[1][0], 2);
  EXPECT_EQ(best[0][0], 6);
  EXPECT_EQ(best[2][0], 6);
}

TEST(HorizonOptimal, TooLargeThrows) {
  HorizonProblem problem = make_problem(10, 4);
  EXPECT_THROW(horizon_optimal(problem), std::invalid_argument);
}

TEST(HorizonSequential, NeverBeatsOptimal) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    HorizonProblem problem = make_problem(3, 2, 40.0 + 7.0 * seed,
                                          60.0 + 11.0 * seed);
    DvGreedyAllocator greedy;
    const double sequential = horizon_sequential(problem, greedy);
    const double optimal = horizon_optimal(problem);
    EXPECT_LE(sequential, optimal + 1e-9) << seed;
  }
}

TEST(HorizonSequential, CloseToOptimalEvenAtTinyT) {
  // The decomposition's practical quality: even where the horizon
  // coupling is strongest (small T), the per-slot DV-greedy stays within
  // a modest factor of the exhaustive optimum.
  HorizonProblem problem = make_problem(4, 1, 60.0, 60.0);
  DvGreedyAllocator greedy;
  const double sequential = horizon_sequential(problem, greedy);
  const double optimal = horizon_optimal(problem);
  ASSERT_GT(optimal, 0.0);
  EXPECT_GE(sequential, 0.75 * optimal);
}

TEST(HorizonSequential, GapPerSlotShrinksWithHorizon) {
  // Eq. (8): (1/T)(QoE_hat - QoE*) -> 0. Compare the average per-slot
  // gap at T = 2 vs T = 6 for a single user.
  DvGreedyAllocator greedy;
  auto gap_per_slot = [&](std::size_t horizon) {
    HorizonProblem problem = make_problem(horizon, 1, 45.0, 45.0);
    const double optimal = horizon_optimal(problem, nullptr, 5e7);
    const double sequential = horizon_sequential(problem, greedy);
    return (optimal - sequential) / static_cast<double>(horizon);
  };
  const double early = gap_per_slot(2);
  const double late = gap_per_slot(6);
  EXPECT_LE(late, early + 1e-9);
}

TEST(HorizonSequential, PerSlotOptimalAlsoValid) {
  HorizonProblem problem = make_problem(3, 2, 50.0, 80.0);
  BruteForceAllocator per_slot_exact;
  const double sequential = horizon_sequential(problem, per_slot_exact);
  const double optimal = horizon_optimal(problem);
  EXPECT_LE(sequential, optimal + 1e-9);
  EXPECT_GE(sequential, 0.7 * optimal);
}

TEST(Horizon, EmptyOrInconsistentThrows) {
  HorizonProblem empty;
  DvGreedyAllocator greedy;
  EXPECT_THROW(horizon_sequential(empty, greedy), std::invalid_argument);
  HorizonProblem ragged = make_problem(2, 2);
  ragged.slots[1].users.pop_back();
  EXPECT_THROW(horizon_sequential(ragged, greedy), std::invalid_argument);
}

}  // namespace
}  // namespace cvr::core
