#include "src/motion/fov.h"

#include <gtest/gtest.h>

namespace cvr::motion {
namespace {

FovSpec default_spec() { return FovSpec{}; }

TEST(FovCovers, PerfectPredictionCovers) {
  const FovSpec spec = default_spec();
  Pose p;
  p.x = 1.0;
  p.yaw = 30.0;
  EXPECT_TRUE(covers(spec, p, p));
}

TEST(FovCovers, YawWithinMarginCovers) {
  const FovSpec spec = default_spec();  // margin 15 deg
  Pose predicted, actual;
  actual.yaw = 14.9;
  EXPECT_TRUE(covers(spec, predicted, actual));
  actual.yaw = 15.1;
  EXPECT_FALSE(covers(spec, predicted, actual));
}

TEST(FovCovers, PitchWithinMarginCovers) {
  const FovSpec spec = default_spec();
  Pose predicted, actual;
  actual.pitch = -14.0;
  EXPECT_TRUE(covers(spec, predicted, actual));
  actual.pitch = -16.0;
  EXPECT_FALSE(covers(spec, predicted, actual));
}

TEST(FovCovers, YawWrapAroundHandled) {
  const FovSpec spec = default_spec();
  Pose predicted, actual;
  predicted.yaw = 175.0;
  actual.yaw = -175.0;  // only 10 degrees away
  EXPECT_TRUE(covers(spec, predicted, actual));
}

TEST(FovCovers, PositionToleranceGates) {
  // Footnote 1: the margin does NOT absorb location errors.
  const FovSpec spec = default_spec();  // tolerance 0.10 m
  Pose predicted, actual;
  actual.x = 0.09;
  EXPECT_TRUE(covers(spec, predicted, actual));
  actual.x = 0.11;
  EXPECT_FALSE(covers(spec, predicted, actual));
}

TEST(FovCovers, PositionIn3d) {
  const FovSpec spec = default_spec();
  Pose predicted, actual;
  actual.x = 0.06;
  actual.y = 0.06;
  actual.z = 0.06;  // distance ~0.104 > 0.10
  EXPECT_FALSE(covers(spec, predicted, actual));
}

TEST(FovCovers, CombinedOrientationAndPosition) {
  const FovSpec spec = default_spec();
  Pose predicted, actual;
  actual.x = 0.05;
  actual.yaw = 10.0;
  actual.pitch = -10.0;
  EXPECT_TRUE(covers(spec, predicted, actual));
}

TEST(FovCovers, ZeroMarginRequiresExactOrientation) {
  FovSpec spec = default_spec();
  spec.margin_deg = 0.0;
  Pose predicted, actual;
  EXPECT_TRUE(covers(spec, predicted, actual));
  actual.yaw = 0.5;
  EXPECT_FALSE(covers(spec, predicted, actual));
}

TEST(DeliveredFraction, DefaultNearPaperTwentyPercent) {
  // 90+2*15 = 120 deg of 360; 90+2*15 = 120 of 180 -> 1/3 * 2/3 = 2/9.
  const double fraction = delivered_panorama_fraction(default_spec());
  EXPECT_NEAR(fraction, 2.0 / 9.0, 1e-12);
  // The paper says the FoV itself is ~20%; FoV+margin a bit more.
  EXPECT_GT(fraction, 0.1);
  EXPECT_LT(fraction, 0.35);
}

TEST(DeliveredFraction, CapsAtWholePanorama) {
  FovSpec spec;
  spec.horizontal_deg = 350.0;
  spec.vertical_deg = 170.0;
  spec.margin_deg = 30.0;
  EXPECT_DOUBLE_EQ(delivered_panorama_fraction(spec), 1.0);
}

// Sweep: coverage must be monotone in the margin.
class MarginMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(MarginMonotonicity, BiggerMarginNeverHurts) {
  const double yaw_err = GetParam();
  FovSpec small;
  small.margin_deg = 5.0;
  FovSpec large;
  large.margin_deg = 25.0;
  Pose predicted, actual;
  actual.yaw = yaw_err;
  if (covers(small, predicted, actual)) {
    EXPECT_TRUE(covers(large, predicted, actual));
  }
}

INSTANTIATE_TEST_SUITE_P(YawErrors, MarginMonotonicity,
                         ::testing::Values(0.0, 3.0, 7.0, 12.0, 20.0, 40.0));

}  // namespace
}  // namespace cvr::motion
