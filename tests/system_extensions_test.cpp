// Integration tests for the system-level extensions: RTP retransmission,
// online rendering, and fallback prefetch inside the full SystemSim.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/dv_greedy.h"
#include "src/net/rtp_transport.h"
#include "src/system/system_sim.h"

namespace cvr {
namespace {

system::SystemSimConfig tiny(std::size_t users = 3, std::size_t slots = 400) {
  system::SystemSimConfig config = system::setup_one_router(users);
  config.slots = slots;
  return config;
}

// ---------- RTP retransmission primitive ----------

TEST(RtpRetransmission, RecoversLostPackets) {
  net::RtpConfig config;
  config.base_loss = 0.2;
  config.congestion_loss = 0.0;
  net::RtpTransport transport(config, 7);
  int complete_no_retx = 0, complete_retx = 0;
  net::RtpTransport plain(config, 7);
  for (int i = 0; i < 300; ++i) {
    if (plain.send_tile(0.2, 0.0).complete()) ++complete_no_retx;
    if (transport.send_tile_with_retx(0.2, 0.0, 2, 40.0).complete()) {
      ++complete_retx;
    }
  }
  EXPECT_GT(complete_retx, complete_no_retx * 2);
}

TEST(RtpRetransmission, AddsDelayOnlyWhenLossOccurs) {
  net::RtpConfig lossless;
  lossless.base_loss = 0.0;
  lossless.congestion_loss = 0.0;
  net::RtpTransport transport(lossless, 1);
  const auto tx = transport.send_tile_with_retx(0.2, 0.0, 3, 40.0);
  EXPECT_TRUE(tx.complete());
  EXPECT_EQ(tx.retransmitted, 0u);
  EXPECT_DOUBLE_EQ(tx.extra_delay_ms, 0.0);
}

TEST(RtpRetransmission, DelayGrowsWithRounds) {
  net::RtpConfig lossy;
  lossy.base_loss = 0.5;
  lossy.congestion_loss = 0.0;
  net::RtpTransport transport(lossy, 3);
  double total_delay = 0.0;
  for (int i = 0; i < 100; ++i) {
    total_delay += transport.send_tile_with_retx(0.2, 0.0, 2, 40.0).extra_delay_ms;
  }
  EXPECT_GT(total_delay, 0.0);
}

TEST(RtpRetransmission, ZeroRoundsEqualsPlainSend) {
  net::RtpTransport a({}, 9), b({}, 9);
  for (int i = 0; i < 50; ++i) {
    const auto plain = a.send_tile(0.3, 0.4);
    const auto retx = b.send_tile_with_retx(0.3, 0.4, 0, 40.0);
    EXPECT_EQ(plain.lost_packets, retx.lost_packets);
    EXPECT_DOUBLE_EQ(retx.extra_delay_ms, 0.0);
  }
}

TEST(RtpRetransmission, RejectsBadArguments) {
  net::RtpTransport transport({}, 1);
  EXPECT_THROW(transport.send_tile_with_retx(0.1, 0.0, -1, 40.0),
               std::invalid_argument);
  EXPECT_THROW(transport.send_tile_with_retx(0.1, 0.0, 1, -1.0),
               std::invalid_argument);
}

// ---------- System integration ----------

TEST(SystemExtensions, RetransmissionImprovesViewedQuality) {
  system::SystemSimConfig base = tiny(4, 500);
  base.rtp.base_loss = 0.01;  // visible loss floor
  system::SystemSimConfig retx = base;
  retx.retransmit_rounds = 1;
  core::DvGreedyAllocator a, b;
  double q_base = 0.0, q_retx = 0.0;
  for (const auto& o : system::SystemSim(base).run(a, 0)) q_base += o.avg_quality;
  for (const auto& o : system::SystemSim(retx).run(b, 0)) q_retx += o.avg_quality;
  EXPECT_GT(q_retx, q_base);
}

TEST(SystemExtensions, OnlineRenderingDeterministic) {
  system::SystemSimConfig config = tiny();
  config.online_rendering = true;
  config.render_farm.gpus = 2;
  core::DvGreedyAllocator a, b;
  const auto x = system::SystemSim(config).run(a, 1);
  const auto y = system::SystemSim(config).run(b, 1);
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
  }
}

TEST(SystemExtensions, StarvedRenderFarmTanksQuality) {
  system::SystemSimConfig offline = tiny(6, 400);
  system::SystemSimConfig starved = offline;
  starved.online_rendering = true;
  starved.render_farm.gpus = 1;
  starved.render_farm.render_ms_per_tile = 6.0;  // hopeless farm
  core::DvGreedyAllocator a, b;
  double q_offline = 0.0, q_starved = 0.0;
  for (const auto& o : system::SystemSim(offline).run(a, 0)) {
    q_offline += o.avg_quality;
  }
  for (const auto& o : system::SystemSim(starved).run(b, 0)) {
    q_starved += o.avg_quality;
  }
  EXPECT_LT(q_starved, 0.5 * q_offline);
}

TEST(SystemExtensions, AmpleRenderFarmMatchesOffline) {
  system::SystemSimConfig offline = tiny(3, 400);
  system::SystemSimConfig farm = offline;
  farm.online_rendering = true;
  farm.render_farm.gpus = 16;
  core::DvGreedyAllocator a, b;
  double q_offline = 0.0, q_farm = 0.0;
  for (const auto& o : system::SystemSim(offline).run(a, 0)) {
    q_offline += o.avg_quality;
  }
  for (const auto& o : system::SystemSim(farm).run(b, 0)) q_farm += o.avg_quality;
  EXPECT_NEAR(q_farm, q_offline, 0.15 * q_offline);
}

TEST(SystemExtensions, FallbackPrefetchRunsEndToEnd) {
  system::SystemSimConfig config = tiny(3, 400);
  config.server.fallback_prefetch = true;
  config.motion.max_speed_mps = 4.0;
  core::DvGreedyAllocator alloc;
  for (const auto& o : system::SystemSim(config).run(alloc, 0)) {
    EXPECT_TRUE(std::isfinite(o.avg_qoe));
    EXPECT_GE(o.avg_quality, 0.0);
  }
}

TEST(SystemExtensions, LectureModeSharesTeacherViewpoint) {
  // Everyone replays the teacher's motion: the server-side predictors
  // see identical pose streams, so coverage outcomes coincide exactly.
  system::SystemSimConfig config = tiny(4, 300);
  config.lecture_mode = true;
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  for (std::size_t u = 1; u < outcomes.size(); ++u) {
    EXPECT_DOUBLE_EQ(outcomes[u].prediction_accuracy,
                     outcomes[0].prediction_accuracy);
  }
}

TEST(SystemExtensions, FreeRoamUsersDiffer) {
  system::SystemSimConfig config = tiny(4, 300);
  config.lecture_mode = false;
  core::DvGreedyAllocator alloc;
  const auto outcomes = system::SystemSim(config).run(alloc, 0);
  bool any_diff = false;
  for (std::size_t u = 1; u < outcomes.size(); ++u) {
    if (outcomes[u].avg_qoe != outcomes[0].avg_qoe) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SystemExtensions, RepetitionSuppressionSavesBandwidth) {
  system::SystemSimConfig on = tiny(3, 400);
  system::SystemSimConfig off = on;
  off.server.repetition_suppression = false;
  core::DvGreedyAllocator a, b;
  system::Timeline tl_on, tl_off;
  system::SystemSim(on).run(a, 0, &tl_on);
  system::SystemSim(off).run(b, 0, &tl_off);
  double demand_on = 0.0, demand_off = 0.0;
  for (const auto& r : tl_on.records()) demand_on += r.demand_mbps;
  for (const auto& r : tl_off.records()) demand_off += r.demand_mbps;
  EXPECT_LT(demand_on, 0.6 * demand_off);  // "significantly save"
}

TEST(SystemExtensions, SparsePoseUploadsDegradePrediction) {
  system::SystemSimConfig dense = tiny(3, 500);
  system::SystemSimConfig sparse = dense;
  sparse.pose_upload_period = 8;
  core::DvGreedyAllocator a, b;
  double acc_dense = 0.0, acc_sparse = 0.0;
  for (const auto& o : system::SystemSim(dense).run(a, 0)) {
    acc_dense += o.prediction_accuracy;
  }
  for (const auto& o : system::SystemSim(sparse).run(b, 0)) {
    acc_sparse += o.prediction_accuracy;
  }
  EXPECT_LT(acc_sparse, acc_dense);
}

TEST(SystemExtensions, ZeroPoseUploadPeriodRejected) {
  system::SystemSimConfig config = tiny();
  config.pose_upload_period = 0;
  EXPECT_THROW(system::SystemSim{config}, std::invalid_argument);
}

TEST(SystemExtensions, LossAwareModeDeterministic) {
  system::SystemSimConfig config = tiny();
  config.server.loss_aware = true;
  core::DvGreedyAllocator a, b;
  const auto x = system::SystemSim(config).run(a, 2);
  const auto y = system::SystemSim(config).run(b, 2);
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
  }
}

}  // namespace
}  // namespace cvr
