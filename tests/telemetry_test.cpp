#include "src/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/experiments/ensemble.h"
#include "src/report/report.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace cvr::telemetry {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry: histograms

TEST(Metrics, ExponentialEdgesAreGeometric) {
  const auto edges = exponential_edges(1.0, 2.0, 5);
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 2.0);
  EXPECT_DOUBLE_EQ(edges[4], 16.0);
}

TEST(Metrics, HistogramBucketEdges) {
  MetricsRegistry registry;
  // Buckets: (-inf,1), [1,10), [10,100), [100,+inf).
  const auto id = registry.histogram("h", {1.0, 10.0, 100.0});
  registry.record(id, 0.5);    // underflow
  registry.record(id, 1.0);    // exactly on an edge -> second bucket
  registry.record(id, 9.99);   // second bucket
  registry.record(id, 10.0);   // third bucket
  registry.record(id, 1000.0); // overflow
  const auto snapshot = registry.snapshot();
  const HistogramData& h = snapshot.histograms.at("h");
  ASSERT_EQ(h.counts.size(), 4u);  // edges + 1
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 9.99 + 10.0 + 1000.0);
}

TEST(Metrics, HistogramQuantilesAreOrderedAndBounded) {
  MetricsRegistry registry;
  const auto id = registry.histogram("h", default_duration_edges_us());
  for (int i = 1; i <= 1000; ++i) registry.record(id, static_cast<double>(i));
  const auto snapshot = registry.snapshot();
  const HistogramData& h = snapshot.histograms.at("h");
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p99, h.max);
  // Geometric buckets give coarse quantiles; half an octave is plenty.
  EXPECT_NEAR(p50, 500.0, 300.0);
}

TEST(Metrics, HistogramRejectsBadEdges) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("dupes", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Metrics, ReregisteringSameNameReturnsSameId) {
  MetricsRegistry registry;
  const auto a = registry.counter("c");
  const auto b = registry.counter("c");
  registry.add(a, 2);
  registry.add(b, 3);
  EXPECT_EQ(registry.snapshot().counter_or("c"), 5u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry: cross-thread merge

TEST(Metrics, CounterMergeAcrossThreadsEqualsSerialTotal) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  MetricsRegistry registry;
  const auto id = registry.counter("hits");
  const auto hist = registry.histogram("lat", {1.0, 10.0, 100.0});
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&registry, id, hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add(id, 1);
        registry.record(hist, 5.0);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("hits"), kThreads * kPerThread);
  const HistogramData& h = snapshot.histograms.at("lat");
  EXPECT_EQ(h.count, kThreads * kPerThread);
  EXPECT_EQ(h.counts[1], kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum, 5.0 * static_cast<double>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// TraceBuffer

TEST(Trace, JsonGolden) {
  TraceBuffer buffer;
  buffer.set_process_name(0, "server");
  buffer.set_thread_name(0, 4, "alloc_solve");
  TraceEvent event;
  event.pid = 0;
  event.tid = 4;
  event.name = "alloc_solve";
  event.ts_us = 1.5;
  event.dur_us = 2.25;
  event.slot = 7;
  buffer.add(event);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"server\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":4,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"alloc_solve\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":4,\"name\":\"alloc_solve\","
      "\"cat\":\"phase\",\"ts\":1.500,\"dur\":2.250,"
      "\"args\":{\"slot\":7}}"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(buffer.to_json(), expected);
}

TEST(Trace, AppendShiftsPidsAndPrefixesProcesses) {
  TraceBuffer arm;
  arm.set_process_name(0, "server");
  TraceEvent event;
  event.pid = 1;
  event.name = "decode";
  arm.add(event);

  TraceBuffer merged;
  merged.append(arm, 10, "dv");
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.events()[0].pid, 11u);
  EXPECT_NE(merged.to_json().find("\"dv/server\""), std::string::npos);
}

TEST(Trace, JsonEscapesSpecials) {
  TraceBuffer buffer;
  buffer.set_process_name(0, "a\"b\\c");
  const std::string json = buffer.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Collector + spans

TEST(Collector, OffModeCollectsNothing) {
  Collector collector(Mode::kOff, nullptr);
  EXPECT_FALSE(collector.counting());
  collector.count(Counter::kSlots);  // must be a harmless no-op
  { PhaseSpan span(&collector, Phase::kSlot, 0, 1); }
  { PhaseSpan span(nullptr, Phase::kSlot, 0, 1); }
}

TEST(Collector, NonOffModeRequiresRegistry) {
  EXPECT_THROW(Collector(Mode::kCounters, nullptr), std::invalid_argument);
  EXPECT_THROW(Collector(Mode::kTrace, nullptr), std::invalid_argument);
}

TEST(Collector, SpansAndCountersLandInRegistry) {
  MetricsRegistry registry;
  TraceBuffer trace;
  Collector collector(Mode::kTrace, &registry, &trace);
  { PhaseSpan span(&collector, Phase::kAllocSolve, 0, 3); }
  collector.count(Counter::kSlots);
  collector.count_allocation({1, 3, 2});  // raises = 0 + 2 + 1
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.histograms.at("phase_alloc_solve_us").count, 1u);
  EXPECT_EQ(snapshot.counter_or("slots_processed"), 1u);
  EXPECT_EQ(snapshot.counter_or("alloc_invocations"), 1u);
  EXPECT_EQ(snapshot.counter_or("alloc_iterations"), 3u);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].name, "alloc_solve");
  EXPECT_EQ(trace.events()[0].slot, 3);
}

TEST(Collector, ParseModeRoundTripsAndThrows) {
  EXPECT_EQ(parse_mode("off"), Mode::kOff);
  EXPECT_EQ(parse_mode("counters"), Mode::kCounters);
  EXPECT_EQ(parse_mode("trace"), Mode::kTrace);
  EXPECT_THROW(parse_mode("verbose"), std::invalid_argument);
  EXPECT_STREQ(mode_name(Mode::kCounters), "counters");
}

// ---------------------------------------------------------------------------
// Ensemble integration: the determinism guard

experiments::EnsembleSpec guard_spec(experiments::EnsembleSpec::Platform p) {
  experiments::EnsembleSpec spec;
  spec.platform = p;
  spec.users = 3;
  spec.slots = 120;
  spec.repeats = 2;
  spec.algorithms = {"dv", "firefly"};
  return spec;
}

void expect_bitwise_equal(const std::vector<sim::ArmResult>& a,
                          const std::vector<sim::ArmResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t arm = 0; arm < a.size(); ++arm) {
    ASSERT_EQ(a[arm].outcomes.size(), b[arm].outcomes.size());
    for (std::size_t i = 0; i < a[arm].outcomes.size(); ++i) {
      const auto& x = a[arm].outcomes[i];
      const auto& y = b[arm].outcomes[i];
      EXPECT_EQ(x.avg_qoe, y.avg_qoe);
      EXPECT_EQ(x.avg_quality, y.avg_quality);
      EXPECT_EQ(x.avg_level, y.avg_level);
      EXPECT_EQ(x.avg_delay_ms, y.avg_delay_ms);
      EXPECT_EQ(x.variance, y.variance);
      EXPECT_EQ(x.prediction_accuracy, y.prediction_accuracy);
      EXPECT_EQ(x.fps, y.fps);
    }
  }
}

TEST(TelemetryGuard, TracePlatformOutcomesIdenticalAcrossModes) {
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kTrace);
  const auto off = experiments::run_ensemble(spec);
  spec.telemetry = Mode::kCounters;
  const auto counters = experiments::run_ensemble(spec);
  spec.telemetry = Mode::kTrace;
  const auto traced = experiments::run_ensemble(spec);
  expect_bitwise_equal(off, counters);
  expect_bitwise_equal(off, traced);
}

TEST(TelemetryGuard, SystemPlatformOutcomesIdenticalAcrossModes) {
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kSystem);
  const auto off = experiments::run_ensemble(spec);
  spec.telemetry = Mode::kTrace;
  const auto traced = experiments::run_ensemble(spec);
  expect_bitwise_equal(off, traced);
}

TEST(TelemetryGuard, ParallelCountersMatchSerial) {
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kTrace);
  spec.telemetry = Mode::kCounters;
  const auto serial = experiments::run_ensemble_with_perf(spec);
  spec.threads = 4;
  const auto parallel = experiments::run_ensemble_with_perf(spec);
  expect_bitwise_equal(serial.arms, parallel.arms);
  ASSERT_EQ(serial.perf.arms.size(), parallel.perf.arms.size());
  for (std::size_t a = 0; a < serial.perf.arms.size(); ++a) {
    // Counters are exact event counts, so thread scheduling must not
    // change them (durations legitimately differ).
    EXPECT_EQ(serial.perf.arms[a].snapshot.counters,
              parallel.perf.arms[a].snapshot.counters);
  }
}

// ---------------------------------------------------------------------------
// Ensemble integration: perf report and trace file

TEST(TelemetryPerf, ReportCarriesPhasesAndSaneQuantiles) {
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kSystem);
  spec.telemetry = Mode::kCounters;
  const auto run = experiments::run_ensemble_with_perf(spec);
  ASSERT_EQ(run.perf.arms.size(), 2u);
  const ArmPerf& arm = run.perf.arms[0];
  EXPECT_EQ(arm.algorithm, "dv-greedy");
  EXPECT_EQ(arm.slots, spec.slots * spec.repeats);
  EXPECT_EQ(arm.alloc_invocations, spec.slots * spec.repeats);
  EXPECT_GT(arm.alloc_iterations, 0u);
  ASSERT_FALSE(arm.phases.empty());
  for (const PhasePerf& phase : arm.phases) {
    EXPECT_GT(phase.count, 0u);
    EXPECT_LE(phase.p50_us, phase.p95_us);
    EXPECT_LE(phase.p95_us, phase.p99_us);
  }
  const std::string json = perf_report_json(run.perf, "test");
  EXPECT_NE(json.find("\"schema\": \"cvr-bench-perf-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"alloc_solve\""), std::string::npos);
}

TEST(TelemetryPerf, OffModeYieldsEmptyPerf) {
  const auto run = experiments::run_ensemble_with_perf(
      guard_spec(experiments::EnsembleSpec::Platform::kTrace));
  EXPECT_TRUE(run.perf.empty());
}

TEST(TelemetryPerf, TraceOutWritesLoadableJson) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cvr_telemetry_trace.json")
          .string();
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kTrace);
  spec.telemetry = Mode::kTrace;
  spec.trace_out = path;
  experiments::run_ensemble(spec);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const std::string json = content.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Both arms present as prefixed process groups.
  EXPECT_NE(json.find("\"dv-greedy/server\""), std::string::npos);
  EXPECT_NE(json.find("\"firefly-aqc/server\""), std::string::npos);
  // Balanced-delimiters smoke check of JSON well-formedness.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::filesystem::remove(path);
}

TEST(TelemetryPerf, TraceOutWithoutTraceModeThrows) {
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kTrace);
  spec.telemetry = Mode::kCounters;
  spec.trace_out = "/tmp/never_written.json";
  EXPECT_THROW(experiments::run_ensemble(spec), std::invalid_argument);
}

TEST(TelemetryPerf, PerfCsvWritten) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "cvr_telemetry_report")
          .string();
  auto spec = guard_spec(experiments::EnsembleSpec::Platform::kTrace);
  spec.telemetry = Mode::kCounters;
  spec.report_prefix = prefix;
  experiments::run_ensemble_with_perf(spec);
  std::ifstream file(prefix + "_perf.csv");
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header.rfind("arm,algorithm,slots,", 0), 0u);
  std::string first_row;
  std::getline(file, first_row);
  EXPECT_NE(first_row.find("dv-greedy"), std::string::npos);
  for (const char* suffix :
       {"_outcomes.csv", "_cdf_qoe.csv", "_cdf_quality.csv",
        "_cdf_delay_ms.csv", "_cdf_variance.csv", "_timing.csv",
        "_perf.csv"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

}  // namespace
}  // namespace cvr::telemetry
