// Harness self-tests: the registry's built-in coverage, the replayable
// seed contract, and — most importantly — that injected failures shrink
// to locally minimal counterexamples with compilable fixtures.
#include "src/proptest/property.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "src/proptest/domain.h"

namespace cvr::proptest {
namespace {

using core::SlotProblem;

TEST(Registry, HasAtLeastTwelveUniqueProperties) {
  const Registry& registry = Registry::instance();
  EXPECT_GE(registry.properties().size(), 12u);
  std::set<std::string> names;
  for (const auto& property : registry.properties()) {
    EXPECT_TRUE(names.insert(property->name()).second)
        << "duplicate name " << property->name();
  }
}

TEST(Registry, SpansCoreSimFaultsAndProto) {
  std::set<std::string> prefixes;
  for (const auto& property : Registry::instance().properties()) {
    const std::string& name = property->name();
    prefixes.insert(name.substr(0, name.find('.')));
  }
  for (const char* required : {"core", "util", "net", "faults", "proto"}) {
    EXPECT_TRUE(prefixes.count(required)) << "no properties under " << required;
  }
}

TEST(Registry, FindIsExactMatch) {
  const Registry& registry = Registry::instance();
  EXPECT_NE(registry.find("core.dv_scan_heap_identical"), nullptr);
  EXPECT_EQ(registry.find("core.dv_scan_heap"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
}

TEST(Registry, AddRejectsDuplicatesAndNull) {
  Registry fresh;
  fresh.add(make_property("x", 10, constant(1), [](const int&) { return true; }));
  EXPECT_THROW(fresh.add(make_property("x", 10, constant(1),
                                       [](const int&) { return true; })),
               std::invalid_argument);
  EXPECT_THROW(fresh.add(nullptr), std::invalid_argument);
}

TEST(AllBuiltins, PassOnAReducedBudget) {
  // The full default budgets run under ctest via proptest_runner; here
  // a fast smoke pass over every registered property.
  for (const auto& property : Registry::instance().properties()) {
    const RunResult result = property->run(/*master_seed=*/42, /*iters=*/50);
    EXPECT_TRUE(result.ok()) << format_failure(result);
  }
}

TEST(Seeds, IterationZeroReplaysTheMasterSeed) {
  EXPECT_EQ(instance_seed(1234u, 0), 1234u);
  EXPECT_EQ(instance_seed(1234u, 1), 1234u + kSeedStride);
  EXPECT_EQ(instance_seed(1234u, 2), 1234u + 2 * kSeedStride);
}

// --- Injected failures must shrink to minimal counterexamples. ---

// Fails whenever the instance has >= 2 users: the shrinker must strip
// it down to exactly 2 (dropping either one makes the check pass).
CheckResult fails_with_two_users(const SlotProblem& problem) {
  return problem.users.size() >= 2
             ? fail("injected: " + std::to_string(problem.users.size()) +
                    " users")
             : pass();
}

TEST(Shrink, SlotProblemReachesTheLocalMinimum) {
  cvr::Rng rng(99);
  SlotProblemGenConfig config;
  config.min_users = 4;  // start well above the minimal size
  const SlotProblem failing = gen_slot_problem(rng, config);
  ASSERT_FALSE(fails_with_two_users(failing).ok);

  const auto fails = [](const SlotProblem& p) {
    return !fails_with_two_users(p).ok;
  };
  const ShrinkOutcome<SlotProblem> outcome = shrink_to_minimal(failing, fails);
  EXPECT_EQ(outcome.minimal.users.size(), 2u);
  EXPECT_GE(outcome.steps, 2u);
  // Local minimality: no single candidate reduction still fails.
  for (const SlotProblem& candidate :
       ShrinkTraits<SlotProblem>::candidates(outcome.minimal)) {
    if (candidate.users.size() < 2) EXPECT_FALSE(fails(candidate));
  }
}

TEST(Shrink, VectorIsolatesTheOffendingElement) {
  const std::vector<double> failing = {1.0, 2.0, 500.0, 3.0, 4.0, 5.0};
  const auto fails = [](const std::vector<double>& v) {
    for (double x : v) {
      if (x > 100.0) return true;
    }
    return false;
  };
  const auto outcome = shrink_to_minimal(failing, fails);
  ASSERT_EQ(outcome.minimal.size(), 1u);
  EXPECT_EQ(outcome.minimal[0], 500.0);
}

TEST(Property, FailureReportsReplayableSeedAndShrunkFixture) {
  Registry fresh;
  fresh.add(make_property("inject.too_many_users", 200,
                          slot_problems(SlotProblemGenConfig{}),
                          fails_with_two_users));
  const PropertyBase* property = fresh.find("inject.too_many_users");
  ASSERT_NE(property, nullptr);

  const RunResult result = property->run(/*master_seed=*/7);
  ASSERT_FALSE(result.ok());
  const Counterexample& ce = *result.counterexample;
  EXPECT_EQ(ce.seed, instance_seed(7, ce.iteration));
  EXPECT_NE(ce.note.find("injected"), std::string::npos);
  // The fixture is the SHRUNK instance: exactly two users left.
  std::size_t pushes = 0;
  for (std::size_t at = ce.fixture.find("problem.users.push_back");
       at != std::string::npos;
       at = ce.fixture.find("problem.users.push_back", at + 1)) {
    ++pushes;
  }
  EXPECT_EQ(pushes, 2u);

  // Replay contract: the reported seed as master seed with --iters=1
  // regenerates the failure at iteration 0.
  const RunResult replay = property->run(ce.seed, 1);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.counterexample->iteration, 0u);
  EXPECT_EQ(replay.counterexample->seed, ce.seed);
}

TEST(Property, RunsAreDeterministic) {
  Registry fresh;
  fresh.add(make_property("inject.big_sample", 500, sample_streams(),
                          [](const SampleStream& s) {
                            for (double x : s.samples) {
                              if (std::abs(x) > 1e8) return fail("big");
                            }
                            return pass();
                          }));
  const PropertyBase* property = fresh.find("inject.big_sample");
  const RunResult a = property->run(11);
  const RunResult b = property->run(11);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(format_failure(a), format_failure(b));  // byte-identical report
}

TEST(Property, ExceptionsCountAsFailuresAndShrink) {
  Registry fresh;
  fresh.add(make_property("inject.throws", 100, sample_streams(),
                          [](const SampleStream& s) -> CheckResult {
                            if (s.samples.size() >= 3) {
                              throw std::runtime_error("boom");
                            }
                            return pass();
                          }));
  const RunResult result = fresh.find("inject.throws")->run(3);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.counterexample->note.find("boom"), std::string::npos);
  // Shrunk to the minimal still-throwing size.
  EXPECT_NE(result.counterexample->fixture.find("samples"),
            std::string::npos);
}

TEST(Property, BoolChecksAreAdapted) {
  Registry fresh;
  fresh.add(make_property("inject.bool", 50, constant(5),
                          [](const int& v) { return v != 5; }));
  const RunResult result = fresh.find("inject.bool")->run(1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.counterexample->note, "check returned false");
}

// --- Corpus format ---

TEST(Corpus, ParsesEntriesSkippingCommentsAndBlanks) {
  const auto entries = parse_corpus(
      "# regression corpus\n"
      "\n"
      "core.dv_scan_heap_identical 12345\n"
      "  proto.roundtrip 678\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].property, "core.dv_scan_heap_identical");
  EXPECT_EQ(entries[0].seed, 12345u);
  EXPECT_EQ(entries[1].property, "proto.roundtrip");
  EXPECT_EQ(entries[1].seed, 678u);
}

TEST(Corpus, RejectsMalformedLines) {
  EXPECT_THROW(parse_corpus("core.roundtrip\n"), std::runtime_error);
  EXPECT_THROW(parse_corpus("core.roundtrip notanumber\n"),
               std::runtime_error);
  EXPECT_THROW(parse_corpus("core.roundtrip 5 trailing\n"),
               std::runtime_error);
}

TEST(Corpus, FormatFailureEmitsACorpusLine) {
  RunResult result;
  result.name = "some.property";
  Counterexample ce;
  ce.seed = 42;
  ce.iteration = 3;
  ce.note = "broke";
  ce.fixture = "int x = 1;\nint y = 2;";
  result.counterexample = ce;
  const std::string report = format_failure(result);
  EXPECT_NE(report.find("FAIL some.property seed=42 iter=3"),
            std::string::npos);
  EXPECT_NE(report.find("--property=some.property --seed=42 --iters=1"),
            std::string::npos);
  EXPECT_NE(report.find("CORPUS some.property 42\n"), std::string::npos);
  // The CORPUS line parses back into the same entry.
  const auto at = report.find("CORPUS ");
  const auto entries = parse_corpus(report.substr(at + 7));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].property, "some.property");
  EXPECT_EQ(entries[0].seed, 42u);
}

// --- Generator sanity ---

TEST(Generators, TieHeavyConfigProducesExactDuplicates) {
  // The scan-vs-heap oracle is only as good as its tie pressure: over a
  // modest sample, byte-identical user pairs must actually occur.
  std::size_t with_duplicates = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    cvr::Rng rng(seed);
    const SlotProblem problem = gen_slot_problem(rng, tie_heavy_config());
    for (std::size_t i = 0; i + 1 < problem.users.size() && i < 64; ++i) {
      for (std::size_t j = i + 1; j < problem.users.size(); ++j) {
        if (problem.users[i].rate == problem.users[j].rate &&
            problem.users[i].delay == problem.users[j].delay &&
            problem.users[i].delta == problem.users[j].delta) {
          ++with_duplicates;
          j = problem.users.size();
          i = 64;
        }
      }
    }
  }
  EXPECT_GE(with_duplicates, 50u);
}

TEST(Generators, InstancesAreDeterministicInTheSeed) {
  for (std::uint64_t seed : {1u, 77u, 901u}) {
    cvr::Rng a(seed), b(seed);
    const SlotProblem pa = gen_slot_problem(a, tie_heavy_config());
    const SlotProblem pb = gen_slot_problem(b, tie_heavy_config());
    ASSERT_EQ(pa.users.size(), pb.users.size());
    EXPECT_EQ(pa.server_bandwidth, pb.server_bandwidth);
    for (std::size_t n = 0; n < pa.users.size(); ++n) {
      EXPECT_EQ(pa.users[n].rate, pb.users[n].rate);
      EXPECT_EQ(pa.users[n].delay, pb.users[n].delay);
    }
  }
}

TEST(Generators, MutationNoopDetectionIsSound) {
  cvr::Rng rng(5);
  for (int k = 0; k < 200; ++k) {
    const MutationCase mutation = gen_mutation_case(rng);
    const bool identical =
        mutation.mutated() == encode_wire_message(mutation.message);
    EXPECT_EQ(mutation.is_noop(), identical);
  }
}

}  // namespace
}  // namespace cvr::proptest
