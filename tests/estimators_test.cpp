#include "src/net/estimators.h"

#include <gtest/gtest.h>

#include "src/net/mm1.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::net {
namespace {

TEST(EmaThroughputEstimator, StartsAtInitial) {
  EmaThroughputEstimator est(0.2, 40.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
}

TEST(EmaThroughputEstimator, ConvergesToConstantSignal) {
  EmaThroughputEstimator est(0.2, 40.0);
  for (int i = 0; i < 200; ++i) est.observe(60.0);
  EXPECT_NEAR(est.estimate_mbps(), 60.0, 0.01);
}

TEST(EmaThroughputEstimator, SingleStepIsConvexCombination) {
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(80.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0 + 0.25 * 80.0);
}

TEST(EmaThroughputEstimator, LagsStepChange) {
  // The estimation-lag behaviour that hurts aggressive allocators: after
  // a sudden capacity drop the estimate stays optimistic for a while.
  EmaThroughputEstimator est(0.1, 60.0);
  for (int i = 0; i < 100; ++i) est.observe(60.0);
  est.observe(20.0);
  est.observe(20.0);
  EXPECT_GT(est.estimate_mbps(), 40.0);  // still far above reality
}

TEST(EmaThroughputEstimator, SmoothsNoise) {
  cvr::Rng rng(1);
  EmaThroughputEstimator est(0.05, 50.0);
  double min_seen = 1e9, max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    est.observe(50.0 + rng.normal(0.0, 10.0));
    min_seen = std::min(min_seen, est.estimate_mbps());
    max_seen = std::max(max_seen, est.estimate_mbps());
  }
  EXPECT_GT(min_seen, 40.0);
  EXPECT_LT(max_seen, 60.0);
}

TEST(EmaThroughputEstimator, RejectsBadInput) {
  EXPECT_THROW(EmaThroughputEstimator(0.0, 40.0), std::invalid_argument);
  EXPECT_THROW(EmaThroughputEstimator(1.1, 40.0), std::invalid_argument);
  EmaThroughputEstimator est(0.2, 40.0);
  EXPECT_THROW(est.observe(-1.0), std::invalid_argument);
}

TEST(DelayPredictor, ColdStartUsesAnalyticMm1) {
  DelayPredictor pred;
  EXPECT_FALSE(pred.trained());
  const double expected = mm1_delay(20.0, 40.0) * cvr::kSlotMillis;
  EXPECT_DOUBLE_EQ(pred.predict_ms(20.0, 40.0), expected);
}

TEST(DelayPredictor, LearnsQuadraticDelayCurve) {
  DelayPredictor pred;
  // Feed a synthetic convex delay curve; the quadratic fit should track
  // it well inside the observed range.
  auto truth = [](double r) { return 0.5 + 0.02 * r + 0.004 * r * r; };
  for (double r = 5.0; r <= 50.0; r += 1.0) pred.observe(r, truth(r));
  EXPECT_TRUE(pred.trained());
  for (double r : {10.0, 25.0, 40.0}) {
    EXPECT_NEAR(pred.predict_ms(r, 60.0), truth(r), 0.05);
  }
}

TEST(DelayPredictor, PredictionNeverNegative) {
  DelayPredictor pred;
  // Decreasing-looking noise could yield a negative quadratic somewhere.
  for (double r = 5.0; r <= 20.0; r += 1.0) pred.observe(r, 0.01);
  EXPECT_GE(pred.predict_ms(0.0, 60.0), 0.0);
  EXPECT_GE(pred.predict_ms(100.0, 60.0), 0.0);
}

TEST(DelayPredictor, RejectsNegativeSamples) {
  DelayPredictor pred;
  EXPECT_THROW(pred.observe(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(pred.observe(1.0, -1.0), std::invalid_argument);
}

TEST(DelayPredictor, NoisyMm1SamplesStillTrackAnalytic) {
  cvr::Rng rng(2);
  DelayPredictor pred;
  const double bandwidth = 50.0;
  for (int i = 0; i < 300; ++i) {
    const double r = rng.uniform(5.0, 40.0);
    const double d = mm1_delay(r, bandwidth) * (1.0 + rng.normal(0.0, 0.1));
    pred.observe(r, std::max(0.0, d));
  }
  // Mid-range prediction within a factor ~2 of the analytic value
  // (quadratic approximation of a hyperbola over the sampled range).
  const double analytic = mm1_delay(25.0, bandwidth);
  const double predicted = pred.predict_ms(25.0, bandwidth);
  EXPECT_GT(predicted, analytic * 0.4);
  EXPECT_LT(predicted, analytic * 2.5);
}

}  // namespace
}  // namespace cvr::net
