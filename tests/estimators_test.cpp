#include "src/net/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/dv_greedy.h"
#include "src/faults/fault_schedule.h"
#include "src/net/mm1.h"
#include "src/system/system_sim.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::net {
namespace {

TEST(EmaThroughputEstimator, StartsAtInitial) {
  EmaThroughputEstimator est(0.2, 40.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
}

TEST(EmaThroughputEstimator, ConvergesToConstantSignal) {
  EmaThroughputEstimator est(0.2, 40.0);
  for (int i = 0; i < 200; ++i) est.observe(60.0);
  EXPECT_NEAR(est.estimate_mbps(), 60.0, 0.01);
}

TEST(EmaThroughputEstimator, SingleStepIsConvexCombination) {
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(80.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0 + 0.25 * 80.0);
}

TEST(EmaThroughputEstimator, LagsStepChange) {
  // The estimation-lag behaviour that hurts aggressive allocators: after
  // a sudden capacity drop the estimate stays optimistic for a while.
  EmaThroughputEstimator est(0.1, 60.0);
  for (int i = 0; i < 100; ++i) est.observe(60.0);
  est.observe(20.0);
  est.observe(20.0);
  EXPECT_GT(est.estimate_mbps(), 40.0);  // still far above reality
}

TEST(EmaThroughputEstimator, SmoothsNoise) {
  cvr::Rng rng(1);
  EmaThroughputEstimator est(0.05, 50.0);
  double min_seen = 1e9, max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    est.observe(50.0 + rng.normal(0.0, 10.0));
    min_seen = std::min(min_seen, est.estimate_mbps());
    max_seen = std::max(max_seen, est.estimate_mbps());
  }
  EXPECT_GT(min_seen, 40.0);
  EXPECT_LT(max_seen, 60.0);
}

TEST(EmaThroughputEstimator, RejectsBadInput) {
  EXPECT_THROW(EmaThroughputEstimator(0.0, 40.0), std::invalid_argument);
  EXPECT_THROW(EmaThroughputEstimator(1.1, 40.0), std::invalid_argument);
}

TEST(EmaThroughputEstimator, NegativeSampleClampsToZero) {
  // One corrupt report must never crash the server loop: a negative
  // sample behaves as a measured zero.
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(-1.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0);
  EXPECT_EQ(est.observations(), 1u);
}

TEST(EmaThroughputEstimator, NonFiniteSamplesIgnored) {
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(std::numeric_limits<double>::quiet_NaN());
  est.observe(std::numeric_limits<double>::infinity());
  est.observe(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
  EXPECT_EQ(est.observations(), 0u);
  est.observe(60.0);  // still alive and learning afterwards
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0 + 0.25 * 60.0);
}

TEST(DelayPredictor, ColdStartUsesAnalyticMm1) {
  DelayPredictor pred;
  EXPECT_FALSE(pred.trained());
  const double expected = mm1_delay(20.0, 40.0) * cvr::kSlotMillis;
  EXPECT_DOUBLE_EQ(pred.predict_ms(20.0, 40.0), expected);
}

TEST(DelayPredictor, LearnsQuadraticDelayCurve) {
  DelayPredictor pred;
  // Feed a synthetic convex delay curve; the quadratic fit should track
  // it well inside the observed range.
  auto truth = [](double r) { return 0.5 + 0.02 * r + 0.004 * r * r; };
  for (double r = 5.0; r <= 50.0; r += 1.0) pred.observe(r, truth(r));
  EXPECT_TRUE(pred.trained());
  for (double r : {10.0, 25.0, 40.0}) {
    EXPECT_NEAR(pred.predict_ms(r, 60.0), truth(r), 0.05);
  }
}

TEST(DelayPredictor, PredictionNeverNegative) {
  DelayPredictor pred;
  // Decreasing-looking noise could yield a negative quadratic somewhere.
  for (double r = 5.0; r <= 20.0; r += 1.0) pred.observe(r, 0.01);
  EXPECT_GE(pred.predict_ms(0.0, 60.0), 0.0);
  EXPECT_GE(pred.predict_ms(100.0, 60.0), 0.0);
}

TEST(DelayPredictor, NegativeSamplesClampToZero) {
  DelayPredictor a;
  DelayPredictor b;
  for (double r = 5.0; r <= 20.0; r += 1.0) {
    a.observe(r, 1.0);
    b.observe(r, 1.0);
  }
  // A negative component clamps to zero rather than throwing.
  a.observe(-3.0, -7.0);
  b.observe(0.0, 0.0);
  EXPECT_TRUE(a.trained());
  EXPECT_DOUBLE_EQ(a.predict_ms(10.0, 60.0), b.predict_ms(10.0, 60.0));
}

TEST(DelayPredictor, NonFiniteSamplesIgnored) {
  DelayPredictor pred;
  pred.observe(std::numeric_limits<double>::quiet_NaN(), 1.0);
  pred.observe(1.0, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(pred.trained());
  // Predictions stay on the analytic cold-start path and stay finite.
  EXPECT_TRUE(std::isfinite(pred.predict_ms(20.0, 40.0)));
}

TEST(StaleHold, HoldsThenDecaysTowardFloor) {
  const StaleHoldConfig config;  // hold 33, decay 0.93, floor 1.0
  // Inside the hold window the estimate is untouched.
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, 0, config), 60.0);
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, config.hold_slots, config), 60.0);
  // Past the hold it decays monotonically...
  double prev = 60.0;
  for (std::size_t s = config.hold_slots + 1; s < config.hold_slots + 200;
       ++s) {
    const double held = apply_stale_hold(60.0, s, config);
    EXPECT_LE(held, prev);
    EXPECT_GE(held, config.floor_mbps);
    prev = held;
  }
  // ...and long silence lands on the re-probe floor.
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, 100000, config), config.floor_mbps);
}

TEST(StaleHold, FloorNeverInflatesASmallEstimate) {
  StaleHoldConfig config;
  config.floor_mbps = 10.0;
  // An estimate already below the floor must not be *raised* by decay.
  EXPECT_LE(apply_stale_hold(2.0, 1000, config), 2.0);
}

TEST(DelayPredictor, NoisyMm1SamplesStillTrackAnalytic) {
  cvr::Rng rng(2);
  DelayPredictor pred;
  const double bandwidth = 50.0;
  for (int i = 0; i < 300; ++i) {
    const double r = rng.uniform(5.0, 40.0);
    const double d = mm1_delay(r, bandwidth) * (1.0 + rng.normal(0.0, 0.1));
    pred.observe(r, std::max(0.0, d));
  }
  // Mid-range prediction within a factor ~2 of the analytic value
  // (quadratic approximation of a hyperbola over the sampled range).
  const double analytic = mm1_delay(25.0, bandwidth);
  const double predicted = pred.predict_ms(25.0, bandwidth);
  EXPECT_GT(predicted, analytic * 0.4);
  EXPECT_LT(predicted, analytic * 2.5);
}

TEST(ProbingEstimator, StartsAtInitialAndProbeSchedule) {
  ProbingConfig config;
  ProbingThroughputEstimator est(config);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), config.initial_mbps);
  EXPECT_EQ(est.observations(), 0u);
  EXPECT_EQ(est.probes(), 0u);
  // Slot 0 never probes; thereafter every probe_period_slots-th slot.
  EXPECT_FALSE(est.probe_due(0));
  EXPECT_FALSE(est.probe_due(1));
  EXPECT_FALSE(est.probe_due(65));
  EXPECT_TRUE(est.probe_due(66));
  EXPECT_FALSE(est.probe_due(67));
  EXPECT_TRUE(est.probe_due(132));
}

TEST(ProbingEstimator, ProbeBudgetIsCappedFraction) {
  ProbingConfig config;
  config.probe_fraction = 0.25;
  config.probe_cap_mbps = 20.0;
  config.initial_mbps = 40.0;
  ProbingThroughputEstimator est(config);
  EXPECT_DOUBLE_EQ(est.probe_budget_mbps(), 10.0);  // 0.25 * 40
  // Drive the estimate high enough to hit the cap.
  for (int i = 0; i < 200; ++i) est.observe_probe(500.0);
  EXPECT_DOUBLE_EQ(est.probe_budget_mbps(), 20.0);
  EXPECT_TRUE(std::isfinite(est.probe_budget_mbps()));
}

TEST(ProbingEstimator, AlphaWeightsDiffer) {
  ProbingConfig config;
  config.alpha_passive = 0.2;
  config.alpha_probe = 0.6;
  config.initial_mbps = 40.0;
  ProbingThroughputEstimator passive(config);
  ProbingThroughputEstimator probe(config);
  passive.observe_passive(80.0);
  probe.observe_probe(80.0);
  EXPECT_DOUBLE_EQ(passive.estimate_mbps(), 0.8 * 40.0 + 0.2 * 80.0);
  EXPECT_DOUBLE_EQ(probe.estimate_mbps(), 0.4 * 40.0 + 0.6 * 80.0);
  EXPECT_EQ(probe.probes(), 1u);
  EXPECT_EQ(passive.probes(), 0u);
  EXPECT_EQ(passive.observations(), 1u);
  EXPECT_EQ(probe.observations(), 1u);
}

TEST(ProbingEstimator, HardenedAgainstBadSamples) {
  ProbingThroughputEstimator est;
  est.observe_passive(std::numeric_limits<double>::quiet_NaN());
  est.observe_probe(std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
  EXPECT_EQ(est.observations(), 0u);
  est.observe_passive(-5.0);  // clamps to a measured zero
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.8 * 40.0);
  EXPECT_EQ(est.observations(), 1u);
  // Estimate can never go negative however hard it is driven down.
  for (int i = 0; i < 500; ++i) est.observe_probe(-1e9);
  EXPECT_GE(est.estimate_mbps(), 0.0);
  EXPECT_TRUE(std::isfinite(est.estimate_mbps()));
}

TEST(ProbingEstimator, RestoreRoundTripsHandoff) {
  ProbingThroughputEstimator est;
  est.restore(55.5, 42);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 55.5);
  EXPECT_EQ(est.observations(), 42u);
  EXPECT_THROW(est.restore(-1.0, 3), std::invalid_argument);
  EXPECT_THROW(est.restore(std::numeric_limits<double>::quiet_NaN(), 3),
               std::invalid_argument);
}

TEST(ProbingConfigValidate, RejectsBadFields) {
  auto broken = [](auto mutate) {
    ProbingConfig config;
    mutate(config);
    return config;
  };
  EXPECT_THROW(validate(broken([](auto& c) { c.probe_period_slots = 0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.alpha_passive = 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.alpha_probe = 1.5; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.probe_fraction = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.probe_cap_mbps = -1.0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.initial_mbps = -1.0; })),
               std::invalid_argument);
  EXPECT_NO_THROW(validate(ProbingConfig{}));
}

TEST(BudgetSplitTest, ConservesBudgetExactly) {
  // The conservation contract is bitwise: content is *defined* as the
  // remainder, so content + probe round-trips need not hold in IEEE but
  // content == total - probe always does.
  for (double total : {0.0, 1.0, 36.0, 40.000000000000007, 1e9}) {
    for (double probe : {0.0, 0.1, 10.0, 39.0, 1e12}) {
      const BudgetSplit split = split_probe_budget(total, probe);
      EXPECT_GE(split.probe_mbps, 0.0);
      EXPECT_LE(split.probe_mbps, total);
      EXPECT_DOUBLE_EQ(split.content_mbps, total - split.probe_mbps);
      EXPECT_GE(split.content_mbps, 0.0);
    }
  }
  // Requests are clamped: negative asks take nothing, oversized asks
  // take everything.
  EXPECT_DOUBLE_EQ(split_probe_budget(40.0, -3.0).probe_mbps, 0.0);
  EXPECT_DOUBLE_EQ(split_probe_budget(40.0, 100.0).probe_mbps, 40.0);
  EXPECT_DOUBLE_EQ(split_probe_budget(40.0, 100.0).content_mbps, 0.0);
}

// --- Estimator-arm cross-validation -----------------------------------
//
// The probing arm must be comparable to the EMA arm under the same
// fault schedules (docs/workloads.md): identical worlds, identical
// faults, only the estimator differs — and the recovery metrics must
// actually distinguish the arms.

faults::FaultEvent window(faults::FaultType type, std::size_t target,
                          std::size_t start, std::size_t duration,
                          double severity = 0.0) {
  faults::FaultEvent e;
  e.type = type;
  e.target = target;
  e.start_slot = start;
  e.duration_slots = duration;
  e.severity = severity;
  return e;
}

system::SystemSimConfig arm_config(system::EstimatorArm arm,
                                   const faults::FaultSchedule& schedule) {
  system::SystemSimConfig config = system::setup_one_router(4);
  config.slots = 500;
  config.server.estimator_arm = arm;
  config.faults = schedule;
  return config;
}

std::vector<sim::UserOutcome> run_arm(system::EstimatorArm arm,
                                      const faults::FaultSchedule& schedule) {
  core::DvGreedyAllocator alloc;
  return system::SystemSim(arm_config(arm, schedule)).run(alloc, 0);
}

TEST(EstimatorArms, DifferUnderAckStallSchedule) {
  // Feedback blackouts are where the arms genuinely diverge: the EMA
  // arm coasts on stale-hold while the probing arm re-learns with a
  // heavier weight as soon as feedback returns.
  faults::FaultSchedule schedule;
  for (std::size_t u = 0; u < 4; ++u) {
    schedule.add(window(faults::FaultType::kAckStall, u, 120 + 30 * u, 60));
  }
  const auto ema = run_arm(system::EstimatorArm::kEma, schedule);
  const auto probing = run_arm(system::EstimatorArm::kProbing, schedule);
  ASSERT_EQ(ema.size(), probing.size());
  bool qoe_differs = false;
  for (std::size_t u = 0; u < ema.size(); ++u) {
    // Same schedule, same world: fault exposure is identical per arm...
    EXPECT_DOUBLE_EQ(ema[u].fault_slots, probing[u].fault_slots);
    EXPECT_GT(ema[u].fault_slots, 0.0);
    EXPECT_TRUE(std::isfinite(probing[u].avg_qoe));
    if (ema[u].avg_qoe != probing[u].avg_qoe) qoe_differs = true;
  }
  // ...but the realized QoE under the faults is not.
  EXPECT_TRUE(qoe_differs);
}

TEST(EstimatorArms, DifferUnderRouterOutageSchedule) {
  faults::FaultSchedule schedule;
  schedule.add(window(faults::FaultType::kRouterOutage, 0, 100, 80, 0.1));
  schedule.add(window(faults::FaultType::kRouterOutage, 0, 300, 80, 0.15));
  const auto ema = run_arm(system::EstimatorArm::kEma, schedule);
  const auto probing = run_arm(system::EstimatorArm::kProbing, schedule);
  ASSERT_EQ(ema.size(), probing.size());
  bool recovery_differs = false;
  for (std::size_t u = 0; u < ema.size(); ++u) {
    EXPECT_DOUBLE_EQ(ema[u].fault_slots, probing[u].fault_slots);
    EXPECT_GT(ema[u].fault_slots, 0.0);
    EXPECT_GE(probing[u].time_to_recover_slots, 0.0);
    if (ema[u].avg_qoe != probing[u].avg_qoe ||
        ema[u].qoe_dip != probing[u].qoe_dip ||
        ema[u].time_to_recover_slots != probing[u].time_to_recover_slots) {
      recovery_differs = true;
    }
  }
  EXPECT_TRUE(recovery_differs);
}

TEST(EstimatorArms, ProbingArmDeterministic) {
  faults::FaultSchedule schedule;
  schedule.add(window(faults::FaultType::kAckStall, 1, 150, 60));
  const auto x = run_arm(system::EstimatorArm::kProbing, schedule);
  const auto y = run_arm(system::EstimatorArm::kProbing, schedule);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
    EXPECT_DOUBLE_EQ(x[u].avg_delay_ms, y[u].avg_delay_ms);
    EXPECT_DOUBLE_EQ(x[u].qoe_dip, y[u].qoe_dip);
  }
}

// Guard: the kEma arm with a tweaked-but-unselected probing config is
// bit-identical to the default server — the probing machinery must be
// inert unless the arm selects it.
TEST(EstimatorArms, UnselectedProbingConfigInert) {
  faults::FaultSchedule empty;
  system::SystemSimConfig legacy = arm_config(system::EstimatorArm::kEma, empty);
  system::SystemSimConfig tweaked = legacy;
  tweaked.server.probing.probe_period_slots = 5;
  tweaked.server.probing.probe_fraction = 0.9;
  tweaked.server.probing.alpha_probe = 0.9;
  core::DvGreedyAllocator a, b;
  const auto x = system::SystemSim(legacy).run(a, 0);
  const auto y = system::SystemSim(tweaked).run(b, 0);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t u = 0; u < x.size(); ++u) {
    EXPECT_DOUBLE_EQ(x[u].avg_qoe, y[u].avg_qoe);
    EXPECT_DOUBLE_EQ(x[u].avg_quality, y[u].avg_quality);
    EXPECT_DOUBLE_EQ(x[u].avg_delay_ms, y[u].avg_delay_ms);
    EXPECT_DOUBLE_EQ(x[u].fps, y[u].fps);
  }
}

TEST(EstimatorArms, ProbingChangesFaultFreeRunToo) {
  faults::FaultSchedule empty;
  const auto ema = run_arm(system::EstimatorArm::kEma, empty);
  const auto probing = run_arm(system::EstimatorArm::kProbing, empty);
  bool differs = false;
  for (std::size_t u = 0; u < ema.size(); ++u) {
    EXPECT_DOUBLE_EQ(ema[u].fault_slots, 0.0);
    EXPECT_DOUBLE_EQ(probing[u].fault_slots, 0.0);
    if (ema[u].avg_qoe != probing[u].avg_qoe) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cvr::net
