#include "src/net/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/net/mm1.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::net {
namespace {

TEST(EmaThroughputEstimator, StartsAtInitial) {
  EmaThroughputEstimator est(0.2, 40.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
}

TEST(EmaThroughputEstimator, ConvergesToConstantSignal) {
  EmaThroughputEstimator est(0.2, 40.0);
  for (int i = 0; i < 200; ++i) est.observe(60.0);
  EXPECT_NEAR(est.estimate_mbps(), 60.0, 0.01);
}

TEST(EmaThroughputEstimator, SingleStepIsConvexCombination) {
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(80.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0 + 0.25 * 80.0);
}

TEST(EmaThroughputEstimator, LagsStepChange) {
  // The estimation-lag behaviour that hurts aggressive allocators: after
  // a sudden capacity drop the estimate stays optimistic for a while.
  EmaThroughputEstimator est(0.1, 60.0);
  for (int i = 0; i < 100; ++i) est.observe(60.0);
  est.observe(20.0);
  est.observe(20.0);
  EXPECT_GT(est.estimate_mbps(), 40.0);  // still far above reality
}

TEST(EmaThroughputEstimator, SmoothsNoise) {
  cvr::Rng rng(1);
  EmaThroughputEstimator est(0.05, 50.0);
  double min_seen = 1e9, max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    est.observe(50.0 + rng.normal(0.0, 10.0));
    min_seen = std::min(min_seen, est.estimate_mbps());
    max_seen = std::max(max_seen, est.estimate_mbps());
  }
  EXPECT_GT(min_seen, 40.0);
  EXPECT_LT(max_seen, 60.0);
}

TEST(EmaThroughputEstimator, RejectsBadInput) {
  EXPECT_THROW(EmaThroughputEstimator(0.0, 40.0), std::invalid_argument);
  EXPECT_THROW(EmaThroughputEstimator(1.1, 40.0), std::invalid_argument);
}

TEST(EmaThroughputEstimator, NegativeSampleClampsToZero) {
  // One corrupt report must never crash the server loop: a negative
  // sample behaves as a measured zero.
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(-1.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0);
  EXPECT_EQ(est.observations(), 1u);
}

TEST(EmaThroughputEstimator, NonFiniteSamplesIgnored) {
  EmaThroughputEstimator est(0.25, 40.0);
  est.observe(std::numeric_limits<double>::quiet_NaN());
  est.observe(std::numeric_limits<double>::infinity());
  est.observe(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 40.0);
  EXPECT_EQ(est.observations(), 0u);
  est.observe(60.0);  // still alive and learning afterwards
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 0.75 * 40.0 + 0.25 * 60.0);
}

TEST(DelayPredictor, ColdStartUsesAnalyticMm1) {
  DelayPredictor pred;
  EXPECT_FALSE(pred.trained());
  const double expected = mm1_delay(20.0, 40.0) * cvr::kSlotMillis;
  EXPECT_DOUBLE_EQ(pred.predict_ms(20.0, 40.0), expected);
}

TEST(DelayPredictor, LearnsQuadraticDelayCurve) {
  DelayPredictor pred;
  // Feed a synthetic convex delay curve; the quadratic fit should track
  // it well inside the observed range.
  auto truth = [](double r) { return 0.5 + 0.02 * r + 0.004 * r * r; };
  for (double r = 5.0; r <= 50.0; r += 1.0) pred.observe(r, truth(r));
  EXPECT_TRUE(pred.trained());
  for (double r : {10.0, 25.0, 40.0}) {
    EXPECT_NEAR(pred.predict_ms(r, 60.0), truth(r), 0.05);
  }
}

TEST(DelayPredictor, PredictionNeverNegative) {
  DelayPredictor pred;
  // Decreasing-looking noise could yield a negative quadratic somewhere.
  for (double r = 5.0; r <= 20.0; r += 1.0) pred.observe(r, 0.01);
  EXPECT_GE(pred.predict_ms(0.0, 60.0), 0.0);
  EXPECT_GE(pred.predict_ms(100.0, 60.0), 0.0);
}

TEST(DelayPredictor, NegativeSamplesClampToZero) {
  DelayPredictor a;
  DelayPredictor b;
  for (double r = 5.0; r <= 20.0; r += 1.0) {
    a.observe(r, 1.0);
    b.observe(r, 1.0);
  }
  // A negative component clamps to zero rather than throwing.
  a.observe(-3.0, -7.0);
  b.observe(0.0, 0.0);
  EXPECT_TRUE(a.trained());
  EXPECT_DOUBLE_EQ(a.predict_ms(10.0, 60.0), b.predict_ms(10.0, 60.0));
}

TEST(DelayPredictor, NonFiniteSamplesIgnored) {
  DelayPredictor pred;
  pred.observe(std::numeric_limits<double>::quiet_NaN(), 1.0);
  pred.observe(1.0, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(pred.trained());
  // Predictions stay on the analytic cold-start path and stay finite.
  EXPECT_TRUE(std::isfinite(pred.predict_ms(20.0, 40.0)));
}

TEST(StaleHold, HoldsThenDecaysTowardFloor) {
  const StaleHoldConfig config;  // hold 33, decay 0.93, floor 1.0
  // Inside the hold window the estimate is untouched.
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, 0, config), 60.0);
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, config.hold_slots, config), 60.0);
  // Past the hold it decays monotonically...
  double prev = 60.0;
  for (std::size_t s = config.hold_slots + 1; s < config.hold_slots + 200;
       ++s) {
    const double held = apply_stale_hold(60.0, s, config);
    EXPECT_LE(held, prev);
    EXPECT_GE(held, config.floor_mbps);
    prev = held;
  }
  // ...and long silence lands on the re-probe floor.
  EXPECT_DOUBLE_EQ(apply_stale_hold(60.0, 100000, config), config.floor_mbps);
}

TEST(StaleHold, FloorNeverInflatesASmallEstimate) {
  StaleHoldConfig config;
  config.floor_mbps = 10.0;
  // An estimate already below the floor must not be *raised* by decay.
  EXPECT_LE(apply_stale_hold(2.0, 1000, config), 2.0);
}

TEST(DelayPredictor, NoisyMm1SamplesStillTrackAnalytic) {
  cvr::Rng rng(2);
  DelayPredictor pred;
  const double bandwidth = 50.0;
  for (int i = 0; i < 300; ++i) {
    const double r = rng.uniform(5.0, 40.0);
    const double d = mm1_delay(r, bandwidth) * (1.0 + rng.normal(0.0, 0.1));
    pred.observe(r, std::max(0.0, d));
  }
  // Mid-range prediction within a factor ~2 of the analytic value
  // (quadratic approximation of a hyperbola over the sampled range).
  const double analytic = mm1_delay(25.0, bandwidth);
  const double predicted = pred.predict_ms(25.0, bandwidth);
  EXPECT_GT(predicted, analytic * 0.4);
  EXPECT_LT(predicted, analytic * 2.5);
}

}  // namespace
}  // namespace cvr::net
