#include "src/content/equirect.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cvr::content {
namespace {

using cvr::motion::FovSpec;
using cvr::motion::Pose;

TEST(Equirect, ProjectCenter) {
  const TexCoord tc = project_equirect(0.0, 0.0);
  EXPECT_DOUBLE_EQ(tc.u, 0.5);
  EXPECT_DOUBLE_EQ(tc.v, 0.5);
}

TEST(Equirect, ProjectCorners) {
  EXPECT_DOUBLE_EQ(project_equirect(-180.0, 90.0).u, 0.0);
  EXPECT_DOUBLE_EQ(project_equirect(-180.0, 90.0).v, 0.0);
  EXPECT_DOUBLE_EQ(project_equirect(0.0, -90.0).v, 1.0);
  // +180 wraps to -180 -> u = 0.
  EXPECT_DOUBLE_EQ(project_equirect(180.0, 0.0).u, 0.0);
}

TEST(Equirect, UnprojectRoundTrip) {
  for (double yaw : {-170.0, -90.0, 0.0, 45.0, 135.0}) {
    for (double pitch : {-80.0, -30.0, 0.0, 30.0, 80.0}) {
      const auto back = unproject_equirect(project_equirect(yaw, pitch));
      EXPECT_NEAR(back[0], yaw, 1e-9);
      EXPECT_NEAR(back[1], pitch, 1e-9);
    }
  }
}

TEST(Equirect, PitchClamped) {
  EXPECT_DOUBLE_EQ(project_equirect(0.0, 120.0).v, 0.0);
  EXPECT_DOUBLE_EQ(project_equirect(0.0, -120.0).v, 1.0);
}

FovSpec narrow_spec() {
  FovSpec spec;
  spec.horizontal_deg = 60.0;
  spec.vertical_deg = 40.0;
  spec.margin_deg = 5.0;
  return spec;
}

TEST(TilesForView, CenterOfLeftTopTile) {
  // Left column: yaw in [-180, 0); top row: pitch > 0.
  Pose view;
  view.yaw = -90.0;
  view.pitch = 45.0;
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{0}));
}

TEST(TilesForView, CenterOfRightBottomTile) {
  Pose view;
  view.yaw = 90.0;
  view.pitch = -45.0;
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{3}));
}

TEST(TilesForView, HorizonSpansBothRows) {
  Pose view;
  view.yaw = -90.0;
  view.pitch = 0.0;
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{0, 2}));
}

TEST(TilesForView, ColumnBoundarySpansBothColumns) {
  Pose view;
  view.yaw = 0.0;  // on the column boundary
  view.pitch = 45.0;
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{0, 1}));
}

TEST(TilesForView, AntimeridianSpansBothColumns) {
  Pose view;
  view.yaw = 179.0;  // straddles +-180, which is also a column boundary
  view.pitch = 45.0;
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{0, 1}));
}

TEST(TilesForView, CenterViewNeedsAllFour) {
  Pose view;  // yaw 0 pitch 0: both boundaries
  const auto tiles = tiles_for_view(narrow_spec(), view);
  EXPECT_EQ(tiles, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TilesForView, WideWindowSelectsBothColumns) {
  FovSpec wide;
  wide.horizontal_deg = 200.0;
  wide.vertical_deg = 40.0;
  wide.margin_deg = 0.0;
  Pose view;
  view.yaw = -90.0;
  view.pitch = 45.0;
  const auto tiles = tiles_for_view(wide, view);
  EXPECT_EQ(tiles, (std::vector<int>{0, 1}));
}

TEST(TilesForView, MarginGrowsSelection) {
  // A view near the column boundary: without margin one column, with a
  // large margin both.
  FovSpec no_margin = narrow_spec();
  no_margin.margin_deg = 0.0;
  FovSpec with_margin = narrow_spec();
  with_margin.margin_deg = 30.0;
  Pose view;
  view.yaw = -35.0;
  view.pitch = 60.0;  // high enough that even the margin stays in row 0
  EXPECT_EQ(tiles_for_view(no_margin, view).size(), 1u);
  EXPECT_EQ(tiles_for_view(with_margin, view).size(), 2u);
}

TEST(TilesCover, DeliveredSupersetCovers) {
  const FovSpec spec = narrow_spec();
  Pose actual;
  actual.yaw = -90.0;
  actual.pitch = 45.0;
  EXPECT_TRUE(tiles_cover({0, 1, 2, 3}, spec, actual));
  EXPECT_TRUE(tiles_cover({0}, spec, actual));
}

TEST(TilesCover, MissingTileFails) {
  const FovSpec spec = narrow_spec();
  Pose actual;
  actual.yaw = -90.0;
  actual.pitch = 0.0;  // needs tiles 0 and 2
  EXPECT_FALSE(tiles_cover({0}, spec, actual));
  EXPECT_TRUE(tiles_cover({0, 2}, spec, actual));
}

TEST(TilesCover, EmptyDeliveryFails) {
  const FovSpec spec = narrow_spec();
  Pose actual;
  actual.yaw = -90.0;
  actual.pitch = 45.0;
  EXPECT_FALSE(tiles_cover({}, spec, actual));
}

// Property: the delivered set for a view always covers that same view's
// unmargined needs.
class SelfCoverage : public ::testing::TestWithParam<int> {};

TEST_P(SelfCoverage, DeliveredCoversOwnFov) {
  const int i = GetParam();
  FovSpec spec;
  spec.margin_deg = 10.0;
  Pose view;
  view.yaw = -180.0 + 17.0 * i;
  view.pitch = -80.0 + 13.0 * i;
  const auto delivered = tiles_for_view(spec, view);
  EXPECT_TRUE(tiles_cover(delivered, spec, view))
      << "yaw " << view.yaw << " pitch " << view.pitch;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelfCoverage, ::testing::Range(0, 13));

}  // namespace
}  // namespace cvr::content
