#include "src/core/qoe.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::make_user;

TEST(UserSlotContext, FromRateFunctionBuildsTables) {
  const auto user = make_crf_user(60.0, 0.9, 2.0, 10.0);
  ASSERT_EQ(user.rate.size(), 6u);
  ASSERT_EQ(user.delay.size(), 6u);
  EXPECT_DOUBLE_EQ(user.delta, 0.9);
  // Rates increasing, delays increasing (convexity of both).
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GT(user.rate[i], user.rate[i - 1]);
    EXPECT_GE(user.delay[i], user.delay[i - 1]);
  }
}

TEST(UserSlotContext, DelaySaturatesAboveBandwidth) {
  const auto user = make_crf_user(30.0);  // levels 4..6 exceed 30 Mbps
  EXPECT_LT(user.delay[0], net::kSaturatedDelay);
  EXPECT_EQ(user.delay[5], net::kSaturatedDelay);
}

TEST(HValue, FirstSlotHasNoVarianceTerm) {
  // t = 1 -> weight (t-1)/t = 0: h = delta q - alpha d.
  const auto user = make_user({10, 15, 22, 31, 44, 60}, {1, 2, 3, 4, 5, 6},
                              100.0, 0.8, 3.0, 1.0);
  const QoeParams params{0.1, 0.5};
  EXPECT_DOUBLE_EQ(h_value(user, 2, params), 0.8 * 2.0 - 0.1 * 2.0);
}

TEST(HValue, MatchesHandComputedFormula) {
  const double delta = 0.9, qbar = 2.5, slot = 5.0;
  const auto user = make_user({10, 15, 22, 31, 44, 60}, {1, 2, 3, 4, 5, 6},
                              100.0, delta, qbar, slot);
  const QoeParams params{0.02, 0.5};
  const QualityLevel q = 4;
  const double weight = (slot - 1.0) / slot;
  const double expected =
      delta * 4.0 - 0.02 * 4.0 -
      0.5 * (delta * weight * (4.0 - qbar) * (4.0 - qbar) +
             (1.0 - delta) * weight * qbar * qbar);
  EXPECT_NEAR(h_value(user, q, params), expected, 1e-12);
}

TEST(HValue, PerfectPredictionDropsMissTerm) {
  const auto user = make_user({10, 15, 22, 31, 44, 60}, {0, 0, 0, 0, 0, 0},
                              100.0, 1.0, 3.0, 10.0);
  const QoeParams params{0.0, 1.0};
  // With delta = 1: h(q) = q - (t-1)/t (q - qbar)^2.
  const double weight = 9.0 / 10.0;
  EXPECT_NEAR(h_value(user, 3, params), 3.0 - weight * 0.0, 1e-12);
  EXPECT_NEAR(h_value(user, 5, params), 5.0 - weight * 4.0, 1e-12);
}

TEST(HValue, ConcaveInQuality) {
  // h increments must be non-increasing (the property Theorem 1 needs).
  const auto user = make_crf_user(80.0, 0.85, 2.0, 50.0);
  const QoeParams params{0.02, 0.5};
  double prev_inc = 1e18;
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    const double inc = h_increment(user, q, params);
    EXPECT_LE(inc, prev_inc + 1e-9) << "q=" << q;
    prev_inc = inc;
  }
}

TEST(HIsConcave, TrueForPublishedModel) {
  const QoeParams params{0.02, 0.5};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cvr::Rng rng(seed);
    const auto user = make_crf_user(rng.uniform(20.0, 100.0),
                                    rng.uniform(0.5, 1.0),
                                    rng.uniform(0.0, 6.0),
                                    rng.uniform(1.0, 500.0));
    EXPECT_TRUE(h_is_concave(user, params)) << seed;
  }
}

TEST(HIsConcave, FrameLossCanBreakIt) {
  // A loss cliff between mid levels creates a convex kink in the
  // effective value — the Theorem-1 assumption no longer holds.
  auto user = make_crf_user(1000.0, 1.0, 0.0, 1.0);
  user.frame_loss = {0.0, 0.6, 0.6, 0.0, 0.0, 0.0};  // within B_n = 1000
  EXPECT_FALSE(h_is_concave(user, QoeParams{0.0, 0.0}));
}

TEST(HValue, InvalidLevelThrows) {
  const auto user = make_crf_user(60.0);
  const QoeParams params;
  EXPECT_THROW(h_value(user, 0, params), std::out_of_range);
  EXPECT_THROW(h_value(user, 7, params), std::out_of_range);
}

TEST(HValue, TablesAreStructurallyComplete) {
  // The rate/delay tables are fixed-size arrays, so an "incomplete
  // table" cannot be constructed and h_value needs no per-call size
  // validation — the old std::invalid_argument path is gone from the
  // hot loop by construction (see docs/performance.md).
  static_assert(std::tuple_size<decltype(UserSlotContext::rate)>::value ==
                static_cast<std::size_t>(kNumQualityLevels));
  static_assert(std::tuple_size<decltype(UserSlotContext::delay)>::value ==
                static_cast<std::size_t>(kNumQualityLevels));
  UserSlotContext user;  // default: all-zero tables, still sized L
  EXPECT_EQ(user.rate.size(), static_cast<std::size_t>(kNumQualityLevels));
  EXPECT_EQ(user.delay.size(), static_cast<std::size_t>(kNumQualityLevels));
}

TEST(HDensity, MatchesIncrementOverRateDelta) {
  const auto user = make_crf_user(80.0, 0.9, 1.0, 10.0);
  const QoeParams params{0.02, 0.5};
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    const double expected = h_increment(user, q, params) /
                            (user.rate[q] - user.rate[q - 1]);
    EXPECT_NEAR(h_density(user, q, params), expected, 1e-12);
  }
}

TEST(HDensity, NonIncreasingInQuality) {
  // eta_{n,j} >= eta_{n,j+1} (Theorem 1's key step: concave objective
  // over convex rates).
  const auto user = make_crf_user(100.0, 0.9, 2.0, 100.0);
  const QoeParams params{0.02, 0.5};
  double prev = 1e18;
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    const double d = h_density(user, q, params);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(UserQoeAccumulator, EmptyIsZero) {
  UserQoeAccumulator acc;
  EXPECT_EQ(acc.slots(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_viewed_quality(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.average_qoe(QoeParams{}), 0.0);
}

TEST(UserQoeAccumulator, MissesCountAsZeroQuality) {
  UserQoeAccumulator acc;
  acc.record(4, true, 1.0);
  acc.record(4, false, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_viewed_quality(), 2.0);
  // Samples {4, 0}: population variance 4.
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
}

TEST(UserQoeAccumulator, VarianceMatchesDefinition) {
  // sigma_n^2(T) from Section II computed naively vs Welford.
  cvr::Rng rng(3);
  UserQoeAccumulator acc;
  std::vector<double> samples;
  for (int t = 0; t < 500; ++t) {
    const QualityLevel q = static_cast<QualityLevel>(rng.uniform_int(1, 6));
    const bool viewed = rng.bernoulli(0.9);
    acc.record(q, viewed, 0.5);
    samples.push_back(viewed ? q : 0.0);
  }
  cvr::RunningStat naive;
  for (double s : samples) naive.add(s);
  EXPECT_NEAR(acc.variance(), naive.population_variance(), 1e-9);
  EXPECT_NEAR(acc.mean_viewed_quality(), naive.mean(), 1e-12);
}

TEST(UserQoeAccumulator, AverageQoeComposition) {
  UserQoeAccumulator acc;
  acc.record(3, true, 2.0);
  acc.record(5, true, 4.0);
  const QoeParams params{0.1, 0.5};
  // mean q = 4, mean d = 3, variance = 1.
  EXPECT_NEAR(acc.average_qoe(params), 4.0 - 0.3 - 0.5, 1e-12);
}

TEST(UserQoeAccumulator, RejectsBadInput) {
  UserQoeAccumulator acc;
  EXPECT_THROW(acc.record(0, true, 1.0), std::out_of_range);
  EXPECT_THROW(acc.record(3, true, -1.0), std::invalid_argument);
}

// The Welford decomposition (eq. 4 / Appendix A): summing the per-slot
// penalty terms (t-1)(x_t - mean_{t-1})^2 / t equals T sigma^2(T).
class VarianceDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(VarianceDecomposition, PerSlotTermsSumToTotalVariance) {
  cvr::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int horizon = 50 + 17 * GetParam();
  double mean = 0.0;
  double decomposed = 0.0;
  for (int t = 1; t <= horizon; ++t) {
    const double x = rng.uniform(0.0, 6.0);
    xs.push_back(x);
    decomposed += (t - 1.0) * (x - mean) * (x - mean) / t;
    mean += (x - mean) / t;  // running mean update
  }
  cvr::RunningStat naive;
  for (double x : xs) naive.add(x);
  EXPECT_NEAR(decomposed, horizon * naive.population_variance(),
              1e-7 * horizon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarianceDecomposition, ::testing::Range(1, 9));

}  // namespace
}  // namespace cvr::core
