#include "src/core/lagrangian.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"
#include "src/core/optimal.h"

namespace cvr::core {
namespace {

using testutil::make_crf_user;
using testutil::random_problem;

TEST(Lagrangian, UnconstrainedMatchesPerUserArgmax) {
  SlotProblem problem;
  problem.params = QoeParams{0.1, 0.5};
  problem.users.push_back(make_crf_user(60.0, 0.9, 3.0, 10.0));
  problem.server_bandwidth = 1e6;
  LagrangianAllocator lagrangian;
  BruteForceAllocator brute;
  EXPECT_NEAR(lagrangian.allocate(problem).objective,
              brute.allocate(problem).objective, 1e-9);
}

TEST(Lagrangian, AlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SlotProblem problem = random_problem(seed, 10);
    LagrangianAllocator lagrangian;
    const Allocation a = lagrangian.allocate(problem);
    EXPECT_TRUE(server_feasible(problem, a.levels)) << seed;
    for (std::size_t n = 0; n < problem.users.size(); ++n) {
      if (a.levels[n] > 1) {
        EXPECT_TRUE(user_feasible(problem.users[n], a.levels[n])) << seed;
      }
    }
  }
}

TEST(Lagrangian, NearOptimalOnRandomInstances) {
  // Duality-gap bound: the primal crossing allocation loses at most one
  // quality increment worth of value vs the exact optimum. Verify the
  // realized gap is small in relative terms.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    LagrangianAllocator lagrangian;
    BruteForceAllocator brute;
    const double exact = brute.allocate(problem).objective;
    const double primal = lagrangian.allocate(problem).objective;
    EXPECT_LE(primal, exact + 1e-9) << seed;
    const std::vector<QualityLevel> ones(5, 1);
    const double base = evaluate(problem, ones);
    if (exact - base > 1e-9) {
      EXPECT_GE(primal - base, 0.6 * (exact - base)) << seed;
    }
  }
}

TEST(Lagrangian, InfeasibleMinimumFallsBackToAllOnes) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(make_crf_user(100.0));
  problem.users.push_back(make_crf_user(100.0));
  problem.server_bandwidth = 1.0;
  LagrangianAllocator lagrangian;
  EXPECT_EQ(lagrangian.allocate(problem).levels,
            (std::vector<QualityLevel>{1, 1}));
}

TEST(Lagrangian, EmptyProblem) {
  SlotProblem problem;
  LagrangianAllocator lagrangian;
  EXPECT_TRUE(lagrangian.allocate(problem).levels.empty());
}

TEST(LagrangianDualBound, UpperBoundsExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SlotProblem problem = random_problem(seed, 5);
    BruteForceAllocator brute;
    const double exact = brute.allocate(problem).objective;
    EXPECT_GE(lagrangian_dual_bound(problem), exact - 1e-6) << seed;
  }
}

TEST(LagrangianDualBound, ComparableToFractionalBound) {
  // Both bound OPT from above; neither dominates universally, but they
  // should agree within the largest single increment's value.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SlotProblem problem = random_problem(seed, 8);
    const double dual = lagrangian_dual_bound(problem);
    const double fractional = fractional_upper_bound(problem);
    EXPECT_NEAR(dual, fractional, 0.35 * std::abs(fractional) + 6.0) << seed;
  }
}

TEST(LagrangianDualBound, TightWhenBudgetAmple) {
  SlotProblem problem = random_problem(3, 4);
  problem.server_bandwidth = 1e6;
  BruteForceAllocator brute;
  EXPECT_NEAR(lagrangian_dual_bound(problem),
              brute.allocate(problem).objective, 1e-6);
}

TEST(Lagrangian, ComparableToDvGreedy) {
  // Two different approximation schemes for the same problem: across a
  // sweep neither should be systematically worthless relative to the
  // other (mean values within a few percent).
  double lagrangian_total = 0.0, dv_total = 0.0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    SlotProblem problem = random_problem(seed, 12);
    LagrangianAllocator lagrangian;
    DvGreedyAllocator dv;
    lagrangian_total += lagrangian.allocate(problem).objective;
    dv_total += dv.allocate(problem).objective;
  }
  EXPECT_NEAR(lagrangian_total, dv_total, 0.05 * std::abs(dv_total));
}

}  // namespace
}  // namespace cvr::core
