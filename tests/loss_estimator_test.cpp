#include "src/net/loss_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace cvr::net {
namespace {

TEST(LossEstimator, PriorBeforeTraining) {
  LossEstimator est(128, 0.002);
  EXPECT_FALSE(est.trained());
  EXPECT_DOUBLE_EQ(est.packet_loss(0.5), 0.002);
}

TEST(LossEstimator, LearnsCubicLossCurve) {
  LossEstimator est;
  auto truth = [](double u) { return 0.002 + 0.08 * u * u * u; };
  for (int i = 0; i < 200; ++i) {
    const double u = (i % 100) / 100.0;
    est.observe(u, truth(u));
  }
  EXPECT_TRUE(est.trained());
  for (double u : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(est.packet_loss(u), truth(u), 0.003) << u;
  }
}

TEST(LossEstimator, NoisyBernoulliSamplesStillConverge) {
  cvr::Rng rng(5);
  LossEstimator est;
  auto truth = [](double u) { return 0.002 + 0.08 * u * u * u; };
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform(0.0, 1.0);
    // Empirical loss over a 40-packet slot.
    int lost = 0;
    for (int p = 0; p < 40; ++p) lost += rng.bernoulli(truth(u)) ? 1 : 0;
    est.observe(u, lost / 40.0);
  }
  EXPECT_NEAR(est.packet_loss(0.9), truth(0.9), 0.02);
  EXPECT_LT(est.packet_loss(0.1), 0.02);
}

TEST(LossEstimator, PredictionsClamped) {
  LossEstimator est;
  // Pathological training data can produce negative or >1 fits.
  for (int i = 0; i < 50; ++i) est.observe(i % 2 ? 1.0 : 0.0, i % 2 ? 0.0 : 1.0);
  EXPECT_GE(est.packet_loss(0.5), 0.0);
  EXPECT_LE(est.packet_loss(2.0), 0.9);
}

TEST(LossEstimator, FrameLossGrowsWithPackets) {
  LossEstimator est;
  auto truth = [](double u) { return 0.01 + 0.0 * u; };
  for (int i = 0; i < 100; ++i) est.observe(i / 100.0, truth(i / 100.0));
  const double small = est.frame_loss(0.5, 5.0);
  const double large = est.frame_loss(0.5, 50.0);
  EXPECT_GT(large, small);
  EXPECT_NEAR(small, 1.0 - std::pow(1.0 - est.packet_loss(0.5), 5.0), 1e-12);
}

TEST(LossEstimator, ZeroPacketsNoLoss) {
  LossEstimator est;
  EXPECT_DOUBLE_EQ(est.frame_loss(0.9, 0.0), 0.0);
}

TEST(LossEstimator, RejectsBadInput) {
  EXPECT_THROW(LossEstimator(10, 1.5), std::invalid_argument);
  LossEstimator est;
  EXPECT_THROW(est.observe(0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(est.observe(0.5, 1.1), std::invalid_argument);
}

TEST(LossEstimator, UtilizationClamped) {
  LossEstimator est;
  for (int i = 0; i < 100; ++i) est.observe(i / 100.0, 0.01 * i / 100.0);
  EXPECT_DOUBLE_EQ(est.packet_loss(-1.0), est.packet_loss(0.0));
  EXPECT_DOUBLE_EQ(est.packet_loss(5.0), est.packet_loss(1.0));
}

}  // namespace
}  // namespace cvr::net
