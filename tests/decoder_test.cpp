#include "src/system/decoder.h"

#include <gtest/gtest.h>

namespace cvr::system {
namespace {

TEST(DecoderPool, ZeroTilesIsInstant) {
  DecoderPool pool;
  EXPECT_DOUBLE_EQ(pool.decode_time_ms(0), 0.0);
  EXPECT_TRUE(pool.on_time(0));
}

TEST(DecoderPool, SingleWaveForUpToFiveTiles) {
  DecoderPool pool;  // 5 decoders, 2.5 ms/tile
  for (std::size_t tiles = 1; tiles <= 5; ++tiles) {
    EXPECT_DOUBLE_EQ(pool.decode_time_ms(tiles), 2.5) << tiles;
  }
  EXPECT_DOUBLE_EQ(pool.decode_time_ms(6), 5.0);
  EXPECT_DOUBLE_EQ(pool.decode_time_ms(11), 7.5);
}

TEST(DecoderPool, PaperConfigHandlesAFrameEasily) {
  // Four tiles, five decoders: one wave, well within a slot — the paper
  // sets 5 decoders "to avoid the performance degradation caused by the
  // decoding".
  DecoderPool pool;
  EXPECT_TRUE(pool.on_time(4));
}

TEST(DecoderPool, BudgetBoundary) {
  DecoderPoolConfig config;
  config.decoders = 2;
  config.decode_ms_per_tile = 5.0;
  config.stage_budget_ms = 10.0;
  DecoderPool pool(config);
  EXPECT_TRUE(pool.on_time(4));   // 2 waves x 5 ms = 10 ms: exactly fits
  EXPECT_FALSE(pool.on_time(5));  // 3 waves = 15 ms
  EXPECT_EQ(pool.max_tiles_per_slot(), 4u);
}

TEST(DecoderPool, SingleDecoderSerializes) {
  DecoderPoolConfig config;
  config.decoders = 1;
  config.decode_ms_per_tile = 3.0;
  DecoderPool pool(config);
  EXPECT_DOUBLE_EQ(pool.decode_time_ms(4), 12.0);
}

TEST(DecoderPool, MaxTilesPerSlotDefault) {
  DecoderPool pool;  // floor(15.15/2.5) = 6 waves x 5 decoders
  EXPECT_EQ(pool.max_tiles_per_slot(), 30u);
}

TEST(DecoderPool, RejectsBadConfig) {
  DecoderPoolConfig bad;
  bad.decoders = 0;
  EXPECT_THROW(DecoderPool{bad}, std::invalid_argument);
  DecoderPoolConfig bad2;
  bad2.decode_ms_per_tile = 0.0;
  EXPECT_THROW(DecoderPool{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace cvr::system
