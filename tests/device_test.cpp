#include "src/system/device.h"

#include <gtest/gtest.h>

#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

namespace cvr::system {
namespace {

TEST(DeviceProfile, ClientConfigCarriesDeviceParameters) {
  const DeviceProfile device{"test", 2, 4.5, 123};
  const ClientConfig config = device.client_config(12.0);
  EXPECT_EQ(config.decoder.decoders, 2);
  EXPECT_DOUBLE_EQ(config.decoder.decode_ms_per_tile, 4.5);
  EXPECT_EQ(config.buffer_threshold, 123u);
  EXPECT_DOUBLE_EQ(config.display_deadline_ms, 12.0);
  EXPECT_DOUBLE_EQ(config.decoder.stage_budget_ms, 12.0);
}

TEST(DeviceProfile, GenerationsOrderedByCapability) {
  EXPECT_GT(pixel6().decoders, pixel4().decoders);
  EXPECT_LT(pixel6().decode_ms_per_tile, pixel4().decode_ms_per_tile);
  EXPECT_GT(pixel6().buffer_threshold, pixel4().buffer_threshold);
  EXPECT_GE(pixel5().decoders, pixel4().decoders);
}

TEST(PaperFleet, MatchesSectionSixCounts) {
  const auto fleet = paper_fleet();
  ASSERT_EQ(fleet.size(), 15u);
  std::size_t p6 = 0, p5 = 0, p4 = 0;
  for (const auto& d : fleet) {
    if (d.name == "pixel6") ++p6;
    if (d.name == "pixel5") ++p5;
    if (d.name == "pixel4") ++p4;
  }
  EXPECT_EQ(p6, 10u);
  EXPECT_EQ(p5, 2u);
  EXPECT_EQ(p4, 3u);
}

TEST(AssignDevices, RoundRobinAndTruncation) {
  const std::vector<DeviceProfile> fleet = {pixel6(), pixel4()};
  const auto assigned = assign_devices(fleet, 5);
  ASSERT_EQ(assigned.size(), 5u);
  EXPECT_EQ(assigned[0].name, "pixel6");
  EXPECT_EQ(assigned[1].name, "pixel4");
  EXPECT_EQ(assigned[4].name, "pixel6");
  EXPECT_TRUE(assign_devices(fleet, 0).empty());
}

TEST(AssignDevices, EmptyFleetThrows) {
  EXPECT_THROW(assign_devices({}, 3), std::invalid_argument);
}

TEST(SystemSimDevices, HeterogeneousFleetRuns) {
  SystemSimConfig config = setup_two_routers(15);
  config.slots = 200;
  config.devices = paper_fleet();
  core::DvGreedyAllocator alloc;
  const auto outcomes = SystemSim(config).run(alloc, 0);
  ASSERT_EQ(outcomes.size(), 15u);
  for (const auto& o : outcomes) {
    EXPECT_GE(o.fps, 0.0);
    EXPECT_LE(o.fps, 66.1);
  }
}

TEST(SystemSimDevices, WeakDeviceDropsMoreFramesUnderDecodeLoad) {
  // Give every device a heavy tile stream; the 1-decoder "ancient"
  // profile must show a lower frame rate than the strong one.
  SystemSimConfig config = setup_one_router(2);
  config.slots = 500;
  DeviceProfile strong{"strong", 5, 2.0, 700};
  DeviceProfile weak{"weak", 1, 8.0, 100};
  config.devices = {strong, weak};
  core::DvGreedyAllocator alloc;
  const auto outcomes = SystemSim(config).run(alloc, 0);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_GE(outcomes[0].fps, outcomes[1].fps);
}

TEST(SystemSimDevices, EmptyDeviceListUsesSharedClientConfig) {
  SystemSimConfig a = setup_one_router(2);
  a.slots = 150;
  SystemSimConfig b = a;
  b.devices = {DeviceProfile{"same", a.client.decoder.decoders,
                             a.client.decoder.decode_ms_per_tile,
                             a.client.buffer_threshold}};
  core::DvGreedyAllocator x, y;
  const auto oa = SystemSim(a).run(x, 0);
  const auto ob = SystemSim(b).run(y, 0);
  for (std::size_t u = 0; u < oa.size(); ++u) {
    EXPECT_DOUBLE_EQ(oa[u].avg_qoe, ob[u].avg_qoe);
  }
}

}  // namespace
}  // namespace cvr::system
