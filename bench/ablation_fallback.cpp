// Ablation — directional fallback prefetch for virtual-location
// prediction errors (footnote 1: "Although there are some other
// approaches to handle the prediction errors on virtual location, we
// have left them as future work."). The extension transmits the
// predicted FoV of the *next cell along the motion direction* at the
// lowest level; a wrong-cell prediction then degrades the frame to
// level 1 instead of dropping it, at the cost of extra bandwidth.
//
// Position misses scale with walking speed, so the sweep runs the
// system at increasing user speeds with the feature off and on.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — directional level-1 fallback prefetch (footnote 1)");

  std::printf("%12s | %20s | %20s |\n", "", "fallback OFF", "fallback ON");
  std::printf("%12s | %9s %10s | %9s %10s | %8s\n", "speed m/s", "QoE",
              "quality", "QoE", "quality", "QoE gain");
  for (double speed : {1.2, 2.5, 4.0, 6.0}) {
    system::SystemSimConfig off = system::setup_one_router(6);
    off.slots = 1320;
    off.motion.max_speed_mps = speed;
    off.motion.accel_mps2 = speed;  // brisker speed changes too
    system::SystemSimConfig on = off;
    on.server.fallback_prefetch = true;

    core::DvGreedyAllocator a, b;
    const auto arm_off = system::SystemSim(off).compare({&a}, 3)[0];
    const auto arm_on = system::SystemSim(on).compare({&b}, 3)[0];
    std::printf("%12.1f | %9.3f %10.3f | %9.3f %10.3f | %+7.1f%%\n", speed,
                arm_off.mean_qoe(), arm_off.mean_quality(), arm_on.mean_qoe(),
                arm_on.mean_quality(),
                bench::improvement_pct(arm_on.mean_qoe(), arm_off.mean_qoe()));
  }

  std::printf(
      "\nmeasured (negative) result: even with the headroom gate, the\n"
      "one-cell directional fallback costs more bandwidth than its narrow\n"
      "insurance band recovers — it only rescues position errors landing\n"
      "within ~1 cell of the guessed direction, while every moving slot\n"
      "pays the extra level-1 tiles. A useful datapoint on why the paper\n"
      "left virtual-location error handling as future work (footnote 1):\n"
      "the margin trick that works for orientation has no cheap analogue\n"
      "for translation.\n");
  return 0;
}
