// Fig. 8 — real-world evaluation, experimental setup 2: 15 users across
// two bridged routers (800 Mbps total) with wireless interference
// ("the variance of the bandwidth capacity is even larger with two
// routers working together"). Same throttles/hyper-parameters as Fig. 7.
//
// Paper numbers to compare against (Section VI): ours +214.3% QoE over
// modified PAVQ; Firefly "even reaches negative QoE".
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/system/system_sim.h"

int main(int argc, char** argv) {
  using namespace cvr;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  bench::print_header("Fig. 8 — system evaluation, 15 users, two routers");

  system::SystemSimConfig config = system::setup_two_routers(15);
  config.slots = full ? 19800 : 1980;
  const std::size_t repeats = 5;
  const system::SystemSim sim(config);

  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &pavq, &firefly}, repeats);

  std::printf("(%zu repeats x %zu users x %zu slots; alpha=0.1 beta=0.5;\n"
              " TC throttles {40..60} Mbps, 2 routers x 400 Mbps,"
              " interference on)\n\n",
              repeats, config.users, config.slots);
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over PAVQ:    %+.1f%%   (paper: +214.3%%)\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("Firefly QoE: %8.3f                 (paper: negative)\n",
              arms[2].mean_qoe());
  std::printf(
      "\npaper shape: baselines are vulnerable to the two-router bandwidth\n"
      "variance (inaccurate throughput estimation); ours stays robust\n");
  return 0;
}
