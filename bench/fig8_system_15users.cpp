// Fig. 8 — real-world evaluation, experimental setup 2: 15 users across
// two bridged routers (800 Mbps total) with wireless interference
// ("the variance of the bandwidth capacity is even larger with two
// routers working together"). Same throttles/hyper-parameters as Fig. 7.
//
// Paper numbers to compare against (Section VI): ours +214.3% QoE over
// modified PAVQ; Firefly "even reaches negative QoE".
//
// `--threads=N` spreads the (algorithm, repeat) cells over N workers
// (0 = all hardware threads); outcomes are bit-identical to serial.
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "bench_util.h"
#include "src/experiments/ensemble.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::int64_t threads = 1;
  FlagParser flags;
  flags.add("full", &full, "paper-scale sweep (300 s per repeat)");
  flags.add("threads", &threads,
            "ensemble workers (0 = all hardware threads, 1 = serial)");
  bench::TelemetryOptions telemetry;
  telemetry.register_flags(flags);
  if (!flags.parse(argc, argv)) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
    std::fputs(flags.usage(argv[0]).c_str(), stderr);
    return 1;
  }

  bench::print_header("Fig. 8 — system evaluation, 15 users, two routers");

  experiments::EnsembleSpec spec;
  spec.platform = experiments::EnsembleSpec::Platform::kSystem;
  spec.users = 15;
  spec.routers = 2;
  spec.slots = full ? 19800 : 1980;
  spec.repeats = 5;
  spec.algorithms = {"dv", "pavq", "firefly"};
  spec.seed = 11;  // the platform's historical default seed
  spec.alpha = 0.1;
  spec.beta = 0.5;
  spec.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
  try {
    telemetry.apply(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto run = experiments::run_ensemble_with_perf(spec);
  const auto& arms = run.arms;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  std::printf("(%zu repeats x %zu users x %zu slots; alpha=0.1 beta=0.5;\n"
              " TC throttles {40..60} Mbps, 2 routers x 400 Mbps,"
              " interference on)\n\n",
              spec.repeats, spec.users, spec.slots);
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over PAVQ:    %+.1f%%   (paper: +214.3%%)\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("Firefly QoE: %8.3f                 (paper: negative)\n",
              arms[2].mean_qoe());
  std::printf(
      "\npaper shape: baselines are vulnerable to the two-router bandwidth\n"
      "variance (inaccurate throughput estimation); ours stays robust\n");

  bench::print_timing(arms, elapsed_ms, spec.threads);
  bench::print_perf(run.perf);
  telemetry.write_baseline(run.perf, "fig8");
  return 0;
}
