// Micro-benchmarks (google-benchmark) for the property-testing harness
// itself: generator throughput, property iteration cost, and shrink
// latency. These bound how expensive the nightly 50k-iteration sweep is
// and catch generator regressions (e.g. a combinator that starts
// allocating per draw) before they bloat CI time.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "src/proptest/domain.h"
#include "src/proptest/property.h"
#include "src/util/rng.h"

namespace {

using namespace cvr::proptest;

void BM_GenSlotProblemTieHeavy(benchmark::State& state) {
  const SlotProblemGenConfig config = tie_heavy_config();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cvr::Rng rng(seed++);
    benchmark::DoNotOptimize(gen_slot_problem(rng, config));
  }
}
BENCHMARK(BM_GenSlotProblemTieHeavy);

void BM_GenWireMessage(benchmark::State& state) {
  const auto gen = wire_messages();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cvr::Rng rng(seed++);
    benchmark::DoNotOptimize(encode_wire_message(gen(rng)));
  }
}
BENCHMARK(BM_GenWireMessage);

void BM_GenFaultScheduleConfig(benchmark::State& state) {
  const auto gen = fault_schedule_configs();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cvr::Rng rng(seed++);
    benchmark::DoNotOptimize(gen(rng));
  }
}
BENCHMARK(BM_GenFaultScheduleConfig);

/// Cost of one full property iteration (generate + check) for the two
/// headline differential oracles, i.e. the per-iteration price of the
/// nightly sweep.
void BM_PropertyIterScanHeap(benchmark::State& state) {
  const PropertyBase* property =
      Registry::instance().find("core.dv_scan_heap_identical");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(property->run(seed++, 1));
  }
}
BENCHMARK(BM_PropertyIterScanHeap);

void BM_PropertyIterTheorem1(benchmark::State& state) {
  const PropertyBase* property =
      Registry::instance().find("core.dv_theorem1_half_approx");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(property->run(seed++, 1));
  }
}
BENCHMARK(BM_PropertyIterTheorem1);

void BM_PropertyIterProtoRoundtrip(benchmark::State& state) {
  const PropertyBase* property = Registry::instance().find("proto.roundtrip");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(property->run(seed++, 1));
  }
}
BENCHMARK(BM_PropertyIterProtoRoundtrip);

/// Worst-case shrink latency: an instance that always fails, so the
/// shrinker walks its full greedy descent every time.
void BM_ShrinkSlotProblem(benchmark::State& state) {
  SlotProblemGenConfig config;
  config.min_users = 8;
  config.max_users = 8;
  cvr::Rng rng(1234);
  const cvr::core::SlotProblem failing = gen_slot_problem(rng, config);
  const auto fails = [](const cvr::core::SlotProblem&) { return true; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(shrink_to_minimal(failing, fails));
  }
}
BENCHMARK(BM_ShrinkSlotProblem);

}  // namespace

BENCHMARK_MAIN();
