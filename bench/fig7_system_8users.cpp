// Fig. 7 — real-world evaluation, experimental setup 1: 8 users behind
// one 802.11ac router (400 Mbps aggregate), per-user Linux-TC throttles
// drawn from {40, 45, 50, 55, 60} Mbps, alpha = 0.1 beta = 0.5, 5
// repeats averaged. Reported: average QoE (7a), delivery delay (7b),
// frame rate (7c), plus quality and variance.
//
// Paper numbers to compare against (Section VI): ours +81.9% QoE over
// Firefly and +12.1% over modified PAVQ; ours reaches ~60 FPS.
//
// `--threads=N` spreads the (algorithm, repeat) cells over N workers
// (0 = all hardware threads); outcomes are bit-identical to serial.
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "bench_util.h"
#include "src/experiments/ensemble.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::int64_t threads = 1;
  bench::TelemetryOptions telemetry;
  FlagParser flags;
  flags.add("full", &full, "paper-scale sweep (300 s per repeat)");
  flags.add("threads", &threads,
            "ensemble workers (0 = all hardware threads, 1 = serial)");
  telemetry.register_flags(flags);
  if (!flags.parse(argc, argv)) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
    std::fputs(flags.usage(argv[0]).c_str(), stderr);
    return 1;
  }

  bench::print_header("Fig. 7 — system evaluation, 8 users, single router");

  experiments::EnsembleSpec spec;
  spec.platform = experiments::EnsembleSpec::Platform::kSystem;
  spec.users = 8;
  spec.routers = 1;
  spec.slots = full ? 19800 : 1980;  // 300 s vs 30 s
  spec.repeats = 5;                  // as in the paper
  spec.algorithms = {"dv", "pavq", "firefly"};
  spec.seed = 11;  // the platform's historical default seed
  spec.alpha = 0.1;
  spec.beta = 0.5;
  spec.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
  try {
    telemetry.apply(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto run = experiments::run_ensemble_with_perf(spec);
  const auto& arms = run.arms;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  std::printf("(%zu repeats x %zu users x %zu slots; alpha=0.1 beta=0.5;\n"
              " TC throttles {40..60} Mbps, router 400 Mbps)\n\n",
              spec.repeats, spec.users, spec.slots);
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over PAVQ:    %+.1f%%   (paper: +12.1%%)\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("QoE improvement over Firefly: %+.1f%%   (paper: +81.9%%)\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf("our average frame rate: %.1f FPS      (paper: ~60 FPS)\n",
              arms[0].mean_fps());

  bench::print_timing(arms, elapsed_ms, spec.threads);
  bench::print_perf(run.perf);
  telemetry.write_baseline(run.perf, "fig7");
  return 0;
}
