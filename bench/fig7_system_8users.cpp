// Fig. 7 — real-world evaluation, experimental setup 1: 8 users behind
// one 802.11ac router (400 Mbps aggregate), per-user Linux-TC throttles
// drawn from {40, 45, 50, 55, 60} Mbps, alpha = 0.1 beta = 0.5, 5
// repeats averaged. Reported: average QoE (7a), delivery delay (7b),
// frame rate (7c), plus quality and variance.
//
// Paper numbers to compare against (Section VI): ours +81.9% QoE over
// Firefly and +12.1% over modified PAVQ; ours reaches ~60 FPS.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/system/system_sim.h"

int main(int argc, char** argv) {
  using namespace cvr;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  bench::print_header("Fig. 7 — system evaluation, 8 users, single router");

  system::SystemSimConfig config = system::setup_one_router(8);
  config.slots = full ? 19800 : 1980;  // 300 s vs 30 s
  const std::size_t repeats = 5;       // as in the paper
  const system::SystemSim sim(config);

  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;        // system mode: long-run-average inputs
  core::FireflyAllocator firefly;
  const auto arms = sim.compare({&ours, &pavq, &firefly}, repeats);

  std::printf("(%zu repeats x %zu users x %zu slots; alpha=0.1 beta=0.5;\n"
              " TC throttles {40..60} Mbps, router 400 Mbps)\n\n",
              repeats, config.users, config.slots);
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over PAVQ:    %+.1f%%   (paper: +12.1%%)\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("QoE improvement over Firefly: %+.1f%%   (paper: +81.9%%)\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf("our average frame rate: %.1f FPS      (paper: ~60 FPS)\n",
              arms[0].mean_fps());
  return 0;
}
