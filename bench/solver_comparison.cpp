// Solver comparison — every way this library can solve the per-slot
// problem (5)-(7), on one table: objective value (as a fraction of the
// exact optimum where computable) and wall-clock per slot. Shows why the
// paper's Algorithm 1 is the right deployment choice: near-exact value
// at microsecond latency.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/fractional.h"
#include "src/core/lagrangian.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

SlotProblem random_problem(std::uint64_t seed, std::size_t users) {
  Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{0.02, 0.5};
  for (std::size_t n = 0; n < users; ++n) {
    const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.25));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, rng.uniform(20.0, 100.0), rng.uniform(0.6, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 500.0)));
  }
  problem.server_bandwidth = 36.0 * static_cast<double>(users);
  return problem;
}

}  // namespace

int main() {
  bench::print_header("Solver comparison on the per-slot problem (5)-(7)");

  for (std::size_t users : {5, 15, 30}) {
    constexpr std::size_t kInstances = 200;
    DvGreedyAllocator dv;
    LagrangianAllocator lagrangian;
    PavqAllocator pavq = PavqAllocator::perfect_knowledge();
    FireflyAllocator firefly;
    DpAllocator dp(0.05);

    struct Row {
      const char* name;
      double value = 0.0;
      double micros = 0.0;
    };
    Row rows[] = {{"dv-greedy (Alg. 1)"}, {"lagrangian"}, {"pavq"},
                  {"firefly"},            {"dp-exact"}};
    Allocator* solvers[] = {&dv, &lagrangian, &pavq, &firefly, &dp};

    double fractional_total = 0.0, dual_total = 0.0;
    for (std::size_t i = 0; i < kInstances; ++i) {
      const SlotProblem problem = random_problem(users * 7919 + i, users);
      for (int s = 0; s < 5; ++s) {
        const auto start = std::chrono::steady_clock::now();
        const Allocation a = solvers[s]->allocate(problem);
        rows[s].micros += std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        rows[s].value += a.objective;
      }
      fractional_total += fractional_upper_bound(problem);
      dual_total += lagrangian_dual_bound(problem);
    }

    const double exact = rows[4].value;  // DP at 0.05 Mbps grid
    std::printf("\nN = %zu (%zu instances; values normalised to DP exact)\n",
                users, kInstances);
    std::printf("  %-20s %14s %14s\n", "solver", "value/exact", "us/slot");
    for (const Row& row : rows) {
      std::printf("  %-20s %14.4f %14.2f\n", row.name, row.value / exact,
                  row.micros / kInstances);
    }
    std::printf("  %-20s %14.4f %14s\n", "fractional bound",
                fractional_total / exact, "-");
    std::printf("  %-20s %14.4f %14s\n", "lagrangian dual",
                dual_total / exact, "-");
  }

  std::printf(
      "\nshape: Algorithm 1 and the Lagrangian solver both sit within a\n"
      "fraction of a percent of exact at ~100-1000x the DP's speed; the\n"
      "two upper bounds certify optimality gaps without an exact solver.\n"
      "Notes: PAVQ can exceed 1.0 because its dual price enforces the\n"
      "budget only on average (per-slot violations are allowed); Firefly\n"
      "is QoE-oblivious, so its objective value can go negative; values\n"
      "slightly above 1.0 reflect the DP's conservative 0.05 Mbps grid.\n");
  return 0;
}
