// Fig. 2 — trace-based simulation with 5 users: CDFs (over run x user
// samples) of average QoE, average quality, average delivery delay, and
// quality variance, for our DV-greedy allocator vs the per-slot offline
// optimal (brute force), Firefly AQC, and modified PAVQ.
//
// Paper setup: 100 traces/user, 300 s each, FCC+LTE mix, alpha = 0.02,
// beta = 0.5, server budget 36 Mbps x N. We run a reduced-but-faithful
// 20 runs x 30 s so the harness finishes in seconds; pass `--full` for
// the paper-scale sweep.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/report/report.h"
#include "src/sim/simulation.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::string report_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_prefix = argv[++i];
    }
  }

  bench::print_header("Fig. 2 — trace-based simulation, 5 users");

  trace::TraceRepositoryConfig repo_config;
  if (!full) {
    repo_config.fcc.duration_s = 30.0;
    repo_config.lte.duration_s = 30.0;
  }
  const trace::TraceRepository repo(repo_config, 2022);

  sim::TraceSimConfig config;
  config.users = 5;
  config.slots = full ? 19800 : 1980;  // 300 s vs 30 s at 66 FPS
  config.params = core::QoeParams{0.02, 0.5};
  const std::size_t runs = full ? 100 : 20;
  const sim::TraceSimulation simulation(config, repo);

  core::DvGreedyAllocator ours;
  core::BruteForceAllocator optimal;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq = core::PavqAllocator::perfect_knowledge();
  const auto arms = simulation.compare({&ours, &optimal, &firefly, &pavq}, runs);

  std::printf("(%zu runs x %zu users x %zu slots; alpha=0.02 beta=0.5)\n\n",
              runs, config.users, config.slots);
  for (const auto& arm : arms) bench::print_arm_cdfs(arm);

  std::printf("\nsummary (means):\n");
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE vs per-slot optimal: %.1f%% of optimal\n",
              100.0 * ours_qoe / arms[1].mean_qoe());
  std::printf("QoE improvement over Firefly: %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf("QoE improvement over PAVQ:    %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[3].mean_qoe()));
  std::printf(
      "\npaper shape: ours ~ optimal; PAVQ close behind with a different\n"
      "allocation strategy (higher quality, higher delay/variance);\n"
      "Firefly clearly worse on QoE\n");

  if (!report_prefix.empty()) {
    for (const auto& path : report::write_report(arms, report_prefix)) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
