// Fig. 2 — trace-based simulation with 5 users: CDFs (over run x user
// samples) of average QoE, average quality, average delivery delay, and
// quality variance, for our DV-greedy allocator vs the per-slot offline
// optimal (brute force), Firefly AQC, and modified PAVQ.
//
// Paper setup: 100 traces/user, 300 s each, FCC+LTE mix, alpha = 0.02,
// beta = 0.5, server budget 36 Mbps x N. We run a reduced-but-faithful
// 20 runs x 30 s so the harness finishes in seconds; pass `--full` for
// the paper-scale sweep and `--threads=N` to spread the (algorithm,
// run) cells over N workers (0 = all hardware threads; output is
// bit-identical to serial).
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.h"
#include "src/experiments/ensemble.h"
#include "src/report/report.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::int64_t threads = 1;
  std::string report_prefix;
  FlagParser flags;
  flags.add("full", &full, "paper-scale sweep (100 runs x 300 s)");
  flags.add("threads", &threads,
            "ensemble workers (0 = all hardware threads, 1 = serial)");
  flags.add("report", &report_prefix, "write CSV reports under this prefix");
  bench::TelemetryOptions telemetry;
  telemetry.register_flags(flags);
  if (!flags.parse(argc, argv)) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
    std::fputs(flags.usage(argv[0]).c_str(), stderr);
    return 1;
  }

  bench::print_header("Fig. 2 — trace-based simulation, 5 users");

  experiments::EnsembleSpec spec;
  spec.platform = experiments::EnsembleSpec::Platform::kTrace;
  spec.users = 5;
  spec.slots = full ? 19800 : 1980;  // 300 s vs 30 s at 66 FPS
  spec.repeats = full ? 100 : 20;
  spec.algorithms = {"dv", "optimal", "firefly", "pavq"};
  spec.seed = 2022;
  spec.alpha = 0.02;
  spec.beta = 0.5;
  spec.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
  try {
    telemetry.apply(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto run = experiments::run_ensemble_with_perf(spec);
  const auto& arms = run.arms;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  std::printf("(%zu runs x %zu users x %zu slots; alpha=0.02 beta=0.5)\n\n",
              spec.repeats, spec.users, spec.slots);
  for (const auto& arm : arms) bench::print_arm_cdfs(arm);

  std::printf("\nsummary (means):\n");
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE vs per-slot optimal: %.1f%% of optimal\n",
              100.0 * ours_qoe / arms[1].mean_qoe());
  std::printf("QoE improvement over Firefly: %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf("QoE improvement over PAVQ:    %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[3].mean_qoe()));
  std::printf(
      "\npaper shape: ours ~ optimal; PAVQ close behind with a different\n"
      "allocation strategy (higher quality, higher delay/variance);\n"
      "Firefly clearly worse on QoE\n");

  bench::print_timing(arms, elapsed_ms, spec.threads);
  bench::print_perf(run.perf);
  telemetry.write_baseline(run.perf, "fig2");

  if (!report_prefix.empty()) {
    for (const auto& path : report::write_report(arms, report_prefix)) {
      std::printf("wrote %s\n", path.c_str());
    }
    if (!run.perf.arms.empty()) {
      const std::string perf_path = report_prefix + "_perf.csv";
      report::write_perf_csv(perf_path, run.perf);
      std::printf("wrote %s\n", perf_path.c_str());
    }
  }
  return 0;
}
