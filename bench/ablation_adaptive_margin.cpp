// Ablation — fixed vs adaptive FoV margin, on the Section-IV platform
// where the margin/bandwidth trade is explicit: the delivered portion's
// rate scales with the panorama fraction the margin implies, and the
// success indicator 1_n(t) is the analytic FoV-coverage test. Section II
// fixes the margin; the adaptive extension tracks each user's measured
// delta and widens only when prediction degrades (e.g. faster motion).
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"

namespace {

cvr::sim::ArmResult run_margin(const cvr::trace::TraceRepository& repo,
                               double speed, double margin, bool adaptive) {
  cvr::sim::TraceSimConfig config;
  config.users = 5;
  config.slots = 1980;
  config.motion.max_speed_mps = speed;
  config.motion.accel_mps2 = speed;
  config.fov.margin_deg = margin;
  config.adaptive_margin = adaptive;
  const cvr::sim::TraceSimulation simulation(config, repo);
  cvr::core::DvGreedyAllocator alloc;
  return simulation.compare({&alloc}, 8)[0];
}

double mean_acc(const cvr::sim::ArmResult& arm) {
  double acc = 0.0;
  for (const auto& o : arm.outcomes) acc += o.prediction_accuracy;
  return acc / static_cast<double>(arm.outcomes.size());
}

}  // namespace

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — fixed vs adaptive FoV margin (trace-based platform)");

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 30.0;
  repo_config.lte.duration_s = 30.0;
  const trace::TraceRepository repo(repo_config, 31);

  for (double speed : {1.2, 4.0}) {
    std::printf("%smotion speed %.1f m/s:\n", speed == 1.2 ? "" : "\n", speed);
    std::printf("  %-18s %10s %10s %10s\n", "margin policy", "QoE",
                "quality", "delta");
    for (double margin : {5.0, 15.0, 30.0}) {
      const auto arm = run_margin(repo, speed, margin, false);
      std::printf("  fixed %4.0f deg     %10.3f %10.3f %10.3f\n", margin,
                  arm.mean_qoe(), arm.mean_quality(), mean_acc(arm));
    }
    const auto adaptive = run_margin(repo, speed, 15.0, true);
    std::printf("  adaptive           %10.3f %10.3f %10.3f\n",
                adaptive.mean_qoe(), adaptive.mean_quality(),
                mean_acc(adaptive));
  }

  std::printf(
      "\nshape: the margin is a sharp trade — 5 deg loses half the frames\n"
      "(delta ~0.55), 30 deg burns the rate budget on unseen panorama; a\n"
      "well-chosen fixed 15 deg is best. The adaptive loop lands within a\n"
      "few percent of that optimum WITHOUT knowing it a priori and avoids\n"
      "both catastrophic regimes — robustness, not raw peak, is its value\n"
      "(the exploration cost shows at high speed)\n");
  return 0;
}
