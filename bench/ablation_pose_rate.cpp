// Ablation — pose upload period (Section V: clients "upload the trace
// to the server through TCP periodically"). Sparser uploads save uplink
// and server churn but stale the predictor; this sweep shows where the
// prediction-success probability (and with it QoE) starts to fall off.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header("Ablation — pose upload period vs prediction quality");

  std::printf("%14s %10s %10s %12s %10s\n", "period (slots)", "QoE",
              "quality", "pred acc", "fps");
  for (std::size_t period : {1, 2, 4, 8, 16, 33}) {
    system::SystemSimConfig config = system::setup_one_router(6);
    config.slots = 1320;
    config.pose_upload_period = period;
    core::DvGreedyAllocator alloc;
    const auto arm = system::SystemSim(config).compare({&alloc}, 3)[0];
    double acc = 0.0;
    for (const auto& o : arm.outcomes) acc += o.prediction_accuracy;
    acc /= static_cast<double>(arm.outcomes.size());
    std::printf("%14zu %10.3f %10.3f %12.3f %10.1f\n", period,
                arm.mean_qoe(), arm.mean_quality(), acc, arm.mean_fps());
  }

  std::printf(
      "\nmeasured: prediction quality degrades immediately and steeply\n"
      "with upload sparsity (delta 0.98 -> 0.86 at just 2 slots, ~0.2 by\n"
      "a quarter second) — position extrapolation over a stale window\n"
      "outruns the 5 cm grid tolerance long before the orientation\n"
      "margin gives out. This is why the paper uploads poses every slot:\n"
      "a pose message is a few dozen bytes, and nothing else in the\n"
      "pipeline is as cheap per unit of delta\n");
  return 0;
}
