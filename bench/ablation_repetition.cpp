// Ablation — repetitive-tile suppression (Section V: "Avoiding the
// retransmission of the repetitive tiles that have already been
// delivered can significantly save the network bandwidth"). Runs the
// one-router system with the mechanism on (shipped) and off and reports
// the transmitted load and resulting QoE.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"

namespace {

struct Measured {
  double qoe = 0.0;
  double quality = 0.0;
  double demand_mbps = 0.0;
  double saturation = 0.0;
};

Measured run(bool suppression) {
  cvr::system::SystemSimConfig config = cvr::system::setup_one_router(8);
  config.slots = 1320;
  config.server.repetition_suppression = suppression;
  cvr::core::DvGreedyAllocator alloc;
  const cvr::system::SystemSim sim(config);
  Measured m;
  constexpr std::size_t kRepeats = 3;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    cvr::system::Timeline timeline;
    const auto outcomes = sim.run(alloc, r, &timeline);
    for (const auto& o : outcomes) {
      m.qoe += o.avg_qoe;
      m.quality += o.avg_quality;
    }
    double demand = 0.0;
    for (const auto& rec : timeline.records()) demand += rec.demand_mbps;
    m.demand_mbps += demand / static_cast<double>(timeline.size());
    m.saturation += timeline.saturation_fraction();
  }
  const double arms = static_cast<double>(kRepeats);
  m.qoe /= arms * 8.0;
  m.quality /= arms * 8.0;
  m.demand_mbps /= arms;
  m.saturation /= arms;
  return m;
}

}  // namespace

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — repetitive-tile suppression (Section V mechanism)");

  const Measured on = run(true);
  const Measured off = run(false);
  std::printf("%-14s %10s %10s %16s %12s\n", "suppression", "QoE", "quality",
              "avg demand Mbps", "saturation");
  std::printf("%-14s %10.3f %10.3f %16.2f %11.1f%%\n", "on (shipped)",
              on.qoe, on.quality, on.demand_mbps, 100.0 * on.saturation);
  std::printf("%-14s %10.3f %10.3f %16.2f %11.1f%%\n", "off", off.qoe,
              off.quality, off.demand_mbps, 100.0 * off.saturation);
  std::printf("\nbandwidth saved by the mechanism: %.1f%%   QoE gain: %+.1f%%\n",
              100.0 * (1.0 - on.demand_mbps / off.demand_mbps),
              bench::improvement_pct(on.qoe, off.qoe));
  std::printf(
      "\npaper claim: the ACK-tracked suppression 'can significantly save\n"
      "the network bandwidth' — the demand column quantifies it, and the\n"
      "saved airtime shows up as lower saturation and higher QoE\n");
  return 0;
}
