// Micro-benchmarks for the two simulation platforms themselves: wall
// time per simulated slot. Useful when sizing paper-scale sweeps — e.g.
// the `--full` Fig. 2 run is (slots x runs x arms) x the per-slot cost
// shown here.
#include <benchmark/benchmark.h>

#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace {

using namespace cvr;

void BM_TraceSimSlots(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 10.0;
  repo_config.lte.duration_s = 10.0;
  const trace::TraceRepository repo(repo_config, 1);
  sim::TraceSimConfig config;
  config.users = users;
  config.slots = 330;  // 5 s per iteration
  const sim::TraceSimulation sim(config, repo);
  core::DvGreedyAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(alloc, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.slots));
}
BENCHMARK(BM_TraceSimSlots)->Arg(5)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_SystemSimSlots(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  system::SystemSimConfig config = system::setup_one_router(users);
  config.slots = 330;
  const system::SystemSim sim(config);
  core::DvGreedyAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(alloc, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.slots));
}
BENCHMARK(BM_SystemSimSlots)->Arg(4)->Arg(8)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
