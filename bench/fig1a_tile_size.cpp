// Fig. 1a — "The size of two randomly selected VR tiles with different
// quality levels": tile size must be convex and increasing in the
// quality level. We print the per-level tile sizes of two contents from
// the content database (two scene cells, mirroring the paper's two
// randomly selected contents) and verify discrete convexity.
#include <cstdio>

#include "bench_util.h"
#include "src/content/content_db.h"
#include "src/util/units.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Fig. 1a — tile size vs quality level (two contents, CRF encoding)");

  content::ContentDb db;
  const content::GridCell cells[] = {{40, 30}, {150, 120}};

  std::printf("%-10s", "level");
  for (content::QualityLevel q = 1; q <= content::kNumQualityLevels; ++q) {
    std::printf("  q=%d (CRF %2d)", q, content::crf_for_level(q));
  }
  std::printf("\n");

  int index = 1;
  for (const auto& cell : cells) {
    std::printf("content %d", index++);
    double prev = 0.0, prev_inc = 0.0;
    bool convex = true;
    for (content::QualityLevel q = 1; q <= content::kNumQualityLevels; ++q) {
      double megabits = 0.0;
      for (int tile = 0; tile < content::kTilesPerFrame; ++tile) {
        megabits += db.tile_size_megabits({cell, tile, q});
      }
      std::printf("  %8.3f Mb ", megabits);
      if (q > 1) {
        const double inc = megabits - prev;
        if (q > 2 && inc + 1e-9 < prev_inc) convex = false;
        prev_inc = inc;
      }
      prev = megabits;
    }
    std::printf(" | convex increasing: %s\n", convex ? "YES" : "NO");
  }

  std::printf(
      "\npaper shape: size grows convexly with level (each CRF step of -4\n"
      "multiplies the bitrate by a roughly constant factor)\n");
  return 0;
}
