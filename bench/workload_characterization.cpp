// Workload characterisation — the "datasets" table every trace-driven
// paper carries. Summarises the synthetic FCC-broadband and 4G/LTE
// ensembles (the substitutes for the paper's FCC March-2021 and Ghent
// datasets, DESIGN.md Section 3) plus the induced motion ensemble, so a
// reader can check the inputs live in the regime Section IV describes:
// throughput 20-100 Mbps, multi-second dwell, high-but-imperfect
// predictability.
#include <cstdio>

#include "bench_util.h"
#include "src/motion/fov.h"
#include "src/motion/motion_generator.h"
#include "src/motion/predictor.h"
#include "src/trace/fcc_generator.h"
#include "src/trace/lte_generator.h"
#include "src/util/stats.h"

int main() {
  using namespace cvr;
  bench::print_header("Workload characterisation — trace + motion ensembles");

  constexpr std::size_t kTraces = 40;
  struct Pool {
    const char* name;
    trace::TraceStats agg{};
  };
  Pool pools[] = {{"fcc-broadband"}, {"4g-lte (ghent-style)"}};

  std::printf("%-22s %10s %10s %10s %10s %10s %12s\n", "dataset",
              "mean Mbps", "std Mbps", "min", "p50", "max", "mean dwell s");
  for (int p = 0; p < 2; ++p) {
    RunningStat mean_stat, std_stat, dwell_stat;
    double min_mbps = 1e18, max_mbps = 0.0, p50_sum = 0.0;
    for (std::size_t i = 0; i < kTraces; ++i) {
      const trace::NetworkTrace t =
          p == 0 ? trace::FccGenerator().generate(7, i)
                 : trace::LteGenerator().generate(7, i);
      const auto stats = trace::summarize_trace(t);
      mean_stat.add(stats.mean_mbps);
      std_stat.add(stats.std_mbps);
      dwell_stat.add(stats.mean_dwell_s);
      min_mbps = std::min(min_mbps, stats.min_mbps);
      max_mbps = std::max(max_mbps, stats.max_mbps);
      p50_sum += stats.p50_mbps;
    }
    std::printf("%-22s %10.1f %10.1f %10.1f %10.1f %10.1f %12.2f\n",
                pools[p].name, mean_stat.mean(), std_stat.mean(), min_mbps,
                p50_sum / kTraces, max_mbps, dwell_stat.mean());
  }

  // Motion ensemble: speed and one-slot-ahead predictability.
  std::printf("\nmotion ensemble (10 users x 60 s):\n");
  RunningStat speed_stat;
  std::size_t hits = 0, total = 0;
  const motion::MotionGenerator generator;
  const motion::FovSpec fov;
  for (std::size_t user = 0; user < 10; ++user) {
    const motion::MotionTrace trace = generator.generate(3, user, 3960);
    motion::LinearMotionPredictor predictor;
    for (std::size_t t = 0; t + 1 < trace.size(); ++t) {
      speed_stat.add(trace[t + 1].position_distance(trace[t]) / kSlotSeconds);
      predictor.observe(t, trace[t]);
      if (t >= 50) {
        if (motion::covers(fov, predictor.predict(1), trace[t + 1])) ++hits;
        ++total;
      }
    }
  }
  std::printf("  mean speed %.2f m/s (max %.2f); linear-regression 1-slot "
              "coverage delta = %.4f\n",
              speed_stat.mean(), speed_stat.max(),
              static_cast<double>(hits) / static_cast<double>(total));

  std::printf(
      "\npaper regime check: throughput within the clipped 20-100 Mbps band\n"
      "with multi-second dwell (Section IV); delta high but < 1 (Section\n"
      "II's imperfect-prediction premise)\n");
  return 0;
}
