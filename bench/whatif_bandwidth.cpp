// What-if — network generations. Scales the whole trace ensemble
// (trace::scaled) to emulate yesterday's and tomorrow's last-mile
// networks around the paper's 2021-era 20-100 Mbps band, keeping the
// Section-IV provisioning rule B(t) = 36 x N fixed. Shows where the
// allocator's headroom comes from and when the provisioning rule, not
// the per-user links, becomes the binding constraint.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"
#include "src/trace/fcc_generator.h"
#include "src/trace/lte_generator.h"

namespace {

using namespace cvr;

trace::TraceRepository scaled_repository(double factor) {
  trace::FccGeneratorConfig fcc_config;
  fcc_config.duration_s = 30.0;
  trace::LteGeneratorConfig lte_config;
  lte_config.duration_s = 30.0;
  const trace::FccGenerator fcc(fcc_config);
  const trace::LteGenerator lte(lte_config);
  std::vector<trace::NetworkTrace> fcc_pool, lte_pool;
  for (std::uint64_t i = 0; i < 30; ++i) {
    fcc_pool.push_back(trace::scaled(fcc.generate(21, i), factor));
    lte_pool.push_back(trace::scaled(lte.generate(22, i), factor));
  }
  return trace::TraceRepository(std::move(fcc_pool), std::move(lte_pool));
}

}  // namespace

int main() {
  bench::print_header(
      "What-if — scaling the network generation around the paper's band");

  std::printf("%12s %10s %10s %12s %10s %10s\n", "link scale", "QoE",
              "quality", "delay ms", "variance", "delta");
  for (double factor : {0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    const trace::TraceRepository repo = scaled_repository(factor);
    sim::TraceSimConfig config;
    config.users = 5;
    config.slots = 1980;
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator alloc;
    const auto arm = simulation.compare({&alloc}, 8)[0];
    double acc = 0.0;
    for (const auto& o : arm.outcomes) acc += o.prediction_accuracy;
    acc /= static_cast<double>(arm.outcomes.size());
    std::printf("%11.2fx %10.3f %10.3f %12.3f %10.3f %10.3f\n", factor,
                arm.mean_qoe(), arm.mean_quality(), arm.mean_delay_ms(),
                arm.mean_variance(), acc);
  }

  std::printf(
      "\nshape: below ~1x the per-user links throttle quality and inflate\n"
      "delay (the M/M/1 knee); above ~1.5x the per-user links stop\n"
      "mattering and the fixed B = 36 x N server budget becomes the sole\n"
      "binding constraint — quality plateaus even as links keep growing,\n"
      "which is the regime where re-provisioning B per Section IV's rule\n"
      "(medium level x N) would need revisiting\n");
  return 0;
}
