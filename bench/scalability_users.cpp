// Scalability — QoE and allocator cost vs number of users, with the
// Section-IV provisioning rule B(t) = 36 Mbps x N held fixed. The paper
// evaluates N = 5 and N = 30 ("the collaborative VR-based system
// typically has many users"); this sweep fills in the curve and confirms
// per-user QoE stays flat when the server scales its uplink with the
// population (and shows what breaks when it cannot).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"

int main() {
  using namespace cvr;
  bench::print_header("Scalability — users vs per-user QoE and allocator cost");

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 30.0;
  repo_config.lte.duration_s = 30.0;
  const trace::TraceRepository repo(repo_config, 55);

  std::printf("provisioned server (B = 36 x N):\n");
  std::printf("%8s %12s %12s %12s %16s\n", "users", "QoE/user", "quality",
              "delay ms", "sim wall ms/run");
  for (std::size_t users : {5, 10, 20, 40, 60}) {
    sim::TraceSimConfig config;
    config.users = users;
    config.slots = 990;
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator allocator;
    const auto start = std::chrono::steady_clock::now();
    const auto arm = simulation.compare({&allocator}, 5)[0];
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         5.0;
    std::printf("%8zu %12.3f %12.3f %12.3f %16.1f\n", users, arm.mean_qoe(),
                arm.mean_quality(), arm.mean_delay_ms(), elapsed);
  }

  std::printf("\nfixed 360 Mbps server (oversubscription as N grows):\n");
  std::printf("%8s %12s %12s %12s\n", "users", "QoE/user", "quality",
              "delay ms");
  for (std::size_t users : {5, 10, 20, 40}) {
    sim::TraceSimConfig config;
    config.users = users;
    config.slots = 990;
    config.server_mbps_per_user = 360.0 / static_cast<double>(users);
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator allocator;
    const auto arm = simulation.compare({&allocator}, 5)[0];
    std::printf("%8zu %12.3f %12.3f %12.3f\n", users, arm.mean_qoe(),
                arm.mean_quality(), arm.mean_delay_ms());
  }

  std::printf(
      "\nshape: per-user QoE is flat under the paper's 36 x N provisioning;\n"
      "with a fixed uplink the allocator degrades everyone gracefully\n"
      "toward the mandatory minimum instead of starving individuals\n");
  return 0;
}
