// Fig. 1b — "RTT with different sending rates": the paper throttles a
// link to 15 Mbps, sends at increasing rates, collects 100,000 RTT
// samples, and shows the mean RTT is convex in the sending rate. We
// regenerate the curve from the packet-level M/M/1 queue simulator and
// compare against the analytic d(r) = r / (B - r) of eq. (13).
#include <cstdio>

#include "bench_util.h"
#include "src/net/mm1.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Fig. 1b — RTT vs sending rate at a 15 Mbps throttle (M/M/1)");

  constexpr double kCapacityMbps = 15.0;
  constexpr std::size_t kSamples = 100000;  // as in the paper

  std::printf("%10s %14s %14s %14s %16s\n", "rate Mbps", "mean RTT ms",
              "p95 RTT ms", "max RTT ms", "analytic r/(B-r)");
  double prev_mean = 0.0, prev_inc = 0.0;
  bool convex = true;
  int row = 0;
  for (double rate = 2.0; rate <= 14.0; rate += 1.0, ++row) {
    const auto result =
        net::Mm1Simulator::run(rate, kCapacityMbps, kSamples, 1234 + row);
    std::printf("%10.1f %14.3f %14.3f %14.3f %16.3f\n", rate,
                result.mean_sojourn_ms, result.p95_sojourn_ms,
                result.max_sojourn_ms, net::mm1_delay(rate, kCapacityMbps));
    if (row >= 1) {
      const double inc = result.mean_sojourn_ms - prev_mean;
      if (row >= 2 && inc + 0.05 < prev_inc) convex = false;
      prev_inc = inc;
    }
    prev_mean = result.mean_sojourn_ms;
  }
  std::printf("\nmean-RTT curve convex in sending rate: %s\n",
              convex ? "YES" : "NO");
  std::printf(
      "paper shape: RTT grows slowly at low rates and blows up near the\n"
      "throttle — the convexity assumption behind d_n(r) in Section II\n");
  return 0;
}
