// Sensitivity — the QoE weights alpha and beta. Section II: "a larger
// value of alpha is chosen for those applications which are more
// sensitive to the delay, like multi-user VR gaming. Similarly, we
// prefer a larger value of beta when our model is applied to those
// applications requiring consistent content streaming like museum
// touring." This harness sweeps each weight on the trace-based platform
// and shows the realized metric responds monotonically — i.e. the knobs
// actually steer the system the way the paper prescribes.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/sim/simulation.h"

namespace {

cvr::sim::ArmResult run_with(const cvr::trace::TraceRepository& repo,
                             double alpha, double beta) {
  cvr::sim::TraceSimConfig config;
  config.users = 5;
  config.slots = 1980;
  config.params = cvr::core::QoeParams{alpha, beta};
  const cvr::sim::TraceSimulation simulation(config, repo);
  cvr::core::DvGreedyAllocator allocator;
  return simulation.compare({&allocator}, 10)[0];
}

}  // namespace

int main() {
  using namespace cvr;
  bench::print_header("Sensitivity — QoE weights alpha (delay) and beta (variance)");

  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 30.0;
  repo_config.lte.duration_s = 30.0;
  const trace::TraceRepository repo(repo_config, 99);

  std::printf("alpha sweep (beta = 0.5): delay-sensitive apps pick larger alpha\n");
  std::printf("%10s %12s %12s %12s\n", "alpha", "quality", "delay ms", "variance");
  for (double alpha : {0.0, 0.01, 0.02, 0.05, 0.1, 0.3}) {
    const auto arm = run_with(repo, alpha, 0.5);
    std::printf("%10.2f %12.3f %12.3f %12.3f\n", alpha, arm.mean_quality(),
                arm.mean_delay_ms(), arm.mean_variance());
  }

  std::printf("\nbeta sweep (alpha = 0.02): consistency-sensitive apps pick larger beta\n");
  std::printf("%10s %12s %12s %12s\n", "beta", "quality", "delay ms", "variance");
  for (double beta : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    const auto arm = run_with(repo, 0.02, beta);
    std::printf("%10.2f %12.3f %12.3f %12.3f\n", beta, arm.mean_quality(),
                arm.mean_delay_ms(), arm.mean_variance());
  }

  std::printf(
      "\nshape: realized delay falls monotonically-ish in alpha and realized\n"
      "variance falls in beta, each paid for with average quality — the\n"
      "per-application tuning story of Section II\n");
  return 0;
}
