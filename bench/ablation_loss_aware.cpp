// Ablation — packet-loss-aware allocation (Section VIII "Handling
// packet loss": "we believe it can be further improved by accounting
// for such information"). Runs the two-router system with congestion
// loss dialled up and compares the published (loss-oblivious) allocator
// against the loss-aware extension, which discounts each level's value
// by the estimated probability the frame arrives undecodable.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — loss-aware allocation (Section VIII extension)");

  struct Scenario {
    const char* name;
    double congestion_loss;
    bool two_routers;
  };
  const Scenario scenarios[] = {
      {"setup 1, stock loss", 0.08, false},
      {"setup 2, stock loss", 0.08, true},
      {"setup 2, harsh loss", 0.25, true},
  };

  std::printf("%-24s %14s %14s %10s\n", "scenario", "published QoE",
              "loss-aware QoE", "gain");
  for (const auto& s : scenarios) {
    system::SystemSimConfig base =
        s.two_routers ? system::setup_two_routers(8) : system::setup_one_router(8);
    base.slots = 1320;  // 20 s
    base.rtp.congestion_loss = s.congestion_loss;
    system::SystemSimConfig aware = base;
    aware.server.loss_aware = true;

    core::DvGreedyAllocator a, b;
    const auto arm_base = system::SystemSim(base).compare({&a}, 3)[0];
    const auto arm_aware = system::SystemSim(aware).compare({&b}, 3)[0];
    std::printf("%-24s %14.3f %14.3f %+9.1f%%\n", s.name, arm_base.mean_qoe(),
                arm_aware.mean_qoe(),
                bench::improvement_pct(arm_aware.mean_qoe(),
                                       arm_base.mean_qoe()));
  }
  std::printf(
      "\npaper conjecture: accounting for packet loss improves QoE further,\n"
      "most visibly when congestion loss is severe. Measured: the gain\n"
      "grows with loss severity; on benign links the decomposed estimator\n"
      "is slightly pessimistic (it discounts levels by worst-case frame\n"
      "loss the viewer often doesn't experience), which is exactly why the\n"
      "paper left it as future work rather than folding it into (5)-(7).\n");
  return 0;
}
