// Ablation — why Algorithm 1 runs BOTH greedy passes (Section III's two
// counterexample families): density-only and value-only each collapse on
// an adversarial family; the combined rule inherits the better of the
// two everywhere. We sweep random instances plus scaled versions of the
// paper's counterexamples and report per-variant win rates and worst
// ratios against the exact optimum.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/optimal.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

SlotProblem random_problem(std::uint64_t seed, std::size_t users) {
  Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{rng.uniform(0.0, 0.1), rng.uniform(0.0, 1.0)};
  double total_min = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.35));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, rng.uniform(20.0, 100.0), rng.uniform(0.5, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 500.0)));
    total_min += problem.users.back().rate[0];
  }
  problem.server_bandwidth = total_min * rng.uniform(1.0, 2.5);
  return problem;
}

UserSlotContext table_user(const std::vector<double>& rates, double bandwidth,
                           double value_per_level) {
  UserSlotContext user;
  std::copy(rates.begin(), rates.end(), user.rate.begin());
  user.delay.fill(0.0);
  user.user_bandwidth = bandwidth;
  user.delta = value_per_level;
  user.qbar = 0.0;
  user.slot = 1.0;
  return user;
}

/// Section III case where density-greedy fails (scaled by `s`).
SlotProblem density_trap(double s) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  problem.users.push_back(
      table_user({0.1 * s, 0.6 * s, 100, 200, 300, 400}, 1.0 * s, 1.0));
  problem.users.push_back(
      table_user({0.1 * s, 2.6 * s, 100, 200, 300, 400}, 3.0 * s, 4.0));
  problem.server_bandwidth = 2.7 * s;
  return problem;
}

/// Section III case where value-greedy fails (scaled by `s`).
SlotProblem value_trap(double s) {
  SlotProblem problem;
  problem.params = QoeParams{0.0, 0.0};
  for (int i = 0; i < 4; ++i) {
    problem.users.push_back(
        table_user({0.1 * s, 0.6 * s, 100, 200, 300, 400}, 1.0 * s, 2.0));
  }
  problem.users.push_back(
      table_user({0.1 * s, 2.1 * s, 100, 200, 300, 400}, 3.0 * s, 3.0));
  problem.server_bandwidth = 2.5 * s;
  return problem;
}

struct VariantStats {
  double worst_ratio = 1.0;
  double ratio_sum = 0.0;
  std::size_t optimal_hits = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation — density-only vs value-only vs combined (Algorithm 1)");

  DvGreedyAllocator density(DvGreedyAllocator::Mode::kDensityOnly);
  DvGreedyAllocator value(DvGreedyAllocator::Mode::kValueOnly);
  DvGreedyAllocator combined(DvGreedyAllocator::Mode::kCombined);
  BruteForceAllocator brute(8);
  DvGreedyAllocator* variants[] = {&density, &value, &combined};
  VariantStats stats[3];

  constexpr std::size_t kInstances = 3000;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < kInstances; ++i) {
    const SlotProblem problem = random_problem(31337 + i, 5);
    const double base = evaluate(problem, std::vector<QualityLevel>(5, 1));
    const double opt = brute.allocate(problem).objective - base;
    if (opt < 1e-9) continue;
    ++counted;
    for (int v = 0; v < 3; ++v) {
      const double gain = variants[v]->allocate(problem).objective - base;
      const double ratio = gain / opt;
      stats[v].worst_ratio = std::min(stats[v].worst_ratio, ratio);
      stats[v].ratio_sum += ratio;
      if (ratio > 1.0 - 1e-9) ++stats[v].optimal_hits;
    }
  }

  const char* names[] = {"density-only", "value-only", "combined"};
  std::printf("random instances (N=5, %zu counted):\n", counted);
  std::printf("  %-14s %12s %12s %12s\n", "variant", "worst ratio",
              "mean ratio", "optimal %");
  for (int v = 0; v < 3; ++v) {
    std::printf("  %-14s %12.4f %12.4f %11.1f%%\n", names[v],
                stats[v].worst_ratio,
                stats[v].ratio_sum / static_cast<double>(counted),
                100.0 * static_cast<double>(stats[v].optimal_hits) /
                    static_cast<double>(counted));
  }

  std::printf("\nSection III counterexample families (ratio to optimum):\n");
  std::printf("  %-22s %12s %12s %12s\n", "family", "density", "value",
              "combined");
  for (double s : {1.0, 5.0, 25.0}) {
    for (int family = 0; family < 2; ++family) {
      const SlotProblem problem = family == 0 ? density_trap(s) : value_trap(s);
      const double base = evaluate(
          problem, std::vector<QualityLevel>(problem.users.size(), 1));
      const double opt = brute.allocate(problem).objective - base;
      std::printf("  %-15s (x%4.0f)", family == 0 ? "density-trap" : "value-trap", s);
      for (auto* variant : variants) {
        std::printf(" %12.4f",
                    (variant->allocate(problem).objective - base) / opt);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: each single-pass greedy drops to ~%s of optimal on its\n"
      "trap family; the combined Algorithm 1 is optimal on both\n",
      "1/4..1/2");
  return 0;
}
