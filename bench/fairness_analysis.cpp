// Fairness analysis — the collaborative setting (a classroom!) cares
// that nobody is starved, not just that the mean is high. Jain's index
// over per-user average quality compares the schedulers: Firefly's LRU
// rotation is fairness-by-construction, PAVQ optimises per user, and
// the DV-greedy knapsack could in principle starve low-density users —
// this harness checks whether it does.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header("Fairness — Jain's index over per-user average quality");

  // Trace platform (perfect knowledge), heterogeneous per-user links.
  {
    trace::TraceRepositoryConfig repo_config;
    repo_config.fcc.duration_s = 30.0;
    repo_config.lte.duration_s = 30.0;
    const trace::TraceRepository repo(repo_config, 77);
    sim::TraceSimConfig config;
    config.users = 10;
    config.slots = 1980;
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator ours;
    core::FireflyAllocator firefly;
    core::PavqAllocator pavq = core::PavqAllocator::perfect_knowledge();
    const auto arms = simulation.compare({&ours, &firefly, &pavq}, 8);
    std::printf("trace platform (10 users):\n");
    std::printf("  %-16s %10s %14s\n", "algorithm", "mean QoE", "Jain(quality)");
    for (const auto& arm : arms) {
      std::printf("  %-16s %10.3f %14.4f\n", arm.algorithm.c_str(),
                  arm.mean_qoe(), sim::quality_fairness(arm));
    }
  }

  // System platform (estimates + interference): the stress case.
  {
    system::SystemSimConfig config = system::setup_two_routers(15);
    config.slots = 1320;
    const system::SystemSim sim(config);
    core::DvGreedyAllocator ours;
    core::FireflyAllocator firefly;
    core::PavqAllocator pavq;
    const auto arms = sim.compare({&ours, &firefly, &pavq}, 3);
    std::printf("\nsystem platform (15 users, 2 routers, interference):\n");
    std::printf("  %-16s %10s %14s\n", "algorithm", "mean QoE", "Jain(quality)");
    for (const auto& arm : arms) {
      std::printf("  %-16s %10.3f %14.4f\n", arm.algorithm.c_str(),
                  arm.mean_qoe(), sim::quality_fairness(arm));
    }
  }

  std::printf(
      "\nmeasured: every scheduler stays above 0.97 — the mandatory\n"
      "level-1 minimum plus the concave h_n (diminishing returns push\n"
      "rate toward under-served users) structurally prevent starvation.\n"
      "Under interference the baselines look marginally 'fairer' only by\n"
      "being uniformly worse (fairness of shared misery); DV-greedy's\n"
      "~0.017 Jain discount buys +83%% mean QoE over PAVQ there\n");
  return 0;
}
