// Ablation — motion predictor choice. Section II plugs "any existing
// motion prediction model" into the pipeline; Section V picks per-axis
// linear regression. This harness measures the induced FoV-coverage
// success rate delta (the quantity that enters h_n) for persistence,
// linear-regression, and Kalman predictors across prediction horizons,
// on the synthetic motion ensemble.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/motion/fov.h"
#include "src/motion/kalman_predictor.h"
#include "src/motion/motion_generator.h"
#include "src/motion/persistence_predictor.h"
#include "src/motion/predictor.h"
#include "src/sim/simulation.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — motion predictors: FoV-coverage success rate delta");

  const motion::MotionGenerator generator;
  const motion::FovSpec fov;
  constexpr std::size_t kUsers = 10;
  constexpr std::size_t kSlots = 4000;
  const std::size_t horizons[] = {1, 2, 4, 8, 16};

  struct Variant {
    const char* name;
    std::unique_ptr<motion::MotionPredictor> (*make)();
  };
  const Variant variants[] = {
      {"persistence",
       [] {
         return std::unique_ptr<motion::MotionPredictor>(
             new motion::PersistencePredictor());
       }},
      {"linear-regression",
       [] {
         return std::unique_ptr<motion::MotionPredictor>(
             new motion::LinearMotionPredictor());
       }},
      {"kalman-cv",
       [] {
         return std::unique_ptr<motion::MotionPredictor>(
             new motion::KalmanMotionPredictor());
       }},
  };

  std::printf("%-20s", "predictor");
  for (std::size_t h : horizons) std::printf("   h=%-2zu  ", h);
  std::printf("\n");

  for (const Variant& variant : variants) {
    std::printf("%-20s", variant.name);
    for (std::size_t horizon : horizons) {
      std::size_t hits = 0, total = 0;
      for (std::size_t user = 0; user < kUsers; ++user) {
        const motion::MotionTrace trace = generator.generate(42, user, kSlots);
        auto predictor = variant.make();
        for (std::size_t t = 0; t + horizon < trace.size(); ++t) {
          predictor->observe(t, trace[t]);
          if (t < 50) continue;  // warm-up
          if (motion::covers(fov, predictor->predict(horizon),
                             trace[t + horizon])) {
            ++hits;
          }
          ++total;
        }
      }
      std::printf(" %7.4f ", static_cast<double>(hits) /
                                 static_cast<double>(total));
    }
    std::printf("\n");
  }

  // End-to-end: the same predictors inside the full Section-IV loop.
  std::printf("\nend-to-end trace simulation (5 users, DV-greedy):\n");
  std::printf("%-20s %10s %10s %10s\n", "predictor", "QoE", "quality",
              "delta");
  trace::TraceRepositoryConfig repo_config;
  repo_config.fcc.duration_s = 30.0;
  repo_config.lte.duration_s = 30.0;
  const trace::TraceRepository repo(repo_config, 13);
  const motion::PredictorKind kinds[] = {
      motion::PredictorKind::kPersistence,
      motion::PredictorKind::kLinearRegression,
      motion::PredictorKind::kKalman,
  };
  for (motion::PredictorKind kind : kinds) {
    sim::TraceSimConfig config;
    config.users = 5;
    config.slots = 1980;
    config.predictor_kind = kind;
    const sim::TraceSimulation simulation(config, repo);
    core::DvGreedyAllocator alloc;
    const auto arm = simulation.compare({&alloc}, 8)[0];
    double acc = 0.0;
    for (const auto& o : arm.outcomes) acc += o.prediction_accuracy;
    acc /= static_cast<double>(arm.outcomes.size());
    std::printf("%-20s %10.3f %10.3f %10.3f\n", motion::predictor_name(kind),
                arm.mean_qoe(), arm.mean_quality(), acc);
  }

  std::printf(
      "\nshape: all predictors are near-perfect at h=1-2 (the pipeline's\n"
      "operating point, where the FoV margin absorbs the error) and decay\n"
      "with horizon. Persistence is surprisingly competitive at short\n"
      "horizons on slow grid-snapped motion, but linear regression\n"
      "degrades most gracefully as the horizon grows — the headroom that\n"
      "motivates Section V's regression choice for multi-slot pipelines\n");
  return 0;
}
