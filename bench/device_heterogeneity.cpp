// Device heterogeneity — Section VI's fleet is mixed (ten Pixel 6, two
// Pixel 5, three Pixel 4) and Section V makes the decoder count and
// tile-buffer threshold device-dependent. This harness runs the 15-user
// two-router setup with the paper fleet and breaks the outcomes down by
// device class: the older handsets should drop more frames (weaker
// decode) and recover less repetition savings (smaller buffers).
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Device heterogeneity — per-class outcomes on the Section-VI fleet");

  system::SystemSimConfig config = system::setup_two_routers(15);
  config.slots = 1320;
  const auto devices = config.devices;  // paper fleet, user-indexed

  core::DvGreedyAllocator alloc;
  struct ClassAgg {
    double qoe = 0.0, quality = 0.0, fps = 0.0;
    int count = 0;
  };
  std::map<std::string, ClassAgg> by_class;
  constexpr std::size_t kRepeats = 3;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    const auto outcomes = system::SystemSim(config).run(alloc, r);
    for (std::size_t u = 0; u < outcomes.size(); ++u) {
      ClassAgg& agg = by_class[devices[u % devices.size()].name];
      agg.qoe += outcomes[u].avg_qoe;
      agg.quality += outcomes[u].avg_quality;
      agg.fps += outcomes[u].fps;
      ++agg.count;
    }
  }

  std::printf("%-10s %8s %10s %10s %8s\n", "device", "phones", "QoE",
              "quality", "fps");
  for (const auto& [name, agg] : by_class) {
    std::printf("%-10s %8d %10.3f %10.3f %8.2f\n", name.c_str(),
                agg.count / static_cast<int>(kRepeats), agg.qoe / agg.count,
                agg.quality / agg.count, agg.fps / agg.count);
  }

  std::printf(
      "\nmeasured: class differences are small — with <= 4 tiles per frame\n"
      "even a 3-decoder Pixel 4 finishes well inside the slot, which is\n"
      "precisely why the paper could set 5 decoders 'to avoid the\n"
      "performance degradation caused by the decoding' and treat the\n"
      "fleet as homogeneous; per-user network state dominates QoE. The\n"
      "device knobs start to matter under decode stress (see\n"
      "FailureInjection.CrippledDecoder and the weak-device test)\n");
  return 0;
}
