// Motion-to-photon latency — Section I's requirement: "the head
// motion-to-photon latency should be as low as possible, typically below
// 20ms for smooth movement and interaction".
//
// The Section-V pipeline is: pose uploaded at t, predicted tiles
// transmitted during t+1, decoded and displayed at t+2. New-content
// motion-to-photon is therefore ~2 slots plus the in-slot delivery
// delay — structurally ABOVE 20 ms. The paper's resolution is
// prediction: because the delivered portion covers the FoV with margin,
// a head turn is answered by content already on the device, and the
// *felt* latency is the local reprojection (sub-slot) whenever the
// prediction covers. This harness quantifies both: the pipeline M2P
// distribution and the fraction of frames where prediction hides it.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/util/stats.h"
#include "src/util/units.h"

int main() {
  using namespace cvr;
  bench::print_header("Motion-to-photon latency (Section I's 20 ms target)");

  system::SystemSimConfig config = system::setup_one_router(8);
  config.slots = 1320;
  const system::SystemSim sim(config);

  core::DvGreedyAllocator ours;
  core::PavqAllocator pavq;
  core::FireflyAllocator firefly;
  core::Allocator* allocators[] = {&ours, &pavq, &firefly};

  std::printf("%-16s %12s %12s %12s %18s\n", "algorithm", "M2P p50 ms",
              "M2P p95 ms", "M2P max ms", "hidden by pred.");
  for (core::Allocator* allocator : allocators) {
    system::Timeline timeline;
    sim.run(*allocator, 0, &timeline);
    Cdf m2p;
    std::size_t hidden = 0;
    for (const auto& r : timeline.records()) {
      // Pipeline M2P for freshly delivered content: one slot of pose
      // age + one transmission slot (bounded by the realized delivery
      // delay) + display at the next vsync.
      m2p.add(2.0 * kSlotMillis + r.delay_ms);
      // Prediction hides the pipeline when the frame displayed correct
      // content: the user's head motion was answered from margin.
      if (r.displayed_quality > 0.0) ++hidden;
    }
    std::printf("%-16s %12.2f %12.2f %12.2f %16.1f%%\n",
                std::string(allocator->name()).c_str(), m2p.quantile(0.5),
                m2p.quantile(0.95), m2p.quantile(1.0),
                100.0 * static_cast<double>(hidden) /
                    static_cast<double>(timeline.size()));
  }

  std::printf(
      "\nshape: the raw pipeline is ~2 slots (~30 ms) + delivery delay —\n"
      "above Section I's 20 ms for all algorithms. That is exactly why\n"
      "the architecture leans on FoV-margin prediction: for the ~90%%+ of\n"
      "frames the prediction covers, the head turn is answered locally\n"
      "and the pipeline latency is invisible; the better allocator wins\n"
      "by keeping delivery delay (the M2P tail) and misses low\n");
  return 0;
}
