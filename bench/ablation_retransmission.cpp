// Ablation — RTP retransmission (Section V: RTP lets the sender
// "either retransmit the tiles or not"; the shipped system does not
// retransmit, and Section VIII flags unhandled packet loss as a known
// limitation). This harness turns in-slot retransmission rounds on and
// measures the completeness-vs-delay trade on both experiment setups.
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — RTP in-slot retransmission (0 rounds = shipped system)");

  for (int setup = 1; setup <= 2; ++setup) {
    std::printf("%ssetup %d (%s):\n", setup == 1 ? "" : "\n", setup,
                setup == 1 ? "8 users, 1 router" : "15 users, 2 routers");
    std::printf("  %8s %10s %10s %12s %8s\n", "rounds", "QoE", "quality",
                "delay ms", "fps");
    for (int rounds : {0, 1, 2}) {
      system::SystemSimConfig config =
          setup == 1 ? system::setup_one_router(8)
                     : system::setup_two_routers(15);
      config.slots = 1320;
      config.retransmit_rounds = rounds;
      core::DvGreedyAllocator alloc;
      const auto arm = system::SystemSim(config).compare({&alloc}, 3)[0];
      std::printf("  %8d %10.3f %10.3f %12.3f %8.1f\n", rounds,
                  arm.mean_qoe(), arm.mean_quality(), arm.mean_delay_ms(),
                  arm.mean_fps());
    }
  }

  std::printf(
      "\nshape: one retransmission round recovers most loss-broken frames\n"
      "(higher viewed quality) for a small delay increase; returns\n"
      "diminish quickly, and under heavy congestion the added airtime\n"
      "can cost more than it saves — the trade-off behind the paper's\n"
      "choice to ship without retransmission\n");
  return 0;
}
