// Workload-realism bench: the realistic radio + codec pack under fault
// pressure (docs/workloads.md).
//
// Compares the synthetic channel/content model against the realism pack
// (Wi-Fi contention + HEVC frame sizes) and the two bandwidth-estimator
// arms (passive EMA vs active probing) over generated fault schedules
// of increasing intensity. Modes:
//
//   * default           — EMA-vs-probing QoE delta table across the
//                         fault-intensity grid (>= 3 intensities), with
//                         recovery metrics per arm;
//   * --sweep           — adds the synthetic and wifi+hevc/EMA rows at
//                         every intensity (the full workload grid);
//   * --check           — exit non-zero unless (a) the pack with every
//                         knob off is bit-identical to a spec that
//                         never mentions it, (b) the estimator arms
//                         genuinely diverge at every fault intensity,
//                         and (c) every outcome is finite (CI smoke);
//   * --perf-out=PATH   — writes a cvr-bench-perf-v1 baseline with
//                         three *fixed* arms (synthetic, wifi_hevc,
//                         wifi_hevc_probing — independent of the other
//                         flags, so the committed
//                         BENCH_workload_realism.json stays comparable
//                         across invocations). scripts/perf_gate.py
//                         gates wall-clock ratios with
//                         --normalize-by synthetic and the
//                         deterministic wl_ counters bit-exactly with
//                         --service-prefix wl_.
//
// Every reported number except wall-clock throughput derives from the
// seeded simulation: rerunning with the same flags reproduces the
// table bit-for-bit.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dv_greedy.h"
#include "src/faults/fault_schedule.h"
#include "src/sim/metrics.h"
#include "src/system/system_sim.h"
#include "src/telemetry/telemetry.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace {

using namespace cvr;

struct Options {
  std::int64_t users = 6;
  std::int64_t slots = 400;
  std::int64_t seed = 2022;
  std::int64_t threads = 1;
  std::string intensities = "0.5,1.0,2.0";
  std::string report;  // unused CSV hook kept symmetric with fig benches
  std::string perf_out;
  std::string machine;
  bool sweep = false;
  bool check = false;
};

std::vector<double> parse_intensities(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) out.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("workload_realism: empty --intensities");
  }
  return out;
}

/// The workload knobs of one scenario arm.
struct ArmSpec {
  bool wifi = false;
  bool hevc = false;
  system::EstimatorArm estimator = system::EstimatorArm::kEma;
};

system::SystemSimConfig make_config(const Options& options,
                                    const ArmSpec& arm, double intensity) {
  system::SystemSimConfig config =
      system::setup_one_router(static_cast<std::size_t>(options.users));
  config.slots = static_cast<std::size_t>(options.slots);
  config.seed = static_cast<std::uint64_t>(options.seed);
  config.channel.contention.enabled = arm.wifi;
  config.server.hevc.enabled = arm.hevc;
  config.server.estimator_arm = arm.estimator;
  // Flag semantics match the fig benches (0 = all hardware threads,
  // 1 = serial); SystemSimConfig::allocator_threads spells serial as 0.
  config.allocator_threads =
      options.threads == 1
          ? 0
          : cvr::resolve_thread_count(
                options.threads < 0 ? 0
                                    : static_cast<std::size_t>(options.threads));
  if (intensity > 0.0) {
    faults::FaultScheduleConfig faults;
    faults.users = config.users;
    faults.routers = config.routers;
    faults.slots = config.slots;
    faults.seed = config.seed;
    faults.intensity = intensity;
    config.faults = faults::generate_schedule(faults);
  }
  return config;
}

struct ScenarioResult {
  double mean_qoe = 0.0;
  double mean_quality = 0.0;
  double mean_fps = 0.0;
  double mean_dip = 0.0;
  double mean_ttr = 0.0;
  bool finite = true;
  std::vector<sim::UserOutcome> outcomes;
};

ScenarioResult run_scenario(const system::SystemSimConfig& config,
                            telemetry::Collector* collector = nullptr) {
  core::DvGreedyAllocator allocator;
  ScenarioResult result;
  result.outcomes =
      system::SystemSim(config).run(allocator, 0, nullptr, collector);
  const double n = static_cast<double>(result.outcomes.size());
  for (const auto& o : result.outcomes) {
    result.mean_qoe += o.avg_qoe / n;
    result.mean_quality += o.avg_quality / n;
    result.mean_fps += o.fps / n;
    result.mean_dip += o.qoe_dip / n;
    result.mean_ttr += o.time_to_recover_slots / n;
    result.finite = result.finite && std::isfinite(o.avg_qoe) &&
                    std::isfinite(o.avg_delay_ms) && std::isfinite(o.fps);
  }
  return result;
}

void print_delta_table(const Options& options,
                       const std::vector<double>& intensities) {
  std::printf(
      "workload_realism: users=%lld slots=%lld seed=%lld "
      "(wifi+hevc on, EMA vs probing)\n",
      static_cast<long long>(options.users),
      static_cast<long long>(options.slots),
      static_cast<long long>(options.seed));
  std::printf("%10s %10s %10s %10s %9s %9s %9s %9s\n", "intensity",
              "ema_qoe", "probe_qoe", "delta", "ema_dip", "probe_dip",
              "ema_ttr", "probe_ttr");
  const ArmSpec ema{true, true, system::EstimatorArm::kEma};
  const ArmSpec probing{true, true, system::EstimatorArm::kProbing};
  for (const double intensity : intensities) {
    const ScenarioResult e =
        run_scenario(make_config(options, ema, intensity));
    const ScenarioResult p =
        run_scenario(make_config(options, probing, intensity));
    std::printf("%10.2f %10.4f %10.4f %+10.4f %9.4f %9.4f %9.2f %9.2f\n",
                intensity, e.mean_qoe, p.mean_qoe, p.mean_qoe - e.mean_qoe,
                e.mean_dip, p.mean_dip, e.mean_ttr, p.mean_ttr);
  }
}

void print_sweep(const Options& options,
                 const std::vector<double>& intensities) {
  struct Row {
    const char* name;
    ArmSpec spec;
  };
  const std::vector<Row> rows = {
      {"synthetic", {false, false, system::EstimatorArm::kEma}},
      {"wifi_hevc", {true, true, system::EstimatorArm::kEma}},
      {"wifi_hevc_probing", {true, true, system::EstimatorArm::kProbing}},
  };
  std::printf("%-18s %10s %10s %10s %9s %9s %9s\n", "arm", "intensity",
              "mean_qoe", "quality", "fps", "dip", "ttr");
  for (const Row& row : rows) {
    for (const double intensity : intensities) {
      const ScenarioResult r =
          run_scenario(make_config(options, row.spec, intensity));
      std::printf("%-18s %10.2f %10.4f %10.4f %9.2f %9.4f %9.2f\n", row.name,
                  intensity, r.mean_qoe, r.mean_quality, r.mean_fps,
                  r.mean_dip, r.mean_ttr);
    }
  }
}

bool run_check(const Options& options,
               const std::vector<double>& intensities) {
  // (a) defaults-off bit-identity: tweak every pack field while leaving
  // the switches off; the run must be bitwise unchanged.
  const ArmSpec off{false, false, system::EstimatorArm::kEma};
  system::SystemSimConfig plain = make_config(options, off, 0.0);
  system::SystemSimConfig tweaked = plain;
  tweaked.channel.contention.enabled = false;
  tweaked.channel.contention.contention_overhead = 0.3;
  tweaked.channel.contention.collision_prob_per_station = 0.4;
  tweaked.server.hevc.enabled = false;
  tweaked.server.hevc.gop_length = 8;
  tweaked.server.hevc.size_sigma = 0.9;
  tweaked.server.probing.probe_period_slots = 5;
  tweaked.server.probing.alpha_probe = 0.9;
  const ScenarioResult a = run_scenario(plain);
  const ScenarioResult b = run_scenario(tweaked);
  for (std::size_t u = 0; u < a.outcomes.size(); ++u) {
    if (a.outcomes[u].avg_qoe != b.outcomes[u].avg_qoe ||
        a.outcomes[u].fps != b.outcomes[u].fps) {
      std::fprintf(stderr,
                   "check: FAILED — disabled pack changed user %zu "
                   "(qoe %.17g vs %.17g)\n",
                   u, a.outcomes[u].avg_qoe, b.outcomes[u].avg_qoe);
      return false;
    }
  }
  // (b) + (c): the estimator arms diverge at every intensity and every
  // outcome is finite.
  const ArmSpec ema{true, true, system::EstimatorArm::kEma};
  const ArmSpec probing{true, true, system::EstimatorArm::kProbing};
  for (const double intensity : intensities) {
    const ScenarioResult e =
        run_scenario(make_config(options, ema, intensity));
    const ScenarioResult p =
        run_scenario(make_config(options, probing, intensity));
    if (!e.finite || !p.finite) {
      std::fprintf(stderr, "check: FAILED — non-finite outcome at "
                           "intensity %.2f\n", intensity);
      return false;
    }
    if (e.mean_qoe == p.mean_qoe) {
      std::fprintf(stderr,
                   "check: FAILED — estimator arms identical at intensity "
                   "%.2f (qoe %.17g)\n",
                   intensity, e.mean_qoe);
      return false;
    }
  }
  std::printf("check: OK (defaults inert, %zu intensities distinguish the "
              "estimator arms)\n", intensities.size());
  return true;
}

/// One perf arm: a full run with its own registry; wall clock around
/// run() gives the throughput metric, the wl_ counters the
/// deterministic workload outcomes. QoE can be negative, so the milli
/// encoding carries a +10 offset (wl_*_offset_milli = (x + 10) * 1000).
telemetry::ArmPerf measure_arm(const std::string& name, const Options& options,
                               const ArmSpec& spec, double intensity) {
  constexpr int kTimingRepeats = 3;
  const system::SystemSimConfig config =
      make_config(options, spec, intensity);
  double wall_ms = 0.0;
  telemetry::MetricsSnapshot snapshot;
  for (int repeat = 0; repeat < kTimingRepeats; ++repeat) {
    telemetry::MetricsRegistry registry;
    telemetry::Collector collector(telemetry::Mode::kCounters, &registry);
    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult result = run_scenario(config, &collector);
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (repeat == 0 || elapsed < wall_ms) wall_ms = elapsed;
    registry.add(registry.counter("wl_mean_qoe_offset_milli"),
                 static_cast<std::uint64_t>(
                     std::llround((result.mean_qoe + 10.0) * 1000.0)));
    registry.add(registry.counter("wl_mean_quality_milli"),
                 static_cast<std::uint64_t>(
                     std::llround(result.mean_quality * 1000.0)));
    registry.add(registry.counter("wl_mean_fps_milli"),
                 static_cast<std::uint64_t>(
                     std::llround(result.mean_fps * 1000.0)));
    registry.add(registry.counter("wl_mean_dip_milli"),
                 static_cast<std::uint64_t>(
                     std::llround(result.mean_dip * 1000.0)));
    snapshot = registry.snapshot();
  }
  return telemetry::summarize_arm(name, snapshot, wall_ms);
}

void write_perf_baseline(const Options& options) {
  telemetry::PerfReport perf;
  perf.mode = telemetry::Mode::kCounters;
  Options arm_options;  // fixed arms: flags must not skew the baseline
  perf.arms.push_back(measure_arm(
      "synthetic", arm_options,
      {false, false, system::EstimatorArm::kEma}, 0.0));
  perf.arms.push_back(measure_arm(
      "wifi_hevc", arm_options,
      {true, true, system::EstimatorArm::kEma}, 0.0));
  perf.arms.push_back(measure_arm(
      "wifi_hevc_probing", arm_options,
      {true, true, system::EstimatorArm::kProbing}, 0.0));
  telemetry::write_perf_json(options.perf_out, perf, "workload_realism",
                             options.machine);
  std::printf("perf baseline written: %s\n", options.perf_out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  FlagParser parser;
  bool help = false;
  parser.add("users", &options.users, "connected users (one router)");
  parser.add("slots", &options.slots, "run horizon (slots)");
  parser.add("seed", &options.seed, "master seed");
  parser.add("threads", &options.threads,
             "within-slot allocator workers (0 = all hardware threads, "
             "1 = serial; results are bit-identical either way)");
  parser.add("intensities", &options.intensities,
             "comma-separated fault intensities for the delta table");
  parser.add("sweep", &options.sweep,
             "full arm x intensity sweep (synthetic row included)");
  parser.add("check", &options.check,
             "exit non-zero unless defaults are inert and the estimator "
             "arms diverge at every intensity");
  parser.add("perf-out", &options.perf_out,
             "write cvr-bench-perf-v1 baseline JSON to this path");
  parser.add("machine", &options.machine,
             "capture-environment note for the perf baseline");
  parser.add("help", &help, "print usage");
  if (!parser.parse(argc, argv) || help) {
    std::fputs(parser.usage("workload_realism").c_str(),
               help ? stdout : stderr);
    for (const std::string& error : parser.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return help ? 0 : 1;
  }

  try {
    const std::vector<double> intensities =
        parse_intensities(options.intensities);
    if (options.check) {
      if (!run_check(options, intensities)) return 1;
    } else if (options.sweep) {
      print_sweep(options, intensities);
    } else {
      print_delta_table(options, intensities);
    }
    if (!options.perf_out.empty()) write_perf_baseline(options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
