// Open-loop load-service bench: users-per-server at the p99 slot-latency
// SLO (docs/load_service.md).
//
// Runs system::LoadServer under shaped traffic and prints the admission
// funnel, population, latency, and SLO verdict. Modes:
//
//   * default           — one run at the flag settings;
//   * --sweep           — offered-load sweep (0.4 .. 1.6) at the chosen
//                         shape: the capacity knee in one table;
//   * --check-slo       — exit non-zero unless the run met its SLO with
//                         zero deadline misses and drained cleanly (the
//                         CI smoke gate);
//   * --perf-out=PATH   — additionally writes a cvr-bench-perf-v1
//                         baseline with two *fixed* arms (uniform and
//                         exponential at load 0.8 — independent of the
//                         other flags, so the committed
//                         BENCH_load_service.json stays comparable
//                         across invocations). scripts/perf_gate.py
//                         gates the wall-clock ratios with
//                         --normalize-by uniform and the deterministic
//                         svc_* counters bit-exactly with
//                         --service-prefix svc_.
//
// Every reported number except wall-clock throughput derives from the
// seeded simulation: rerunning with the same flags reproduces the
// report bit-for-bit (tests/load_server_test.cpp holds the same
// contract at unit level).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/traffic_gen.h"
#include "src/system/load_server.h"
#include "src/telemetry/telemetry.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace {

using namespace cvr;

struct Options {
  std::string shape = "exponential";
  double load = 0.8;
  std::int64_t slots = 2000;
  std::int64_t users = 32;
  std::int64_t seed = 1;
  double qos_ms = 20.0;
  double slo_ms = 20.0;
  double connect_speed = 200.0;
  double mean_session_slots = 660.0;
  std::string allocator = "dv";
  std::int64_t threads = 1;
  std::string telemetry = "counters";
  std::string perf_out;
  std::string machine;
  bool sweep = false;
  bool check_slo = false;
};

system::LoadServiceConfig make_config(const Options& options) {
  system::LoadServiceConfig config;
  config.traffic.shape = sim::parse_shape(options.shape);
  config.traffic.load = options.load;
  config.traffic.qos_ms = options.qos_ms;
  config.traffic.connect_speed = options.connect_speed;
  config.traffic.mean_session_slots = options.mean_session_slots;
  config.traffic.seed = static_cast<std::uint64_t>(options.seed);
  config.capacity_users = static_cast<std::size_t>(options.users);
  config.allocator = options.allocator;
  // Flag semantics match the fig benches (0 = all hardware threads,
  // 1 = serial); LoadServiceConfig::allocator_threads spells serial as
  // 0, so translate here.
  config.allocator_threads =
      options.threads == 1
          ? 0
          : cvr::resolve_thread_count(
                options.threads < 0 ? 0
                                    : static_cast<std::size_t>(options.threads));
  config.slo_p99_ms = options.slo_ms;
  return config;
}

void print_report(const system::LoadServiceConfig& config,
                  const system::LoadServiceReport& report) {
  std::printf(
      "load_service: shape=%s load=%.2f users=%zu horizon=%zu allocator=%s "
      "seed=%llu\n",
      sim::shape_name(config.traffic.shape), config.traffic.load,
      config.capacity_users, report.horizon_slots, config.allocator.c_str(),
      static_cast<unsigned long long>(config.traffic.seed));
  std::printf(
      "  admission: offered %llu  admitted %llu  degraded %llu  "
      "rejected %llu  (reject rate %.1f%%)\n",
      static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.admitted),
      static_cast<unsigned long long>(report.degraded),
      static_cast<unsigned long long>(report.rejected),
      100.0 * report.reject_rate);
  std::printf(
      "  population: active mean %.2f peak %zu   accept queue mean %.2f "
      "peak %zu\n",
      report.mean_active_users, report.peak_active_users,
      report.mean_queue_depth, report.peak_queue_depth);
  std::printf(
      "  latency: mean %.3f ms  p99 %.3f ms  samples %llu  deadline misses "
      "%llu\n",
      report.mean_delay_ms, report.p99_delay_ms,
      static_cast<unsigned long long>(report.delay_samples),
      static_cast<unsigned long long>(report.deadline_misses));
  std::printf(
      "  slo: p99 <= %.2f ms -> %s   sustained users/server: %.2f\n",
      config.slo_p99_ms, report.slo_met ? "MET" : "VIOLATED",
      report.sustained_users);
  std::printf(
      "  sessions: completed %llu  mean QoE %.3f  drained %s "
      "(drain %zu slots)\n",
      static_cast<unsigned long long>(report.completed_sessions),
      report.mean_session_qoe, report.drained ? "yes" : "no",
      report.drain_slots);
}

system::LoadServiceReport run_once(const system::LoadServiceConfig& config,
                                   std::size_t slots,
                                   telemetry::Mode mode) {
  system::LoadServer server(config);
  if (mode == telemetry::Mode::kOff) return server.run(slots);
  telemetry::MetricsRegistry registry;
  telemetry::Collector collector(mode, &registry);
  return server.run(slots, &collector);
}

void run_sweep(const Options& options) {
  const std::vector<double> loads = {0.4, 0.6, 0.8, 1.0, 1.2, 1.6};
  std::printf("%-6s %10s %10s %10s %10s %12s %9s\n", "load", "offered",
              "rejected", "p99_ms", "misses", "sustained", "slo");
  for (const double load : loads) {
    Options point = options;
    point.load = load;
    const system::LoadServiceConfig config = make_config(point);
    const system::LoadServiceReport report =
        run_once(config, static_cast<std::size_t>(options.slots),
                 telemetry::Mode::kOff);
    std::printf("%-6.2f %10llu %10llu %10.3f %10llu %12.2f %9s\n", load,
                static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(report.rejected),
                report.p99_delay_ms,
                static_cast<unsigned long long>(report.deadline_misses),
                report.sustained_users, report.slo_met ? "MET" : "VIOLATED");
  }
}

/// One perf arm: a full service run with its own registry; wall clock
/// around run() gives the throughput metric, the svc_* counters the
/// deterministic service metrics.
telemetry::ArmPerf measure_arm(const std::string& name,
                               const system::LoadServiceConfig& config,
                               std::size_t slots) {
  // Best-of-3 wall clock: the gate compares cross-arm throughput
  // ratios, and a single scheduler preemption on a short run skews a
  // one-shot ratio past any sane tolerance. The reports (and so every
  // svc_ counter) are bit-identical across repeats, so only the last
  // repeat's registry is kept.
  constexpr int kTimingRepeats = 3;
  double wall_ms = 0.0;
  telemetry::MetricsSnapshot snapshot;
  for (int repeat = 0; repeat < kTimingRepeats; ++repeat) {
    telemetry::MetricsRegistry registry;
    telemetry::Collector collector(telemetry::Mode::kCounters, &registry);
    system::LoadServer server(config);
    const auto start = std::chrono::steady_clock::now();
    const system::LoadServiceReport report = server.run(slots, &collector);
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (repeat == 0 || elapsed < wall_ms) wall_ms = elapsed;
    // Deterministic service summary metrics, counter-encoded so the
    // gate can require bit-exact agreement: milli-users and
    // microseconds keep three decimal digits through the integer
    // encoding.
    registry.add(
        registry.counter("svc_sustained_users_milli"),
        static_cast<std::uint64_t>(report.sustained_users * 1000.0));
    registry.add(registry.counter("svc_p99_delay_micro"),
                 static_cast<std::uint64_t>(report.p99_delay_ms * 1000.0));
    snapshot = registry.snapshot();
  }
  return telemetry::summarize_arm(name, snapshot, wall_ms);
}

void write_perf_baseline(const Options& options) {
  telemetry::PerfReport perf;
  perf.mode = telemetry::Mode::kCounters;
  // Long enough (~100 ms of wall clock per arm) that the cross-arm
  // throughput ratio the CI gate checks is stable against scheduler
  // noise; combined with best-of-3 timing in measure_arm.
  constexpr std::size_t kBaselineSlots = 12000;
  for (const char* shape : {"uniform", "exponential"}) {
    Options arm_options;  // fixed arms: flags must not skew the baseline
    arm_options.shape = shape;
    arm_options.allocator = options.allocator;
    const system::LoadServiceConfig config = make_config(arm_options);
    perf.arms.push_back(measure_arm(shape, config, kBaselineSlots));
  }
  telemetry::write_perf_json(options.perf_out, perf, "load_service",
                             options.machine);
  std::printf("perf baseline written: %s\n", options.perf_out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  FlagParser parser;
  bool help = false;
  parser.add("shape", &options.shape,
             "traffic shape: uniform|normal|peaks|gamma|exponential");
  parser.add("load", &options.load,
             "offered concurrency as a fraction of user-slot capacity");
  parser.add("slots", &options.slots, "arrival horizon (slots)");
  parser.add("users", &options.users, "user-slot capacity of the server");
  parser.add("seed", &options.seed, "master seed");
  parser.add("qos", &options.qos_ms, "per-session QoS delay budget (ms)");
  parser.add("slo", &options.slo_ms, "service p99 delay SLO (ms)");
  parser.add("connect-speed", &options.connect_speed,
             "admissions completed per second (ramp pacing)");
  parser.add("session-slots", &options.mean_session_slots,
             "mean session length (slots)");
  parser.add("allocator", &options.allocator, "allocation policy name");
  parser.add("threads", &options.threads,
             "within-slot allocator workers (0 = all hardware threads, "
             "1 = serial; results are bit-identical either way)");
  parser.add("telemetry", &options.telemetry,
             "telemetry mode: off|counters|trace");
  parser.add("perf-out", &options.perf_out,
             "write cvr-bench-perf-v1 baseline JSON to this path");
  parser.add("machine", &options.machine,
             "capture-environment note for the perf baseline");
  parser.add("sweep", &options.sweep, "offered-load sweep table");
  parser.add("check-slo", &options.check_slo,
             "exit non-zero unless SLO met, zero misses, drained");
  parser.add("help", &help, "print usage");
  if (!parser.parse(argc, argv) || help) {
    std::fputs(parser.usage("load_service").c_str(),
               help ? stdout : stderr);
    for (const std::string& error : parser.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return help ? 0 : 1;
  }

  try {
    if (options.sweep) {
      run_sweep(options);
    } else {
      const system::LoadServiceConfig config = make_config(options);
      const system::LoadServiceReport report =
          run_once(config, static_cast<std::size_t>(options.slots),
                   telemetry::parse_mode(options.telemetry));
      print_report(config, report);
      if (options.check_slo &&
          !(report.slo_met && report.deadline_misses == 0 &&
            report.drained)) {
        std::fprintf(stderr,
                     "check-slo: FAILED (slo_met=%d misses=%llu drained=%d)\n",
                     report.slo_met ? 1 : 0,
                     static_cast<unsigned long long>(report.deadline_misses),
                     report.drained ? 1 : 0);
        return 1;
      }
    }
    if (!options.perf_out.empty()) write_perf_baseline(options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
