// Fleet failover bench: kill/recover scenario sweep (docs/fleet.md).
//
// Runs fleet::FleetSim over a K-server fleet with a seeded mid-run
// server crash and reports the failover metrics the fleet-QoE means
// hide: affected users, re-admission fraction, time-to-reabsorb,
// migration counts, per-server budget utilization. Modes:
//
//   * default           — one scenario at the flag settings;
//   * --sweep           — assignment-mode x outage-length sweep (the
//                         kill/recover table);
//   * --check-recovery  — exit non-zero unless >=99% of affected users
//                         were re-admitted with none lost and every
//                         re-admission landed within 50 slots (the CI
//                         smoke gate for the K=4 crash-1 scenario);
//   * --report=PREFIX   — standard CSV set via report::write_report
//                         (the resilience CSV carries the fleet
//                         home_server/migrations columns);
//   * --perf-out=PATH   — additionally writes a cvr-bench-perf-v1
//                         baseline with four *fixed* arms: sharded and
//                         mirrored at the K=4 crash-1 scenario, plus
//                         sharded_k8_serial / sharded_k8 (the same
//                         crash at K=8, 24 users, threads=1 vs
//                         threads=0) — all independent of the other
//                         flags, so the committed
//                         BENCH_fleet_failover.json stays comparable
//                         across invocations. Each arm carries a
//                         synthetic fleet_slots_per_sec phase next to
//                         the per-slot "slot" latency histogram, and
//                         the two K=8 arms must agree on every counter
//                         bit-exactly (the serial/parallel equivalence
//                         contract) or the baseline is not written.
//                         scripts/perf_gate.py gates wall-clock ratios
//                         with --normalize-by sharded and the
//                         deterministic fleet_ counters bit-exactly
//                         with --service-prefix fleet_.
//
// Every reported number except wall-clock throughput derives from the
// seeded simulation: rerunning with the same flags reproduces the
// report bit-for-bit (tests/fleet_test.cpp holds the same contract at
// unit level).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/dv_greedy.h"
#include "src/faults/fault_schedule.h"
#include "src/fleet/fleet_sim.h"
#include "src/report/report.h"
#include "src/sim/metrics.h"
#include "src/system/system_sim.h"
#include "src/telemetry/telemetry.h"
#include "src/util/flags.h"

namespace {

using namespace cvr;

struct Options {
  std::int64_t servers = 4;
  std::int64_t users = 12;
  std::int64_t slots = 500;
  std::int64_t seed = 2022;
  std::int64_t threads = 1;
  std::int64_t crash_server = 1;
  std::int64_t crash_slot = 150;
  std::int64_t crash_duration = 300;
  std::string assignment = "sharded";
  std::string budget = "equal";
  std::string report;
  std::string perf_out;
  std::string machine;
  bool sweep = false;
  bool check_recovery = false;
};

fleet::AssignmentMode parse_assignment(const std::string& name) {
  if (name == "sharded") return fleet::AssignmentMode::kShardedHash;
  if (name == "mirrored") return fleet::AssignmentMode::kMirrored;
  throw std::invalid_argument("fleet_failover: unknown assignment '" + name +
                              "' (sharded|mirrored)");
}

fleet::BudgetPolicy parse_budget(const std::string& name) {
  if (name == "equal") return fleet::BudgetPolicy::kEqual;
  if (name == "proportional") return fleet::BudgetPolicy::kProportionalUsers;
  throw std::invalid_argument("fleet_failover: unknown budget '" + name +
                              "' (equal|proportional)");
}

fleet::FleetConfig make_config(const Options& options) {
  fleet::FleetConfig config;
  config.base =
      system::setup_two_routers(static_cast<std::size_t>(options.users));
  config.base.slots = static_cast<std::size_t>(options.slots);
  config.base.seed = static_cast<std::uint64_t>(options.seed);
  if (options.crash_duration > 0) {
    faults::FaultEvent crash;
    crash.type = faults::FaultType::kServerCrash;
    crash.target = static_cast<std::size_t>(options.crash_server);
    crash.start_slot = static_cast<std::size_t>(options.crash_slot);
    crash.duration_slots = static_cast<std::size_t>(options.crash_duration);
    config.base.faults.add(crash);
  }
  config.servers = static_cast<std::size_t>(options.servers);
  config.assignment = parse_assignment(options.assignment);
  config.budget = parse_budget(options.budget);
  config.threads =
      options.threads < 0 ? 0 : static_cast<std::size_t>(options.threads);
  return config;
}

double mean_qoe(const std::vector<sim::UserOutcome>& outcomes) {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes) sum += o.avg_qoe;
  return sum / static_cast<double>(outcomes.size());
}

double mean_qoe_dip(const std::vector<sim::UserOutcome>& outcomes) {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes) sum += o.qoe_dip;
  return sum / static_cast<double>(outcomes.size());
}

void print_report(const fleet::FleetConfig& config,
                  const fleet::FleetRunResult& result) {
  const fleet::FleetStats& s = result.stats;
  std::printf(
      "fleet_failover: servers=%zu users=%zu slots=%zu assignment=%s "
      "budget=%s seed=%llu\n",
      config.servers, config.base.users, config.base.slots,
      config.assignment == fleet::AssignmentMode::kMirrored ? "mirrored"
                                                            : "sharded",
      config.budget == fleet::BudgetPolicy::kProportionalUsers
          ? "proportional"
          : "equal",
      static_cast<unsigned long long>(config.base.seed));
  std::printf(
      "  faults: crashes %zu  recoveries %zu  affected users %zu\n",
      s.crashes, s.recoveries, s.affected_users);
  std::printf(
      "  failover: reabsorbed %zu (%.1f%%)  lost %zu  "
      "time-to-reabsorb mean %.2f max %zu slots\n",
      s.reabsorbed_users, 100.0 * s.reabsorbed_fraction, s.lost_users,
      s.mean_reabsorb_slots, s.max_reabsorb_slots);
  std::printf(
      "  migration: migrations %zu  handoff frames %zu  retry attempts %zu  "
      "rejects %zu\n",
      s.migrations, s.handoff_frames, s.retry_attempts, s.rejects);
  std::printf("  qoe: fleet mean %.4f  mean dip %.4f\n",
              mean_qoe(result.outcomes), mean_qoe_dip(result.outcomes));
  std::printf("  %-8s %16s %18s %14s\n", "server", "user-slots",
              "mean budget Mbps", "utilization");
  for (std::size_t k = 0; k < s.per_server.size(); ++k) {
    const fleet::FleetServerStats& p = s.per_server[k];
    std::printf("  %-8zu %16zu %18.2f %14.3f\n", k, p.served_user_slots,
                p.mean_budget_mbps, p.mean_utilization);
  }
}

fleet::FleetRunResult run_once(const fleet::FleetConfig& config,
                               telemetry::Collector* collector = nullptr) {
  core::DvGreedyAllocator allocator;
  return fleet::FleetSim(config).run(allocator, 0, nullptr, collector);
}

void run_sweep(const Options& options) {
  // Kill/recover grid: both assignment modes across outage lengths,
  // from a transient blip to an outage outlasting the run.
  const std::vector<std::int64_t> durations = {50, 150, 300};
  std::printf("%-10s %9s %9s %12s %9s %9s %7s %10s %9s\n", "mode",
              "outage", "affected", "reabsorbed", "mean_ttr", "max_ttr",
              "lost", "migrations", "mean_qoe");
  for (const char* mode : {"sharded", "mirrored"}) {
    for (const std::int64_t duration : durations) {
      Options point = options;
      point.assignment = mode;
      point.crash_duration = duration;
      const fleet::FleetConfig config = make_config(point);
      const fleet::FleetRunResult result = run_once(config);
      const fleet::FleetStats& s = result.stats;
      std::printf("%-10s %9lld %9zu %11.1f%% %9.2f %9zu %7zu %10zu %9.4f\n",
                  mode, static_cast<long long>(duration), s.affected_users,
                  100.0 * s.reabsorbed_fraction, s.mean_reabsorb_slots,
                  s.max_reabsorb_slots, s.lost_users, s.migrations,
                  mean_qoe(result.outcomes));
    }
  }
}

/// One perf arm: a full fleet run with its own registry; wall clock
/// around run() gives the throughput metric, the fleet_ counters (plus
/// the counter-encoded summary metrics) the deterministic failover
/// metrics.
telemetry::ArmPerf measure_arm(const std::string& name,
                               const fleet::FleetConfig& config) {
  // Best-of-3 wall clock: the gate compares cross-arm throughput
  // ratios, and a single scheduler preemption on a short run skews a
  // one-shot ratio past any sane tolerance. The stats (and so every
  // fleet_ counter) are bit-identical across repeats, so only the last
  // repeat's registry is kept.
  constexpr int kTimingRepeats = 3;
  double wall_ms = 0.0;
  telemetry::MetricsSnapshot snapshot;
  for (int repeat = 0; repeat < kTimingRepeats; ++repeat) {
    telemetry::MetricsRegistry registry;
    telemetry::Collector collector(telemetry::Mode::kCounters, &registry);
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetRunResult result = run_once(config, &collector);
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (repeat == 0 || elapsed < wall_ms) wall_ms = elapsed;
    // Deterministic failover summary metrics, counter-encoded so the
    // gate can require bit-exact agreement: milli units keep three
    // decimal digits through the integer encoding.
    const fleet::FleetStats& s = result.stats;
    registry.add(registry.counter("fleet_affected_users"),
                 static_cast<std::uint64_t>(s.affected_users));
    registry.add(registry.counter("fleet_lost_users"),
                 static_cast<std::uint64_t>(s.lost_users));
    registry.add(
        registry.counter("fleet_reabsorbed_milli"),
        static_cast<std::uint64_t>(s.reabsorbed_fraction * 1000.0));
    registry.add(
        registry.counter("fleet_mean_reabsorb_slots_milli"),
        static_cast<std::uint64_t>(s.mean_reabsorb_slots * 1000.0));
    registry.add(registry.counter("fleet_max_reabsorb_slots"),
                 static_cast<std::uint64_t>(s.max_reabsorb_slots));
    registry.add(registry.counter("fleet_mean_qoe_milli"),
                 static_cast<std::uint64_t>(
                     mean_qoe(result.outcomes) * 1000.0));
    snapshot = registry.snapshot();
  }
  telemetry::ArmPerf arm = telemetry::summarize_arm(name, snapshot, wall_ms);
  // Throughput as a phase entry, alongside the per-slot latency the
  // "slot" phase histogram already carries (p50/p95/p99 over every
  // slot of the run). The fields hold slots-per-second values: p50/p95
  // are the throughputs implied by the matching slot-latency quantiles,
  // mean is the aggregate slots/wall figure the arm header also
  // reports. Under perf_gate.py --normalize-by phase entries are
  // advisory; the gating comparison is the arm-level slots_per_sec.
  telemetry::PhasePerf throughput;
  throughput.phase = "fleet_slots_per_sec";
  throughput.count = arm.slots;
  throughput.mean_us = arm.slots_per_sec;
  throughput.total_ms = arm.wall_ms_total;
  for (const telemetry::PhasePerf& phase : arm.phases) {
    if (phase.phase != "slot") continue;
    if (phase.p50_us > 0.0) throughput.p50_us = 1.0e6 / phase.p50_us;
    if (phase.p95_us > 0.0) throughput.p95_us = 1.0e6 / phase.p95_us;
    if (phase.p99_us > 0.0) throughput.p99_us = 1.0e6 / phase.p99_us;
    std::printf(
        "  %-18s fleet_slots_per_sec %10.1f  slot p50 %.1f us  p95 %.1f us\n",
        name.c_str(), arm.slots_per_sec, phase.p50_us, phase.p95_us);
  }
  arm.phases.push_back(throughput);
  return arm;
}

/// The bench-level half of the serial/parallel equivalence contract:
/// every counter in the snapshot (fleet_ failover metrics, allocator
/// work, system traffic) is a pure function of (config, seed), so the
/// threads knob must not move a single one. Throws on any drift —
/// a baseline must never be written from a diverging build.
void expect_identical_counters(const telemetry::ArmPerf& serial,
                               const telemetry::ArmPerf& parallel) {
  if (serial.snapshot.counters == parallel.snapshot.counters) return;
  std::fprintf(stderr,
               "fleet_failover: counter drift between %s and %s\n",
               serial.algorithm.c_str(), parallel.algorithm.c_str());
  for (const auto& [name, value] : serial.snapshot.counters) {
    const auto it = parallel.snapshot.counters.find(name);
    if (it == parallel.snapshot.counters.end()) {
      std::fprintf(stderr, "  %s: %llu -> (missing)\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    } else if (it->second != value) {
      std::fprintf(stderr, "  %s: %llu -> %llu\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   static_cast<unsigned long long>(it->second));
    }
  }
  throw std::runtime_error(
      "fleet_failover: parallel run diverged from serial (see stderr)");
}

void write_perf_baseline(const Options& options) {
  telemetry::PerfReport perf;
  perf.mode = telemetry::Mode::kCounters;
  for (const char* mode : {"sharded", "mirrored"}) {
    Options arm_options;  // fixed arms: flags must not skew the baseline
    arm_options.assignment = mode;
    perf.arms.push_back(measure_arm(mode, make_config(arm_options)));
  }
  // Fixed K=8 scale arms (the ROADMAP's "K servers x per-server
  // throughput" axis): same crash scenario, doubled fleet and user
  // population. The serial arm pins the reference schedule; the
  // parallel arm runs with threads=0 (all hardware threads) and must
  // reproduce every counter bit-exactly — checked here before the
  // baseline is written, and again in CI where the forced-serial leg
  // (CVR_FLEET_THREADS=1) re-measures both arms against this file.
  Options k8;
  k8.servers = 8;
  k8.users = 24;
  k8.threads = 1;
  perf.arms.push_back(measure_arm("sharded_k8_serial", make_config(k8)));
  k8.threads = 0;
  perf.arms.push_back(measure_arm("sharded_k8", make_config(k8)));
  expect_identical_counters(perf.arms[perf.arms.size() - 2],
                            perf.arms[perf.arms.size() - 1]);
  telemetry::write_perf_json(options.perf_out, perf, "fleet_failover",
                             options.machine);
  std::printf("perf baseline written: %s\n", options.perf_out.c_str());
}

void write_csv_report(const Options& options,
                      const fleet::FleetRunResult& result) {
  sim::ArmResult arm;
  arm.algorithm = "fleet_" + options.assignment;
  arm.outcomes = result.outcomes;
  const std::vector<std::string> paths =
      report::write_report({arm}, options.report);
  for (const std::string& path : paths) {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  FlagParser parser;
  bool help = false;
  parser.add("servers", &options.servers, "fleet size K");
  parser.add("users", &options.users, "connected users (two routers)");
  parser.add("slots", &options.slots, "run horizon (slots)");
  parser.add("seed", &options.seed, "master seed");
  parser.add("threads", &options.threads,
             "fleet slot workers (0 = all hardware threads, 1 = serial; "
             "results are bit-identical either way)");
  parser.add("crash-server", &options.crash_server,
             "server id killed by the scenario");
  parser.add("crash-slot", &options.crash_slot, "slot the crash lands on");
  parser.add("crash-duration", &options.crash_duration,
             "outage length in slots (0 = no crash)");
  parser.add("assignment", &options.assignment,
             "user->server assignment: sharded|mirrored");
  parser.add("budget", &options.budget,
             "backhaul split policy: equal|proportional");
  parser.add("report", &options.report,
             "CSV prefix for report::write_report output");
  parser.add("perf-out", &options.perf_out,
             "write cvr-bench-perf-v1 baseline JSON to this path");
  parser.add("machine", &options.machine,
             "capture-environment note for the perf baseline");
  parser.add("sweep", &options.sweep,
             "assignment-mode x outage-length sweep table");
  parser.add("check-recovery", &options.check_recovery,
             "exit non-zero unless >=99% reabsorbed, none lost, "
             "max time-to-reabsorb <= 50 slots");
  parser.add("help", &help, "print usage");
  if (!parser.parse(argc, argv) || help) {
    std::fputs(parser.usage("fleet_failover").c_str(), help ? stdout : stderr);
    for (const std::string& error : parser.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return help ? 0 : 1;
  }

  try {
    if (options.sweep) {
      run_sweep(options);
    } else {
      const fleet::FleetConfig config = make_config(options);
      const fleet::FleetRunResult result = run_once(config);
      print_report(config, result);
      if (!options.report.empty()) write_csv_report(options, result);
      if (options.check_recovery) {
        const fleet::FleetStats& s = result.stats;
        const bool ok = s.affected_users > 0 &&
                        s.reabsorbed_fraction >= 0.99 &&
                        s.lost_users == 0 && s.max_reabsorb_slots <= 50;
        if (!ok) {
          std::fprintf(
              stderr,
              "check-recovery: FAILED (affected=%zu reabsorbed=%.3f "
              "lost=%zu max_ttr=%zu)\n",
              s.affected_users, s.reabsorbed_fraction, s.lost_users,
              s.max_reabsorb_slots);
          return 1;
        }
      }
    }
    if (!options.perf_out.empty()) write_perf_baseline(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
