// Fig. 3 — trace-based simulation with 30 users. Brute force is
// infeasible at this scale (6^30 allocations), so — like the paper —
// the comparison set is our allocator vs Firefly and modified PAVQ
// (Theorem 1's fractional certificate covers optimality at this scale;
// see bench/theorem1_approx_ratio).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/pavq.h"
#include "src/report/report.h"
#include "src/sim/simulation.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::string report_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_prefix = argv[++i];
    }
  }

  bench::print_header("Fig. 3 — trace-based simulation, 30 users");

  trace::TraceRepositoryConfig repo_config;
  if (!full) {
    repo_config.fcc.duration_s = 30.0;
    repo_config.lte.duration_s = 30.0;
  }
  const trace::TraceRepository repo(repo_config, 2022);

  sim::TraceSimConfig config;
  config.users = 30;
  config.slots = full ? 19800 : 1980;
  config.params = core::QoeParams{0.02, 0.5};
  const std::size_t runs = full ? 100 : 10;
  const sim::TraceSimulation simulation(config, repo);

  core::DvGreedyAllocator ours;
  core::FireflyAllocator firefly;
  core::PavqAllocator pavq = core::PavqAllocator::perfect_knowledge();
  const auto arms = simulation.compare({&ours, &firefly, &pavq}, runs);

  std::printf("(%zu runs x %zu users x %zu slots; alpha=0.02 beta=0.5)\n\n",
              runs, config.users, config.slots);
  for (const auto& arm : arms) bench::print_arm_cdfs(arm);

  std::printf("\nsummary (means):\n");
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over Firefly: %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("QoE improvement over PAVQ:    %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf(
      "\npaper shape: same ordering as the 5-user case — ours best, PAVQ\n"
      "close with a different quality/delay/variance mix, Firefly worst\n");

  if (!report_prefix.empty()) {
    for (const auto& path : report::write_report(arms, report_prefix)) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
