// Fig. 3 — trace-based simulation with 30 users. Brute force is
// infeasible at this scale (6^30 allocations), so — like the paper —
// the comparison set is our allocator vs Firefly and modified PAVQ
// (Theorem 1's fractional certificate covers optimality at this scale;
// see bench/theorem1_approx_ratio).
//
// `--threads=N` spreads the (algorithm, run) cells over N pool workers
// (0 = all hardware threads); the outcomes are bit-identical to serial,
// only the wall clock changes — this is the headline harness for the
// ensemble speedup (see docs/running_benchmarks.md).
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.h"
#include "src/experiments/ensemble.h"
#include "src/report/report.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::int64_t threads = 1;
  std::string report_prefix;
  FlagParser flags;
  flags.add("full", &full, "paper-scale sweep (100 runs x 300 s)");
  flags.add("threads", &threads,
            "ensemble workers (0 = all hardware threads, 1 = serial)");
  flags.add("report", &report_prefix, "write CSV reports under this prefix");
  bench::TelemetryOptions telemetry;
  telemetry.register_flags(flags);
  if (!flags.parse(argc, argv)) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
    std::fputs(flags.usage(argv[0]).c_str(), stderr);
    return 1;
  }

  bench::print_header("Fig. 3 — trace-based simulation, 30 users");

  experiments::EnsembleSpec spec;
  spec.platform = experiments::EnsembleSpec::Platform::kTrace;
  spec.users = 30;
  spec.slots = full ? 19800 : 1980;
  spec.repeats = full ? 100 : 10;
  spec.algorithms = {"dv", "firefly", "pavq"};
  spec.seed = 2022;
  spec.alpha = 0.02;
  spec.beta = 0.5;
  spec.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
  try {
    telemetry.apply(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto run = experiments::run_ensemble_with_perf(spec);
  const auto& arms = run.arms;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  std::printf("(%zu runs x %zu users x %zu slots; alpha=0.02 beta=0.5)\n\n",
              spec.repeats, spec.users, spec.slots);
  for (const auto& arm : arms) bench::print_arm_cdfs(arm);

  std::printf("\nsummary (means):\n");
  for (const auto& arm : arms) bench::print_arm_bars(arm);

  const double ours_qoe = arms[0].mean_qoe();
  std::printf("\nQoE improvement over Firefly: %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[1].mean_qoe()));
  std::printf("QoE improvement over PAVQ:    %+.1f%%\n",
              bench::improvement_pct(ours_qoe, arms[2].mean_qoe()));
  std::printf(
      "\npaper shape: same ordering as the 5-user case — ours best, PAVQ\n"
      "close with a different quality/delay/variance mix, Firefly worst\n");

  bench::print_timing(arms, elapsed_ms, spec.threads);
  bench::print_perf(run.perf);
  telemetry.write_baseline(run.perf, "fig3");

  if (!report_prefix.empty()) {
    for (const auto& path : report::write_report(arms, report_prefix)) {
      std::printf("wrote %s\n", path.c_str());
    }
    if (!run.perf.arms.empty()) {
      const std::string perf_path = report_prefix + "_perf.csv";
      report::write_perf_csv(perf_path, run.perf);
      std::printf("wrote %s\n", perf_path.c_str());
    }
  }
  return 0;
}
