// Shared formatting helpers for the figure-regeneration harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/ensemble.h"
#include "src/sim/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/util/flags.h"
#include "src/util/stats.h"

namespace cvr::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints a CDF as (quantile level, value) pairs — the series a plotting
/// script would consume to redraw the paper's CDF panels.
inline void print_cdf_row(const std::string& label, const cvr::Cdf& cdf) {
  static const double kQuantiles[] = {0.05, 0.25, 0.5, 0.75, 0.95};
  std::printf("  %-18s", label.c_str());
  for (double p : kQuantiles) std::printf(" p%02.0f=%8.3f", p * 100, cdf.quantile(p));
  std::printf("  mean=%8.3f\n", cdf.mean());
}

/// Prints the four CDF panels of Figs. 2/3 for one algorithm arm.
inline void print_arm_cdfs(const cvr::sim::ArmResult& arm) {
  std::printf("%s\n", arm.algorithm.c_str());
  print_cdf_row("avg QoE", arm.qoe_cdf());
  print_cdf_row("avg quality", arm.quality_cdf());
  print_cdf_row("avg delay (ms)", arm.delay_ms_cdf());
  print_cdf_row("quality variance", arm.variance_cdf());
}

/// Prints the bar-chart quantities of Figs. 7/8 for one algorithm arm.
inline void print_arm_bars(const cvr::sim::ArmResult& arm) {
  std::printf("  %-16s qoe=%8.3f  quality=%6.3f  delay=%8.3f ms  variance=%6.3f  fps=%6.2f\n",
              arm.algorithm.c_str(), arm.mean_qoe(), arm.mean_quality(),
              arm.mean_delay_ms(), arm.mean_variance(), arm.mean_fps());
}

inline double improvement_pct(double ours, double baseline) {
  return 100.0 * (ours / baseline - 1.0);
}

/// The shared observability CLI surface of the figure benches
/// (docs/observability.md): --telemetry off|counters|trace selects the
/// collection mode, --trace-out <path> captures a Chrome trace (and
/// implies trace mode), --perf-out overrides the default
/// BENCH_<name>.json baseline path, --machine annotates the baseline
/// with the capture environment. With everything at defaults the bench
/// output — stdout and report files — is byte-identical to a binary
/// without these flags.
struct TelemetryOptions {
  std::string mode_text = "off";
  std::string trace_out;
  std::string perf_out;
  std::string machine;

  void register_flags(cvr::FlagParser& flags) {
    flags.add("telemetry", &mode_text,
              "telemetry mode: off, counters, or trace");
    flags.add("trace-out", &trace_out,
              "write a chrome://tracing JSON here (implies --telemetry=trace)");
    flags.add("perf-out", &perf_out,
              "perf baseline JSON path (default BENCH_<bench>.json)");
    flags.add("machine", &machine,
              "capture-machine note recorded in the perf baseline");
  }

  /// The resolved mode; throws std::invalid_argument on a bad
  /// --telemetry value (catch after parse() for a clean usage exit).
  cvr::telemetry::Mode mode() const {
    if (!trace_out.empty()) return cvr::telemetry::Mode::kTrace;
    return cvr::telemetry::parse_mode(mode_text);
  }

  /// Copies the resolved telemetry settings into an ensemble spec.
  void apply(cvr::experiments::EnsembleSpec& spec) const {
    spec.telemetry = mode();
    spec.trace_out = trace_out;
  }

  /// Writes the BENCH_<bench>.json baseline and announces the artifact
  /// paths. No-op when telemetry was off (perf is empty), keeping the
  /// default stdout byte-identical.
  void write_baseline(const cvr::telemetry::PerfReport& perf,
                      const std::string& bench) const {
    if (perf.empty()) return;
    const std::string path =
        perf_out.empty() ? "BENCH_" + bench + ".json" : perf_out;
    cvr::telemetry::write_perf_json(path, perf, bench, machine);
    std::printf("\nperf baseline written: %s\n", path.c_str());
    if (!trace_out.empty()) {
      std::printf("chrome trace written: %s\n", trace_out.c_str());
    }
  }
};

/// Prints the per-phase latency block of a perf report (p50/p95/p99 in
/// microseconds plus slots/sec), the human-readable view of the
/// BENCH_<name>.json baseline.
inline void print_perf(const cvr::telemetry::PerfReport& perf) {
  if (perf.empty()) return;
  std::printf("\nphase latencies (%s):\n",
              cvr::telemetry::mode_name(perf.mode));
  for (const auto& arm : perf.arms) {
    std::printf("  %-16s %8.0f slots/s  alloc iters=%llu\n",
                arm.algorithm.c_str(), arm.slots_per_sec,
                static_cast<unsigned long long>(arm.alloc_iterations));
    for (const auto& phase : arm.phases) {
      std::printf("    %-14s n=%9llu  p50=%9.2f us  p95=%9.2f us  "
                  "p99=%9.2f us\n",
                  phase.phase.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.p50_us,
                  phase.p95_us, phase.p99_us);
    }
  }
}

/// Prints the ensemble timing block: per-arm mean/total run wall-clock
/// plus the end-to-end elapsed time, so serial vs --threads=N speedups
/// are visible straight from the harness output.
inline void print_timing(const std::vector<cvr::sim::ArmResult>& arms,
                         double elapsed_ms, std::size_t threads) {
  std::printf("\nwall clock (threads=%zu):\n", threads);
  double cells_ms = 0.0;
  for (const auto& arm : arms) {
    if (arm.run_wall_ms.empty()) continue;
    cells_ms += arm.total_wall_ms();
    std::printf("  %-16s %zu runs  mean=%9.1f ms  total=%9.1f ms\n",
                arm.algorithm.c_str(), arm.run_wall_ms.size(),
                arm.mean_wall_ms(), arm.total_wall_ms());
  }
  std::printf("  %-16s cells=%9.1f ms  elapsed=%9.1f ms  (speedup vs serial"
              " = serial elapsed / this elapsed)\n",
              "ensemble", cells_ms, elapsed_ms);
}

}  // namespace cvr::bench
