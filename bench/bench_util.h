// Shared formatting helpers for the figure-regeneration harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/util/stats.h"

namespace cvr::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints a CDF as (quantile level, value) pairs — the series a plotting
/// script would consume to redraw the paper's CDF panels.
inline void print_cdf_row(const std::string& label, const cvr::Cdf& cdf) {
  static const double kQuantiles[] = {0.05, 0.25, 0.5, 0.75, 0.95};
  std::printf("  %-18s", label.c_str());
  for (double p : kQuantiles) std::printf(" p%02.0f=%8.3f", p * 100, cdf.quantile(p));
  std::printf("  mean=%8.3f\n", cdf.mean());
}

/// Prints the four CDF panels of Figs. 2/3 for one algorithm arm.
inline void print_arm_cdfs(const cvr::sim::ArmResult& arm) {
  std::printf("%s\n", arm.algorithm.c_str());
  print_cdf_row("avg QoE", arm.qoe_cdf());
  print_cdf_row("avg quality", arm.quality_cdf());
  print_cdf_row("avg delay (ms)", arm.delay_ms_cdf());
  print_cdf_row("quality variance", arm.variance_cdf());
}

/// Prints the bar-chart quantities of Figs. 7/8 for one algorithm arm.
inline void print_arm_bars(const cvr::sim::ArmResult& arm) {
  std::printf("  %-16s qoe=%8.3f  quality=%6.3f  delay=%8.3f ms  variance=%6.3f  fps=%6.2f\n",
              arm.algorithm.c_str(), arm.mean_qoe(), arm.mean_quality(),
              arm.mean_delay_ms(), arm.mean_variance(), arm.mean_fps());
}

inline double improvement_pct(double ours, double baseline) {
  return 100.0 * (ours / baseline - 1.0);
}

/// Prints the ensemble timing block: per-arm mean/total run wall-clock
/// plus the end-to-end elapsed time, so serial vs --threads=N speedups
/// are visible straight from the harness output.
inline void print_timing(const std::vector<cvr::sim::ArmResult>& arms,
                         double elapsed_ms, std::size_t threads) {
  std::printf("\nwall clock (threads=%zu):\n", threads);
  double cells_ms = 0.0;
  for (const auto& arm : arms) {
    if (arm.run_wall_ms.empty()) continue;
    cells_ms += arm.total_wall_ms();
    std::printf("  %-16s %zu runs  mean=%9.1f ms  total=%9.1f ms\n",
                arm.algorithm.c_str(), arm.run_wall_ms.size(),
                arm.mean_wall_ms(), arm.total_wall_ms());
  }
  std::printf("  %-16s cells=%9.1f ms  elapsed=%9.1f ms  (speedup vs serial"
              " = serial elapsed / this elapsed)\n",
              "ensemble", cells_ms, elapsed_ms);
}

}  // namespace cvr::bench
