// Decomposition gap — the empirical counterpart of eq. (8):
// "(1/T)(QoE_hat(T) - QoE*(T)) -> 0 as T -> inf". For tiny instances we
// can compute the true horizon-coupled optimum of (1)-(3) by exhaustive
// search and compare it against sequentially solving the per-slot
// problem (5) with Algorithm 1. The per-slot gap should shrink as the
// horizon grows, and be small in absolute terms throughout.
#include <cstdio>

#include "bench_util.h"
#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/horizon.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

HorizonProblem random_horizon(std::uint64_t seed, std::size_t horizon,
                              std::size_t users) {
  Rng rng(seed);
  HorizonProblem problem;
  problem.params = QoeParams{0.02, 0.5};
  for (std::size_t t = 0; t < horizon; ++t) {
    SlotProblem slot;
    slot.params = problem.params;
    double total_min = 0.0;
    for (std::size_t n = 0; n < users; ++n) {
      const content::CrfRateFunction f(14.2, 1.45, 1.0);
      // Time-varying per-user bandwidth makes the horizon coupling bite:
      // the optimum smooths quality across good and bad slots.
      slot.users.push_back(UserSlotContext::from_rate_function(
          f, rng.uniform(20.0, 100.0), 1.0, 0.0, 1.0));
      total_min += slot.users.back().rate[0];
    }
    slot.server_bandwidth = total_min * rng.uniform(1.5, 3.0);
    problem.slots.push_back(std::move(slot));
  }
  return problem;
}

}  // namespace

int main() {
  bench::print_header(
      "Decomposition gap — eq. (8): per-slot solving vs horizon optimum");

  DvGreedyAllocator greedy;
  std::printf("single user, 30 random instances per horizon length:\n");
  std::printf("%8s %16s %16s %16s\n", "T", "mean gap/slot", "max gap/slot",
              "mean seq/opt");
  for (std::size_t horizon : {2, 3, 4, 5, 6, 8}) {
    double gap_sum = 0.0, gap_max = 0.0, ratio_sum = 0.0;
    constexpr int kInstances = 30;
    for (int i = 0; i < kInstances; ++i) {
      const HorizonProblem problem =
          random_horizon(horizon * 1000 + i, horizon, 1);
      const double optimal = horizon_optimal(problem, nullptr, 5e8);
      const double sequential = horizon_sequential(problem, greedy);
      const double gap = (optimal - sequential) / static_cast<double>(horizon);
      gap_sum += gap;
      gap_max = std::max(gap_max, gap);
      ratio_sum += sequential / optimal;
    }
    std::printf("%8zu %16.4f %16.4f %16.4f\n", horizon,
                gap_sum / kInstances, gap_max, ratio_sum / kInstances);
  }

  std::printf("\ntwo users (shared budget), 15 instances per horizon:\n");
  std::printf("%8s %16s %16s\n", "T", "mean gap/slot", "mean seq/opt");
  for (std::size_t horizon : {2, 3, 4}) {
    double gap_sum = 0.0, ratio_sum = 0.0;
    constexpr int kInstances = 15;
    for (int i = 0; i < kInstances; ++i) {
      const HorizonProblem problem =
          random_horizon(horizon * 2000 + i, horizon, 2);
      const double optimal = horizon_optimal(problem, nullptr, 5e8);
      const double sequential = horizon_sequential(problem, greedy);
      gap_sum += (optimal - sequential) / static_cast<double>(horizon);
      ratio_sum += sequential / optimal;
    }
    std::printf("%8zu %16.4f %16.4f\n", horizon, gap_sum / kInstances,
                ratio_sum / kInstances);
  }

  std::printf(
      "\nmeasured: with a single user the sequential per-slot solution is\n"
      "*exactly* horizon-optimal on every instance; with a shared budget\n"
      "the coupled optimum gains only ~0.1-1.5%% at the tiny horizons an\n"
      "exhaustive search can reach (the asymptotic 1/T decay of eq. (8)\n"
      "lives beyond the enumerable regime, but the practical content —\n"
      "per-slot solving forfeits almost nothing — is visible already)\n");
  return 0;
}
