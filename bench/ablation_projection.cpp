// Ablation — projection method (Section V: "we can also apply other
// projection methods to our system"). Compares the delivered-panorama
// fraction of the paper's 2x2 equirectangular tiling against a 6-face
// cubemap tiling across the realistic view distribution, at several FoV
// margins. Delivered fraction ~ bandwidth: fewer/finer tiles covering
// the same FoV means less wasted panorama per frame.
#include <cstdio>

#include "bench_util.h"
#include "src/content/cubemap.h"
#include "src/content/equirect.h"
#include "src/motion/motion_generator.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — projection: equirect 2x2 tiles vs cubemap 6 faces");

  const motion::MotionGenerator generator;
  constexpr std::size_t kUsers = 8;
  constexpr std::size_t kSlots = 3000;

  std::printf("%12s | %-30s | %-30s\n", "", "equirect (tile = 1/4 panorama)",
              "cubemap (face = 1/6 panorama)");
  std::printf("%12s | %14s %15s | %14s %15s\n", "margin deg", "avg tiles",
              "delivered frac", "avg faces", "delivered frac");
  for (double margin : {0.0, 10.0, 15.0, 25.0}) {
    motion::FovSpec spec;
    spec.margin_deg = margin;
    double tiles_total = 0.0, faces_total = 0.0;
    std::size_t samples = 0;
    for (std::size_t user = 0; user < kUsers; ++user) {
      const motion::MotionTrace trace = generator.generate(5, user, kSlots);
      for (std::size_t t = 0; t < trace.size(); t += 7) {
        tiles_total +=
            static_cast<double>(content::tiles_for_view(spec, trace[t]).size());
        faces_total +=
            static_cast<double>(content::faces_for_view(spec, trace[t]).size());
        ++samples;
      }
    }
    const double avg_tiles = tiles_total / static_cast<double>(samples);
    const double avg_faces = faces_total / static_cast<double>(samples);
    std::printf("%12.0f | %14.2f %14.1f%% | %14.2f %14.1f%%\n", margin,
                avg_tiles, 100.0 * avg_tiles / 4.0, avg_faces,
                100.0 * avg_faces / 6.0);
  }

  std::printf(
      "\nshape: the cubemap's finer faces deliver a smaller panorama\n"
      "fraction for the same FoV+margin — the bandwidth headroom that\n"
      "motivates alternative projections; the paper ships equirect for\n"
      "its simpler offline tiling pipeline\n");
  return 0;
}
