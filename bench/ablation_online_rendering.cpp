// Ablation — online rendering and encoding (Section VIII). The paper
// ships offline pre-encoded tiles because just-in-time rendering "makes
// it difficult to meet the synchronization performance", and proposes
// coordinating multiple GPUs with pipelined encoders as future work.
// This harness answers the question the discussion raises: how many
// GPUs does the Section-VIII server need before online rendering stops
// hurting QoE, and how much does render/encode pipelining buy?
#include <cstdio>

#include "bench_util.h"
#include "src/core/dv_greedy.h"
#include "src/render/render_farm.h"
#include "src/system/system_sim.h"

int main() {
  using namespace cvr;
  bench::print_header(
      "Ablation — online rendering/encoding on a GPU farm (Section VIII)");

  // Capacity view first: tiles/user the farm sustains inside one slot.
  std::printf("farm capacity: max tiles per user within the 15 ms slot\n");
  std::printf("%8s | %18s | %18s\n", "GPUs", "pipelined (q=6)",
              "sequential (q=6)");
  for (int gpus : {1, 2, 4, 8}) {
    render::RenderFarmConfig pipelined;
    pipelined.gpus = gpus;
    render::RenderFarmConfig sequential = pipelined;
    sequential.pipelined = false;
    std::printf("%8d | %18zu | %18zu\n", gpus,
                render::RenderFarm(pipelined).max_tiles_per_user(8, 6),
                render::RenderFarm(sequential).max_tiles_per_user(8, 6));
  }

  // End-to-end: setup-1 system with just-in-time rendering.
  std::printf("\nend-to-end (8 users, setup 1): QoE and FPS vs GPU count\n");
  std::printf("%12s %10s %10s %10s\n", "config", "QoE", "quality", "fps");
  {
    system::SystemSimConfig offline = system::setup_one_router(8);
    offline.slots = 1320;
    core::DvGreedyAllocator alloc;
    const auto arm = system::SystemSim(offline).compare({&alloc}, 3)[0];
    std::printf("%12s %10.3f %10.3f %10.1f\n", "offline", arm.mean_qoe(),
                arm.mean_quality(), arm.mean_fps());
  }
  for (int gpus : {1, 2, 4}) {
    system::SystemSimConfig config = system::setup_one_router(8);
    config.slots = 1320;
    config.online_rendering = true;
    config.render_farm.gpus = gpus;
    core::DvGreedyAllocator alloc;
    const auto arm = system::SystemSim(config).compare({&alloc}, 3)[0];
    std::printf("%9d-gpu %10.3f %10.3f %10.1f\n", gpus, arm.mean_qoe(),
                arm.mean_quality(), arm.mean_fps());
  }
  {
    system::SystemSimConfig config = system::setup_one_router(8);
    config.slots = 1320;
    config.online_rendering = true;
    config.render_farm.gpus = 4;
    config.render_farm.pipelined = false;
    core::DvGreedyAllocator alloc;
    const auto arm = system::SystemSim(config).compare({&alloc}, 3)[0];
    std::printf("%12s %10.3f %10.3f %10.1f\n", "4-gpu seq", arm.mean_qoe(),
                arm.mean_quality(), arm.mean_fps());
  }

  std::printf(
      "\nshape: the capacity table confirms Section VIII's premise — even\n"
      "the paper's 4-GPU server cannot render full fresh frames for 8\n"
      "users inside a slot, which is why the shipped system pre-encodes\n"
      "offline. End-to-end, repetition suppression shrinks the per-slot\n"
      "render load enough that a 4-GPU pipelined farm nearly matches the\n"
      "offline store, 2 GPUs visibly lag, 1 GPU starves the session, and\n"
      "encoder/renderer pipelining (the paper's proposal) buys a few\n"
      "percent of QoE at the same GPU count\n");
  return 0;
}
