// Theorem 1 — "Algorithm 1 reaches at least 1/2 of the optimal value for
// our optimization problem (5)-(7)". No figure in the paper plots this;
// this harness verifies the guarantee empirically across thousands of
// random per-slot instances (exact optimum by brute force at N <= 6 and
// by fine-grained DP at N = 20) and reports the worst observed ratio of
// greedy gain to optimal gain over the all-ones base allocation.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"
#include "src/core/optimal.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

SlotProblem random_problem(std::uint64_t seed, std::size_t users) {
  Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{rng.uniform(0.0, 0.2), rng.uniform(0.0, 2.0)};
  double total_min = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.3));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, rng.uniform(20.0, 100.0), rng.uniform(0.5, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 1000.0)));
    total_min += problem.users.back().rate[0];
  }
  problem.server_bandwidth = total_min * rng.uniform(1.0, 4.0);
  return problem;
}

double base_value(const SlotProblem& problem) {
  return evaluate(problem,
                  std::vector<QualityLevel>(problem.users.size(), 1));
}

}  // namespace

int main() {
  bench::print_header("Theorem 1 — DV-greedy >= 1/2 x optimal (empirical)");

  struct Row {
    std::size_t users;
    std::size_t instances;
    bool use_dp;
  };
  const Row rows[] = {{2, 3000, false}, {4, 2000, false}, {6, 1000, false},
                      {12, 300, true},  {20, 150, true}};

  std::printf("%6s %10s %12s %12s %12s %10s\n", "N", "instances",
              "worst ratio", "mean ratio", "near-opt %", "violations");
  for (const Row& row : rows) {
    DvGreedyAllocator greedy;
    BruteForceAllocator brute(8);
    DpAllocator dp(0.02);
    double worst = 1.0, ratio_sum = 0.0;
    std::size_t counted = 0, near_optimal = 0, violations = 0;
    for (std::size_t i = 0; i < row.instances; ++i) {
      const SlotProblem problem =
          random_problem(row.users * 100000 + i, row.users);
      const double base = base_value(problem);
      const double opt = (row.use_dp ? dp.allocate(problem).objective
                                     : brute.allocate(problem).objective) -
                         base;
      if (opt < 1e-9) continue;
      const double gain = greedy.allocate(problem).objective - base;
      const double ratio = gain / opt;
      worst = std::min(worst, ratio);
      ratio_sum += ratio;
      ++counted;
      if (ratio > 0.99) ++near_optimal;
      if (ratio < 0.5 - 1e-9) ++violations;
    }
    std::printf("%6zu %10zu %12.4f %12.4f %11.1f%% %10zu\n", row.users,
                counted, worst, ratio_sum / static_cast<double>(counted),
                100.0 * static_cast<double>(near_optimal) /
                    static_cast<double>(counted),
                violations);
  }

  // Fractional-bound certificate at a scale no exact solver reaches.
  DvGreedyAllocator greedy;
  double worst_cert = 1.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const SlotProblem problem = random_problem(777000 + i, 60);
    const double base = base_value(problem);
    const double bound = fractional_upper_bound(problem) - base;
    if (bound < 1e-9) continue;
    worst_cert = std::min(
        worst_cert, (greedy.allocate(problem).objective - base) / bound);
  }
  std::printf("\nN=60 fractional-bound certificate: worst gain ratio %.4f "
              "(bound >= OPT, so >= 0.5 certifies Theorem 1)\n",
              worst_cert);
  std::printf("\npaper claim: ratio never below 1/2; observed: DV-greedy is "
              "near-optimal on the vast majority of instances (cf. Fig. 2)\n");
  return 0;
}
