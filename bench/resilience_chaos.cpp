// Resilience under chaos — fault-intensity sweep (docs/resilience.md).
//
// The paper's evaluation stresses the allocators with *continuous*
// degradation (fading, interference, loss). This harness adds the
// *discrete* failure modes a deployed classroom actually sees — client
// churn, pose blackouts, ACK-channel stalls, router bandwidth cliffs,
// server cache flushes — generated deterministically at a swept
// intensity, and reports the recovery metrics the QoE means hide:
// time-to-recover, quality-dip depth, frames dropped inside fault
// windows. Intensity 0 is the control arm: it must reproduce the
// fault-free ensemble bit-for-bit (the empty schedule is inert).
//
// `--report=PREFIX` writes the standard CSV set per intensity under
// PREFIX_i<percent> (e.g. PREFIX_i150_resilience.csv at intensity 1.5);
// see EXPERIMENTS.md for the column layout.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/experiments/ensemble.h"
#include "src/faults/fault_schedule.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace cvr;
  bool full = false;
  std::int64_t threads = 1;
  std::string report;
  FlagParser flags;
  flags.add("full", &full, "paper-scale sweep (30 s x 5 repeats per cell)");
  flags.add("threads", &threads,
            "ensemble workers (0 = all hardware threads, 1 = serial)");
  flags.add("report", &report,
            "CSV prefix; writes <prefix>_i<percent>_{outcomes,resilience,...}"
            ".csv per intensity");
  if (!flags.parse(argc, argv)) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
    std::fputs(flags.usage(argv[0]).c_str(), stderr);
    return 1;
  }

  bench::print_header(
      "Resilience — graceful degradation under churn/blackouts/outages");

  // CI-friendly by default (10 s horizons, 2 repeats); --full restores
  // the paper's 30 s x 5.
  const std::size_t slots = full ? 1980 : 660;
  const std::size_t repeats = full ? 5 : 2;
  const std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0};

  std::printf("(8 users, 1 router, %zu slots, %zu repeats per cell;\n"
              " deterministic fault schedules, seed-locked per intensity)\n",
              slots, repeats);

  struct Row {
    double intensity;
    std::string algorithm;
    double qoe, ttr, dip, dropped, fault_slots;
  };
  std::vector<Row> summary;

  const auto start = std::chrono::steady_clock::now();
  for (double intensity : intensities) {
    faults::FaultScheduleConfig chaos;
    chaos.users = 8;
    chaos.routers = 1;
    chaos.slots = slots;
    chaos.seed = 2022;  // same schedule for every arm: paired comparison
    chaos.intensity = intensity;

    experiments::EnsembleSpec spec;
    spec.platform = experiments::EnsembleSpec::Platform::kSystem;
    spec.users = 8;
    spec.routers = 1;
    spec.slots = slots;
    spec.repeats = repeats;
    spec.algorithms = {"dv", "pavq", "firefly"};
    spec.seed = 11;
    spec.alpha = 0.1;
    spec.beta = 0.5;
    spec.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
    spec.faults = faults::generate_schedule(chaos);
    if (!report.empty()) {
      spec.report_prefix =
          report + "_i" + std::to_string(static_cast<int>(intensity * 100));
    }

    std::printf("\nintensity %.2f  (%zu fault events)\n", intensity,
                spec.faults.size());
    const auto arms = experiments::run_ensemble(spec);
    for (const auto& arm : arms) {
      std::printf("  %-16s qoe=%8.3f  fault_slots=%7.1f  ttr=%6.1f slots  "
                  "dip=%6.3f  dropped=%7.1f\n",
                  arm.algorithm.c_str(), arm.mean_qoe(),
                  arm.mean_fault_slots(), arm.mean_time_to_recover(),
                  arm.mean_qoe_dip(), arm.mean_frames_dropped_in_fault());
      summary.push_back({intensity, arm.algorithm, arm.mean_qoe(),
                         arm.mean_time_to_recover(), arm.mean_qoe_dip(),
                         arm.mean_frames_dropped_in_fault(),
                         arm.mean_fault_slots()});
    }
  }
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  std::printf("\nQoE vs fault intensity (graceful degradation = a slope,"
              " not a cliff):\n");
  std::printf("  %-16s", "algorithm");
  for (double i : intensities) std::printf("  i=%.2f  ", i);
  std::printf("\n");
  std::vector<std::string> algorithm_names;  // display names, spec order
  for (const Row& row : summary) {
    bool seen = false;
    for (const std::string& name : algorithm_names) {
      seen = seen || name == row.algorithm;
    }
    if (!seen) algorithm_names.push_back(row.algorithm);
  }
  for (const std::string& algorithm : algorithm_names) {
    std::printf("  %-16s", algorithm.c_str());
    for (double i : intensities) {
      for (const Row& row : summary) {
        if (row.algorithm == algorithm && row.intensity == i) {
          std::printf("  %7.3f ", row.qoe);
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\nelapsed: %.1f ms (threads=%lld)\n", elapsed_ms,
              static_cast<long long>(threads));
  if (!report.empty()) {
    std::printf("CSV reports written under %s_i*<suffix>.csv\n",
                report.c_str());
  }
  return 0;
}
