// Micro-benchmarks (google-benchmark): per-slot allocator latency vs
// user count. The paper runs Algorithm 1 every 15 ms slot for up to 15
// users on the server; these benches show the allocator is orders of
// magnitude below that budget even at hundreds of users, and compare it
// against the baselines and exact solvers.
//
// `--perf-out=PATH` additionally writes a machine-readable
// BENCH_micro_allocator.json-style baseline (schema cvr-bench-perf-v1,
// measured with telemetry::ScopedTimer over a fixed iteration count —
// independent of google-benchmark's adaptive timing);
// `--machine=NOTE` annotates it with the capture environment.
// `--sweep` skips google-benchmark and prints a slots/sec scaling table
// over N in {5, 30, 100, 1000, 10000} for every per-slot solver (the
// O(N^2 L) paper-literal scan sits out the N=10000 row).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/fractional.h"
#include "src/core/lagrangian.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

SlotProblem make_problem(std::size_t users, std::uint64_t seed = 99) {
  Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{0.02, 0.5};
  double total_min = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.25));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, rng.uniform(20.0, 100.0), rng.uniform(0.6, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 500.0)));
    total_min += problem.users.back().rate[0];
  }
  problem.server_bandwidth = 36.0 * static_cast<double>(users);
  return problem;
}

void BM_DvGreedy(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  // Pinned to the paper-literal scan so this stays a scan-vs-heap
  // comparison now that the default strategy is kHeap.
  DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                          DvGreedyAllocator::Strategy::kScan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DvGreedy)->Arg(5)->Arg(15)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_DvGreedyHeap(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                          DvGreedyAllocator::Strategy::kHeap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DvGreedyHeap)->Arg(5)->Arg(15)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_Pavq(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  PavqAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_Pavq)->Arg(5)->Arg(30)->Arg(120);

void BM_Firefly(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  FireflyAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_Firefly)->Arg(5)->Arg(30)->Arg(120);

void BM_BruteForce(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  BruteForceAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_BruteForce)->Arg(3)->Arg(5)->Arg(7);

void BM_DpExact(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  DpAllocator alloc(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DpExact)->Arg(5)->Arg(15)->Arg(30);

void BM_FractionalBound(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fractional_upper_bound(problem));
  }
}
BENCHMARK(BM_FractionalBound)->Arg(5)->Arg(30)->Arg(120);

/// Times `allocator` over each user count with ScopedTimer into a fresh
/// registry, and folds the percentiles into one perf-report arm whose
/// "phases" are the user counts ("allocate_n<N>").
telemetry::ArmPerf measure_arm(const std::string& name,
                               core::Allocator& allocator,
                               const std::vector<std::size_t>& sizes) {
  // Iterations per size: enough samples for a stable p50 at the small
  // sizes, scaled down at N >= 1000 so the allocate_n10000 phase keeps
  // the whole baseline capture under a few seconds per arm.
  const auto iters_for = [](std::size_t n) -> std::size_t {
    return n >= 1000 ? 30 : 200;
  };
  telemetry::MetricsRegistry registry;
  telemetry::ArmPerf arm;
  arm.algorithm = name;
  const auto start = std::chrono::steady_clock::now();
  for (const std::size_t n : sizes) {
    const SlotProblem problem = make_problem(n);
    const auto id =
        registry.histogram("allocate_n" + std::to_string(n) + "_us",
                           telemetry::default_duration_edges_us());
    allocator.reset();
    const std::size_t iters = iters_for(n);
    for (std::size_t i = 0; i < iters; ++i) {
      telemetry::ScopedTimer timer(&registry, id);
      benchmark::DoNotOptimize(allocator.allocate(problem));
    }
    arm.slots += iters;
  }
  arm.wall_ms_total = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (arm.wall_ms_total > 0.0) {
    arm.slots_per_sec =
        static_cast<double>(arm.slots) / (arm.wall_ms_total / 1000.0);
  }
  arm.snapshot = registry.snapshot();
  for (const std::size_t n : sizes) {
    const auto it = arm.snapshot.histograms.find("allocate_n" +
                                                 std::to_string(n) + "_us");
    if (it == arm.snapshot.histograms.end()) continue;
    telemetry::PhasePerf perf;
    perf.phase = it->first.substr(0, it->first.size() - 3);  // drop "_us"
    perf.count = it->second.count;
    perf.p50_us = it->second.quantile(0.50);
    perf.p95_us = it->second.quantile(0.95);
    perf.p99_us = it->second.quantile(0.99);
    perf.mean_us = it->second.mean();
    perf.total_ms = it->second.sum / 1000.0;
    arm.phases.push_back(std::move(perf));
  }
  return arm;
}

void write_perf_baseline(const std::string& path, const std::string& machine) {
  telemetry::PerfReport report;
  report.mode = telemetry::Mode::kCounters;
  const std::vector<std::size_t> sizes = {5, 15, 30, 120};
  // The near-linear solvers additionally capture an allocate_n10000
  // phase (the within-slot parallelism regime); the paper-literal scan
  // is excluded there — its O(N^2 L) ascent would dominate the run for
  // no extra signal (the n120 phase already gates its SIMD argmax).
  const std::vector<std::size_t> sizes_with_large = {5, 15, 30, 120, 10000};
  {
    DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                            DvGreedyAllocator::Strategy::kScan);
    report.arms.push_back(measure_arm("dv", alloc, sizes));
  }
  {
    DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                            DvGreedyAllocator::Strategy::kHeap);
    report.arms.push_back(measure_arm("dv_heap", alloc, sizes_with_large));
  }
  {
    // Warm-start ablation: measure_arm repeats the same problem per
    // size, so from the second iteration on this times the best case —
    // seed already optimal, ascent exits immediately.
    DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                            DvGreedyAllocator::Strategy::kHeap,
                            /*warm_start=*/true);
    report.arms.push_back(measure_arm("dv_warm", alloc, sizes));
  }
  {
    PavqAllocator alloc;
    report.arms.push_back(measure_arm("pavq", alloc, sizes_with_large));
  }
  {
    FireflyAllocator alloc;
    report.arms.push_back(measure_arm("firefly", alloc, sizes_with_large));
  }
  telemetry::write_perf_json(path, report, "micro_allocator", machine);
  std::printf("perf baseline written: %s\n", path.c_str());
}

/// User-count scaling sweep: slots/sec per solver at N in {5, 30, 100,
/// 1000}, through the same allocate_into hot path the sim loop uses
/// (recycled Allocation, no per-slot result copies). Iteration counts
/// scale down with N so the N=1000 rows finish quickly; exact solvers
/// are excluded (brute force is exponential, DP is quadratic in the
/// discretised budget and already covered by google-benchmark above).
void run_sweep() {
  const std::vector<std::size_t> sizes = {5, 30, 100, 1000, 10000};
  struct Solver {
    const char* name;
    std::unique_ptr<core::Allocator> allocator;
  };
  std::vector<Solver> solvers;
  solvers.push_back({"dv", std::make_unique<DvGreedyAllocator>(
                               DvGreedyAllocator::Mode::kCombined,
                               DvGreedyAllocator::Strategy::kScan)});
  solvers.push_back({"dv_heap", std::make_unique<DvGreedyAllocator>(
                                    DvGreedyAllocator::Mode::kCombined,
                                    DvGreedyAllocator::Strategy::kHeap)});
  solvers.push_back({"pavq", std::make_unique<PavqAllocator>()});
  solvers.push_back({"firefly", std::make_unique<FireflyAllocator>()});
  solvers.push_back({"lagrangian", std::make_unique<LagrangianAllocator>()});
  std::printf("%-12s %8s %14s %12s\n", "solver", "users", "slots/sec",
              "us/slot");
  for (const std::size_t n : sizes) {
    const SlotProblem problem = make_problem(n);
    const std::size_t iters = std::max<std::size_t>(20, 20000 / n);
    for (Solver& solver : solvers) {
      // The paper-literal scan's O(N^2 L) ascent takes seconds per slot
      // at N=10000 — skip it there; every other solver is near-linear.
      if (n > 1000 && std::string_view(solver.name) == "dv") continue;
      solver.allocator->reset();
      Allocation out;
      solver.allocator->allocate_into(problem, out);  // warm scratch
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        solver.allocator->allocate_into(problem, out);
        benchmark::DoNotOptimize(out.objective);
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const double slots_per_sec =
          secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
      std::printf("%-12s %8zu %14.1f %12.3f\n", solver.name, n, slots_per_sec,
                  slots_per_sec > 0.0 ? 1e6 / slots_per_sec : 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string perf_out;
  std::string machine;
  bool sweep = false;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--perf-out=", 0) == 0) {
      perf_out = arg.substr(11);
    } else if (arg.rfind("--machine=", 0) == 0) {
      machine = arg.substr(10);
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (sweep) {
    run_sweep();
    if (!perf_out.empty()) write_perf_baseline(perf_out, machine);
    return 0;
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!perf_out.empty()) write_perf_baseline(perf_out, machine);
  return 0;
}
