// Micro-benchmarks (google-benchmark): per-slot allocator latency vs
// user count. The paper runs Algorithm 1 every 15 ms slot for up to 15
// users on the server; these benches show the allocator is orders of
// magnitude below that budget even at hundreds of users, and compare it
// against the baselines and exact solvers.
#include <benchmark/benchmark.h>

#include "src/content/rate_function.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/fractional.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/util/rng.h"

namespace {

using namespace cvr;
using namespace cvr::core;

SlotProblem make_problem(std::size_t users, std::uint64_t seed = 99) {
  Rng rng(seed);
  SlotProblem problem;
  problem.params = QoeParams{0.02, 0.5};
  double total_min = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.25));
    problem.users.push_back(UserSlotContext::from_rate_function(
        f, rng.uniform(20.0, 100.0), rng.uniform(0.6, 1.0),
        rng.uniform(0.0, 6.0), rng.uniform(1.0, 500.0)));
    total_min += problem.users.back().rate[0];
  }
  problem.server_bandwidth = 36.0 * static_cast<double>(users);
  return problem;
}

void BM_DvGreedy(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  DvGreedyAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DvGreedy)->Arg(5)->Arg(15)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_DvGreedyHeap(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  DvGreedyAllocator alloc(DvGreedyAllocator::Mode::kCombined,
                          DvGreedyAllocator::Strategy::kHeap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DvGreedyHeap)->Arg(5)->Arg(15)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_Pavq(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  PavqAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_Pavq)->Arg(5)->Arg(30)->Arg(120);

void BM_Firefly(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  FireflyAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_Firefly)->Arg(5)->Arg(30)->Arg(120);

void BM_BruteForce(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  BruteForceAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_BruteForce)->Arg(3)->Arg(5)->Arg(7);

void BM_DpExact(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  DpAllocator alloc(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(problem));
  }
}
BENCHMARK(BM_DpExact)->Arg(5)->Arg(15)->Arg(30);

void BM_FractionalBound(benchmark::State& state) {
  const SlotProblem problem = make_problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fractional_upper_bound(problem));
  }
}
BENCHMARK(BM_FractionalBound)->Arg(5)->Arg(30)->Arg(120);

}  // namespace

BENCHMARK_MAIN();
