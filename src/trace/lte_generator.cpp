#include "src/trace/lte_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::trace {

LteGenerator::LteGenerator(LteGeneratorConfig config) : config_(config) {
  if (config_.duration_s <= 0.0 || config_.sample_period_s <= 0.0 ||
      config_.max_mbps <= config_.min_mbps ||
      config_.ar_coefficient < 0.0 || config_.ar_coefficient >= 1.0) {
    throw std::invalid_argument("LteGeneratorConfig: invalid parameters");
  }
}

NetworkTrace LteGenerator::generate(std::uint64_t seed,
                                    std::uint64_t index) const {
  SplitMix64 mixer(seed ^ (0xC3C3C3C35A5A5A5Aull + index * 0xD1B54A32D192ED03ull));
  Rng rng(mixer.next());

  const double mu = std::log(config_.median_mbps);
  const double rho = config_.ar_coefficient;
  const double innovation_sigma =
      config_.sigma_log * std::sqrt(std::max(0.0, 1.0 - rho * rho));

  std::vector<TraceSegment> segments;
  double log_level = rng.normal(mu, config_.sigma_log);
  bool fading = false;
  double elapsed = 0.0;
  while (elapsed < config_.duration_s) {
    const double take =
        std::min(config_.sample_period_s, config_.duration_s - elapsed);
    if (fading) {
      if (rng.bernoulli(config_.fade_exit_prob)) fading = false;
    } else if (rng.bernoulli(config_.fade_enter_prob)) {
      fading = true;
    }
    double mbps = std::exp(log_level);
    if (fading) mbps *= config_.fade_depth;
    mbps = std::clamp(mbps, config_.min_mbps, config_.max_mbps);
    segments.push_back({take, mbps});
    elapsed += take;
    log_level = mu + rho * (log_level - mu) + rng.normal(0.0, innovation_sigma);
  }
  return NetworkTrace("lte-" + std::to_string(seed) + "-" + std::to_string(index),
                      std::move(segments));
}

}  // namespace cvr::trace
