#include "src/trace/trace_io.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "src/util/csv.h"

namespace cvr::trace {

NetworkTrace trace_from_csv(const std::string& name, const std::string& text) {
  const CsvTable table = parse_csv(text);
  std::vector<TraceSegment> segments;
  segments.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 2) {
      throw std::runtime_error("trace csv: expected 2 columns, got " +
                               std::to_string(row.size()));
    }
    segments.push_back({row[0], row[1]});
  }
  return NetworkTrace(name, std::move(segments));
}

NetworkTrace load_trace(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  std::vector<TraceSegment> segments;
  segments.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 2) {
      throw std::runtime_error("trace csv: expected 2 columns in " + path);
    }
    segments.push_back({row[0], row[1]});
  }
  return NetworkTrace(path, std::move(segments));
}

std::string trace_to_csv(const NetworkTrace& trace) {
  CsvTable table;
  table.header = {"duration_s", "mbps"};
  table.rows.reserve(trace.segments().size());
  for (const auto& seg : trace.segments()) {
    table.rows.push_back({seg.duration_s, seg.mbps});
  }
  return to_csv(table);
}

void save_trace(const std::string& path, const NetworkTrace& trace) {
  CsvTable table;
  table.header = {"duration_s", "mbps"};
  for (const auto& seg : trace.segments()) {
    table.rows.push_back({seg.duration_s, seg.mbps});
  }
  write_csv_file(path, table);
}

std::vector<NetworkTrace> load_trace_directory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    throw std::runtime_error("load_trace_directory: not a directory: " +
                             directory);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<NetworkTrace> traces;
  traces.reserve(paths.size());
  for (const auto& path : paths) traces.push_back(load_trace(path));
  return traces;
}

}  // namespace cvr::trace
