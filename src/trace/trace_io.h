// CSV import/export for network traces, so users can feed real FCC/Ghent
// logs into the simulator instead of the synthetic generators. Format:
// two numeric columns `duration_s,mbps` (header optional, # comments ok).
#pragma once

#include <string>
#include <vector>

#include "src/trace/network_trace.h"

namespace cvr::trace {

/// Parses a trace from CSV text. Throws std::runtime_error on malformed
/// input (wrong column count, non-positive durations, negative rates).
NetworkTrace trace_from_csv(const std::string& name, const std::string& text);

/// Loads a trace from a CSV file; the trace name is the path.
NetworkTrace load_trace(const std::string& path);

/// Serialises a trace to CSV text with a header row.
std::string trace_to_csv(const NetworkTrace& trace);

/// Writes a trace to a CSV file.
void save_trace(const std::string& path, const NetworkTrace& trace);

/// Loads every `*.csv` file in a directory (non-recursive, sorted by
/// filename for determinism) as a trace pool. Throws std::runtime_error
/// if the directory is unreadable or any file is malformed; returns an
/// empty vector for a directory with no CSV files.
std::vector<NetworkTrace> load_trace_directory(const std::string& directory);

}  // namespace cvr::trace
