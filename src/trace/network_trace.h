// Network throughput traces.
//
// Section IV: "the network throughput in the dataset usually lasts for
// several seconds for each point, which is far larger than the interval
// between each time slot (15ms under 66 FPS). Therefore, we just let
// multiple continuous slots share the same bandwidth until their
// cumulative time reaches the trace's duration."
//
// A NetworkTrace is a piecewise-constant throughput signal: an ordered
// list of (duration seconds, Mbps) segments. SlotMapper converts it to a
// per-slot bandwidth series exactly as described above, wrapping around
// when the simulated horizon outlives the trace (the paper reuses short
// Ghent logs the same way).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace cvr::trace {

struct TraceSegment {
  double duration_s = 0.0;  ///< How long this throughput level persists.
  double mbps = 0.0;        ///< Available throughput during the segment.
};

class NetworkTrace {
 public:
  NetworkTrace() = default;
  NetworkTrace(std::string name, std::vector<TraceSegment> segments);

  const std::string& name() const { return name_; }
  const std::vector<TraceSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  /// Total wall-clock length of the trace in seconds.
  double duration_s() const { return total_duration_; }

  /// Throughput at absolute time t (seconds), wrapping past the end.
  /// Requires a non-empty trace.
  double bandwidth_at(double time_s) const;

  /// Time-weighted mean throughput. 0 for an empty trace.
  double mean_mbps() const;

  /// Clips every segment's throughput into [lo, hi] Mbps (Section IV sets
  /// 20..100 "to avoid trivial video quality selection").
  void clip(double lo_mbps, double hi_mbps);

  /// Truncates or extends (by wrapping) the trace to exactly `seconds`.
  NetworkTrace resampled_to(double seconds) const;

 private:
  std::string name_;
  std::vector<TraceSegment> segments_;
  double total_duration_ = 0.0;
};

/// Workload-characterisation statistics of a trace (the "dataset table"
/// of a networking paper): time-weighted bandwidth moments and dwell-
/// time distribution.
struct TraceStats {
  double duration_s = 0.0;
  std::size_t segments = 0;
  double mean_mbps = 0.0;      ///< Time-weighted.
  double std_mbps = 0.0;       ///< Time-weighted.
  double min_mbps = 0.0;
  double p50_mbps = 0.0;       ///< Time-weighted median.
  double max_mbps = 0.0;
  double mean_dwell_s = 0.0;   ///< Mean segment duration.
  double max_dwell_s = 0.0;
};

/// Computes TraceStats. Throws std::invalid_argument on an empty trace.
TraceStats summarize_trace(const NetworkTrace& trace);

// ---- Trace transformations (what-if experiment building blocks) ----

/// Multiplies every segment's throughput by `factor` (> 0): "what if
/// the network were 2x faster / half as fast".
NetworkTrace scaled(const NetworkTrace& trace, double factor);

/// Plays `a`, then `b`: regime-change experiments (e.g. broadband at
/// home, LTE on the move).
NetworkTrace concatenated(const NetworkTrace& a, const NetworkTrace& b);

/// Multiplies each segment's throughput by an independent log-normal
/// factor exp(N(0, sigma^2)): measurement jitter / small-scale fading on
/// top of a measured trace. Deterministic in `seed`.
NetworkTrace with_noise(const NetworkTrace& trace, double sigma,
                        std::uint64_t seed);

/// Walks a trace slot by slot. Consecutive slots share a segment's
/// bandwidth until the cumulative slot time exhausts the segment.
class SlotMapper {
 public:
  explicit SlotMapper(const NetworkTrace& trace,
                      double slot_seconds = kSlotSeconds);

  /// Bandwidth (Mbps) of slot `t` (0-based). Wraps around trace end.
  double bandwidth_for_slot(std::size_t slot) const;

  /// Materialises the first `slots` slots.
  std::vector<double> series(std::size_t slots) const;

  double slot_seconds() const { return slot_seconds_; }

 private:
  const NetworkTrace* trace_;
  double slot_seconds_;
};

}  // namespace cvr::trace
