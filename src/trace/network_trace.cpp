#include "src/trace/network_trace.h"

#include <algorithm>
#include <cmath>
#include <vector>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::trace {

NetworkTrace::NetworkTrace(std::string name, std::vector<TraceSegment> segments)
    : name_(std::move(name)), segments_(std::move(segments)) {
  for (const auto& seg : segments_) {
    if (!std::isfinite(seg.duration_s) || seg.duration_s <= 0.0) {
      throw std::invalid_argument("NetworkTrace: non-positive segment duration");
    }
    if (!std::isfinite(seg.mbps) || seg.mbps < 0.0) {
      throw std::invalid_argument(
          "NetworkTrace: negative or non-finite throughput");
    }
    total_duration_ += seg.duration_s;
  }
}

double NetworkTrace::bandwidth_at(double time_s) const {
  if (segments_.empty()) {
    throw std::logic_error("NetworkTrace::bandwidth_at on empty trace");
  }
  double t = std::fmod(time_s, total_duration_);
  if (t < 0.0) t += total_duration_;
  for (const auto& seg : segments_) {
    if (t < seg.duration_s) return seg.mbps;
    t -= seg.duration_s;
  }
  return segments_.back().mbps;  // floating-point edge at exactly the end
}

double NetworkTrace::mean_mbps() const {
  if (segments_.empty() || total_duration_ <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const auto& seg : segments_) weighted += seg.duration_s * seg.mbps;
  return weighted / total_duration_;
}

void NetworkTrace::clip(double lo_mbps, double hi_mbps) {
  for (auto& seg : segments_) seg.mbps = std::clamp(seg.mbps, lo_mbps, hi_mbps);
}

NetworkTrace NetworkTrace::resampled_to(double seconds) const {
  if (segments_.empty()) {
    throw std::logic_error("NetworkTrace::resampled_to on empty trace");
  }
  std::vector<TraceSegment> out;
  double remaining = seconds;
  std::size_t i = 0;
  while (remaining > 1e-12) {
    const TraceSegment& seg = segments_[i % segments_.size()];
    const double take = std::min(seg.duration_s, remaining);
    out.push_back({take, seg.mbps});
    remaining -= take;
    ++i;
  }
  return NetworkTrace(name_ + "@" + std::to_string(seconds) + "s", std::move(out));
}

TraceStats summarize_trace(const NetworkTrace& trace) {
  if (trace.empty()) {
    throw std::invalid_argument("summarize_trace: empty trace");
  }
  TraceStats stats;
  stats.duration_s = trace.duration_s();
  stats.segments = trace.segments().size();
  stats.mean_mbps = trace.mean_mbps();

  double weighted_sq = 0.0;
  double dwell_sum = 0.0;
  stats.min_mbps = trace.segments().front().mbps;
  stats.max_mbps = stats.min_mbps;
  for (const auto& seg : trace.segments()) {
    const double dev = seg.mbps - stats.mean_mbps;
    weighted_sq += seg.duration_s * dev * dev;
    dwell_sum += seg.duration_s;
    stats.min_mbps = std::min(stats.min_mbps, seg.mbps);
    stats.max_mbps = std::max(stats.max_mbps, seg.mbps);
    stats.max_dwell_s = std::max(stats.max_dwell_s, seg.duration_s);
  }
  stats.std_mbps = std::sqrt(weighted_sq / stats.duration_s);
  stats.mean_dwell_s = dwell_sum / static_cast<double>(stats.segments);

  // Time-weighted median: sort segments by mbps, walk until half the
  // duration is covered.
  std::vector<TraceSegment> sorted(trace.segments());
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceSegment& a, const TraceSegment& b) {
              return a.mbps < b.mbps;
            });
  double covered = 0.0;
  stats.p50_mbps = sorted.back().mbps;
  for (const auto& seg : sorted) {
    covered += seg.duration_s;
    if (covered >= stats.duration_s / 2.0) {
      stats.p50_mbps = seg.mbps;
      break;
    }
  }
  return stats;
}

NetworkTrace scaled(const NetworkTrace& trace, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("scaled: non-positive factor");
  }
  std::vector<TraceSegment> segments = trace.segments();
  for (auto& seg : segments) seg.mbps *= factor;
  return NetworkTrace(trace.name() + "*" + std::to_string(factor),
                      std::move(segments));
}

NetworkTrace concatenated(const NetworkTrace& a, const NetworkTrace& b) {
  std::vector<TraceSegment> segments = a.segments();
  segments.insert(segments.end(), b.segments().begin(), b.segments().end());
  return NetworkTrace(a.name() + "+" + b.name(), std::move(segments));
}

NetworkTrace with_noise(const NetworkTrace& trace, double sigma,
                        std::uint64_t seed) {
  if (sigma < 0.0) {
    throw std::invalid_argument("with_noise: negative sigma");
  }
  cvr::Rng rng(seed);
  std::vector<TraceSegment> segments = trace.segments();
  for (auto& seg : segments) seg.mbps *= rng.lognormal(0.0, sigma);
  return NetworkTrace(trace.name() + "~" + std::to_string(sigma),
                      std::move(segments));
}

SlotMapper::SlotMapper(const NetworkTrace& trace, double slot_seconds)
    : trace_(&trace), slot_seconds_(slot_seconds) {
  if (trace.empty()) {
    throw std::invalid_argument("SlotMapper: empty trace");
  }
  if (slot_seconds <= 0.0) {
    throw std::invalid_argument("SlotMapper: non-positive slot duration");
  }
}

double SlotMapper::bandwidth_for_slot(std::size_t slot) const {
  // A slot takes the bandwidth active at its start time, matching the
  // paper's "multiple continuous slots share the same bandwidth".
  return trace_->bandwidth_at(static_cast<double>(slot) * slot_seconds_);
}

std::vector<double> SlotMapper::series(std::size_t slots) const {
  std::vector<double> out;
  out.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) out.push_back(bandwidth_for_slot(t));
  return out;
}

}  // namespace cvr::trace
