// Trace repository: the Section-IV dataset layer.
//
// "We randomly generate half of the requested traces from the 'Web
// browsing' category of the FCC dataset ... The other half of the
// requested traces are generated from Ghent's dataset."
//
// The repository pre-builds a pool of FCC-style and LTE-style traces and
// hands out per-(run, user) assignments: even user indices draw from the
// FCC pool and odd ones from the LTE pool, with a run-dependent rotation
// so the 100 runs of an experiment see 100 different trace combinations.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/fcc_generator.h"
#include "src/trace/lte_generator.h"
#include "src/trace/network_trace.h"

namespace cvr::trace {

struct TraceRepositoryConfig {
  std::size_t fcc_pool_size = 100;
  std::size_t lte_pool_size = 40;  ///< Ghent has 40 logs; reuse is expected.
  FccGeneratorConfig fcc;
  LteGeneratorConfig lte;
};

class TraceRepository {
 public:
  TraceRepository(TraceRepositoryConfig config, std::uint64_t seed);

  /// Builds a repository from externally supplied pools — e.g. real FCC
  /// and Ghent logs loaded with load_trace_directory(). Both pools must
  /// be non-empty (throws std::invalid_argument otherwise).
  TraceRepository(std::vector<NetworkTrace> fcc_pool,
                  std::vector<NetworkTrace> lte_pool);

  std::size_t fcc_count() const { return fcc_pool_.size(); }
  std::size_t lte_count() const { return lte_pool_.size(); }

  const NetworkTrace& fcc(std::size_t i) const { return fcc_pool_.at(i); }
  const NetworkTrace& lte(std::size_t i) const { return lte_pool_.at(i); }

  /// Trace for user `user` in run `run`: users alternate between the two
  /// datasets; the run index rotates through each pool deterministically.
  const NetworkTrace& assign(std::size_t run, std::size_t user) const;

  /// Convenience: one trace per user for a run.
  std::vector<const NetworkTrace*> assign_all(std::size_t run,
                                              std::size_t users) const;

 private:
  std::vector<NetworkTrace> fcc_pool_;
  std::vector<NetworkTrace> lte_pool_;
};

}  // namespace cvr::trace
