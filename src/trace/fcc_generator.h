// Synthetic FCC-broadband-style throughput traces.
//
// The paper draws half of its traces from the "Web browsing" category of
// the FCC Measuring Broadband America raw data (March 2021 collection).
// Those logs are per-connection throughput samples where a measured level
// persists for several seconds. We reproduce the statistical shape the
// simulation consumes (DESIGN.md Section 3): piecewise-constant levels
// with multi-second dwell times, a heavy-tailed (log-normal) level
// distribution, mild autocorrelation between consecutive levels, clipped
// to the paper's 20-100 Mbps working range.
#pragma once

#include <cstdint>

#include "src/trace/network_trace.h"
#include "src/util/rng.h"

namespace cvr::trace {

struct FccGeneratorConfig {
  double duration_s = 300.0;   ///< Section IV uses 300 s traces.
  double min_mbps = 20.0;      ///< Clip floor ("avoid trivial selection").
  double max_mbps = 100.0;     ///< Clip ceiling.
  double median_mbps = 55.0;   ///< Log-normal median of the level process.
  double sigma_log = 0.45;     ///< Log-domain spread (heavy tail).
  double mean_dwell_s = 5.0;   ///< Mean seconds a level persists.
  double min_dwell_s = 1.0;    ///< Floor on dwell time.
  double level_correlation = 0.3;  ///< AR(1) mixing of consecutive levels.
};

/// Deterministic generator: the same (config, seed, index) triple always
/// produces the same trace.
class FccGenerator {
 public:
  explicit FccGenerator(FccGeneratorConfig config = {});

  /// Generates the `index`-th trace of the stream identified by `seed`.
  NetworkTrace generate(std::uint64_t seed, std::uint64_t index = 0) const;

 private:
  FccGeneratorConfig config_;
};

}  // namespace cvr::trace
