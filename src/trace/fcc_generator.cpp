#include "src/trace/fcc_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::trace {

FccGenerator::FccGenerator(FccGeneratorConfig config) : config_(config) {
  if (config_.duration_s <= 0.0 || config_.min_mbps < 0.0 ||
      config_.max_mbps <= config_.min_mbps || config_.mean_dwell_s <= 0.0) {
    throw std::invalid_argument("FccGeneratorConfig: invalid parameters");
  }
}

NetworkTrace FccGenerator::generate(std::uint64_t seed,
                                    std::uint64_t index) const {
  // Mix seed and index so per-user traces are independent streams.
  SplitMix64 mixer(seed ^ (0xA5A5A5A5DEADBEEFull + index * 0x9E3779B97F4A7C15ull));
  Rng rng(mixer.next());

  const double mu = std::log(config_.median_mbps);
  std::vector<TraceSegment> segments;
  double elapsed = 0.0;
  double log_level = rng.normal(mu, config_.sigma_log);
  while (elapsed < config_.duration_s) {
    const double dwell = std::max(
        config_.min_dwell_s, rng.exponential(1.0 / config_.mean_dwell_s));
    const double take = std::min(dwell, config_.duration_s - elapsed);
    const double mbps =
        std::clamp(std::exp(log_level), config_.min_mbps, config_.max_mbps);
    segments.push_back({take, mbps});
    elapsed += take;
    // AR(1) in log domain: rho * previous + innovation.
    const double rho = config_.level_correlation;
    const double innovation =
        rng.normal(mu, config_.sigma_log) - mu;
    log_level = mu + rho * (log_level - mu) +
                std::sqrt(std::max(0.0, 1.0 - rho * rho)) * innovation;
  }
  return NetworkTrace("fcc-" + std::to_string(seed) + "-" + std::to_string(index),
                      std::move(segments));
}

}  // namespace cvr::trace
