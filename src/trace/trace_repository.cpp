#include "src/trace/trace_repository.h"

#include <stdexcept>

namespace cvr::trace {

TraceRepository::TraceRepository(TraceRepositoryConfig config,
                                 std::uint64_t seed) {
  if (config.fcc_pool_size == 0 || config.lte_pool_size == 0) {
    throw std::invalid_argument("TraceRepository: empty pool");
  }
  FccGenerator fcc_gen(config.fcc);
  LteGenerator lte_gen(config.lte);
  fcc_pool_.reserve(config.fcc_pool_size);
  for (std::size_t i = 0; i < config.fcc_pool_size; ++i) {
    fcc_pool_.push_back(fcc_gen.generate(seed, i));
  }
  lte_pool_.reserve(config.lte_pool_size);
  for (std::size_t i = 0; i < config.lte_pool_size; ++i) {
    lte_pool_.push_back(lte_gen.generate(seed + 1, i));
  }
}

TraceRepository::TraceRepository(std::vector<NetworkTrace> fcc_pool,
                                 std::vector<NetworkTrace> lte_pool)
    : fcc_pool_(std::move(fcc_pool)), lte_pool_(std::move(lte_pool)) {
  if (fcc_pool_.empty() || lte_pool_.empty()) {
    throw std::invalid_argument("TraceRepository: empty external pool");
  }
  for (const auto& pool : {&fcc_pool_, &lte_pool_}) {
    for (const auto& trace : *pool) {
      if (trace.empty()) {
        throw std::invalid_argument("TraceRepository: empty trace in pool");
      }
    }
  }
}

const NetworkTrace& TraceRepository::assign(std::size_t run,
                                            std::size_t user) const {
  // Even users -> FCC pool, odd users -> LTE pool ("half ... half").
  // The rotation uses a large odd stride so consecutive runs do not walk
  // the pools in lockstep.
  if (user % 2 == 0) {
    const std::size_t idx = (user / 2 + run * 31) % fcc_pool_.size();
    return fcc_pool_[idx];
  }
  const std::size_t idx = (user / 2 + run * 17) % lte_pool_.size();
  return lte_pool_[idx];
}

std::vector<const NetworkTrace*> TraceRepository::assign_all(
    std::size_t run, std::size_t users) const {
  std::vector<const NetworkTrace*> out;
  out.reserve(users);
  for (std::size_t u = 0; u < users; ++u) out.push_back(&assign(run, u));
  return out;
}

}  // namespace cvr::trace
