// Synthetic 4G/LTE (Ghent-dataset-style) throughput traces.
//
// The other half of the paper's traces come from the Ghent University
// HTTP/2-over-LTE dataset (40 logs, ~5 h total; the paper reuses logs
// because the dataset is small). Mobile LTE throughput differs from fixed
// broadband: sampled at ~1 s granularity, strongly autocorrelated, with
// occasional deep fades (handover / coverage dips). We reproduce that
// shape with an AR(1)-in-log process plus a two-state fade chain.
#pragma once

#include <cstdint>

#include "src/trace/network_trace.h"
#include "src/util/rng.h"

namespace cvr::trace {

struct LteGeneratorConfig {
  double duration_s = 300.0;
  double sample_period_s = 1.0;  ///< Ghent logs are per-second.
  double min_mbps = 20.0;
  double max_mbps = 100.0;
  double median_mbps = 45.0;
  double sigma_log = 0.35;
  double ar_coefficient = 0.85;   ///< Strong temporal correlation.
  double fade_enter_prob = 0.02;  ///< Per-sample chance to enter a fade.
  double fade_exit_prob = 0.25;   ///< Per-sample chance to leave a fade.
  double fade_depth = 0.45;       ///< Multiplier applied while fading.
};

class LteGenerator {
 public:
  explicit LteGenerator(LteGeneratorConfig config = {});

  NetworkTrace generate(std::uint64_t seed, std::uint64_t index = 0) const;

 private:
  LteGeneratorConfig config_;
};

}  // namespace cvr::trace
