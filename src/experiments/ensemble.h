// Ensemble runner: the one-call experiment API.
//
// Every figure bench repeats the same choreography — build the trace
// repository or the system world, instantiate allocators by name,
// compare them over repeats, optionally write a report. EnsembleSpec
// captures that choreography declaratively so downstream users (and our
// own CLI) can run a full comparison with one call.
//
// Execution model: the ensemble is a grid of (algorithm, repeat) cells.
// Each cell is an independent unit of work — a fresh allocator run over
// one repeat of the platform — whose randomness is derived entirely
// from (spec.seed, repeat): both platforms split the master seed into
// per-repeat streams (SystemSim via SplitMix64 mixing of the repeat
// index, TraceSimulation via per-run offsets expanded through
// SplitMix64 engine seeding), so a cell's result never depends on when
// or on which thread it executes. The repeat — and deliberately *not*
// the algorithm — keys the stream: all arms of a repeat see identical
// motion and network traces, preserving the paper's paired-comparison
// design. With threads > 1 the cells run on a cvr::ThreadPool and the
// results are reduced in spec order (algorithm-major, repeat-minor),
// making parallel output bit-identical to the serial oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/faults/fault_schedule.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"
#include "src/telemetry/telemetry.h"

namespace cvr::experiments {

struct EnsembleSpec {
  enum class Platform {
    kTrace,   ///< Section-IV simulator (perfect knowledge).
    kSystem,  ///< Sections V-VI emulation (estimates + physics).
  };

  /// Which evaluation platform runs the cells.
  Platform platform = Platform::kTrace;
  /// Concurrent users per repeat (the N of the slot problem).
  std::size_t users = 5;
  /// Slots per repeat (1980 = 30 s at 66 FPS).
  std::size_t slots = 1980;
  /// Independent repeats per algorithm; outcomes pool run-major.
  std::size_t repeats = 5;
  /// Registry names ("dv", "pavq", ...); see core::allocator_names().
  std::vector<std::string> algorithms = {"dv", "pavq", "firefly"};
  /// Master seed; each cell derives its stream from (seed, repeat) only.
  std::uint64_t seed = 2022;
  /// QoE weights; negative alpha means the platform default
  /// (0.02 trace / 0.1 system).
  double alpha = -1.0;
  double beta = 0.5;
  /// kSystem only: 2 routers turns interference on.
  std::size_t routers = 1;
  /// Optional: write CSV reports under this prefix (empty = none).
  std::string report_prefix;
  /// Worker threads for the (algorithm, repeat) cell grid:
  ///   1 (default) — the legacy serial path, kept as the determinism
  ///                 oracle: one allocator instance per arm, reset
  ///                 between repeats, cells run in spec order on the
  ///                 calling thread;
  ///   0           — one worker per hardware thread;
  ///   N > 1       — N pool workers, each cell on a fresh allocator
  ///                 instance, results reduced in spec order.
  /// Any value yields bit-identical ArmResult::outcomes; only the
  /// wall-clock timings differ.
  std::size_t threads = 1;
  /// kSystem only: discrete fault injection (docs/resilience.md). Every
  /// arm and repeat replays the same schedule, preserving the paired
  /// design; the default empty schedule leaves every cell bit-identical
  /// to a fault-free run. Rejected (throws) on kTrace, which has no
  /// churn/blackout machinery to honour it.
  faults::FaultSchedule faults;
  /// Realistic-workload pack (docs/workloads.md). All three knobs are
  /// off by default, leaving every cell bit-identical to a build
  /// without the pack (guard-tested).
  ///
  /// kSystem only: Wi-Fi contention channel — airtime-fair sharing,
  /// MCS-dependent goodput, deterministic retry/backoff. Rejected
  /// (throws) when enabled on kTrace: the trace platform has no
  /// routers to put a BSS behind.
  net::WifiContentionConfig wifi;
  /// Both platforms: HEVC I/P-frame size process replacing the smooth
  /// CRF point estimate.
  content::HevcProcessConfig hevc;
  /// kSystem only: bandwidth-estimator arm (kEma default; kProbing
  /// schedules budget-consuming probes). Rejected (throws) when
  /// kProbing on kTrace: the trace platform has perfect knowledge and
  /// no estimator to probe for.
  system::EstimatorArm estimator_arm = system::EstimatorArm::kEma;
  net::ProbingConfig probing;
  /// Observability mode (docs/observability.md): kOff (default) leaves
  /// the hot path untouched and the outputs byte-identical to a build
  /// without the subsystem; kCounters collects per-arm counters and
  /// phase-duration histograms; kTrace additionally captures a Chrome
  /// trace of repeat 0 of every arm. Outcomes are bit-identical across
  /// all three modes — telemetry is measurement metadata, never input.
  telemetry::Mode telemetry = telemetry::Mode::kOff;
  /// Optional Chrome trace output path (chrome://tracing / Perfetto
  /// JSON). Arms appear as process groups "<algorithm>/server" and
  /// "<algorithm>/user k". Requires telemetry == kTrace (else the spec
  /// is rejected); empty = no trace file.
  std::string trace_out;
};

/// Runs the ensemble and returns one ArmResult per algorithm, in spec
/// order, with per-repeat wall-clock timings in ArmResult::run_wall_ms.
///
/// Validation contract — throws std::invalid_argument, naming the
/// offending field and value, iff any of:
///   * users == 0, slots == 0, or repeats == 0;
///   * algorithms is empty, or contains a name unknown to
///     core::make_allocator() (the message lists the known names);
///   * routers is neither 1 nor 2 (checked on both platforms even
///     though only kSystem consumes it, so a bad spec fails fast);
///   * faults is non-empty on Platform::kTrace (fault injection is a
///     system-emulation feature);
///   * wifi.enabled or estimator_arm == kProbing on Platform::kTrace
///     (both are access-network/estimator features of the system
///     emulation; hevc works on either platform);
///   * trace_out is non-empty while telemetry != kTrace (a trace file
///     needs trace capture on).
/// Everything else is accepted as-is: alpha/beta are not range-checked
/// (negative alpha selects the platform default; any beta is a valid
/// variance weight), threads has no invalid values (see the knob
/// docs), and report_prefix is only touched when non-empty. Errors
/// from deeper layers (e.g. an unwritable report path) propagate
/// unchanged.
std::vector<sim::ArmResult> run_ensemble(const EnsembleSpec& spec);

/// An ensemble's results plus its telemetry summary.
struct EnsembleRun {
  /// One ArmResult per algorithm, spec order — exactly run_ensemble()'s
  /// return value (bit-identical regardless of telemetry mode).
  std::vector<sim::ArmResult> arms;
  /// Per-arm perf summary; empty() when spec.telemetry == kOff.
  telemetry::PerfReport perf;
};

/// run_ensemble() plus telemetry: when spec.telemetry != kOff, each arm
/// collects into its own MetricsRegistry (merged across repeats and
/// worker threads), summarized into EnsembleRun::perf; with a non-empty
/// report_prefix the summary is also written as
/// "<prefix>_perf.csv" (report::write_perf_csv). When spec.telemetry ==
/// kTrace and trace_out is non-empty, repeat 0 of every arm is captured
/// and the merged Chrome trace written to trace_out (arm a's processes
/// get pid offset a * (users + 1) and an "<algorithm>/" name prefix).
/// Same validation contract as run_ensemble().
EnsembleRun run_ensemble_with_perf(const EnsembleSpec& spec);

}  // namespace cvr::experiments
