// Ensemble runner: the one-call experiment API.
//
// Every figure bench repeats the same choreography — build the trace
// repository or the system world, instantiate allocators by name,
// compare them over repeats, optionally write a report. EnsembleSpec
// captures that choreography declaratively so downstream users (and our
// own CLI) can run a full comparison with one call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/system/system_sim.h"

namespace cvr::experiments {

struct EnsembleSpec {
  enum class Platform {
    kTrace,   ///< Section-IV simulator (perfect knowledge).
    kSystem,  ///< Sections V-VI emulation (estimates + physics).
  };

  Platform platform = Platform::kTrace;
  std::size_t users = 5;
  std::size_t slots = 1980;
  std::size_t repeats = 5;
  /// Registry names ("dv", "pavq", ...); see core::allocator_names().
  std::vector<std::string> algorithms = {"dv", "pavq", "firefly"};
  std::uint64_t seed = 2022;
  /// QoE weights; negative alpha means the platform default
  /// (0.02 trace / 0.1 system).
  double alpha = -1.0;
  double beta = 0.5;
  /// kSystem only: 2 routers turns interference on.
  std::size_t routers = 1;
  /// Optional: write CSV reports under this prefix (empty = none).
  std::string report_prefix;
};

/// Runs the ensemble and returns one ArmResult per algorithm, in spec
/// order. Throws std::invalid_argument on an unknown algorithm name or
/// inconsistent spec (zero users/slots/repeats, bad router count).
std::vector<sim::ArmResult> run_ensemble(const EnsembleSpec& spec);

}  // namespace cvr::experiments
