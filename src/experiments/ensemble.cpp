#include "src/experiments/ensemble.h"

#include <memory>
#include <stdexcept>

#include "src/core/registry.h"
#include "src/report/report.h"

namespace cvr::experiments {

std::vector<sim::ArmResult> run_ensemble(const EnsembleSpec& spec) {
  if (spec.users == 0 || spec.slots == 0 || spec.repeats == 0) {
    throw std::invalid_argument("EnsembleSpec: zero users/slots/repeats");
  }
  if (spec.algorithms.empty()) {
    throw std::invalid_argument("EnsembleSpec: no algorithms");
  }
  if (spec.routers != 1 && spec.routers != 2) {
    throw std::invalid_argument("EnsembleSpec: routers must be 1 or 2");
  }

  const core::AllocatorContext context =
      spec.platform == EnsembleSpec::Platform::kTrace
          ? core::AllocatorContext::kTraceSimulation
          : core::AllocatorContext::kSystem;
  std::vector<std::unique_ptr<core::Allocator>> allocators;
  std::vector<core::Allocator*> arm_ptrs;
  for (const std::string& name : spec.algorithms) {
    auto allocator = core::make_allocator(name, context);
    if (allocator == nullptr) {
      throw std::invalid_argument("EnsembleSpec: unknown algorithm '" + name +
                                  "'");
    }
    arm_ptrs.push_back(allocator.get());
    allocators.push_back(std::move(allocator));
  }

  std::vector<sim::ArmResult> arms;
  if (spec.platform == EnsembleSpec::Platform::kTrace) {
    trace::TraceRepositoryConfig repo_config;
    const double seconds =
        static_cast<double>(spec.slots) * cvr::kSlotSeconds;
    repo_config.fcc.duration_s = seconds;
    repo_config.lte.duration_s = seconds;
    const trace::TraceRepository repo(repo_config, spec.seed);
    sim::TraceSimConfig config;
    config.users = spec.users;
    config.slots = spec.slots;
    config.seed = spec.seed;
    config.params =
        core::QoeParams{spec.alpha < 0 ? 0.02 : spec.alpha, spec.beta};
    const sim::TraceSimulation simulation(config, repo);
    arms = simulation.compare(arm_ptrs, spec.repeats);
  } else {
    system::SystemSimConfig config =
        spec.routers == 2 ? system::setup_two_routers(spec.users)
                          : system::setup_one_router(spec.users);
    config.slots = spec.slots;
    config.seed = spec.seed;
    config.server.params =
        core::QoeParams{spec.alpha < 0 ? 0.1 : spec.alpha, spec.beta};
    const system::SystemSim simulation(config);
    arms = simulation.compare(arm_ptrs, spec.repeats);
  }

  if (!spec.report_prefix.empty()) {
    report::write_report(arms, spec.report_prefix);
  }
  return arms;
}

}  // namespace cvr::experiments
