#include "src/experiments/ensemble.h"

#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/registry.h"
#include "src/report/report.h"
#include "src/util/thread_pool.h"

namespace cvr::experiments {

namespace {

std::string known_names_list() {
  std::ostringstream out;
  const std::vector<std::string> names = core::allocator_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << names[i];
  }
  return out.str();
}

void validate(const EnsembleSpec& spec) {
  if (spec.users == 0) {
    throw std::invalid_argument("EnsembleSpec: users must be >= 1 (got 0)");
  }
  if (spec.slots == 0) {
    throw std::invalid_argument("EnsembleSpec: slots must be >= 1 (got 0)");
  }
  if (spec.repeats == 0) {
    throw std::invalid_argument("EnsembleSpec: repeats must be >= 1 (got 0)");
  }
  if (spec.algorithms.empty()) {
    throw std::invalid_argument(
        "EnsembleSpec: algorithms must name at least one allocator (got an "
        "empty list); known names: " +
        known_names_list());
  }
  if (spec.routers != 1 && spec.routers != 2) {
    throw std::invalid_argument("EnsembleSpec: routers must be 1 or 2 (got " +
                                std::to_string(spec.routers) + ")");
  }
  if (spec.platform == EnsembleSpec::Platform::kTrace &&
      !spec.faults.empty()) {
    throw std::invalid_argument(
        "EnsembleSpec: faults requires Platform::kSystem (the Section-IV "
        "trace simulator has no churn/blackout machinery; got " +
        std::to_string(spec.faults.size()) + " events on kTrace)");
  }
  if (spec.platform == EnsembleSpec::Platform::kTrace &&
      spec.wifi.enabled) {
    throw std::invalid_argument(
        "EnsembleSpec: wifi.enabled requires Platform::kSystem (the "
        "Section-IV trace simulator has no routers to put a BSS behind)");
  }
  if (spec.platform == EnsembleSpec::Platform::kTrace &&
      spec.estimator_arm == system::EstimatorArm::kProbing) {
    throw std::invalid_argument(
        "EnsembleSpec: estimator_arm == kProbing requires Platform::kSystem "
        "(the trace simulator has perfect knowledge; there is nothing to "
        "probe for)");
  }
  if (!spec.trace_out.empty() &&
      spec.telemetry != telemetry::Mode::kTrace) {
    throw std::invalid_argument(
        "EnsembleSpec: trace_out ('" + spec.trace_out +
        "') requires telemetry == kTrace (got mode '" +
        telemetry::mode_name(spec.telemetry) + "')");
  }
}

/// Per-arm telemetry sinks. One MetricsRegistry per arm (its lock-free
/// shards absorb every repeat, on any worker thread); one TraceBuffer
/// per arm, fed only by repeat 0 so each buffer keeps a single writer.
struct TelemetrySinks {
  telemetry::Mode mode = telemetry::Mode::kOff;
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> registries;
  std::vector<std::unique_ptr<telemetry::TraceBuffer>> traces;

  explicit TelemetrySinks(const EnsembleSpec& spec) : mode(spec.telemetry) {
    if (mode == telemetry::Mode::kOff) return;
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      registries.push_back(std::make_unique<telemetry::MetricsRegistry>());
      if (mode == telemetry::Mode::kTrace) {
        traces.push_back(std::make_unique<telemetry::TraceBuffer>());
      }
    }
  }

  /// The trace sink for cell (arm, repeat): repeat 0 only.
  telemetry::TraceBuffer* trace_for(std::size_t arm,
                                    std::size_t repeat) const {
    if (mode != telemetry::Mode::kTrace || repeat != 0) return nullptr;
    return traces[arm].get();
  }

  telemetry::MetricsRegistry* registry_for(std::size_t arm) const {
    return mode == telemetry::Mode::kOff ? nullptr : registries[arm].get();
  }
};

struct CellOutput {
  std::vector<sim::UserOutcome> outcomes;
  double wall_ms = 0.0;
};

template <typename RunRepeat>
CellOutput timed_cell(core::Allocator& allocator, std::size_t arm,
                      std::size_t repeat, const RunRepeat& run_repeat) {
  const auto start = std::chrono::steady_clock::now();
  CellOutput cell;
  cell.outcomes = run_repeat(allocator, arm, repeat);
  cell.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return cell;
}

/// Executes the (algorithm, repeat) cell grid and reduces it into one
/// ArmResult per algorithm, in spec order. `run_repeat` is the platform
/// binding: (allocator, arm, repeat) -> per-user outcomes, deterministic
/// in (spec.seed, repeat) alone — the arm index only routes telemetry to
/// the arm's sinks, never into simulation input — see the
/// execution-model note in ensemble.h for why that makes the reduction
/// order the only thing parallelism has to preserve.
template <typename RunRepeat>
std::vector<sim::ArmResult> run_cells(const EnsembleSpec& spec,
                                      core::AllocatorContext context,
                                      const RunRepeat& run_repeat) {
  std::vector<std::unique_ptr<core::Allocator>> allocators;
  allocators.reserve(spec.algorithms.size());
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    auto allocator = core::make_allocator(spec.algorithms[i], context);
    if (allocator == nullptr) {
      throw std::invalid_argument(
          "EnsembleSpec: unknown algorithm '" + spec.algorithms[i] +
          "' (algorithms[" + std::to_string(i) +
          "]); known names: " + known_names_list());
    }
    allocators.push_back(std::move(allocator));
  }

  std::vector<sim::ArmResult> arms(allocators.size());
  for (std::size_t a = 0; a < arms.size(); ++a) {
    arms[a].algorithm = std::string(allocators[a]->name());
    arms[a].outcomes.reserve(spec.repeats * spec.users);
    arms[a].run_wall_ms.reserve(spec.repeats);
  }
  auto reduce = [&arms](std::size_t a, CellOutput cell) {
    arms[a].outcomes.insert(arms[a].outcomes.end(), cell.outcomes.begin(),
                            cell.outcomes.end());
    arms[a].run_wall_ms.push_back(cell.wall_ms);
  };

  const std::size_t threads = resolve_thread_count(spec.threads);
  if (threads <= 1) {
    // The serial oracle: exactly the legacy compare() loop — one
    // allocator instance per arm, reset by run() between repeats, cells
    // executed in spec order on the calling thread.
    for (std::size_t a = 0; a < arms.size(); ++a) {
      for (std::size_t r = 0; r < spec.repeats; ++r) {
        reduce(a, timed_cell(*allocators[a], a, r, run_repeat));
      }
    }
    return arms;
  }

  // Parallel path: each cell runs a *fresh* allocator instance (run()
  // resets its argument, so fresh == reset) so cells share no mutable
  // state; getting the futures in submission order reduces arm-major,
  // repeat-minor — bit-identical to the serial oracle.
  ThreadPool pool(threads);
  std::vector<std::future<CellOutput>> cells;
  cells.reserve(arms.size() * spec.repeats);
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t r = 0; r < spec.repeats; ++r) {
      cells.push_back(pool.submit([&spec, &run_repeat, context, a, r] {
        const auto allocator = core::make_allocator(spec.algorithms[a], context);
        return timed_cell(*allocator, a, r, run_repeat);
      }));
    }
  }
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t r = 0; r < spec.repeats; ++r) {
      reduce(a, cells[a * spec.repeats + r].get());
    }
  }
  return arms;
}

}  // namespace

EnsembleRun run_ensemble_with_perf(const EnsembleSpec& spec) {
  validate(spec);
  const TelemetrySinks sinks(spec);

  EnsembleRun run;
  if (spec.platform == EnsembleSpec::Platform::kTrace) {
    trace::TraceRepositoryConfig repo_config;
    const double seconds =
        static_cast<double>(spec.slots) * cvr::kSlotSeconds;
    repo_config.fcc.duration_s = seconds;
    repo_config.lte.duration_s = seconds;
    const trace::TraceRepository repo(repo_config, spec.seed);
    sim::TraceSimConfig config;
    config.users = spec.users;
    config.slots = spec.slots;
    config.seed = spec.seed;
    config.params =
        core::QoeParams{spec.alpha < 0 ? 0.02 : spec.alpha, spec.beta};
    config.hevc = spec.hevc;
    const sim::TraceSimulation simulation(config, repo);
    run.arms = run_cells(
        spec, core::AllocatorContext::kTraceSimulation,
        [&simulation, &sinks](core::Allocator& allocator, std::size_t a,
                              std::size_t r) {
          if (sinks.mode == telemetry::Mode::kOff) {
            return simulation.run(allocator, r);
          }
          telemetry::Collector collector(sinks.mode, sinks.registry_for(a),
                                         sinks.trace_for(a, r));
          return simulation.run(allocator, r, nullptr, &collector);
        });
  } else {
    system::SystemSimConfig config =
        spec.routers == 2 ? system::setup_two_routers(spec.users)
                          : system::setup_one_router(spec.users);
    config.slots = spec.slots;
    config.seed = spec.seed;
    config.server.params =
        core::QoeParams{spec.alpha < 0 ? 0.1 : spec.alpha, spec.beta};
    config.faults = spec.faults;
    config.channel.contention = spec.wifi;
    config.server.hevc = spec.hevc;
    config.server.estimator_arm = spec.estimator_arm;
    config.server.probing = spec.probing;
    const system::SystemSim simulation(config);
    run.arms = run_cells(
        spec, core::AllocatorContext::kSystem,
        [&simulation, &sinks](core::Allocator& allocator, std::size_t a,
                              std::size_t r) {
          if (sinks.mode == telemetry::Mode::kOff) {
            return simulation.run(allocator, r);
          }
          telemetry::Collector collector(sinks.mode, sinks.registry_for(a),
                                         sinks.trace_for(a, r));
          return simulation.run(allocator, r, nullptr, &collector);
        });
  }

  if (sinks.mode != telemetry::Mode::kOff) {
    run.perf.mode = sinks.mode;
    for (std::size_t a = 0; a < run.arms.size(); ++a) {
      double wall_ms = 0.0;
      for (const double ms : run.arms[a].run_wall_ms) wall_ms += ms;
      run.perf.arms.push_back(telemetry::summarize_arm(
          run.arms[a].algorithm, sinks.registries[a]->snapshot(), wall_ms));
    }
  }

  if (sinks.mode == telemetry::Mode::kTrace && !spec.trace_out.empty()) {
    telemetry::TraceBuffer merged;
    const std::uint32_t pids_per_arm =
        static_cast<std::uint32_t>(spec.users) + 1;
    for (std::size_t a = 0; a < run.arms.size(); ++a) {
      merged.append(*sinks.traces[a],
                    static_cast<std::uint32_t>(a) * pids_per_arm,
                    run.arms[a].algorithm);
    }
    merged.write(spec.trace_out);
  }

  if (!spec.report_prefix.empty()) {
    report::write_report(run.arms, spec.report_prefix);
    if (!run.perf.empty()) {
      report::write_perf_csv(spec.report_prefix + "_perf.csv", run.perf);
    }
  }
  return run;
}

std::vector<sim::ArmResult> run_ensemble(const EnsembleSpec& spec) {
  return run_ensemble_with_perf(spec).arms;
}

}  // namespace cvr::experiments
