#include "src/faults/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::faults {

void FaultSchedule::add(FaultEvent event) {
  if (event.duration_slots == 0) {
    throw std::invalid_argument("FaultSchedule: zero-duration event");
  }
  if (event.start_slot >
      std::numeric_limits<std::size_t>::max() - event.duration_slots) {
    throw std::invalid_argument("FaultSchedule: start + duration overflows");
  }
  if (event.type == FaultType::kRouterOutage &&
      (!std::isfinite(event.severity) || event.severity < 0.0 ||
       event.severity >= 1.0)) {
    throw std::invalid_argument(
        "FaultSchedule: router outage severity must be in [0, 1)");
  }
  const auto at = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.start_slot < b.start_slot;
      });
  events_.insert(at, event);
}

namespace {
bool user_event_active(const std::vector<FaultEvent>& events, FaultType type,
                       std::size_t target, std::size_t slot) {
  for (const FaultEvent& e : events) {
    if (e.start_slot > slot) break;  // sorted by start_slot
    if (e.type == type && e.target == target && e.active_at(slot)) return true;
  }
  return false;
}
}  // namespace

bool FaultSchedule::user_disconnected(std::size_t user,
                                      std::size_t slot) const {
  return user_event_active(events_, FaultType::kUserDisconnect, user, slot);
}

bool FaultSchedule::pose_blackout(std::size_t user, std::size_t slot) const {
  return user_event_active(events_, FaultType::kPoseBlackout, user, slot);
}

bool FaultSchedule::ack_stalled(std::size_t user, std::size_t slot) const {
  return user_event_active(events_, FaultType::kAckStall, user, slot);
}

double FaultSchedule::router_capacity_multiplier(std::size_t router,
                                                 std::size_t slot) const {
  double multiplier = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.start_slot > slot) break;
    if (e.type == FaultType::kRouterOutage && e.target == router &&
        e.active_at(slot)) {
      multiplier *= e.severity;
    }
  }
  return multiplier;
}

bool FaultSchedule::cache_flush_at(std::size_t slot) const {
  for (const FaultEvent& e : events_) {
    if (e.start_slot > slot) break;
    if (e.type == FaultType::kCacheFlush && e.start_slot == slot) return true;
  }
  return false;
}

bool FaultSchedule::server_crashed(std::size_t server,
                                   std::size_t slot) const {
  for (const FaultEvent& e : events_) {
    if (e.start_slot > slot) break;
    if (e.type != FaultType::kServerCrash || e.target != server ||
        !e.active_at(slot)) {
      continue;
    }
    // A recover starting after this crash began and at or before `slot`
    // truncates the window — the server restarted early.
    bool truncated = false;
    for (const FaultEvent& r : events_) {
      if (r.start_slot > slot) break;
      if (r.type == FaultType::kServerRecover && r.target == server &&
          r.start_slot > e.start_slot) {
        truncated = true;
        break;
      }
    }
    if (!truncated) return true;
  }
  return false;
}

bool FaultSchedule::server_partitioned(std::size_t server,
                                       std::size_t slot) const {
  return user_event_active(events_, FaultType::kFleetPartition, server, slot);
}

bool FaultSchedule::any_fault_for_user(std::size_t user, std::size_t router,
                                       std::size_t slot) const {
  for (const FaultEvent& e : events_) {
    if (e.start_slot > slot) break;
    if (!e.active_at(slot)) continue;
    switch (e.type) {
      case FaultType::kUserDisconnect:
      case FaultType::kPoseBlackout:
      case FaultType::kAckStall:
        if (e.target == user) return true;
        break;
      case FaultType::kRouterOutage:
        if (e.target == router) return true;
        break;
      case FaultType::kCacheFlush:
        return true;
      case FaultType::kServerCrash:
      case FaultType::kServerRecover:
      case FaultType::kFleetPartition:
        // Server-scoped: membership lives in the fleet controller, which
        // accounts orphaned slots itself (see header).
        break;
    }
  }
  return false;
}

std::size_t FaultSchedule::horizon() const {
  std::size_t end = 0;
  for (const FaultEvent& e : events_) end = std::max(end, e.end_slot());
  return end;
}

namespace {
void validate(const FaultScheduleConfig& config) {
  if (config.users == 0 || config.routers == 0 || config.slots == 0) {
    throw std::invalid_argument(
        "FaultScheduleConfig: zero users/routers/slots");
  }
  if (config.mean_duration_slots == 0) {
    throw std::invalid_argument("FaultScheduleConfig: zero mean duration");
  }
  const double rates[] = {config.intensity,         config.churn_rate,
                          config.pose_blackout_rate, config.ack_stall_rate,
                          config.router_outage_rate, config.cache_flush_rate,
                          config.server_crash_rate,
                          config.fleet_partition_rate};
  for (double r : rates) {
    if (!std::isfinite(r) || r < 0.0) {
      throw std::invalid_argument(
          "FaultScheduleConfig: rates and intensity must be finite and >= 0");
    }
  }
  if (!std::isfinite(config.outage_depth) || config.outage_depth < 0.0 ||
      config.outage_depth >= 1.0) {
    throw std::invalid_argument(
        "FaultScheduleConfig: outage_depth must be in [0, 1)");
  }
}

/// Deterministic expected-count rounding: floor(expected) events plus
/// one more with probability frac(expected) — drawn from `rng`, so the
/// count itself is part of the seeded stream.
std::size_t draw_count(cvr::Rng& rng, double expected) {
  const double floor_part = std::floor(expected);
  std::size_t count = static_cast<std::size_t>(floor_part);
  if (rng.uniform() < expected - floor_part) ++count;
  return count;
}
}  // namespace

FaultSchedule generate_schedule(const FaultScheduleConfig& config) {
  validate(config);
  FaultSchedule schedule;
  cvr::SplitMix64 mixer(config.seed ^ 0xFA017ull);
  cvr::Rng rng(mixer.next());
  const double slots_k = static_cast<double>(config.slots) / 1000.0;

  auto draw_duration = [&rng, &config]() {
    const std::int64_t hi =
        2 * static_cast<std::int64_t>(config.mean_duration_slots) - 1;
    return static_cast<std::size_t>(rng.uniform_int(1, std::max<std::int64_t>(1, hi)));
  };
  auto draw_start = [&rng, &config]() {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.slots) - 1));
  };

  struct PerTarget {
    FaultType type;
    double rate;
    std::size_t targets;
  };
  const PerTarget user_types[] = {
      {FaultType::kUserDisconnect, config.churn_rate, config.users},
      {FaultType::kPoseBlackout, config.pose_blackout_rate, config.users},
      {FaultType::kAckStall, config.ack_stall_rate, config.users},
      {FaultType::kRouterOutage, config.router_outage_rate, config.routers},
  };
  // Fixed draw order (type-major, target-minor) keeps the stream
  // deterministic: same config => same events, independent of use.
  for (const PerTarget& t : user_types) {
    for (std::size_t target = 0; target < t.targets; ++target) {
      const std::size_t count =
          draw_count(rng, t.rate * config.intensity * slots_k);
      for (std::size_t i = 0; i < count; ++i) {
        FaultEvent event;
        event.type = t.type;
        event.target = target;
        event.start_slot = draw_start();
        event.duration_slots = draw_duration();
        if (t.type == FaultType::kRouterOutage) {
          event.severity = config.outage_depth;
        }
        schedule.add(event);
      }
    }
  }
  const std::size_t flushes =
      draw_count(rng, config.cache_flush_rate * config.intensity * slots_k);
  for (std::size_t i = 0; i < flushes; ++i) {
    FaultEvent event;
    event.type = FaultType::kCacheFlush;
    event.start_slot = draw_start();
    event.duration_slots = config.mean_duration_slots;  // accounting window
    schedule.add(event);
  }
  // Fleet-scoped draws come strictly last and only when servers > 0, so
  // a pre-fleet config consumes the exact RNG stream it always did and
  // reproduces its historical schedule bit-for-bit (guarded by the
  // faults.fleet_events_appended property).
  if (config.servers > 0) {
    const PerTarget server_types[] = {
        {FaultType::kServerCrash, config.server_crash_rate, config.servers},
        {FaultType::kFleetPartition, config.fleet_partition_rate,
         config.servers},
    };
    for (const PerTarget& t : server_types) {
      for (std::size_t target = 0; target < t.targets; ++target) {
        const std::size_t count =
            draw_count(rng, t.rate * config.intensity * slots_k);
        for (std::size_t i = 0; i < count; ++i) {
          FaultEvent event;
          event.type = t.type;
          event.target = target;
          event.start_slot = draw_start();
          event.duration_slots = draw_duration();
          schedule.add(event);
        }
      }
    }
  }
  return schedule;
}

}  // namespace cvr::faults
