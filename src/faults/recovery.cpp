#include "src/faults/recovery.h"

#include <algorithm>

namespace cvr::faults {

void RecoveryTracker::record_slot(bool in_fault, bool viewed,
                                  double displayed_quality,
                                  bool frame_shown) {
  if (in_fault) {
    // A fault starting while a previous recovery is still open merges
    // the windows: the pending counter is discarded and the eventual
    // recovery is measured from the *last* window's end.
    state_ = State::kFault;
    ++fault_slots_;
    if (!frame_shown) ++frames_dropped_;
    degraded_quality_sum_ += displayed_quality;
    ++degraded_slots_;
    return;
  }
  if (state_ == State::kFault) {
    state_ = State::kRecovering;
    pending_recovery_ = 0;
  }
  if (state_ == State::kRecovering) {
    ++pending_recovery_;
    degraded_quality_sum_ += displayed_quality;
    ++degraded_slots_;
    if (viewed) {
      recoveries_.push_back(pending_recovery_);
      pending_recovery_ = 0;
      state_ = State::kHealthy;
    }
    return;
  }
  healthy_quality_sum_ += displayed_quality;
  ++healthy_slots_;
}

void RecoveryTracker::finalize() {
  if (state_ == State::kRecovering || state_ == State::kFault) {
    // Censored: the horizon ended before the user re-viewed content.
    recoveries_.push_back(pending_recovery_);
    pending_recovery_ = 0;
    state_ = State::kHealthy;
  }
}

double RecoveryTracker::mean_time_to_recover_slots() const {
  if (recoveries_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t r : recoveries_) total += static_cast<double>(r);
  return total / static_cast<double>(recoveries_.size());
}

double RecoveryTracker::max_time_to_recover_slots() const {
  std::size_t worst = 0;
  for (std::size_t r : recoveries_) worst = std::max(worst, r);
  return static_cast<double>(worst);
}

double RecoveryTracker::quality_dip_depth() const {
  if (degraded_slots_ == 0) return 0.0;
  const double healthy =
      healthy_slots_ == 0
          ? 0.0
          : healthy_quality_sum_ / static_cast<double>(healthy_slots_);
  const double degraded =
      degraded_quality_sum_ / static_cast<double>(degraded_slots_);
  return std::max(0.0, healthy - degraded);
}

}  // namespace cvr::faults
