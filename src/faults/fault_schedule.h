// Deterministic fault injection for the system emulation.
//
// The paper's robustness story (Figs. 7/8) exercises *continuous* stress
// — fading, interference bursts, RTP loss. Real deployments also face
// *discrete* faults: clients disconnecting and rejoining, pose-upload
// blackouts, ACK side-channel stalls, bandwidth cliffs, and server
// restarts that wipe warm caches. A FaultSchedule is a typed, sorted
// list of such events that system::SystemSim consumes per slot; the
// schedule is pure data, so the same schedule replays bit-identically
// and an *empty* schedule leaves the emulation byte-for-byte unchanged
// (faults are strictly opt-in).
//
// Schedules can be hand-built (add()) or generated deterministically
// from a seed + intensity (generate_schedule()), the knob
// bench/resilience_chaos sweeps. See docs/resilience.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cvr::faults {

enum class FaultType {
  /// The user's device drops off the network entirely for the window:
  /// no pose uploads, no tile delivery, no feedback of any kind. The
  /// reconnect is the window's end — disconnect/reconnect churn is one
  /// event, not two.
  kUserDisconnect,
  /// Pose uploads from the user are lost for the window; tiles and
  /// feedback still flow. This is the fault the pose-staleness watchdog
  /// (system::Server) exists for.
  kPoseBlackout,
  /// The client->server TCP side channel stalls: delivery/release ACKs
  /// and all measurement feedback (bandwidth, delay, loss, coverage)
  /// are lost for the window. Exercises the stale-estimate hold.
  kAckStall,
  /// The router's capacity collapses to `severity` x nominal for the
  /// window (0 = total outage, 0.1 = a 90% cliff). Targets a router, so
  /// it hits every user behind it at once.
  kRouterOutage,
  /// The server loses its warm state at start_slot: per-user tile
  /// caches and delivered-tile trackers are flushed (a crash-restart
  /// that keeps the allocator's estimators alive). Instantaneous;
  /// duration_slots only widens the recovery-accounting window.
  kCacheFlush,
  /// Fleet scope (fleet::FleetSim, docs/fleet.md): edge server `target`
  /// is down for the window — its members are orphaned and must be
  /// re-admitted to survivors. The window's end is the restart unless a
  /// kServerRecover truncates it earlier. Ignored by system::SystemSim
  /// (single-server runs have no fleet to fail over to).
  kServerCrash,
  /// Explicit early restart of server `target`: the first crash window
  /// covering start_slot ends here instead of running its full
  /// duration. A recover with no covering crash is inert.
  kServerRecover,
  /// Edge server `target` is partitioned from the fleet controller for
  /// the window: it keeps serving its members on a frozen budget, but
  /// no users migrate in or out and budget rebalancing skips it.
  kFleetPartition,
};

/// One typed fault. `target` is a user index (kUserDisconnect,
/// kPoseBlackout, kAckStall), a router index (kRouterOutage), a server
/// index (kServerCrash, kServerRecover, kFleetPartition), or unused
/// (kCacheFlush). The event is active on slots
/// [start_slot, start_slot + duration_slots).
struct FaultEvent {
  /// Which failure this event injects; selects how `target` and
  /// `severity` are interpreted (see FaultType).
  FaultType type = FaultType::kPoseBlackout;
  /// User index for user-targeted types, router index for
  /// kRouterOutage, ignored for kCacheFlush.
  std::size_t target = 0;
  /// First slot (inclusive) on which the fault is active.
  std::size_t start_slot = 0;
  /// Window length in slots; must be >= 1 (enforced by
  /// FaultSchedule::add). For kCacheFlush the flush itself fires only
  /// at start_slot — the duration just widens recovery accounting.
  std::size_t duration_slots = 1;
  /// kRouterOutage only: capacity multiplier during the window, in
  /// [0, 1). Ignored by the other types.
  double severity = 0.0;

  /// One past the last active slot.
  std::size_t end_slot() const { return start_slot + duration_slots; }
  /// True iff `slot` falls in [start_slot, end_slot()).
  bool active_at(std::size_t slot) const {
    return slot >= start_slot && slot < end_slot();
  }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Appends an event, keeping the list sorted by start_slot (stable —
  /// ties keep insertion order). Throws std::invalid_argument on
  /// duration_slots == 0, a non-finite or out-of-[0,1) severity on a
  /// router outage, or a start_slot + duration_slots overflow.
  void add(FaultEvent event);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Per-slot queries, all O(events). An empty schedule answers false /
  /// 1.0 everywhere.
  bool user_disconnected(std::size_t user, std::size_t slot) const;
  bool pose_blackout(std::size_t user, std::size_t slot) const;
  bool ack_stalled(std::size_t user, std::size_t slot) const;
  /// Product of the severities of every outage active on the router
  /// this slot; 1.0 when none.
  double router_capacity_multiplier(std::size_t router,
                                    std::size_t slot) const;
  /// True iff a kCacheFlush fires exactly at `slot`.
  bool cache_flush_at(std::size_t slot) const;

  /// Fleet scope: true iff a kServerCrash on `server` covers `slot` and
  /// no kServerRecover for the same server truncated it — a recover
  /// whose start lies in (crash start, slot] ends that crash window
  /// early. Single-server platforms never call this.
  bool server_crashed(std::size_t server, std::size_t slot) const;
  /// Fleet scope: true iff a kFleetPartition on `server` is active.
  bool server_partitioned(std::size_t server, std::size_t slot) const;

  /// Fault-window indicator for recovery accounting: true iff any event
  /// touching this user is active — a user-targeted event, an outage on
  /// the user's router, or a cache flush (which hits everyone).
  /// Server-scoped events never contribute: user→server membership is
  /// the fleet controller's state, so fleet::FleetSim folds orphaned
  /// slots into the recovery window itself.
  bool any_fault_for_user(std::size_t user, std::size_t router,
                          std::size_t slot) const;

  /// Largest end_slot across events (0 when empty).
  std::size_t horizon() const;

 private:
  std::vector<FaultEvent> events_;  // sorted by start_slot
};

/// Deterministic schedule generation: same config (seed included) =>
/// the same event stream, independent of platform or call site. Event
/// counts scale linearly with `intensity` (0 => an empty schedule); the
/// per-type rates are expected events per 1000 slots per target at
/// intensity 1.
struct FaultScheduleConfig {
  std::size_t users = 8;     ///< Users to draw user-targeted events for.
  std::size_t routers = 1;   ///< Routers to draw outages for.
  std::size_t slots = 1980;  ///< Horizon; events start in [0, slots).
  std::uint64_t seed = 2022; ///< RNG seed; same seed => same schedule.
  /// Global event-count multiplier: expected counts scale linearly and
  /// 0 produces an empty (strictly inert) schedule.
  double intensity = 1.0;
  double churn_rate = 0.4;          ///< kUserDisconnect, per user.
  double pose_blackout_rate = 0.4;  ///< kPoseBlackout, per user.
  double ack_stall_rate = 0.4;      ///< kAckStall, per user.
  double router_outage_rate = 0.5;  ///< kRouterOutage, per router.
  double cache_flush_rate = 0.2;    ///< kCacheFlush, global.
  /// Mean fault duration; actual durations are uniform in
  /// [1, 2 * mean_duration_slots - 1].
  std::size_t mean_duration_slots = 40;
  /// Severity used for generated router outages.
  double outage_depth = 0.1;

  /// Fleet scope (docs/fleet.md). 0 servers keeps the generator
  /// byte-identical to its pre-fleet output: the server-scoped draws
  /// are appended strictly after every legacy draw and only when
  /// servers > 0, so any existing (seed, config) pair still produces
  /// the exact event stream it always did.
  std::size_t servers = 0;          ///< Servers to draw fleet events for.
  double server_crash_rate = 0.3;   ///< kServerCrash, per server.
  double fleet_partition_rate = 0.15;  ///< kFleetPartition, per server.
};

/// Throws std::invalid_argument on zero users/routers/slots, a negative
/// or non-finite intensity or rate, a zero mean duration, or an
/// out-of-range outage_depth.
FaultSchedule generate_schedule(const FaultScheduleConfig& config);

}  // namespace cvr::faults
