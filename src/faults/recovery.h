// Per-user recovery accounting for fault-injection runs.
//
// Fed once per slot by system::SystemSim with the slot's fault-window
// indicator and display outcome, a RecoveryTracker measures what the
// aggregate QoE metrics hide: how long after a fault window the user
// stayed degraded (time-to-recover), how deep the quality dip was, and
// how many frames the fault windows cost. All quantities are zero for a
// run with an empty FaultSchedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cvr::faults {

class RecoveryTracker {
 public:
  /// Records one slot. `in_fault`: the user sits inside a fault window
  /// this slot (FaultSchedule::any_fault_for_user). `viewed`: correct
  /// content was displayed. `displayed_quality`: the quality sample the
  /// QoE accumulator saw (0 when nothing correct was shown).
  /// `frame_shown`: the frame made the display deadline (FPS
  /// accounting).
  void record_slot(bool in_fault, bool viewed, double displayed_quality,
                   bool frame_shown);

  /// Closes an open recovery window at the end of the horizon (a user
  /// that never re-viewed content counts the remaining slots —
  /// censored, not dropped). Call once, after the last record_slot.
  void finalize();

  std::size_t fault_slots() const { return fault_slots_; }
  std::uint64_t frames_dropped_in_fault() const { return frames_dropped_; }
  /// Completed fault episodes (contiguous fault windows that ended).
  std::size_t episodes() const { return recoveries_.size(); }

  /// Mean slots from a fault window's end until the first slot with
  /// correct content displayed (1 = recovered immediately on the first
  /// post-fault slot). 0 when the run had no fault episodes.
  double mean_time_to_recover_slots() const;
  double max_time_to_recover_slots() const;

  /// Quality-dip depth: mean displayed quality over healthy slots minus
  /// mean displayed quality over fault + recovery slots, floored at 0.
  /// 0 when the run had no fault slots.
  double quality_dip_depth() const;

 private:
  enum class State { kHealthy, kFault, kRecovering };
  State state_ = State::kHealthy;
  std::size_t pending_recovery_ = 0;
  std::vector<std::size_t> recoveries_;

  std::size_t fault_slots_ = 0;
  std::uint64_t frames_dropped_ = 0;
  double degraded_quality_sum_ = 0.0;  // fault + recovery slots
  std::size_t degraded_slots_ = 0;
  double healthy_quality_sum_ = 0.0;
  std::size_t healthy_slots_ = 0;
};

}  // namespace cvr::faults
