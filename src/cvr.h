// Umbrella header: the library's public API in one include.
//
//   #include "src/cvr.h"
//
// Subsystem map (see DESIGN.md for the full inventory):
//   cvr::core    — QoE model, Algorithm 1 (DvGreedyAllocator), baselines
//                  (Firefly, PAVQ), exact solvers, bounds, horizon tools
//   cvr::trace   — network traces, generators, repository, stats, CSV
//   cvr::motion  — 6-DoF poses, predictors, FoV coverage, margin control
//   cvr::content — quality levels, rate functions, tiles, projections,
//                  content DB, caches
//   cvr::net     — M/M/1, token bucket, wireless channel, RTP, estimators
//   cvr::render  — online rendering/encoding GPU farm (Section VIII)
//   cvr::proto   — wire-format message codecs
//   cvr::sim     — the Section-IV trace-based simulation platform
//   cvr::system  — the Sections V-VI prototype emulation
//   cvr::report  — CSV/markdown experiment reporting
#pragma once

// util
#include "src/util/csv.h"
#include "src/util/flags.h"
#include "src/util/logging.h"
#include "src/util/regression.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/units.h"

// trace
#include "src/trace/fcc_generator.h"
#include "src/trace/lte_generator.h"
#include "src/trace/network_trace.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_repository.h"

// motion
#include "src/motion/accuracy.h"
#include "src/motion/fov.h"
#include "src/motion/kalman_predictor.h"
#include "src/motion/margin_controller.h"
#include "src/motion/motion_generator.h"
#include "src/motion/persistence_predictor.h"
#include "src/motion/pose.h"
#include "src/motion/predictor.h"
#include "src/motion/predictor_base.h"

// content
#include "src/content/client_buffer.h"
#include "src/content/content_db.h"
#include "src/content/cubemap.h"
#include "src/content/delivered_tracker.h"
#include "src/content/equirect.h"
#include "src/content/quality.h"
#include "src/content/rate_function.h"
#include "src/content/server_cache.h"
#include "src/content/tile.h"

// net
#include "src/net/ack_channel.h"
#include "src/net/estimators.h"
#include "src/net/loss_estimator.h"
#include "src/net/mm1.h"
#include "src/net/rtp_transport.h"
#include "src/net/token_bucket.h"
#include "src/net/wireless_channel.h"

// render
#include "src/render/render_farm.h"

// proto
#include "src/proto/codec.h"
#include "src/proto/messages.h"

// core
#include "src/core/allocator.h"
#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/fractional.h"
#include "src/core/horizon.h"
#include "src/core/lagrangian.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"
#include "src/core/qoe.h"
#include "src/core/registry.h"

// sim / system / report
#include "src/report/report.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/system/client.h"
#include "src/system/decoder.h"
#include "src/system/device.h"
#include "src/system/server.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/experiments/ensemble.h"
