// User -> edge-server assignment for the fleet (docs/fleet.md).
//
// A consistent-hash ring with virtual nodes: each server contributes
// `vnodes` points on a 64-bit ring, a user hashes to a point, and the
// owner is the first vnode clockwise whose server is eligible (alive
// and unpartitioned). Losing a server moves only its own users —
// survivors keep their assignments, which is exactly the property the
// failover path needs (a crash must not reshuffle healthy users).
//
// The ring is pure data derived from (servers, vnodes, seed): no
// clocks, no global RNG draws, so assignment is a deterministic
// function of the fleet config and replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cvr::fleet {

class HashRing {
 public:
  /// Builds the ring. Throws std::invalid_argument on zero servers or
  /// zero vnodes.
  HashRing(std::size_t servers, std::size_t vnodes, std::uint64_t seed);

  std::size_t servers() const { return servers_; }

  /// Primary owner of `user` with every server eligible.
  std::size_t owner(std::size_t user) const;

  /// Primary owner among eligible servers: the first vnode clockwise
  /// from the user's point whose server has eligible[server] == true.
  /// Throws std::invalid_argument when eligible.size() != servers() or
  /// no server is eligible.
  std::size_t owner(std::size_t user, const std::vector<bool>& eligible) const;

  /// The mirrored-mode backup: the first eligible server clockwise
  /// *distinct from* the primary. Falls back to the primary when it is
  /// the only eligible server.
  std::size_t backup(std::size_t user, const std::vector<bool>& eligible) const;

 private:
  struct VNode {
    std::uint64_t point;
    std::size_t server;
  };
  std::uint64_t user_point(std::size_t user) const;

  std::size_t servers_;
  std::uint64_t seed_;
  std::vector<VNode> ring_;  // sorted by point
};

}  // namespace cvr::fleet
