#include "src/fleet/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::fleet {

void validate(const BackoffPolicy& policy) {
  if (!std::isfinite(policy.multiplier) || policy.multiplier < 1.0) {
    throw std::invalid_argument("BackoffPolicy: multiplier must be >= 1");
  }
  if (!std::isfinite(policy.jitter_fraction) || policy.jitter_fraction < 0.0 ||
      policy.jitter_fraction >= 1.0) {
    throw std::invalid_argument(
        "BackoffPolicy: jitter_fraction must be in [0, 1)");
  }
  if (policy.max_attempts == 0) {
    throw std::invalid_argument("BackoffPolicy: zero max_attempts");
  }
  if (policy.timeout_slots == 0) {
    throw std::invalid_argument("BackoffPolicy: zero timeout_slots");
  }
}

std::size_t retry_delay_slots(const BackoffPolicy& policy, std::uint64_t seed,
                              std::size_t user, std::size_t attempt) {
  validate(policy);
  const double base = static_cast<double>(
      std::max<std::size_t>(1, policy.base_delay_slots));
  const double cap = static_cast<double>(
      std::max<std::size_t>(1, policy.max_delay_slots));
  const double nominal = std::min(
      cap, base * std::pow(policy.multiplier, static_cast<double>(attempt)));

  // Deterministic jitter keyed by (seed, user, attempt): expand the
  // tuple through SplitMix64 and map to [1 - j, 1 + j].
  cvr::SplitMix64 mixer(seed ^
                        (0xBACC0FFull +
                         0x9E3779B97F4A7C15ull *
                             static_cast<std::uint64_t>(user + 1) +
                         0xD1B54A32D192ED03ull *
                             static_cast<std::uint64_t>(attempt + 1)));
  const double unit = static_cast<double>(mixer.next() >> 11) *
                      (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor =
      1.0 + policy.jitter_fraction * (2.0 * unit - 1.0);
  const double jittered = nominal * factor;
  return static_cast<std::size_t>(std::max(1.0, std::floor(jittered + 0.5)));
}

}  // namespace cvr::fleet
