#include "src/fleet/assignment.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::fleet {

HashRing::HashRing(std::size_t servers, std::size_t vnodes,
                   std::uint64_t seed)
    : servers_(servers), seed_(seed) {
  if (servers == 0) throw std::invalid_argument("HashRing: zero servers");
  if (vnodes == 0) throw std::invalid_argument("HashRing: zero vnodes");
  ring_.reserve(servers * vnodes);
  for (std::size_t k = 0; k < servers; ++k) {
    // One SplitMix64 stream per server: consecutive draws are that
    // server's vnode points. Seed separation keeps streams disjoint.
    cvr::SplitMix64 mixer(seed ^ (0xF1EE7ull + 0x9E3779B97F4A7C15ull *
                                                   static_cast<std::uint64_t>(
                                                       k + 1)));
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.push_back(VNode{mixer.next(), k});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              // Points are 64-bit hashes — collisions are vanishingly
              // rare, but break ties by server for a total order.
              return a.point != b.point ? a.point < b.point
                                        : a.server < b.server;
            });
}

std::uint64_t HashRing::user_point(std::size_t user) const {
  cvr::SplitMix64 mixer(seed_ ^
                        (0x05E12ull +
                         0xD1B54A32D192ED03ull *
                             static_cast<std::uint64_t>(user + 1)));
  return mixer.next();
}

std::size_t HashRing::owner(std::size_t user) const {
  return owner(user, std::vector<bool>(servers_, true));
}

std::size_t HashRing::owner(std::size_t user,
                            const std::vector<bool>& eligible) const {
  if (eligible.size() != servers_) {
    throw std::invalid_argument("HashRing: eligibility size mismatch");
  }
  const std::uint64_t point = user_point(user);
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& node, std::uint64_t p) { return node.point < p; });
  const std::size_t begin =
      static_cast<std::size_t>(start - ring_.begin());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const VNode& node = ring_[(begin + i) % ring_.size()];
    if (eligible[node.server]) return node.server;
  }
  throw std::invalid_argument("HashRing: no eligible server");
}

std::size_t HashRing::backup(std::size_t user,
                             const std::vector<bool>& eligible) const {
  const std::size_t primary = owner(user, eligible);
  const std::uint64_t point = user_point(user);
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& node, std::uint64_t p) { return node.point < p; });
  const std::size_t begin =
      static_cast<std::size_t>(start - ring_.begin());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const VNode& node = ring_[(begin + i) % ring_.size()];
    if (eligible[node.server] && node.server != primary) return node.server;
  }
  return primary;  // the only eligible server
}

}  // namespace cvr::fleet
