#include "src/fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/slot_arena.h"
#include "src/proto/messages.h"
#include "src/system/slot_pipeline.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cvr::fleet {

namespace {

/// One orphaned user waiting for re-admission.
struct RetryEntry {
  std::size_t user = 0;
  std::size_t crash_slot = 0;
  std::size_t attempts = 0;   ///< Attempts already made.
  std::size_t next_due = 0;   ///< Slot of the next attempt.
};

void count_fleet(telemetry::Collector* telemetry, telemetry::Counter counter,
                 std::uint64_t delta = 1) {
  if (telemetry != nullptr) telemetry->count(counter, delta);
}

/// The effective worker count for the per-server phases: the config
/// knob, overridden by CVR_FLEET_THREADS when set to a parseable value
/// (the CI forced-serial leg exports CVR_FLEET_THREADS=1 the same way
/// CVR_FORCE_SCALAR forces the scalar SIMD backend).
std::size_t resolve_fleet_threads(std::size_t configured) {
  const char* env = std::getenv("CVR_FLEET_THREADS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      configured = static_cast<std::size_t>(value);
    }
  }
  return configured == 1 ? 1 : cvr::resolve_thread_count(configured);
}

}  // namespace

FleetSim::FleetSim(FleetConfig config) : config_(std::move(config)) {
  if (config_.servers == 0) {
    throw std::invalid_argument("FleetConfig: zero servers");
  }
  if (config_.ring_vnodes == 0) {
    throw std::invalid_argument("FleetConfig: zero ring vnodes");
  }
  if (config_.checkpoint_period_slots == 0) {
    throw std::invalid_argument("FleetConfig: zero checkpoint period");
  }
  if (config_.ramp_slots_per_level == 0) {
    throw std::invalid_argument("FleetConfig: zero ramp period");
  }
  if (!std::isfinite(config_.backhaul_mbps) || config_.backhaul_mbps < 0.0) {
    throw std::invalid_argument("FleetConfig: invalid backhaul budget");
  }
  validate(config_.backoff);
  for (const PlannedMigration& pm : config_.planned_migrations) {
    if (pm.user >= config_.base.users || pm.to_server >= config_.servers ||
        pm.slot >= config_.base.slots) {
      throw std::invalid_argument("FleetConfig: planned migration out of range");
    }
  }
  // Constructing the base sim validates the shared world config.
  system::SystemSim probe(config_.base);
}

FleetRunResult FleetSim::run(core::Allocator& allocator, std::size_t repeat,
                             system::Timeline* timeline,
                             telemetry::Collector* telemetry) const {
  const system::SystemSimConfig& base = config_.base;
  const std::size_t n_users = base.users;
  const std::size_t n_servers = config_.servers;
  allocator.reset();
  if (telemetry != nullptr && !telemetry->counting()) telemetry = nullptr;
  if (telemetry != nullptr && telemetry->tracing()) {
    telemetry->label_process(telemetry::Collector::kServerPid, "server");
    for (std::size_t u = 0; u < n_users; ++u) {
      telemetry->label_process(telemetry::Collector::user_pid(u),
                               "user " + std::to_string(u));
    }
  }

  // Same derivation as SystemSim::run — the shared measurement RNG and
  // the access network consume the exact stream SystemSim consumes.
  cvr::SplitMix64 mixer(base.seed ^
                        (0x5957E3Cull + repeat * 0x9E3779B97F4A7C15ull));
  cvr::Rng rng(mixer.next());
  system::AccessNetwork net =
      system::build_access_network(base, repeat, rng);

  const system::ServerConfig server_config =
      system::derive_server_config(base);
  std::vector<system::Server> servers;
  servers.reserve(n_servers);
  for (std::size_t k = 0; k < n_servers; ++k) {
    // Every server carries slots for all users: a user's state lives at
    // the same index wherever they are served, so migration is a state
    // transfer, never a renumbering.
    servers.emplace_back(server_config, n_users);
  }
  std::vector<system::UserWorld> worlds =
      system::build_user_worlds(base, repeat);

  const double total_budget =
      config_.backhaul_mbps > 0.0
          ? config_.backhaul_mbps
          : base.router_aggregate_mbps * static_cast<double>(base.routers);

  const HashRing ring(n_servers, config_.ring_vnodes, base.seed);
  const system::AdmissionController admission(config_.admission);
  const faults::FaultSchedule& faults = base.faults;

  // Controller state.
  std::vector<std::size_t> serving(n_users);
  std::vector<std::size_t> home(n_users);
  std::vector<std::size_t> user_migrations(n_users, 0);
  std::vector<bool> orphan(n_users, false);
  std::vector<bool> lost(n_users, false);
  for (std::size_t u = 0; u < n_users; ++u) {
    serving[u] = ring.owner(u);
    home[u] = serving[u];
  }
  // Degrade ladder: level cap per user (kNumQualityLevels = no cap).
  std::vector<core::QualityLevel> cap_level(n_users, core::kNumQualityLevels);
  std::vector<std::size_t> cap_since(n_users, 0);
  // Latest checkpoint per user, as wire bytes (decode exercises the
  // codec on every failover). Empty until the first checkpoint.
  std::vector<proto::Buffer> checkpoints(n_users);
  std::vector<RetryEntry> retry_queue;

  std::vector<bool> alive(n_servers, true);
  std::vector<bool> partitioned(n_servers, false);
  std::vector<double> budget(n_servers, 0.0);

  FleetStats stats;
  stats.per_server.resize(n_servers);
  std::vector<double> budget_sum(n_servers, 0.0);
  std::vector<double> util_sum(n_servers, 0.0);
  std::vector<std::size_t> util_slots(n_servers, 0);
  std::size_t reabsorb_slot_sum = 0;

  // Per-server hot-path storage.
  std::vector<core::SlotArena> arenas(n_servers);
  std::vector<core::Allocation> allocations(n_servers);
  std::vector<std::vector<std::size_t>> members(n_servers);
  // Per-user handle back into the serving server's allocation.
  std::vector<std::size_t> member_index(n_users, 0);
  // Per-user tile requests, recycled across slots (index = user).
  std::vector<system::TileRequest> requests(n_users);

  // Across-server parallelism (docs/fleet.md): the per-server phases of
  // a slot fan out onto a shared pool, one task per server, drained in
  // server-index order. Requires per-server allocator instances — a
  // stateless allocator is cloned once per server (each clone sees one
  // server's problem stream, exactly what the serial schedule feeds a
  // dedicated server). A stateful or unclonable allocator keeps the
  // serial schedule: its cross-slot state depends on the interleaved
  // problem order only the serial loop reproduces.
  const std::size_t fleet_threads = resolve_fleet_threads(config_.threads);
  std::unique_ptr<cvr::ThreadPool> pool;
  std::vector<std::unique_ptr<core::Allocator>> clones;
  if (fleet_threads != 1 && n_servers > 1 && allocator.stateless()) {
    clones.reserve(n_servers);
    bool cloneable = true;
    for (std::size_t k = 0; k < n_servers && cloneable; ++k) {
      clones.push_back(allocator.clone());
      cloneable = clones.back() != nullptr;
    }
    if (cloneable) {
      pool = std::make_unique<cvr::ThreadPool>(fleet_threads);
      // One shared pool, no nested oversubscription: clones may use it
      // for within-slot parallelism, but a nested submit from inside an
      // outer per-server task runs inline (ThreadPool's nesting
      // policy), so the outer fan-out always wins while it is active.
      for (auto& clone : clones) clone->set_thread_pool(pool.get());
    } else {
      clones.clear();
    }
  }
  struct PoolDetach {
    std::vector<std::unique_ptr<core::Allocator>>& clones;
    ~PoolDetach() {
      for (auto& clone : clones) {
        if (clone != nullptr) clone->set_thread_pool(nullptr);
      }
    }
  } pool_detach{clones};

  system::SlotContext ctx;
  ctx.config = &base;
  ctx.unmargined = server_config.fov;
  ctx.unmargined.margin_deg = 0.0;
  ctx.telemetry = telemetry;
  ctx.timeline = timeline;
  ctx.rng = &rng;

  auto eligible_targets = [&] {
    std::vector<bool> eligible(n_servers);
    for (std::size_t k = 0; k < n_servers; ++k) {
      eligible[k] = alive[k] && !partitioned[k];
    }
    return eligible;
  };
  auto any_eligible = [](const std::vector<bool>& eligible) {
    return std::find(eligible.begin(), eligible.end(), true) !=
           eligible.end();
  };

  // Attempts one re-admission of `user` at `target` with frame bytes
  // already checkpointed; returns true when the user is serving again.
  auto try_readmit = [&](std::size_t user, std::size_t target, std::size_t t,
                         std::size_t crash_slot) {
    stats.retry_attempts += 1;
    count_fleet(telemetry, telemetry::Counter::kFleetRetryAttempts);
    const proto::UserHandoff frame =
        proto::decode_user_handoff(checkpoints[user]);
    const core::UserSlotContext candidate =
        servers[target].candidate_context(frame, t + 1);
    const double mandatory = servers[target].mandatory_load(members[target]);
    const system::AdmissionDecision decision = admission.decide(
        candidate, mandatory, budget[target], members[target].size(), n_users,
        base.server.params);
    if (decision == system::AdmissionDecision::kReject) {
      stats.rejects += 1;
      count_fleet(telemetry, telemetry::Counter::kFleetMigrationRejects);
      return false;
    }
    servers[target].import_handoff(user, frame, t);
    serving[user] = target;
    orphan[user] = false;
    user_migrations[user] += 1;
    stats.migrations += 1;
    count_fleet(telemetry, telemetry::Counter::kFleetMigrations);
    if (decision == system::AdmissionDecision::kDegrade) {
      cap_level[user] = 1;
      cap_since[user] = t;
    }
    stats.reabsorbed_users += 1;
    const std::size_t took = t - crash_slot;
    reabsorb_slot_sum += took;
    stats.max_reabsorb_slots = std::max(stats.max_reabsorb_slots, took);
    return true;
  };

  for (std::size_t t = 0; t < base.slots; ++t) {
    const std::int64_t slot = static_cast<std::int64_t>(t);
    telemetry::PhaseSpan slot_span(telemetry, telemetry::Phase::kSlot,
                                   telemetry::Collector::kServerPid, slot);
    system::step_routers(net, faults, t);

    // ---- Fleet control. All pure bookkeeping: no shared-RNG draws, so
    // the measurement stream stays aligned with SystemSim.
    std::vector<std::size_t> crashed_now;
    for (std::size_t k = 0; k < n_servers; ++k) {
      const bool down = faults.server_crashed(k, t);
      if (down && alive[k]) {
        alive[k] = false;
        crashed_now.push_back(k);
        stats.crashes += 1;
        count_fleet(telemetry, telemetry::Counter::kFleetServerCrashes);
      } else if (!down && !alive[k]) {
        alive[k] = true;  // rejoins cold, eligible again
        stats.recoveries += 1;
      }
      const bool part = faults.server_partitioned(k, t);
      if (part && !partitioned[k]) {
        partitioned[k] = true;  // budget[k] stays frozen at its last value
      } else if (!part && partitioned[k]) {
        partitioned[k] = false;
      }
    }

    // Orphan the members of every server that just went down. The
    // crash wiped its in-memory per-user state.
    for (std::size_t k : crashed_now) {
      for (std::size_t u = 0; u < n_users; ++u) {
        if (serving[u] != k || orphan[u] || lost[u]) continue;
        servers[k].reset_user(u);
        orphan[u] = true;
        cap_level[u] = core::kNumQualityLevels;
        stats.affected_users += 1;
        RetryEntry entry;
        entry.user = u;
        entry.crash_slot = t;
        entry.attempts = 0;
        entry.next_due =
            t + retry_delay_slots(config_.backoff, base.seed, u, 0);
        retry_queue.push_back(entry);
      }
    }

    // Current membership (needed for budgets and admission pricing).
    for (auto& m : members) m.clear();
    for (std::size_t u = 0; u < n_users; ++u) {
      if (orphan[u] || lost[u]) continue;
      members[serving[u]].push_back(u);
    }

    // Budget split across alive, unpartitioned servers; a partitioned
    // server keeps its frozen share, a dead one gets nothing.
    {
      std::size_t alive_unpart = 0;
      std::size_t alive_members = 0;
      for (std::size_t k = 0; k < n_servers; ++k) {
        if (alive[k] && !partitioned[k]) {
          alive_unpart += 1;
          alive_members += members[k].size();
        }
      }
      for (std::size_t k = 0; k < n_servers; ++k) {
        if (!alive[k]) {
          budget[k] = 0.0;
        } else if (partitioned[k]) {
          // frozen
        } else if (config_.budget == BudgetPolicy::kEqual) {
          budget[k] = total_budget / static_cast<double>(alive_unpart);
        } else {
          budget[k] = alive_members == 0
                          ? 0.0
                          : total_budget *
                                static_cast<double>(members[k].size()) /
                                static_cast<double>(alive_members);
        }
      }
    }

    // Mirrored mode: the warm standby attempts re-admission at the
    // crash slot itself — no backoff before the first try.
    if (config_.assignment == AssignmentMode::kMirrored &&
        !crashed_now.empty()) {
      const std::vector<bool> eligible = eligible_targets();
      if (any_eligible(eligible)) {
        for (RetryEntry& entry : retry_queue) {
          if (entry.crash_slot != t || entry.attempts != 0) continue;
          if (checkpoints[entry.user].empty()) continue;
          const std::size_t target = ring.backup(entry.user, eligible);
          entry.attempts = 1;
          if (try_readmit(entry.user, target, t, entry.crash_slot)) {
            members[target].push_back(entry.user);
            entry.next_due = base.slots;  // resolved; swept below
          } else {
            entry.next_due = t + retry_delay_slots(config_.backoff, base.seed,
                                                   entry.user, 1);
          }
        }
      }
    }

    // Retry queue: due entries attempt re-admission at the ring's
    // eligible owner, with exponential backoff + jitter between
    // attempts, bounded attempts, and a per-user timeout.
    {
      const std::vector<bool> eligible = eligible_targets();
      for (RetryEntry& entry : retry_queue) {
        if (!orphan[entry.user] || lost[entry.user]) continue;
        if (t - entry.crash_slot > config_.backoff.timeout_slots ||
            entry.attempts >= config_.backoff.max_attempts) {
          lost[entry.user] = true;
          orphan[entry.user] = true;
          stats.lost_users += 1;
          continue;
        }
        if (entry.next_due > t) continue;
        if (checkpoints[entry.user].empty() || !any_eligible(eligible)) {
          entry.attempts += 1;
          entry.next_due = t + retry_delay_slots(config_.backoff, base.seed,
                                                 entry.user, entry.attempts);
          continue;
        }
        const std::size_t target = ring.owner(entry.user, eligible);
        entry.attempts += 1;
        if (try_readmit(entry.user, target, t, entry.crash_slot)) {
          members[target].push_back(entry.user);
        } else {
          entry.next_due = t + retry_delay_slots(config_.backoff, base.seed,
                                                 entry.user, entry.attempts);
        }
      }
      retry_queue.erase(
          std::remove_if(retry_queue.begin(), retry_queue.end(),
                         [&](const RetryEntry& e) {
                           return !orphan[e.user] || lost[e.user];
                         }),
          retry_queue.end());
    }

    // Scripted live migrations (healthy handoffs): export fresh state,
    // cross the wire, import at the destination.
    for (const PlannedMigration& pm : config_.planned_migrations) {
      if (pm.slot != t) continue;
      const std::size_t from = serving[pm.user];
      if (orphan[pm.user] || lost[pm.user] || !alive[from] ||
          !alive[pm.to_server] || partitioned[from] ||
          partitioned[pm.to_server] || from == pm.to_server) {
        continue;
      }
      const proto::UserHandoff frame = proto::decode_user_handoff(
          proto::encode(servers[from].export_handoff(pm.user, t)));
      stats.handoff_frames += 1;
      count_fleet(telemetry, telemetry::Counter::kFleetHandoffFrames);
      servers[pm.to_server].import_handoff(pm.user, frame, t);
      servers[from].reset_user(pm.user);
      auto& old_members = members[from];
      old_members.erase(
          std::remove(old_members.begin(), old_members.end(), pm.user),
          old_members.end());
      members[pm.to_server].push_back(pm.user);
      serving[pm.user] = pm.to_server;
      user_migrations[pm.user] += 1;
      stats.migrations += 1;
      count_fleet(telemetry, telemetry::Counter::kFleetMigrations);
    }

    // Degrade-ladder release: the cap rises one level per ramp period.
    for (std::size_t u = 0; u < n_users; ++u) {
      if (cap_level[u] >= core::kNumQualityLevels) continue;
      const std::size_t risen = (t - cap_since[u]) / config_.ramp_slots_per_level;
      const std::size_t cap = 1 + risen;
      cap_level[u] = cap >= static_cast<std::size_t>(core::kNumQualityLevels)
                         ? core::kNumQualityLevels
                         : static_cast<core::QualityLevel>(cap);
    }

    // Periodic checkpoints (fleets only): every user's carried state is
    // encoded through the wire format so a later crash has a frame.
    if (n_servers > 1 && t % config_.checkpoint_period_slots == 0) {
      for (std::size_t u = 0; u < n_users; ++u) {
        if (orphan[u] || lost[u] || !alive[serving[u]]) continue;
        checkpoints[u] =
            proto::encode(servers[serving[u]].export_handoff(u, t));
        stats.handoff_frames += 1;
        count_fleet(telemetry, telemetry::Counter::kFleetHandoffFrames);
      }
    }

    // ---- From here on the slot follows SystemSim::run exactly, with
    // "the server" resolved per user through the assignment.
    if (faults.cache_flush_at(t)) {
      for (std::size_t k = 0; k < n_servers; ++k) {
        if (alive[k]) servers[k].flush_caches();
      }
    }

    // ---- Per-server phases: pose ingest, problem build, solve, tile
    // requests, rendering. Every write below is owned by exactly one
    // server — its own Server state, arena, allocation, its members'
    // member_index/requests lanes, its per_server stats row — and the
    // only shared sinks are telemetry counters (integer sums, order-
    // independent). No shared-RNG draw happens anywhere in here, which
    // is what makes the fan-out bit-identical to the serial schedule
    // (docs/fleet.md; pinned by the ParallelFleet tests).
    const bool ingest_slot = t >= 1 && (t - 1) % base.pose_upload_period == 0;
    // Orphaned/lost users have no serving server: an idle request at
    // the mandatory floor, written by the coordinator so the per-server
    // tasks only ever touch their own members' lanes.
    for (std::size_t u = 0; u < n_users; ++u) {
      if (orphan[u] || lost[u]) requests[u] = system::TileRequest{};
    }

    const auto run_server_slot = [&](std::size_t k, core::Allocator& alloc) {
      if (ingest_slot) {
        telemetry::PhaseSpan ingest_span(telemetry,
                                         telemetry::Phase::kPoseIngest,
                                         telemetry::Collector::kServerPid,
                                         slot);
        for (std::size_t u : members[k]) {
          if (faults.user_disconnected(u, t) || faults.pose_blackout(u, t)) {
            continue;
          }
          system::upload_pose(servers[k], worlds[u], u, t, telemetry);
        }
      }
      if (!alive[k] || members[k].empty()) {
        allocations[k].levels.clear();
        return;
      }
      servers[k].set_server_bandwidth(budget[k]);
      core::SlotProblem& problem = arenas[k].acquire(members[k].size());
      {
        telemetry::PhaseSpan build_span(telemetry,
                                        telemetry::Phase::kProblemBuild,
                                        telemetry::Collector::kServerPid,
                                        slot);
        servers[k].build_problem_for(t + 1, members[k], problem);
      }
      // Fleet-owned degrade caps ride constraint (7), the same clamp
      // safe mode uses: cap the user bandwidth at the capped level's
      // rate so no allocator can exceed it.
      for (std::size_t i = 0; i < members[k].size(); ++i) {
        const core::QualityLevel cap = cap_level[members[k][i]];
        if (cap < core::kNumQualityLevels) {
          core::UserSlotContext& uctx = problem.users[i];
          uctx.user_bandwidth =
              std::min(uctx.user_bandwidth,
                       uctx.rate[static_cast<std::size_t>(cap - 1)]);
        }
      }
      {
        telemetry::PhaseSpan solve_span(telemetry,
                                        telemetry::Phase::kAllocSolve,
                                        telemetry::Collector::kServerPid,
                                        slot);
        alloc.allocate_into(problem, allocations[k]);
      }
      if (allocations[k].levels.size() != members[k].size()) {
        throw std::logic_error("allocator returned wrong level count");
      }
      if (telemetry != nullptr) {
        telemetry->count_allocation(allocations[k].levels);
      }
      for (std::size_t i = 0; i < members[k].size(); ++i) {
        member_index[members[k][i]] = i;
      }
      // Per-server accounting: allocated load vs the slot's budget.
      stats.per_server[k].served_user_slots += members[k].size();
      if (budget[k] > 0.0) {
        double allocated = 0.0;
        for (std::size_t i = 0; i < members[k].size(); ++i) {
          const auto level = allocations[k].levels[i];
          allocated +=
              problem.users[i].rate[static_cast<std::size_t>(level - 1)];
        }
        util_sum[k] += allocated / budget[k];
        util_slots[k] += 1;
      }
      // Tile requests for this server's members. members[k] order may
      // differ from global user order after mid-slot re-admissions, but
      // make_request only touches user u's own server-side state (plus
      // order-independent memo/telemetry), so the visit order within a
      // server does not affect any result.
      {
        telemetry::PhaseSpan fetch_span(telemetry,
                                        telemetry::Phase::kContentFetch,
                                        telemetry::Collector::kServerPid,
                                        slot);
        for (std::size_t u : members[k]) {
          const core::QualityLevel level =
              allocations[k].levels[member_index[u]];
          if (faults.user_disconnected(u, t)) {
            // No device on the network: nothing to request, zero
            // demand, and the server's per-user caches stay untouched.
            requests[u] = system::TileRequest{};
            requests[u].level = level;
            continue;
          }
          requests[u] = servers[k].make_request(u, level);
          if (telemetry != nullptr) {
            telemetry->count(telemetry::Counter::kTilesRequested,
                             requests[u].tiles.size());
          }
        }
      }
      // Online rendering: one farm per edge server over its members.
      if (base.online_rendering) {
        const render::RenderFarm farm(base.render_farm);
        std::vector<render::RenderJob> jobs;
        jobs.reserve(members[k].size());
        for (std::size_t u : members[k]) {
          jobs.push_back({u, requests[u].tiles.size(),
                          allocations[k].levels[member_index[u]]});
        }
        const render::RenderOutcome rendered = farm.schedule(jobs);
        for (std::size_t i = 0; i < members[k].size(); ++i) {
          if (!rendered.on_time[i]) {
            const std::size_t u = members[k][i];
            requests[u].tiles.clear();
            requests[u].fallback_set.clear();
            requests[u].demand_mbps = 0.0;
          }
        }
      }
    };

    if (pool != nullptr) {
      // Fan out, then drain in server-index order so the first (lowest
      // k) exception wins — the same exception surface as serial.
      std::vector<std::future<void>> tasks;
      tasks.reserve(n_servers);
      for (std::size_t k = 0; k < n_servers; ++k) {
        tasks.push_back(
            pool->submit([&run_server_slot, &clones, k] {
              run_server_slot(k, *clones[k]);
            }));
      }
      for (auto& task : tasks) task.get();
    } else {
      for (std::size_t k = 0; k < n_servers; ++k) {
        run_server_slot(k, allocator);
      }
    }
    for (std::size_t k = 0; k < n_servers; ++k) budget_sum[k] += budget[k];

    const std::vector<double> granted =
        system::serve_routers(net, requests, telemetry, slot);

    // Outcomes in global user order — the shared measurement RNG is
    // consumed per served user exactly as in SystemSim.
    for (std::size_t u = 0; u < n_users; ++u) {
      system::UserWorld& world = worlds[u];
      if (orphan[u] || lost[u]) {
        // Orphaned by a crash: level-1 bookkeeping, zero display, a
        // fault slot for recovery accounting. No RNG draw.
        count_fleet(telemetry, telemetry::Counter::kFleetOrphanUserSlots);
        system::serve_absent_user(ctx, u, t, world, 1, 0.0, 0.0);
        continue;
      }
      ctx.server = &servers[serving[u]];
      const core::SlotProblem& problem =
          arenas[serving[u]].problem();
      const core::QualityLevel level =
          allocations[serving[u]].levels[member_index[u]];
      const double delta_estimate = problem.users[member_index[u]].delta;
      const double bandwidth_estimate =
          problem.users[member_index[u]].user_bandwidth;
      if (faults.user_disconnected(u, t)) {
        system::serve_absent_user(ctx, u, t, world, level, delta_estimate,
                                  bandwidth_estimate);
        continue;
      }
      const bool ack_stalled = faults.ack_stalled(u, t);
      const bool in_fault =
          faults.any_fault_for_user(u, net.router_of[u], t);
      system::serve_connected_user(
          ctx, u, t, world, requests[u], level, granted[u],
          system::router_capacity_for(net, u), ack_stalled, in_fault,
          delta_estimate, bandwidth_estimate);
    }
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kSlots);
  }

  FleetRunResult result;
  result.outcomes.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    sim::UserOutcome outcome =
        system::finalize_user_outcome(worlds[u], base);
    outcome.home_server = static_cast<double>(home[u]);
    outcome.migrations = static_cast<double>(user_migrations[u]);
    result.outcomes.push_back(outcome);
  }
  for (std::size_t k = 0; k < n_servers; ++k) {
    stats.per_server[k].mean_budget_mbps =
        budget_sum[k] / static_cast<double>(base.slots);
    stats.per_server[k].mean_utilization =
        util_slots[k] == 0 ? 0.0
                           : util_sum[k] / static_cast<double>(util_slots[k]);
  }
  stats.reabsorbed_fraction =
      stats.affected_users == 0
          ? 1.0
          : static_cast<double>(stats.reabsorbed_users) /
                static_cast<double>(stats.affected_users);
  stats.mean_reabsorb_slots =
      stats.reabsorbed_users == 0
          ? 0.0
          : static_cast<double>(reabsorb_slot_sum) /
                static_cast<double>(stats.reabsorbed_users);
  result.stats = std::move(stats);
  return result;
}

}  // namespace cvr::fleet
