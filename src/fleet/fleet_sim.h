// A fleet of K edge servers with failover (docs/fleet.md).
//
// The paper solves one edge server's per-slot knapsack; the roadmap's
// north star needs a *fleet*: K servers, each running its own
// SlotArena/allocate_into hot path over its members with a local budget,
// under a controller that splits the backhaul budget B across servers
// and owns the user -> server assignment (consistent-hash sharded, with
// a mirrored mode for comparison). The radio access network stays keyed
// by user — migrating a user moves their compute, never their router.
//
// Failure model (faults::FaultType server scope):
//   * kServerCrash — the server's in-memory per-user state is wiped and
//     its members are orphaned. Orphans re-enter through the existing
//     AdmissionController via a retry queue with exponential backoff and
//     deterministic jitter (bounded attempts, per-user timeout, then the
//     user is lost). Carried state — the delta_bar tallies, viewed-
//     quality mean, bandwidth EMA, last pose, watchdog flags — crosses
//     in a proto::UserHandoff frame, so a re-admitted user's quality
//     trajectory continues instead of restarting cold. Survivors absorb
//     the load through the constraint-(7) degrade ladder (level cap 1,
//     ramped back up) rather than collapsing.
//   * kServerRecover — truncates the first covering crash window; the
//     server rejoins cold and becomes eligible for assignments again.
//   * kFleetPartition — the server keeps serving its members on a
//     frozen budget, but no users migrate in or out and rebalancing
//     skips it.
//
// Determinism: the run is a pure function of (config, seed, repeat) —
// assignment, checkpoints, backoff jitter and admission are all
// deterministic, and the shared measurement RNG is consumed in exactly
// the order SystemSim consumes it. A K=1 fleet with an empty schedule
// is bit-identical to system::SystemSim (guard-tested), because both
// compose the same system::slot_pipeline helpers in the same order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/allocator.h"
#include "src/fleet/assignment.h"
#include "src/fleet/backoff.h"
#include "src/sim/metrics.h"
#include "src/system/admission.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/telemetry/telemetry.h"

namespace cvr::fleet {

/// How users map onto edge servers.
enum class AssignmentMode {
  /// Consistent-hash sharding: one owner per user; on crash, orphans
  /// queue for re-admission at the ring's next eligible server.
  kShardedHash,
  /// Sharded ownership plus a warm standby: checkpoints are replicated
  /// to the ring backup, which attempts re-admission at the crash slot
  /// itself (no backoff delay for the first attempt).
  kMirrored,
};

/// How the controller splits the backhaul budget B across the alive,
/// unpartitioned servers each slot.
enum class BudgetPolicy {
  kEqual,              ///< B / |alive & unpartitioned|.
  kProportionalUsers,  ///< Proportional to current member counts.
};

/// A scripted live migration (healthy source and destination): at
/// `slot`, `user`'s state is exported, crosses the wire format, and is
/// imported at `to_server`. The state-carry equivalence test is built
/// on these.
struct PlannedMigration {
  std::size_t slot = 0;
  std::size_t user = 0;
  std::size_t to_server = 0;
};

struct FleetConfig {
  system::SystemSimConfig base;  ///< World, access network, faults, seed.
  std::size_t servers = 1;       ///< K.
  AssignmentMode assignment = AssignmentMode::kShardedHash;
  BudgetPolicy budget = BudgetPolicy::kEqual;
  /// Total backhaul budget B (Mbps) split across servers; 0 derives the
  /// single-server nominal (router_aggregate_mbps x routers), which is
  /// what makes the K=1 fleet's constraint (6) identical to SystemSim.
  double backhaul_mbps = 0.0;
  BackoffPolicy backoff;
  system::AdmissionPolicyConfig admission;
  /// Every k-th slot each user's carried state is checkpointed (encoded
  /// through the wire format) so a crash has a frame to fail over with;
  /// the frame is up to k slots stale. Only active when servers > 1.
  std::size_t checkpoint_period_slots = 16;
  std::size_t ring_vnodes = 64;  ///< Virtual nodes per server.
  /// Degrade-admitted users re-enter pinned to level 1; the cap rises
  /// one level every this-many slots until released (the constraint-(7)
  /// ramp, same mechanism as the load service's degrade ladder).
  std::size_t ramp_slots_per_level = 33;
  std::vector<PlannedMigration> planned_migrations;
  /// Across-server slot parallelism (docs/fleet.md): worker count for
  /// the per-server phases (pose ingest, problem build, solve, tile
  /// requests, rendering). 1 = serial reference schedule; 0 = all
  /// hardware threads; n > 1 = a pool of n workers. Requires a
  /// stateless(), clone()able allocator — otherwise the run silently
  /// falls back to serial. Results are bit-identical across all values
  /// (the global phases — fleet control, budget split, router service,
  /// the RNG-consuming serve loop — always run on the coordinating
  /// thread). The CVR_FLEET_THREADS env var overrides this when set
  /// (CI's forced-serial leg, mirroring CVR_FORCE_SCALAR).
  std::size_t threads = 1;
};

/// Per-server accounting for one run.
struct FleetServerStats {
  std::size_t served_user_slots = 0;  ///< Sum over slots of member count.
  double mean_budget_mbps = 0.0;      ///< Mean per-slot budget share.
  /// Mean of (sum of members' allocated rates) / budget over the slots
  /// the server was alive with a positive budget.
  double mean_utilization = 0.0;
};

/// Fleet-level accounting for one run (all deterministic; the fleet_
/// telemetry counters mirror the event counts).
struct FleetStats {
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  std::size_t migrations = 0;       ///< Successful re-admissions + planned.
  std::size_t handoff_frames = 0;   ///< UserHandoff frames encoded.
  std::size_t retry_attempts = 0;   ///< Re-admission attempts made.
  std::size_t rejects = 0;          ///< Attempts the controller rejected.
  std::size_t affected_users = 0;   ///< Users orphaned by crashes.
  std::size_t reabsorbed_users = 0; ///< Orphans re-admitted somewhere.
  std::size_t lost_users = 0;       ///< Orphans dropped (attempts/timeout).
  double reabsorbed_fraction = 1.0; ///< reabsorbed / affected (1 if none).
  double mean_reabsorb_slots = 0.0; ///< Crash -> re-admission, mean.
  std::size_t max_reabsorb_slots = 0;
  std::vector<FleetServerStats> per_server;
};

struct FleetRunResult {
  std::vector<sim::UserOutcome> outcomes;  ///< One per user.
  FleetStats stats;
};

class FleetSim {
 public:
  /// Validates the config (throws std::invalid_argument on zero
  /// servers/vnodes/checkpoint period, a negative backhaul, an invalid
  /// backoff policy, or a planned migration out of range).
  explicit FleetSim(FleetConfig config);

  /// Runs one repeat. Deterministic in (config, repeat): outcomes,
  /// stats, and timeline are bit-identical across invocations and
  /// thread counts; telemetry is measurement metadata except the
  /// fleet_ counters, which are deterministic event counts.
  FleetRunResult run(core::Allocator& allocator, std::size_t repeat,
                     system::Timeline* timeline = nullptr,
                     telemetry::Collector* telemetry = nullptr) const;

  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
};

}  // namespace cvr::fleet
