// Retry-with-exponential-backoff-and-jitter for failover re-admission
// (docs/fleet.md).
//
// When an edge server crashes, its orphaned users queue for re-admission
// to survivors. Retrying everyone every slot would hammer the admission
// controller exactly when capacity is scarcest, and retrying in lockstep
// would synchronize the herd — so attempts are spaced exponentially and
// de-synchronized by deterministic per-(user, attempt) jitter. The delay
// is a pure function of (policy, seed, user, attempt): no hidden state,
// so the whole failover replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cvr::fleet {

struct BackoffPolicy {
  /// Delay before the first re-admission attempt (slots; >= 1 enforced
  /// by retry_delay_slots). Models crash-detection latency.
  std::size_t base_delay_slots = 2;
  /// Exponential growth factor per failed attempt. Must be >= 1.
  double multiplier = 2.0;
  /// Cap on the un-jittered delay (slots).
  std::size_t max_delay_slots = 64;
  /// Multiplicative jitter half-width: the delay is scaled by a
  /// deterministic factor in [1 - jitter_fraction, 1 + jitter_fraction].
  /// Must lie in [0, 1).
  double jitter_fraction = 0.3;
  /// Attempts after which the user is dropped (rejected for good).
  std::size_t max_attempts = 8;
  /// Wall-clock bound (slots since the crash) after which a still-queued
  /// user is dropped regardless of attempts remaining.
  std::size_t timeout_slots = 600;
};

/// Throws std::invalid_argument on multiplier < 1, jitter_fraction
/// outside [0, 1), zero max_attempts, or zero timeout_slots.
void validate(const BackoffPolicy& policy);

/// Slots to wait before attempt number `attempt` (0-based): the capped
/// exponential base_delay * multiplier^attempt, scaled by the jitter
/// factor, never below 1. Pure and deterministic in every argument; the
/// un-jittered schedule is non-decreasing in `attempt`, and the jittered
/// delay always lies within [1-j, 1+j] times the un-jittered one.
std::size_t retry_delay_slots(const BackoffPolicy& policy, std::uint64_t seed,
                              std::size_t user, std::size_t attempt);

}  // namespace cvr::fleet
