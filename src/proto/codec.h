// Binary wire codec for the client <-> server protocol.
//
// Little-endian, length-checked primitives with a CRC32 frame check —
// the encoding a production port of the paper's Java/Android protocol
// would put on the TCP side channel (poses, ACKs) and in RTP payload
// headers. Deliberately dependency-free and allocation-light.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cvr::proto {

using Buffer = std::vector<std::uint8_t>;

/// Appends primitives to a buffer (little-endian).
class Writer {
 public:
  explicit Writer(Buffer& out) : out_(&out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void bytes(const std::uint8_t* data, std::size_t size);

 private:
  Buffer* out_;
};

/// Reads primitives; all methods throw std::out_of_range on truncation.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const Buffer& buffer)
      : Reader(buffer.data(), buffer.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Length-prefixed byte string (copies out).
  Buffer bytes();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected). Table-driven, no dependencies.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(const Buffer& buffer) {
  return crc32(buffer.data(), buffer.size());
}

/// Frames a payload: u32 length | payload | u32 crc32(payload).
Buffer frame(const Buffer& payload);

/// Unframes; throws std::runtime_error on bad length or CRC mismatch.
/// On success consumes exactly one frame from the reader.
Buffer unframe(Reader& reader);

}  // namespace cvr::proto
