#include "src/proto/codec.h"

#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace cvr::proto {

void Writer::u8(std::uint8_t v) { out_->push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(const std::uint8_t* data, std::size_t size) {
  u32(static_cast<std::uint32_t>(size));
  out_->insert(out_->end(), data, data + size);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > size_) {
    throw std::out_of_range("proto::Reader: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Buffer Reader::bytes() {
  const std::uint32_t size = u32();
  need(size);
  Buffer out(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return out;
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Buffer frame(const Buffer& payload) {
  Buffer out;
  out.reserve(payload.size() + 8);
  Writer writer(out);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  writer.u32(crc32(payload));
  return out;
}

Buffer unframe(Reader& reader) {
  const std::uint32_t size = reader.u32();
  if (size > reader.remaining()) {
    throw std::runtime_error("proto::unframe: length exceeds input");
  }
  Buffer payload;
  payload.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) payload.push_back(reader.u8());
  const std::uint32_t expected = reader.u32();
  if (crc32(payload) != expected) {
    throw std::runtime_error("proto::unframe: CRC mismatch");
  }
  return payload;
}

}  // namespace cvr::proto
