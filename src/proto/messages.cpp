#include "src/proto/messages.h"

#include <cmath>
#include <stdexcept>

#include "src/content/quality.h"

namespace cvr::proto {

namespace {

Buffer payload_with_tag(MessageType type) {
  Buffer payload;
  Writer writer(payload);
  writer.u8(static_cast<std::uint8_t>(type));
  return payload;
}

Reader open_payload(const Buffer& framed, MessageType expected,
                    Buffer& storage) {
  Reader framed_reader(framed);
  storage = unframe(framed_reader);
  if (!framed_reader.done()) {
    throw std::runtime_error("proto: trailing bytes after frame");
  }
  Reader reader(storage);
  const auto tag = reader.u8();
  if (tag != static_cast<std::uint8_t>(expected)) {
    throw std::runtime_error("proto: unexpected message type");
  }
  return reader;
}

void write_pose(Writer& writer, const motion::Pose& pose) {
  writer.f64(pose.x);
  writer.f64(pose.y);
  writer.f64(pose.z);
  writer.f64(pose.yaw);
  writer.f64(pose.pitch);
  writer.f64(pose.roll);
}

motion::Pose read_pose(Reader& reader) {
  motion::Pose pose;
  pose.x = reader.f64();
  pose.y = reader.f64();
  pose.z = reader.f64();
  pose.yaw = reader.f64();
  pose.pitch = reader.f64();
  pose.roll = reader.f64();
  return pose;
}

void write_tiles(Writer& writer, const std::vector<content::VideoId>& tiles) {
  writer.u32(static_cast<std::uint32_t>(tiles.size()));
  for (content::VideoId id : tiles) writer.u64(id);
}

std::vector<content::VideoId> read_tiles(Reader& reader) {
  const std::uint32_t count = reader.u32();
  std::vector<content::VideoId> tiles;
  tiles.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const content::VideoId id = reader.u64();
    // Validate the packed key (throws out_of_range if malformed levels /
    // tile indices were smuggled in); re-packing must be the identity.
    const content::TileKey key = content::unpack_video_id(id);
    if (!content::is_valid_level(key.level)) {
      throw std::runtime_error("proto: invalid quality level in tile id");
    }
    tiles.push_back(id);
  }
  return tiles;
}

/// Shared invariant check for UserHandoff (see the struct comment).
/// `Error` selects the exception type: std::invalid_argument on encode
/// (caller bug), std::runtime_error on decode (hostile bytes).
template <typename Error>
void validate_user_handoff(const UserHandoff& message) {
  const auto require = [](bool ok, const char* what) {
    if (!ok) throw Error(what);
  };
  const auto tally_ok = [](double hits, std::uint64_t count) {
    return std::isfinite(hits) && hits >= 0.0 &&
           hits <= static_cast<double>(count);
  };
  require(tally_ok(message.delta_hits, message.delta_count),
          "proto: handoff delta tally out of range");
  require(tally_ok(message.base_hits, message.base_count),
          "proto: handoff base tally out of range");
  require(std::isfinite(message.qbar_sum) && message.qbar_sum >= 0.0,
          "proto: handoff qbar_sum must be finite and non-negative");
  require(message.qbar_slots > 0 || message.qbar_sum == 0.0,
          "proto: handoff qbar_sum without qbar_slots");
  require(message.qbar_sum <=
              static_cast<double>(message.qbar_slots) *
                  static_cast<double>(content::kNumQualityLevels),
          "proto: handoff qbar_sum above the level ceiling");
  require(std::isfinite(message.bandwidth_mbps) &&
              message.bandwidth_mbps >= 0.0,
          "proto: handoff bandwidth must be finite and non-negative");
  require(std::isfinite(message.transmit_fraction) &&
              message.transmit_fraction >= 0.0 &&
              message.transmit_fraction <= 1.0,
          "proto: handoff transmit_fraction outside [0, 1]");
  const double components[] = {message.pose.x,     message.pose.y,
                               message.pose.z,     message.pose.yaw,
                               message.pose.pitch, message.pose.roll};
  for (double c : components) {
    require(std::isfinite(c), "proto: handoff pose must be finite");
  }
  if (!message.has_pose) {
    require(message.pose == motion::Pose{} && message.pose_slot == 0,
            "proto: handoff carries pose state without has_pose");
  }
}

}  // namespace

Buffer encode(const PoseUpdate& message) {
  Buffer payload = payload_with_tag(MessageType::kPoseUpdate);
  Writer writer(payload);
  writer.u32(message.user);
  writer.u64(message.slot);
  write_pose(writer, message.pose);
  return frame(payload);
}

Buffer encode(const DeliveryAck& message) {
  Buffer payload = payload_with_tag(MessageType::kDeliveryAck);
  Writer writer(payload);
  writer.u32(message.user);
  writer.u64(message.slot);
  write_tiles(writer, message.tiles);
  return frame(payload);
}

Buffer encode(const ReleaseAck& message) {
  Buffer payload = payload_with_tag(MessageType::kReleaseAck);
  Writer writer(payload);
  writer.u32(message.user);
  writer.u64(message.slot);
  write_tiles(writer, message.tiles);
  return frame(payload);
}

Buffer encode(const TileHeader& message) {
  if (message.packet_index >= message.packet_count) {
    throw std::invalid_argument("proto: packet_index >= packet_count");
  }
  Buffer payload = payload_with_tag(MessageType::kTileHeader);
  Writer writer(payload);
  writer.u64(message.video_id);
  writer.u32(message.packet_index);
  writer.u32(message.packet_count);
  writer.u64(message.slot);
  return frame(payload);
}

Buffer encode(const ConnectRequest& message) {
  if (!std::isfinite(message.qos_ms) || message.qos_ms <= 0.0) {
    throw std::invalid_argument("proto: qos_ms must be finite and positive");
  }
  Buffer payload = payload_with_tag(MessageType::kConnectRequest);
  Writer writer(payload);
  writer.u64(message.session);
  writer.u64(message.slot);
  writer.f64(message.qos_ms);
  return frame(payload);
}

Buffer encode(const AdmitResponse& message) {
  if (static_cast<std::uint8_t>(message.decision) > 2) {
    throw std::invalid_argument("proto: unknown admission decision");
  }
  if (message.level_cap >
      static_cast<std::uint8_t>(content::kNumQualityLevels)) {
    throw std::invalid_argument("proto: level_cap above the level count");
  }
  Buffer payload = payload_with_tag(MessageType::kAdmitResponse);
  Writer writer(payload);
  writer.u64(message.session);
  writer.u64(message.slot);
  writer.u8(static_cast<std::uint8_t>(message.decision));
  writer.u8(message.level_cap);
  return frame(payload);
}

Buffer encode(const DisconnectNotice& message) {
  Buffer payload = payload_with_tag(MessageType::kDisconnectNotice);
  Writer writer(payload);
  writer.u64(message.session);
  writer.u64(message.slot);
  return frame(payload);
}

Buffer encode(const UserHandoff& message) {
  validate_user_handoff<std::invalid_argument>(message);
  Buffer payload = payload_with_tag(MessageType::kUserHandoff);
  Writer writer(payload);
  writer.u32(message.user);
  writer.u64(message.slot);
  writer.f64(message.delta_hits);
  writer.u64(message.delta_count);
  writer.f64(message.base_hits);
  writer.u64(message.base_count);
  writer.f64(message.qbar_sum);
  writer.u64(message.qbar_slots);
  writer.f64(message.bandwidth_mbps);
  writer.u64(message.bandwidth_observations);
  write_pose(writer, message.pose);
  writer.u64(message.pose_slot);
  const std::uint8_t flags =
      static_cast<std::uint8_t>((message.has_pose ? 1u : 0u) |
                                (message.safe_mode ? 2u : 0u) |
                                (message.pose_stale ? 4u : 0u));
  writer.u8(flags);
  writer.f64(message.transmit_fraction);
  return frame(payload);
}

MessageType peek_type(const Buffer& framed) {
  Reader framed_reader(framed);
  const Buffer payload = unframe(framed_reader);
  Reader reader(payload);
  const auto tag = reader.u8();
  if (tag < 1 || tag > 8) {
    throw std::runtime_error("proto: unknown message type tag");
  }
  return static_cast<MessageType>(tag);
}

PoseUpdate decode_pose_update(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kPoseUpdate, storage);
  PoseUpdate message;
  message.user = reader.u32();
  message.slot = reader.u64();
  message.pose = read_pose(reader);
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  return message;
}

DeliveryAck decode_delivery_ack(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kDeliveryAck, storage);
  DeliveryAck message;
  message.user = reader.u32();
  message.slot = reader.u64();
  message.tiles = read_tiles(reader);
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  return message;
}

ReleaseAck decode_release_ack(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kReleaseAck, storage);
  ReleaseAck message;
  message.user = reader.u32();
  message.slot = reader.u64();
  message.tiles = read_tiles(reader);
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  return message;
}

TileHeader decode_tile_header(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kTileHeader, storage);
  TileHeader message;
  message.video_id = reader.u64();
  message.packet_index = reader.u32();
  message.packet_count = reader.u32();
  message.slot = reader.u64();
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  if (message.packet_index >= message.packet_count) {
    throw std::runtime_error("proto: packet_index >= packet_count");
  }
  return message;
}

ConnectRequest decode_connect_request(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kConnectRequest, storage);
  ConnectRequest message;
  message.session = reader.u64();
  message.slot = reader.u64();
  message.qos_ms = reader.f64();
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  if (!std::isfinite(message.qos_ms) || message.qos_ms <= 0.0) {
    throw std::runtime_error("proto: qos_ms must be finite and positive");
  }
  return message;
}

AdmitResponse decode_admit_response(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kAdmitResponse, storage);
  AdmitResponse message;
  message.session = reader.u64();
  message.slot = reader.u64();
  const std::uint8_t decision = reader.u8();
  message.level_cap = reader.u8();
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  if (decision > 2) {
    throw std::runtime_error("proto: unknown admission decision");
  }
  message.decision = static_cast<WireAdmission>(decision);
  if (message.level_cap >
      static_cast<std::uint8_t>(content::kNumQualityLevels)) {
    throw std::runtime_error("proto: level_cap above the level count");
  }
  // Decision/cap consistency is part of the wire contract: a reject
  // grants no levels, an admit or degrade-admit grants at least one.
  if (message.decision == WireAdmission::kReject) {
    if (message.level_cap != 0) {
      throw std::runtime_error("proto: reject must carry level_cap 0");
    }
  } else if (message.level_cap == 0) {
    throw std::runtime_error("proto: admit requires a non-zero level_cap");
  }
  return message;
}

DisconnectNotice decode_disconnect_notice(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kDisconnectNotice, storage);
  DisconnectNotice message;
  message.session = reader.u64();
  message.slot = reader.u64();
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  return message;
}

UserHandoff decode_user_handoff(const Buffer& framed) {
  Buffer storage;
  Reader reader = open_payload(framed, MessageType::kUserHandoff, storage);
  UserHandoff message;
  message.user = reader.u32();
  message.slot = reader.u64();
  message.delta_hits = reader.f64();
  message.delta_count = reader.u64();
  message.base_hits = reader.f64();
  message.base_count = reader.u64();
  message.qbar_sum = reader.f64();
  message.qbar_slots = reader.u64();
  message.bandwidth_mbps = reader.f64();
  message.bandwidth_observations = reader.u64();
  message.pose = read_pose(reader);
  message.pose_slot = reader.u64();
  const std::uint8_t flags = reader.u8();
  message.transmit_fraction = reader.f64();
  if (!reader.done()) throw std::runtime_error("proto: trailing payload bytes");
  if (flags > 7) {
    throw std::runtime_error("proto: handoff carries unknown flag bits");
  }
  message.has_pose = (flags & 1u) != 0;
  message.safe_mode = (flags & 2u) != 0;
  message.pose_stale = (flags & 4u) != 0;
  validate_user_handoff<std::runtime_error>(message);
  return message;
}

}  // namespace cvr::proto
