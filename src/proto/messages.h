// Protocol messages of the Section-V system.
//
//   * PoseUpdate   — client -> server over TCP: "Users will replay real
//     users' motion traces and upload the trace to the server through
//     TCP periodically."
//   * DeliveryAck  — client -> server over TCP: "we manually send
//     acknowledgments (ACK) from the user to the server through TCP."
//   * ReleaseAck   — client -> server over TCP: "The user also sends
//     ACKs to let the server know when the tiles are released."
//   * TileHeader   — server -> client, prefixed to every RTP payload:
//     which video ID this packet belongs to and where it sits in the
//     tile, so the decoder can detect completeness.
//
// Load-service control plane (system::LoadServer, docs/load_service.md):
//
//   * ConnectRequest   — client -> server: a new session asks to join,
//     carrying its per-request QoS latency budget.
//   * AdmitResponse    — server -> client: the admission decision
//     (admit / degrade-admit / reject) plus the initial level cap a
//     degrade-admitted session starts under.
//   * DisconnectNotice — client -> server: the session is leaving and
//     its user slot can be reclaimed.
//
// Fleet control plane (fleet::FleetSim, docs/fleet.md):
//
//   * UserHandoff — server -> server: one user's carried estimator
//     state for a live migration or crash failover — the Welford-style
//     accuracy tallies behind delta_bar_n, the viewed-quality running
//     mean, the bandwidth EMA, the last pose on record, and the
//     watchdog flags — so a migrated user's quality trajectory
//     continues at the destination instead of restarting cold.
//
// Every message carries a 1-byte type tag; encode/decode round-trip via
// the codec's framed wire format. Decoding validates the tag and all
// invariants (valid quality levels, packet index < count, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "src/content/tile.h"
#include "src/motion/pose.h"
#include "src/proto/codec.h"

namespace cvr::proto {

enum class MessageType : std::uint8_t {
  kPoseUpdate = 1,
  kDeliveryAck = 2,
  kReleaseAck = 3,
  kTileHeader = 4,
  kConnectRequest = 5,
  kAdmitResponse = 6,
  kDisconnectNotice = 7,
  kUserHandoff = 8,
};

/// Admission decisions as they appear on the wire (AdmitResponse). The
/// system-layer policy enum (system::AdmissionDecision) converts
/// to/from this so proto stays below the platform layer.
enum class WireAdmission : std::uint8_t {
  kAdmit = 0,    ///< Full admission: every quality level reachable.
  kDegrade = 1,  ///< Degrade-admit: pinned to level 1 via constraint (7).
  kReject = 2,   ///< No capacity: the session is turned away.
};

struct PoseUpdate {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  motion::Pose pose;

  friend bool operator==(const PoseUpdate&, const PoseUpdate&) = default;
};

struct DeliveryAck {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  std::vector<content::VideoId> tiles;

  friend bool operator==(const DeliveryAck&, const DeliveryAck&) = default;
};

struct ReleaseAck {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  std::vector<content::VideoId> tiles;

  friend bool operator==(const ReleaseAck&, const ReleaseAck&) = default;
};

struct TileHeader {
  content::VideoId video_id = 0;
  std::uint32_t packet_index = 0;
  std::uint32_t packet_count = 0;
  std::uint64_t slot = 0;

  friend bool operator==(const TileHeader&, const TileHeader&) = default;
};

struct ConnectRequest {
  std::uint64_t session = 0;  ///< Globally unique session id.
  std::uint64_t slot = 0;     ///< Arrival slot on the service timeline.
  double qos_ms = 0.0;        ///< Per-request slot-latency budget (> 0, finite).

  friend bool operator==(const ConnectRequest&,
                         const ConnectRequest&) = default;
};

struct AdmitResponse {
  std::uint64_t session = 0;
  std::uint64_t slot = 0;
  WireAdmission decision = WireAdmission::kReject;
  /// Initial quality-level cap for a degrade-admitted session (1 when
  /// decision == kDegrade); kNumQualityLevels for a full admit; 0 for a
  /// reject (no levels granted).
  std::uint8_t level_cap = 0;

  friend bool operator==(const AdmitResponse&, const AdmitResponse&) = default;
};

struct DisconnectNotice {
  std::uint64_t session = 0;
  std::uint64_t slot = 0;

  friend bool operator==(const DisconnectNotice&,
                         const DisconnectNotice&) = default;
};

/// One user's carried server-side state for a migration (see the fleet
/// section of the header comment). Cross-field invariants, enforced on
/// both encode and decode:
///
///   * hit sums are finite, non-negative, and never exceed their
///     observation counts (they are sums of {0, 1} outcomes);
///   * qbar_slots == 0 implies qbar_sum == 0, and qbar_sum never
///     exceeds qbar_slots x the top quality level;
///   * bandwidth_mbps is finite and non-negative;
///   * transmit_fraction lies in [0, 1];
///   * every pose component is finite, and has_pose == false implies a
///     default pose with pose_slot == 0 (no phantom pose state);
///   * the flags byte carries no unknown bits.
struct UserHandoff {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;  ///< Export slot on the source server's timeline.
  // delta_bar_n tallies (motion::AccuracyEstimator): hit sum + count.
  double delta_hits = 0.0;
  std::uint64_t delta_count = 0;
  // Loss-free base channel tallies (loss-aware mode; zero otherwise).
  double base_hits = 0.0;
  std::uint64_t base_count = 0;
  // Viewed-quality running mean qbar_n: sum + slot count.
  double qbar_sum = 0.0;
  std::uint64_t qbar_slots = 0;
  // Bandwidth EMA state.
  double bandwidth_mbps = 0.0;
  std::uint64_t bandwidth_observations = 0;
  // Last pose on record plus the slot it was reported for.
  motion::Pose pose;
  std::uint64_t pose_slot = 0;
  bool has_pose = false;
  bool safe_mode = false;
  bool pose_stale = false;
  /// EMA of transmitted/full tile-set rate (repetition suppression).
  double transmit_fraction = 1.0;

  friend bool operator==(const UserHandoff&, const UserHandoff&) = default;
};

// Encoders: framed buffers ready for the wire.
Buffer encode(const PoseUpdate& message);
Buffer encode(const DeliveryAck& message);
Buffer encode(const ReleaseAck& message);
Buffer encode(const TileHeader& message);
Buffer encode(const ConnectRequest& message);
Buffer encode(const AdmitResponse& message);
Buffer encode(const DisconnectNotice& message);
Buffer encode(const UserHandoff& message);

/// Peeks the type tag of a framed message without fully decoding it.
/// Throws std::runtime_error on framing/CRC errors or unknown tags.
MessageType peek_type(const Buffer& framed);

// Decoders: throw std::runtime_error on wrong tag, framing error, CRC
// mismatch, or invariant violation (e.g. packet_index >= packet_count).
PoseUpdate decode_pose_update(const Buffer& framed);
DeliveryAck decode_delivery_ack(const Buffer& framed);
ReleaseAck decode_release_ack(const Buffer& framed);
TileHeader decode_tile_header(const Buffer& framed);
ConnectRequest decode_connect_request(const Buffer& framed);
AdmitResponse decode_admit_response(const Buffer& framed);
DisconnectNotice decode_disconnect_notice(const Buffer& framed);
UserHandoff decode_user_handoff(const Buffer& framed);

}  // namespace cvr::proto
