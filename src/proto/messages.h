// Protocol messages of the Section-V system.
//
//   * PoseUpdate   — client -> server over TCP: "Users will replay real
//     users' motion traces and upload the trace to the server through
//     TCP periodically."
//   * DeliveryAck  — client -> server over TCP: "we manually send
//     acknowledgments (ACK) from the user to the server through TCP."
//   * ReleaseAck   — client -> server over TCP: "The user also sends
//     ACKs to let the server know when the tiles are released."
//   * TileHeader   — server -> client, prefixed to every RTP payload:
//     which video ID this packet belongs to and where it sits in the
//     tile, so the decoder can detect completeness.
//
// Every message carries a 1-byte type tag; encode/decode round-trip via
// the codec's framed wire format. Decoding validates the tag and all
// invariants (valid quality levels, packet index < count, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "src/content/tile.h"
#include "src/motion/pose.h"
#include "src/proto/codec.h"

namespace cvr::proto {

enum class MessageType : std::uint8_t {
  kPoseUpdate = 1,
  kDeliveryAck = 2,
  kReleaseAck = 3,
  kTileHeader = 4,
};

struct PoseUpdate {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  motion::Pose pose;

  friend bool operator==(const PoseUpdate&, const PoseUpdate&) = default;
};

struct DeliveryAck {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  std::vector<content::VideoId> tiles;

  friend bool operator==(const DeliveryAck&, const DeliveryAck&) = default;
};

struct ReleaseAck {
  std::uint32_t user = 0;
  std::uint64_t slot = 0;
  std::vector<content::VideoId> tiles;

  friend bool operator==(const ReleaseAck&, const ReleaseAck&) = default;
};

struct TileHeader {
  content::VideoId video_id = 0;
  std::uint32_t packet_index = 0;
  std::uint32_t packet_count = 0;
  std::uint64_t slot = 0;

  friend bool operator==(const TileHeader&, const TileHeader&) = default;
};

// Encoders: framed buffers ready for the wire.
Buffer encode(const PoseUpdate& message);
Buffer encode(const DeliveryAck& message);
Buffer encode(const ReleaseAck& message);
Buffer encode(const TileHeader& message);

/// Peeks the type tag of a framed message without fully decoding it.
/// Throws std::runtime_error on framing/CRC errors or unknown tags.
MessageType peek_type(const Buffer& framed);

// Decoders: throw std::runtime_error on wrong tag, framing error, CRC
// mismatch, or invariant violation (e.g. packet_index >= packet_count).
PoseUpdate decode_pose_update(const Buffer& framed);
DeliveryAck decode_delivery_ack(const Buffer& framed);
ReleaseAck decode_release_ack(const Buffer& framed);
TileHeader decode_tile_header(const Buffer& framed);

}  // namespace cvr::proto
