#include "src/core/simd.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace cvr::core::simd {

namespace {

Backend resolve_backend() {
  const char* force = std::getenv("CVR_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return Backend::kScalar;
  return avx2_available() ? Backend::kAvx2 : Backend::kScalar;
}

Backend& backend_slot() {
  static Backend backend = resolve_backend();
  return backend;
}

}  // namespace

bool avx2_compiled() {
#if defined(CVR_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_available() {
#if defined(CVR_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend active_backend() { return backend_slot(); }

const char* backend_name(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "scalar";
}

void set_backend_for_testing(Backend backend) {
  if (backend == Backend::kAvx2 && !avx2_available()) {
    throw std::invalid_argument(
        "set_backend_for_testing: AVX2 not available on this host/build");
  }
  backend_slot() = backend;
}

namespace detail {

std::size_t argmax_first_scalar(const double* scores, std::size_t n) {
  std::size_t best = 0;
  double best_score = scores[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = i;
    }
  }
  return best;
}

}  // namespace detail

std::size_t argmax_first(const double* scores, std::size_t n) {
#if defined(CVR_HAVE_AVX2)
  if (active_backend() == Backend::kAvx2) {
    return detail::argmax_first_avx2(scores, n);
  }
#endif
  return detail::argmax_first_scalar(scores, n);
}

namespace {

// Plain numeric maximum of scores[begin..end) — comparisons only, no
// arithmetic, so it is backend-independent by construction.
double range_maximum(const double* scores, std::size_t begin,
                     std::size_t end) {
  double best = scores[begin];
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (scores[i] > best) best = scores[i];
  }
  return best;
}

}  // namespace

void FirstMaxTracker::reset(const double* scores, std::size_t n) {
  scores_ = scores;
  n_ = n;
  n_blocks_ = (n + kBlock - 1) / kBlock;
  // Pad the block-maxima array to a full vector multiple so argmax()
  // can hand it straight to argmax_first; -inf pads can never win.
  block_max_.assign(std::max<std::size_t>(padded(n_blocks_), kLanes),
                    -std::numeric_limits<double>::infinity());
  for (std::size_t b = 0; b < n_blocks_; ++b) {
    block_max_[b] =
        range_maximum(scores_, b * kBlock, std::min(n_, (b + 1) * kBlock));
  }
}

void FirstMaxTracker::update(std::size_t i) {
  const std::size_t b = i / kBlock;
  block_max_[b] =
      range_maximum(scores_, b * kBlock, std::min(n_, (b + 1) * kBlock));
}

std::size_t FirstMaxTracker::argmax() const {
  const std::size_t b = argmax_first(block_max_.data(), block_max_.size());
  // argmax_first returns the first block whose maximum is the global
  // numeric maximum, i.e. the first block containing it; the first
  // element equal to it inside that block is the forward-scan winner.
  // (Numeric equality, not bit equality: -0.0 == 0.0 matches the
  // forward scan's strict-> semantics, and NaN is excluded by
  // precondition.)
  const double target = block_max_[b];
  const std::size_t begin = b * kBlock;
  const std::size_t end = std::min(n_, begin + kBlock);
  for (std::size_t i = begin; i < end; ++i) {
    if (scores_[i] == target) return i;
  }
  return begin;  // unreachable for NaN-free input
}

}  // namespace cvr::core::simd
