#include "src/core/dv_greedy.h"

#include <queue>
#include <vector>

namespace cvr::core {

std::string_view DvGreedyAllocator::name() const {
  switch (mode_) {
    case Mode::kDensityOnly:
      return "density-greedy";
    case Mode::kValueOnly:
      return "value-greedy";
    case Mode::kCombined:
      return "dv-greedy";
  }
  return "dv-greedy";
}

std::vector<QualityLevel> DvGreedyAllocator::greedy_pass(
    const SlotProblem& problem, Rank rank) const {
  const std::size_t n_users = problem.user_count();
  std::vector<QualityLevel> q(n_users, 1);
  std::vector<bool> active(n_users, true);

  double used_rate = 0.0;
  for (std::size_t n = 0; n < n_users; ++n) used_rate += problem.users[n].rate[0];

  // quality_verification(q_n, I) from Algorithm 1, applied *after* a
  // tentative increment: drop the user at the ceiling; revert and drop
  // the user whose increment broke a rate constraint.
  std::size_t active_count = n_users;
  auto deactivate = [&](std::size_t n) {
    if (active[n]) {
      active[n] = false;
      --active_count;
    }
  };
  while (active_count > 0) {
    // argmax over active users of the marginal score at q_n -> q_n + 1.
    double best_score = 0.0;
    std::size_t best = n_users;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (!active[n]) continue;
      if (q[n] >= kNumQualityLevels) {  // defensive; handled on increment
        deactivate(n);
        continue;
      }
      const double score =
          rank == Rank::kDensity
              ? h_density(problem.users[n], q[n], problem.params)
              : h_increment(problem.users[n], q[n], problem.params);
      if (best == n_users || score > best_score) {
        best_score = score;
        best = n;
      }
    }
    if (best == n_users) break;
    if (best_score < 0.0) break;  // "if eta_{n*} < 0 then I = {}"

    // Tentative increment, then quality_verification.
    const auto& user = problem.users[best];
    const double inc = user.rate[static_cast<std::size_t>(q[best])] -
                       user.rate[static_cast<std::size_t>(q[best] - 1)];
    q[best] += 1;
    used_rate += inc;
    bool reverted = false;
    if (!user_feasible(user, q[best]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[best] -= 1;
      used_rate -= inc;
      deactivate(best);
      reverted = true;
    }
    if (!reverted && q[best] == kNumQualityLevels) deactivate(best);
  }
  return q;
}

std::vector<QualityLevel> DvGreedyAllocator::greedy_pass_heap(
    const SlotProblem& problem, Rank rank) const {
  const std::size_t n_users = problem.user_count();
  std::vector<QualityLevel> q(n_users, 1);
  std::vector<bool> active(n_users, true);

  double used_rate = 0.0;
  for (std::size_t n = 0; n < n_users; ++n) used_rate += problem.users[n].rate[0];

  const auto score_at = [&](std::size_t n) {
    return rank == Rank::kDensity
               ? h_density(problem.users[n], q[n], problem.params)
               : h_increment(problem.users[n], q[n], problem.params);
  };

  // Heap entries carry the level they were computed at; an entry whose
  // level no longer matches the user's current level is stale (a fresh
  // one was pushed after the increment) and is discarded on pop. Ties
  // break toward the smaller index, matching the scan's first-strict-max.
  struct Entry {
    double score;
    std::size_t user;
    QualityLevel level;
  };
  const auto worse = [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.user > b.user;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  for (std::size_t n = 0; n < n_users; ++n) {
    if (q[n] < kNumQualityLevels) heap.push({score_at(n), n, q[n]});
  }

  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const std::size_t n = top.user;
    if (!active[n] || top.level != q[n]) continue;  // stale or dead
    if (top.score < 0.0) break;  // max fresh score negative: stop all

    const auto& user = problem.users[n];
    const double inc = user.rate[static_cast<std::size_t>(q[n])] -
                       user.rate[static_cast<std::size_t>(q[n] - 1)];
    q[n] += 1;
    used_rate += inc;
    if (!user_feasible(user, q[n]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[n] -= 1;
      used_rate -= inc;
      active[n] = false;
      continue;
    }
    if (q[n] == kNumQualityLevels) {
      active[n] = false;
      continue;
    }
    heap.push({score_at(n), n, q[n]});
  }
  return q;
}

Allocation DvGreedyAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  if (problem.user_count() == 0) return result;

  const auto run_pass = [&](Rank rank) {
    return strategy_ == Strategy::kHeap ? greedy_pass_heap(problem, rank)
                                        : greedy_pass(problem, rank);
  };

  if (mode_ == Mode::kDensityOnly || mode_ == Mode::kCombined) {
    auto qd = run_pass(Rank::kDensity);
    const double vd = evaluate(problem, qd);
    result.levels = std::move(qd);
    result.objective = vd;
  }
  if (mode_ == Mode::kValueOnly || mode_ == Mode::kCombined) {
    auto qv = run_pass(Rank::kValue);
    const double vv = evaluate(problem, qv);
    if (result.levels.empty() || vv > result.objective) {
      result.levels = std::move(qv);
      result.objective = vv;
    }
  }
  return result;
}

}  // namespace cvr::core
