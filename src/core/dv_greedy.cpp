#include "src/core/dv_greedy.h"

#include <algorithm>
#include <vector>

namespace cvr::core {

std::string_view DvGreedyAllocator::name() const {
  switch (mode_) {
    case Mode::kDensityOnly:
      return "density-greedy";
    case Mode::kValueOnly:
      return "value-greedy";
    case Mode::kCombined:
      return "dv-greedy";
  }
  return "dv-greedy";
}

void DvGreedyAllocator::greedy_pass(const SlotProblem& problem, Rank rank,
                                    std::vector<QualityLevel>& q) {
  const std::size_t n_users = problem.user_count();
  q.assign(n_users, 1);
  active_.assign(n_users, 1);

  double used_rate = 0.0;
  for (std::size_t n = 0; n < n_users; ++n) used_rate += problem.users[n].rate[0];

  // quality_verification(q_n, I) from Algorithm 1, applied *after* a
  // tentative increment: drop the user at the ceiling; revert and drop
  // the user whose increment broke a rate constraint.
  std::size_t active_count = n_users;
  auto deactivate = [&](std::size_t n) {
    if (active_[n]) {
      active_[n] = 0;
      --active_count;
    }
  };
  while (active_count > 0) {
    // argmax over active users of the marginal score at q_n -> q_n + 1.
    double best_score = 0.0;
    std::size_t best = n_users;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (!active_[n]) continue;
      if (q[n] >= kNumQualityLevels) {  // defensive; handled on increment
        deactivate(n);
        continue;
      }
      const double score = rank_score(tables_[n], q[n], rank);
      if (best == n_users || score > best_score) {
        best_score = score;
        best = n;
      }
    }
    if (best == n_users) break;
    if (best_score < 0.0) break;  // "if eta_{n*} < 0 then I = {}"

    // Tentative increment, then quality_verification.
    const auto& user = problem.users[best];
    const double inc = user.rate[static_cast<std::size_t>(q[best])] -
                       user.rate[static_cast<std::size_t>(q[best] - 1)];
    q[best] += 1;
    used_rate += inc;
    bool reverted = false;
    if (!user_feasible(user, q[best]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[best] -= 1;
      used_rate -= inc;
      deactivate(best);
      reverted = true;
    }
    if (!reverted && q[best] == kNumQualityLevels) deactivate(best);
  }
}

void DvGreedyAllocator::greedy_pass_heap(const SlotProblem& problem, Rank rank,
                                         std::vector<QualityLevel>& q) {
  const std::size_t n_users = problem.user_count();
  q.assign(n_users, 1);
  active_.assign(n_users, 1);

  double used_rate = 0.0;
  for (std::size_t n = 0; n < n_users; ++n) used_rate += problem.users[n].rate[0];

  // Heap entries carry the level they were computed at; an entry whose
  // level no longer matches the user's current level is stale (a fresh
  // one was pushed after the increment) and is discarded on pop. Ties
  // break toward the smaller index, matching the scan's first-strict-max.
  // A manual push_heap/pop_heap over a recycled vector — the algorithms
  // std::priority_queue is specified in terms of, so the pop order (and
  // therefore the ascent) is identical.
  const auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.user > b.user;
  };
  heap_.clear();
  for (std::size_t n = 0; n < n_users; ++n) {
    if (q[n] < kNumQualityLevels) {
      heap_.push_back({rank_score(tables_[n], q[n], rank), n, q[n]});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), worse);

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), worse);
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const std::size_t n = top.user;
    if (!active_[n] || top.level != q[n]) continue;  // stale or dead
    if (top.score < 0.0) break;  // max fresh score negative: stop all

    const auto& user = problem.users[n];
    const double inc = user.rate[static_cast<std::size_t>(q[n])] -
                       user.rate[static_cast<std::size_t>(q[n] - 1)];
    q[n] += 1;
    used_rate += inc;
    if (!user_feasible(user, q[n]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[n] -= 1;
      used_rate -= inc;
      active_[n] = 0;
      continue;
    }
    if (q[n] == kNumQualityLevels) {
      active_[n] = 0;
      continue;
    }
    heap_.push_back({rank_score(tables_[n], q[n], rank), n, q[n]});
    std::push_heap(heap_.begin(), heap_.end(), worse);
  }
}

Allocation DvGreedyAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  allocate_into(problem, result);
  return result;
}

void DvGreedyAllocator::allocate_into(const SlotProblem& problem,
                                      Allocation& out) {
  out.levels.clear();
  out.objective = 0.0;
  if (problem.user_count() == 0) return;

  tables_.build(problem);
  const auto run_pass = [&](Rank rank, std::vector<QualityLevel>& dst) {
    if (strategy_ == Strategy::kHeap) {
      greedy_pass_heap(problem, rank, dst);
    } else {
      greedy_pass(problem, rank, dst);
    }
  };

  bool have_result = false;
  if (mode_ == Mode::kDensityOnly || mode_ == Mode::kCombined) {
    run_pass(Rank::kDensity, density_levels_);
    out.levels.assign(density_levels_.begin(), density_levels_.end());
    out.objective = tables_.evaluate(density_levels_);
    have_result = true;
  }
  if (mode_ == Mode::kValueOnly || mode_ == Mode::kCombined) {
    run_pass(Rank::kValue, value_levels_);
    const double vv = tables_.evaluate(value_levels_);
    if (!have_result || vv > out.objective) {
      out.levels.assign(value_levels_.begin(), value_levels_.end());
      out.objective = vv;
    }
  }
}

}  // namespace cvr::core
