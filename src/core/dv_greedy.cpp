#include "src/core/dv_greedy.h"

#include <algorithm>
#include <future>
#include <limits>
#include <vector>

#include "src/core/simd.h"
#include "src/util/thread_pool.h"

namespace cvr::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

std::string_view DvGreedyAllocator::name() const {
  if (warm_start_) return "dv-warm";
  switch (mode_) {
    case Mode::kDensityOnly:
      return "density-greedy";
    case Mode::kValueOnly:
      return "value-greedy";
    case Mode::kCombined:
      return "dv-greedy";
  }
  return "dv-greedy";
}

double DvGreedyAllocator::seed_levels(const SlotProblem& problem, Rank rank,
                                      std::vector<QualityLevel>& q) {
  const std::size_t n_users = problem.user_count();
  const bool warm = warm_start_ && prev_levels_.size() == n_users;
  if (!warm) {
    q.assign(n_users, 1);
    double used_rate = 0.0;
    for (std::size_t n = 0; n < n_users; ++n) {
      used_rate += problem.users[n].rate[0];
    }
    return used_rate;
  }

  // Warm seed: last slot's allocation, clamped per user to the valid
  // level range and constraint (7) — B_n may have dropped since.
  q.assign(prev_levels_.begin(), prev_levels_.end());
  double used_rate = 0.0;
  for (std::size_t n = 0; n < n_users; ++n) {
    q[n] = std::clamp<QualityLevel>(q[n], 1, kNumQualityLevels);
    while (q[n] > 1 && !user_feasible(problem.users[n], q[n])) q[n] -= 1;
    used_rate += problem.users[n].rate[static_cast<std::size_t>(q[n] - 1)];
  }
  // Server-budget repair: peel the lowest-ranked held increment until
  // constraint (6) holds (ties to the smallest index — deterministic).
  // Stops at all-ones, the mandatory minimum the contract always
  // accepts even when it exceeds B(t).
  while (used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
    std::size_t worst = n_users;
    double worst_score = 0.0;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (q[n] <= 1) continue;
      const double score = rank_score(tables_[n], q[n] - 1, rank);
      if (worst == n_users || score < worst_score) {
        worst_score = score;
        worst = n;
      }
    }
    if (worst == n_users) break;
    const auto& user = problem.users[worst];
    used_rate -= user.rate[static_cast<std::size_t>(q[worst] - 1)] -
                 user.rate[static_cast<std::size_t>(q[worst] - 2)];
    q[worst] -= 1;
  }
  return used_rate;
}

void DvGreedyAllocator::greedy_pass(const SlotProblem& problem, Rank rank,
                                    std::vector<QualityLevel>& q) {
  const std::size_t n_users = problem.user_count();
  const std::size_t stride = tables_.stride();
  double used_rate = seed_levels(problem, rank, q);

  // Dense score array, one lane per user: the marginal score of the
  // user's next increment, or -inf once quality_verification retired
  // the user (level cap, B_n, or a B(t)-violating increment). Pad
  // lanes [n_users, stride) stay -inf. Only the incremented user's
  // lane changes per iteration, so the argmax is incremental: a
  // FirstMaxTracker caches per-block maxima and returns the same index
  // a full simd::argmax_first pass would, in O(stride/kBlock) instead
  // of O(stride) per iteration.
  const double* score_base = rank == Rank::kDensity
                                 ? tables_.density_row(1)
                                 : tables_.increment_row(1);
  scores_.assign(stride, kNegInf);
  for (std::size_t n = 0; n < n_users; ++n) {
    if (q[n] < kNumQualityLevels) {
      scores_[n] = score_base[static_cast<std::size_t>(q[n] - 1) * stride + n];
    }
  }
  scan_max_.reset(scores_.data(), stride);

  // quality_verification(q_n, I) from Algorithm 1, applied *after* a
  // tentative increment: drop the user at the ceiling; revert and drop
  // the user whose increment broke a rate constraint.
  while (true) {
    const std::size_t best = scan_max_.argmax();
    const double best_score = scores_[best];
    // Negative best marginal stops the pass ("if eta_{n*} < 0 then
    // I = {}"); -inf means every user is retired — same exit.
    if (best_score < 0.0) break;

    const auto& user = problem.users[best];
    const double inc = user.rate[static_cast<std::size_t>(q[best])] -
                       user.rate[static_cast<std::size_t>(q[best] - 1)];
    q[best] += 1;
    used_rate += inc;
    if (!user_feasible(user, q[best]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[best] -= 1;
      used_rate -= inc;
      scores_[best] = kNegInf;
      scan_max_.update(best);
      continue;
    }
    if (q[best] == kNumQualityLevels) {
      scores_[best] = kNegInf;
      scan_max_.update(best);
      continue;
    }
    scores_[best] =
        score_base[static_cast<std::size_t>(q[best] - 1) * stride + best];
    scan_max_.update(best);
  }
}

void DvGreedyAllocator::greedy_pass_heap(const SlotProblem& problem, Rank rank,
                                         std::vector<QualityLevel>& q) {
  const std::size_t n_users = problem.user_count();
  active_.assign(n_users, 1);
  double used_rate = seed_levels(problem, rank, q);

  // Heap entries carry the level they were computed at; an entry whose
  // level no longer matches the user's current level is stale (a fresh
  // one was pushed after the increment) and is discarded on pop. Ties
  // break toward the smaller index, matching the scan's first-strict-max.
  // A manual push_heap/pop_heap over a recycled vector — the algorithms
  // std::priority_queue is specified in terms of, so the pop order (and
  // therefore the ascent) is identical.
  const auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.user > b.user;
  };
  heap_.clear();
  if (pool_ != nullptr && n_users >= parallel_min_users_) {
    // Parallel candidate fill: partition the users, let each range
    // score its own candidates into its own slice, then compact in
    // index order. The candidate multiset (and therefore the heap and
    // the ascent) is identical to the serial fill.
    heap_.resize(n_users);
    const std::size_t per_task =
        (n_users + pool_->size() - 1) / pool_->size();
    std::vector<std::future<void>> tasks;
    tasks.reserve((n_users + per_task - 1) / per_task);
    for (std::size_t begin = 0; begin < n_users; begin += per_task) {
      const std::size_t end = std::min(begin + per_task, n_users);
      tasks.push_back(pool_->submit([this, &q, rank, begin, end] {
        for (std::size_t n = begin; n < end; ++n) {
          heap_[n] = q[n] < kNumQualityLevels
                         ? HeapEntry{rank_score(tables_[n], q[n], rank), n,
                                     q[n]}
                         : HeapEntry{0.0, n, 0};  // level 0 = no candidate
        }
      }));
    }
    for (auto& task : tasks) task.get();
    std::size_t kept = 0;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (heap_[n].level != 0) heap_[kept++] = heap_[n];
    }
    heap_.resize(kept);
  } else {
    for (std::size_t n = 0; n < n_users; ++n) {
      if (q[n] < kNumQualityLevels) {
        heap_.push_back({rank_score(tables_[n], q[n], rank), n, q[n]});
      }
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), worse);

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), worse);
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const std::size_t n = top.user;
    if (!active_[n] || top.level != q[n]) continue;  // stale or dead
    if (top.score < 0.0) break;  // max fresh score negative: stop all

    const auto& user = problem.users[n];
    const double inc = user.rate[static_cast<std::size_t>(q[n])] -
                       user.rate[static_cast<std::size_t>(q[n] - 1)];
    q[n] += 1;
    used_rate += inc;
    if (!user_feasible(user, q[n]) ||
        used_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
      q[n] -= 1;
      used_rate -= inc;
      active_[n] = 0;
      continue;
    }
    if (q[n] == kNumQualityLevels) {
      active_[n] = 0;
      continue;
    }
    heap_.push_back({rank_score(tables_[n], q[n], rank), n, q[n]});
    std::push_heap(heap_.begin(), heap_.end(), worse);
  }
}

Allocation DvGreedyAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  allocate_into(problem, result);
  return result;
}

void DvGreedyAllocator::allocate_into(const SlotProblem& problem,
                                      Allocation& out) {
  out.levels.clear();
  out.objective = 0.0;
  if (problem.user_count() == 0) return;

  tables_.build(problem, pool_, parallel_min_users_);
  const auto run_pass = [&](Rank rank, std::vector<QualityLevel>& dst) {
    if (strategy_ == Strategy::kHeap) {
      greedy_pass_heap(problem, rank, dst);
    } else {
      greedy_pass(problem, rank, dst);
    }
  };

  bool have_result = false;
  if (mode_ == Mode::kDensityOnly || mode_ == Mode::kCombined) {
    run_pass(Rank::kDensity, density_levels_);
    out.levels.assign(density_levels_.begin(), density_levels_.end());
    out.objective = tables_.evaluate(density_levels_);
    have_result = true;
  }
  if (mode_ == Mode::kValueOnly || mode_ == Mode::kCombined) {
    run_pass(Rank::kValue, value_levels_);
    const double vv = tables_.evaluate(value_levels_);
    if (!have_result || vv > out.objective) {
      out.levels.assign(value_levels_.begin(), value_levels_.end());
      out.objective = vv;
    }
  }
  if (warm_start_) {
    prev_levels_.assign(out.levels.begin(), out.levels.end());
  }
}

}  // namespace cvr::core
