#include "src/core/pavq.h"

#include <algorithm>

namespace cvr::core {

double PavqAllocator::score(const UserSlotContext& user, QualityLevel q,
                            const QoeParams& params) {
  // PAVQ's mean-variability utility with the paper's delay modification
  // folded into mu_i^P as the user's *average measured delay*: the
  // original formulation has no delay term, so the retrofit prices delay
  // per user, not per level. The penalty is therefore flat in q — PAVQ
  // cannot see that the delay curve steepens near the capacity knee,
  // which is what Figs. 7/8 punish. delta is forced to 1 (PAVQ predates
  // FoV prediction).
  double mean_delay = 0.0;
  for (double d : user.delay) mean_delay += d;
  mean_delay /= static_cast<double>(user.delay.size());
  const double t = user.slot;
  const double weight = t > 1.0 ? (t - 1.0) / t : 0.0;
  const double dq = static_cast<double>(q) - user.qbar;
  return static_cast<double>(q) - params.alpha * mean_delay -
         params.beta * weight * dq * dq;
}

const UserSlotContext& PavqAllocator::smoothed_view(
    std::size_t n, const UserSlotContext& user) {
  if (smoothed_.size() <= n) smoothed_.resize(n + 1);
  SmoothedInputs& s = smoothed_[n];
  if (!s.primed) {
    s.bandwidth = user.user_bandwidth;
    for (std::size_t i = 0; i < s.delay.size(); ++i) s.delay[i] = user.delay[i];
    s.primed = true;
  } else {
    s.bandwidth += smoothing_alpha_ * (user.user_bandwidth - s.bandwidth);
    for (std::size_t i = 0; i < s.delay.size(); ++i) {
      s.delay[i] += smoothing_alpha_ * (user.delay[i] - s.delay[i]);
    }
  }
  view_ = user;  // vector members recycle their capacity
  view_.user_bandwidth = s.bandwidth;
  view_.delay = s.delay;
  return view_;
}

Allocation PavqAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  allocate_into(problem, result);
  return result;
}

void PavqAllocator::allocate_into(const SlotProblem& problem, Allocation& out) {
  const std::size_t n_users = problem.user_count();
  std::vector<QualityLevel>& q = out.levels;
  q.assign(n_users, 1);

  // Per-user maximisation of the price-adjusted score under B_n only
  // (evaluated on the long-run-average view of the network); the shared
  // constraint (6) is delegated to the dual price.
  for (std::size_t n = 0; n < n_users; ++n) {
    const UserSlotContext& user = smoothed_view(n, problem.users[n]);
    double best = score(user, 1, problem.params) - price_ * user.rate[0];
    for (QualityLevel level = 2; level <= kNumQualityLevels; ++level) {
      if (!user_feasible(user, level)) break;  // rates increase
      const double s =
          score(user, level, problem.params) -
          price_ * user.rate[static_cast<std::size_t>(level - 1)];
      if (s > best) {
        best = s;
        q[n] = level;
      }
    }
  }

  // Subgradient price update toward the budget.
  const double used = total_rate(problem, q);
  price_ = std::max(0.0, price_ + kappa_ * (used - problem.server_bandwidth));

  out.objective = evaluate(problem, q);
}

}  // namespace cvr::core
