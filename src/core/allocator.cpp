#include "src/core/allocator.h"

#include <stdexcept>

namespace cvr::core {

double evaluate(const SlotProblem& problem,
                const std::vector<QualityLevel>& levels) {
  if (levels.size() != problem.users.size()) {
    throw std::invalid_argument("evaluate: level count mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < levels.size(); ++n) {
    total += h_value(problem.users[n], levels[n], problem.params);
  }
  return total;
}

double total_rate(const SlotProblem& problem,
                  const std::vector<QualityLevel>& levels) {
  if (levels.size() != problem.users.size()) {
    throw std::invalid_argument("total_rate: level count mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < levels.size(); ++n) {
    total += problem.users[n].rate[static_cast<std::size_t>(levels[n] - 1)];
  }
  return total;
}

bool server_feasible(const SlotProblem& problem,
                     const std::vector<QualityLevel>& levels) {
  return total_rate(problem, levels) <=
         problem.server_bandwidth + kFeasibilityEpsilon;
}

bool user_feasible(const UserSlotContext& user, QualityLevel q) {
  return user.rate[static_cast<std::size_t>(q - 1)] <=
         user.user_bandwidth + kFeasibilityEpsilon;
}

bool allocation_feasible(const SlotProblem& problem,
                         const std::vector<QualityLevel>& levels) {
  if (levels.size() != problem.users.size()) return false;
  bool all_ones = true;
  for (std::size_t n = 0; n < levels.size(); ++n) {
    if (!content::is_valid_level(levels[n])) return false;
    if (levels[n] > 1) {
      all_ones = false;
      if (!user_feasible(problem.users[n], levels[n])) return false;
    }
  }
  return all_ones || server_feasible(problem, levels);
}

}  // namespace cvr::core
