// Recycled storage for the per-slot allocation problem.
//
// The sim loops (sim::TraceSimulation, system::SystemSim, the horizon
// solvers) build one SlotProblem per 15 ms slot. Constructing it fresh
// each slot heap-allocates the users vector every time; the arena keeps
// one SlotProblem alive and hands it back each slot with its capacity
// retained, so steady-state slot construction performs zero heap
// allocations (UserSlotContext itself is a flat value — fixed arrays,
// no owned heap memory except the optional frame_loss vector, whose
// capacity is likewise recycled).
//
// Ownership rules (see docs/performance.md):
//  * The reference returned by acquire() is valid until the next
//    acquire() call or the arena's destruction — never store it across
//    slots.
//  * acquire() resizes the users vector and resets the scalar fields;
//    every user entry must be overwritten by the caller (assignment from
//    from_rate_function() or field-wise fills) — entries surviving a
//    same-size resize keep last slot's values until then.
//  * A problem built in an arena is equivalent to a freshly constructed
//    SlotProblem with the same fills (asserted by
//    tests/slot_arena_test.cpp).
#pragma once

#include <cstddef>

#include "src/core/allocator.h"

namespace cvr::core {

class SlotArena {
 public:
  /// Returns the recycled problem sized for `users` entries, with
  /// server_bandwidth/params reset to defaults. Grows capacity on first
  /// use (or churn upward); steady state is allocation-free.
  SlotProblem& acquire(std::size_t users) {
    problem_.users.resize(users);
    problem_.server_bandwidth = 0.0;
    problem_.params = QoeParams{};
    return problem_;
  }

  /// The problem most recently handed out by acquire().
  SlotProblem& problem() { return problem_; }
  const SlotProblem& problem() const { return problem_; }

 private:
  SlotProblem problem_;
};

}  // namespace cvr::core
