// Recycled storage for the per-slot allocation problem.
//
// The sim loops (sim::TraceSimulation, system::SystemSim, the horizon
// solvers, system::LoadServer, fleet::FleetSim) build one SlotProblem
// per 15 ms slot. Constructing it fresh each slot heap-allocates the
// users vector every time; the arena keeps one SlotProblem alive and
// hands it back each slot with its capacity retained, so steady-state
// slot construction performs zero heap allocations (UserSlotContext
// itself is a flat value — fixed arrays, no owned heap memory except
// the optional frame_loss vector, whose capacity is likewise recycled).
#pragma once

#include <cstddef>

#include "src/core/allocator.h"

namespace cvr::core {

/// @brief Owner of one recycled SlotProblem, handed out per slot.
///
/// Ownership / recycling lifecycle (see docs/performance.md):
///  1. One arena per serving loop, living as long as the loop. Each
///     slot calls acquire(users) and fills the entries it was given.
///  2. The reference returned by acquire() is valid until the NEXT
///     acquire() call or the arena's destruction — never store it (or
///     pointers/iterators into its users vector) across slots. The
///     same rule applies transitively to anything viewing the problem,
///     e.g. the HTable views an allocator built from it.
///  3. acquire() resizes the users vector and resets the scalar
///     fields; every user entry must be overwritten by the caller
///     (assignment from from_rate_function() or field-wise fills) —
///     entries surviving a same-size resize keep LAST slot's values
///     until then. Forgetting a field means silently replaying stale
///     state, which is why the equivalence test fills field-wise.
///  4. A problem built in an arena is equivalent to a freshly
///     constructed SlotProblem with the same fills, and steady-state
///     reuse performs zero heap allocations — both pinned by
///     tests/slot_arena_test.cpp (arena≡fresh differential plus the
///     counting-operator-new ZeroAllocation suite, including
///     shrink/grow churn).
///
/// The arena is deliberately NOT thread-safe: a serving loop owns its
/// arena exclusively. Within-slot parallel allocators (see
/// Allocator::set_thread_pool) read the acquired problem concurrently
/// but never mutate it, which is safe; two loops must use two arenas.
class SlotArena {
 public:
  /// @brief Returns the recycled problem sized for `users` entries,
  /// with server_bandwidth/params reset to defaults.
  ///
  /// Grows capacity on first use (or churn upward); shrinking keeps
  /// capacity, so a fluctuating population settles into the
  /// allocation-free steady state sized by its high-water mark.
  SlotProblem& acquire(std::size_t users) {
    problem_.users.resize(users);
    problem_.server_bandwidth = 0.0;
    problem_.params = QoeParams{};
    return problem_;
  }

  /// @brief The problem most recently handed out by acquire().
  SlotProblem& problem() { return problem_; }
  const SlotProblem& problem() const { return problem_; }

 private:
  SlotProblem problem_;
};

}  // namespace cvr::core
