// AVX2 kernels for the SoA h-table build and the dv-scan argmax.
//
// This translation unit is the ONLY one compiled with -mavx2 (see
// src/core/CMakeLists.txt), so the rest of the library keeps the
// baseline x86-64 ISA and the runtime dispatcher in simd.cpp decides
// whether these symbols are ever called. Every arithmetic step here is
// the same IEEE-754 operation, in the same association order, as the
// scalar kernels in htable.cpp / simd.cpp — AVX2 mul/add/sub/div are
// lane-wise correctly rounded, -mavx2 does not imply FMA, and the
// project builds with -ffp-contract=off, so the outputs are
// bit-identical to the scalar path (docs/vectorization.md).
#include "src/core/htable.h"
#include "src/core/simd.h"

#if defined(CVR_HAVE_AVX2)

#include <immintrin.h>

#include <cassert>

namespace cvr::core::detail {

void build_htables_avx2(const SlotProblemSoA& soa, const QoeParams& params,
                        std::size_t begin, std::size_t end, double* h,
                        double* increment, double* density) {
  assert(begin % simd::kLanes == 0 && end % simd::kLanes == 0);
  const std::size_t stride = soa.stride;
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d alpha = _mm256_set1_pd(params.alpha);
  const __m256d beta = _mm256_set1_pd(params.beta);
  for (std::size_t l = 0; l < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const __m256d qv = _mm256_set1_pd(static_cast<double>(l + 1));
    const double* success_row = soa.success.data() + l * stride;
    const double* delay_row = soa.delay.data() + l * stride;
    double* out = h + l * stride;
    for (std::size_t i = begin; i < end; i += simd::kLanes) {
      const __m256d s = _mm256_loadu_pd(success_row + i);
      const __m256d w = _mm256_loadu_pd(soa.weight.data() + i);
      const __m256d qb = _mm256_loadu_pd(soa.qbar.data() + i);
      const __m256d dq = _mm256_sub_pd(qv, qb);
      // variance_term = ((s*w)*dq)*dq + (((1-s)*w)*qb)*qb — the exact
      // association order of detail::h_value_unchecked.
      const __m256d viewed = _mm256_mul_pd(
          _mm256_mul_pd(_mm256_mul_pd(s, w), dq), dq);
      const __m256d missed = _mm256_mul_pd(
          _mm256_mul_pd(_mm256_mul_pd(_mm256_sub_pd(one, s), w), qb), qb);
      const __m256d variance_term = _mm256_add_pd(viewed, missed);
      const __m256d d = _mm256_loadu_pd(delay_row + i);
      // h = ((s*q) - (alpha*delay)) - (beta*variance_term).
      const __m256d value = _mm256_sub_pd(
          _mm256_sub_pd(_mm256_mul_pd(s, qv), _mm256_mul_pd(alpha, d)),
          _mm256_mul_pd(beta, variance_term));
      _mm256_storeu_pd(out + i, value);
    }
  }
  for (std::size_t l = 0; l + 1 < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const double* h_lo = h + l * stride;
    const double* h_hi = h + (l + 1) * stride;
    const double* r_lo = soa.rate.data() + l * stride;
    const double* r_hi = soa.rate.data() + (l + 1) * stride;
    double* inc = increment + l * stride;
    double* den = density + l * stride;
    for (std::size_t i = begin; i < end; i += simd::kLanes) {
      const __m256d dv = _mm256_sub_pd(_mm256_loadu_pd(h_hi + i),
                                       _mm256_loadu_pd(h_lo + i));
      const __m256d dr = _mm256_sub_pd(_mm256_loadu_pd(r_hi + i),
                                       _mm256_loadu_pd(r_lo + i));
      _mm256_storeu_pd(inc + i, dv);
      _mm256_storeu_pd(den + i, _mm256_div_pd(dv, dr));
    }
  }
}

}  // namespace cvr::core::detail

namespace cvr::core::simd::detail {

std::size_t argmax_first_avx2(const double* scores, std::size_t n) {
  if (n < 2 * kLanes) return argmax_first_scalar(scores, n);
  // Two phases. Phase 1 finds the numeric maximum with two independent
  // vmaxpd accumulator chains (no loop-carried blend dependency, so the
  // loop runs at load throughput). Phase 2 finds the first position
  // numerically EQUAL to that maximum (cmp_eq + movemask, early exit).
  // Equality — not the bit pattern vmaxpd happened to keep — is what
  // makes this the forward-scan winner: the scalar scan's strict `>`
  // keeps the first occurrence of the numeric maximum, -0.0 == 0.0
  // included, and NaN is excluded by precondition.
  const std::size_t vec_end = n / kLanes * kLanes;
  __m256d m0 = _mm256_loadu_pd(scores);
  __m256d m1 = m0;
  std::size_t i = kLanes;
  for (; i + kLanes < vec_end; i += 2 * kLanes) {
    m0 = _mm256_max_pd(m0, _mm256_loadu_pd(scores + i));
    m1 = _mm256_max_pd(m1, _mm256_loadu_pd(scores + i + kLanes));
  }
  for (; i < vec_end; i += kLanes) {
    m0 = _mm256_max_pd(m0, _mm256_loadu_pd(scores + i));
  }
  const __m256d m = _mm256_max_pd(m0, m1);
  const __m128d half =
      _mm_max_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
  double best_score =
      _mm_cvtsd_f64(_mm_max_sd(half, _mm_unpackhi_pd(half, half)));
  for (std::size_t t = vec_end; t < n; ++t) {
    if (scores[t] > best_score) best_score = scores[t];
  }
  const __m256d target = _mm256_set1_pd(best_score);
  for (std::size_t j = 0; j < vec_end; j += kLanes) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(scores + j), target, _CMP_EQ_OQ));
    if (mask != 0) {
      return j + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (std::size_t t = vec_end; t < n; ++t) {
    if (scores[t] == best_score) return t;
  }
  return 0;  // unreachable for NaN-free input
}

}  // namespace cvr::core::simd::detail

#endif  // CVR_HAVE_AVX2
