// Exact solvers for the per-slot problem (5)-(7).
//
// Section IV: "when the number of users is small, we can use the brute
// force method to generate the optimal offline solution of problem
// (5)-(7)". We provide that brute force (with branch-and-bound pruning on
// the rate budget) for N <~ 8, plus a pseudo-polynomial dynamic program
// over a discretised rate budget that scales to dozens of users and is
// used by the Theorem-1 bench as the reference optimum.
#pragma once

#include "src/core/allocator.h"

namespace cvr::core {

/// Exhaustive search over the L^N allocations. Exponential — intended
/// for N <= 8 (6^8 ~ 1.7M). Throws std::invalid_argument beyond
/// max_users to protect callers.
class BruteForceAllocator final : public Allocator {
 public:
  explicit BruteForceAllocator(std::size_t max_users = 8)
      : max_users_(max_users) {}

  std::string_view name() const override { return "optimal-bruteforce"; }

  Allocation allocate(const SlotProblem& problem) override;

 private:
  std::size_t max_users_;
};

/// Dynamic program over the server budget discretised at `granularity`
/// Mbps. Rates are rounded *up* to grid units, so the result is always
/// feasible; the value is exact for the rounded instance and within
/// O(N * granularity) of the true optimum (equal to it when granularity
/// divides all rate increments).
class DpAllocator final : public Allocator {
 public:
  explicit DpAllocator(double granularity_mbps = 0.25);

  std::string_view name() const override { return "optimal-dp"; }

  Allocation allocate(const SlotProblem& problem) override;

 private:
  double granularity_;
};

}  // namespace cvr::core
