// Fractional-relaxation upper bound (the V_p of Theorem 1's proof).
//
// Allowing a user's final quality increment to be taken fractionally
// (value and rate interpolated linearly between levels) turns the
// per-slot knapsack into a problem solved exactly by density-greedy,
// because h_n is concave and f^R convex (per-user marginal densities are
// non-increasing). The result upper-bounds the discrete optimum: every
// discrete feasible point is feasible in the relaxation.
//
// Used by the 30-user simulation (where brute force is infeasible) and
// as the certificate in the Theorem-1 bench:
//   V_dv >= OPT/2 is implied whenever V_dv >= V_p/2.
#pragma once

#include "src/core/allocator.h"

namespace cvr::core {

/// Returns the relaxed optimum value (NOT an implementable allocation —
/// the fractional level has no encoded tile; hence a free function, not
/// an Allocator).
double fractional_upper_bound(const SlotProblem& problem);

}  // namespace cvr::core
