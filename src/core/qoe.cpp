#include "src/core/qoe.h"

#include <stdexcept>

namespace cvr::core {

UserSlotContext UserSlotContext::from_rate_function(
    const content::RateFunction& f, double user_bandwidth, double delta,
    double qbar, double slot) {
  UserSlotContext ctx;
  ctx.delta = delta;
  ctx.qbar = qbar;
  ctx.slot = slot;
  ctx.user_bandwidth = user_bandwidth;
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    const auto idx = static_cast<std::size_t>(q - 1);
    const double r = f.rate(q);
    ctx.rate[idx] = r;
    ctx.delay[idx] = net::mm1_delay(r, user_bandwidth);
  }
  return ctx;
}

double UserSlotContext::effective_delta(QualityLevel q) const {
  if (frame_loss.empty()) return delta;
  const auto idx = static_cast<std::size_t>(q - 1);
  if (idx >= frame_loss.size()) {
    throw std::out_of_range("effective_delta: frame_loss table too short");
  }
  return delta * (1.0 - frame_loss[idx]);
}

double h_value(const UserSlotContext& user, QualityLevel q,
               const QoeParams& params) {
  if (!content::is_valid_level(q)) {
    throw std::out_of_range("h_value: invalid quality level");
  }
  return detail::h_value_unchecked(user, q, params);
}

double h_increment(const UserSlotContext& user, QualityLevel q,
                   const QoeParams& params) {
  return h_value(user, q + 1, params) - h_value(user, q, params);
}

bool h_is_concave(const UserSlotContext& user, const QoeParams& params) {
  // Highest selectable level under constraint (7).
  QualityLevel max_level = 1;
  for (QualityLevel q = 2; q <= kNumQualityLevels; ++q) {
    if (user.rate[static_cast<std::size_t>(q - 1)] >
        user.user_bandwidth + kFeasibilityEpsilon) {
      break;
    }
    max_level = q;
  }
  if (max_level < 3) return true;  // fewer than two increments
  double prev_increment = h_increment(user, 1, params);
  for (QualityLevel q = 2; q < max_level; ++q) {
    const double increment = h_increment(user, q, params);
    if (increment > prev_increment + 1e-9) return false;
    prev_increment = increment;
  }
  return true;
}

double h_density(const UserSlotContext& user, QualityLevel q,
                 const QoeParams& params) {
  const double dr = user.rate[static_cast<std::size_t>(q)] -
                    user.rate[static_cast<std::size_t>(q - 1)];
  if (dr <= 0.0) {
    throw std::logic_error("h_density: rates must be strictly increasing");
  }
  return h_increment(user, q, params) / dr;
}

void UserQoeAccumulator::record(QualityLevel q, bool viewed, double delay) {
  record_displayed(q, viewed ? static_cast<double>(q) : 0.0, delay);
}

void UserQoeAccumulator::record_displayed(QualityLevel chosen,
                                          double displayed_quality,
                                          double delay) {
  if (!content::is_valid_level(chosen)) {
    throw std::out_of_range("UserQoeAccumulator: invalid level");
  }
  if (displayed_quality < 0.0 ||
      displayed_quality > static_cast<double>(kNumQualityLevels)) {
    throw std::invalid_argument("UserQoeAccumulator: bad displayed quality");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("UserQoeAccumulator: negative delay");
  }
  ++slots_;
  level_sum_ += static_cast<double>(chosen);
  quality_sum_ += displayed_quality;
  const double d1 = displayed_quality - quality_mean_;
  quality_mean_ += d1 / static_cast<double>(slots_);
  quality_m2_ += d1 * (displayed_quality - quality_mean_);
  delay_sum_ += delay;
}

double UserQoeAccumulator::mean_viewed_quality() const {
  return slots_ == 0 ? 0.0 : quality_sum_ / static_cast<double>(slots_);
}

double UserQoeAccumulator::mean_level() const {
  return slots_ == 0 ? 0.0 : level_sum_ / static_cast<double>(slots_);
}

double UserQoeAccumulator::mean_delay() const {
  return slots_ == 0 ? 0.0 : delay_sum_ / static_cast<double>(slots_);
}

double UserQoeAccumulator::variance() const {
  return slots_ == 0 ? 0.0 : quality_m2_ / static_cast<double>(slots_);
}

double UserQoeAccumulator::average_qoe(const QoeParams& params) const {
  if (slots_ == 0) return 0.0;
  return mean_viewed_quality() - params.alpha * mean_delay() -
         params.beta * variance();
}

}  // namespace cvr::core
