#include "src/core/fractional.h"

#include <algorithm>

#include "src/core/htable.h"

namespace cvr::core {

double fractional_upper_bound(const SlotProblem& problem) {
  const std::size_t n_users = problem.user_count();
  HTableSet tables;
  tables.build(problem);
  std::vector<QualityLevel> q(n_users, 1);
  double value = tables.evaluate(q);
  double remaining = problem.server_bandwidth - total_rate(problem, q);
  if (remaining <= 0.0) return value;

  std::vector<bool> active(n_users, true);
  std::size_t active_count = n_users;
  while (active_count > 0 && remaining > 1e-12) {
    double best_density = 0.0;
    std::size_t best = n_users;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (!active[n]) continue;
      if (q[n] >= kNumQualityLevels ||
          !user_feasible(problem.users[n], q[n] + 1)) {
        active[n] = false;
        --active_count;
        continue;
      }
      const double density = tables[n].density(q[n]);
      if (best == n_users || density > best_density) {
        best_density = density;
        best = n;
      }
    }
    if (best == n_users || best_density <= 0.0) break;

    const auto& user = problem.users[best];
    const double dv = tables[best].increment(q[best]);
    const double dr = user.rate[static_cast<std::size_t>(q[best])] -
                      user.rate[static_cast<std::size_t>(q[best] - 1)];
    if (dr <= remaining) {
      value += dv;
      remaining -= dr;
      q[best] += 1;
    } else {
      // Fractional final increment: proportional share of the value.
      value += dv * remaining / dr;
      remaining = 0.0;
    }
  }
  return value;
}

}  // namespace cvr::core
