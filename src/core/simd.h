// Runtime SIMD backend selection for the allocator hot path.
//
// The h-table build and the dv-scan argmax have two implementations:
// a portable scalar kernel (always compiled, the reference) and an
// AVX2 kernel (compiled only when the toolchain accepts -mavx2, picked
// only when the CPU reports AVX2 at runtime). Both kernels perform the
// SAME IEEE-754 operations in the SAME association order per element,
// and no kernel is compiled with FP contraction (-ffp-contract=off is
// set project-wide), so their outputs are bit-identical — pinned by
// the core.htable_simd_matches_scalar property and tests/simd_test.cpp.
// See docs/vectorization.md for the full contract.
//
// Selection order (resolved once, on first use):
//   1. CVR_FORCE_SCALAR=1 in the environment  -> kScalar (CI fallback leg)
//   2. AVX2 kernel compiled in AND CPU has AVX2 -> kAvx2
//   3. otherwise                                -> kScalar
// Tests may override with set_backend_for_testing() to compare the two
// kernels inside one process.
#pragma once

#include <cstddef>
#include <vector>

namespace cvr::core::simd {

/// Doubles per AVX2 vector. The SoA tables pad their user dimension to
/// a multiple of this so the vector kernels never touch unowned memory;
/// scalar and vector kernels both process the padded tail (pad lanes
/// carry inert values and are never read back).
inline constexpr std::size_t kLanes = 4;

/// Rounds a user count up to the padded SoA stride.
constexpr std::size_t padded(std::size_t n) {
  return (n + kLanes - 1) / kLanes * kLanes;
}

enum class Backend { kScalar, kAvx2 };

/// True when the AVX2 kernels were compiled into this binary
/// (toolchain supported -mavx2 on an x86-64 target).
bool avx2_compiled();

/// True when AVX2 kernels are both compiled in and supported by the
/// CPU this process runs on — i.e. kAvx2 is selectable.
bool avx2_available();

/// The backend every dispatching call site uses. Resolved once from
/// the environment/CPU (see file comment); later calls return the
/// cached decision unless a test overrode it.
Backend active_backend();

/// Human-readable backend name ("scalar" / "avx2") for logs and docs.
const char* backend_name(Backend backend);

/// Test hook: force the backend for subsequent active_backend() calls.
/// Throws std::invalid_argument when kAvx2 is requested but
/// avx2_available() is false. Not thread-safe — call from test setup
/// only, never while allocators run on a pool.
void set_backend_for_testing(Backend backend);

/// Index of the FIRST strict maximum of scores[0..n): the element that
/// every later equal-or-smaller value fails to displace — exactly the
/// winner of dv-greedy's forward argmax scan, so ties break toward the
/// smallest index. Returns 0 when every element ties (including the
/// all--infinity array the scan uses as its "no active user" state).
/// Precondition: n >= 1 and scores contains no NaN (the generators and
/// the validated rate tables cannot produce one; -inf is fine and is
/// the scan's sentinel for deactivated users).
/// Dispatches on active_backend(); both kernels return the same index
/// for every NaN-free input (tests/simd_test.cpp sweeps this).
std::size_t argmax_first(const double* scores, std::size_t n);

/// Incremental argmax_first over a dense score array that changes ONE
/// element per step — the dv-scan ascent's exact access pattern. Keeps
/// a cached maximum per kBlock-element block; update(i) recomputes only
/// i's block (O(kBlock)), and argmax() runs argmax_first over the block
/// maxima (O(n/kBlock), vectorized through the normal dispatch) then
/// locates the winner inside one block. Every answer is the same index
/// a full argmax_first pass would return — the first block whose
/// cached maximum equals the global numeric maximum is the first block
/// *containing* it, and the first element in that block equal to it is
/// the forward-scan winner (ties to the smallest index, exactly as
/// argmax_first). Same preconditions as argmax_first: n >= 1, no NaN.
///
/// The backing vector recycles its capacity across reset() calls, so
/// the steady-state zero-allocation contract of the allocator hot path
/// (docs/performance.md) is preserved.
class FirstMaxTracker {
 public:
  /// Elements per cached block. Two AVX2 vectors: small enough that
  /// update() and the in-block locate stay a handful of compares,
  /// large enough that the block-maxima array an argmax() scans is
  /// n/8 long instead of n.
  static constexpr std::size_t kBlock = 2 * kLanes;

  /// (Re)binds the tracker to scores[0..n) and rebuilds every block
  /// maximum in O(n). The array must outlive the tracker's use; the
  /// caller reports in-place changes via update().
  void reset(const double* scores, std::size_t n);

  /// Recomputes the block maximum covering index i. Call after every
  /// in-place write to scores[i].
  void update(std::size_t i);

  /// Index of the first strict maximum — bit-for-bit the same index
  /// argmax_first(scores, n) returns.
  std::size_t argmax() const;

 private:
  const double* scores_ = nullptr;
  std::size_t n_ = 0;
  std::size_t n_blocks_ = 0;
  std::vector<double> block_max_;  ///< Padded to kLanes with -inf.
};

namespace detail {

/// The portable reference argmax (first strict maximum).
std::size_t argmax_first_scalar(const double* scores, std::size_t n);

#if defined(CVR_HAVE_AVX2)
/// AVX2 argmax; requires n >= 1. Safe for any n (vector main loop plus
/// scalar tail — no padding requirement on `scores`).
std::size_t argmax_first_avx2(const double* scores, std::size_t n);
#endif

}  // namespace detail

}  // namespace cvr::core::simd
