// Modified PAVQ baseline (Joseph & de Veciana, INFOCOM'12).
//
// Section IV: "Practical Adaptive Variance Aware Quality Allocation
// algorithm (PAVQ). Notice that we cannot directly apply this algorithm
// since it does not consider the delay in the original paper. For a fair
// comparison, we modify the way to calculate mu_i^P ... to adapt to our
// problem setting."
//
// Reproduction (DESIGN.md Section 5). PAVQ is a *price-based* mean-
// variability trade-off policy: each user independently selects the
// level maximising its modified score minus a network price on its rate,
//     q_n = argmax_q  mu_n(q) - lambda f(q),   f(q) <= B_n,
// with mu_n(q) = q - alpha E[d_n(f(q))] - beta (t-1)(q - qbar)^2 / t
// (the delay term is our modification; PAVQ predates FoV prediction, so
// it assumes content is always seen, i.e. delta = 1). The dual price
// lambda adapts by subgradient steps toward the shared budget:
//     lambda <- max(0, lambda + kappa (sum_n f(q_n) - B(t))).
//
// Both the price and the per-user inputs operate on *long-run averages*
// — the form the original algorithm was designed for (it budgets against
// token rates / mean throughput, not instantaneous estimates). PAVQ
// therefore smooths the per-user bandwidth and delay tables it sees with
// a slow EMA before optimising. With slowly varying capacity (Section IV
// traces: multi-second dwell) the smoothing is harmless and PAVQ tracks
// the optimum closely (Fig. 2); under the fast fading/interference of
// the real system its inputs lag reality, it overcommits during dips and
// oscillates — exactly the "vulnerable to the dynamic network
// environment ... inaccurate throughput estimation" behaviour Fig. 8
// reports.
#pragma once

#include <array>
#include <vector>

#include "src/core/allocator.h"

namespace cvr::core {

class PavqAllocator final : public Allocator {
 public:
  /// `kappa`: subgradient step per Mbps of budget violation per slot.
  /// `smoothing_alpha`: EMA weight for the long-run input averages.
  explicit PavqAllocator(double kappa = 5e-4, double smoothing_alpha = 0.02)
      : kappa_(kappa), smoothing_alpha_(smoothing_alpha) {}

  /// Section-IV mode: the trace-based simulation hands every algorithm
  /// perfect per-slot knowledge of throughput and delay, so PAVQ's
  /// long-run input averaging is bypassed (smoothing_alpha = 1).
  static PavqAllocator perfect_knowledge() { return PavqAllocator(5e-4, 1.0); }

  std::string_view name() const override { return "pavq-modified"; }

  Allocation allocate(const SlotProblem& problem) override;

  /// Allocation-free steady state: levels build directly into `out`,
  /// the smoothed view recycles one member context, and the objective
  /// is read from the per-slot HTable.
  void allocate_into(const SlotProblem& problem, Allocation& out) override;

  void reset() override {
    price_ = 0.0;
    smoothed_.clear();
  }

  double price() const { return price_; }

 private:
  /// PAVQ's modified per-user score mu_n(q) (delta forced to 1).
  static double score(const UserSlotContext& user, QualityLevel q,
                      const QoeParams& params);

  struct SmoothedInputs {
    double bandwidth = 0.0;
    std::array<double, kNumQualityLevels> delay{};
    bool primed = false;
  };

  /// Folds this slot's context into the long-run averages and returns a
  /// context with the smoothed values substituted. The reference points
  /// into recycled member storage — valid until the next call.
  const UserSlotContext& smoothed_view(std::size_t n,
                                       const UserSlotContext& user);

  double kappa_;
  double smoothing_alpha_;
  double price_ = 0.0;
  std::vector<SmoothedInputs> smoothed_;
  UserSlotContext view_;  // recycled output of smoothed_view()
};

}  // namespace cvr::core
