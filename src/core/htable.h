// Precomputed per-user h-tables for the per-slot hot path, stored in
// structure-of-arrays layout and built by a SIMD kernel.
//
// Every allocator in the stack ranks candidate upgrades by h-derived
// scores: Algorithm 1's two greedy passes compare marginal densities
// eta_n(q) and marginal values v_n(q) across users on every iteration,
// the Lagrangian solver sweeps h - lambda*rate per candidate lambda, and
// the exact solvers tabulate h outright. Recomputing h_value() inside
// those loops costs O(iterations * L) redundant evaluations per slot —
// and an h_increment() is *two* full h_value() calls.
//
// HTableSet precomputes h_n(q) for all L = kNumQualityLevels levels
// once per slot and derives increments and densities by subtraction:
//
//   value(q)     = h_n(q)                       (levels 1..L)
//   increment(q) = value(q+1) - value(q)        (steps  1..L-1)
//   density(q)   = increment(q) / (rate[q] - rate[q-1])
//
// These are exactly the doubles h_value / h_increment / h_density
// produce — same inputs, same expression, same association order — so
// routing an allocator through the table is bit-identical to the direct
// path (certified by the core.htable_matches_direct proptest property
// and the existing differential oracles).
//
// Memory layout (see docs/vectorization.md): the per-user inputs are
// first gathered from the AoS SlotProblem into a SlotProblemSoA —
// level-major planes of `stride` doubles, `stride` = user count padded
// to simd::kLanes — and the kernel then evaluates h for four users per
// AVX2 instruction (scalar fallback element-for-element identical; see
// src/core/simd.h for the dispatch rules). `HTable` survives as a thin
// strided VIEW into the set's planes, so dv-greedy (scan and heap),
// fractional, lagrangian and the exact solvers consume the table
// exactly as before the SoA rework.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/core/allocator.h"
#include "src/core/qoe.h"
#include "src/core/simd.h"

namespace cvr {
class ThreadPool;
}

namespace cvr::core {

/// @brief Structure-of-arrays image of one slot's user contexts.
///
/// Each member is a plane (or a vector of level-major planes) of
/// `stride` doubles, where `stride` is the user count rounded up to
/// simd::kLanes. Lane `i` of plane `q-1` holds user `i`'s input for
/// level `q`; pad lanes `[n, stride)` carry inert values (success 1,
/// weight 0, strictly increasing rates) so the vector kernels can
/// process full vectors without masking — pad outputs are well-defined
/// finite numbers that nothing ever reads back.
///
/// `success` is the *effective* viewing probability
/// `UserSlotContext::effective_delta(q)` — the one h input that varies
/// per level — and `weight` is the Welford factor `(t-1)/t` (0 for the
/// first slot), hoisted out of the per-level expression because it is
/// level-invariant. Both are computed in gather() with exactly the
/// arithmetic h_value_unchecked uses, preserving bit-identity.
struct SlotProblemSoA {
  std::size_t users = 0;   ///< Real user count n.
  std::size_t stride = 0;  ///< n padded to simd::kLanes.
  std::vector<double> success;  ///< [L][stride]: effective_delta(q).
  std::vector<double> weight;   ///< [stride]: (t-1)/t, or 0 when t<=1.
  std::vector<double> qbar;     ///< [stride]: running viewed-quality mean.
  std::vector<double> rate;     ///< [L][stride]: f(q), Mbps.
  std::vector<double> delay;    ///< [L][stride]: E[d(f(q))], ms.

  /// @brief Sizes the planes for `problem` and writes the pad lanes.
  ///
  /// Capacity is retained across calls (steady-state rebuilds perform
  /// zero heap allocations once the user count stabilises — pinned by
  /// the ZeroAllocation tests). Must run before gather_range().
  void prepare(const SlotProblem& problem);

  /// @brief Gathers users [begin, end) into their lanes. Ranges are
  /// disjoint-write, so the parallel build fans this out safely.
  /// @throws std::out_of_range when a user's Section-VIII frame_loss
  ///   table is shorter than the level it is asked for (the same throw
  ///   effective_delta() performs on the direct path).
  void gather_range(const SlotProblem& problem, std::size_t begin,
                    std::size_t end);

  /// @brief prepare() + full-range gather.
  void gather(const SlotProblem& problem);

  /// @brief Fused gather + dirty tracking for user `i` (incremental
  /// rebuilds, docs/performance.md). Recomputes every input of lane `i`
  /// with exactly the gather_range() arithmetic, compares each new
  /// double *bitwise* against the plane's previous content, and stores
  /// it. Returns true iff any bit changed — the planes themselves are
  /// the fingerprint, so there is no hash to collide and a clean lane
  /// is clean by construction.
  /// @pre prepare() ran for an identical user count (planes sized).
  /// @throws std::out_of_range like gather_range() (short frame_loss).
  bool gather_user_tracked(const SlotProblem& problem, std::size_t i);
};

/// @brief One user's h-table for one slot: a thin strided view into
/// the owning HTableSet's SoA planes.
///
/// Copying an HTable copies three pointers and a stride; the view is
/// valid until the owning set's next build() (or its destruction) —
/// the same lifetime rule as SlotArena::acquire() references, and for
/// the same reason: the storage is recycled, not reallocated.
class HTable {
 public:
  HTable() = default;

  /// @brief h_n(q).
  /// @pre 1 <= q <= kNumQualityLevels (assert-only: the validated-at-
  ///   build contract means per-call checks would be redundant; see
  ///   HTableSet::build).
  double value(QualityLevel q) const {
    assert(h_ != nullptr && content::is_valid_level(q));
    return h_[static_cast<std::size_t>(q - 1) * stride_];
  }

  /// @brief Marginal value v_n(q) = h(q+1) - h(q).
  /// @pre 1 <= q < kNumQualityLevels.
  double increment(QualityLevel q) const {
    assert(increment_ != nullptr && q >= 1 && q < kNumQualityLevels);
    return increment_[static_cast<std::size_t>(q - 1) * stride_];
  }

  /// @brief Marginal density eta_n(q) = v_n(q) / (f(q+1) - f(q)).
  /// @pre 1 <= q < kNumQualityLevels.
  double density(QualityLevel q) const {
    assert(density_ != nullptr && q >= 1 && q < kNumQualityLevels);
    return density_[static_cast<std::size_t>(q - 1) * stride_];
  }

 private:
  friend class HTableSet;
  HTable(const double* h, const double* increment, const double* density,
         std::size_t stride)
      : h_(h), increment_(increment), density_(density), stride_(stride) {}

  const double* h_ = nullptr;
  const double* increment_ = nullptr;
  const double* density_ = nullptr;
  std::size_t stride_ = 0;
};

/// @brief The per-slot table set: SoA planes of h / increment / density
/// for every user, rebuilt once per slot, viewed per user via
/// operator[].
///
/// Storage is recycled across build() calls — steady-state rebuilds
/// perform zero heap allocations once the user count has stabilised
/// (enforced by the counting-operator-new tests in
/// tests/slot_arena_test.cpp).
class HTableSet {
 public:
  /// @brief Rebuilds every user's table from `problem`.
  ///
  /// Gathers the SoA image, runs the h kernel selected by
  /// simd::active_backend() (AVX2 when compiled in and the CPU has it,
  /// scalar otherwise — bit-identical either way), derives increments
  /// and densities, then validates the rate planes.
  ///
  /// Incremental rebuilds (docs/performance.md): when the previous
  /// build() on this set succeeded with the same user count and
  /// bitwise-equal QoeParams, the gather runs in fused compare+store
  /// mode and the kernel + rate validation only touch the
  /// simd::kLanes-granular lane blocks whose inputs changed. Clean
  /// lanes keep their previous outputs, which are bit-identical to a
  /// recompute because every output is a pure function of its own
  /// lane's inputs (pinned by core.htable_incremental_matches_full).
  /// Any user-count change, params change, or prior failed build falls
  /// back to the full rebuild. Membership churn needs no special case:
  /// a swapped-in user changes its lane's inputs and dirties the block.
  ///
  /// Error contract (validated-at-build): a rate table that is not
  /// strictly increasing throws std::logic_error *here*, once per
  /// slot — hoisting h_density's per-call throw out of the ascent
  /// loops. After a successful build the accessors are assert-only;
  /// on throw the set's contents are unspecified and the next build()
  /// starts fresh.
  /// @throws std::logic_error on a non-increasing rate table (the
  ///   h_density contract; NaN rate steps are NOT flagged, matching
  ///   h_density's `dr <= 0` comparison exactly).
  /// @throws std::out_of_range via SlotProblemSoA::gather on a short
  ///   frame_loss table.
  void build(const SlotProblem& problem) { build(problem, nullptr, 0); }

  /// @brief build() with optional within-slot parallelism.
  ///
  /// When `pool` is non-null and the user count is at least
  /// `parallel_min_users`, the gather + kernel work is partitioned
  /// into lane-aligned user ranges executed on the pool. Every range
  /// writes a disjoint slice of the planes and each output element is
  /// a pure function of its own lane's inputs, so the result is
  /// bit-identical to the serial build regardless of scheduling
  /// (pinned by tests/simd_test.cpp and the TSan CI leg). Exceptions
  /// from worker ranges rethrow here, lowest range first.
  void build(const SlotProblem& problem, cvr::ThreadPool* pool,
             std::size_t parallel_min_users);

  /// @brief The view of user `n`'s table; valid until the next build().
  HTable operator[](std::size_t n) const {
    assert(n < users_);
    return HTable(h_.data() + n, increment_.data() + n, density_.data() + n,
                  stride_);
  }

  std::size_t size() const { return users_; }

  /// @brief Padded lane count of the planes (simd::padded(size())).
  std::size_t stride() const { return stride_; }

  /// @brief Contiguous plane of every user's marginal value at level
  /// `q` (lane i = user i); entries [size(), stride()) are pad lanes.
  /// The dv-scan pass seeds its dense score array from this row.
  /// @pre 1 <= q < kNumQualityLevels.
  const double* increment_row(QualityLevel q) const {
    assert(q >= 1 && q < kNumQualityLevels);
    return increment_.data() + static_cast<std::size_t>(q - 1) * stride_;
  }

  /// @brief Contiguous plane of every user's marginal density at level
  /// `q`; same layout contract as increment_row().
  const double* density_row(QualityLevel q) const {
    assert(q >= 1 && q < kNumQualityLevels);
    return density_.data() + static_cast<std::size_t>(q - 1) * stride_;
  }

  /// @brief sum_n value(levels[n]) — bit-identical to core::evaluate()
  /// (same per-user doubles summed in the same order).
  /// @throws std::invalid_argument on a level-count mismatch, like
  ///   evaluate().
  double evaluate(const std::vector<QualityLevel>& levels) const;

 private:
  /// Full-rebuild body (gather + kernel over every lane + validation).
  void build_full(const SlotProblem& problem, cvr::ThreadPool* pool,
                  std::size_t parallel_min_users);
  /// Dirty-block body; pre: the incremental preconditions hold.
  void build_incremental(const SlotProblem& problem, cvr::ThreadPool* pool,
                         std::size_t parallel_min_users);
  /// Runs the backend-selected kernel on lanes [begin, end).
  void run_kernel(const QoeParams& params, std::size_t begin, std::size_t end);
  /// Throws std::logic_error on a non-increasing rate step in lanes
  /// [begin, min(end, users_)).
  void validate_rates(std::size_t begin, std::size_t end) const;

  SlotProblemSoA soa_;
  std::size_t users_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> h_;          ///< [L][stride].
  std::vector<double> increment_;  ///< [L-1][stride].
  std::vector<double> density_;    ///< [L-1][stride].
  /// Incremental-rebuild state: whether the last build() completed
  /// (false while building, so a throw forces the next build full),
  /// the params it used, and the per-lane-block dirty flags (recycled).
  bool valid_ = false;
  QoeParams params_{};
  std::vector<unsigned char> dirty_;  ///< [stride / simd::kLanes].
};

namespace detail {

/// The scalar h kernel: evaluates h / increment / density planes for
/// users (lanes) [begin, end). One expression, one association order —
/// the same sequence of IEEE operations the AVX2 kernel performs
/// lane-parallel, and the same h_value_unchecked performs on the
/// direct path. `begin`/`end` need no alignment.
void build_htables_scalar(const SlotProblemSoA& soa, const QoeParams& params,
                          std::size_t begin, std::size_t end, double* h,
                          double* increment, double* density);

#if defined(CVR_HAVE_AVX2)
/// The AVX2 h kernel (htable_avx2.cpp, compiled with -mavx2).
/// @pre begin and end are multiples of simd::kLanes (plane stride is
///   padded, so full-vector loads/stores never leave the planes).
void build_htables_avx2(const SlotProblemSoA& soa, const QoeParams& params,
                        std::size_t begin, std::size_t end, double* h,
                        double* increment, double* density);
#endif

}  // namespace detail

}  // namespace cvr::core
