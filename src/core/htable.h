// Precomputed per-user h-tables for the per-slot hot path.
//
// Every allocator in the stack ranks candidate upgrades by h-derived
// scores: Algorithm 1's two greedy passes compare marginal densities
// eta_n(q) and marginal values v_n(q) across users on every iteration,
// the Lagrangian solver sweeps h - lambda*rate per candidate lambda, and
// the exact solvers tabulate h outright. Recomputing h_value() inside
// those loops costs O(iterations * L) redundant evaluations per slot —
// and an h_increment() is *two* full h_value() calls.
//
// HTable precomputes h_n(q) for all L = kNumQualityLevels levels once
// per (user, slot) and derives increments and densities by subtraction:
//
//   value(q)     = h_n(q)                       (levels 1..L)
//   increment(q) = value(q+1) - value(q)        (steps  1..L-1)
//   density(q)   = increment(q) / (rate[q] - rate[q-1])
//
// These are exactly the doubles h_value / h_increment / h_density
// produce — same inputs, same expression, same association order — so
// routing an allocator through the table is bit-identical to the direct
// path (certified by the core.htable_matches_direct proptest property
// and the existing differential oracles).
//
// Validation policy (see docs/performance.md): rates must be strictly
// increasing; HTable::build checks this ONCE and throws, mirroring
// h_density's contract, so the per-call accessors can be assert-only.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/core/allocator.h"
#include "src/core/qoe.h"

namespace cvr::core {

/// One user's precomputed h-table for one slot.
class HTable {
 public:
  /// Tabulates h(q) for every level and derives increments/densities.
  /// Throws std::logic_error when the rate table is not strictly
  /// increasing (h_density's contract, hoisted out of the hot loop).
  void build(const UserSlotContext& user, const QoeParams& params);

  /// h_n(q). Precondition: 1 <= q <= kNumQualityLevels.
  double value(QualityLevel q) const {
    assert(content::is_valid_level(q));
    return h_[static_cast<std::size_t>(q - 1)];
  }

  /// v_n(q) = h(q+1) - h(q). Precondition: 1 <= q < kNumQualityLevels.
  double increment(QualityLevel q) const {
    assert(q >= 1 && q < kNumQualityLevels);
    return increment_[static_cast<std::size_t>(q - 1)];
  }

  /// eta_n(q) = v_n(q) / (f(q+1) - f(q)). Same precondition as
  /// increment().
  double density(QualityLevel q) const {
    assert(q >= 1 && q < kNumQualityLevels);
    return density_[static_cast<std::size_t>(q - 1)];
  }

 private:
  double h_[kNumQualityLevels] = {};
  double increment_[kNumQualityLevels - 1] = {};
  double density_[kNumQualityLevels - 1] = {};
};

/// The per-slot table set: one HTable per user, in user order, backed by
/// storage that is recycled across build() calls — steady-state rebuilds
/// perform zero heap allocations once the user count has stabilised.
class HTableSet {
 public:
  /// Rebuilds one table per problem user (capacity retained).
  void build(const SlotProblem& problem);

  const HTable& operator[](std::size_t n) const {
    assert(n < tables_.size());
    return tables_[n];
  }

  std::size_t size() const { return tables_.size(); }

  /// sum_n value(levels[n]) — bit-identical to core::evaluate() (same
  /// per-user doubles summed in the same order). Throws
  /// std::invalid_argument on a level-count mismatch, like evaluate().
  double evaluate(const std::vector<QualityLevel>& levels) const;

 private:
  std::vector<HTable> tables_;
};

}  // namespace cvr::core
