// Horizon-coupled evaluation: the original problem (1)-(3) before the
// Section-III decomposition.
//
// The variance term couples quality decisions across the whole horizon,
// which is exactly why the paper's per-slot algorithm needs eq. (8):
// "the average gap between the cumulative QoE by solving (5) over a
// finite time horizon T and the QoE by directly solving (1) converges to
// zero as T -> infinity". These helpers make that claim testable:
//
//   * horizon_optimal()    — exhaustive search over all L^(N*T) quality
//     trajectories (tiny instances only), maximising the exact QoE(T) of
//     Section II under constraints (2)-(3);
//   * horizon_sequential() — run any per-slot Allocator forward with the
//     exact Welford bookkeeping and report its realized QoE(T).
//
// Both use the deterministic delta = 1 setting (the setting of the
// paper's eq. (8) argument). The `decomposition_gap` bench sweeps T and
// shows the per-slot gap shrinking, and tests pin the inequality
// sequential <= optimal plus the shrinking trend.
#pragma once

#include <vector>

#include "src/core/allocator.h"

namespace cvr::core {

/// The horizon problem: one SlotProblem per slot t = 1..T. Users must
/// be consistent across slots (same count); the per-user `qbar`/`slot`
/// fields are ignored (the evaluators maintain them), `delta` is forced
/// to 1.
struct HorizonProblem {
  std::vector<SlotProblem> slots;
  QoeParams params;

  std::size_t horizon() const { return slots.size(); }
  std::size_t user_count() const {
    return slots.empty() ? 0 : slots.front().user_count();
  }
};

/// Exact total QoE(T) = sum_n QoE_n(T) of a full trajectory
/// (trajectory[t][n] = level of user n in slot t), computed from the
/// Section-II definition. Throws on shape mismatches.
double horizon_qoe(const HorizonProblem& problem,
                   const std::vector<std::vector<QualityLevel>>& trajectory);

/// Exhaustive optimum of (1)-(3). Cost L^(N*T): guarded by
/// `max_combinations` (throws std::invalid_argument beyond it).
/// Returns the optimal QoE; fills `best` when non-null.
double horizon_optimal(const HorizonProblem& problem,
                       std::vector<std::vector<QualityLevel>>* best = nullptr,
                       double max_combinations = 5e7);

/// Runs `allocator` slot by slot (fresh reset), feeding it the exact
/// running qbar, and returns the realized QoE(T).
double horizon_sequential(const HorizonProblem& problem,
                          Allocator& allocator);

}  // namespace cvr::core
