// Allocator registry: construct any policy in the library by name.
//
// The single place that maps the string names used by CLIs, configs and
// reports onto allocator factories, so new policies need one
// registration instead of edits to every front-end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/allocator.h"

namespace cvr::core {

/// How the caller will use the allocator — a couple of policies differ
/// between the perfect-knowledge simulation and the estimated system.
enum class AllocatorContext {
  kTraceSimulation,  ///< Section IV: perfect per-slot knowledge.
  kSystem,           ///< Sections V-VI: long-run estimates.
};

/// Names accepted by make_allocator, in presentation order.
std::vector<std::string> allocator_names();

/// Constructs the named allocator, or nullptr for an unknown name.
/// Known names: "dv" (heap argmax, the default), "dv-heap" (explicit
/// alias), "dv-scan" (the paper-literal O(N^2 L) scan, same results —
/// the differential reference), "density", "value", "firefly", "pavq",
/// "lagrangian", "optimal" (brute force), "dp".
std::unique_ptr<Allocator> make_allocator(
    const std::string& name,
    AllocatorContext context = AllocatorContext::kTraceSimulation);

}  // namespace cvr::core
