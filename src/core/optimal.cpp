#include "src/core/optimal.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/core/htable.h"

namespace cvr::core {

namespace {

/// Precomputed per-user tables for the exact solvers; the h column is
/// read from the shared per-slot HTable (bit-identical to h_value).
struct Tables {
  // h[n][q-1], rate[n][q-1]; max_level[n] = highest level within B_n
  // (at least 1: the mandatory minimum).
  std::vector<std::array<double, kNumQualityLevels>> h;
  std::vector<std::array<double, kNumQualityLevels>> rate;
  std::vector<QualityLevel> max_level;
};

Tables build_tables(const SlotProblem& problem) {
  Tables t;
  const std::size_t n_users = problem.user_count();
  HTableSet htables;
  htables.build(problem);
  t.h.resize(n_users);
  t.rate.resize(n_users);
  t.max_level.resize(n_users, 1);
  for (std::size_t n = 0; n < n_users; ++n) {
    for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
      t.h[n][q - 1] = htables[n].value(q);
      t.rate[n][q - 1] = problem.users[n].rate[static_cast<std::size_t>(q - 1)];
      if (q > 1 && user_feasible(problem.users[n], q)) t.max_level[n] = q;
    }
  }
  return t;
}

}  // namespace

Allocation BruteForceAllocator::allocate(const SlotProblem& problem) {
  const std::size_t n_users = problem.user_count();
  if (n_users > max_users_) {
    throw std::invalid_argument(
        "BruteForceAllocator: too many users for exhaustive search");
  }
  Allocation best;
  if (n_users == 0) return best;

  const Tables tables = build_tables(problem);

  // Suffix sums of minimum rates for budget pruning and of maximum
  // attainable h for value pruning.
  std::vector<double> min_rate_suffix(n_users + 1, 0.0);
  std::vector<double> max_h_suffix(n_users + 1, 0.0);
  for (std::size_t n = n_users; n-- > 0;) {
    min_rate_suffix[n] = min_rate_suffix[n + 1] + tables.rate[n][0];
    double best_h = tables.h[n][0];
    for (QualityLevel q = 2; q <= tables.max_level[n]; ++q) {
      best_h = std::max(best_h, tables.h[n][q - 1]);
    }
    max_h_suffix[n] = max_h_suffix[n + 1] + best_h;
  }

  std::vector<QualityLevel> q(n_users, 1);
  std::vector<QualityLevel> best_q(n_users, 1);
  double best_value = -std::numeric_limits<double>::infinity();

  // Recursive DFS with budget + bound pruning.
  auto dfs = [&](auto&& self, std::size_t depth, double used,
                 double value) -> void {
    if (value + max_h_suffix[depth] <= best_value) return;  // bound prune
    if (depth == n_users) {
      best_value = value;
      best_q = q;
      return;
    }
    for (QualityLevel level = 1; level <= tables.max_level[depth]; ++level) {
      const double r = tables.rate[depth][level - 1];
      // Level 1 is the mandatory minimum and always admitted; higher
      // levels must leave room for the remaining users' minima.
      if (level > 1 &&
          used + r + min_rate_suffix[depth + 1] >
              problem.server_bandwidth + kFeasibilityEpsilon) {
        break;  // rates increase with level
      }
      q[depth] = level;
      self(self, depth + 1, used + r, value + tables.h[depth][level - 1]);
    }
    q[depth] = 1;
  };
  dfs(dfs, 0, 0.0, 0.0);

  Allocation result;
  result.levels = std::move(best_q);
  result.objective = best_value;
  return result;
}

DpAllocator::DpAllocator(double granularity_mbps)
    : granularity_(granularity_mbps) {
  if (granularity_mbps <= 0.0) {
    throw std::invalid_argument("DpAllocator: non-positive granularity");
  }
}

Allocation DpAllocator::allocate(const SlotProblem& problem) {
  const std::size_t n_users = problem.user_count();
  Allocation result;
  if (n_users == 0) return result;

  const Tables tables = build_tables(problem);

  // Budget in grid units; rates are rounded up so results stay feasible.
  const auto units = [&](double mbps) {
    return static_cast<long>(std::ceil(mbps / granularity_ - 1e-9));
  };
  const long budget = static_cast<long>(
      std::floor(problem.server_bandwidth / granularity_ + 1e-9));

  long min_needed = 0;
  for (std::size_t n = 0; n < n_users; ++n) min_needed += units(tables.rate[n][0]);
  if (min_needed > budget) {
    // Even the mandatory minimum overflows: fall back to all-ones
    // (Allocator feasibility contract).
    result.levels.assign(n_users, 1);
    result.objective = evaluate(problem, result.levels);
    return result;
  }

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t width = static_cast<std::size_t>(budget) + 1;
  std::vector<double> dp(width, kNegInf);
  dp[0] = 0.0;
  std::vector<QualityLevel> choice(n_users * width, 0);

  std::vector<double> next(width, kNegInf);
  for (std::size_t n = 0; n < n_users; ++n) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (QualityLevel q = 1; q <= tables.max_level[n]; ++q) {
      const long cost = units(tables.rate[n][q - 1]);
      if (cost > budget) break;
      const double value = tables.h[n][q - 1];
      for (long b = budget; b >= cost; --b) {
        const auto prev = static_cast<std::size_t>(b - cost);
        if (dp[prev] == kNegInf) continue;
        const double candidate = dp[prev] + value;
        const auto bi = static_cast<std::size_t>(b);
        if (candidate > next[bi]) {
          next[bi] = candidate;
          choice[n * width + bi] = q;
        }
      }
    }
    dp.swap(next);
  }

  std::size_t best_b = 0;
  double best_value = kNegInf;
  for (std::size_t b = 0; b < width; ++b) {
    if (dp[b] > best_value) {
      best_value = dp[b];
      best_b = b;
    }
  }
  if (best_value == kNegInf) {
    result.levels.assign(n_users, 1);
    result.objective = evaluate(problem, result.levels);
    return result;
  }

  result.levels.assign(n_users, 1);
  std::size_t b = best_b;
  for (std::size_t n = n_users; n-- > 0;) {
    const QualityLevel q = choice[n * width + b];
    result.levels[n] = q;
    b -= static_cast<std::size_t>(units(tables.rate[n][q - 1]));
  }
  result.objective = evaluate(problem, result.levels);
  return result;
}

}  // namespace cvr::core
