// The QoE model of Section II and its per-slot decomposition (Section III).
//
// QoE_n(T) = sum_t ( E[q_n(t) 1_n(t)] - alpha E[d_n(f^R(q_n(t)))] )
//            - beta T sigma_n^2(T),
// decomposed via Welford's recurrence (eq. 4) into per-slot terms
//
// h_n(q) = delta_n q - alpha E[d_n(f(q))]
//          - beta ( delta_n (t-1)(q - qbar)^2 / t
//                 + (1 - delta_n)(t-1) qbar^2 / t ),
//
// where delta_n = E[1_n(t)] is the prediction-success probability and
// qbar = qbar_n(t-1) is the running mean of *successfully viewed* quality.
//
// Delay units: the objective uses eq. (13)'s M/M/1 delay
// d = r / (B_n - r) with rates in Mbps, and we read the value in
// *milliseconds* — the natural scale of the local-WLAN RTTs in Fig. 1b
// (equivalently: the queue's mean service time is normalised to 1 ms).
// With B_n - r ~ 10 Mbps of headroom this gives single-digit-ms delays,
// matching the paper's measurements.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "src/content/quality.h"
#include "src/content/rate_function.h"
#include "src/net/mm1.h"

namespace cvr::core {

using content::QualityLevel;
using content::kNumQualityLevels;

/// Tolerance used by EVERY feasibility comparison in the allocator
/// stack — the greedy passes, the exact solvers, h_is_concave's level
/// ceiling, and the free-function oracles in allocator.h all accept
/// rate <= budget + kFeasibilityEpsilon, so an allocation sitting
/// exactly on a cap is feasible for all of them and differential tests
/// can compare solvers bit-for-bit at the boundary.
inline constexpr double kFeasibilityEpsilon = 1e-9;

/// QoE weights (Section II). alpha scales the delay penalty, beta the
/// quality-variance penalty. The paper uses (0.02, 0.5) for the
/// trace-based simulation and (0.1, 0.5) for the real-world system.
struct QoeParams {
  double alpha = 0.02;
  double beta = 0.5;
};

/// Everything the per-slot problem knows about one user.
///
/// The rate/delay tables are fixed-size arrays: the level count is a
/// compile-time constant of the content model, so a complete table is a
/// structural invariant — no per-call size validation is needed (or
/// possible) on the hot path, and a context is a flat, allocation-free
/// value that a SlotArena can recycle slot after slot.
struct UserSlotContext {
  double delta = 1.0;       ///< Estimated prediction-success probability.
  double qbar = 0.0;        ///< Running mean of viewed quality, qbar_n(t-1).
  double slot = 1.0;        ///< Current slot t (1-based) in the horizon.
  double user_bandwidth = 0.0;  ///< B_n(t), Mbps.
  /// f_{c(t)}^R(q) per level, index q-1.
  std::array<double, kNumQualityLevels> rate{};
  /// E[d_n(f(q))] per level, index q-1.
  std::array<double, kNumQualityLevels> delay{};
  /// Optional (Section VIII extension): estimated probability that the
  /// level-q frame is *undecodable* due to RTP packet loss, index q-1.
  /// Empty means "loss-oblivious" — the paper's published formulation.
  /// When present, the success probability in h_n becomes
  /// delta * (1 - frame_loss[q-1]): content is seen iff the prediction
  /// covers the FoV AND every packet of the frame arrives.
  std::vector<double> frame_loss;

  /// delta * (1 - frame_loss[q-1]) — the effective probability the
  /// level-q content is successfully viewed. Equals delta when no loss
  /// information is attached.
  double effective_delta(QualityLevel q) const;

  /// Builds the rate/delay tables from a rate function and B_n using the
  /// analytic M/M/1 delay (the Section IV setting where the server has
  /// perfect knowledge).
  static UserSlotContext from_rate_function(const content::RateFunction& f,
                                            double user_bandwidth,
                                            double delta, double qbar,
                                            double slot);
};

namespace detail {

/// The exact arithmetic of h_n(q) with no argument validation. Shared
/// by h_value() and the HTableSet build kernels so the precomputed
/// table is
/// bit-identical to the direct path *by construction* — both evaluate
/// this one expression, in this one association order.
/// Precondition (asserted by callers): is_valid_level(q).
inline double h_value_unchecked(const UserSlotContext& user, QualityLevel q,
                                const QoeParams& params) {
  const auto idx = static_cast<std::size_t>(q - 1);
  const double success = user.effective_delta(q);
  const double t = user.slot;
  const double weight = t > 1.0 ? (t - 1.0) / t : 0.0;
  const double dq = static_cast<double>(q) - user.qbar;
  const double variance_term =
      success * weight * dq * dq +
      (1.0 - success) * weight * user.qbar * user.qbar;
  return success * static_cast<double>(q) - params.alpha * user.delay[idx] -
         params.beta * variance_term;
}

}  // namespace detail

/// h_n(q) of Section III. Precondition: is_valid_level(q) (throws
/// std::out_of_range otherwise; the table sizes are compile-time
/// invariants of UserSlotContext and need no runtime check).
double h_value(const UserSlotContext& user, QualityLevel q,
               const QoeParams& params);

/// Marginal value v_{n} = h(q+1) - h(q). Requires q+1 valid.
double h_increment(const UserSlotContext& user, QualityLevel q,
                   const QoeParams& params);

/// Marginal density eta_n = (h(q+1) - h(q)) / (f(q+1) - f(q)).
/// Requires strictly increasing rates (guaranteed by RateFunction).
double h_density(const UserSlotContext& user, QualityLevel q,
                 const QoeParams& params);

/// Diagnostic: whether h_n is discretely concave over the levels the
/// user can actually select (f(q) <= B_n — levels beyond the link sit
/// at the saturated-delay cap, where convexity of d() is deliberately
/// truncated, and constraint (7) excludes them from every allocator
/// anyway). Concavity here is the assumption behind Theorem 1's 1/2
/// guarantee: always true for the published model; the Section-VIII
/// frame_loss extension can break it — the allocator still runs, but
/// the formal bound no longer applies.
bool h_is_concave(const UserSlotContext& user, const QoeParams& params);

/// Tracks one user's realized QoE across a horizon: quality samples
/// q_n(t) 1_n(t), delay samples, and the exact variance sigma_n^2(T)
/// computed by Welford's recurrence — by construction identical to the
/// decomposition the allocator optimises against.
class UserQoeAccumulator {
 public:
  /// Records slot t's outcome: chosen level, whether the content was
  /// successfully viewed, and the delivery delay.
  void record(QualityLevel q, bool viewed, double delay);

  /// General form: the user may end up seeing content at a *different*
  /// quality than chosen — e.g. a level-1 fallback cell after a position
  /// misprediction (footnote-1 extension). `displayed_quality` is the
  /// quality sample entering the mean/variance (0 = nothing correct
  /// seen; must lie in [0, kNumQualityLevels]).
  void record_displayed(QualityLevel chosen, double displayed_quality,
                        double delay);

  std::size_t slots() const { return slots_; }
  /// qbar_n(t): running mean of viewed quality (0 before any slot).
  double mean_viewed_quality() const;
  /// Mean *chosen* level (ignores 1_n) — diagnostic, not a QoE term.
  double mean_level() const;
  double mean_delay() const;
  double variance() const;  ///< sigma_n^2(T) so far.

  /// Time-averaged QoE: mean(q 1) - alpha mean(d) - beta sigma^2(T).
  double average_qoe(const QoeParams& params) const;

 private:
  std::size_t slots_ = 0;
  double level_sum_ = 0.0;
  double quality_sum_ = 0.0;
  double quality_mean_ = 0.0;  // Welford mean of q*1
  double quality_m2_ = 0.0;    // Welford M2 of q*1
  double delay_sum_ = 0.0;
};

}  // namespace cvr::core
