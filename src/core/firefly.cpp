#include "src/core/firefly.h"

#include <algorithm>

namespace cvr::core {

void FireflyAllocator::sync_lru(std::size_t users) {
  if (lru_.size() == users) return;
  lru_.clear();
  for (std::size_t n = 0; n < users; ++n) lru_.push_back(n);
}

Allocation FireflyAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  allocate_into(problem, result);
  return result;
}

void FireflyAllocator::allocate_into(const SlotProblem& problem,
                                     Allocation& out) {
  const std::size_t n_users = problem.user_count();
  sync_lru(n_users);

  // Start each user at the highest level feasible on its own link.
  std::vector<QualityLevel>& q = out.levels;
  q.assign(n_users, 1);
  for (std::size_t n = 0; n < n_users; ++n) {
    for (QualityLevel level = kNumQualityLevels; level >= 1; --level) {
      if (user_feasible(problem.users[n], level)) {
        q[n] = level;
        break;
      }
    }
  }

  // Degrade by LRU until the aggregate fits B(t) (or everyone is at 1).
  double used = total_rate(problem, q);
  bool any_degradable = true;
  while (used > problem.server_bandwidth + kFeasibilityEpsilon && any_degradable) {
    any_degradable = false;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      const std::size_t n = *it;
      if (q[n] > 1) {
        const auto& rates = problem.users[n].rate;
        used -= rates[static_cast<std::size_t>(q[n] - 1)] -
                rates[static_cast<std::size_t>(q[n] - 2)];
        q[n] -= 1;
        // Degraded user becomes most-recently-touched: pressure rotates.
        lru_.splice(lru_.end(), lru_, it);
        any_degradable = true;
        break;
      }
    }
  }

  out.objective = evaluate(problem, q);
}

}  // namespace cvr::core
