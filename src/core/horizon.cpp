#include "src/core/horizon.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cvr::core {

namespace {

void check_shape(const HorizonProblem& problem) {
  if (problem.slots.empty()) {
    throw std::invalid_argument("HorizonProblem: empty horizon");
  }
  const std::size_t users = problem.slots.front().user_count();
  if (users == 0) {
    throw std::invalid_argument("HorizonProblem: no users");
  }
  for (const auto& slot : problem.slots) {
    if (slot.user_count() != users) {
      throw std::invalid_argument("HorizonProblem: user count varies");
    }
  }
}

/// Feasibility of one slot's levels under (2)-(3), with the library's
/// mandatory-minimum convention (all-ones always admitted).
bool slot_feasible(const SlotProblem& slot,
                   const std::vector<QualityLevel>& levels) {
  double total = 0.0;
  for (std::size_t n = 0; n < levels.size(); ++n) {
    if (levels[n] > 1 && !user_feasible(slot.users[n], levels[n])) {
      return false;
    }
    total += slot.users[n].rate[static_cast<std::size_t>(levels[n] - 1)];
  }
  bool all_ones = true;
  for (QualityLevel q : levels) {
    if (q != 1) {
      all_ones = false;
      break;
    }
  }
  return all_ones || total <= slot.server_bandwidth + kFeasibilityEpsilon;
}

}  // namespace

double horizon_qoe(const HorizonProblem& problem,
                   const std::vector<std::vector<QualityLevel>>& trajectory) {
  check_shape(problem);
  const std::size_t horizon = problem.horizon();
  const std::size_t users = problem.user_count();
  if (trajectory.size() != horizon) {
    throw std::invalid_argument("horizon_qoe: trajectory length mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < users; ++n) {
    UserQoeAccumulator acc;
    for (std::size_t t = 0; t < horizon; ++t) {
      if (trajectory[t].size() != users) {
        throw std::invalid_argument("horizon_qoe: trajectory width mismatch");
      }
      const QualityLevel q = trajectory[t][n];
      acc.record(q, /*viewed=*/true,
                 problem.slots[t].users[n].delay[static_cast<std::size_t>(q - 1)]);
    }
    total += acc.average_qoe(problem.params) * static_cast<double>(horizon);
  }
  return total;
}

double horizon_optimal(const HorizonProblem& problem,
                       std::vector<std::vector<QualityLevel>>* best,
                       double max_combinations) {
  check_shape(problem);
  const std::size_t horizon = problem.horizon();
  const std::size_t users = problem.user_count();
  const double combos =
      std::pow(static_cast<double>(kNumQualityLevels),
               static_cast<double>(horizon * users));
  if (combos > max_combinations) {
    throw std::invalid_argument(
        "horizon_optimal: instance too large for exhaustive search");
  }

  std::vector<std::vector<QualityLevel>> trajectory(
      horizon, std::vector<QualityLevel>(users, 1));
  std::vector<std::vector<QualityLevel>> best_trajectory = trajectory;
  double best_value = -std::numeric_limits<double>::infinity();

  // Odometer enumeration over all (t, n) level choices, skipping
  // trajectories with an infeasible slot.
  const std::size_t digits = horizon * users;
  while (true) {
    bool feasible = true;
    for (std::size_t t = 0; t < horizon && feasible; ++t) {
      feasible = slot_feasible(problem.slots[t], trajectory[t]);
    }
    if (feasible) {
      const double value = horizon_qoe(problem, trajectory);
      if (value > best_value) {
        best_value = value;
        best_trajectory = trajectory;
      }
    }
    // Increment the odometer.
    std::size_t digit = 0;
    for (; digit < digits; ++digit) {
      QualityLevel& q = trajectory[digit / users][digit % users];
      if (q < kNumQualityLevels) {
        ++q;
        break;
      }
      q = 1;
    }
    if (digit == digits) break;
  }

  if (best != nullptr) *best = best_trajectory;
  return best_value;
}

double horizon_sequential(const HorizonProblem& problem,
                          Allocator& allocator) {
  check_shape(problem);
  const std::size_t horizon = problem.horizon();
  const std::size_t users = problem.user_count();
  allocator.reset();

  std::vector<UserQoeAccumulator> accumulators(users);
  // The working slot and allocation live outside the loop so their
  // storage is recycled — the per-slot hot path stays allocation-free
  // once capacities have stabilised (arena-style reuse, see
  // src/core/slot_arena.h).
  SlotProblem slot;
  Allocation allocation;
  for (std::size_t t = 0; t < horizon; ++t) {
    slot = problem.slots[t];
    for (std::size_t n = 0; n < users; ++n) {
      slot.users[n].delta = 1.0;
      slot.users[n].qbar = accumulators[n].mean_viewed_quality();
      slot.users[n].slot = static_cast<double>(t + 1);
    }
    allocator.allocate_into(slot, allocation);
    for (std::size_t n = 0; n < users; ++n) {
      const QualityLevel q = allocation.levels[n];
      accumulators[n].record(
          q, true, slot.users[n].delay[static_cast<std::size_t>(q - 1)]);
    }
  }
  double total = 0.0;
  for (const auto& acc : accumulators) {
    total += acc.average_qoe(problem.params) * static_cast<double>(horizon);
  }
  return total;
}

}  // namespace cvr::core
