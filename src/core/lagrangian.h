// Lagrangian-relaxation solver for the per-slot problem (5)-(7).
//
// Dualising the shared constraint (6) with multiplier lambda >= 0
// decouples the users:
//     g(lambda) = sum_n max_q [ h_n(q) - lambda f_n(q) ] + lambda B(t),
// a convex piecewise-linear function of lambda with g(lambda) >= OPT for
// every lambda (weak duality). Because h_n is concave and f_n convex,
// the per-user argmax is monotone non-increasing in lambda, so total
// usage is a non-increasing step function and bisection finds the
// smallest lambda whose allocation is feasible — a primal solution whose
// gap to OPT is bounded by the duality gap at the crossing point.
//
// This is the classical alternative to Algorithm 1 for this problem
// family (cf. the nonlinear-knapsack survey the paper cites); the
// `solver_comparison` bench measures value and runtime against
// DV-greedy, the exact DP, and the fractional bound.
#pragma once

#include "src/core/allocator.h"

namespace cvr::core {

class LagrangianAllocator final : public Allocator {
 public:
  /// `iterations`: bisection steps on lambda (60 reaches double
  /// precision for any realistic rate scale).
  explicit LagrangianAllocator(int iterations = 60);

  std::string_view name() const override { return "lagrangian"; }

  Allocation allocate(const SlotProblem& problem) override;

 private:
  int iterations_;
};

/// Weak-duality upper bound: min over a lambda sweep of g(lambda).
/// Always >= OPT of (5)-(7); complements fractional_upper_bound.
double lagrangian_dual_bound(const SlotProblem& problem,
                             int iterations = 80);

}  // namespace cvr::core
