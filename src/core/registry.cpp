#include "src/core/registry.h"

#include "src/core/dv_greedy.h"
#include "src/core/firefly.h"
#include "src/core/lagrangian.h"
#include "src/core/optimal.h"
#include "src/core/pavq.h"

namespace cvr::core {

std::vector<std::string> allocator_names() {
  return {"dv",      "dv-heap", "dv-scan", "dv-warm",    "density",
          "value",   "firefly", "pavq",    "lagrangian", "optimal",
          "dp"};
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          AllocatorContext context) {
  if (name == "dv") return std::make_unique<DvGreedyAllocator>();
  if (name == "dv-heap") {
    return std::make_unique<DvGreedyAllocator>(
        DvGreedyAllocator::Mode::kCombined,
        DvGreedyAllocator::Strategy::kHeap);
  }
  if (name == "dv-scan") {
    // The paper-literal O(N^2 L) argmax scan, kept as the differential
    // reference for the heap default (see dv_greedy.h).
    return std::make_unique<DvGreedyAllocator>(
        DvGreedyAllocator::Mode::kCombined,
        DvGreedyAllocator::Strategy::kScan);
  }
  if (name == "dv-warm") {
    // Warm-start ABLATION: seeds each slot's ascent from the previous
    // slot's allocation. Theorem 1's 1/2-gain bound is forfeited in
    // this mode (see dv_greedy.h); results are still always feasible.
    return std::make_unique<DvGreedyAllocator>(
        DvGreedyAllocator::Mode::kCombined, DvGreedyAllocator::Strategy::kHeap,
        /*warm_start=*/true);
  }
  if (name == "density") {
    return std::make_unique<DvGreedyAllocator>(
        DvGreedyAllocator::Mode::kDensityOnly);
  }
  if (name == "value") {
    return std::make_unique<DvGreedyAllocator>(
        DvGreedyAllocator::Mode::kValueOnly);
  }
  if (name == "firefly") return std::make_unique<FireflyAllocator>();
  if (name == "pavq") {
    return context == AllocatorContext::kTraceSimulation
               ? std::make_unique<PavqAllocator>(
                     PavqAllocator::perfect_knowledge())
               : std::make_unique<PavqAllocator>();
  }
  if (name == "lagrangian") return std::make_unique<LagrangianAllocator>();
  if (name == "optimal") return std::make_unique<BruteForceAllocator>();
  if (name == "dp") return std::make_unique<DpAllocator>();
  return nullptr;
}

}  // namespace cvr::core
