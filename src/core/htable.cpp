#include "src/core/htable.h"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <vector>

#include "src/util/thread_pool.h"

namespace cvr::core {

void SlotProblemSoA::prepare(const SlotProblem& problem) {
  users = problem.user_count();
  stride = simd::padded(users);
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  success.resize(levels * stride);
  weight.resize(stride);
  qbar.resize(stride);
  rate.resize(levels * stride);
  delay.resize(levels * stride);
  // Pad lanes: success 1, weight 0, qbar 0, delay 0 and strictly
  // increasing rates make every derived pad output a finite number that
  // passes the dr > 0 validation without masking.
  for (std::size_t i = users; i < stride; ++i) {
    weight[i] = 0.0;
    qbar[i] = 0.0;
    for (std::size_t l = 0; l < levels; ++l) {
      success[l * stride + i] = 1.0;
      rate[l * stride + i] = static_cast<double>(l + 1);
      delay[l * stride + i] = 0.0;
    }
  }
}

void SlotProblemSoA::gather_range(const SlotProblem& problem, std::size_t begin,
                                  std::size_t end) {
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  for (std::size_t i = begin; i < end; ++i) {
    const UserSlotContext& user = problem.users[i];
    const double t = user.slot;
    weight[i] = t > 1.0 ? (t - 1.0) / t : 0.0;
    qbar[i] = user.qbar;
    for (std::size_t l = 0; l < levels; ++l) {
      success[l * stride + i] =
          user.effective_delta(static_cast<QualityLevel>(l + 1));
      rate[l * stride + i] = user.rate[l];
      delay[l * stride + i] = user.delay[l];
    }
  }
}

void SlotProblemSoA::gather(const SlotProblem& problem) {
  prepare(problem);
  gather_range(problem, 0, users);
}

namespace detail {

void build_htables_scalar(const SlotProblemSoA& soa, const QoeParams& params,
                          std::size_t begin, std::size_t end, double* h,
                          double* increment, double* density) {
  const std::size_t stride = soa.stride;
  for (std::size_t l = 0; l < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const double qv = static_cast<double>(l + 1);
    const double* success_row = soa.success.data() + l * stride;
    const double* delay_row = soa.delay.data() + l * stride;
    double* out = h + l * stride;
    for (std::size_t i = begin; i < end; ++i) {
      const double s = success_row[i];
      const double w = soa.weight[i];
      const double qb = soa.qbar[i];
      const double dq = qv - qb;
      // The exact expression and association order of
      // detail::h_value_unchecked — the bit-identity anchor.
      const double variance_term = s * w * dq * dq + (1.0 - s) * w * qb * qb;
      out[i] = s * qv - params.alpha * delay_row[i] - params.beta * variance_term;
    }
  }
  for (std::size_t l = 0; l + 1 < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const double* h_lo = h + l * stride;
    const double* h_hi = h + (l + 1) * stride;
    const double* r_lo = soa.rate.data() + l * stride;
    const double* r_hi = soa.rate.data() + (l + 1) * stride;
    double* inc = increment + l * stride;
    double* den = density + l * stride;
    for (std::size_t i = begin; i < end; ++i) {
      inc[i] = h_hi[i] - h_lo[i];
      den[i] = inc[i] / (r_hi[i] - r_lo[i]);
    }
  }
}

}  // namespace detail

void HTableSet::build(const SlotProblem& problem, cvr::ThreadPool* pool,
                      std::size_t parallel_min_users) {
  soa_.prepare(problem);
  users_ = soa_.users;
  stride_ = soa_.stride;
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  h_.resize(levels * stride_);
  increment_.resize((levels - 1) * stride_);
  density_.resize((levels - 1) * stride_);

  const auto kernel = [this, &problem](std::size_t begin, std::size_t end) {
#if defined(CVR_HAVE_AVX2)
    if (simd::active_backend() == simd::Backend::kAvx2) {
      detail::build_htables_avx2(soa_, problem.params, begin, end, h_.data(),
                                 increment_.data(), density_.data());
      return;
    }
#endif
    detail::build_htables_scalar(soa_, problem.params, begin, end, h_.data(),
                                 increment_.data(), density_.data());
  };

  if (pool != nullptr && users_ >= parallel_min_users && stride_ > 0) {
    // Lane-aligned disjoint ranges: every task gathers and evaluates
    // its own slice, so the result is bit-identical to the serial
    // build regardless of scheduling. Futures are drained in range
    // order, so the lowest range's exception wins.
    const std::size_t lanes = stride_ / simd::kLanes;
    const std::size_t per_task =
        (lanes + pool->size() - 1) / pool->size() * simd::kLanes;
    std::vector<std::future<void>> tasks;
    tasks.reserve((stride_ + per_task - 1) / per_task);
    for (std::size_t begin = 0; begin < stride_; begin += per_task) {
      const std::size_t end = std::min(begin + per_task, stride_);
      tasks.push_back(pool->submit([this, &problem, &kernel, begin, end] {
        const std::size_t gather_end = std::min(end, soa_.users);
        if (begin < gather_end) soa_.gather_range(problem, begin, gather_end);
        kernel(begin, end);
      }));
    }
    for (auto& task : tasks) task.get();
  } else {
    soa_.gather_range(problem, 0, users_);
    kernel(0, stride_);
  }

  // Validated-at-build: one pass over the rate planes replaces
  // h_density's per-call throw. NaN steps are deliberately NOT flagged
  // (dr <= 0 is false for NaN), matching h_density exactly.
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const double* r_lo = soa_.rate.data() + l * stride_;
    const double* r_hi = soa_.rate.data() + (l + 1) * stride_;
    for (std::size_t i = 0; i < users_; ++i) {
      if (r_hi[i] - r_lo[i] <= 0.0) {
        throw std::logic_error("HTable: rates must be strictly increasing");
      }
    }
  }
}

double HTableSet::evaluate(const std::vector<QualityLevel>& levels) const {
  if (levels.size() != users_) {
    throw std::invalid_argument("HTableSet::evaluate: level count mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < users_; ++n) {
    total += h_[static_cast<std::size_t>(levels[n] - 1) * stride_ + n];
  }
  return total;
}

}  // namespace cvr::core
