#include "src/core/htable.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <vector>

#include "src/util/thread_pool.h"

namespace cvr::core {

namespace {

inline bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

void SlotProblemSoA::prepare(const SlotProblem& problem) {
  users = problem.user_count();
  stride = simd::padded(users);
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  success.resize(levels * stride);
  weight.resize(stride);
  qbar.resize(stride);
  rate.resize(levels * stride);
  delay.resize(levels * stride);
  // Pad lanes: success 1, weight 0, qbar 0, delay 0 and strictly
  // increasing rates make every derived pad output a finite number that
  // passes the dr > 0 validation without masking.
  for (std::size_t i = users; i < stride; ++i) {
    weight[i] = 0.0;
    qbar[i] = 0.0;
    for (std::size_t l = 0; l < levels; ++l) {
      success[l * stride + i] = 1.0;
      rate[l * stride + i] = static_cast<double>(l + 1);
      delay[l * stride + i] = 0.0;
    }
  }
}

void SlotProblemSoA::gather_range(const SlotProblem& problem, std::size_t begin,
                                  std::size_t end) {
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  for (std::size_t i = begin; i < end; ++i) {
    const UserSlotContext& user = problem.users[i];
    const double t = user.slot;
    weight[i] = t > 1.0 ? (t - 1.0) / t : 0.0;
    qbar[i] = user.qbar;
    for (std::size_t l = 0; l < levels; ++l) {
      success[l * stride + i] =
          user.effective_delta(static_cast<QualityLevel>(l + 1));
      rate[l * stride + i] = user.rate[l];
      delay[l * stride + i] = user.delay[l];
    }
  }
}

void SlotProblemSoA::gather(const SlotProblem& problem) {
  prepare(problem);
  gather_range(problem, 0, users);
}

bool SlotProblemSoA::gather_user_tracked(const SlotProblem& problem,
                                         std::size_t i) {
  const UserSlotContext& user = problem.users[i];
  const double t = user.slot;
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  // XOR-accumulate the bit difference of every compare+store: branch-free
  // in the all-clean steady state the path exists for.
  std::uint64_t diff = 0;
  const auto store = [&diff](double& slot, double value) {
    diff |= std::bit_cast<std::uint64_t>(slot) ^
            std::bit_cast<std::uint64_t>(value);
    slot = value;
  };
  store(weight[i], t > 1.0 ? (t - 1.0) / t : 0.0);
  store(qbar[i], user.qbar);
  for (std::size_t l = 0; l < levels; ++l) {
    store(success[l * stride + i],
          user.effective_delta(static_cast<QualityLevel>(l + 1)));
    store(rate[l * stride + i], user.rate[l]);
    store(delay[l * stride + i], user.delay[l]);
  }
  return diff != 0;
}

namespace detail {

void build_htables_scalar(const SlotProblemSoA& soa, const QoeParams& params,
                          std::size_t begin, std::size_t end, double* h,
                          double* increment, double* density) {
  const std::size_t stride = soa.stride;
  for (std::size_t l = 0; l < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const double qv = static_cast<double>(l + 1);
    const double* success_row = soa.success.data() + l * stride;
    const double* delay_row = soa.delay.data() + l * stride;
    double* out = h + l * stride;
    for (std::size_t i = begin; i < end; ++i) {
      const double s = success_row[i];
      const double w = soa.weight[i];
      const double qb = soa.qbar[i];
      const double dq = qv - qb;
      // The exact expression and association order of
      // detail::h_value_unchecked — the bit-identity anchor.
      const double variance_term = s * w * dq * dq + (1.0 - s) * w * qb * qb;
      out[i] = s * qv - params.alpha * delay_row[i] - params.beta * variance_term;
    }
  }
  for (std::size_t l = 0; l + 1 < static_cast<std::size_t>(kNumQualityLevels);
       ++l) {
    const double* h_lo = h + l * stride;
    const double* h_hi = h + (l + 1) * stride;
    const double* r_lo = soa.rate.data() + l * stride;
    const double* r_hi = soa.rate.data() + (l + 1) * stride;
    double* inc = increment + l * stride;
    double* den = density + l * stride;
    for (std::size_t i = begin; i < end; ++i) {
      inc[i] = h_hi[i] - h_lo[i];
      den[i] = inc[i] / (r_hi[i] - r_lo[i]);
    }
  }
}

}  // namespace detail

void HTableSet::build(const SlotProblem& problem, cvr::ThreadPool* pool,
                      std::size_t parallel_min_users) {
  // Incremental preconditions: the previous build on this set completed,
  // the lane layout is unchanged, and the params that parameterise the
  // kernel are bitwise the same. Anything else — including a build that
  // threw — takes the full path.
  const bool incremental = valid_ && problem.user_count() == users_ &&
                           users_ > 0 &&
                           bits_equal(params_.alpha, problem.params.alpha) &&
                           bits_equal(params_.beta, problem.params.beta);
  valid_ = false;
  params_ = problem.params;
  if (incremental) {
    build_incremental(problem, pool, parallel_min_users);
  } else {
    build_full(problem, pool, parallel_min_users);
  }
  valid_ = true;
}

void HTableSet::run_kernel(const QoeParams& params, std::size_t begin,
                           std::size_t end) {
#if defined(CVR_HAVE_AVX2)
  if (simd::active_backend() == simd::Backend::kAvx2) {
    detail::build_htables_avx2(soa_, params, begin, end, h_.data(),
                               increment_.data(), density_.data());
    return;
  }
#endif
  detail::build_htables_scalar(soa_, params, begin, end, h_.data(),
                               increment_.data(), density_.data());
}

void HTableSet::validate_rates(std::size_t begin, std::size_t end) const {
  // Validated-at-build: this pass over the rate planes replaces
  // h_density's per-call throw. NaN steps are deliberately NOT flagged
  // (dr <= 0 is false for NaN), matching h_density exactly.
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  const std::size_t last = std::min(end, users_);
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const double* r_lo = soa_.rate.data() + l * stride_;
    const double* r_hi = soa_.rate.data() + (l + 1) * stride_;
    for (std::size_t i = begin; i < last; ++i) {
      if (r_hi[i] - r_lo[i] <= 0.0) {
        throw std::logic_error("HTable: rates must be strictly increasing");
      }
    }
  }
}

void HTableSet::build_full(const SlotProblem& problem, cvr::ThreadPool* pool,
                           std::size_t parallel_min_users) {
  soa_.prepare(problem);
  users_ = soa_.users;
  stride_ = soa_.stride;
  const auto levels = static_cast<std::size_t>(kNumQualityLevels);
  h_.resize(levels * stride_);
  increment_.resize((levels - 1) * stride_);
  density_.resize((levels - 1) * stride_);

  if (pool != nullptr && users_ >= parallel_min_users && stride_ > 0) {
    // Lane-aligned disjoint ranges: every task gathers and evaluates
    // its own slice, so the result is bit-identical to the serial
    // build regardless of scheduling. Futures are drained in range
    // order, so the lowest range's exception wins.
    const std::size_t lanes = stride_ / simd::kLanes;
    const std::size_t per_task =
        (lanes + pool->size() - 1) / pool->size() * simd::kLanes;
    std::vector<std::future<void>> tasks;
    tasks.reserve((stride_ + per_task - 1) / per_task);
    for (std::size_t begin = 0; begin < stride_; begin += per_task) {
      const std::size_t end = std::min(begin + per_task, stride_);
      tasks.push_back(pool->submit([this, &problem, begin, end] {
        const std::size_t gather_end = std::min(end, soa_.users);
        if (begin < gather_end) soa_.gather_range(problem, begin, gather_end);
        run_kernel(problem.params, begin, end);
      }));
    }
    for (auto& task : tasks) task.get();
  } else {
    soa_.gather_range(problem, 0, users_);
    run_kernel(problem.params, 0, stride_);
  }

  validate_rates(0, users_);
}

void HTableSet::build_incremental(const SlotProblem& problem,
                                  cvr::ThreadPool* pool,
                                  std::size_t parallel_min_users) {
  // Planes are already sized for this user count (precondition), so the
  // steady-state path below performs zero heap allocations (pinned by
  // tests/slot_arena_test.cpp). The fused gather compares every lane's
  // freshly computed inputs bitwise against the plane contents and
  // marks changed simd::kLanes blocks; only those blocks re-run the
  // kernel and the rate validation. Clean blocks keep outputs that are
  // bit-identical to a recompute (pure per-lane function of unchanged
  // inputs), and their rates were validated by the previous build.
  const std::size_t blocks = stride_ / simd::kLanes;
  dirty_.resize(blocks);
  std::fill(dirty_.begin(), dirty_.end(), 0);

  const auto gather_tracked = [this, &problem](std::size_t begin,
                                               std::size_t end) {
    const std::size_t last = std::min(end, soa_.users);
    for (std::size_t i = begin; i < last; ++i) {
      if (soa_.gather_user_tracked(problem, i)) {
        dirty_[i / simd::kLanes] = 1;
      }
    }
  };
  const auto kernel_dirty = [this, &problem](std::size_t block_begin,
                                             std::size_t block_end) {
    // Coalesce runs of dirty blocks into single kernel calls; block
    // bounds keep begin/end lane-aligned for the AVX2 kernel.
    std::size_t b = block_begin;
    while (b < block_end) {
      if (!dirty_[b]) {
        ++b;
        continue;
      }
      std::size_t run_end = b + 1;
      while (run_end < block_end && dirty_[run_end]) ++run_end;
      run_kernel(problem.params, b * simd::kLanes, run_end * simd::kLanes);
      b = run_end;
    }
  };

  if (pool != nullptr && users_ >= parallel_min_users && stride_ > 0) {
    // Same lane-aligned partition as the full build: each task tracks
    // and recomputes only its own disjoint slice, so scheduling cannot
    // change any output bit.
    const std::size_t per_task =
        (blocks + pool->size() - 1) / pool->size() * simd::kLanes;
    std::vector<std::future<void>> tasks;
    tasks.reserve((stride_ + per_task - 1) / per_task);
    for (std::size_t begin = 0; begin < stride_; begin += per_task) {
      const std::size_t end = std::min(begin + per_task, stride_);
      tasks.push_back(
          pool->submit([&gather_tracked, &kernel_dirty, begin, end] {
            gather_tracked(begin, end);
            kernel_dirty(begin / simd::kLanes, end / simd::kLanes);
          }));
    }
    for (auto& task : tasks) task.get();
  } else {
    gather_tracked(0, stride_);
    kernel_dirty(0, blocks);
  }

  for (std::size_t b = 0; b < blocks; ++b) {
    if (dirty_[b]) {
      validate_rates(b * simd::kLanes, (b + 1) * simd::kLanes);
    }
  }
}

double HTableSet::evaluate(const std::vector<QualityLevel>& levels) const {
  if (levels.size() != users_) {
    throw std::invalid_argument("HTableSet::evaluate: level count mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < users_; ++n) {
    total += h_[static_cast<std::size_t>(levels[n] - 1) * stride_ + n];
  }
  return total;
}

}  // namespace cvr::core
