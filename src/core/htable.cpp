#include "src/core/htable.h"

#include <stdexcept>

namespace cvr::core {

void HTable::build(const UserSlotContext& user, const QoeParams& params) {
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    h_[static_cast<std::size_t>(q - 1)] =
        detail::h_value_unchecked(user, q, params);
  }
  for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
    const auto i = static_cast<std::size_t>(q - 1);
    const double dr = user.rate[i + 1] - user.rate[i];
    if (dr <= 0.0) {
      throw std::logic_error("HTable: rates must be strictly increasing");
    }
    increment_[i] = h_[i + 1] - h_[i];
    density_[i] = increment_[i] / dr;
  }
}

void HTableSet::build(const SlotProblem& problem) {
  tables_.resize(problem.user_count());
  for (std::size_t n = 0; n < tables_.size(); ++n) {
    tables_[n].build(problem.users[n], problem.params);
  }
}

double HTableSet::evaluate(const std::vector<QualityLevel>& levels) const {
  if (levels.size() != tables_.size()) {
    throw std::invalid_argument("HTableSet::evaluate: level count mismatch");
  }
  double total = 0.0;
  for (std::size_t n = 0; n < tables_.size(); ++n) {
    total += tables_[n].value(levels[n]);
  }
  return total;
}

}  // namespace cvr::core
