#include "src/core/lagrangian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/htable.h"

namespace cvr::core {

namespace {

/// Per-user argmax of h(q) - lambda f(q), subject to (7). Ties break
/// toward the *lower* level so that usage(lambda) is right-continuous
/// and bisection lands on a feasible allocation. Reads h from the
/// per-slot table instead of recomputing it per candidate lambda.
QualityLevel best_level(const UserSlotContext& user, const HTable& table,
                        double lambda) {
  QualityLevel best_q = 1;
  double best = table.value(1) - lambda * user.rate[0];
  for (QualityLevel q = 2; q <= kNumQualityLevels; ++q) {
    if (!user_feasible(user, q)) break;  // rates increase with q
    const double v =
        table.value(q) - lambda * user.rate[static_cast<std::size_t>(q - 1)];
    if (v > best + 1e-12) {
      best = v;
      best_q = q;
    }
  }
  return best_q;
}

double usage(const SlotProblem& problem, const HTableSet& tables,
             double lambda, std::vector<QualityLevel>& levels) {
  double total = 0.0;
  for (std::size_t n = 0; n < problem.users.size(); ++n) {
    levels[n] = best_level(problem.users[n], tables[n], lambda);
    total += problem.users[n].rate[static_cast<std::size_t>(levels[n] - 1)];
  }
  return total;
}

/// Largest marginal density over all users/levels: above this lambda
/// every user sits at level 1.
double lambda_ceiling(const SlotProblem& problem, const HTableSet& tables) {
  double ceiling = 0.0;
  for (std::size_t n = 0; n < problem.users.size(); ++n) {
    const auto& user = problem.users[n];
    for (QualityLevel q = 1; q < kNumQualityLevels; ++q) {
      const double dr = user.rate[static_cast<std::size_t>(q)] -
                        user.rate[static_cast<std::size_t>(q - 1)];
      if (dr <= 0.0) continue;
      ceiling = std::max(ceiling, std::abs(tables[n].increment(q)) / dr);
    }
  }
  return ceiling + 1.0;
}

}  // namespace

LagrangianAllocator::LagrangianAllocator(int iterations)
    : iterations_(std::max(1, iterations)) {}

Allocation LagrangianAllocator::allocate(const SlotProblem& problem) {
  Allocation result;
  const std::size_t n_users = problem.user_count();
  if (n_users == 0) return result;

  HTableSet tables;
  tables.build(problem);

  std::vector<QualityLevel> levels(n_users, 1);
  // lambda = 0: unconstrained optimum. Feasible? Done.
  if (usage(problem, tables, 0.0, levels) <=
      problem.server_bandwidth + kFeasibilityEpsilon) {
    result.levels = std::move(levels);
    result.objective = tables.evaluate(result.levels);
    return result;
  }

  double lo = 0.0;                              // infeasible side
  double hi = lambda_ceiling(problem, tables);  // all-ones side
  std::vector<QualityLevel> hi_levels(n_users, 1);
  if (usage(problem, tables, hi, hi_levels) >
      problem.server_bandwidth + kFeasibilityEpsilon) {
    // Even the all-ones minimum violates (6): mandatory-minimum fallback.
    result.levels.assign(n_users, 1);
    result.objective = tables.evaluate(result.levels);
    return result;
  }

  std::vector<QualityLevel> feasible = hi_levels;
  for (int i = 0; i < iterations_; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (usage(problem, tables, mid, levels) <=
        problem.server_bandwidth + kFeasibilityEpsilon) {
      feasible = levels;
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Greedy fill: the crossing lambda can drop several users' levels at
  // once (the dual's step discontinuity), leaving budget on the table.
  // Spend it on the best positive-density increments that still fit —
  // the standard Lagrangian-plus-fill refinement.
  double used = total_rate(problem, feasible);
  bool improved = true;
  while (improved) {
    improved = false;
    double best_density = 0.0;
    std::size_t best = n_users;
    for (std::size_t n = 0; n < n_users; ++n) {
      if (feasible[n] >= kNumQualityLevels) continue;
      if (!user_feasible(problem.users[n], feasible[n] + 1)) continue;
      const double dr =
          problem.users[n].rate[static_cast<std::size_t>(feasible[n])] -
          problem.users[n].rate[static_cast<std::size_t>(feasible[n] - 1)];
      if (used + dr > problem.server_bandwidth + kFeasibilityEpsilon) continue;
      const double density = tables[n].density(feasible[n]);
      if (density > best_density) {
        best_density = density;
        best = n;
      }
    }
    if (best != n_users && best_density > 0.0) {
      used += problem.users[best].rate[static_cast<std::size_t>(feasible[best])] -
              problem.users[best]
                  .rate[static_cast<std::size_t>(feasible[best] - 1)];
      feasible[best] += 1;
      improved = true;
    }
  }

  result.levels = std::move(feasible);
  result.objective = tables.evaluate(result.levels);
  return result;
}

double lagrangian_dual_bound(const SlotProblem& problem, int iterations) {
  const std::size_t n_users = problem.user_count();
  if (n_users == 0) return 0.0;

  HTableSet tables;
  tables.build(problem);

  // Strictly infeasible instance (even all-ones overflows B): the dual
  // of the strict problem is -infinity, but the library's convention
  // admits the mandatory minimum — whose value is then the only
  // admissible outcome, hence also the bound.
  double min_rate = 0.0;
  for (const auto& user : problem.users) min_rate += user.rate[0];
  if (min_rate > problem.server_bandwidth + kFeasibilityEpsilon) {
    return tables.evaluate(std::vector<QualityLevel>(n_users, 1));
  }

  auto dual = [&](double lambda) {
    double total = lambda * problem.server_bandwidth;
    for (std::size_t n = 0; n < n_users; ++n) {
      const auto& user = problem.users[n];
      double best = -std::numeric_limits<double>::infinity();
      for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
        if (q > 1 && !user_feasible(user, q)) break;
        best = std::max(best,
                        tables[n].value(q) -
                            lambda * user.rate[static_cast<std::size_t>(q - 1)]);
      }
      total += best;
    }
    return total;
  };

  // g is convex in lambda: golden-section search over [0, ceiling].
  constexpr double kGolden = 0.6180339887498949;
  double lo = 0.0;
  double hi = lambda_ceiling(problem, tables);
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double f1 = dual(x1);
  double f2 = dual(x2);
  for (int i = 0; i < iterations; ++i) {
    if (f1 <= f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGolden * (hi - lo);
      f1 = dual(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGolden * (hi - lo);
      f2 = dual(x2);
    }
  }
  return std::min({dual(lo), f1, f2, dual(hi)});
}

}  // namespace cvr::core
