// Firefly's Adaptive Quality Control baseline (Liu et al., USENIX ATC'20).
//
// Section IV: "Adaptive Quality Control algorithm in Firefly, which uses
// Least Recently Used (LRU) algorithm to allocate the rate for multiple
// users. Due to its heuristic property and similar setup in the original
// paper, it can be directly deployed to our problem without
// modifications."
//
// Reproduction (DESIGN.md Section 5): every user starts each slot at the
// highest level its own link B_n admits; while the aggregate exceeds
// B(t), the *least-recently-boosted* user is degraded one level, cycling
// by LRU. A user whose quality survives a slot un-degraded is "boosted"
// (moved to the MRU end), so degradation pressure rotates — the LRU
// rate-allocation heuristic the paper attributes to Firefly. The policy
// is QoE-oblivious: it never looks at h_n, delay, or variance, which is
// exactly why it trails the principled algorithms in Figs. 2/3/7 and
// collapses under the bandwidth variance of Fig. 8.
#pragma once

#include <list>

#include "src/core/allocator.h"

namespace cvr::core {

class FireflyAllocator final : public Allocator {
 public:
  std::string_view name() const override { return "firefly-aqc"; }

  Allocation allocate(const SlotProblem& problem) override;

  /// Builds the levels directly into `out` (capacity recycled); the
  /// objective is read from the per-slot HTable like every other
  /// allocator, though the policy itself stays QoE-oblivious.
  void allocate_into(const SlotProblem& problem, Allocation& out) override;

  void reset() override { lru_.clear(); }

 private:
  void sync_lru(std::size_t users);

  std::list<std::size_t> lru_;  // front = least recently boosted
};

}  // namespace cvr::core
