// Algorithm 1: the Density/Value-Greedy quality-level allocator.
//
// Section III. Two greedy ascents from the all-ones allocation:
//   * density pass — repeatedly raise by one level the user with the
//     largest eta_n = (h(q+1) - h(q)) / (f(q+1) - f(q));
//   * value pass — same but ranked by v_n = h(q+1) - h(q);
// each pass stops a user when it hits level L, violates its own B_n, or
// would violate the server's B(t) (quality_verification), and stops
// entirely when the best marginal is negative. The better of the two
// allocations is returned.
//
// Theorem 1: the result is at least 1/2 of the optimum of (5)-(7); the
// bench `theorem1_approx_ratio` verifies this against an exact solver.
//
// Complexity: the paper's plain argmax scan is O(N^2 L) per pass —
// negligible at the paper's N <= 30 but quadratic pain at hundreds of
// users. Because an increment changes only the chosen user's own
// marginal (h_n depends only on user n's state), a lazy max-heap gives
// the EXACT same ascent in O(N L log N); `Strategy::kHeap` selects it
// and the tests pin bitwise-identical allocations against the scan.
#pragma once

#include "src/core/allocator.h"

namespace cvr::core {

class DvGreedyAllocator final : public Allocator {
 public:
  /// Which passes to run — the ablation bench compares the variants.
  enum class Mode { kDensityOnly, kValueOnly, kCombined };

  /// Argmax implementation; identical results, different complexity.
  enum class Strategy { kScan, kHeap };

  explicit DvGreedyAllocator(Mode mode = Mode::kCombined,
                             Strategy strategy = Strategy::kScan)
      : mode_(mode), strategy_(strategy) {}

  std::string_view name() const override;

  Allocation allocate(const SlotProblem& problem) override;

 private:
  enum class Rank { kDensity, kValue };

  /// One greedy ascent; returns the resulting levels.
  std::vector<QualityLevel> greedy_pass(const SlotProblem& problem,
                                        Rank rank) const;
  std::vector<QualityLevel> greedy_pass_heap(const SlotProblem& problem,
                                             Rank rank) const;

  Mode mode_;
  Strategy strategy_;
};

}  // namespace cvr::core
