// Algorithm 1: the Density/Value-Greedy quality-level allocator.
//
// Section III. Two greedy ascents from the all-ones allocation:
//   * density pass — repeatedly raise by one level the user with the
//     largest eta_n = (h(q+1) - h(q)) / (f(q+1) - f(q));
//   * value pass — same but ranked by v_n = h(q+1) - h(q);
// each pass stops a user when it hits level L, violates its own B_n, or
// would violate the server's B(t) (quality_verification), and stops
// entirely when the best marginal is negative. The better of the two
// allocations is returned.
//
// Theorem 1: the result is at least 1/2 of the optimum of (5)-(7); the
// bench `theorem1_approx_ratio` verifies this against an exact solver.
//
// Complexity: the paper's plain argmax scan is O(N^2 L) per pass —
// negligible at the paper's N <= 30 but quadratic pain at hundreds of
// users. Because an increment changes only the chosen user's own
// marginal (h_n depends only on user n's state), a lazy max-heap gives
// the EXACT same ascent in O(N L log N); `Strategy::kHeap` is the
// default, with the scan kept as the paper-literal reference and the
// tests pinning bitwise-identical allocations between the two.
//
// Both strategies read their marginal scores from a per-slot HTable
// (src/core/htable.h) precomputed in O(N L) — no h_value is recomputed
// inside the ascent, and the steady-state path performs zero heap
// allocations (scratch and table storage recycle their capacity).
#pragma once

#include <vector>

#include "src/core/allocator.h"
#include "src/core/htable.h"

namespace cvr::core {

class DvGreedyAllocator final : public Allocator {
 public:
  /// Which passes to run — the ablation bench compares the variants.
  enum class Mode { kDensityOnly, kValueOnly, kCombined };

  /// Argmax implementation; identical results, different complexity.
  ///
  /// Tie-break contract: when several users share the best marginal
  /// score, the ascent raises the user with the SMALLEST index. kScan
  /// keeps the first strict maximum of a forward scan; kHeap's
  /// comparator orders equal scores by index, and stale entries are
  /// re-pushed before they can displace an equally-scored fresh one.
  /// This contract is what makes the two strategies bit-identical —
  /// same levels, same objective — which the property
  /// `core.dv_scan_heap_identical` pins across 10k tie-heavy instances
  /// (duplicated users, quantized rates, boundary-exact budgets).
  /// kHeap is the default: O(N L log N) vs the scan's O(N^2 L), with
  /// the scan kept as the paper-literal reference implementation
  /// (registry name "dv-scan").
  enum class Strategy { kScan, kHeap };

  explicit DvGreedyAllocator(Mode mode = Mode::kCombined,
                             Strategy strategy = Strategy::kHeap)
      : mode_(mode), strategy_(strategy) {}

  std::string_view name() const override;

  Allocation allocate(const SlotProblem& problem) override;

  /// Allocation-free steady state: the h-tables, pass scratch, heap
  /// storage, and `out.levels` all recycle their capacity across calls
  /// (pinned by tests/slot_arena_test.cpp's counting allocator).
  void allocate_into(const SlotProblem& problem, Allocation& out) override;

 private:
  enum class Rank { kDensity, kValue };

  /// The one rank-dispatch point both strategies share: the marginal
  /// score of raising this user from q to q+1, read from the table.
  static double rank_score(const HTable& table, QualityLevel q, Rank rank) {
    return rank == Rank::kDensity ? table.density(q) : table.increment(q);
  }

  /// One greedy ascent over tables_; writes the resulting levels.
  void greedy_pass(const SlotProblem& problem, Rank rank,
                   std::vector<QualityLevel>& q);
  void greedy_pass_heap(const SlotProblem& problem, Rank rank,
                        std::vector<QualityLevel>& q);

  Mode mode_;
  Strategy strategy_;

  // Per-slot scratch, recycled across allocate calls. An allocator
  // instance is single-threaded by contract (the ensemble runner gives
  // each parallel cell a fresh instance).
  struct HeapEntry {
    double score;
    std::size_t user;
    QualityLevel level;
  };
  HTableSet tables_;
  std::vector<QualityLevel> density_levels_;
  std::vector<QualityLevel> value_levels_;
  std::vector<char> active_;
  std::vector<HeapEntry> heap_;
};

}  // namespace cvr::core
