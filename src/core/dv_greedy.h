// Algorithm 1: the Density/Value-Greedy quality-level allocator.
//
// Section III. Two greedy ascents from the all-ones allocation:
//   * density pass — repeatedly raise by one level the user with the
//     largest eta_n = (h(q+1) - h(q)) / (f(q+1) - f(q));
//   * value pass — same but ranked by v_n = h(q+1) - h(q);
// each pass stops a user when it hits level L, violates its own B_n, or
// would violate the server's B(t) (quality_verification), and stops
// entirely when the best marginal is negative. The better of the two
// allocations is returned.
//
// Theorem 1: the result is at least 1/2 of the optimum of (5)-(7); the
// bench `theorem1_approx_ratio` verifies this against an exact solver.
// The bound assumes the ascent starts from all-ones — see the
// warm-start ablation note below.
//
// Complexity: the paper's plain argmax scan is O(N^2 L) per pass —
// negligible at the paper's N <= 30 but quadratic pain at hundreds of
// users. Because an increment changes only the chosen user's own
// marginal (h_n depends only on user n's state), a lazy max-heap gives
// the EXACT same ascent in O(N L log N); `Strategy::kHeap` is the
// default, with the scan kept as the paper-literal reference and the
// tests pinning bitwise-identical allocations between the two. The
// scan itself now keeps a dense per-user score array (one lane per
// user, -inf marking deactivated users) and finds each argmax with
// simd::argmax_first — same winner as the textbook forward scan, one
// AVX2 pass instead of a branchy loop.
//
// Both strategies read their marginal scores from a per-slot HTable
// (src/core/htable.h) precomputed in O(N L) by the SoA/SIMD kernel —
// no h_value is recomputed inside the ascent, and the steady-state
// path performs zero heap allocations (scratch and table storage
// recycle their capacity).
#pragma once

#include <vector>

#include "src/core/allocator.h"
#include "src/core/htable.h"
#include "src/core/simd.h"

namespace cvr::core {

class DvGreedyAllocator final : public Allocator {
 public:
  /// Which passes to run — the ablation bench compares the variants.
  enum class Mode { kDensityOnly, kValueOnly, kCombined };

  /// Argmax implementation; identical results, different complexity.
  ///
  /// Tie-break contract: when several users share the best marginal
  /// score, the ascent raises the user with the SMALLEST index. kScan
  /// keeps the first strict maximum of a forward scan (now evaluated
  /// by simd::argmax_first over the dense score array — same winner by
  /// construction); kHeap's comparator orders equal scores by index,
  /// and stale entries are re-pushed before they can displace an
  /// equally-scored fresh one. This contract is what makes the two
  /// strategies bit-identical — same levels, same objective — which the
  /// property `core.dv_scan_heap_identical` pins across 10k tie-heavy
  /// instances (duplicated users, quantized rates, boundary-exact
  /// budgets). kHeap is the default: O(N L log N) vs the scan's
  /// O(N^2 L), with the scan kept as the paper-literal reference
  /// implementation (registry name "dv-scan").
  enum class Strategy { kScan, kHeap };

  /// Users-per-slot at or above which a pool attached via
  /// set_thread_pool() is actually used; below it the serial path is
  /// always cheaper than the fan-out.
  static constexpr std::size_t kDefaultParallelMinUsers = 1024;

  /// @param warm_start Enables the warm-start ABLATION (registry name
  ///   "dv-warm"): each slot's ascent is seeded from the previous
  ///   slot's allocation (repaired to feasibility) instead of from
  ///   all-ones. Theorem 1's ½-gain proof conditions on the all-ones
  ///   start, so the formal bound is FORFEITED in this mode — the
  ///   result is still feasible and, on a repeated identical problem,
  ///   never worse than the cold objective (both pinned by
  ///   tests/dv_greedy_test.cpp); docs/vectorization.md discusses when
  ///   the trade is worth it.
  explicit DvGreedyAllocator(Mode mode = Mode::kCombined,
                             Strategy strategy = Strategy::kHeap,
                             bool warm_start = false)
      : mode_(mode), strategy_(strategy), warm_start_(warm_start) {}

  std::string_view name() const override;

  Allocation allocate(const SlotProblem& problem) override;

  /// Allocation-free steady state: the h-tables, pass scratch, heap
  /// storage, and `out.levels` all recycle their capacity across calls
  /// (pinned by tests/slot_arena_test.cpp's counting allocator).
  /// The within-slot parallel path (pool attached AND user count >=
  /// the parallel threshold) is exempt: it allocates futures per slot.
  void allocate_into(const SlotProblem& problem, Allocation& out) override;

  /// Borrows `pool` for within-slot parallelism: the SoA table build
  /// and the heap candidate fill partition the users into disjoint
  /// lane-aligned ranges, so results stay bit-identical to the serial
  /// path (TSan CI leg + tests/simd_test.cpp). Engaged only when
  /// user_count >= the threshold below.
  void set_thread_pool(cvr::ThreadPool* pool) override { pool_ = pool; }

  /// Test hook: lowers the parallel engagement threshold so the
  /// parallel path is exercised at unit-test problem sizes.
  void set_parallel_min_users(std::size_t n) { parallel_min_users_ = n; }

  /// Clears warm-start memory (cross-slot state); the next slot seeds
  /// cold from all-ones.
  void reset() override { prev_levels_.clear(); }

  /// Cold-start dv-greedy is a pure function of the slot problem: the
  /// tables, scratch, and heap are fully overwritten every call. The
  /// warm-start ablation carries prev_levels_ across slots and is NOT
  /// stateless — the fleet keeps it on the serial schedule.
  bool stateless() const override { return !warm_start_; }

  /// Same mode/strategy/warm-start knobs, cold scratch. The clone does
  /// NOT inherit the thread pool or the parallel threshold: clones are
  /// handed to per-server fleet tasks where the outer fan-out already
  /// owns the pool (docs/fleet.md's no-oversubscription policy).
  std::unique_ptr<Allocator> clone() const override {
    return std::make_unique<DvGreedyAllocator>(mode_, strategy_, warm_start_);
  }

 private:
  enum class Rank { kDensity, kValue };

  /// The one rank-dispatch point both strategies share: the marginal
  /// score of raising this user from q to q+1, read from the table.
  /// Static dispatch — `rank` is a compile-time-known branch in every
  /// caller's loop, and both arms are single strided loads from the
  /// SoA planes (density = increment / rate-step, both precomputed).
  static double rank_score(const HTable& table, QualityLevel q, Rank rank) {
    return rank == Rank::kDensity ? table.density(q) : table.increment(q);
  }

  /// Writes the pass's starting levels into `q` and returns the used
  /// server rate. Cold: all-ones. Warm (warm_start_ AND the previous
  /// slot had the same user count): the previous allocation clamped to
  /// per-user feasibility, then repaired to the server budget by
  /// peeling the lowest-ranked increments (ties to the smallest index).
  double seed_levels(const SlotProblem& problem, Rank rank,
                     std::vector<QualityLevel>& q);

  /// One greedy ascent over tables_; writes the resulting levels.
  void greedy_pass(const SlotProblem& problem, Rank rank,
                   std::vector<QualityLevel>& q);
  void greedy_pass_heap(const SlotProblem& problem, Rank rank,
                        std::vector<QualityLevel>& q);

  Mode mode_;
  Strategy strategy_;
  bool warm_start_;
  cvr::ThreadPool* pool_ = nullptr;
  std::size_t parallel_min_users_ = kDefaultParallelMinUsers;

  // Per-slot scratch, recycled across allocate calls. An allocator
  // instance is single-threaded by contract (the ensemble runner gives
  // each parallel cell a fresh instance); an attached pool is used
  // only for fork-join spans inside one allocate call.
  struct HeapEntry {
    double score;
    std::size_t user;
    QualityLevel level;
  };
  HTableSet tables_;
  std::vector<QualityLevel> density_levels_;
  std::vector<QualityLevel> value_levels_;
  std::vector<QualityLevel> prev_levels_;  ///< Warm-start seed.
  std::vector<char> active_;
  std::vector<double> scores_;  ///< Dense scan scores, -inf = inactive.
  simd::FirstMaxTracker scan_max_;  ///< Incremental argmax over scores_.
  std::vector<HeapEntry> heap_;
};

}  // namespace cvr::core
