// Allocator interface: the per-slot quality-level allocation problem
// (5)-(7) and the common contract every policy implements.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/core/qoe.h"

namespace cvr {
class ThreadPool;
}

namespace cvr::core {

/// One slot's allocation problem: per-user contexts plus the shared
/// server throughput B(t) (constraint (6)); each user's B_n(t) lives in
/// its context (constraint (7)).
struct SlotProblem {
  std::vector<UserSlotContext> users;
  double server_bandwidth = 0.0;  ///< B(t), Mbps.
  QoeParams params;

  std::size_t user_count() const { return users.size(); }
};

/// An allocation: one quality level per user plus its objective value
/// sum_n h_n(q_n).
struct Allocation {
  std::vector<QualityLevel> levels;
  double objective = 0.0;
};

/// Objective value sum_n h_n(q_n) of an allocation.
double evaluate(const SlotProblem& problem,
                const std::vector<QualityLevel>& levels);

/// Total server rate sum_n f(q_n).
double total_rate(const SlotProblem& problem,
                  const std::vector<QualityLevel>& levels);

/// True iff the allocation satisfies the *server* constraint (6).
/// Constraint (7) is checked per user by user_feasible(). Note that the
/// all-ones base allocation is always accepted (see Allocator docs).
bool server_feasible(const SlotProblem& problem,
                     const std::vector<QualityLevel>& levels);

/// True iff f(q) <= B_n for this user (constraint (7)).
bool user_feasible(const UserSlotContext& user, QualityLevel q);

/// Full feasibility oracle for differential tests: every level valid,
/// every non-minimum level within its user's B_n, and — unless the
/// allocation is the all-ones mandatory minimum — the server budget (6)
/// holds. Mirrors the Allocator feasibility contract below.
bool allocation_feasible(const SlotProblem& problem,
                         const std::vector<QualityLevel>& levels);

/// Base class for all quality-level allocation policies. Allocators may
/// keep cross-slot state (e.g. Firefly's LRU queue); reset() clears it
/// between independent runs.
///
/// Feasibility contract: allocators never go below the all-ones
/// allocation — level 1 is the mandatory minimum (a user must receive
/// *some* content every slot; Algorithm 1 initialises Q = {1,...,1}).
/// When even all-ones exceeds the caps, the QoE simply absorbs the
/// saturated delay penalty, mirroring the real system.
class Allocator {
 public:
  virtual ~Allocator() = default;

  virtual std::string_view name() const = 0;

  /// Solves one slot. Must return exactly problem.user_count() levels,
  /// each in [1, kNumQualityLevels].
  virtual Allocation allocate(const SlotProblem& problem) = 0;

  /// Solves one slot into `out`, recycling its storage (the levels
  /// vector keeps its capacity across calls). Semantically identical to
  /// `out = allocate(problem)`; hot-path allocators override this to
  /// stay heap-allocation-free in steady state, and the sim loops call
  /// it with a long-lived Allocation.
  virtual void allocate_into(const SlotProblem& problem, Allocation& out) {
    out = allocate(problem);
  }

  /// Clears any cross-slot state. Default: none.
  virtual void reset() {}

  /// Offers a thread pool for WITHIN-slot parallelism (distinct from
  /// the ensemble runner's across-cell parallelism). Allocators that
  /// can partition their per-slot work into deterministic fork-join
  /// spans override this (DvGreedyAllocator parallelises its SoA table
  /// build and heap candidate fill above a user-count threshold);
  /// the default ignores the pool. The pool must outlive the allocator
  /// or be detached by passing nullptr before it is destroyed. Results
  /// must stay bit-identical to the serial path — parallelism is an
  /// execution detail, never a semantic knob.
  virtual void set_thread_pool(cvr::ThreadPool* /*pool*/) {}

  /// True iff allocate() is a pure function of its argument: no
  /// cross-slot state feeds the result (scratch buffers that every call
  /// fully overwrites do not count as state). The fleet's parallel slot
  /// execution (docs/fleet.md) asks this before handing clone()d
  /// instances to per-server tasks; a stateful allocator (dv-warm's
  /// carried warm start, Firefly's LRU queue) answers false and keeps
  /// the serial schedule. Default: false — opting IN to parallel use is
  /// the safe direction.
  virtual bool stateless() const { return false; }

  /// A fresh allocator configured like this one (same policy knobs,
  /// cold scratch). Used together with stateless(): clones solve
  /// different servers' problems concurrently, so for a stateless
  /// allocator every clone returns bit-identical allocations to the
  /// original fed the same problems. Returns nullptr when cloning is
  /// unsupported (the fleet then falls back to serial execution).
  virtual std::unique_ptr<Allocator> clone() const { return nullptr; }
};

}  // namespace cvr::core
